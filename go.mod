module acb

go 1.22
