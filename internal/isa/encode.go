package isa

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Binary program format: a fixed header followed by one 16-byte record per
// instruction. The format lets tools (cmd/acbtrace, external analyzers)
// exchange programs without rebuilding workloads.
//
//	magic   [4]byte  "ACBP"
//	version uint16   (1)
//	count   uint32
//	records: op u8 | cond u8 | rd u8 | rs1 u8 | rs2 u8 | pad u8
//	         target i16 (relative to the instruction) | imm i64
var (
	progMagic   = [4]byte{'A', 'C', 'B', 'P'}
	progVersion = uint16(1)
)

const recordBytes = 16

// EncodeProgram writes the program in the binary format.
func EncodeProgram(w io.Writer, p []Instruction) error {
	hdr := make([]byte, 10)
	copy(hdr, progMagic[:])
	binary.LittleEndian.PutUint16(hdr[4:], progVersion)
	binary.LittleEndian.PutUint32(hdr[6:], uint32(len(p)))
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("isa: encode header: %w", err)
	}
	rec := make([]byte, recordBytes)
	for pc := range p {
		in := &p[pc]
		rel := 0
		if in.IsControl() {
			rel = in.Target - pc
			if rel > 32767 || rel < -32768 {
				return fmt.Errorf("isa: instruction %d: target offset %d exceeds 16 bits", pc, rel)
			}
		}
		rec[0] = byte(in.Op)
		rec[1] = byte(in.Cond)
		rec[2] = byte(in.Rd)
		rec[3] = byte(in.Rs1)
		rec[4] = byte(in.Rs2)
		rec[5] = 0
		binary.LittleEndian.PutUint16(rec[6:], uint16(int16(rel)))
		binary.LittleEndian.PutUint64(rec[8:], uint64(in.Imm))
		if _, err := w.Write(rec); err != nil {
			return fmt.Errorf("isa: encode instruction %d: %w", pc, err)
		}
	}
	return nil
}

// DecodeProgram parses a program written by EncodeProgram, validating
// opcodes, conditions, registers and control-flow targets.
func DecodeProgram(r io.Reader) ([]Instruction, error) {
	hdr := make([]byte, 10)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("isa: decode header: %w", err)
	}
	if [4]byte(hdr[:4]) != progMagic {
		return nil, fmt.Errorf("isa: bad magic %q", hdr[:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:]); v != progVersion {
		return nil, fmt.Errorf("isa: unsupported version %d", v)
	}
	count := binary.LittleEndian.Uint32(hdr[6:])
	if count > 1<<24 {
		return nil, fmt.Errorf("isa: implausible instruction count %d", count)
	}
	p := make([]Instruction, count)
	rec := make([]byte, recordBytes)
	for pc := range p {
		if _, err := io.ReadFull(r, rec); err != nil {
			return nil, fmt.Errorf("isa: decode instruction %d: %w", pc, err)
		}
		in := &p[pc]
		in.Op = Op(rec[0])
		if in.Op >= numOps {
			return nil, fmt.Errorf("isa: instruction %d: invalid opcode %d", pc, rec[0])
		}
		in.Cond = Cond(rec[1])
		if in.Cond >= numConds {
			return nil, fmt.Errorf("isa: instruction %d: invalid condition %d", pc, rec[1])
		}
		in.Rd, in.Rs1, in.Rs2 = Reg(rec[2]), Reg(rec[3]), Reg(rec[4])
		if in.Rd >= NumRegs || in.Rs1 >= NumRegs || in.Rs2 >= NumRegs {
			return nil, fmt.Errorf("isa: instruction %d: invalid register", pc)
		}
		rel := int(int16(binary.LittleEndian.Uint16(rec[6:])))
		in.Imm = int64(binary.LittleEndian.Uint64(rec[8:]))
		if in.IsControl() {
			in.Target = pc + rel
			if in.Target < 0 || in.Target >= int(count) {
				return nil, fmt.Errorf("isa: instruction %d: target %d out of program", pc, in.Target)
			}
		}
	}
	return p, nil
}
