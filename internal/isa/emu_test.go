package isa

import (
	"testing"
	"testing/quick"
)

func TestMemoryZeroDefault(t *testing.T) {
	m := NewMemory()
	if m.Load(0x1234) != 0 {
		t.Error("fresh memory not zero")
	}
	if m.Footprint() != 0 {
		t.Error("reads must not allocate pages")
	}
}

func TestMemoryStoreLoad(t *testing.T) {
	m := NewMemory()
	m.Store(0x1000, 42)
	if got := m.Load(0x1000); got != 42 {
		t.Fatalf("load = %d, want 42", got)
	}
	// Word granularity: any address within the word aliases.
	if got := m.Load(0x1007); got != 42 {
		t.Fatalf("unaligned load within word = %d, want 42", got)
	}
	m.Store(0x1008, 7)
	if got := m.Load(0x1000); got != 42 {
		t.Fatalf("neighbour write clobbered word: %d", got)
	}
}

// TestMemoryRoundTrip: store-then-load returns the value for arbitrary
// addresses and values (property-based).
func TestMemoryRoundTrip(t *testing.T) {
	m := NewMemory()
	f := func(addr, val int64) bool {
		if addr < 0 {
			addr = -addr
		}
		m.Store(addr, val)
		return m.Load(addr) == val
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryClone(t *testing.T) {
	m := NewMemory()
	m.Store(8, 1)
	c := m.Clone()
	c.Store(8, 2)
	m.Store(16, 3)
	if m.Load(8) != 1 || c.Load(8) != 2 {
		t.Error("clone shares word storage")
	}
	if c.Load(16) != 0 {
		t.Error("clone sees post-clone writes")
	}
}

func TestOverlay(t *testing.T) {
	base := NewMemory()
	base.Store(0, 10)
	ov := NewOverlay(base)
	if ov.Load(0) != 10 {
		t.Fatal("overlay must read through")
	}
	ov.Store(0, 20)
	ov.Store(64, 30)
	if ov.Load(0) != 20 || ov.Load(64) != 30 {
		t.Fatal("overlay writes not visible")
	}
	if base.Load(0) != 10 || base.Load(64) != 0 {
		t.Fatal("overlay leaked to base before commit")
	}

	snap := ov.SnapshotWrites()
	ov.Store(0, 99)
	ov.RestoreWrites(snap)
	if ov.Load(0) != 20 {
		t.Fatal("restore did not rewind writes")
	}

	ov.Commit()
	if base.Load(0) != 20 || base.Load(64) != 30 {
		t.Fatal("commit did not apply")
	}
	ov.Store(8, 1)
	ov.Discard()
	if ov.Load(8) != 0 {
		t.Fatal("discard did not drop writes")
	}
}

func TestStepArithmeticAndControl(t *testing.T) {
	prog := []Instruction{
		{Op: MovI, Rd: R1, Imm: 5},
		{Op: MovI, Rd: R2, Imm: 3},
		{Op: Add, Rd: R3, Rs1: R1, Rs2: R2},
		{Op: Br, Cond: EQR, Rs1: R3, Rs2: R3, Target: 5},
		{Op: MovI, Rd: R4, Imm: 111}, // skipped
		{Op: Halt},
	}
	st := NewArchState(nil)
	steps, halted := st.Run(prog, 100)
	if !halted {
		t.Fatal("did not halt")
	}
	if steps != 5 {
		t.Fatalf("steps = %d, want 5", steps)
	}
	if st.Regs[R3] != 8 {
		t.Fatalf("r3 = %d, want 8", st.Regs[R3])
	}
	if st.Regs[R4] != 0 {
		t.Fatal("branch did not skip")
	}
}

func TestStepMemoryOps(t *testing.T) {
	prog := []Instruction{
		{Op: MovI, Rd: R1, Imm: 0x2000},
		{Op: MovI, Rd: R2, Imm: 77},
		{Op: Store, Rs1: R1, Rs2: R2, Imm: 16},
		{Op: Load, Rd: R3, Rs1: R1, Imm: 16},
		{Op: Halt},
	}
	st := NewArchState(nil)
	if _, halted := st.Run(prog, 100); !halted {
		t.Fatal("did not halt")
	}
	if st.Regs[R3] != 77 {
		t.Fatalf("r3 = %d, want 77", st.Regs[R3])
	}
	if st.Mem.Load(0x2010) != 77 {
		t.Fatal("store not applied to memory")
	}
}

func TestStepResultFields(t *testing.T) {
	prog := []Instruction{
		{Op: Br, Cond: EQZ, Rs1: R0, Target: 3},
		{Op: Nop},
		{Op: Nop},
		{Op: Halt},
	}
	st := NewArchState(nil)
	res := st.Step(prog)
	if !res.Taken || res.NextPC != 3 {
		t.Fatalf("branch step: taken=%v next=%d", res.Taken, res.NextPC)
	}
	res = st.Step(prog)
	if !res.Halted {
		t.Fatal("halt not reported")
	}
	if st.PC != 3 {
		t.Fatal("halt must not advance PC")
	}
}

func TestRunBudget(t *testing.T) {
	prog := []Instruction{
		{Op: AddI, Rd: R1, Rs1: R1, Imm: 1},
		{Op: Jmp, Target: 0},
	}
	st := NewArchState(nil)
	steps, halted := st.Run(prog, 1000)
	if halted {
		t.Fatal("infinite loop cannot halt")
	}
	if steps != 1000 {
		t.Fatalf("steps = %d, want 1000", steps)
	}
	if st.Regs[R1] != 500 {
		t.Fatalf("r1 = %d, want 500", st.Regs[R1])
	}
}

func TestStepOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range PC")
		}
	}()
	st := NewArchState(nil)
	st.PC = 5
	st.Step([]Instruction{{Op: Nop}})
}
