package isa

import "fmt"

// Checkpoint is a cheap architectural snapshot of the functional emulator:
// the complete register file, the program counter, a copy-on-write memory
// snapshot, and the number of instructions retired to reach it. It is
// everything a detailed core needs to start simulating mid-program
// (ooo.NewFromCheckpoint), which is what makes SMARTS-style sampled
// simulation possible: fast-forward functionally, checkpoint, and hand
// disjoint windows to parallel workers. The snapshot's Mem is frozen —
// consumers must CloneCOW it, never store into it — which is what makes
// concurrent window jobs over one checkpoint safe.
type Checkpoint struct {
	PC      int
	Regs    [NumRegs]int64
	Mem     *Memory
	Retired int64
}

// Checkpoint captures the state's architectural snapshot. retired is the
// instruction count the caller has executed to reach this state; it rides
// along so window schedulers can place the checkpoint on the instruction
// axis. The state must be backed by a *Memory (the concrete sparse memory),
// not an arbitrary Mem implementation.
func (s *ArchState) Checkpoint(retired int64) *Checkpoint {
	m, ok := s.Mem.(*Memory)
	if !ok {
		panic(fmt.Sprintf("isa: Checkpoint needs *Memory-backed state, have %T", s.Mem))
	}
	return &Checkpoint{PC: s.PC, Regs: s.Regs, Mem: m.CloneCOW(), Retired: retired}
}

// Restore returns a fresh ArchState positioned at the checkpoint. The
// state's memory is a copy-on-write snapshot of the checkpoint's, so its
// writes never reach the checkpoint (or any sibling restored from it).
func (ck *Checkpoint) Restore() *ArchState {
	st := NewArchState(ck.Mem.CloneCOW())
	st.PC = ck.PC
	st.Regs = ck.Regs
	return st
}

// RunFeed executes until Halt or until maxSteps instructions have executed,
// like Run, but additionally feeds architectural events to the non-nil
// callbacks: onBranch receives every conditional branch's (pc, taken)
// outcome — the feed that functionally warms bpu predictors during
// fast-forward — and onMem receives every load/store effective address,
// which sampled simulation uses to keep a cache-warming trace.
func (s *ArchState) RunFeed(prog []Instruction, maxSteps int64,
	onBranch func(pc int, taken bool), onMem func(addr int64, store bool)) (steps int64, halted bool) {
	var res StepResult
	for steps < maxSteps {
		s.step(prog, &res)
		steps++
		if res.Halted {
			return steps, true
		}
		switch res.Inst.Op {
		case Br:
			if onBranch != nil {
				onBranch(res.PC, res.Taken)
			}
		case Load:
			if onMem != nil {
				onMem(res.EffAddr, false)
			}
		case Store:
			if onMem != nil {
				onMem(res.EffAddr, true)
			}
		}
	}
	return steps, false
}
