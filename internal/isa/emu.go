package isa

import (
	"fmt"
	"sort"
)

// Mem is the functional-memory interface: whole 64-bit words addressed by
// byte address (the low three address bits are ignored by implementations;
// the timing model uses full byte addresses for cache indexing).
type Mem interface {
	Load(addr int64) int64
	Store(addr, val int64)
}

// Memory is a sparse, word-addressed functional memory. Snapshots taken
// with CloneCOW share pages copy-on-write, so checkpointing a multi-MB
// image costs one map copy instead of a byte copy.
type Memory struct {
	pages map[int64]*[pageWords]int64
	// owned tracks the pages this memory may write in place. nil means
	// every page is exclusively owned (a memory that never took part in a
	// CloneCOW — the common case, with no per-store map lookup beyond it).
	// Non-nil means pages absent from the set are shared with a COW
	// sibling and must be copied before the first write.
	owned map[int64]struct{}
}

const (
	pageShift = 12 // 4 KiB pages
	pageBytes = 1 << pageShift
	pageWords = pageBytes / 8
)

// NewMemory returns an empty memory; all words read as zero.
func NewMemory() *Memory {
	return &Memory{pages: make(map[int64]*[pageWords]int64)}
}

// Load reads the 64-bit word containing byte address addr.
//
// The page key is the arithmetic shift addr>>pageShift (floor division),
// so the in-page offset must be the masked remainder addr&(pageBytes-1):
// a signed addr%pageBytes is negative for negative addresses and indexed
// the page with a negative slice offset.
func (m *Memory) Load(addr int64) int64 {
	page, ok := m.pages[addr>>pageShift]
	if !ok {
		return 0
	}
	return page[(addr&(pageBytes-1))/8]
}

// Store writes the 64-bit word containing byte address addr.
func (m *Memory) Store(addr, val int64) {
	idx := addr >> pageShift
	page, ok := m.pages[idx]
	if !ok {
		page = new([pageWords]int64)
		m.pages[idx] = page
		if m.owned != nil {
			m.owned[idx] = struct{}{}
		}
	} else if m.owned != nil {
		if _, own := m.owned[idx]; !own {
			cp := *page
			page = &cp
			m.pages[idx] = page
			m.owned[idx] = struct{}{}
		}
	}
	page[(addr&(pageBytes-1))/8] = val
}

// Clone returns a deep copy of the memory.
func (m *Memory) Clone() *Memory {
	c := NewMemory()
	for idx, page := range m.pages {
		cp := *page
		c.pages[idx] = &cp
	}
	return c
}

// CloneCOW returns a copy-on-write snapshot: the clone shares every page
// with the receiver, and whichever side writes a shared page first copies
// it privately. O(resident pages) map work instead of O(bytes), which is
// what makes per-window checkpointing affordable for multi-MB footprints.
//
// Taking the snapshot marks all of the receiver's pages shared, so it
// briefly mutates the receiver; concurrent CloneCOW calls are safe only on
// a memory that is never stored to after its own snapshot was taken (e.g.
// a Checkpoint's frozen image, whose owned set stays empty).
func (m *Memory) CloneCOW() *Memory {
	c := &Memory{
		pages: make(map[int64]*[pageWords]int64, len(m.pages)),
		owned: make(map[int64]struct{}),
	}
	for idx, page := range m.pages {
		c.pages[idx] = page
	}
	if m.owned == nil {
		m.owned = make(map[int64]struct{})
	} else if len(m.owned) > 0 {
		clear(m.owned)
	}
	return c
}

// Footprint returns the number of resident pages (for tests/diagnostics).
func (m *Memory) Footprint() int { return len(m.pages) }

// Equal reports whether the two memories hold identical word contents.
// Absent pages compare as zero, so a memory with an all-zero resident page
// equals one where the page was never touched.
func (m *Memory) Equal(o *Memory) bool { return len(m.DiffWords(o, 1)) == 0 }

// MemDiff is one differing word between two memories.
type MemDiff struct {
	Addr int64 // byte address of the word
	A, B int64 // the two values (A from the receiver, B from the argument)
}

// DiffWords returns up to max differing words between m and o in ascending
// address order (all of them when max <= 0). Absent pages read as zero.
func (m *Memory) DiffWords(o *Memory, max int) []MemDiff {
	idxSet := make(map[int64]struct{}, len(m.pages)+len(o.pages))
	for idx := range m.pages {
		idxSet[idx] = struct{}{}
	}
	for idx := range o.pages {
		idxSet[idx] = struct{}{}
	}
	idxs := make([]int64, 0, len(idxSet))
	for idx := range idxSet {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })

	var zero [pageWords]int64
	var out []MemDiff
	for _, idx := range idxs {
		pa, pb := m.pages[idx], o.pages[idx]
		if pa == pb {
			continue // COW-shared (or both absent): identical by construction
		}
		if pa == nil {
			pa = &zero
		}
		if pb == nil {
			pb = &zero
		}
		for w := 0; w < pageWords; w++ {
			if pa[w] != pb[w] {
				out = append(out, MemDiff{Addr: idx<<pageShift + int64(w)*8, A: pa[w], B: pb[w]})
				if max > 0 && len(out) >= max {
					return out
				}
			}
		}
	}
	return out
}

// Overlay is a copy-on-write view over a base memory. Reads consult the
// overlay's private writes first; Commit applies them to the base. The
// fetch engine uses it to scan ahead speculatively (e.g. to locate an ACB
// reconvergence point on the architecturally-correct path) without
// disturbing the oracle state until the scan is known to succeed.
type Overlay struct {
	base   Mem
	writes map[int64]int64
}

// NewOverlay returns an overlay over base with no private writes.
func NewOverlay(base Mem) *Overlay {
	return &Overlay{base: base, writes: make(map[int64]int64)}
}

// Load implements Mem.
func (o *Overlay) Load(addr int64) int64 {
	if v, ok := o.writes[addr&^7]; ok {
		return v
	}
	return o.base.Load(addr)
}

// Store implements Mem.
func (o *Overlay) Store(addr, val int64) { o.writes[addr&^7] = val }

// Commit applies the overlay's private writes to the base memory.
func (o *Overlay) Commit() {
	for a, v := range o.writes {
		o.base.Store(a, v)
	}
	o.writes = make(map[int64]int64)
}

// Discard drops the overlay's private writes.
func (o *Overlay) Discard() { o.writes = make(map[int64]int64) }

// SnapshotWrites returns a copy of the overlay's private writes.
func (o *Overlay) SnapshotWrites() map[int64]int64 {
	cp := make(map[int64]int64, len(o.writes))
	for a, v := range o.writes {
		cp[a] = v
	}
	return cp
}

// RestoreWrites replaces the overlay's private writes with w (which the
// overlay takes ownership of).
func (o *Overlay) RestoreWrites(w map[int64]int64) {
	if w == nil {
		w = make(map[int64]int64)
	}
	o.writes = w
}

// ArchState is the complete architectural state of the machine.
type ArchState struct {
	PC   int
	Regs [NumRegs]int64
	Mem  Mem
}

// NewArchState returns a reset architectural state with the given memory
// image (nil allocates an empty memory).
func NewArchState(mem Mem) *ArchState {
	if mem == nil {
		mem = NewMemory()
	}
	return &ArchState{Mem: mem}
}

// StepResult describes the architectural effect of executing one
// instruction.
type StepResult struct {
	Inst     *Instruction
	PC       int   // PC of the executed instruction
	NextPC   int   // PC of the next instruction
	Taken    bool  // for branches: whether the branch was taken
	EffAddr  int64 // for loads/stores: effective address
	Value    int64 // destination value (loads/ALU) or stored value
	Halted   bool  // instruction was Halt
	HasValue bool  // Value holds a destination write
}

// Step functionally executes the instruction at the current PC and advances
// the state. It returns the architectural effects of the instruction.
func (s *ArchState) Step(prog []Instruction) StepResult {
	var res StepResult
	s.step(prog, &res)
	return res
}

// step is Step writing into a caller-owned result, so the Run/RunFeed hot
// loops reuse one StepResult instead of copying ~80 bytes per instruction.
func (s *ArchState) step(prog []Instruction, res *StepResult) {
	if s.PC < 0 || s.PC >= len(prog) {
		panic(fmt.Sprintf("isa: PC %d out of range [0,%d)", s.PC, len(prog)))
	}
	in := &prog[s.PC]
	*res = StepResult{Inst: in, PC: s.PC, NextPC: s.PC + 1}
	switch in.Op {
	case Nop:
	case Halt:
		res.Halted = true
		res.NextPC = s.PC
	case Load:
		res.EffAddr = s.Regs[in.Rs1] + in.Imm
		res.Value = s.Mem.Load(res.EffAddr)
		res.HasValue = true
		s.Regs[in.Rd] = res.Value
	case Store:
		res.EffAddr = s.Regs[in.Rs1] + in.Imm
		res.Value = s.Regs[in.Rs2]
		s.Mem.Store(res.EffAddr, res.Value)
	case Br:
		a := s.Regs[in.Rs1]
		var b int64
		if in.Cond.UsesRs2() {
			b = s.Regs[in.Rs2]
		}
		res.Taken = in.Cond.Eval(a, b)
		if res.Taken {
			res.NextPC = in.Target
		}
	case Jmp:
		res.Taken = true
		res.NextPC = in.Target
	default:
		var a, b int64
		switch in.NumSources() {
		case 2:
			a, b = s.Regs[in.Rs1], s.Regs[in.Rs2]
		case 1:
			a = s.Regs[in.Rs1]
		}
		res.Value = in.ALUResult(a, b)
		res.HasValue = true
		s.Regs[in.Rd] = res.Value
	}
	s.PC = res.NextPC
}

// Run executes until Halt or until maxSteps instructions have retired,
// returning the number of instructions executed and whether the program
// halted.
func (s *ArchState) Run(prog []Instruction, maxSteps int64) (steps int64, halted bool) {
	var res StepResult
	for steps < maxSteps {
		s.step(prog, &res)
		steps++
		if res.Halted {
			return steps, true
		}
	}
	return steps, false
}
