package isa

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleProgram() []Instruction {
	return []Instruction{
		{Op: MovI, Rd: R1, Imm: -42},
		{Op: Add, Rd: R2, Rs1: R1, Rs2: R3},
		{Op: Load, Rd: R4, Rs1: R2, Imm: 0x1000},
		{Op: Br, Cond: LTR, Rs1: R4, Rs2: R1, Target: 5},
		{Op: Store, Rs1: R2, Rs2: R4, Imm: 8},
		{Op: Jmp, Target: 0},
		{Op: Halt},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := sampleProgram()
	var buf bytes.Buffer
	if err := EncodeProgram(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeProgram(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, p)
	}
}

// TestEncodeDecodeProperty: random valid instructions survive the round
// trip (property-based).
func TestEncodeDecodeProperty(t *testing.T) {
	f := func(op, cond, rd, rs1, rs2 uint8, imm int64, rel int16) bool {
		in := Instruction{
			Op:   Op(op % uint8(numOps)),
			Cond: Cond(cond % uint8(numConds)),
			Rd:   Reg(rd % NumRegs),
			Rs1:  Reg(rs1 % NumRegs),
			Rs2:  Reg(rs2 % NumRegs),
			Imm:  imm,
		}
		// Build a 3-instruction program with the instruction in the
		// middle; clamp control targets into range.
		p := []Instruction{{Op: Nop}, in, {Op: Halt}}
		if p[1].IsControl() {
			p[1].Target = int(rel)%3 + 0 // 0..2 after normalization below
			if p[1].Target < 0 {
				p[1].Target = -p[1].Target
			}
		}
		var buf bytes.Buffer
		if err := EncodeProgram(&buf, p); err != nil {
			return false
		}
		got, err := DecodeProgram(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	if _, err := DecodeProgram(bytes.NewReader([]byte("XXXX\x01\x00\x00\x00\x00\x00"))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestDecodeRejectsBadOpcode(t *testing.T) {
	p := []Instruction{{Op: Nop}}
	var buf bytes.Buffer
	if err := EncodeProgram(&buf, p); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[10] = 200 // corrupt the opcode byte of the first record
	if _, err := DecodeProgram(bytes.NewReader(b)); err == nil {
		t.Fatal("invalid opcode accepted")
	}
}

func TestDecodeRejectsOutOfProgramTarget(t *testing.T) {
	p := []Instruction{{Op: Jmp, Target: 0}}
	var buf bytes.Buffer
	if err := EncodeProgram(&buf, p); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// Rewrite the relative target to jump far past the end.
	b[16] = 0x10
	b[17] = 0x00
	if _, err := DecodeProgram(bytes.NewReader(b)); err == nil {
		t.Fatal("out-of-program target accepted")
	}
}

func TestDecodeTruncated(t *testing.T) {
	p := sampleProgram()
	var buf bytes.Buffer
	if err := EncodeProgram(&buf, p); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()[:len(buf.Bytes())-5]
	if _, err := DecodeProgram(bytes.NewReader(b)); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

func TestEncodeRejectsHugeOffset(t *testing.T) {
	p := make([]Instruction, 40000)
	for i := range p {
		p[i] = Instruction{Op: Nop}
	}
	p[0] = Instruction{Op: Jmp, Target: 39999}
	p[len(p)-1] = Instruction{Op: Halt}
	var buf bytes.Buffer
	if err := EncodeProgram(&buf, p); err == nil {
		t.Fatal("16-bit offset overflow not rejected")
	}
}
