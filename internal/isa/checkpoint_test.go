package isa

import "testing"

// TestMemoryNegativeAddresses is the regression test for the signed-offset
// bug: the page key uses arithmetic shift (floor), so the in-page offset
// must be the masked remainder — addr%pageBytes is negative for negative
// addresses and indexed the page slice at a negative offset (panic).
func TestMemoryNegativeAddresses(t *testing.T) {
	m := NewMemory()
	addrs := []int64{
		-8,                    // last word of page -1
		-pageBytes,            // first word of page -1
		-pageBytes - 8,        // last word of page -2
		-3 * pageBytes,        // deeper negative page
		-1,                    // unaligned negative (word -8)
		-pageBytes + 5,        // unaligned within page -1
		0, 8, pageBytes, -8 << 20, // mixed positives and a far-negative
	}
	for i, a := range addrs {
		want := int64(0x1000 + i)
		m.Store(a, want)
		if got := m.Load(a); got != want {
			t.Errorf("Load(%#x) = %#x, want %#x", a, got, want)
		}
	}
	// Unaligned addresses within the same word must alias.
	m.Store(-16, 42)
	if got := m.Load(-16 + 7); got != 42 {
		t.Errorf("Load(-9) = %d, want 42 (same word as -16)", got)
	}

	// Clone / Equal / DiffWords must agree across negative pages.
	c := m.Clone()
	if !m.Equal(c) {
		t.Fatalf("clone not equal to original")
	}
	c.Store(-pageBytes, 999)
	diffs := m.DiffWords(c, 0)
	if len(diffs) != 1 || diffs[0].Addr != -pageBytes || diffs[0].B != 999 {
		t.Fatalf("DiffWords across negative page = %+v, want one diff at %#x", diffs, int64(-pageBytes))
	}
	if m.Equal(c) {
		t.Fatalf("Equal missed a negative-page diff")
	}
}

func TestCheckpointRestoreIsDeep(t *testing.T) {
	st := NewArchState(nil)
	st.PC = 7
	st.Regs[R3] = 99
	st.Mem.Store(0x1000, 11)
	st.Mem.Store(-0x2000, 22)

	ck := st.Checkpoint(123)
	if ck.Retired != 123 || ck.PC != 7 || ck.Regs[R3] != 99 {
		t.Fatalf("checkpoint = %+v", ck)
	}

	// Mutating the source after the checkpoint must not leak in.
	st.Mem.Store(0x1000, 77)
	st.Regs[R3] = 0

	re := ck.Restore()
	if re.PC != 7 || re.Regs[R3] != 99 {
		t.Fatalf("restore = PC %d regs %v", re.PC, re.Regs)
	}
	if got := re.Mem.Load(0x1000); got != 11 {
		t.Errorf("restored mem[0x1000] = %d, want 11 (pre-mutation)", got)
	}
	if got := re.Mem.Load(-0x2000); got != 22 {
		t.Errorf("restored mem[-0x2000] = %d, want 22", got)
	}
	// And the restored state must not alias the checkpoint either.
	re.Mem.Store(-0x2000, 1)
	if ck.Mem.Load(-0x2000) != 22 {
		t.Errorf("restore aliases checkpoint memory")
	}
}

func TestRunFeedMatchesRunAndFeedsEvents(t *testing.T) {
	// r1 counts down from 3; loop body does a load and a store.
	prog := []Instruction{
		{Op: MovI, Rd: R1, Imm: 3},
		{Op: Load, Rd: R2, Rs1: R1, Imm: 0x100},    // pc 1
		{Op: Store, Rs1: R1, Rs2: R2, Imm: 0x200},  // pc 2
		{Op: AddI, Rd: R1, Rs1: R1, Imm: -1},       // pc 3
		{Op: Br, Rs1: R1, Cond: NEZ, Target: 1},    // pc 4
		{Op: Halt},
	}
	ref := NewArchState(nil)
	refSteps, refHalted := ref.Run(prog, 1000)

	st := NewArchState(nil)
	var branches []bool
	var loads, stores int
	steps, halted := st.RunFeed(prog, 1000,
		func(pc int, taken bool) {
			if pc != 4 {
				t.Errorf("branch event at pc %d, want 4", pc)
			}
			branches = append(branches, taken)
		},
		func(addr int64, store bool) {
			if store {
				stores++
			} else {
				loads++
			}
		})

	if steps != refSteps || halted != refHalted {
		t.Fatalf("RunFeed = (%d,%v), Run = (%d,%v)", steps, halted, refSteps, refHalted)
	}
	if st.PC != ref.PC || st.Regs != ref.Regs {
		t.Fatalf("RunFeed state diverged from Run")
	}
	// 3 iterations: branch taken twice then not taken; 3 loads, 3 stores.
	if len(branches) != 3 || !branches[0] || !branches[1] || branches[2] {
		t.Errorf("branch feed = %v, want [true true false]", branches)
	}
	if loads != 3 || stores != 3 {
		t.Errorf("mem feed = %d loads / %d stores, want 3/3", loads, stores)
	}
}
