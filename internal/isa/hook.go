package isa

import "hash/fnv"

// RunHook observes the architectural effect of each executed instruction
// during RunHooked. The StepResult is reused between calls: hooks must copy
// anything they keep.
type RunHook func(res *StepResult)

// RunHooked is Run with a per-instruction observer. It is a separate loop
// so the unhooked Run hot path pays nothing for the feature; callers that
// pass a nil hook get plain Run behaviour.
func (s *ArchState) RunHooked(prog []Instruction, maxSteps int64, hook RunHook) (steps int64, halted bool) {
	if hook == nil {
		return s.Run(prog, maxSteps)
	}
	var res StepResult
	for steps < maxSteps {
		s.step(prog, &res)
		steps++
		hook(&res)
		if res.Halted {
			return steps, true
		}
	}
	return steps, false
}

// Fingerprint returns a stable 64-bit hash of the ISA definition: register
// count, opcode and condition vocabularies, per-op operand metadata and
// execution latencies. Trace files embed it so a trace recorded under one
// ISA revision is rejected — instead of silently misdecoded — by another.
func Fingerprint() uint64 {
	h := fnv.New64a()
	u8 := func(b byte) { h.Write([]byte{b}) }
	str := func(s string) { h.Write([]byte(s)); u8(0) }

	str("acb-isa")
	u8(NumRegs)
	u8(byte(numOps))
	u8(byte(numConds))
	for op := Op(0); op < numOps; op++ {
		str(op.String())
		u8(btoi(opHasDest[op]))
		u8(opNSrc[op])
		in := Instruction{Op: op}
		u8(byte(in.ExecLatency()))
	}
	for c := Cond(0); c < numConds; c++ {
		str(c.String())
		u8(btoi(c.UsesRs2()))
	}
	return h.Sum64()
}

func btoi(b bool) byte {
	if b {
		return 1
	}
	return 0
}
