package isa

import (
	"testing"
	"testing/quick"
)

func TestOpString(t *testing.T) {
	cases := map[Op]string{
		Nop: "nop", Add: "add", AddI: "addi", MovI: "movi",
		Load: "load", Store: "store", Br: "br", Jmp: "jmp", Halt: "halt",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", op, got, want)
		}
	}
	if got := Op(200).String(); got != "op(200)" {
		t.Errorf("invalid op = %q", got)
	}
}

func TestCondEval(t *testing.T) {
	cases := []struct {
		c       Cond
		a, b    int64
		want    bool
		usesRs2 bool
	}{
		{EQZ, 0, 99, true, false},
		{EQZ, 1, 0, false, false},
		{NEZ, 1, 0, true, false},
		{NEZ, 0, 0, false, false},
		{LTZ, -1, 0, true, false},
		{LTZ, 0, 0, false, false},
		{GEZ, 0, 0, true, false},
		{GEZ, -5, 0, false, false},
		{EQR, 3, 3, true, true},
		{EQR, 3, 4, false, true},
		{NER, 3, 4, true, true},
		{LTR, -2, 5, true, true},
		{LTR, 5, -2, false, true},
		{GER, 5, 5, true, true},
		{GER, 4, 5, false, true},
	}
	for _, tc := range cases {
		if got := tc.c.Eval(tc.a, tc.b); got != tc.want {
			t.Errorf("%s.Eval(%d,%d) = %v, want %v", tc.c, tc.a, tc.b, got, tc.want)
		}
		if got := tc.c.UsesRs2(); got != tc.usesRs2 {
			t.Errorf("%s.UsesRs2() = %v, want %v", tc.c, got, tc.usesRs2)
		}
	}
}

// TestCondComplement: each zero-comparing condition has a complement with
// the opposite outcome for every operand (property-based).
func TestCondComplement(t *testing.T) {
	pairs := [][2]Cond{{EQZ, NEZ}, {LTZ, GEZ}, {EQR, NER}, {LTR, GER}}
	f := func(a, b int64) bool {
		for _, p := range pairs {
			if p[0].Eval(a, b) == p[1].Eval(a, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInstructionMetadata(t *testing.T) {
	cases := []struct {
		in      Instruction
		dest    bool
		nsrc    int
		branch  bool
		control bool
		memOp   bool
	}{
		{Instruction{Op: Add, Rd: R1, Rs1: R2, Rs2: R3}, true, 2, false, false, false},
		{Instruction{Op: AddI, Rd: R1, Rs1: R2}, true, 1, false, false, false},
		{Instruction{Op: MovI, Rd: R1}, true, 0, false, false, false},
		{Instruction{Op: Load, Rd: R1, Rs1: R2}, true, 1, false, false, true},
		{Instruction{Op: Store, Rs1: R1, Rs2: R2}, false, 2, false, false, true},
		{Instruction{Op: Br, Cond: EQZ, Rs1: R1}, false, 1, true, true, false},
		{Instruction{Op: Br, Cond: LTR, Rs1: R1, Rs2: R2}, false, 2, true, true, false},
		{Instruction{Op: Jmp}, false, 0, false, true, false},
		{Instruction{Op: Halt}, false, 0, false, false, false},
		{Instruction{Op: Nop}, false, 0, false, false, false},
	}
	for _, tc := range cases {
		if got := tc.in.HasDest(); got != tc.dest {
			t.Errorf("%s HasDest = %v, want %v", tc.in.String(), got, tc.dest)
		}
		if got := tc.in.NumSources(); got != tc.nsrc {
			t.Errorf("%s NumSources = %d, want %d", tc.in.String(), got, tc.nsrc)
		}
		if got := tc.in.IsBranch(); got != tc.branch {
			t.Errorf("%s IsBranch = %v, want %v", tc.in.String(), got, tc.branch)
		}
		if got := tc.in.IsControl(); got != tc.control {
			t.Errorf("%s IsControl = %v, want %v", tc.in.String(), got, tc.control)
		}
		if got := tc.in.IsMem(); got != tc.memOp {
			t.Errorf("%s IsMem = %v, want %v", tc.in.String(), got, tc.memOp)
		}
	}
}

func TestALUResult(t *testing.T) {
	cases := []struct {
		in   Instruction
		a, b int64
		want int64
	}{
		{Instruction{Op: Add}, 2, 3, 5},
		{Instruction{Op: Sub}, 2, 3, -1},
		{Instruction{Op: And}, 0b1100, 0b1010, 0b1000},
		{Instruction{Op: Or}, 0b1100, 0b1010, 0b1110},
		{Instruction{Op: Xor}, 0b1100, 0b1010, 0b0110},
		{Instruction{Op: Shl}, 1, 4, 16},
		{Instruction{Op: Shr}, -8, 1, int64(uint64(0xFFFFFFFFFFFFFFF8) >> 1)},
		{Instruction{Op: Mul}, 7, 6, 42},
		{Instruction{Op: Div}, 42, 6, 7},
		{Instruction{Op: Div}, 42, 0, 0}, // division by zero defined as 0
		{Instruction{Op: AddI, Imm: 10}, 5, 0, 15},
		{Instruction{Op: AndI, Imm: 0xF}, 0x3C, 0, 0xC},
		{Instruction{Op: XorI, Imm: 0xFF}, 0x0F, 0, 0xF0},
		{Instruction{Op: ShrI, Imm: 3}, 64, 0, 8},
		{Instruction{Op: MulI, Imm: -2}, 21, 0, -42},
		{Instruction{Op: Mov}, 99, 0, 99},
		{Instruction{Op: MovI, Imm: -7}, 0, 0, -7},
	}
	for _, tc := range cases {
		if got := tc.in.ALUResult(tc.a, tc.b); got != tc.want {
			t.Errorf("%s ALUResult(%d,%d) = %d, want %d", tc.in.Op, tc.a, tc.b, got, tc.want)
		}
	}
}

func TestExecLatency(t *testing.T) {
	if (&Instruction{Op: Mul}).ExecLatency() != 3 {
		t.Error("mul latency != 3")
	}
	if (&Instruction{Op: Div}).ExecLatency() != 20 {
		t.Error("div latency != 20")
	}
	if (&Instruction{Op: Add}).ExecLatency() != 1 {
		t.Error("add latency != 1")
	}
}

// TestShiftMasking: shift amounts are masked to 6 bits — no panics or
// undefined results for any operand (property-based).
func TestShiftMasking(t *testing.T) {
	f := func(a, b int64) bool {
		shl := Instruction{Op: Shl}
		shr := Instruction{Op: Shr}
		_ = shl.ALUResult(a, b)
		_ = shr.ALUResult(a, b)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
