// Package isa defines the instruction set of the simulated machine.
//
// The ISA is a small RISC-like register machine: 16 general-purpose 64-bit
// integer registers, word-addressed memory, direct conditional branches and
// direct unconditional jumps. It is deliberately minimal — Auto-Predication
// of Critical Branches (ACB) operates on conditional direct branches,
// hammock bodies and reconvergence points, all of which are expressible
// here — while remaining rich enough to construct data-dependent,
// hard-to-predict control flow and realistic memory behaviour.
//
// A program is a slice of Instruction values addressed by index ("PC").
// Branch and jump targets are PC indices resolved at assembly time by
// package prog.
package isa

import "fmt"

// NumRegs is the number of architectural integer registers (r0..r15).
// r0 is a normal register, not hardwired to zero.
const NumRegs = 16

// Reg names an architectural register.
type Reg uint8

// Register aliases used throughout the workloads and tests.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
)

// String returns the assembly name of the register.
func (r Reg) String() string { return fmt.Sprintf("r%d", uint8(r)) }

// Op enumerates the operations of the ISA.
type Op uint8

// Operations. Arithmetic ops are three-register unless suffixed with I
// (register-immediate). Load reads rd = mem[rs1+imm]; Store writes
// mem[rs1+imm] = rs2. Br is a direct conditional branch comparing rs1
// against zero (or against rs2 for the *R conditions); Jmp is a direct
// unconditional jump. Halt ends the program.
const (
	Nop Op = iota
	Add
	Sub
	And
	Or
	Xor
	Shl
	Shr
	Mul
	Div
	AddI
	AndI
	XorI
	ShrI
	MulI
	Mov  // rd = rs1
	MovI // rd = imm
	Load
	Store
	Br
	Jmp
	Halt

	numOps
)

var opNames = [numOps]string{
	Nop:   "nop",
	Add:   "add",
	Sub:   "sub",
	And:   "and",
	Or:    "or",
	Xor:   "xor",
	Shl:   "shl",
	Shr:   "shr",
	Mul:   "mul",
	Div:   "div",
	AddI:  "addi",
	AndI:  "andi",
	XorI:  "xori",
	ShrI:  "shri",
	MulI:  "muli",
	Mov:   "mov",
	MovI:  "movi",
	Load:  "load",
	Store: "store",
	Br:    "br",
	Jmp:   "jmp",
	Halt:  "halt",
}

// String returns the mnemonic for the operation.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Cond enumerates branch conditions. Z-suffixed conditions compare rs1
// against zero; R-suffixed conditions compare rs1 against rs2.
type Cond uint8

// Branch conditions.
const (
	EQZ Cond = iota // rs1 == 0
	NEZ             // rs1 != 0
	LTZ             // rs1 < 0
	GEZ             // rs1 >= 0
	EQR             // rs1 == rs2
	NER             // rs1 != rs2
	LTR             // rs1 < rs2
	GER             // rs1 >= rs2

	numConds
)

var condNames = [numConds]string{
	EQZ: "eqz", NEZ: "nez", LTZ: "ltz", GEZ: "gez",
	EQR: "eqr", NER: "ner", LTR: "ltr", GER: "ger",
}

// String returns the assembly name of the condition.
func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cond(%d)", uint8(c))
}

// UsesRs2 reports whether the condition reads a second register operand.
func (c Cond) UsesRs2() bool { return c >= EQR }

// Eval evaluates the condition given the operand values.
func (c Cond) Eval(a, b int64) bool {
	switch c {
	case EQZ:
		return a == 0
	case NEZ:
		return a != 0
	case LTZ:
		return a < 0
	case GEZ:
		return a >= 0
	case EQR:
		return a == b
	case NER:
		return a != b
	case LTR:
		return a < b
	case GER:
		return a >= b
	}
	panic(fmt.Sprintf("isa: invalid condition %d", uint8(c)))
}

// Instruction is one decoded instruction. Fields that an operation does not
// use are zero. Target is a program counter index (valid for Br and Jmp).
type Instruction struct {
	Op     Op
	Cond   Cond
	Rd     Reg
	Rs1    Reg
	Rs2    Reg
	Imm    int64
	Target int
}

// opHasDest and opNSrc are per-opcode metadata tables. The rename stage
// consults them once per instruction; a data-dependent table load avoids
// the hard-to-predict multiway branch a switch compiles to (measurably
// hot in the simulator's rename loop). opNSrc holds Br's one-source case;
// NumSources adds the Cond-dependent second source.
var opHasDest = [numOps]bool{
	Add: true, Sub: true, And: true, Or: true, Xor: true, Shl: true,
	Shr: true, Mul: true, Div: true, AddI: true, AndI: true, XorI: true,
	ShrI: true, MulI: true, Mov: true, MovI: true, Load: true,
}

var opNSrc = [numOps]uint8{
	Add: 2, Sub: 2, And: 2, Or: 2, Xor: 2, Shl: 2, Shr: 2, Mul: 2,
	Div: 2, Store: 2, AddI: 1, AndI: 1, XorI: 1, ShrI: 1, MulI: 1,
	Mov: 1, Load: 1, Br: 1,
}

// HasDest reports whether the instruction writes a destination register.
func (in *Instruction) HasDest() bool { return opHasDest[in.Op] }

// NumSources returns how many register sources the instruction reads.
func (in *Instruction) NumSources() int {
	n := int(opNSrc[in.Op])
	if in.Op == Br && in.Cond.UsesRs2() {
		n = 2
	}
	return n
}

// Sources returns the register sources actually read by the instruction.
// The second return value is the count (0, 1 or 2).
func (in *Instruction) Sources() ([2]Reg, int) {
	n := in.NumSources()
	return [2]Reg{in.Rs1, in.Rs2}, n
}

// IsBranch reports whether the instruction is a conditional direct branch.
func (in *Instruction) IsBranch() bool { return in.Op == Br }

// IsJump reports whether the instruction is an unconditional direct jump.
func (in *Instruction) IsJump() bool { return in.Op == Jmp }

// IsControl reports whether the instruction can redirect control flow.
func (in *Instruction) IsControl() bool { return in.Op == Br || in.Op == Jmp }

// IsMem reports whether the instruction accesses memory.
func (in *Instruction) IsMem() bool { return in.Op == Load || in.Op == Store }

// String disassembles the instruction.
func (in *Instruction) String() string {
	switch in.Op {
	case Nop, Halt:
		return in.Op.String()
	case Add, Sub, And, Or, Xor, Shl, Shr, Mul, Div:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Rd, in.Rs1, in.Rs2)
	case AddI, AndI, XorI, ShrI, MulI:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Rd, in.Rs1, in.Imm)
	case Mov:
		return fmt.Sprintf("mov %s, %s", in.Rd, in.Rs1)
	case MovI:
		return fmt.Sprintf("movi %s, %d", in.Rd, in.Imm)
	case Load:
		return fmt.Sprintf("load %s, [%s+%d]", in.Rd, in.Rs1, in.Imm)
	case Store:
		return fmt.Sprintf("store [%s+%d], %s", in.Rs1, in.Imm, in.Rs2)
	case Br:
		if in.Cond.UsesRs2() {
			return fmt.Sprintf("br.%s %s, %s, @%d", in.Cond, in.Rs1, in.Rs2, in.Target)
		}
		return fmt.Sprintf("br.%s %s, @%d", in.Cond, in.Rs1, in.Target)
	case Jmp:
		return fmt.Sprintf("jmp @%d", in.Target)
	}
	return fmt.Sprintf("?(%d)", uint8(in.Op))
}

// MaxExecLatency is the largest latency ExecLatency can return (Div); the
// OOO core sizes its completion calendar with it.
const MaxExecLatency = 20

// ExecLatency returns the execution latency in cycles for non-memory
// operations (memory latency is determined by the cache hierarchy).
func (in *Instruction) ExecLatency() int {
	switch in.Op {
	case Mul, MulI:
		return 3
	case Div:
		return 20
	default:
		return 1
	}
}

// ALUResult computes the architectural result of a non-memory,
// non-control instruction from its operand values.
func (in *Instruction) ALUResult(a, b int64) int64 {
	switch in.Op {
	case Add:
		return a + b
	case Sub:
		return a - b
	case And:
		return a & b
	case Or:
		return a | b
	case Xor:
		return a ^ b
	case Shl:
		return a << (uint64(b) & 63)
	case Shr:
		return int64(uint64(a) >> (uint64(b) & 63))
	case Mul:
		return a * b
	case Div:
		if b == 0 {
			return 0
		}
		return a / b
	case AddI:
		return a + in.Imm
	case AndI:
		return a & in.Imm
	case XorI:
		return a ^ in.Imm
	case ShrI:
		return int64(uint64(a) >> (uint64(in.Imm) & 63))
	case MulI:
		return a * in.Imm
	case Mov:
		return a
	case MovI:
		return in.Imm
	}
	panic(fmt.Sprintf("isa: ALUResult on %s", in.Op))
}
