package config

import "testing"

func TestSkylakeParameters(t *testing.T) {
	c := Skylake()
	if c.AllocWidth != 4 {
		t.Errorf("alloc width = %d, want 4 (paper's Skylake-like baseline)", c.AllocWidth)
	}
	if c.ROBSize != 224 {
		t.Errorf("ROB = %d, want 224", c.ROBSize)
	}
	if c.IQSize != 97 {
		t.Errorf("IQ = %d, want 97", c.IQSize)
	}
	if c.LQSize != 72 || c.SQSize != 56 {
		t.Errorf("LQ/SQ = %d/%d, want 72/56", c.LQSize, c.SQSize)
	}
	if c.PRFSize <= c.ROBSize+16 {
		t.Errorf("PRF %d cannot cover ROB %d + architectural registers", c.PRFSize, c.ROBSize)
	}
	if c.FrontEndLatency <= 0 {
		t.Error("front-end latency must be positive")
	}
}

func TestScaled(t *testing.T) {
	base := Skylake()
	for _, f := range []int{1, 2, 3} {
		c := Scaled(f)
		if c.AllocWidth != base.AllocWidth*f {
			t.Errorf("scale %d alloc = %d", f, c.AllocWidth)
		}
		if c.ROBSize != base.ROBSize*f {
			t.Errorf("scale %d ROB = %d", f, c.ROBSize)
		}
		if c.Name == "" {
			t.Error("scaled config needs a name")
		}
	}
	if Scaled(1).Name != "skylake-1x" || Scaled(3).Name != "skylake-3x" {
		t.Error("scaled names wrong")
	}
}

func TestFuture(t *testing.T) {
	c := Future()
	if c.AllocWidth != 8 {
		t.Errorf("future alloc = %d, want 8 (Sec. V-D: 8-wide)", c.AllocWidth)
	}
	base := Skylake()
	if c.ROBSize != 2*base.ROBSize || c.IQSize != 2*base.IQSize {
		t.Error("future core must double execution resources")
	}
	if c.FetchWidth != 2*base.FetchWidth {
		t.Error("future core must double fetch resources")
	}
}
