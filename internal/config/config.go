// Package config defines the simulated core configurations: a baseline
// similar in parameters to the Intel Skylake processor (the paper's
// Table II) and the scaled-up variants used by Fig. 1 and Section V-D.
package config

import (
	"fmt"

	"acb/internal/mem"
)

// ByName resolves a configuration by CLI/API name: "skylake" (alias
// "skylake-1x"), "skylake-2x", "skylake-3x", or "future" (alias
// "future-8wide"). acbsim, acbd and the service request parser all share
// this mapping.
func ByName(name string) (Core, error) {
	switch name {
	case "", "skylake", "skylake-1x":
		return Skylake(), nil
	case "skylake-2x":
		return Scaled(2), nil
	case "skylake-3x":
		return Scaled(3), nil
	case "future", "future-8wide":
		return Future(), nil
	}
	return Core{}, fmt.Errorf("config: unknown configuration %q", name)
}

// Core holds the micro-architectural parameters of a simulated core.
type Core struct {
	Name string

	FetchWidth  int // instructions fetched per cycle
	AllocWidth  int // rename/allocate (OOO allocation) width
	IssueWidth  int // max instructions issued to execution per cycle
	RetireWidth int // commit width

	ROBSize int
	IQSize  int
	LQSize  int
	SQSize  int
	PRFSize int

	// FrontEndLatency is the fetch-to-rename depth in cycles; it is also
	// the redirect (flush) latency charged on a misprediction, i.e. the
	// paper's mispred_penalty pipeline component.
	FrontEndLatency int

	Mem mem.HierarchyConfig
}

// Skylake returns the baseline configuration, similar in parameters to the
// Intel Skylake core the paper baselines against: 4-wide allocation,
// 224-entry ROB, 97-entry scheduler, 72/56 load/store queues, ~16-cycle
// redirect.
func Skylake() Core {
	return Core{
		Name:            "skylake-1x",
		FetchWidth:      6,
		AllocWidth:      4,
		IssueWidth:      8,
		RetireWidth:     4,
		ROBSize:         224,
		IQSize:          97,
		LQSize:          72,
		SQSize:          56,
		PRFSize:         280,
		FrontEndLatency: 16,
		Mem:             mem.SkylakeHierarchy(),
	}
}

// Scaled returns the Skylake configuration scaled by the given factor in
// both width and depth, as in the paper's Fig. 1 continuum (1x, 2x, 3x).
func Scaled(factor int) Core {
	c := Skylake()
	c.Name = scaledName(factor)
	c.FetchWidth *= factor
	c.AllocWidth *= factor
	c.IssueWidth *= factor
	c.RetireWidth *= factor
	c.ROBSize *= factor
	c.IQSize *= factor
	c.LQSize *= factor
	c.SQSize *= factor
	c.PRFSize *= factor
	return c
}

func scaledName(factor int) string {
	switch factor {
	case 1:
		return "skylake-1x"
	case 2:
		return "skylake-2x"
	case 3:
		return "skylake-3x"
	}
	return "skylake-nx"
}

// Future returns the Section V-D configuration: 8-wide with twice the
// execution and fetch resources of the baseline.
func Future() Core {
	c := Skylake()
	c.Name = "future-8wide"
	c.FetchWidth = 12
	c.AllocWidth = 8
	c.IssueWidth = 16
	c.RetireWidth = 8
	c.ROBSize *= 2
	c.IQSize *= 2
	c.LQSize *= 2
	c.SQSize *= 2
	c.PRFSize *= 2
	return c
}
