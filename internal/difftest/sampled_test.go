package difftest

import (
	"testing"

	"acb/internal/bpu"
	"acb/internal/config"
	"acb/internal/isa"
	"acb/internal/ooo"
	"acb/internal/sample"
)

// fuzzPlan shrinks the sampling intervals to fuzz-program scale (a few
// thousand steps) so generated programs yield several windows.
func fuzzPlan() sample.Plan {
	return sample.Plan{Interval: 2_000, Warmup: 200, Measure: 600}
}

// TestSampledAgainstGeneratedPrograms is the tentpole's differential
// obligation: for a spread of generated programs, sampled simulation must
// agree with the functional reference at every window boundary, on every
// engine of the sampled matrix.
func TestSampledAgainstGeneratedPrograms(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		p := Generate(seed, DefaultGenConfig())
		rep := CheckSampled(p, fuzzPlan(), Options{})
		if !rep.OK() {
			for _, f := range rep.Failures {
				t.Errorf("seed %d: %s", seed, f)
			}
		}
		for name, e := range rep.Engines {
			if e.Windows > 0 && e.SampledCPI <= 0 {
				t.Errorf("seed %d [%s]: %d windows but sampled CPI %v", seed, name, e.Windows, e.SampledCPI)
			}
		}
	}
}

// TestSampledSeedCorpus replays the curated corpus through the sampled
// checker — the same programs that pin each convergence type in the full
// differential campaign.
func TestSampledSeedCorpus(t *testing.T) {
	for _, e := range SeedCorpus() {
		rep := CheckSampled(e.Prog, fuzzPlan(), Options{})
		if !rep.OK() {
			for _, f := range rep.Failures {
				t.Errorf("%s: %s", e.Name, f)
			}
		}
	}
}

// TestCheckpointDeterminism is the determinism contract for checkpointed
// starts: for every engine of the full matrix and several seeds, (a)
// resuming twice from the same mid-run checkpoint is byte-identical in
// timing and architectural outcome, and (b) the resumed run's final
// architectural state equals the uninterrupted detailed run's. Timing
// (cycles) of a resumed run legitimately differs from the uninterrupted
// run — microarchitectural state starts cold — so only architectural
// state is compared across that pair.
func TestCheckpointDeterminism(t *testing.T) {
	seeds := []uint64{3, 17, 2026}
	for _, seed := range seeds {
		p := Generate(seed, DefaultGenConfig())
		asm, err := Assemble(p)
		if err != nil {
			t.Fatalf("seed %d: assemble: %v", seed, err)
		}
		ref := isa.NewArchState(asm.Mem.Clone())
		steps, halted := ref.Run(asm.Insts, asm.StepBound+16)
		if !halted {
			t.Fatalf("seed %d: functional run did not halt", seed)
		}
		mid := steps / 2
		st := isa.NewArchState(asm.Mem.Clone())
		st.Run(asm.Insts, mid)
		ck := st.Checkpoint(mid)

		for _, e := range DefaultMatrix() {
			run := func(from *isa.Checkpoint) (ooo.Result, *isa.Memory, error) {
				var c *ooo.Core
				if from != nil {
					c = ooo.NewFromCheckpoint(cfgFor(), asm.Insts, bpu.NewTAGE(bpu.DefaultTAGEConfig()), e.NewScheme(asm), from)
				} else {
					c = ooo.NewWithMemory(cfgFor(), asm.Insts, bpu.NewTAGE(bpu.DefaultTAGEConfig()), e.NewScheme(asm), asm.Mem.Clone())
				}
				res, err := c.Run(steps + 64)
				return res, c.CommitMemory(), err
			}

			full, fullMem, err := run(nil)
			if err != nil || !full.Halted {
				t.Errorf("seed %d [%s]: full run halted=%v err=%v", seed, e.Name, full.Halted, err)
				continue
			}
			a, aMem, errA := run(ck)
			b, bMem, errB := run(ck)
			if errA != nil || errB != nil || !a.Halted || !b.Halted {
				t.Errorf("seed %d [%s]: resumed runs: errA=%v errB=%v haltedA=%v haltedB=%v",
					seed, e.Name, errA, errB, a.Halted, b.Halted)
				continue
			}

			// (a) Two resumes must agree on everything, timing included.
			if a.Cycles != b.Cycles || a.Retired != b.Retired || a.Flushes != b.Flushes ||
				a.Mispredicts != b.Mispredicts || a.Predications != b.Predications ||
				a.DivFlushes != b.DivFlushes || a.FinalRegs != b.FinalRegs {
				t.Errorf("seed %d [%s]: twin resumes diverge: %+v vs %+v", seed, e.Name, a, b)
				continue
			}
			if diffs := aMem.DiffWords(bMem, 1); len(diffs) > 0 {
				t.Errorf("seed %d [%s]: twin resume memories diverge: %+v", seed, e.Name, diffs)
			}

			// (b) Resume must land on the full run's architectural end.
			if ck.Retired+a.Retired != full.Retired {
				t.Errorf("seed %d [%s]: resume retired %d+%d != full %d", seed, e.Name, ck.Retired, a.Retired, full.Retired)
			}
			if a.FinalRegs != full.FinalRegs {
				t.Errorf("seed %d [%s]: resumed final regs != full run", seed, e.Name)
			}
			if diffs := aMem.DiffWords(fullMem, 3); len(diffs) > 0 {
				t.Errorf("seed %d [%s]: resumed final memory != full run: %+v", seed, e.Name, diffs)
			}
		}
	}
}

func cfgFor() config.Core { return config.Skylake() }
