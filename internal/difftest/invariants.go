package difftest

import (
	"fmt"

	"acb/internal/config"
	"acb/internal/core"
	"acb/internal/ooo"
)

// Artifacts is everything one engine run exposes to the invariant pack.
type Artifacts struct {
	Engine string
	Cfg    config.Core
	Res    ooo.Result
	Pipe   *ooo.PipeStats
	Trace  *ooo.TraceRing
	Scheme ooo.Scheme
	Steps  int64 // functional instruction count
	Budget int64 // retire budget granted to the run
}

// Invariant is one pluggable per-run check; it sees the run's artifacts
// and returns a violation description or nil.
type Invariant struct {
	Name  string
	Check func(*Artifacts) error
}

// DefaultInvariants returns the standard pack: every differential run
// enforces these beyond raw architectural equality.
func DefaultInvariants() []Invariant {
	return []Invariant{
		{Name: "cpi-sums-to-cycles", Check: checkCPISums},
		{Name: "occupancy-within-capacity", Check: checkOccupancy},
		{Name: "counter-sanity", Check: checkCounterSanity},
		{Name: "acb-counter-bounds", Check: checkACBBounds},
		{Name: "ctx-lifecycle", Check: checkCtxLifecycle},
	}
}

// checkCPISums: the CPI attribution charges exactly one bucket per cycle,
// so the buckets sum to the attributed cycle count and that count is the
// run's cycle count.
func checkCPISums(a *Artifacts) error {
	p := a.Res.CPI
	if p == nil {
		return nil
	}
	if s := p.Sum(); s != p.Cycles {
		return fmt.Errorf("buckets sum to %d, attributed cycles %d", s, p.Cycles)
	}
	if p.Cycles != a.Res.Cycles {
		return fmt.Errorf("attributed %d cycles, run took %d", p.Cycles, a.Res.Cycles)
	}
	return nil
}

// checkOccupancy: the ROB and issue queue never exceed their configured
// capacities.
func checkOccupancy(a *Artifacts) error {
	if a.Pipe == nil {
		return nil
	}
	rob, iq := a.Pipe.MaxOccupancy()
	if rob > a.Cfg.ROBSize {
		return fmt.Errorf("ROB occupancy peaked at %d, capacity %d", rob, a.Cfg.ROBSize)
	}
	if iq > a.Cfg.IQSize {
		return fmt.Errorf("IQ occupancy peaked at %d, capacity %d", iq, a.Cfg.IQSize)
	}
	return nil
}

// checkCounterSanity: cross-field consistency of the run's counters.
func checkCounterSanity(a *Artifacts) error {
	r := a.Res
	switch {
	case r.Retired < 0 || r.Retired > a.Budget:
		return fmt.Errorf("retired %d outside [0, budget %d]", r.Retired, a.Budget)
	case r.Retired > 0 && r.Cycles <= 0:
		return fmt.Errorf("retired %d in %d cycles", r.Retired, r.Cycles)
	case r.DivFlushes > r.Flushes:
		return fmt.Errorf("divergence flushes %d exceed total flushes %d", r.DivFlushes, r.Flushes)
	case r.Mispredicts > r.CondBranches:
		return fmt.Errorf("mispredicts %d exceed conditional branches %d", r.Mispredicts, r.CondBranches)
	case r.WrongPathAllocs > r.Allocations:
		return fmt.Errorf("wrong-path allocations %d exceed allocations %d", r.WrongPathAllocs, r.Allocations)
	}
	return nil
}

// checkACBBounds: the ACB Table's hardware counters stay inside their bit
// widths (6-bit confidence, 2-bit utility, 4-bit involvement) and learned
// metadata is structurally sane.
func checkACBBounds(a *Artifacts) error {
	acb, ok := a.Scheme.(*core.ACB)
	if !ok {
		return nil
	}
	var err error
	acb.Table().ForEach(func(e *core.ACBEntry) {
		if err != nil {
			return
		}
		switch {
		case e.Confidence > 63:
			err = fmt.Errorf("pc %d: confidence %d exceeds 6-bit bound", e.PC, e.Confidence)
		case e.Utility > 3:
			err = fmt.Errorf("pc %d: utility %d exceeds 2-bit bound", e.PC, e.Utility)
		case e.Involvement > 15:
			err = fmt.Errorf("pc %d: involvement %d exceeds 4-bit bound", e.PC, e.Involvement)
		case !e.Backward && e.ReconPC <= e.PC:
			err = fmt.Errorf("pc %d: forward branch learned reconvergence at %d", e.PC, e.ReconPC)
		case e.BodySize < 0:
			err = fmt.Errorf("pc %d: negative body size %d", e.PC, e.BodySize)
		}
	})
	return err
}

// checkCtxLifecycle: every dual-fetch context that opens is eventually
// resolved — it reconverges, diverges, or is squashed by a pipeline flush.
// A context still open when the run halts (in-flight at the end) is
// allowed. Skipped when the bounded ring dropped events, since the opens
// may have scrolled out.
func checkCtxLifecycle(a *Artifacts) error {
	if a.Trace == nil || a.Trace.Dropped() > 0 {
		return nil
	}
	events := a.Trace.Events()
	type openCtx struct {
		cycle int64
		pc    int
	}
	open := make(map[int64]openCtx)
	var last int64
	var lastFlush int64 = -1
	for _, ev := range events {
		if ev.Cycle < last {
			return fmt.Errorf("event cycles regress: %d after %d (%s)", ev.Cycle, last, ev.Kind)
		}
		last = ev.Cycle
		switch ev.Kind {
		case ooo.EvDualFetchOpen:
			open[ev.Ctx] = openCtx{cycle: ev.Cycle, pc: ev.PC}
		case ooo.EvDualFetchSwitch:
			if _, ok := open[ev.Ctx]; !ok {
				return fmt.Errorf("ctx %d switched paths without an open event", ev.Ctx)
			}
		case ooo.EvReconverge, ooo.EvDiverge:
			if _, ok := open[ev.Ctx]; !ok {
				return fmt.Errorf("ctx %d closed (%s) without an open event", ev.Ctx, ev.Kind)
			}
			delete(open, ev.Ctx)
		case ooo.EvFlushMispredict, ooo.EvFlushDivergence:
			lastFlush = ev.Cycle
		}
	}
	// Unresolved contexts must have been squashed by a later flush, except
	// for contexts still in flight when the run ended.
	unresolved := 0
	for _, oc := range open {
		if lastFlush < oc.cycle {
			unresolved++
		}
	}
	if unresolved > 1 {
		return fmt.Errorf("%d dual-fetch contexts opened but never reconverged, diverged, or were flushed", unresolved)
	}
	return nil
}
