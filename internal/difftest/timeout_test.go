package difftest

import (
	"context"
	"strings"
	"testing"
	"time"

	"acb/internal/ooo"
)

// slowScheme simulates a wedged engine: every retire tick stalls, so a
// run that would take milliseconds takes seconds. The timeout plumbing
// must convert it into a prompt FailRun instead of hanging the caller.
type slowScheme struct{ d time.Duration }

func (s *slowScheme) Name() string { return "slow" }
func (s *slowScheme) ShouldPredicate(int, bool, int, uint64) (ooo.PredSpec, bool) {
	return ooo.PredSpec{}, false
}
func (s *slowScheme) OnFetch(ooo.FetchEvent)           {}
func (s *slowScheme) OnFlush()                         {}
func (s *slowScheme) OnBranchResolve(ooo.ResolveEvent) {}
func (s *slowScheme) OnRetireTick(int64)               { time.Sleep(s.d) }

func slowEngine(d time.Duration) Engine {
	return Engine{Name: "slow", NewScheme: func(*Assembled) ooo.Scheme { return &slowScheme{d: d} }}
}

// TestTimeoutUnsticksSlowEngine: with Options.Timeout set, a check against
// an injected slow engine returns a FailRun cancellation instead of
// stalling until the run finishes on its own.
func TestTimeoutUnsticksSlowEngine(t *testing.T) {
	p := Generate(3, DefaultGenConfig())
	opts := Options{
		Matrix:     []Engine{slowEngine(10 * time.Microsecond)},
		Invariants: []Invariant{},
		Timeout:    30 * time.Millisecond,
	}
	start := time.Now()
	rep := Check(p, opts)
	elapsed := time.Since(start)
	if rep.OK() {
		t.Fatalf("slow engine passed under a 30ms timeout")
	}
	f := rep.Failures[0]
	if f.Kind != FailRun || !strings.Contains(f.Detail, "cancelled") {
		t.Fatalf("failure = %s, want a FailRun cancellation", f)
	}
	// Generous bound: the point is "returns promptly", not exact latency
	// (cancellation is polled every ctxCheckInterval cycles).
	if elapsed > 30*time.Second {
		t.Fatalf("check took %v despite timeout", elapsed)
	}
}

// TestShrinkDoesNotStallOnHungEngine is the regression test for the
// shrinker stall: candidate re-checks run under the same Options, so the
// per-candidate timeout bounds every reduction attempt too.
func TestShrinkDoesNotStallOnHungEngine(t *testing.T) {
	p := Generate(5, DefaultGenConfig())
	opts := Options{
		Matrix:     []Engine{slowEngine(10 * time.Microsecond)},
		Invariants: []Invariant{},
		Timeout:    30 * time.Millisecond,
	}
	start := time.Now()
	shrunk, rep := Shrink(p, opts, 3)
	elapsed := time.Since(start)
	if shrunk == nil || rep.OK() {
		t.Fatalf("expected the slow engine to keep failing under timeout")
	}
	if rep.Failures[0].Kind != FailRun {
		t.Fatalf("failure = %s, want FailRun", rep.Failures[0])
	}
	if elapsed > 60*time.Second {
		t.Fatalf("shrink of 5 candidates took %v despite per-candidate timeout", elapsed)
	}
}

// TestContextCancelsCheck: a pre-cancelled Options.Context fails every
// engine promptly (the campaign shutdown path).
func TestContextCancelsCheck(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := Generate(7, DefaultGenConfig())
	rep := Check(p, Options{Context: ctx})
	if rep.OK() {
		t.Fatalf("check passed under a cancelled context")
	}
	for _, f := range rep.Failures {
		if f.Kind != FailRun {
			t.Fatalf("failure = %s, want FailRun cancellations only", f)
		}
	}
	if len(rep.Failures) != len(DefaultMatrix()) {
		t.Fatalf("%d failures, want one per engine (%d)", len(rep.Failures), len(DefaultMatrix()))
	}
}
