package difftest

import (
	"fmt"

	"acb/internal/isa"
	"acb/internal/prog"
)

// Prog is the fuzzer's serializable program representation: an outer
// counted loop whose body is a tree of ALU ops, aliasing loads/stores,
// hammocks (nested, sibling, overlapping) and inner loops with backward
// branches. Every branch is either a forward hammock branch with a static
// merge point or a bounded counted loop, so halt-reachability holds by
// construction. Assemble lowers the tree onto prog.Builder and reports the
// exact predication sites (branch PC, reconvergence PC, fetch-first
// direction, body bound) the shape implies — the ground truth the forced
// engines predicate with and ACB's Learning Table is supposed to discover.
type Prog struct {
	Seed  uint64 `json:"seed"`  // data seed: memory image + initial registers
	Iters int64  `json:"iters"` // outer loop trip count
	Nodes []Node `json:"nodes"`
}

// Node kinds.
const (
	KindALU     = "alu"
	KindLoad    = "load"
	KindStore   = "store"
	KindHammock = "hammock"
	KindLoop    = "loop"
)

// Hammock shapes.
const (
	ShapeIf      = "if"      // Type-1: IF without ELSE (branch target == merge)
	ShapeIfElse  = "ifelse"  // Type-2: IF-ELSE with a skip jump
	ShapeType3   = "type3"   // Type-3: taken path beyond the merge, jumping back
	ShapeOverlap = "overlap" // IF body containing an early-out branch to the same merge
)

// Node is one element of the program tree. Register fields index the pool
// registers (r5..r12); immediates are small constants. Unused fields stay
// zero and are omitted from JSON, keeping corpus files readable.
type Node struct {
	Kind string `json:"kind"`

	// ALU: Dst = A <op> B (or <op>I with Imm).
	Op  string `json:"op,omitempty"`
	Dst int    `json:"dst,omitempty"`
	A   int    `json:"a,omitempty"`
	B   int    `json:"b,omitempty"`
	Imm int64  `json:"imm,omitempty"`

	// Load: pool[Dst] = scratch[pool[A] & slotMask].
	// Store: scratch[pool[A] & slotMask] = pool[B].

	// Hammock.
	Shape   string `json:"shape,omitempty"`
	CondBit int    `json:"condbit,omitempty"` // bit of the condition word (0..7)
	Then    []Node `json:"then,omitempty"`
	Else    []Node `json:"else,omitempty"`
	// NoPred excludes the shape's branch from the recorded predication
	// sites (the forced engines then speculate it normally).
	NoPred bool `json:"nopred,omitempty"`

	// Loop: Trip 1..4 repeats Body; Trip 0 draws the trip count (1..4)
	// from the condition word at run time (data-dependent backward branch).
	Trip int    `json:"trip,omitempty"`
	Body []Node `json:"body,omitempty"`
}

// Memory layout. Loads and stores all land in a small shared scratch
// region, so false-path stores, true-path loads and sibling hammocks alias
// each other aggressively — exactly the LSQ-invalidation traffic the
// paper's Sec. III-C3 machinery must get right.
const (
	condTableBase  = 0x10_0000
	condTableWords = 256
	scratchBase    = 0x4_0000
	scratchWords   = 64
	slotMask       = scratchWords - 1
)

// Register conventions (pool registers are the only ones AST nodes name):
//
//	r0 outer counter   r1 outer limit    r2 condition word
//	r3 address temp    r4 cond/compare temp
//	r5..r12 pool       r13..r15 inner-loop counters (by nesting depth)
const (
	numPool   = 8
	poolBase  = 5
	maxLoopD  = 3
	loopBase  = 13
	maxTrip   = 4
	condBits  = 8
	condABits = condTableWords - 1
)

func poolReg(i int) isa.Reg { return isa.Reg(poolBase + ((i%numPool)+numPool)%numPool) }

// Site is one statically known predication site of an assembled program.
type Site struct {
	Kind       string // hammock shape or "loop"
	BranchPC   int
	ReconPC    int
	FirstTaken bool
	MaxBody    int  // divergence threshold covering the longer fetched path
	Backward   bool // loop back-edge
}

// Assembled is the lowered form of a Prog.
type Assembled struct {
	Insts []isa.Instruction
	Mem   *isa.Memory
	Sites []Site
	// StepsPerIter bounds functional steps per outer iteration (loops
	// counted at their maximum trip); StepBound bounds the whole run.
	StepsPerIter int64
	StepBound    int64
}

// asmState carries assembly-time state through the tree walk.
type asmState struct {
	b     *prog.Builder
	sites []Site
	label int // unique label counter
	site  int // site index (condition-table stride)
	depth int // loop nesting depth
}

func (a *asmState) fresh(kind string) string {
	a.label++
	return fmt.Sprintf("%s%d", kind, a.label)
}

// Assemble lowers the program tree to instructions plus its initial memory
// image and predication-site list. It is deterministic: the same Prog
// always yields the identical program, image and sites.
func Assemble(p *Prog) (*Assembled, error) {
	if p.Iters <= 0 {
		return nil, fmt.Errorf("difftest: non-positive iteration count %d", p.Iters)
	}
	r := NewRNG(p.Seed)
	m := isa.NewMemory()
	for i := int64(0); i < condTableWords; i++ {
		m.Store(condTableBase+i*8, int64(r.Uint64()&0xFFFF))
	}
	for i := int64(0); i < scratchWords; i++ {
		m.Store(scratchBase+i*8, int64(r.Uint64()&0xFFFF))
	}

	a := &asmState{b: prog.NewBuilder()}
	b := a.b
	b.MovI(isa.R0, 0)
	b.MovI(isa.R1, p.Iters)
	for i := 0; i < numPool; i++ {
		b.MovI(poolReg(i), int64(r.Uint64()&0xFF)+1)
	}
	for d := 0; d < maxLoopD; d++ {
		b.MovI(isa.Reg(loopBase+d), 0)
	}

	b.Label("outer")
	perIter := a.emitNodes(p.Nodes)
	b.AddI(isa.R0, isa.R0, 1)
	b.Sub(isa.R4, isa.R0, isa.R1)
	b.Brnz(isa.R4, "outer")
	b.Halt()
	perIter += 3

	insts, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Assembled{
		Insts:        insts,
		Mem:          m,
		Sites:        a.sites,
		StepsPerIter: perIter,
		StepBound:    int64(2+numPool+maxLoopD) + perIter*p.Iters + 1,
	}, nil
}

// emitNodes emits a node list and returns its per-execution step bound.
func (a *asmState) emitNodes(ns []Node) int64 {
	var steps int64
	for i := range ns {
		steps += a.emitNode(&ns[i])
	}
	return steps
}

func (a *asmState) emitNode(n *Node) int64 {
	switch n.Kind {
	case KindALU:
		a.emitALU(n)
		return 1
	case KindLoad:
		a.emitSlotAddr(n.A)
		a.b.Load(poolReg(n.Dst), isa.R3, 0)
		return 5
	case KindStore:
		a.emitSlotAddr(n.A)
		a.b.Store(isa.R3, 0, poolReg(n.B))
		return 5
	case KindHammock:
		return a.emitHammock(n)
	case KindLoop:
		return a.emitLoop(n)
	default:
		// Unknown kinds (hand-edited corpus files) degrade to a no-op so a
		// stale corpus cannot wedge the harness.
		a.b.Nop()
		return 1
	}
}

func (a *asmState) emitALU(n *Node) {
	b := a.b
	d, s1, s2 := poolReg(n.Dst), poolReg(n.A), poolReg(n.B)
	switch n.Op {
	case "add":
		b.Add(d, s1, s2)
	case "sub":
		b.Sub(d, s1, s2)
	case "and":
		b.And(d, s1, s2)
	case "or":
		b.Or(d, s1, s2)
	case "xor":
		b.Xor(d, s1, s2)
	case "mul":
		b.Mul(d, s1, s2)
	case "div":
		b.Div(d, s1, s2)
	case "addi":
		b.AddI(d, s1, n.Imm)
	case "andi":
		b.AndI(d, s1, n.Imm)
	case "xori":
		b.XorI(d, s1, n.Imm)
	case "shri":
		b.ShrI(d, s1, n.Imm&63)
	case "muli":
		b.MulI(d, s1, n.Imm)
	case "mov":
		b.Mov(d, s1)
	case "movi":
		b.MovI(d, n.Imm)
	default:
		b.AddI(d, s1, 1)
	}
}

// emitSlotAddr computes r3 = scratchBase + (pool[src] & slotMask)*8.
func (a *asmState) emitSlotAddr(src int) {
	b := a.b
	b.AndI(isa.R4, poolReg(src), slotMask)
	b.MulI(isa.R4, isa.R4, 8)
	b.MovI(isa.R3, scratchBase)
	b.Add(isa.R3, isa.R3, isa.R4)
}

// emitCondWord loads this site's condition word into r2: a data-dependent,
// per-iteration pseudo-random value from the condition table, with a
// per-site stride so sibling sites see decorrelated streams.
func (a *asmState) emitCondWord() {
	b := a.b
	a.site++
	b.AddI(isa.R4, isa.R0, int64(a.site*7))
	b.AndI(isa.R4, isa.R4, condABits)
	b.MulI(isa.R4, isa.R4, 8)
	b.MovI(isa.R3, condTableBase)
	b.Add(isa.R3, isa.R3, isa.R4)
	b.Load(isa.R2, isa.R3, 0)
}

const condWordCost = 6

// emitHammock emits one hammock shape, recording its predication site.
func (a *asmState) emitHammock(n *Node) int64 {
	b := a.b
	a.emitCondWord()
	b.ShrI(isa.R4, isa.R2, int64(n.CondBit&(condBits-1)))
	b.AndI(isa.R4, isa.R4, 1)
	steps := int64(condWordCost + 2)

	end := a.fresh("end")
	switch n.Shape {
	case ShapeIfElse:
		elseL := a.fresh("else")
		branchPC := b.PC()
		b.Br(isa.EQZ, isa.R4, 0, elseL)
		thenStart := b.PC()
		thenSteps := a.emitNodes(n.Then)
		b.Jmp(end)
		thenLen := b.PC() - thenStart
		b.Label(elseL)
		elseStart := b.PC()
		elseSteps := a.emitNodes(n.Else)
		elseLen := b.PC() - elseStart
		b.Label(end)
		a.addSite(n, Site{
			Kind: n.Shape, BranchPC: branchPC, ReconPC: b.PC(),
			MaxBody: maxInt(thenLen, elseLen) + 8,
		})
		return steps + 1 + maxInt64(thenSteps+1, elseSteps)

	case ShapeType3:
		tpath := a.fresh("tpath")
		recon := a.fresh("recon")
		branchPC := b.PC()
		b.Br(isa.NEZ, isa.R4, 0, tpath)
		ntStart := b.PC()
		ntSteps := a.emitNodes(n.Else)
		ntLen := b.PC() - ntStart
		b.Label(recon)
		reconPC := b.PC()
		b.AddI(poolReg(n.Dst), poolReg(n.Dst), 1)
		b.Jmp(end)
		tStart := b.PC()
		b.Label(tpath)
		tSteps := a.emitNodes(n.Then)
		b.Jmp(recon)
		tLen := b.PC() - tStart
		b.Label(end)
		a.addSite(n, Site{
			Kind: n.Shape, BranchPC: branchPC, ReconPC: reconPC,
			FirstTaken: true, MaxBody: maxInt(tLen, ntLen) + 8,
		})
		return steps + 1 + maxInt64(tSteps+1, ntSteps) + 2

	case ShapeOverlap:
		branchPC := b.PC()
		b.Br(isa.EQZ, isa.R4, 0, end)
		bodyStart := b.PC()
		part1 := a.emitNodes(n.Then)
		// Early-out branch into the same merge point: the inner hammock
		// overlaps the outer one (shared reconvergence).
		b.AndI(isa.R4, poolReg(n.B), 1)
		b.Br(isa.NEZ, isa.R4, 0, end)
		part2 := a.emitNodes(n.Else)
		bodyLen := b.PC() - bodyStart
		b.Label(end)
		a.addSite(n, Site{
			Kind: n.Shape, BranchPC: branchPC, ReconPC: b.PC(),
			MaxBody: bodyLen + 8,
		})
		return steps + 1 + part1 + 2 + part2

	default: // ShapeIf
		branchPC := b.PC()
		b.Br(isa.EQZ, isa.R4, 0, end)
		bodyStart := b.PC()
		bodySteps := a.emitNodes(n.Then)
		bodyLen := b.PC() - bodyStart
		b.Label(end)
		a.addSite(n, Site{
			Kind: ShapeIf, BranchPC: branchPC, ReconPC: b.PC(),
			MaxBody: bodyLen + 8,
		})
		return steps + 1 + bodySteps
	}
}

// emitLoop emits a counted inner loop; its back-edge is a backward
// predication site when the unrolled walk fits a plausible body bound.
func (a *asmState) emitLoop(n *Node) int64 {
	b := a.b
	if a.depth >= maxLoopD {
		// Nesting deeper than the reserved counter registers degrades to a
		// single body execution (hand-edited corpus safety).
		return a.emitNodes(n.Body)
	}
	ctr := isa.Reg(loopBase + a.depth)
	var steps int64
	if n.Trip > 0 {
		b.MovI(ctr, int64(clampInt(n.Trip, 1, maxTrip)))
		steps++
	} else {
		a.emitCondWord()
		b.AndI(isa.R4, isa.R2, maxTrip-1)
		b.AddI(isa.R4, isa.R4, 1)
		b.Mov(ctr, isa.R4)
		steps += condWordCost + 3
	}
	top := a.fresh("loop")
	b.Label(top)
	bodyStart := b.PC()
	a.depth++
	bodySteps := a.emitNodes(n.Body)
	a.depth--
	b.AddI(ctr, ctr, -1)
	branchPC := b.PC()
	b.Br(isa.NEZ, ctr, 0, top)
	bodyLen := b.PC() + 1 - bodyStart
	site := Site{
		Kind: "loop", BranchPC: branchPC, ReconPC: branchPC + 1,
		FirstTaken: true, Backward: true,
		MaxBody: bodyLen*maxTrip + 8,
	}
	if site.MaxBody <= 72 {
		a.addSite(n, site)
	}
	return steps + (bodySteps+2)*maxTrip
}

// maxBodyCap bounds every recorded site's divergence threshold. Stall-mode
// bodies occupy the issue queue until the predicated branch resolves, and
// the branch itself cannot issue until the fetch walk closes — so both
// phases' bodies (up to 2×MaxBody) must fit in the IQ with room to spare
// or the pipeline wedges by construction. The paper sizes its convergence
// window N=40 against a 97-entry IQ for exactly this reason; sites whose
// natural body bound exceeds the cap simply diverge and recover through
// the divergence flush, which is coverage, not a loss.
const maxBodyCap = 40

func (a *asmState) addSite(n *Node, s Site) {
	if n.NoPred {
		return
	}
	if s.MaxBody > maxBodyCap {
		s.MaxBody = maxBodyCap
	}
	a.sites = append(a.sites, s)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// GenConfig parameterizes program generation.
type GenConfig struct {
	MaxTopNodes  int     // top-level nodes per iteration body
	MaxBodyNodes int     // nodes per hammock/loop body
	MaxDepth     int     // hammock/loop nesting depth
	PHammock     float64 // probability a generated node is a hammock
	PLoop        float64 // probability a generated node is a loop
	PMem         float64 // probability a generated node is a load/store
	MaxStepBound int64   // iteration count is trimmed to keep runs below this
}

// DefaultGenConfig returns the campaign generator shape: broad mix of
// hammocks, loops, memory traffic and ALU filler.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		MaxTopNodes:  8,
		MaxBodyNodes: 5,
		MaxDepth:     3,
		PHammock:     0.4,
		PLoop:        0.15,
		PMem:         0.2,
		MaxStepBound: 24_000,
	}
}

// ReconvergenceGenConfig biases generation toward the shapes that stress
// merge-point discovery: deep nesting, Type-3 perspective swaps, dynamic
// backward branches — the FuzzReconvergence target's diet.
func ReconvergenceGenConfig() GenConfig {
	return GenConfig{
		MaxTopNodes:  6,
		MaxBodyNodes: 4,
		MaxDepth:     4,
		PHammock:     0.55,
		PLoop:        0.25,
		PMem:         0.1,
		MaxStepBound: 24_000,
	}
}

var aluOps = []string{
	"add", "sub", "and", "or", "xor", "mul", "div",
	"addi", "andi", "xori", "shri", "muli", "mov", "movi",
}

// Generate derives a random-but-well-formed program from a seed. The same
// (seed, cfg) always yields the same program, and the result is guaranteed
// to halt within its assembled StepBound.
func Generate(seed uint64, cfg GenConfig) *Prog {
	r := NewRNG(seed ^ 0xD1FF7E57) // decorrelate structure from the data stream
	p := &Prog{Seed: seed}
	n := r.Range(2, cfg.MaxTopNodes)
	for i := 0; i < n; i++ {
		p.Nodes = append(p.Nodes, genNode(r, cfg, 0))
	}
	// At least one predication site per program: without a predicable
	// hammock the differential run degenerates to plain speculation.
	// (NoPred hammocks and oversized loops record no site, so only a
	// hammock with NoPred unset counts.)
	if !hasPredicableHammock(p.Nodes) {
		h := genHammock(r, cfg, 0)
		h.NoPred = false
		p.Nodes = append(p.Nodes, h)
	}
	p.Iters = int64(r.Range(48, 256))
	if asm, err := Assemble(p); err == nil && asm.StepsPerIter > 0 {
		if maxIters := cfg.MaxStepBound / asm.StepsPerIter; maxIters < p.Iters {
			p.Iters = maxInt64(maxIters, 8)
		}
	}
	return p
}

func hasPredicableHammock(ns []Node) bool {
	for i := range ns {
		n := &ns[i]
		if n.Kind == KindHammock && !n.NoPred {
			return true
		}
		if hasPredicableHammock(n.Then) || hasPredicableHammock(n.Else) || hasPredicableHammock(n.Body) {
			return true
		}
	}
	return false
}

func genNode(r *RNG, cfg GenConfig, depth int) Node {
	roll := r.Float64()
	switch {
	case depth < cfg.MaxDepth && roll < cfg.PHammock:
		return genHammock(r, cfg, depth)
	case depth < cfg.MaxDepth && roll < cfg.PHammock+cfg.PLoop:
		return genLoop(r, cfg, depth)
	case roll < cfg.PHammock+cfg.PLoop+cfg.PMem:
		if r.Bool(0.5) {
			return Node{Kind: KindLoad, Dst: r.Intn(numPool), A: r.Intn(numPool)}
		}
		return Node{Kind: KindStore, A: r.Intn(numPool), B: r.Intn(numPool)}
	default:
		return genALU(r)
	}
}

func genALU(r *RNG) Node {
	return Node{
		Kind: KindALU,
		Op:   aluOps[r.Intn(len(aluOps))],
		Dst:  r.Intn(numPool),
		A:    r.Intn(numPool),
		B:    r.Intn(numPool),
		Imm:  int64(r.Range(1, 63)),
	}
}

func genBody(r *RNG, cfg GenConfig, depth int) []Node {
	n := r.Range(1, cfg.MaxBodyNodes)
	out := make([]Node, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, genNode(r, cfg, depth))
	}
	return out
}

func genHammock(r *RNG, cfg GenConfig, depth int) Node {
	shapes := []string{ShapeIf, ShapeIfElse, ShapeIfElse, ShapeType3, ShapeOverlap}
	n := Node{
		Kind:    KindHammock,
		Shape:   shapes[r.Intn(len(shapes))],
		CondBit: r.Intn(condBits),
		Dst:     r.Intn(numPool),
		B:       r.Intn(numPool),
		Then:    genBody(r, cfg, depth+1),
	}
	if n.Shape == ShapeIfElse || n.Shape == ShapeType3 || n.Shape == ShapeOverlap {
		n.Else = genBody(r, cfg, depth+1)
	}
	if r.Bool(0.1) {
		n.NoPred = true
	}
	return n
}

func genLoop(r *RNG, cfg GenConfig, depth int) Node {
	n := Node{Kind: KindLoop, Body: genBody(r, cfg, depth+1)}
	if r.Bool(0.5) {
		n.Trip = r.Range(1, maxTrip)
	}
	return n
}
