package difftest

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"acb/internal/bpu"
	"acb/internal/config"
	"acb/internal/isa"
	"acb/internal/ooo"
)

var updateGolden = flag.Bool("update", false, "rewrite golden timing snapshots")

// goldenRun is the timing-relevant slice of one engine's ooo.Result. It
// pins not just architectural state (the oracle already guards that) but
// the exact cycle counts and machinery statistics, so any hot-path rework
// of the cycle loop is provably byte-identical to the pre-optimization
// engine — including event-driven cycle skipping, which must never change
// Result.Cycles.
type goldenRun struct {
	Engine          string `json:"engine"`
	Cycles          int64  `json:"cycles"`
	Retired         int64  `json:"retired"`
	CondBranches    int64  `json:"cond_branches"`
	Branches        int64  `json:"branches"`
	Mispredicts     int64  `json:"mispredicts"`
	Flushes         int64  `json:"flushes"`
	DivFlushes      int64  `json:"div_flushes"`
	Predications    int64  `json:"predications"`
	Allocations     int64  `json:"allocations"`
	WrongPathAllocs int64  `json:"wrong_path_allocs"`
	SelectUops      int64  `json:"select_uops"`
	AllocStallSlots int64  `json:"alloc_stall_slots"`
	TransparentOps  int64  `json:"transparent_ops"`
	InvalidatedMem  int64  `json:"invalidated_mem"`
	LoadForwards    int64  `json:"load_forwards"`
	L1Hits          int64  `json:"l1_hits"`
	L1Misses        int64  `json:"l1_misses"`
	LLCHits         int64  `json:"llc_hits"`
	LLCMisses       int64  `json:"llc_misses"`
	FinalRegs       string `json:"final_regs"`
	Halted          bool   `json:"halted"`
}

type goldenProg struct {
	Seed uint64      `json:"seed"`
	Runs []goldenRun `json:"runs"`
}

func goldenFromResult(name string, res ooo.Result) goldenRun {
	return goldenRun{
		Engine:          name,
		Cycles:          res.Cycles,
		Retired:         res.Retired,
		CondBranches:    res.CondBranches,
		Branches:        res.Branches,
		Mispredicts:     res.Mispredicts,
		Flushes:         res.Flushes,
		DivFlushes:      res.DivFlushes,
		Predications:    res.Predications,
		Allocations:     res.Allocations,
		WrongPathAllocs: res.WrongPathAllocs,
		SelectUops:      res.SelectUops,
		AllocStallSlots: res.AllocStallSlots,
		TransparentOps:  res.TransparentOps,
		InvalidatedMem:  res.InvalidatedMem,
		LoadForwards:    res.LoadForwards,
		L1Hits:          res.L1Hits,
		L1Misses:        res.L1Misses,
		LLCHits:         res.LLCHits,
		LLCMisses:       res.LLCMisses,
		FinalRegs:       fmt.Sprint(res.FinalRegs),
		Halted:          res.Halted,
	}
}

// goldenSeeds picks a spread of fuzzer programs that between them exercise
// every engine mechanism (dual fetch, transparency, selects, divergence).
var goldenSeeds = []uint64{1, 7, 23, 1003, 90210}

// runGoldenEngine runs one engine bare — no PipeStats, CPI or trace — the
// exact configuration the throughput path uses, so cycle skipping (active
// only without per-cycle observers) is covered by the comparison.
func runGoldenEngine(t *testing.T, e Engine, asm *Assembled, budget int64) ooo.Result {
	t.Helper()
	scheme := e.NewScheme(asm)
	c := ooo.NewWithMemory(config.Skylake(), asm.Insts,
		bpu.NewTAGE(bpu.DefaultTAGEConfig()), scheme, asm.Mem.Clone())
	res, err := c.Run(budget)
	if err != nil {
		t.Fatalf("engine %s: %v", e.Name, err)
	}
	return res
}

// TestGoldenTiming locks the cycle-accurate behaviour of all 9 default
// matrix engines against snapshots captured from the pre-optimization
// (seed) engine. Regenerate with `go test ./internal/difftest/ -run
// TestGoldenTiming -update` — but only when a simulator *model* change
// intentionally alters timing; pure performance work must keep this green
// untouched.
func TestGoldenTiming(t *testing.T) {
	// Lives in a subdirectory so LoadCorpusDir's *.json glob (the corpus
	// replay test) does not pick it up.
	path := filepath.Join("testdata", "golden", "timing.json")
	var got []goldenProg
	for _, seed := range goldenSeeds {
		p := Generate(seed, DefaultGenConfig())
		asm, err := Assemble(p)
		if err != nil {
			t.Fatalf("seed %d: assemble: %v", seed, err)
		}
		// Same budget shape as Check: functional steps plus slack.
		refMem := asm.Mem.Clone()
		ref := isa.NewArchState(refMem)
		steps, halted := ref.Run(asm.Insts, asm.StepBound+16)
		if !halted {
			t.Fatalf("seed %d: functional emulator did not halt", seed)
		}
		gp := goldenProg{Seed: seed}
		for _, e := range DefaultMatrix() {
			res := runGoldenEngine(t, e, asm, steps+64)
			gp.Runs = append(gp.Runs, goldenFromResult(e.Name, res))
		}
		got = append(got, gp)
	}

	if *updateGolden {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d programs x %d engines)", path, len(got), len(got[0].Runs))
		return
	}

	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	var want []goldenProg
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatalf("corrupt golden file: %v", err)
	}
	if len(want) != len(got) {
		t.Fatalf("golden has %d programs, current run produced %d", len(want), len(got))
	}
	for i := range want {
		if want[i].Seed != got[i].Seed {
			t.Fatalf("program %d: golden seed %d, got %d", i, want[i].Seed, got[i].Seed)
		}
		if len(want[i].Runs) != len(got[i].Runs) {
			t.Fatalf("seed %d: golden has %d engines, got %d", want[i].Seed, len(want[i].Runs), len(got[i].Runs))
		}
		for j := range want[i].Runs {
			w, g := want[i].Runs[j], got[i].Runs[j]
			if w != g {
				t.Errorf("seed %d engine %s: result diverged from seed engine\n golden: %+v\n    got: %+v",
					want[i].Seed, w.Engine, w, g)
			}
		}
	}
}
