package difftest

import "testing"

// FuzzACBTransparency is the native-fuzzing entry point for the
// architectural-transparency oracle: each input seed derives a program,
// which every engine of the fast matrix must retire with exactly the
// functional emulator's final state. Run with
//
//	go test -fuzz FuzzACBTransparency ./internal/difftest
func FuzzACBTransparency(f *testing.F) {
	f.Add(uint64(1))
	f.Add(uint64(42))
	f.Add(uint64(0xDEADBEEF))
	opts := Options{Matrix: fastMatrix()}
	f.Fuzz(func(t *testing.T, seed uint64) {
		p := Generate(seed, DefaultGenConfig())
		if rep := Check(p, opts); !rep.OK() {
			shrunk, srep := Shrink(p, opts, 120)
			t.Fatalf("seed %d: %v (shrunk to %d nodes, iters %d: %v)",
				seed, rep.Failures, CountNodes(shrunk.Nodes), shrunk.Iters, srep.Failures)
		}
	})
}

// FuzzReconvergence biases generation toward merge-point stress — deep
// nesting, Type-3 perspective swaps, backward branches — and checks the
// forced engines that predicate every site, including the forced-
// divergence variant that exercises recovery on every instance.
func FuzzReconvergence(f *testing.F) {
	f.Add(uint64(2))
	f.Add(uint64(77))
	f.Add(uint64(0xACB))
	matrix, err := MatrixByNames([]string{"forced", "forced-swap", "forced-div"})
	if err != nil {
		f.Fatal(err)
	}
	opts := Options{Matrix: matrix}
	f.Fuzz(func(t *testing.T, seed uint64) {
		p := Generate(seed, ReconvergenceGenConfig())
		if rep := Check(p, opts); !rep.OK() {
			shrunk, srep := Shrink(p, opts, 120)
			t.Fatalf("seed %d: %v (shrunk to %d nodes, iters %d: %v)",
				seed, rep.Failures, CountNodes(shrunk.Nodes), shrunk.Iters, srep.Failures)
		}
	})
}
