package difftest

import (
	"fmt"
	"math"

	"acb/internal/bpu"
	"acb/internal/isa"
	"acb/internal/ooo"
	"acb/internal/sample"
)

// FailBoundary marks a sampled run whose window-boundary architectural
// state diverged from the functional reference.
const FailBoundary = "boundary"

// SampledReport is the outcome of one program's sampled-vs-full check: a
// correctness verdict (window-boundary architectural diffs become
// Failures) plus the sampled-CPI error as a tracked metric per engine.
type SampledReport struct {
	Seed     uint64    `json:"seed"`
	Steps    int64     `json:"steps"`
	Failures []Failure `json:"failures,omitempty"`
	// Engines maps engine name to its sampled-vs-full CPI comparison.
	Engines map[string]SampledEngine `json:"engines"`
}

// SampledEngine is one engine's sampled-vs-full comparison.
type SampledEngine struct {
	FullCPI    float64 `json:"full_cpi"`
	SampledCPI float64 `json:"sampled_cpi"`
	ErrorPct   float64 `json:"error_pct"` // |sampled-full|/full * 100
	Windows    int     `json:"windows"`
}

// OK reports whether the sampled check passed.
func (r *SampledReport) OK() bool { return len(r.Failures) == 0 }

// SampledMatrix returns the engine subset sampled simulation is checked
// against: the baseline plus the forced-predication engines. Forced
// schemes are stateless (a per-site spec table), so a window-local scheme
// instance behaves exactly like the full run's — the transparency
// obligation carries over window by window. Learning ACB engines are
// excluded: their tables warm over the whole run, so per-window cold
// state makes timing (not correctness) diverge by construction.
func SampledMatrix() []Engine {
	all, err := MatrixByNames([]string{"baseline", "forced", "forced-eager", "forced-swap"})
	if err != nil {
		panic(err)
	}
	return all
}

// CheckSampled runs one generated program both ways — full detailed
// simulation and SMARTS-style sampled simulation with boundary
// verification — for every engine in SampledMatrix, recording window
// boundary divergences as failures and the CPI estimation error as a
// tracked metric. A program too short for even one measured window under
// plan is reported with zero windows and no failure.
func CheckSampled(p *Prog, plan sample.Plan, opts Options) *SampledReport {
	opts.fill()
	rep := &SampledReport{Seed: p.Seed, Engines: make(map[string]SampledEngine)}

	asm, err := Assemble(p)
	if err != nil {
		rep.Failures = append(rep.Failures, Failure{Engine: "-", Kind: FailAssemble, Detail: err.Error()})
		return rep
	}
	refMem := asm.Mem.Clone()
	ref := isa.NewArchState(refMem)
	steps, halted := ref.Run(asm.Insts, asm.StepBound+16)
	rep.Steps = steps
	if !halted {
		rep.Failures = append(rep.Failures, Failure{
			Engine: "-", Kind: FailNoHalt,
			Detail: fmt.Sprintf("functional emulator ran %d steps without halting", steps),
		})
		return rep
	}

	for _, e := range SampledMatrix() {
		eng, fails := runSampledEngine(e, asm, steps, plan, opts)
		rep.Engines[e.Name] = eng
		rep.Failures = append(rep.Failures, fails...)
	}
	return rep
}

func runSampledEngine(e Engine, asm *Assembled, steps int64, plan sample.Plan, opts Options) (SampledEngine, []Failure) {
	var out SampledEngine
	var fails []Failure

	// Full detailed run: the CPI ground truth.
	full := ooo.NewWithMemory(opts.CoreCfg, asm.Insts, bpu.NewTAGE(bpu.DefaultTAGEConfig()), e.NewScheme(asm), asm.Mem.Clone())
	fullRes, err := full.Run(steps + opts.BudgetSlack)
	if err != nil || !fullRes.Halted {
		fails = append(fails, Failure{Engine: e.Name, Kind: FailRun,
			Detail: fmt.Sprintf("full run: halted=%v err=%v", fullRes.Halted, err)})
		return out, fails
	}
	out.FullCPI = float64(fullRes.Cycles) / float64(fullRes.Retired)

	est, err := sample.Run(asm.Insts, asm.Mem, plan, sample.Options{
		Budget:    steps + opts.BudgetSlack,
		Config:    opts.CoreCfg,
		NewScheme: func() ooo.Scheme { return e.NewScheme(asm) },
		Verify:    true,
	})
	if err != nil {
		// A program ending before the first window's measured span has
		// nothing to measure; that is a property of the plan, not a bug.
		if steps <= plan.FirstStart()+plan.Warmup+1 {
			return out, nil
		}
		fails = append(fails, Failure{Engine: e.Name, Kind: FailRun, Detail: "sampled: " + err.Error()})
		return out, fails
	}
	out.SampledCPI = est.CPI
	out.Windows = len(est.Windows)
	out.ErrorPct = math.Abs(est.CPIErrorPct(out.FullCPI))

	for _, w := range est.Windows {
		if w.BoundaryDiff != "" {
			fails = append(fails, Failure{Engine: e.Name, Kind: FailBoundary,
				Detail: fmt.Sprintf("window %d (start %d): %s", w.Index, w.Start, w.BoundaryDiff)})
		}
	}
	if est.Halted && est.TotalInstrs != steps {
		fails = append(fails, Failure{Engine: e.Name, Kind: FailRetired,
			Detail: fmt.Sprintf("sampled functional pass covered %d steps, reference %d", est.TotalInstrs, steps)})
	}
	return out, fails
}
