package difftest

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// CorpusEntry is one stored program: a name, a one-line note about what it
// reproduces or pins, and the program itself. Entries live as indented
// JSON under internal/difftest/testdata/ and are replayed by go test.
type CorpusEntry struct {
	Name string `json:"name"`
	Desc string `json:"desc,omitempty"`
	Prog *Prog  `json:"prog"`
}

// WriteCorpusFile stores an entry as indented JSON at path, creating the
// directory when needed.
func WriteCorpusFile(path string, e *CorpusEntry) error {
	if e.Prog == nil {
		return fmt.Errorf("difftest: corpus entry %q has no program", e.Name)
	}
	data, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadCorpusFile reads one entry.
func LoadCorpusFile(path string) (*CorpusEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var e CorpusEntry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, fmt.Errorf("difftest: corpus file %s: %w", path, err)
	}
	if e.Prog == nil {
		return nil, fmt.Errorf("difftest: corpus file %s has no program", path)
	}
	if e.Name == "" {
		e.Name = strings.TrimSuffix(filepath.Base(path), ".json")
	}
	return &e, nil
}

// LoadCorpusDir reads every .json entry in dir, sorted by filename. A
// missing directory is an empty corpus, not an error.
func LoadCorpusDir(dir string) ([]*CorpusEntry, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	var out []*CorpusEntry
	for _, name := range names {
		e, err := LoadCorpusFile(name)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}
