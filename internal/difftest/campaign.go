package difftest

import (
	"context"
	"fmt"
	"path/filepath"
	"time"

	"acb/internal/experiments"
)

// CampaignOptions parameterizes a fuzz campaign: a deterministic seed
// schedule (program i uses seed Seed+i), a target program count or wall
// deadline, and the worker pool shared with the experiment runner.
type CampaignOptions struct {
	Seed     uint64
	N        int           // program count; ignored when Duration > 0
	Duration time.Duration // run batches until the deadline when > 0
	Jobs     int           // concurrent checks (0 = GOMAXPROCS)
	Gen      GenConfig     // zero = DefaultGenConfig()
	Check    Options
	// Timeout bounds every candidate's per-engine run — campaign checks
	// AND the shrinker's reduction re-checks, which previously ran without
	// the campaign's context and could stall the whole shrink loop behind
	// one wedged engine. Zero means no bound.
	Timeout time.Duration

	Shrink       bool   // minimize failures before reporting
	ShrinkBudget int    // Check calls per shrink (0 = 400)
	MaxShrunk    int    // failures to shrink before reporting raw (0 = 20)
	CorpusDir    string // write failure repros here when non-empty

	Logf    func(format string, args ...any) // nil = silent
	Context context.Context
}

// CampaignFailure is one failing program, shrunk when requested.
type CampaignFailure struct {
	Seed   uint64  `json:"seed"`
	Prog   *Prog   `json:"prog"`
	Report *Report `json:"report"`
	File   string  `json:"file,omitempty"` // corpus path when written
}

// CampaignResult aggregates a campaign. The machinery counters prove the
// run exercised the paper's mechanisms rather than vacuously passing.
type CampaignResult struct {
	Programs int64 `json:"programs"`
	Steps    int64 `json:"steps"`

	Predications   int64 `json:"predications"`
	DivFlushes     int64 `json:"div_flushes"`
	TransparentOps int64 `json:"transparent_ops"`
	SelectUops     int64 `json:"select_uops"`
	InvalidatedMem int64 `json:"invalidated_mem"`

	Failures []*CampaignFailure `json:"failures,omitempty"`
}

// OK reports whether the campaign found no failures.
func (r *CampaignResult) OK() bool { return len(r.Failures) == 0 }

// Summary renders a one-paragraph campaign report.
func (r *CampaignResult) Summary() string {
	return fmt.Sprintf(
		"%d programs, %d functional steps: %d predications, %d divergence flushes, "+
			"%d transparent ops, %d select µops, %d invalidated mem ops; %d failures",
		r.Programs, r.Steps, r.Predications, r.DivFlushes,
		r.TransparentOps, r.SelectUops, r.InvalidatedMem, len(r.Failures))
}

func (o *CampaignOptions) fill() {
	if o.N <= 0 && o.Duration <= 0 {
		o.N = 1000
	}
	if o.Gen.MaxTopNodes == 0 {
		o.Gen = DefaultGenConfig()
	}
	if o.ShrinkBudget <= 0 {
		o.ShrinkBudget = 400
	}
	if o.MaxShrunk <= 0 {
		o.MaxShrunk = 20
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	if o.Context == nil {
		o.Context = context.Background()
	}
	// Thread the campaign's context and timeout into every Check — batch
	// slots and shrink candidates alike — so cancellation and the
	// per-candidate bound reach the engine cycle loops.
	if o.Check.Context == nil {
		o.Check.Context = o.Context
	}
	if o.Check.Timeout == 0 {
		o.Check.Timeout = o.Timeout
	}
}

// RunCampaign generates and differentially checks programs until the count
// or deadline is reached. Checks run on the experiments worker pool;
// aggregation is by slot index, so a fixed (Seed, N) campaign is
// deterministic regardless of scheduling. Failures are shrunk (bounded by
// MaxShrunk) and written to CorpusDir as replayable JSON.
func RunCampaign(o CampaignOptions) (*CampaignResult, error) {
	o.fill()
	res := &CampaignResult{}

	runBatch := func(base uint64, n int) error {
		reports := make([]*Report, n)
		progs := make([]*Prog, n)
		err := experiments.Pool(experiments.Options{Jobs: o.Jobs, Context: o.Context}, n, func(i int) {
			p := Generate(base+uint64(i), o.Gen)
			progs[i] = p
			reports[i] = Check(p, o.Check)
		})
		for i, r := range reports {
			if r == nil {
				continue // slot cancelled before it ran
			}
			res.Programs++
			res.Steps += r.Steps
			res.Predications += r.Predications
			res.DivFlushes += r.DivFlushes
			res.TransparentOps += r.TransparentOps
			res.SelectUops += r.SelectUops
			res.InvalidatedMem += r.InvalidatedMem
			if !r.OK() {
				o.recordFailure(res, progs[i], r)
			}
		}
		return err
	}

	if o.Duration > 0 {
		deadline := time.Now().Add(o.Duration)
		batch := o.Jobs
		if batch <= 0 {
			batch = 4
		}
		batch *= 8
		base := o.Seed
		for time.Now().Before(deadline) && o.Context.Err() == nil {
			if err := runBatch(base, batch); err != nil {
				return res, err
			}
			base += uint64(batch)
			o.Logf("difftest: %d programs checked, %d failures", res.Programs, len(res.Failures))
		}
		return res, nil
	}

	err := runBatch(o.Seed, o.N)
	o.Logf("difftest: %s", res.Summary())
	return res, err
}

// recordFailure shrinks (budget permitting), persists, and records one
// failing program.
func (o *CampaignOptions) recordFailure(res *CampaignResult, p *Prog, rep *Report) {
	f := &CampaignFailure{Seed: p.Seed, Prog: p, Report: rep}
	if o.Shrink && len(res.Failures) < o.MaxShrunk {
		o.Logf("difftest: seed %d failed (%s), shrinking", p.Seed, rep.Failures[0])
		f.Prog, f.Report = Shrink(p, o.Check, o.ShrinkBudget)
		if f.Report.OK() {
			// A reduction passing here means the failure did not reproduce
			// under re-check; keep the original evidence.
			f.Prog, f.Report = p, rep
		}
	} else {
		o.Logf("difftest: seed %d failed (%s)", p.Seed, rep.Failures[0])
	}
	if o.CorpusDir != "" {
		path := filepath.Join(o.CorpusDir, fmt.Sprintf("failure-seed%d.json", p.Seed))
		e := &CorpusEntry{
			Name: fmt.Sprintf("failure-seed%d", p.Seed),
			Desc: "minimized fuzz failure: " + f.Report.Failures[0].String(),
			Prog: f.Prog,
		}
		if err := WriteCorpusFile(path, e); err != nil {
			o.Logf("difftest: writing %s: %v", path, err)
		} else {
			f.File = path
		}
	}
	res.Failures = append(res.Failures, f)
}
