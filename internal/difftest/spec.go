package difftest

import "acb/internal/workload"

// RandomSpec builds a randomized workload spec from a seed: a mix of
// hammock shapes, body sizes, predictabilities and features, so property
// tests and fuzz campaigns exercise the predication machinery broadly.
// It is the shared successor of the xorshift generator that used to live
// in internal/ooo's correctness test: one RNG (see RNG), one distribution,
// and unbiased bounded draws instead of the old modulo-on-raw-state.
func RandomSpec(seed uint64) workload.Spec {
	r := NewRNG(seed)
	spec := workload.Spec{
		Seed:   seed,
		Iters:  1 << 40, // bounded by the simulation budget
		Period: 1024,
		ALU:    r.Intn(5),
	}
	if r.Intn(3) == 0 {
		spec.ChaseDepth = 1
		spec.ChaseSpan = 1 << 18
	}
	if r.Intn(3) == 0 {
		spec.PredictableLoops = r.Range(1, 4)
	}
	n := r.Range(1, 3)
	for i := 0; i < n; i++ {
		h := workload.Hammock{
			Shape:     workload.HammockShape(r.Intn(4)),
			TLen:      r.Range(1, 12),
			NTLen:     r.Range(1, 12),
			TakenBias: 0.3 + float64(r.Intn(5))*0.1,
			Noise:     float64(r.Intn(11)) * 0.1,
		}
		switch r.Intn(4) {
		case 0:
			h.StoreInBody = true
		case 1:
			h.FeedsLoad = true
		case 2:
			h.CorrelatedTail = true
		}
		if spec.ChaseDepth > 0 && r.Intn(4) == 0 {
			h.SlowCond = true
		}
		spec.Hammocks = append(spec.Hammocks, h)
	}
	return spec
}
