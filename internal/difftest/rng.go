// Package difftest is the differential fuzzing subsystem: a seeded CFG
// fuzzer generating random-but-well-formed programs over prog.Builder, a
// three-way differential checker (functional emulator as ground truth, OOO
// baseline, OOO + dynamic-predication engines), an invariant pack, a
// greedy program shrinker, and a replayable JSON corpus. The paper's
// run-time mechanism — register transparency, false-path LSQ invalidation,
// divergence-forced flushes — is only correct if an ACB-predicated run
// retires the exact architectural state of a normal run; this package
// enforces that property on adversarial program shapes a curated suite
// never reaches.
package difftest

// RNG is the one deterministic generator shared by the fuzzer, the
// workload-spec property generator and the campaign seed schedule: an
// xorshift64* stream (xorshift state, multiplied output) with unbiased
// bounded draws. The previous per-test copies of this generator used the
// raw xorshift state modulo n, which is both modulo-biased and strongly
// correlated in its low bits across consecutive draws; Intn fixes both
// (multiplicative output mixing plus rejection sampling).
type RNG struct{ s uint64 }

// NewRNG returns a generator seeded via a splitmix64 step, so nearby seeds
// (0, 1, 2, ...) still produce decorrelated streams. Seed 0 is valid.
func NewRNG(seed uint64) *RNG {
	z := seed + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = 0x2545F4914F6CDD1D // xorshift state must be non-zero
	}
	return &RNG{s: z}
}

// Uint64 returns the next value of the xorshift64* stream.
func (r *RNG) Uint64() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s * 0x2545F4914F6CDD1D
}

// Intn returns an unbiased draw from [0, n). It panics when n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("difftest: Intn with n <= 0")
	}
	bound := uint64(n)
	// Rejection sampling: discard the biased tail of the 64-bit range.
	limit := -bound % bound // (2^64 - bound) % bound
	for {
		v := r.Uint64()
		if v >= limit {
			return int(v % bound)
		}
	}
}

// Range returns an unbiased draw from [lo, hi] inclusive.
func (r *RNG) Range(lo, hi int) int { return lo + r.Intn(hi-lo+1) }

// Float64 returns a draw from [0, 1).
func (r *RNG) Float64() float64 { return float64(r.Uint64()>>11) / (1 << 53) }

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }
