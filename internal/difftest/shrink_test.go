package difftest

import (
	"reflect"
	"testing"
)

func TestCountAndRewrite(t *testing.T) {
	p := &Prog{Seed: 1, Iters: 8, Nodes: []Node{
		{Kind: KindALU, Op: "add"},
		{Kind: KindHammock, Shape: ShapeIfElse,
			Then: []Node{{Kind: KindALU, Op: "xor"}},
			Else: []Node{{Kind: KindLoop, Trip: 2, Body: []Node{{Kind: KindStore}}}}},
	}}
	if n := CountNodes(p.Nodes); n != 5 {
		t.Fatalf("CountNodes = %d, want 5", n)
	}
	// Delete the loop (preorder index 3) and verify the store goes with it.
	q := cloneProg(p)
	idx := 3
	ns, ok := rewriteAt(q.Nodes, &idx, func(*Node) []Node { return nil })
	if !ok {
		t.Fatal("rewriteAt missed index 3")
	}
	q.Nodes = ns
	if n := CountNodes(q.Nodes); n != 3 {
		t.Fatalf("after delete CountNodes = %d, want 3", n)
	}
	// Out-of-range index is reported, not silently dropped.
	idx = 99
	if _, ok := rewriteAt(q.Nodes, &idx, func(*Node) []Node { return nil }); ok {
		t.Fatal("rewriteAt accepted an out-of-range index")
	}
	// The original is untouched by candidate construction.
	if CountNodes(p.Nodes) != 5 {
		t.Fatal("rewrite mutated the source program")
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := Generate(11, DefaultGenConfig())
	q := cloneProg(p)
	if !reflect.DeepEqual(p, q) {
		t.Fatal("clone differs from source")
	}
	mutateFirstLeaf(q.Nodes)
	if reflect.DeepEqual(p, q) {
		t.Fatal("mutating the clone changed the source: shallow copy")
	}
}

func mutateFirstLeaf(ns []Node) bool {
	for i := range ns {
		if len(ns[i].Then) == 0 && len(ns[i].Else) == 0 && len(ns[i].Body) == 0 {
			ns[i].Imm += 1000
			return true
		}
		if mutateFirstLeaf(ns[i].Then) || mutateFirstLeaf(ns[i].Else) || mutateFirstLeaf(ns[i].Body) {
			return true
		}
	}
	return false
}

func TestReductionsShrinkStrictly(t *testing.T) {
	p := Generate(13, DefaultGenConfig())
	size := CountNodes(p.Nodes)
	cands := reductionsOf(p)
	if len(cands) == 0 {
		t.Fatal("no reductions for a generated program")
	}
	for _, c := range cands {
		cs := CountNodes(c.Nodes)
		if cs > size {
			t.Fatalf("reduction grew the tree: %d -> %d nodes", size, cs)
		}
		if cs == size && c.Iters == p.Iters && c.Seed == p.Seed &&
			reflect.DeepEqual(c.Nodes, p.Nodes) {
			t.Fatal("reduction is identical to the source")
		}
		if c.Iters > p.Iters {
			t.Fatalf("reduction grew iterations: %d -> %d", p.Iters, c.Iters)
		}
		if _, err := Assemble(c); err != nil {
			t.Fatalf("reduction does not assemble: %v", err)
		}
	}
}

func TestShrinkPassesThroughHealthyProgram(t *testing.T) {
	p := Generate(17, DefaultGenConfig())
	opts := Options{Matrix: fastMatrix()}
	shrunk, rep := Shrink(p, opts, 10)
	if !rep.OK() {
		t.Fatalf("healthy program reported failing: %v", rep.Failures)
	}
	if !reflect.DeepEqual(shrunk, p) {
		t.Fatal("healthy program was altered by Shrink")
	}
}
