package difftest

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"acb/internal/trace"
	"acb/internal/workload"
)

// replayAssembled rebuilds an Assembled from a recorded trace alone: the
// program and initial memory come out of the trace file; only the site
// list (needed by the forced engines) and step bookkeeping are taken from
// the original assembly, and those are pure metadata — they do not feed
// the architectural inputs.
func replayAssembled(tr *trace.Trace, asm *Assembled) *Assembled {
	return &Assembled{
		Insts:        tr.Prog,
		Mem:          tr.Memory(),
		Sites:        asm.Sites,
		StepsPerIter: asm.StepsPerIter,
		StepBound:    asm.StepBound,
	}
}

// TestReplayVsRecordByteIdentical: record a fuzz program's branch trace,
// rebuild the workload from the trace alone, and run the full engine
// matrix on both — every engine's result must be byte-identical. This is
// the trace backend's core guarantee: a `trace:` workload reproduces the
// exact experiment that recorded it.
func TestReplayVsRecordByteIdentical(t *testing.T) {
	for _, seed := range goldenSeeds {
		p := Generate(seed, DefaultGenConfig())
		asm, err := Assemble(p)
		if err != nil {
			t.Fatalf("seed %d: assemble: %v", seed, err)
		}
		var buf []byte
		{
			f, err := os.CreateTemp(t.TempDir(), "*.trace")
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := trace.Record(f, asm.Insts, asm.Mem, int64(asm.StepBound)+16,
				trace.Header{Source: "difftest", Kind: "test", Seed: seed}); err != nil {
				t.Fatalf("seed %d: record: %v", seed, err)
			}
			name := f.Name()
			f.Close()
			buf, err = os.ReadFile(name)
			if err != nil {
				t.Fatal(err)
			}
		}
		tr, err := trace.Decode(bytes.NewReader(buf))
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		if err := tr.Verify(); err != nil {
			t.Fatalf("seed %d: verify: %v", seed, err)
		}
		if !reflect.DeepEqual(tr.Prog, asm.Insts) {
			t.Fatalf("seed %d: decoded program differs from assembled program", seed)
		}
		if !tr.Memory().Equal(asm.Mem) {
			t.Fatalf("seed %d: decoded memory differs from assembled memory", seed)
		}

		replay := replayAssembled(tr, asm)
		budget := int64(asm.StepBound) + 4096
		for _, e := range DefaultMatrix() {
			orig := goldenFromResult(e.Name, runGoldenEngine(t, e, asm, budget))
			rep := goldenFromResult(e.Name, runGoldenEngine(t, e, replay, budget))
			if !reflect.DeepEqual(orig, rep) {
				t.Errorf("seed %d engine %s: replay diverges from record:\n  record: %+v\n  replay: %+v",
					seed, e.Name, orig, rep)
			}
		}
	}
}

// adversarialGolden pins the full engine matrix over the committed
// adversarial corpus: per entry, per engine, the complete timing and
// architectural summary.
type adversarialGolden map[string]map[string]goldenRun

const adversarialGoldenPath = "testdata/golden/adversarial.json"

// TestAdversarialCorpusGoldenMatrix replays every committed adversarial
// corpus entry across the engine matrix and pins the results. It also
// re-checks the promotion invariants: the manifest's difftest program
// re-assembles to exactly the committed trace's program and memory, the
// trace verifies against the functional emulator, and the differential
// check still passes.
func TestAdversarialCorpusGoldenMatrix(t *testing.T) {
	entries, err := workload.AdversarialEntries()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 3 {
		t.Fatalf("adversarial corpus has %d entries, want >= 3 committed promotions", len(entries))
	}

	got := adversarialGolden{}
	for _, ent := range entries {
		tr, err := trace.Decode(bytes.NewReader(ent.Trace))
		if err != nil {
			t.Fatalf("%s: decode trace: %v", ent.Manifest.Name, err)
		}
		if err := tr.Verify(); err != nil {
			t.Fatalf("%s: trace does not verify: %v", ent.Manifest.Name, err)
		}

		var p Prog
		if err := json.Unmarshal(ent.Manifest.Prog, &p); err != nil {
			t.Fatalf("%s: manifest prog: %v", ent.Manifest.Name, err)
		}
		asm, err := Assemble(&p)
		if err != nil {
			t.Fatalf("%s: assemble: %v", ent.Manifest.Name, err)
		}
		if !reflect.DeepEqual(tr.Prog, asm.Insts) {
			t.Fatalf("%s: committed trace program differs from re-assembled manifest program", ent.Manifest.Name)
		}
		if !tr.Memory().Equal(asm.Mem) {
			t.Fatalf("%s: committed trace memory differs from re-assembled manifest memory", ent.Manifest.Name)
		}
		if rep := Check(&p, Options{}); !rep.OK() {
			t.Fatalf("%s: promoted program no longer passes the matrix: %s",
				ent.Manifest.Name, rep.Failures[0])
		}

		replay := replayAssembled(tr, asm)
		budget := int64(asm.StepBound) + 4096
		runs := map[string]goldenRun{}
		for _, e := range DefaultMatrix() {
			orig := goldenFromResult(e.Name, runGoldenEngine(t, e, asm, budget))
			rep := goldenFromResult(e.Name, runGoldenEngine(t, e, replay, budget))
			if !reflect.DeepEqual(orig, rep) {
				t.Errorf("%s engine %s: trace replay diverges from direct run",
					ent.Manifest.Name, e.Name)
			}
			runs[e.Name] = rep
		}
		got[ent.Manifest.Name] = runs
	}

	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(adversarialGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(adversarialGoldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d entries)", adversarialGoldenPath, len(got))
		return
	}

	data, err := os.ReadFile(adversarialGoldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	var want adversarialGolden
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("golden has %d entries, corpus has %d (run with -update)", len(want), len(got))
	}
	for name, runs := range got {
		wantRuns, ok := want[name]
		if !ok {
			t.Errorf("corpus entry %s missing from golden (run with -update)", name)
			continue
		}
		for engine, run := range runs {
			if w, ok := wantRuns[engine]; !ok {
				t.Errorf("%s: engine %s missing from golden", name, engine)
			} else if !reflect.DeepEqual(run, w) {
				t.Errorf("%s engine %s drifted from golden:\n  want %+v\n  got  %+v", name, engine, w, run)
			}
		}
	}
}

// TestPromoteRoundTrip drives the full promotion pipeline into a temp
// directory: shrink-while-interesting, trace record, manifest write —
// then reloads the entry the way the corpus loader does and replays it.
func TestPromoteRoundTrip(t *testing.T) {
	popts := PromoteOptions{
		Dir:          t.TempDir(),
		Desc:         "promotion round-trip test",
		ShrinkBudget: 40,
	}
	var promoted string
	for seed := uint64(1); seed <= 64; seed++ {
		p := Generate(seed, DefaultGenConfig())
		rep := Check(p, popts.Check)
		if !popts.Interesting(rep) {
			continue
		}
		path, rep, err := Promote(p, popts)
		if err != nil {
			t.Fatalf("seed %d: promote: %v", seed, err)
		}
		if !popts.Interesting(rep) {
			t.Fatalf("seed %d: shrunk program lost interestingness", seed)
		}
		promoted = path
		break
	}
	if promoted == "" {
		t.Fatal("no interesting seed in 1..64 — generator or floor regressed")
	}

	data, err := os.ReadFile(promoted)
	if err != nil {
		t.Fatal(err)
	}
	var man workload.Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		t.Fatal(err)
	}
	if man.Trace == "" || man.Promoted == "" || len(man.Prog) == 0 {
		t.Fatalf("manifest incomplete: %+v", man)
	}
	tracePath := filepath.Join(popts.Dir, man.Trace)
	w, err := workload.FromTrace(tracePath)
	if err != nil {
		t.Fatalf("trace workload does not load: %v", err)
	}
	insts, mem := w.Build()

	var p Prog
	if err := json.Unmarshal(man.Prog, &p); err != nil {
		t.Fatal(err)
	}
	asm, err := Assemble(&p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(insts, asm.Insts) || !mem.Equal(asm.Mem) {
		t.Fatal("promoted trace does not reproduce the shrunk program's inputs")
	}
}
