package difftest

import (
	"strings"
	"testing"

	"acb/internal/ooo"
)

// mutatedForced returns the forced-predication engine with a deliberate
// core fault injected — the oracle self-test harness.
func mutatedForced(m ooo.Mutation) Engine {
	e := forcedEngine("forced+"+m.String(), func(s Site, _ *Assembled) (ooo.PredSpec, bool) {
		return siteSpec(s), true
	})
	e.Mutation = m
	return e
}

// TestMutationTransparencySkipIsCaught breaks register transparency
// (false-path producers commit their fresh physical register's zero value
// instead of moving the previous mapping) and asserts the differential
// oracle reports it. This is the self-test demanded of any oracle: a
// checker that cannot see a seeded bug is vacuous.
func TestMutationTransparencySkipIsCaught(t *testing.T) {
	opts := Options{Matrix: []Engine{mutatedForced(ooo.MutSkipTransparencyMove)}}
	caught := 0
	for seed := uint64(0); seed < 8; seed++ {
		p := Generate(seed, DefaultGenConfig())
		if rep := Check(p, opts); !rep.OK() {
			caught++
			assertArchitecturalFailure(t, rep)
		}
	}
	if caught < 6 {
		t.Fatalf("transparency-skip mutation caught on %d/8 programs; oracle too weak", caught)
	}
}

// TestMutationMemInvalidateSkipIsCaught breaks false-path LSQ
// invalidation (predicated-false loads and stores execute as if taken)
// and asserts the oracle reports the resulting memory corruption.
func TestMutationMemInvalidateSkipIsCaught(t *testing.T) {
	opts := Options{Matrix: []Engine{mutatedForced(ooo.MutSkipMemInvalidate)}}
	// Memory-shape-heavy generation: the mutation only bites when a
	// false path contains a load or store.
	cfg := DefaultGenConfig()
	cfg.PMem = 0.5
	caught := 0
	for seed := uint64(0); seed < 12; seed++ {
		p := Generate(seed, cfg)
		if rep := Check(p, opts); !rep.OK() {
			caught++
			assertArchitecturalFailure(t, rep)
		}
	}
	if caught < 4 {
		t.Fatalf("mem-invalidate-skip mutation caught on %d/12 programs; oracle too weak", caught)
	}
}

// TestMutationShrinksToMinimizedRepro runs the full failure pipeline on a
// seeded bug: detect, then shrink to a minimized reproduction that still
// fails — the artifact a developer would actually debug.
func TestMutationShrinksToMinimizedRepro(t *testing.T) {
	opts := Options{Matrix: []Engine{mutatedForced(ooo.MutSkipTransparencyMove)}}
	var victim *Prog
	for seed := uint64(0); seed < 8; seed++ {
		p := Generate(seed, DefaultGenConfig())
		if rep := Check(p, opts); !rep.OK() {
			victim = p
			break
		}
	}
	if victim == nil {
		t.Fatal("no failing program found for the seeded mutation")
	}
	before := CountNodes(victim.Nodes)
	shrunk, rep := Shrink(victim, opts, 250)
	if rep.OK() {
		t.Fatal("shrunk program no longer fails")
	}
	after := CountNodes(shrunk.Nodes)
	if after > before {
		t.Fatalf("shrinking grew the program: %d -> %d nodes", before, after)
	}
	if after > before/2 && before > 6 {
		t.Logf("note: shrink only reached %d of %d nodes", after, before)
	}
	if shrunk.Iters > victim.Iters {
		t.Fatalf("shrinking grew iterations: %d -> %d", victim.Iters, shrunk.Iters)
	}
	t.Logf("minimized repro: %d -> %d nodes, %d -> %d iters, failure %s",
		before, after, victim.Iters, shrunk.Iters, rep.Failures[0])
}

// TestMutationStringAndNone covers the mutation enum plumbing.
func TestMutationStringAndNone(t *testing.T) {
	if ooo.MutNone.String() != "none" {
		t.Fatalf("MutNone = %q", ooo.MutNone)
	}
	for _, m := range []ooo.Mutation{ooo.MutSkipTransparencyMove, ooo.MutSkipMemInvalidate} {
		if m.String() == "none" || strings.Contains(m.String(), "unknown") {
			t.Fatalf("mutation %d has no name", m)
		}
	}
}

// assertArchitecturalFailure requires the report's failures to be the
// kinds a state-corruption bug produces (register/memory/retired mismatch
// or an internal oracle panic), not infrastructure noise.
func assertArchitecturalFailure(t *testing.T, rep *Report) {
	t.Helper()
	for _, f := range rep.Failures {
		switch f.Kind {
		case FailRegs, FailMem, FailRetired, FailPanic, FailRun, FailInvariant:
		default:
			t.Fatalf("unexpected failure kind %q: %s", f.Kind, f)
		}
	}
}
