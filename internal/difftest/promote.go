package difftest

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"acb/internal/trace"
	"acb/internal/workload"
)

// Promotion turns interesting *passing* fuzz programs into committed
// adversarial workloads: the program is shrunk while it keeps passing the
// full engine matrix AND keeps exercising the predication machinery, its
// branch trace is recorded from the functional emulator, and a manifest +
// trace pair lands in the adversarial corpus directory
// (internal/workload/testdata/adversarial), where go:embed turns it into a
// tier=adversarial workload and the golden matrix replays it forever.

// PromoteOptions parameterizes one promotion.
type PromoteOptions struct {
	Dir          string  // corpus directory (manifest + trace are written here)
	Name         string  // entry name; "" derives "fuzz-seed<seed>"
	Desc         string  // one-line description for the manifest
	Check        Options // matrix the candidate must pass (zero = defaults)
	ShrinkBudget int     // Check calls for ShrinkWhile (0 = 400)
	// Interestingness floor: a candidate (and every accepted reduction)
	// must reach these machinery counters. MinPredications <= 0 means 1 —
	// a program that never predicates pins nothing.
	MinPredications int64
	MinDivFlushes   int64
}

// Interesting reports whether a report makes its program worth promoting:
// it passes the whole matrix and meets the machinery-exercise floor.
func (o *PromoteOptions) Interesting(r *Report) bool {
	minPred := o.MinPredications
	if minPred <= 0 {
		minPred = 1
	}
	return r.OK() && r.Predications >= minPred && r.DivFlushes >= o.MinDivFlushes
}

// Promote shrinks p while it stays interesting, records the shrunk
// program's branch trace, and writes the corpus entry. It returns the
// manifest path and the shrunk program's report.
func Promote(p *Prog, o PromoteOptions) (string, *Report, error) {
	if o.Dir == "" {
		return "", nil, fmt.Errorf("difftest: promote: no corpus directory")
	}
	shrunk, rep := ShrinkWhile(p, o.Check, o.ShrinkBudget, o.Interesting)
	if !o.Interesting(rep) {
		detail := "meets no machinery-exercise floor"
		if !rep.OK() {
			detail = "fails the matrix: " + rep.Failures[0].String()
		}
		return "", rep, fmt.Errorf("difftest: promote: seed %d is not promotable (%s)", p.Seed, detail)
	}
	asm, err := Assemble(shrunk)
	if err != nil {
		return "", rep, fmt.Errorf("difftest: promote: %w", err)
	}

	name := o.Name
	if name == "" {
		name = fmt.Sprintf("fuzz-seed%d", p.Seed)
	}
	if err := os.MkdirAll(o.Dir, 0o755); err != nil {
		return "", rep, err
	}
	traceName := name + ".trace"
	_, halted, err := trace.RecordFile(filepath.Join(o.Dir, traceName), asm.Insts, asm.Mem,
		asm.StepBound+16, trace.Header{Source: name, Kind: "difftest", Seed: shrunk.Seed})
	if err != nil {
		return "", rep, fmt.Errorf("difftest: promote: record trace: %w", err)
	}
	if !halted {
		return "", rep, fmt.Errorf("difftest: promote: seed %d did not halt within its step bound", p.Seed)
	}

	progJSON, err := json.Marshal(shrunk)
	if err != nil {
		return "", rep, err
	}
	engines := len(o.Check.Matrix)
	if engines == 0 {
		engines = len(DefaultMatrix())
	}
	reason := fmt.Sprintf(
		"passes the %d-engine matrix while exercising the machinery: %d predications, %d divergence flushes, %d transparent ops, %d select uops, %d invalidated mem ops (%d nodes after shrink)",
		engines, rep.Predications, rep.DivFlushes, rep.TransparentOps, rep.SelectUops, rep.InvalidatedMem,
		CountNodes(shrunk.Nodes))
	man := workload.Manifest{
		Name:     name,
		Desc:     o.Desc,
		Seed:     shrunk.Seed,
		Promoted: reason,
		Matrix: workload.MatrixSummary{
			Engines:        engines,
			Steps:          rep.Steps,
			Predications:   rep.Predications,
			DivFlushes:     rep.DivFlushes,
			TransparentOps: rep.TransparentOps,
			SelectUops:     rep.SelectUops,
			InvalidatedMem: rep.InvalidatedMem,
		},
		Trace: traceName,
		Prog:  progJSON,
	}
	data, err := json.MarshalIndent(&man, "", "  ")
	if err != nil {
		return "", rep, err
	}
	manifestPath := filepath.Join(o.Dir, name+".json")
	if err := os.WriteFile(manifestPath, append(data, '\n'), 0o644); err != nil {
		return "", rep, err
	}
	return manifestPath, rep, nil
}
