package difftest

// Greedy program shrinker: given a failing program, repeatedly applies the
// smallest structural reductions that keep it failing — halving the
// iteration count, deleting nodes, splicing hammock and loop bodies into
// their parents, and simplifying shapes — until no single reduction
// preserves the failure or the check budget runs out. The result is what
// lands in the corpus: a minimal, human-readable reproduction.

// cloneNodes deep-copies a node list.
func cloneNodes(ns []Node) []Node {
	if ns == nil {
		return nil
	}
	out := make([]Node, len(ns))
	copy(out, ns)
	for i := range out {
		out[i].Then = cloneNodes(out[i].Then)
		out[i].Else = cloneNodes(out[i].Else)
		out[i].Body = cloneNodes(out[i].Body)
	}
	return out
}

func cloneProg(p *Prog) *Prog {
	return &Prog{Seed: p.Seed, Iters: p.Iters, Nodes: cloneNodes(p.Nodes)}
}

// CountNodes returns the program's total node count (preorder).
func CountNodes(ns []Node) int {
	n := 0
	for i := range ns {
		n += 1 + CountNodes(ns[i].Then) + CountNodes(ns[i].Else) + CountNodes(ns[i].Body)
	}
	return n
}

// nodeInfo is the shape summary of one node, indexed in preorder; the
// reduction planner uses it to emit only applicable transforms.
type nodeInfo struct {
	kind    string
	shape   string
	elseLen int
	trip    int
}

func scanNodes(ns []Node, out []nodeInfo) []nodeInfo {
	for i := range ns {
		out = append(out, nodeInfo{
			kind: ns[i].Kind, shape: ns[i].Shape,
			elseLen: len(ns[i].Else), trip: ns[i].Trip,
		})
		out = scanNodes(ns[i].Then, out)
		out = scanNodes(ns[i].Else, out)
		out = scanNodes(ns[i].Body, out)
	}
	return out
}

// rewriteAt replaces the idx-th node (preorder) with fn's result, which
// may be empty (deletion) or a spliced body. Returns ok=false when idx is
// past the end of the tree.
func rewriteAt(ns []Node, idx *int, fn func(*Node) []Node) ([]Node, bool) {
	for i := range ns {
		if *idx == 0 {
			*idx = -1
			repl := fn(&ns[i])
			out := make([]Node, 0, len(ns)-1+len(repl))
			out = append(out, ns[:i]...)
			out = append(out, repl...)
			out = append(out, ns[i+1:]...)
			return out, true
		}
		*idx = *idx - 1
		for _, sub := range []*[]Node{&ns[i].Then, &ns[i].Else, &ns[i].Body} {
			if repl, ok := rewriteAt(*sub, idx, fn); ok {
				*sub = repl
				return ns, true
			}
		}
	}
	return ns, false
}

// reductionsOf builds every single-step reduction of p.
func reductionsOf(p *Prog) []*Prog {
	var out []*Prog

	if p.Iters > 4 {
		q := cloneProg(p)
		q.Iters /= 2
		out = append(out, q)
	}
	if p.Seed != 0 {
		q := cloneProg(p)
		q.Seed = 0
		out = append(out, q)
	}

	infos := scanNodes(p.Nodes, nil)
	tryNode := func(i int, fn func(*Node) []Node) {
		q := cloneProg(p)
		idx := i
		if ns, ok := rewriteAt(q.Nodes, &idx, fn); ok {
			q.Nodes = ns
			out = append(out, q)
		}
	}
	for i, info := range infos {
		tryNode(i, func(*Node) []Node { return nil }) // delete outright
		switch info.kind {
		case KindHammock:
			tryNode(i, func(n *Node) []Node { return n.Then })
			if info.elseLen > 0 {
				tryNode(i, func(n *Node) []Node { return n.Else })
			}
			if info.shape != ShapeIf {
				tryNode(i, func(n *Node) []Node {
					m := *n
					m.Shape = ShapeIf
					m.Else = nil
					return []Node{m}
				})
			}
		case KindLoop:
			tryNode(i, func(n *Node) []Node { return n.Body })
			if info.trip != 1 {
				tryNode(i, func(n *Node) []Node {
					m := *n
					m.Trip = 1
					return []Node{m}
				})
			}
		}
	}
	return out
}

// Shrink minimizes a failing program: it returns the smallest reduction
// found that still fails the differential check, plus that reduction's
// report. maxChecks bounds the number of Check calls (<= 0 means 400).
// When p itself passes, it is returned unchanged with its passing report.
func Shrink(p *Prog, opts Options, maxChecks int) (*Prog, *Report) {
	return ShrinkWhile(p, opts, maxChecks, func(r *Report) bool { return !r.OK() })
}

// ShrinkWhile greedily minimizes a program under an arbitrary keep
// predicate: a reduction is accepted while keep(its report) holds. Failure
// shrinking passes keep = "still fails"; adversarial promotion passes
// keep = "still passes and still exercises the machinery". When p itself
// does not satisfy keep it is returned unchanged with its report.
func ShrinkWhile(p *Prog, opts Options, maxChecks int, keep func(*Report) bool) (*Prog, *Report) {
	if maxChecks <= 0 {
		maxChecks = 400
	}
	best := cloneProg(p)
	rep := Check(best, opts)
	maxChecks--
	if !keep(rep) {
		return best, rep
	}
	improved := true
	for improved && maxChecks > 0 {
		improved = false
		for _, cand := range reductionsOf(best) {
			if maxChecks <= 0 {
				break
			}
			r := Check(cand, opts)
			maxChecks--
			if keep(r) {
				best, rep = cand, r
				improved = true
				break // restart from the reduced program
			}
		}
	}
	return best, rep
}
