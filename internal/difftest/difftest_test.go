package difftest

import (
	"encoding/json"
	"path/filepath"
	"reflect"
	"testing"

	"acb/internal/isa"
)

// fastMatrix is the engine subset unit tests use: every forced-predication
// mode plus the hot learning engine, skipping the redundant paper-default
// configs to keep single-CPU test time down.
func fastMatrix() []Engine {
	m, err := MatrixByNames([]string{"baseline", "forced", "forced-eager", "forced-swap", "forced-div", "acb-hot"})
	if err != nil {
		panic(err)
	}
	return m
}

func TestGenerateDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		a := Generate(seed, DefaultGenConfig())
		b := Generate(seed, DefaultGenConfig())
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: two generations differ", seed)
		}
		ja, _ := json.Marshal(a)
		var back Prog
		if err := json.Unmarshal(ja, &back); err != nil {
			t.Fatalf("seed %d: round-trip: %v", seed, err)
		}
		if !reflect.DeepEqual(*a, back) {
			t.Fatalf("seed %d: JSON round-trip changed the program", seed)
		}
	}
}

func TestGeneratedProgramsHaltWithinBound(t *testing.T) {
	for seed := uint64(0); seed < 150; seed++ {
		p := Generate(seed, DefaultGenConfig())
		asm, err := Assemble(p)
		if err != nil {
			t.Fatalf("seed %d: assemble: %v", seed, err)
		}
		if len(asm.Sites) == 0 {
			t.Errorf("seed %d: no predication sites", seed)
		}
		for _, s := range asm.Sites {
			if s.MaxBody > maxBodyCap {
				t.Fatalf("seed %d: site %+v exceeds body cap", seed, s)
			}
			if !s.Backward && s.ReconPC <= s.BranchPC {
				t.Fatalf("seed %d: forward site %+v has recon before branch", seed, s)
			}
		}
		ref := isa.NewArchState(asm.Mem.Clone())
		steps, halted := ref.Run(asm.Insts, asm.StepBound+16)
		if !halted {
			t.Fatalf("seed %d: not halted after %d steps (bound %d)", seed, steps, asm.StepBound)
		}
	}
}

func TestAssembleRejectsBadIters(t *testing.T) {
	if _, err := Assemble(&Prog{Iters: 0}); err == nil {
		t.Fatal("zero iteration count accepted")
	}
	if _, err := Assemble(&Prog{Iters: -3}); err == nil {
		t.Fatal("negative iteration count accepted")
	}
}

func TestCheckSmallBatch(t *testing.T) {
	opts := Options{Matrix: fastMatrix()}
	var preds, divs, trans int64
	for seed := uint64(0); seed < 12; seed++ {
		p := Generate(seed, DefaultGenConfig())
		rep := Check(p, opts)
		if !rep.OK() {
			t.Fatalf("seed %d: %v", seed, rep.Failures)
		}
		preds += rep.Predications
		divs += rep.DivFlushes
		trans += rep.TransparentOps
	}
	// The differential check is vacuous if the machinery never engages.
	if preds == 0 || divs == 0 || trans == 0 {
		t.Fatalf("machinery not exercised: %d predications, %d divergence flushes, %d transparent ops",
			preds, divs, trans)
	}
}

func TestSeedCorpusEntriesPass(t *testing.T) {
	entries := SeedCorpus()
	if len(entries) < 20 {
		t.Fatalf("seed corpus has %d entries, want >= 20", len(entries))
	}
	seen := map[string]bool{}
	for _, e := range entries {
		if seen[e.Name] {
			t.Fatalf("duplicate corpus entry name %q", e.Name)
		}
		seen[e.Name] = true
		rep := Check(e.Prog, Options{Matrix: fastMatrix()})
		if !rep.OK() {
			t.Fatalf("entry %s: %v", e.Name, rep.Failures)
		}
	}
}

// TestSeedCorpusReplay replays the materialized testdata corpus through
// the full engine matrix — the regression net for every shape the corpus
// pins. Failure entries written by campaigns (failure-seed*.json) are
// replayed expecting their failures to still reproduce would be wrong
// here: the curated corpus must PASS; failure repros are excluded from
// testdata by convention.
func TestSeedCorpusReplay(t *testing.T) {
	entries, err := LoadCorpusDir("testdata")
	if err != nil {
		t.Fatalf("loading corpus: %v", err)
	}
	if len(entries) < 20 {
		t.Fatalf("testdata corpus has %d entries, want >= 20 (regenerate with acbfuzz -emit-seed-corpus)", len(entries))
	}
	for _, e := range entries {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			rep := Check(e.Prog, Options{})
			if !rep.OK() {
				t.Fatalf("%s: %v", e.Desc, rep.Failures)
			}
		})
	}
}

func TestCorpusFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := &CorpusEntry{
		Name: "roundtrip",
		Desc: "corpus serialization round-trip",
		Prog: Generate(7, DefaultGenConfig()),
	}
	path := filepath.Join(dir, "roundtrip.json")
	if err := WriteCorpusFile(path, want); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := LoadCorpusFile(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("entry changed across write/load")
	}
	all, err := LoadCorpusDir(dir)
	if err != nil || len(all) != 1 {
		t.Fatalf("dir load: %v (%d entries)", err, len(all))
	}
	if missing, err := LoadCorpusDir(filepath.Join(dir, "absent")); err != nil || len(missing) != 0 {
		t.Fatalf("missing dir should be an empty corpus, got %v / %d", err, len(missing))
	}
}

func TestMatrixByNames(t *testing.T) {
	m, err := MatrixByNames([]string{"baseline", "acb"})
	if err != nil || len(m) != 2 || m[0].Name != "baseline" || m[1].Name != "acb" {
		t.Fatalf("got %v, %v", m, err)
	}
	if _, err := MatrixByNames([]string{"no-such-engine"}); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

func TestRNGIntnUnbiased(t *testing.T) {
	r := NewRNG(42)
	const n, draws = 6, 60000
	var hist [n]int
	for i := 0; i < draws; i++ {
		hist[r.Intn(n)]++
	}
	for v, c := range hist {
		if c < draws/n-draws/20 || c > draws/n+draws/20 {
			t.Fatalf("value %d drawn %d times out of %d (expected ~%d)", v, c, draws, draws/n)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestRNGSeedZeroValid(t *testing.T) {
	r := NewRNG(0)
	a, b := r.Uint64(), r.Uint64()
	if a == 0 && b == 0 {
		t.Fatal("seed 0 produced a stuck stream")
	}
}

func TestRandomSpecDeterministic(t *testing.T) {
	a, b := RandomSpec(99), RandomSpec(99)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("RandomSpec not deterministic")
	}
	if len(a.Hammocks) == 0 {
		t.Fatal("RandomSpec produced no hammocks")
	}
}

func TestCampaignDeterministic(t *testing.T) {
	run := func() *CampaignResult {
		res, err := RunCampaign(CampaignOptions{
			Seed: 3, N: 6, Jobs: 2,
			Check: Options{Matrix: fastMatrix()},
		})
		if err != nil {
			t.Fatalf("campaign: %v", err)
		}
		return res
	}
	a, b := run(), run()
	if a.Summary() != b.Summary() {
		t.Fatalf("campaign not deterministic:\n%s\n%s", a.Summary(), b.Summary())
	}
	if !a.OK() {
		t.Fatalf("campaign failures: %v", a.Failures)
	}
	if a.Programs != 6 {
		t.Fatalf("ran %d programs, want 6", a.Programs)
	}
}
