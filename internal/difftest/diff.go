package difftest

import (
	"context"
	"fmt"
	"strings"
	"time"

	"acb/internal/bpu"
	"acb/internal/config"
	"acb/internal/core"
	"acb/internal/isa"
	"acb/internal/ooo"
)

// forcedScheme predicates exactly the generator-reported sites. Because
// the generator knows each hammock's branch PC, merge point and body bound
// statically, a forced engine exercises the dual-fetch machinery on every
// program — unlike the real ACB, whose learning pipeline needs dozens of
// mispredictions before it applies. Variants perturb the specs to reach
// the corner cases: eager select-µop mode, inverted fetch-first direction
// (perspective swap), and a bogus reconvergence PC that forces every
// instance down the divergence-flush recovery path.
type forcedScheme struct {
	name  string
	specs map[int]ooo.PredSpec
}

func (f *forcedScheme) Name() string { return f.name }

func (f *forcedScheme) ShouldPredicate(pc int, _ bool, _ int, _ uint64) (ooo.PredSpec, bool) {
	s, ok := f.specs[pc]
	return s, ok
}

func (f *forcedScheme) OnFetch(ooo.FetchEvent)           {}
func (f *forcedScheme) OnFlush()                         {}
func (f *forcedScheme) OnBranchResolve(ooo.ResolveEvent) {}
func (f *forcedScheme) OnRetireTick(int64)               {}

// Engine is one column of the differential matrix: a scheme factory (nil
// result = plain speculation baseline) plus an optional fault injection
// for oracle self-tests.
type Engine struct {
	Name      string
	Mutation  ooo.Mutation
	NewScheme func(a *Assembled) ooo.Scheme
}

func baselineEngine() Engine {
	return Engine{Name: "baseline", NewScheme: func(*Assembled) ooo.Scheme { return nil }}
}

// forcedEngine builds an engine whose scheme predicates every recorded
// site after passing it through xform (return ok=false to drop a site).
func forcedEngine(name string, xform func(Site, *Assembled) (ooo.PredSpec, bool)) Engine {
	return Engine{Name: name, NewScheme: func(a *Assembled) ooo.Scheme {
		specs := make(map[int]ooo.PredSpec, len(a.Sites))
		for _, s := range a.Sites {
			if spec, ok := xform(s, a); ok {
				specs[s.BranchPC] = spec
			}
		}
		return &forcedScheme{name: name, specs: specs}
	}}
}

func siteSpec(s Site) ooo.PredSpec {
	return ooo.PredSpec{ReconPC: s.ReconPC, FirstTaken: s.FirstTaken, MaxBody: s.MaxBody}
}

// HotACBConfig returns the paper configuration with the application
// threshold dropped so the learning pipeline (Critical → Learning → ACB
// Table → confidence) starts predicating within fuzz-sized programs; with
// the paper's threshold of 32 a branch needs ~50 flush-causing
// mispredictions before its first dual-fetch, which a 20K-step program
// rarely reaches.
func HotACBConfig() core.Config {
	c := core.DefaultConfig()
	c.ApplyThreshold = 2
	c.UseDynamo = false
	return c
}

func acbEngine(name string, cfg core.Config) Engine {
	return Engine{Name: name, NewScheme: func(*Assembled) ooo.Scheme { return core.New(cfg) }}
}

// DefaultMatrix is the campaign's engine matrix: the speculation baseline,
// forced-predication engines covering the convergence types, the
// perspective swap, eager select-µop mode and forced divergence, and real
// ACB engines with the Dynamo and StallThrottle gates on and off.
func DefaultMatrix() []Engine {
	div := forcedEngine("forced-div", func(s Site, a *Assembled) (ooo.PredSpec, bool) {
		// Reconvergence at the halt instruction: unreachable within
		// MaxBody from any hammock body, so every instance diverges and
		// recovers through the divergence flush.
		return ooo.PredSpec{ReconPC: len(a.Insts) - 1, FirstTaken: s.FirstTaken, MaxBody: 6}, true
	})
	swap := forcedEngine("forced-swap", func(s Site, _ *Assembled) (ooo.PredSpec, bool) {
		spec := siteSpec(s)
		spec.FirstTaken = !spec.FirstTaken
		return spec, true
	})
	eager := forcedEngine("forced-eager", func(s Site, _ *Assembled) (ooo.PredSpec, bool) {
		spec := siteSpec(s)
		spec.Eager = true
		return spec, true
	})
	dynamo := HotACBConfig()
	dynamo.UseDynamo = true
	throttle := HotACBConfig()
	throttle.ThrottleStalls = true
	return []Engine{
		baselineEngine(),
		forcedEngine("forced", func(s Site, _ *Assembled) (ooo.PredSpec, bool) {
			return siteSpec(s), true
		}),
		eager,
		swap,
		div,
		acbEngine("acb-hot", HotACBConfig()),
		acbEngine("acb-dynamo", dynamo),
		acbEngine("acb-throttle", throttle),
		acbEngine("acb", core.DefaultConfig()),
	}
}

// MatrixByNames filters DefaultMatrix to the named engines (order
// preserved); unknown names are reported.
func MatrixByNames(names []string) ([]Engine, error) {
	all := DefaultMatrix()
	byName := make(map[string]Engine, len(all))
	for _, e := range all {
		byName[e.Name] = e
	}
	var out []Engine
	for _, n := range names {
		e, ok := byName[strings.TrimSpace(n)]
		if !ok {
			return nil, fmt.Errorf("difftest: unknown engine %q (have %s)", n, EngineNames())
		}
		out = append(out, e)
	}
	return out, nil
}

// EngineNames lists the default matrix's engine names.
func EngineNames() string {
	var names []string
	for _, e := range DefaultMatrix() {
		names = append(names, e.Name)
	}
	return strings.Join(names, ",")
}

// Options parameterizes one differential check.
type Options struct {
	Matrix     []Engine    // nil = DefaultMatrix()
	Invariants []Invariant // nil = DefaultInvariants(); empty slice = none
	CoreCfg    config.Core // zero = config.Skylake()
	TraceCap   int         // trace ring capacity (0 = DefaultTraceCap)
	// BudgetSlack is added to the functional step count to form each OOO
	// run's retire budget; an engine that has not halted by then fails.
	BudgetSlack int64
	// Timeout bounds each engine run's wall-clock time; a run that exceeds
	// it is reported as a FailRun failure instead of stalling the caller
	// (shrink loops check hundreds of candidates — one wedged engine must
	// not hang the campaign). Zero means no bound.
	Timeout time.Duration
	// Context cancels in-flight engine runs early (campaign shutdown).
	// nil means context.Background().
	Context context.Context
}

func (o *Options) fill() {
	if o.Matrix == nil {
		o.Matrix = DefaultMatrix()
	}
	if o.Invariants == nil {
		o.Invariants = DefaultInvariants()
	}
	if o.CoreCfg.ROBSize == 0 {
		o.CoreCfg = config.Skylake()
	}
	if o.BudgetSlack <= 0 {
		o.BudgetSlack = 64
	}
}

// Failure is one engine's deviation from the oracle: an architectural
// mismatch, an invariant violation, a stuck pipeline, or a panic out of
// the core's internal consistency checks.
type Failure struct {
	Engine string `json:"engine"`
	Kind   string `json:"kind"`
	Detail string `json:"detail"`
}

func (f Failure) String() string {
	return fmt.Sprintf("[%s] %s: %s", f.Engine, f.Kind, f.Detail)
}

// Failure kinds.
const (
	FailAssemble  = "assemble"  // program did not assemble
	FailNoHalt    = "nohalt"    // functional emulator did not halt in bound
	FailRun       = "run"       // OOO run error (deadlock) or budget exhausted
	FailPanic     = "panic"     // core internal consistency panic
	FailRetired   = "retired"   // retired-instruction count differs
	FailRegs      = "regs"      // final architectural registers differ
	FailMem       = "mem"       // final memory image differs
	FailInvariant = "invariant" // invariant pack violation
)

// Report is the outcome of one program's differential check.
type Report struct {
	Seed     uint64    `json:"seed"`
	Steps    int64     `json:"steps"` // functional instruction count
	Failures []Failure `json:"failures,omitempty"`

	// Aggregate machinery-exercise counters across all engines, used by
	// campaigns to prove the fuzzer reaches the paper's mechanisms.
	Predications   int64 `json:"predications"`
	DivFlushes     int64 `json:"div_flushes"`
	TransparentOps int64 `json:"transparent_ops"`
	SelectUops     int64 `json:"select_uops"`
	InvalidatedMem int64 `json:"invalidated_mem"`
}

// OK reports whether the check passed.
func (r *Report) OK() bool { return len(r.Failures) == 0 }

// Check runs one program through the functional emulator and every engine
// of the matrix, comparing final architectural state and enforcing the
// invariant pack. It never panics: internal core panics are captured as
// failures, which both protects long campaigns and lets the mutation
// self-test observe oracle-detected corruption.
func Check(p *Prog, opts Options) *Report {
	opts.fill()
	rep := &Report{Seed: p.Seed}

	asm, err := Assemble(p)
	if err != nil {
		rep.Failures = append(rep.Failures, Failure{Engine: "-", Kind: FailAssemble, Detail: err.Error()})
		return rep
	}

	// Ground truth: the functional emulator run to halt.
	refMem := asm.Mem.Clone()
	ref := isa.NewArchState(refMem)
	steps, halted := ref.Run(asm.Insts, asm.StepBound+16)
	rep.Steps = steps
	if !halted {
		rep.Failures = append(rep.Failures, Failure{
			Engine: "-", Kind: FailNoHalt,
			Detail: fmt.Sprintf("functional emulator ran %d steps without halting (bound %d)", steps, asm.StepBound),
		})
		return rep
	}

	for _, e := range opts.Matrix {
		fails, res := runEngine(e, asm, ref, refMem, steps, opts)
		rep.Failures = append(rep.Failures, fails...)
		rep.Predications += res.Predications
		rep.DivFlushes += res.DivFlushes
		rep.TransparentOps += res.TransparentOps
		rep.SelectUops += res.SelectUops
		rep.InvalidatedMem += res.InvalidatedMem
	}
	return rep
}

// runEngine executes one engine and compares it against the functional
// reference. Panics out of the core are converted into failures.
func runEngine(e Engine, asm *Assembled, ref *isa.ArchState, refMem *isa.Memory, steps int64, opts Options) (fails []Failure, res ooo.Result) {
	defer func() {
		if r := recover(); r != nil {
			fails = append(fails, Failure{
				Engine: e.Name, Kind: FailPanic, Detail: fmt.Sprint(r),
			})
		}
	}()

	scheme := e.NewScheme(asm)
	image := asm.Mem.Clone()
	c := ooo.NewWithMemory(opts.CoreCfg, asm.Insts, bpu.NewTAGE(bpu.DefaultTAGEConfig()), scheme, image)
	c.EnablePipeStats()
	c.EnableCPIStack()
	tr := c.EnableTrace(opts.TraceCap)
	if a, ok := scheme.(*core.ACB); ok {
		a.SetTrace(tr)
	}
	if e.Mutation != ooo.MutNone {
		c.InjectMutation(e.Mutation)
	}

	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}
	budget := steps + opts.BudgetSlack
	res, err := c.RunContext(ctx, budget)
	if err != nil {
		fails = append(fails, Failure{Engine: e.Name, Kind: FailRun, Detail: err.Error()})
		return fails, res
	}
	if !res.Halted {
		fails = append(fails, Failure{
			Engine: e.Name, Kind: FailRun,
			Detail: fmt.Sprintf("not halted after retiring %d (functional steps %d, budget %d)", res.Retired, steps, budget),
		})
		return fails, res
	}

	// Architectural transparency: the predicated run must retire the exact
	// state of the functional run — same useful-instruction count, same
	// registers, byte-identical memory image.
	if res.Retired != steps {
		fails = append(fails, Failure{
			Engine: e.Name, Kind: FailRetired,
			Detail: fmt.Sprintf("retired %d useful instructions, functional emulator executed %d", res.Retired, steps),
		})
	}
	for i, v := range res.FinalRegs {
		if v != ref.Regs[i] {
			fails = append(fails, Failure{
				Engine: e.Name, Kind: FailRegs,
				Detail: fmt.Sprintf("r%d = %#x, functional emulator has %#x", i, v, ref.Regs[i]),
			})
			break
		}
	}
	if diffs := image.DiffWords(refMem, 3); len(diffs) > 0 {
		var d []string
		for _, w := range diffs {
			d = append(d, fmt.Sprintf("[%#x]=%#x want %#x", w.Addr, w.A, w.B))
		}
		fails = append(fails, Failure{
			Engine: e.Name, Kind: FailMem,
			Detail: "memory image differs: " + strings.Join(d, ", "),
		})
	}

	art := &Artifacts{
		Engine: e.Name,
		Cfg:    opts.CoreCfg,
		Res:    res,
		Pipe:   c.PipeStats(),
		Trace:  tr,
		Scheme: scheme,
		Steps:  steps,
		Budget: budget,
	}
	for _, inv := range opts.Invariants {
		if err := inv.Check(art); err != nil {
			fails = append(fails, Failure{
				Engine: e.Name, Kind: FailInvariant,
				Detail: fmt.Sprintf("%s: %v", inv.Name, err),
			})
		}
	}
	return fails, res
}
