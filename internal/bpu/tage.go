package bpu

// TAGE is a TAgged GEometric-history-length predictor (Seznec), the class
// of predictor the paper's Skylake-like baseline uses. It has a bimodal
// base table plus tagged components indexed with geometrically increasing
// history lengths. Allocation on misprediction and usefulness-counter
// management follow the published design closely enough to reproduce the
// behaviours the paper depends on: high accuracy on correlated branches,
// and table thrashing when the global history becomes unstable under
// dynamic predication (Sec. V-C).
type TAGE struct {
	baseBits uint
	base     []int8 // 2-bit counters

	nTables  int
	tblBits  uint
	histLens [maxTables]uint
	entries  [][]tageEntry

	hist       uint64
	useAltOnNA int8 // simplified USE_ALT_ON_NA counter

	tick int    // usefulness reset ticker
	rng  uint64 // xorshift state for allocation randomization
}

type tageEntry struct {
	tag uint16
	ctr int8 // -4..3 signed saturating
	u   int8 // 0..3 usefulness
}

// TAGEConfig parameterizes NewTAGE.
type TAGEConfig struct {
	BaseBits  uint   // log2 entries in base bimodal table
	TableBits uint   // log2 entries per tagged table
	HistLens  []uint // history length per tagged table, ascending, ≤64
}

// DefaultTAGEConfig returns the configuration used by the Skylake-like
// baseline: 8K-entry base, five 1K-entry tagged tables with history
// lengths 4..64.
func DefaultTAGEConfig() TAGEConfig {
	return TAGEConfig{
		BaseBits:  13,
		TableBits: 9,
		HistLens:  []uint{4, 8, 16, 32, 64},
	}
}

// NewTAGE returns a TAGE predictor with the given configuration.
func NewTAGE(cfg TAGEConfig) *TAGE {
	if len(cfg.HistLens) == 0 || len(cfg.HistLens) > maxTables {
		panic("bpu: TAGE needs 1..8 tagged tables")
	}
	t := &TAGE{
		baseBits: cfg.BaseBits,
		base:     make([]int8, 1<<cfg.BaseBits),
		nTables:  len(cfg.HistLens),
		tblBits:  cfg.TableBits,
		rng:      0x853C49E6748FEA9B,
	}
	for i, hl := range cfg.HistLens {
		if hl > 64 {
			hl = 64
		}
		t.histLens[i] = hl
		t.entries = append(t.entries, make([]tageEntry, 1<<cfg.TableBits))
	}
	return t
}

// Name implements Predictor.
func (t *TAGE) Name() string { return "tage" }

func histMask(bits uint) uint64 {
	if bits >= 64 {
		return ^uint64(0)
	}
	return (1 << bits) - 1
}

func (t *TAGE) index(pc uint64, table int) uint32 {
	return mix(pc, t.hist&histMask(t.histLens[table]), t.tblBits)
}

func (t *TAGE) tag(pc uint64, table int) uint16 {
	h := t.hist & histMask(t.histLens[table])
	x := pc*0xA24BAED4963EE407 ^ h*0x9FB21C651E98DF25 ^ uint64(table)*0x8FB3
	x ^= x >> 31
	return uint16(x) & 0x7FF // 11-bit tags
}

func (t *TAGE) nextRand() uint64 {
	t.rng ^= t.rng << 13
	t.rng ^= t.rng >> 7
	t.rng ^= t.rng << 17
	return t.rng
}

// Predict implements Predictor.
func (t *TAGE) Predict(pc uint64, _ bool) Prediction {
	p := Prediction{Hist: t.hist, provider: -1}
	p.baseIdx = mix(pc, 0, t.baseBits)
	baseTaken := t.base[p.baseIdx] >= 2

	provider, alt := -1, -1
	for i := 0; i < t.nTables; i++ {
		p.indices[i] = t.index(pc, i)
		p.tags[i] = t.tag(pc, i)
		if t.entries[i][p.indices[i]].tag == p.tags[i] {
			alt = provider
			provider = i
		}
	}
	// provider currently holds the *last* (longest-history) match because
	// tables are scanned in ascending history order.
	p.provider = provider

	altTaken := baseTaken
	if alt >= 0 {
		altTaken = t.entries[alt][p.indices[alt]].ctr >= 0
	}
	p.altTaken = altTaken

	if provider >= 0 {
		e := &t.entries[provider][p.indices[provider]]
		providerTaken := e.ctr >= 0
		weak := e.ctr == 0 || e.ctr == -1
		p.newAlloc = weak && e.u == 0
		if p.newAlloc && t.useAltOnNA >= 0 {
			p.Taken = altTaken
		} else {
			p.Taken = providerTaken
		}
		p.Conf = confFromCtr(e.ctr)
	} else {
		p.Taken = baseTaken
		p.Conf = confFrom2bit(t.base[p.baseIdx])
	}
	return p
}

// confFromCtr maps a signed 3-bit counter to 0..3 confidence.
func confFromCtr(c int8) int {
	if c < 0 {
		c = -c - 1
	}
	return int(c) // 0 (weak) .. 3 (strong)
}

// Update implements Predictor. It must be called exactly once per
// prediction, with the Prediction returned at fetch.
func (t *TAGE) Update(pc uint64, pred Prediction, taken bool) {
	correct := pred.Taken == taken

	// USE_ALT_ON_NA bookkeeping for newly-allocated weak providers.
	if pred.provider >= 0 && pred.newAlloc {
		e := &t.entries[pred.provider][pred.indices[pred.provider]]
		providerTaken := e.ctr >= 0
		if providerTaken != pred.altTaken {
			if providerTaken == taken && t.useAltOnNA > -8 {
				t.useAltOnNA--
			} else if pred.altTaken == taken && t.useAltOnNA < 7 {
				t.useAltOnNA++
			}
		}
	}

	if pred.provider >= 0 {
		e := &t.entries[pred.provider][pred.indices[pred.provider]]
		providerTaken := e.ctr >= 0
		// Usefulness: provider was useful if it disagreed with alt and
		// was right.
		if providerTaken != pred.altTaken {
			if providerTaken == taken {
				if e.u < 3 {
					e.u++
				}
			} else if e.u > 0 {
				e.u--
			}
		}
		e.ctr = sat3(e.ctr, taken)
	} else {
		t.base[pred.baseIdx] = sat2(t.base[pred.baseIdx], taken)
	}

	// Allocate a longer-history entry on misprediction. This is the
	// mechanism that thrashes when branch history is unstable: every
	// mispredict burns an entry in a longer table.
	if !correct && pred.provider < t.nTables-1 {
		t.allocate(pc, pred, taken)
	}

	// Graceful usefulness aging.
	t.tick++
	if t.tick >= 1<<18 {
		t.tick = 0
		for i := range t.entries {
			for j := range t.entries[i] {
				if t.entries[i][j].u > 0 {
					t.entries[i][j].u--
				}
			}
		}
	}
}

func (t *TAGE) allocate(_ uint64, pred Prediction, taken bool) {
	start := pred.provider + 1
	// Find candidate tables with a non-useful victim. Only the first two
	// candidates are ever chosen from, so track them without a slice.
	c0, c1, nCand := -1, -1, 0
	for i := start; i < t.nTables; i++ {
		if t.entries[i][pred.indices[i]].u == 0 {
			switch nCand {
			case 0:
				c0 = i
			case 1:
				c1 = i
			}
			nCand++
		}
	}
	if nCand == 0 {
		// Decay usefulness so future allocations succeed.
		for i := start; i < t.nTables; i++ {
			e := &t.entries[i][pred.indices[i]]
			if e.u > 0 {
				e.u--
			}
		}
		return
	}
	// Prefer shorter history with 2/3 probability, per Seznec.
	pick := c0
	if nCand > 1 && t.nextRand()%3 == 0 {
		pick = c1
	}
	e := &t.entries[pick][pred.indices[pick]]
	e.tag = pred.tags[pick]
	e.u = 0
	if taken {
		e.ctr = 0
	} else {
		e.ctr = -1
	}
}

// sat3 advances a signed 3-bit saturating counter (-4..3).
func sat3(c int8, taken bool) int8 {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > -4 {
		return c - 1
	}
	return c
}

// History implements Predictor.
func (t *TAGE) History() uint64 { return t.hist }

// SetHistory implements Predictor.
func (t *TAGE) SetHistory(h uint64) { t.hist = h }

// PushHistory implements Predictor.
func (t *TAGE) PushHistory(pc uint64, taken bool) {
	t.hist = historyPush(t.hist, pc, taken)
}
