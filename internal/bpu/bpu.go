// Package bpu implements the branch direction predictors used by the
// simulated core: a TAGE predictor similar in spirit to the baseline the
// paper assumes (Seznec [2][3]), plus bimodal, gshare and perceptron
// predictors for comparison, an oracle predictor for perfect-speculation
// studies (Fig. 1), and a JRS-style confidence estimator used by the DMP
// baseline.
//
// Global history is owned by the predictor and updated speculatively at
// fetch via PushHistory; the core snapshots and restores it around
// pipeline flushes, exactly as the paper describes for speculative history
// update (Sec. V-C, [30]).
package bpu

// Prediction carries a direction prediction together with the metadata the
// predictor needs to train itself later. The core stores the Prediction in
// the instruction's ROB entry and hands it back at retirement.
type Prediction struct {
	Taken bool
	// Hist is the global history at prediction time.
	Hist uint64
	// Provider/alt metadata (TAGE) or raw output (perceptron).
	provider int // -1 = base table
	altTaken bool
	newAlloc bool
	sum      int32
	indices  [maxTables]uint32
	tags     [maxTables]uint16
	baseIdx  uint32
	// Conf is a small saturation-based confidence proxy: higher is more
	// confident. TAGE uses the provider counter distance from the
	// weakly-taken threshold.
	Conf int
}

// Predictor is a branch direction predictor with speculatively-updated
// global history.
//
// oracleTaken passes the architecturally-correct outcome, which the fetch
// engine knows because the functional front end runs ahead of timing; only
// the Oracle predictor consults it.
type Predictor interface {
	// Predict returns the predicted direction for the conditional branch
	// at pc.
	Predict(pc uint64, oracleTaken bool) Prediction
	// Update trains the predictor with the resolved outcome. pred must be
	// the value returned by the corresponding Predict call.
	Update(pc uint64, pred Prediction, taken bool)
	// History returns the current speculative global history.
	History() uint64
	// SetHistory restores the speculative global history (flush repair).
	SetHistory(h uint64)
	// PushHistory shifts the (possibly speculative) outcome of a branch
	// into the global history.
	PushHistory(pc uint64, taken bool)
	// Name identifies the predictor in reports.
	Name() string
}

const maxTables = 8

// historyPush computes the new history after shifting in one branch
// outcome. A bit of the PC is mixed in so that path information
// disambiguates same-direction sequences.
func historyPush(h uint64, pc uint64, taken bool) uint64 {
	bit := uint64(0)
	if taken {
		bit = 1
	}
	return (h << 1) | (bit ^ ((pc >> 2) & 1))
}

// mix hashes a pc with a masked history for table indexing.
func mix(pc, hist uint64, bits uint) uint32 {
	x := pc*0x9E3779B97F4A7C15 ^ hist*0xC2B2AE3D27D4EB4F
	x ^= x >> 29
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 32
	return uint32(x) & ((1 << bits) - 1)
}
