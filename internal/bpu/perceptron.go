package bpu

// Perceptron is a global-history perceptron predictor (Jimenez & Lin,
// HPCA'01), included as an alternative baseline predictor for sensitivity
// studies.
type Perceptron struct {
	bits    uint
	histLen int
	theta   int32
	weights [][]int8
	hist    uint64
}

// NewPerceptron returns a perceptron predictor with 2^bits perceptrons and
// histLen history bits (≤ 62).
func NewPerceptron(bits uint, histLen int) *Perceptron {
	if histLen > 62 {
		histLen = 62
	}
	p := &Perceptron{
		bits:    bits,
		histLen: histLen,
		theta:   int32(1.93*float64(histLen) + 14),
	}
	p.weights = make([][]int8, 1<<bits)
	for i := range p.weights {
		p.weights[i] = make([]int8, histLen+1) // +1 bias weight
	}
	return p
}

// Name implements Predictor.
func (p *Perceptron) Name() string { return "perceptron" }

// Predict implements Predictor.
func (p *Perceptron) Predict(pc uint64, _ bool) Prediction {
	idx := mix(pc, 0, p.bits)
	w := p.weights[idx]
	sum := int32(w[0]) // bias
	for i := 0; i < p.histLen; i++ {
		if (p.hist>>uint(i))&1 == 1 {
			sum += int32(w[i+1])
		} else {
			sum -= int32(w[i+1])
		}
	}
	conf := 0
	if sum >= p.theta || sum <= -p.theta {
		conf = 1
	}
	return Prediction{
		Taken:   sum >= 0,
		Hist:    p.hist,
		baseIdx: idx,
		sum:     sum,
		Conf:    conf,
	}
}

// Update implements Predictor.
func (p *Perceptron) Update(_ uint64, pred Prediction, taken bool) {
	mispred := pred.Taken != taken
	mag := pred.sum
	if mag < 0 {
		mag = -mag
	}
	if !mispred && mag > p.theta {
		return
	}
	w := p.weights[pred.baseIdx]
	t := int8(-1)
	if taken {
		t = 1
	}
	w[0] = satW(w[0], t)
	for i := 0; i < p.histLen; i++ {
		x := int8(-1)
		if (pred.Hist>>uint(i))&1 == 1 {
			x = 1
		}
		w[i+1] = satW(w[i+1], t*x)
	}
}

func satW(w, d int8) int8 {
	v := int16(w) + int16(d)
	if v > 127 {
		v = 127
	}
	if v < -128 {
		v = -128
	}
	return int8(v)
}

// History implements Predictor.
func (p *Perceptron) History() uint64 { return p.hist }

// SetHistory implements Predictor.
func (p *Perceptron) SetHistory(h uint64) { p.hist = h }

// PushHistory implements Predictor.
func (p *Perceptron) PushHistory(pc uint64, taken bool) {
	p.hist = historyPush(p.hist, pc, taken)
}

// JRSConfidence is a Jacobsen-Rotenberg-Smith style confidence estimator:
// a table of resetting counters indexed by pc⊕history. DMP uses it to
// decide which branch instances to predicate (low confidence ⇒ predicate).
type JRSConfidence struct {
	bits      uint
	histLen   uint
	threshold int8
	ctrs      []int8
}

// NewJRSConfidence returns an estimator with 2^bits counters, histLen bits
// of history folded into the index, and the given high-confidence
// threshold (counter ≥ threshold ⇒ confident).
func NewJRSConfidence(bits, histLen uint, threshold int8) *JRSConfidence {
	return &JRSConfidence{
		bits:      bits,
		histLen:   histLen,
		threshold: threshold,
		ctrs:      make([]int8, 1<<bits),
	}
}

func (j *JRSConfidence) index(pc, hist uint64) uint32 {
	return mix(pc, hist&histMask(j.histLen), j.bits)
}

// Confident reports whether the branch instance has high prediction
// confidence.
func (j *JRSConfidence) Confident(pc, hist uint64) bool {
	return j.ctrs[j.index(pc, hist)] >= j.threshold
}

// Update trains the estimator with the resolved outcome: increment
// (saturating at 15) on a correct prediction, reset on a misprediction.
func (j *JRSConfidence) Update(pc, hist uint64, correct bool) {
	idx := j.index(pc, hist)
	if correct {
		if j.ctrs[idx] < 15 {
			j.ctrs[idx]++
		}
	} else {
		j.ctrs[idx] = 0
	}
}
