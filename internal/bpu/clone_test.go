package bpu

import "testing"

// This file covers the direction TestCloneIndependence does not — mutating
// the CLONE must leave the ORIGINAL untouched — plus the table-aliasing
// edge cases the index hashing creates: distinct PCs sharing a bimodal
// counter, histories equal under the gshare mask, and TAGE tagged-table
// tag collisions.

// divergeStream trains p with a stream disjoint from trainStream's.
func divergeStream(p Predictor, n int) {
	x := uint64(0xBEEFCAFEF00D)
	for i := 0; i < n; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		Warm(p, (x>>9)&0x3FF, x&1 == 0)
	}
}

// TestCloneMutationDoesNotPerturbOriginal trains a predictor, clones it,
// and drives the CLONE far away: the original must still behave exactly
// like an independently-trained twin that never saw the clone's stream.
func TestCloneMutationDoesNotPerturbOriginal(t *testing.T) {
	for name, p := range clonePredictors(t) {
		t.Run(name, func(t *testing.T) {
			trainStream(p, 4096)
			c := p.(Cloner).Clone()
			divergeStream(c, 4096)

			fresh := clonePredictors(t)[name]
			trainStream(fresh, 4096)
			got := predictions(p, 512)
			want := predictions(fresh, 512)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("probe %d: original predicts %v after clone mutation, untouched twin predicts %v",
						i, got[i], want[i])
				}
			}
		})
	}
}

// aliasedPCPair finds two distinct PCs that hash to the same index for
// idx; the hash is deterministic, so the search always succeeds at the
// same pair.
func aliasedPCPair(t *testing.T, idx func(pc uint64) uint32) (uint64, uint64) {
	t.Helper()
	const pc1 = uint64(0x40)
	want := idx(pc1)
	for pc2 := pc1 + 1; pc2 < pc1+1<<22; pc2++ {
		if idx(pc2) == want {
			return pc1, pc2
		}
	}
	t.Fatal("no index collision in 2^22 PCs — index hash changed?")
	return 0, 0
}

// train drives one (pc, outcome) through the predict/update pair without
// touching global history, so table indexing stays fixed.
func train(p Predictor, pc uint64, taken bool, n int) {
	for i := 0; i < n; i++ {
		p.Update(pc, p.Predict(pc, taken), taken)
	}
}

// TestBimodalTableAliasing: two PCs sharing a bimodal counter see each
// other's training — and a clone's aliased training stays in the clone.
func TestBimodalTableAliasing(t *testing.T) {
	const bits = 12
	b := NewBimodal(bits)
	pc1, pc2 := aliasedPCPair(t, func(pc uint64) uint32 { return mix(pc, 0, bits) })

	train(b, pc1, true, 8)
	if !b.Predict(pc2, false).Taken {
		t.Fatalf("pc %#x aliases pc %#x but did not inherit its taken counter", pc2, pc1)
	}

	c := b.Clone()
	train(c, pc2, false, 8)
	if c.Predict(pc1, true).Taken {
		t.Fatalf("clone's aliased counter did not retrain to not-taken")
	}
	if !b.Predict(pc1, true).Taken {
		t.Fatalf("training the clone through an aliased PC perturbed the original")
	}
}

// TestGShareHistoryMaskAliasing: gshare folds only histLen bits of global
// history into the index, so histories that differ above the mask alias
// to the same counter, while an in-mask difference selects another one.
func TestGShareHistoryMaskAliasing(t *testing.T) {
	const bits, histLen = 12, 8
	g := NewGShare(bits, histLen)
	const pc = 0x99

	g.SetHistory(0)
	train(g, pc, true, 8)

	g.SetHistory(1 << histLen) // differs only above the mask: same counter
	if pred := g.Predict(pc, false); !pred.Taken || pred.Conf != 1 {
		t.Fatalf("history bit %d (outside %d-bit mask) changed the index: pred=%+v", histLen, histLen, pred)
	}

	// An in-mask history that moves the index must see untrained state.
	moved := false
	for h := uint64(1); h < 1<<histLen; h++ {
		if mix(pc, h, bits) == mix(pc, 0, bits) {
			continue // rare in-mask collision; skip it
		}
		moved = true
		g.SetHistory(h)
		if g.Predict(pc, false).Taken {
			t.Fatalf("history %#x indexes a different counter but predicts trained-taken", h)
		}
		break
	}
	if !moved {
		t.Fatal("every in-mask history collides — index hash degenerate")
	}
}

// TestTAGETagAliasing: two PCs agreeing on both index and 11-bit tag in a
// tagged table are indistinguishable to TAGE — the second PC inherits the
// first's provider entry. Clones must replicate the aliasing without
// sharing the table.
func TestTAGETagAliasing(t *testing.T) {
	tg := NewTAGE(DefaultTAGEConfig())
	const table = 0
	const pc1 = 0x40
	var pc2 uint64
	for pc := uint64(pc1 + 1); pc < pc1+1<<24; pc++ {
		if tg.index(pc, table) == tg.index(pc1, table) && tg.tag(pc, table) == tg.tag(pc1, table) {
			pc2 = pc
			break
		}
	}
	if pc2 == 0 {
		t.Skip("no index+tag collision in 2^24 PCs at zero history")
	}

	// Install a confident taken provider entry for pc1 (white-box: this is
	// what repeated mispredict-allocate-train converges to).
	tg.entries[table][tg.index(pc1, table)] = tageEntry{tag: tg.tag(pc1, table), ctr: 3, u: 1}
	if !tg.Predict(pc1, false).Taken {
		t.Fatal("installed provider entry does not provide for pc1")
	}
	if !tg.Predict(pc2, false).Taken {
		t.Fatalf("pc %#x shares index+tag with %#x but did not inherit its provider", pc2, pc1)
	}

	// Retrain the aliased entry in a clone; the original's entry must hold.
	c := tg.Clone().(*TAGE)
	train(c, pc2, false, 16)
	if c.Predict(pc1, false).Taken {
		t.Fatal("clone's aliased provider did not retrain toward not-taken")
	}
	if !tg.Predict(pc1, false).Taken {
		t.Fatal("retraining the clone through an aliased PC perturbed the original's table")
	}
}
