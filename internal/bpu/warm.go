package bpu

// This file supports SMARTS-style functional warming: during sampled
// simulation's fast-forward phase the functional emulator feeds every
// architecturally-resolved conditional branch through Warm, and the
// interval scheduler snapshots the warmed predictor per window via Clone
// so parallel windows each start from the exact predictor state a
// non-speculative run would have reached.

// Cloner is implemented by predictors whose complete state (tables,
// counters, global history) can be deep-copied. All predictors in this
// package implement it; sampled simulation requires it so that windows
// can be dealt out to parallel workers without re-warming from scratch.
type Cloner interface {
	// Clone returns an independent deep copy of the predictor. Mutating
	// either copy never affects the other.
	Clone() Predictor
}

// Warm trains p with one architecturally-resolved conditional branch,
// reproducing what a run with no mispredictions would do: predict, shift
// the true outcome into the speculative global history (fetch), then train
// with the resolved direction (retire). Feeding every branch of a
// fast-forwarded region through Warm leaves the predictor in the state an
// ideal front end would have reached — the standard functional-warming
// approximation (wrong-path history pollution is not modeled).
func Warm(p Predictor, pc uint64, taken bool) {
	pred := p.Predict(pc, taken)
	p.PushHistory(pc, taken)
	p.Update(pc, pred, taken)
}

// Clone implements Cloner.
func (t *TAGE) Clone() Predictor {
	c := *t
	c.base = append([]int8(nil), t.base...)
	c.entries = make([][]tageEntry, len(t.entries))
	for i, tbl := range t.entries {
		c.entries[i] = append([]tageEntry(nil), tbl...)
	}
	return &c
}

// Clone implements Cloner.
func (b *Bimodal) Clone() Predictor {
	c := *b
	c.ctrs = append([]int8(nil), b.ctrs...)
	return &c
}

// Clone implements Cloner.
func (g *GShare) Clone() Predictor {
	c := *g
	c.ctrs = append([]int8(nil), g.ctrs...)
	return &c
}

// Clone implements Cloner.
func (p *Perceptron) Clone() Predictor {
	c := *p
	c.weights = make([][]int8, len(p.weights))
	for i, w := range p.weights {
		c.weights[i] = append([]int8(nil), w...)
	}
	return &c
}

// Clone implements Cloner.
func (o *Oracle) Clone() Predictor {
	c := *o
	return &c
}
