package bpu

import (
	"testing"
	"testing/quick"
)

// trainLoop runs a predictor over a synthetic outcome sequence for one
// branch PC and returns the accuracy over the final quarter (after
// warmup).
func trainLoop(p Predictor, pc uint64, outcomes []bool) float64 {
	correct, counted := 0, 0
	warm := len(outcomes) * 3 / 4
	for i, taken := range outcomes {
		pr := p.Predict(pc, taken)
		if i >= warm {
			counted++
			if pr.Taken == taken {
				correct++
			}
		}
		p.Update(pc, pr, taken)
		p.PushHistory(pc, taken)
	}
	if counted == 0 {
		return 0
	}
	return float64(correct) / float64(counted)
}

func always(n int, v bool) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func alternating(n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = i%2 == 0
	}
	return out
}

func pattern(n int, period int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = (i/period)%2 == 0
	}
	return out
}

func random(n int, seed uint64) []bool {
	out := make([]bool, n)
	x := seed | 1
	for i := range out {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		out[i] = x&1 == 1
	}
	return out
}

func predictors() map[string]func() Predictor {
	return map[string]func() Predictor{
		"bimodal":    func() Predictor { return NewBimodal(12) },
		"gshare":     func() Predictor { return NewGShare(12, 12) },
		"tage":       func() Predictor { return NewTAGE(DefaultTAGEConfig()) },
		"perceptron": func() Predictor { return NewPerceptron(8, 24) },
	}
}

func TestAlwaysTakenLearned(t *testing.T) {
	for name, mk := range predictors() {
		if acc := trainLoop(mk(), 0x40, always(2000, true)); acc < 0.99 {
			t.Errorf("%s: always-taken accuracy %.3f", name, acc)
		}
	}
}

func TestAlternatingLearnedByHistoryPredictors(t *testing.T) {
	for _, name := range []string{"gshare", "tage", "perceptron"} {
		mk := predictors()[name]
		if acc := trainLoop(mk(), 0x40, alternating(4000)); acc < 0.95 {
			t.Errorf("%s: alternating accuracy %.3f", name, acc)
		}
	}
}

func TestPatternLearnedByTAGE(t *testing.T) {
	if acc := trainLoop(NewTAGE(DefaultTAGEConfig()), 0x80, pattern(8000, 5)); acc < 0.9 {
		t.Errorf("tage: period-5 pattern accuracy %.3f", acc)
	}
}

func TestRandomIsHard(t *testing.T) {
	for name, mk := range predictors() {
		acc := trainLoop(mk(), 0x40, random(8000, 0xABCDEF))
		if acc > 0.65 {
			t.Errorf("%s: %.3f accuracy on random data is implausible", name, acc)
		}
	}
}

func TestTAGEBeatsBimodalOnCorrelated(t *testing.T) {
	// Branch B2 at pcB repeats branch B1's outcome (perfect correlation
	// through global history).
	outcomes := random(6000, 0x1234)
	run := func(p Predictor) float64 {
		correct, counted := 0, 0
		for i, taken := range outcomes {
			pr1 := p.Predict(0x40, taken)
			p.Update(0x40, pr1, taken)
			p.PushHistory(0x40, taken)
			pr2 := p.Predict(0x80, taken)
			if i > 4500 {
				counted++
				if pr2.Taken == taken {
					correct++
				}
			}
			p.Update(0x80, pr2, taken)
			p.PushHistory(0x80, taken)
		}
		return float64(correct) / float64(counted)
	}
	tage := run(NewTAGE(DefaultTAGEConfig()))
	bim := run(NewBimodal(12))
	if tage < 0.9 {
		t.Errorf("tage correlated accuracy %.3f, want >= 0.9", tage)
	}
	if tage <= bim {
		t.Errorf("tage %.3f should beat bimodal %.3f on correlated branch", tage, bim)
	}
}

func TestOracleIsPerfect(t *testing.T) {
	o := NewOracle()
	for i, taken := range random(100, 7) {
		pr := o.Predict(uint64(i), taken)
		if pr.Taken != taken {
			t.Fatal("oracle mispredicted")
		}
		o.Update(uint64(i), pr, taken)
		o.PushHistory(uint64(i), taken)
	}
}

func TestHistorySnapshotRestore(t *testing.T) {
	for name, mk := range predictors() {
		p := mk()
		p.PushHistory(0, true)
		p.PushHistory(0, false)
		h := p.History()
		p.PushHistory(0, true) // shifts in a 1 bit (pc 0 has no path hash)
		if p.History() == h {
			t.Errorf("%s: push did not change history", name)
		}
		p.SetHistory(h)
		if p.History() != h {
			t.Errorf("%s: restore failed", name)
		}
	}
}

// TestHistoryPushDeterministic: history evolution is a pure function of
// (history, pc, outcome).
func TestHistoryPushDeterministic(t *testing.T) {
	f := func(h, pc uint64, taken bool) bool {
		return historyPush(h, pc, taken) == historyPush(h, pc, taken)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJRSConfidence(t *testing.T) {
	j := NewJRSConfidence(10, 8, 8)
	pc, hist := uint64(0x40), uint64(0)
	if j.Confident(pc, hist) {
		t.Fatal("fresh estimator must not be confident")
	}
	for i := 0; i < 8; i++ {
		j.Update(pc, hist, true)
	}
	if !j.Confident(pc, hist) {
		t.Fatal("8 straight corrects should reach confidence")
	}
	j.Update(pc, hist, false)
	if j.Confident(pc, hist) {
		t.Fatal("a misprediction must reset confidence")
	}
}

func TestJRSSaturation(t *testing.T) {
	j := NewJRSConfidence(10, 8, 8)
	for i := 0; i < 100; i++ {
		j.Update(1, 2, true)
	}
	if !j.Confident(1, 2) {
		t.Fatal("saturated counter must be confident")
	}
}

func TestPredictorNames(t *testing.T) {
	want := map[string]Predictor{
		"bimodal":    NewBimodal(4),
		"gshare":     NewGShare(4, 4),
		"tage":       NewTAGE(DefaultTAGEConfig()),
		"perceptron": NewPerceptron(4, 8),
		"oracle":     NewOracle(),
	}
	for name, p := range want {
		if p.Name() != name {
			t.Errorf("Name() = %q, want %q", p.Name(), name)
		}
	}
}

func TestTAGEInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTAGE(TAGEConfig{BaseBits: 4, TableBits: 4, HistLens: nil})
}
