package bpu

import "testing"

// trainStream feeds n pseudo-random (pc, outcome) pairs through Warm.
func trainStream(p Predictor, n int) {
	x := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < n; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		pc := (x >> 5) & 0x3FF
		taken := x&3 != 0
		Warm(p, pc, taken)
	}
}

// predictions samples each predictor's response to a probe stream without
// mutating state order-dependently: both copies see the identical stream.
func predictions(p Predictor, n int) []bool {
	out := make([]bool, 0, n)
	x := uint64(12345)
	for i := 0; i < n; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		pc := (x >> 5) & 0x3FF
		taken := x&1 == 0
		pred := p.Predict(pc, taken)
		out = append(out, pred.Taken)
		p.PushHistory(pc, taken)
		p.Update(pc, pred, taken)
	}
	return out
}

func clonePredictors(t *testing.T) map[string]Predictor {
	t.Helper()
	return map[string]Predictor{
		"tage":       NewTAGE(DefaultTAGEConfig()),
		"bimodal":    NewBimodal(12),
		"gshare":     NewGShare(12, 12),
		"perceptron": NewPerceptron(8, 16),
		"oracle":     NewOracle(),
	}
}

// TestCloneIndependence trains a predictor, clones it, then drives the two
// copies apart: the clone must behave identically right after Clone, and
// mutating one copy must not disturb the other.
func TestCloneIndependence(t *testing.T) {
	for name, p := range clonePredictors(t) {
		t.Run(name, func(t *testing.T) {
			trainStream(p, 4096)
			cl, ok := p.(Cloner)
			if !ok {
				t.Fatalf("%s does not implement Cloner", name)
			}
			c := cl.Clone()
			if c == p {
				t.Fatalf("Clone returned the receiver")
			}
			if p.History() != c.History() {
				t.Fatalf("clone history %#x != original %#x", c.History(), p.History())
			}

			// Push the ORIGINAL far away from the clone's state...
			x := uint64(0xDEAD)
			for i := 0; i < 4096; i++ {
				x ^= x << 13
				x ^= x >> 7
				x ^= x << 17
				Warm(p, (x>>4)&0x3FF, x&1 == 0)
			}
			// ...then compare the clone against a predictor trained only on
			// the original stream: identical probe behavior proves the
			// clone kept its own state.
			fresh := clonePredictors(t)[name]
			trainStream(fresh, 4096)
			got := predictions(c, 512)
			want := predictions(fresh, 512)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("probe %d: clone predicts %v, independently-trained twin predicts %v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestWarmTrainsPredictor checks that functional warming actually teaches a
// predictor: after seeing a strongly-biased branch many times, the
// predictor must predict its direction.
func TestWarmTrainsPredictor(t *testing.T) {
	for name, p := range clonePredictors(t) {
		if name == "oracle" {
			continue // the oracle ignores training by construction
		}
		t.Run(name, func(t *testing.T) {
			const pc = 0x40
			for i := 0; i < 256; i++ {
				Warm(p, pc, true)
			}
			if !p.Predict(pc, true).Taken {
				t.Fatalf("%s predicts not-taken after 256 taken outcomes", name)
			}
		})
	}
}
