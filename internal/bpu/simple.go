package bpu

// Bimodal is a per-PC 2-bit saturating counter predictor.
type Bimodal struct {
	bits uint
	ctrs []int8
	hist uint64
}

// NewBimodal returns a bimodal predictor with 2^bits counters.
func NewBimodal(bits uint) *Bimodal {
	return &Bimodal{bits: bits, ctrs: make([]int8, 1<<bits)}
}

// Name implements Predictor.
func (b *Bimodal) Name() string { return "bimodal" }

// Predict implements Predictor.
func (b *Bimodal) Predict(pc uint64, _ bool) Prediction {
	idx := mix(pc, 0, b.bits)
	c := b.ctrs[idx]
	return Prediction{
		Taken:   c >= 2,
		Hist:    b.hist,
		baseIdx: idx,
		Conf:    confFrom2bit(c),
	}
}

// Update implements Predictor.
func (b *Bimodal) Update(_ uint64, pred Prediction, taken bool) {
	b.ctrs[pred.baseIdx] = sat2(b.ctrs[pred.baseIdx], taken)
}

// History implements Predictor.
func (b *Bimodal) History() uint64 { return b.hist }

// SetHistory implements Predictor.
func (b *Bimodal) SetHistory(h uint64) { b.hist = h }

// PushHistory implements Predictor.
func (b *Bimodal) PushHistory(pc uint64, taken bool) {
	b.hist = historyPush(b.hist, pc, taken)
}

// GShare is a global-history-indexed 2-bit counter predictor.
type GShare struct {
	bits    uint
	histLen uint
	ctrs    []int8
	hist    uint64
}

// NewGShare returns a gshare predictor with 2^bits counters and histLen
// bits of global history (≤64).
func NewGShare(bits, histLen uint) *GShare {
	if histLen > 64 {
		histLen = 64
	}
	return &GShare{bits: bits, histLen: histLen, ctrs: make([]int8, 1<<bits)}
}

// Name implements Predictor.
func (g *GShare) Name() string { return "gshare" }

func (g *GShare) histMask() uint64 {
	if g.histLen >= 64 {
		return ^uint64(0)
	}
	return (1 << g.histLen) - 1
}

// Predict implements Predictor.
func (g *GShare) Predict(pc uint64, _ bool) Prediction {
	idx := mix(pc, g.hist&g.histMask(), g.bits)
	c := g.ctrs[idx]
	return Prediction{
		Taken:   c >= 2,
		Hist:    g.hist,
		baseIdx: idx,
		Conf:    confFrom2bit(c),
	}
}

// Update implements Predictor.
func (g *GShare) Update(_ uint64, pred Prediction, taken bool) {
	g.ctrs[pred.baseIdx] = sat2(g.ctrs[pred.baseIdx], taken)
}

// History implements Predictor.
func (g *GShare) History() uint64 { return g.hist }

// SetHistory implements Predictor.
func (g *GShare) SetHistory(h uint64) { g.hist = h }

// PushHistory implements Predictor.
func (g *GShare) PushHistory(pc uint64, taken bool) {
	g.hist = historyPush(g.hist, pc, taken)
}

// Oracle always predicts the architecturally-correct outcome; it models
// the perfect branch predictor of the paper's Fig. 1 study.
type Oracle struct{ hist uint64 }

// NewOracle returns an oracle predictor.
func NewOracle() *Oracle { return &Oracle{} }

// Name implements Predictor.
func (o *Oracle) Name() string { return "oracle" }

// Predict implements Predictor.
func (o *Oracle) Predict(_ uint64, oracleTaken bool) Prediction {
	return Prediction{Taken: oracleTaken, Hist: o.hist, Conf: 15}
}

// Update implements Predictor.
func (o *Oracle) Update(uint64, Prediction, bool) {}

// History implements Predictor.
func (o *Oracle) History() uint64 { return o.hist }

// SetHistory implements Predictor.
func (o *Oracle) SetHistory(h uint64) { o.hist = h }

// PushHistory implements Predictor.
func (o *Oracle) PushHistory(pc uint64, taken bool) {
	o.hist = historyPush(o.hist, pc, taken)
}

// sat2 advances a 2-bit saturating counter (0..3) toward the outcome.
func sat2(c int8, taken bool) int8 {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// confFrom2bit maps a 2-bit counter to a 0..1 confidence proxy
// (strong = 1, weak = 0).
func confFrom2bit(c int8) int {
	if c == 0 || c == 3 {
		return 1
	}
	return 0
}
