package wal

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testVersion = "wal-test/1"

type rec struct {
	Op string `json:"op"`
	N  int    `json:"n"`
}

func logPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "log.jsonl")
}

// TestAppendReplay: appended records come back verbatim, in order, and
// Create compacts the file down to exactly the records it was given.
func TestAppendReplay(t *testing.T) {
	path := logPath(t)
	l, err := Create(path, testVersion, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Append(rec{Op: "put", N: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	recs, err := Replay(path, testVersion)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("replayed %d records, want 5", len(recs))
	}
	for i, b := range recs {
		var r rec
		if err := json.Unmarshal(b, &r); err != nil {
			t.Fatal(err)
		}
		if r.N != i || r.Op != "put" {
			t.Fatalf("record %d = %+v", i, r)
		}
	}

	// Compaction keeps only the survivors handed to Create.
	l2, err := Create(path, testVersion, []interface{}{rec{Op: "keep", N: 99}})
	if err != nil {
		t.Fatal(err)
	}
	l2.Close()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(b), "\n"); lines != 2 {
		t.Fatalf("compacted log has %d lines:\n%s", lines, b)
	}
	recs, err = Replay(path, testVersion)
	if err != nil || len(recs) != 1 {
		t.Fatalf("post-compaction replay = %d records, err %v", len(recs), err)
	}
}

// TestTornTail: a partial final line ends replay cleanly; every fsync'd
// record before the tear is recovered.
func TestTornTail(t *testing.T) {
	path := logPath(t)
	l, err := Create(path, testVersion, nil)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(rec{Op: "a"})
	l.Append(rec{Op: "b"})
	l.Close()

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"c","n":`); err != nil { // torn mid-record
		t.Fatal(err)
	}
	f.Close()

	recs, err := Replay(path, testVersion)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("torn-tail replay recovered %d records, want 2", len(recs))
	}
}

// TestVersionAndHeader: wrong version → ErrVersion; malformed header →
// loud error, never silently empty; missing file → empty log.
func TestVersionAndHeader(t *testing.T) {
	path := logPath(t)
	if recs, err := Replay(path, testVersion); err != nil || recs != nil {
		t.Fatalf("missing file: recs=%v err=%v", recs, err)
	}
	if err := os.WriteFile(path, []byte(`{"version":"wal-test/0"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(path, testVersion); !errors.Is(err, ErrVersion) {
		t.Fatalf("err = %v, want ErrVersion", err)
	}
	if err := os.WriteFile(path, []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(path, testVersion); err == nil {
		t.Fatal("malformed header accepted")
	}
}

// TestClosedAndNil: appends after Close fail loudly; a nil *Log is a
// silent no-op everywhere.
func TestClosedAndNil(t *testing.T) {
	l, err := Create(logPath(t), testVersion, nil)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if err := l.Append(rec{}); err == nil {
		t.Fatal("append after Close succeeded")
	}
	var nl *Log
	if err := nl.Append(rec{}); err != nil {
		t.Fatal(err)
	}
	if err := nl.Close(); err != nil {
		t.Fatal(err)
	}
	if nl.Path() != "" {
		t.Fatal("nil log has a path")
	}
	nl.SetFaults(nil, "x") // must not panic
}

type errFaults struct{ err error }

func (f errFaults) Fire(point string) error {
	if point == "test.append" {
		return f.err
	}
	return nil
}

// TestAppendFault: an injected append fault surfaces as the append
// error and writes nothing.
func TestAppendFault(t *testing.T) {
	path := logPath(t)
	l, err := Create(path, testVersion, nil)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	l.SetFaults(errFaults{err: boom}, "test")
	if err := l.Append(rec{Op: "x"}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	l.Close()
	recs, err := Replay(path, testVersion)
	if err != nil || len(recs) != 0 {
		t.Fatalf("faulted append reached disk: %d records, err %v", len(recs), err)
	}
}
