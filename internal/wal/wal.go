// Package wal is the shared write-ahead-log engine behind every acbd
// journal: an append-only JSONL file with a version-header first line,
// one fsync per appended record, torn-tail-tolerant replay, and
// atomic compaction (temp file + fsync + rename + directory fsync).
//
// The package deliberately knows nothing about what a record means.
// Callers — the single-node job journal in internal/service and the
// cluster job-table journal in internal/cluster — define their own
// entry types and their own replay reduction over the raw records this
// package returns. That split keeps one tested durability
// implementation under every log whose semantics differ.
package wal

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// ErrVersion reports a log written under a different format version.
// Callers bump their version string when record semantics change, so a
// mismatched file refuses to replay instead of resurrecting state under
// different rules.
var ErrVersion = errors.New("wal: version mismatch")

// FaultPoints is the fault-injection hook (satisfied by
// *faultinject.Injector and by service.FaultPoints implementations);
// chaos tests use it to fail appends deterministically.
type FaultPoints interface {
	Fire(point string) error
}

// header is the version line every log file starts with.
type header struct {
	Version string `json:"version"`
}

// Log is an open write-ahead log. Append marshals one record, writes it
// as a single JSONL line and fsyncs before returning, which is what
// lets callers promise "acknowledged means it survives kill -9". A nil
// *Log is a valid no-op log: Append and Close succeed silently, so
// journaling stays strictly optional for callers.
type Log struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	faults FaultPoints
	prefix string
}

// Replay reads the log at path and returns its raw records in append
// order. A missing file is an empty log. The header line must carry
// exactly version (ErrVersion otherwise; a malformed header is its own
// error — never silently treated as empty).
//
// A torn final line — the tail of an append cut off by the crash the
// log exists to survive — ends replay silently; everything before it is
// intact because each record was fsync'd before the next began.
func Replay(path, version string) ([]json.RawMessage, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("wal: replay: %w", err)
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4<<20)
	if !sc.Scan() {
		return nil, sc.Err() // empty file: fresh log
	}
	var hdr header
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil || hdr.Version == "" {
		return nil, fmt.Errorf("wal: %s: malformed header %q", path, sc.Text())
	}
	if hdr.Version != version {
		return nil, fmt.Errorf("%w: file %q, this build %q", ErrVersion, hdr.Version, version)
	}

	var recs []json.RawMessage
	for sc.Scan() {
		if !json.Valid(sc.Bytes()) {
			break // torn tail from the crash: replay what made it to disk
		}
		recs = append(recs, append(json.RawMessage(nil), sc.Bytes()...))
	}
	return recs, sc.Err()
}

// Create atomically (re)writes the log at path — header plus the given
// records, typically the survivors of a caller-side replay reduction —
// and returns it open for appending. This is compaction-on-open: a
// crash inside Create leaves either the old file or the new one, both
// valid.
func Create(path, version string, records []interface{}) (*Log, error) {
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return nil, fmt.Errorf("wal: compact: %w", err)
	}
	defer os.Remove(tmp.Name())
	enc := json.NewEncoder(tmp)
	if err := enc.Encode(header{Version: version}); err != nil {
		tmp.Close()
		return nil, err
	}
	for _, r := range records {
		if err := enc.Encode(r); err != nil {
			tmp.Close()
			return nil, err
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return nil, err
	}
	if err := tmp.Close(); err != nil {
		return nil, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return nil, err
	}
	if err := SyncDir(filepath.Dir(path)); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	return &Log{f: f, path: path}, nil
}

// SetFaults installs a fault-injection hook fired as "<prefix>.append"
// before every append; chaos tests only.
func (l *Log) SetFaults(f FaultPoints, prefix string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.faults = f
	l.prefix = prefix
}

// Append writes one record as a JSONL line and fsyncs it. Callers treat
// append failures as durability loss, not fatal errors, so Append only
// reports them for logging/counting.
func (l *Log) Append(v interface{}) error {
	if l == nil {
		return nil
	}
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errors.New("wal: log closed")
	}
	if l.faults != nil {
		if err := l.faults.Fire(l.prefix + ".append"); err != nil {
			return err
		}
	}
	if _, err := l.f.Write(append(b, '\n')); err != nil {
		return err
	}
	return l.f.Sync()
}

// Close stops the log; later appends fail.
func (l *Log) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// Path returns the log's file path.
func (l *Log) Path() string {
	if l == nil {
		return ""
	}
	return l.path
}

// SyncDir fsyncs a directory so a just-renamed file inside it survives
// power loss.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
