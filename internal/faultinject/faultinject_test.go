package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestNthCallRule(t *testing.T) {
	in := New(1)
	in.Set("p", Rule{Nth: 3})
	var fired []int
	for i := 1; i <= 10; i++ {
		if err := in.Fire("p"); err != nil {
			if !IsInjected(err) {
				t.Fatalf("call %d: error %v is not ErrInjected", i, err)
			}
			fired = append(fired, i)
		}
	}
	want := []int{3, 6, 9}
	if len(fired) != len(want) {
		t.Fatalf("fired on calls %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired on calls %v, want %v", fired, want)
		}
	}
	if in.Calls("p") != 10 || in.Injected("p") != 3 {
		t.Fatalf("calls/injected = %d/%d, want 10/3", in.Calls("p"), in.Injected("p"))
	}
}

func TestLimitStopsInjection(t *testing.T) {
	in := New(1)
	in.Set("p", Rule{Nth: 1, Limit: 2})
	var n int
	for i := 0; i < 10; i++ {
		if in.Fire("p") != nil {
			n++
		}
	}
	if n != 2 {
		t.Fatalf("injected %d times, want limit 2", n)
	}
}

// TestProbDeterministic: the same seed reproduces the same firing
// pattern exactly; a different seed (virtually certainly) does not.
func TestProbDeterministic(t *testing.T) {
	pattern := func(seed int64) []bool {
		in := New(seed)
		in.Set("p", Rule{Prob: 0.5})
		out := make([]bool, 64)
		for i := range out {
			out[i] = in.Fire("p") != nil
		}
		return out
	}
	a, b := pattern(42), pattern(42)
	hits := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
		if a[i] {
			hits++
		}
	}
	if hits == 0 || hits == len(a) {
		t.Fatalf("prob=0.5 fired %d/%d times: not probabilistic", hits, len(a))
	}
}

func TestPanicRule(t *testing.T) {
	in := New(1)
	in.Set("p", Rule{Kind: Panic, Nth: 1})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic rule did not panic")
		}
		err, ok := r.(error)
		if !ok || !IsInjected(err) {
			t.Fatalf("panic value %v is not an ErrInjected error", r)
		}
	}()
	in.Fire("p")
}

func TestSlowRule(t *testing.T) {
	in := New(1)
	var slept time.Duration
	in.sleep = func(d time.Duration) { slept += d }
	in.Set("p", Rule{Kind: Slow, Nth: 2, Delay: 50 * time.Millisecond})
	for i := 0; i < 4; i++ {
		if err := in.Fire("p"); err != nil {
			t.Fatalf("slow rule returned error %v", err)
		}
	}
	if slept != 100*time.Millisecond {
		t.Fatalf("slept %s, want 100ms (2 firings)", slept)
	}
}

// TestNilAndUnconfigured: a nil injector and unset points are free no-ops.
func TestNilAndUnconfigured(t *testing.T) {
	var in *Injector
	if err := in.Fire("anything"); err != nil {
		t.Fatalf("nil injector fired: %v", err)
	}
	if in.Calls("anything") != 0 || in.Injected("x") != 0 || in.Counts() != nil {
		t.Fatal("nil injector reported non-zero state")
	}
	in2 := New(1)
	if err := in2.Fire("unset"); err != nil {
		t.Fatalf("unconfigured point fired: %v", err)
	}
}

func TestParse(t *testing.T) {
	in, err := Parse("store.persist:error,prob=0.25;worker:panic,nth=5,limit=2;io:slow,delay=10ms,nth=1;rpc.w1:error,nth=1,after=20,limit=30", 7)
	if err != nil {
		t.Fatal(err)
	}
	if in == nil {
		t.Fatal("nil injector from non-empty spec")
	}
	for name, want := range map[string]Rule{
		"store.persist": {Kind: Error, Prob: 0.25},
		"worker":        {Kind: Panic, Nth: 5, Limit: 2},
		"io":            {Kind: Slow, Delay: 10 * time.Millisecond, Nth: 1},
		"rpc.w1":        {Kind: Error, Nth: 1, After: 20, Limit: 30},
	} {
		in.mu.Lock()
		p, ok := in.points[name]
		in.mu.Unlock()
		if !ok {
			t.Fatalf("point %q missing", name)
		}
		if p.rule != want {
			t.Fatalf("point %q rule = %+v, want %+v", name, p.rule, want)
		}
	}

	if in, err := Parse("", 1); err != nil || in != nil {
		t.Fatalf("empty spec = (%v, %v), want (nil, nil)", in, err)
	}
	for _, bad := range []string{
		"noopts",             // missing colon
		"p:bogus=1",          // unknown option
		"p:error",            // never fires (no nth/prob)
		"p:prob=1.5",         // out of range
		"p:nth=abc",          // unparsable
		"p:panic=yes,nth=1",  // flag with value
		"p:delay=-5ms,nth=1", // negative
		"p:after=-1,nth=1",   // negative window
	} {
		if _, err := Parse(bad, 1); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

// TestAfterWindow: a rule with After stays silent through the warm-up
// window, then fires by its usual schedule — the deterministic way to
// open a partition mid-run. With Limit, the outage is a bounded window
// that heals by itself.
func TestAfterWindow(t *testing.T) {
	in := New(1)
	in.Set("p", Rule{Nth: 1, After: 5, Limit: 3})
	var fired []int
	for i := 1; i <= 12; i++ {
		if in.Fire("p") != nil {
			fired = append(fired, i)
		}
	}
	want := []int{6, 7, 8}
	if len(fired) != len(want) {
		t.Fatalf("fired on calls %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired on calls %v, want %v", fired, want)
		}
	}

	// Nth counts from the end of the window, not from call 1.
	in.Set("q", Rule{Nth: 3, After: 2})
	fired = nil
	for i := 1; i <= 11; i++ {
		if in.Fire("q") != nil {
			fired = append(fired, i)
		}
	}
	want = []int{5, 8, 11}
	for i := range want {
		if i >= len(fired) || fired[i] != want[i] {
			t.Fatalf("nth-after fired on calls %v, want %v", fired, want)
		}
	}
}

// TestClearHealsPoint: Clear removes a rule mid-run (a healed
// partition); unconfigured and nil-injector clears are no-ops.
func TestClearHealsPoint(t *testing.T) {
	in := New(1)
	in.Set("rpc.w1", Rule{Nth: 1})
	if in.Fire("rpc.w1") == nil {
		t.Fatal("partition rule did not fire")
	}
	in.Clear("rpc.w1")
	if err := in.Fire("rpc.w1"); err != nil {
		t.Fatalf("cleared point still fired: %v", err)
	}
	if in.Calls("rpc.w1") != 0 {
		t.Fatalf("cleared point retained counts: %d", in.Calls("rpc.w1"))
	}
	in.Clear("never-set")
	var nilInj *Injector
	nilInj.Clear("whatever")
}

func TestIsInjected(t *testing.T) {
	if !IsInjected(ErrInjected) {
		t.Fatal("ErrInjected not recognized")
	}
	if IsInjected(errors.New("other")) {
		t.Fatal("foreign error recognized as injected")
	}
}
