// Package faultinject is a deterministic, seedable fault-injection
// harness for chaos testing the acbd service. Call sites name injection
// points ("store.persist", "worker", ...) and fire them on every pass;
// an Injector configured with rules decides — reproducibly, from its
// seed — whether each call fails, panics, or stalls. Points without a
// rule cost one map lookup and never fire, so production code keeps its
// hooks permanently wired and a nil *Injector disables everything.
//
// Wired points, by layer: store.persist / store.load / store.peer (the
// result store's tiers), worker / worker.slow (job runs),
// journal.append (the single-node job journal), rpc and rpc.<node>
// (the cluster RPC fabric — partitions), cjournal.append (the cluster
// coordinator's journal) and lease.advance (the fencing-epoch lease).
package faultinject

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"math/rand"
)

// ErrInjected is wrapped by every error an Injector returns (and every
// panic value it raises), so callers can classify injected faults with
// errors.Is / IsInjected.
var ErrInjected = errors.New("faultinject: injected fault")

// IsInjected reports whether err (or a panic value recovered as an
// error) originated from an Injector.
func IsInjected(err error) bool { return errors.Is(err, ErrInjected) }

// Kind selects what an injection does.
type Kind int

const (
	// Error returns an ErrInjected-wrapped error from Fire.
	Error Kind = iota
	// Panic panics with an ErrInjected-wrapped error value.
	Panic
	// Slow sleeps for Rule.Delay and returns nil (artificial slowness:
	// the caller proceeds, late).
	Slow
)

func (k Kind) String() string {
	switch k {
	case Error:
		return "error"
	case Panic:
		return "panic"
	case Slow:
		return "slow"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Rule configures one injection point. Nth and Prob select when the
// rule fires; exactly one of them is typically set. A zero Rule never
// fires.
type Rule struct {
	// Kind is what firing does: Error (default), Panic, or Slow.
	Kind Kind
	// Nth fires the rule on every Nth call (1-based): Nth=3 fires on
	// calls 3, 6, 9, … Nth=1 fires on every call.
	Nth int64
	// Prob fires the rule on each call with this probability, drawn
	// from the injector's seeded generator (deterministic for a fixed
	// seed and call sequence).
	Prob float64
	// After suppresses the rule for the first After calls, so a fault
	// can begin mid-run deterministically — the way a network partition
	// opens partway through a sweep, not at submission time. Nth counts
	// only the calls past the After window. Combined with Limit this
	// expresses a bounded outage window: after=20,nth=1,limit=30 severs
	// calls 21–50 and heals.
	After int64
	// Limit stops the rule after this many firings (0 = unlimited).
	Limit int64
	// Delay is slept on every firing (the whole fault for Slow; a
	// stall before failing for Error/Panic).
	Delay time.Duration
}

type point struct {
	rule     Rule
	calls    int64
	injected int64
}

// Injector decides fault injection for a set of named points. The zero
// value is unusable; construct with New. A nil *Injector is valid and
// never fires — call sites need no nil checks beyond the receiver.
type Injector struct {
	mu     sync.Mutex
	rng    *rand.Rand
	points map[string]*point
	// sleep is swappable so tests of Slow rules need not wall-wait.
	sleep func(time.Duration)
}

// New returns an Injector whose probabilistic decisions derive from
// seed: the same seed and call sequence reproduce the same faults.
func New(seed int64) *Injector {
	return &Injector{
		rng:    rand.New(rand.NewSource(seed)),
		points: make(map[string]*point),
		sleep:  time.Sleep,
	}
}

// Set installs (or replaces) the rule for an injection point, resetting
// its call and injection counts.
func (in *Injector) Set(name string, r Rule) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.points[name] = &point{rule: r}
}

// Clear removes the rule for an injection point — healing a partition
// mid-test — discarding its counts. Clearing an unconfigured point is a
// no-op. A nil Injector ignores the call.
func (in *Injector) Clear(name string) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	delete(in.points, name)
}

// Fire evaluates the named point once: nil for no injection, an
// ErrInjected-wrapped error for Error rules, a panic for Panic rules,
// and a Delay-long sleep (then nil) for Slow rules. A nil Injector and
// unconfigured points always return nil.
func (in *Injector) Fire(name string) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	p, ok := in.points[name]
	if !ok {
		in.mu.Unlock()
		return nil
	}
	p.calls++
	r := p.rule
	fires := false
	armed := p.calls > r.After // pre-window calls never fire
	if r.Nth > 0 && armed && (p.calls-r.After)%r.Nth == 0 {
		fires = true
	} else if r.Prob > 0 {
		// The draw happens even inside the After window so a fixed seed
		// yields the same post-window decisions regardless of window size.
		if in.rng.Float64() < r.Prob && armed {
			fires = true
		}
	}
	if fires && r.Limit > 0 && p.injected >= r.Limit {
		fires = false
	}
	if fires {
		p.injected++
	}
	n := p.injected
	in.mu.Unlock()
	if !fires {
		return nil
	}
	if r.Delay > 0 {
		in.sleep(r.Delay)
	}
	err := fmt.Errorf("%w: %s #%d at %q", ErrInjected, r.Kind, n, name)
	switch r.Kind {
	case Panic:
		panic(err)
	case Slow:
		return nil
	default:
		return err
	}
}

// Calls returns how many times the named point has been evaluated.
func (in *Injector) Calls(name string) int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if p, ok := in.points[name]; ok {
		return p.calls
	}
	return 0
}

// Injected returns how many times the named point has actually fired.
func (in *Injector) Injected(name string) int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if p, ok := in.points[name]; ok {
		return p.injected
	}
	return 0
}

// Counts returns per-point injection counts for every configured point.
func (in *Injector) Counts() map[string]int64 {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]int64, len(in.points))
	for name, p := range in.points {
		out[name] = p.injected
	}
	return out
}

// String summarizes the configured points in name order.
func (in *Injector) String() string {
	if in == nil {
		return "faultinject: disabled"
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	names := make([]string, 0, len(in.points))
	for name := range in.points {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, name := range names {
		if i > 0 {
			b.WriteString("; ")
		}
		p := in.points[name]
		fmt.Fprintf(&b, "%s: %s calls=%d injected=%d", name, p.rule.Kind, p.calls, p.injected)
	}
	return b.String()
}

// Parse builds an Injector from a textual spec, for wiring injection
// through CLI flags:
//
//	point:opt[,opt...][;point:opt...]
//
// where opt is one of error | panic | slow | nth=N | prob=F | after=N |
// limit=N | delay=DUR. Example:
//
//	store.persist:error,prob=0.2;worker:panic,nth=5,limit=2;worker.slow:slow,delay=300ms
//
// A point appears at most once; a repeated point's later rule replaces
// the earlier one.
//
// An empty spec yields a nil Injector (injection disabled).
func Parse(spec string, seed int64) (*Injector, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	in := New(seed)
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, opts, ok := strings.Cut(part, ":")
		name = strings.TrimSpace(name)
		if !ok || name == "" {
			return nil, fmt.Errorf("faultinject: rule %q: want point:opt[,opt...]", part)
		}
		var r Rule
		for _, opt := range strings.Split(opts, ",") {
			opt = strings.TrimSpace(opt)
			key, val, hasVal := strings.Cut(opt, "=")
			var err error
			switch key {
			case "error":
				r.Kind = Error
			case "panic":
				r.Kind = Panic
			case "slow":
				r.Kind = Slow
			case "nth":
				r.Nth, err = strconv.ParseInt(val, 10, 64)
			case "prob":
				r.Prob, err = strconv.ParseFloat(val, 64)
			case "after":
				r.After, err = strconv.ParseInt(val, 10, 64)
			case "limit":
				r.Limit, err = strconv.ParseInt(val, 10, 64)
			case "delay":
				r.Delay, err = time.ParseDuration(val)
			default:
				return nil, fmt.Errorf("faultinject: rule %q: unknown option %q", part, opt)
			}
			if err != nil {
				return nil, fmt.Errorf("faultinject: rule %q: %s: %v", part, key, err)
			}
			if hasVal && (key == "error" || key == "panic" || key == "slow") {
				return nil, fmt.Errorf("faultinject: rule %q: %s takes no value", part, key)
			}
		}
		if r.Nth == 0 && r.Prob == 0 {
			return nil, fmt.Errorf("faultinject: rule %q: needs nth=N or prob=F to ever fire", part)
		}
		if r.Prob < 0 || r.Prob > 1 {
			return nil, fmt.Errorf("faultinject: rule %q: prob %g outside [0,1]", part, r.Prob)
		}
		if r.Nth < 0 || r.After < 0 || r.Limit < 0 || r.Delay < 0 {
			return nil, fmt.Errorf("faultinject: rule %q: negative nth/after/limit/delay", part)
		}
		in.Set(name, r)
	}
	return in, nil
}
