package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"acb/internal/service"
	"acb/internal/wal"
)

// LeaseVersion is the lease file's format-version field.
const LeaseVersion = "acbd-lease/1"

// Lease is a coordinator's fsync'd epoch record, the anchor of the
// fleet's fencing protocol. Epochs are monotone: every coordinator
// start (and every standby promotion) advances past the highest epoch
// it has ever seen or observed on a primary, writes the new epoch to
// disk before using it, and stamps it on every RPC. Workers remember
// the highest epoch they have been spoken to at and reject anything
// lower, so a network-partitioned old primary — or a zombie left over
// from before a crash-restart — cannot split-brain the job table.
//
// A Lease with an empty path is memory-only: valid for tests and
// single-coordinator setups where fencing across process restarts does
// not matter.
type Lease struct {
	mu     sync.Mutex
	path   string
	node   string
	epoch  uint64
	faults service.FaultPoints
}

// leaseFile is the on-disk shape.
type leaseFile struct {
	Version string    `json:"version"`
	Epoch   uint64    `json:"epoch"`
	Node    string    `json:"node"`
	Time    time.Time `json:"t"`
}

// OpenLease loads the lease at path (missing file → epoch 0; "" →
// memory-only at epoch 0). A corrupt or wrong-version file is an error,
// never silently epoch 0 — restarting at a stale epoch would get this
// coordinator fenced by its own workers.
func OpenLease(path, node string) (*Lease, error) {
	l := &Lease{path: path, node: node}
	if path == "" {
		return l, nil
	}
	b, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return l, nil
	}
	if err != nil {
		return nil, fmt.Errorf("cluster: lease: %w", err)
	}
	var lf leaseFile
	if err := json.Unmarshal(b, &lf); err != nil {
		return nil, fmt.Errorf("cluster: lease %s: corrupt: %w", path, err)
	}
	if lf.Version != LeaseVersion {
		return nil, fmt.Errorf("cluster: lease %s: version %q, this build %q", path, lf.Version, LeaseVersion)
	}
	l.epoch = lf.Epoch
	return l, nil
}

// Epoch returns the current epoch (0 = never advanced).
func (l *Lease) Epoch() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.epoch
}

// SetFaults installs the fault-injection hook fired as "lease.advance";
// chaos tests only.
func (l *Lease) SetFaults(f service.FaultPoints) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.faults = f
}

// Advance claims epoch `to`, which must exceed the current one, and
// fsyncs it to disk (temp + fsync + rename + dir fsync) before it takes
// effect — a lease is never held at an epoch the disk doesn't know
// about, so a crash-restart can't reuse one.
func (l *Lease) Advance(to uint64) error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if to <= l.epoch {
		return fmt.Errorf("cluster: lease epoch %d does not exceed current %d", to, l.epoch)
	}
	if l.faults != nil {
		if err := l.faults.Fire("lease.advance"); err != nil {
			return err
		}
	}
	if l.path != "" {
		b, err := json.MarshalIndent(leaseFile{
			Version: LeaseVersion, Epoch: to, Node: l.node, Time: time.Now().UTC(),
		}, "", "  ")
		if err != nil {
			return err
		}
		tmp, err := os.CreateTemp(filepath.Dir(l.path), "."+filepath.Base(l.path)+".tmp-*")
		if err != nil {
			return err
		}
		defer os.Remove(tmp.Name())
		if _, err := tmp.Write(append(b, '\n')); err != nil {
			tmp.Close()
			return err
		}
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return err
		}
		if err := tmp.Close(); err != nil {
			return err
		}
		if err := os.Rename(tmp.Name(), l.path); err != nil {
			return err
		}
		if err := wal.SyncDir(filepath.Dir(l.path)); err != nil {
			return err
		}
	}
	l.epoch = to
	return nil
}
