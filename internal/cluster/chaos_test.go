package cluster

import (
	"bytes"
	"context"
	"testing"
	"time"

	"acb/internal/faultinject"
	"acb/internal/service"
)

// TestClusterChaosStorm is the cluster promotion of the single-node
// 40-job seeded storm: the same sweep runs on a three-shard fleet while
// a network partition opens mid-run between the coordinator and one
// worker (seeded, bounded, self-healing) and a second worker is killed
// outright once results start landing. Asserts the cluster's
// exactly-once accounting — every job reaches exactly one terminal
// state, all of them done, terminal counters sum to the submission
// count with no double-counting — and full transparency: every result
// byte-identical to a single-node run of the same sweep. Run under
// -race.
func TestClusterChaosStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node chaos sweep")
	}
	// Partition chaos on the coordinator's RPC fabric: the link to w2
	// starts failing after 30 calls (mid-run, deterministically), stays
	// flaky for up to 40 injected failures, then heals for good.
	inj := faultinject.New(42)
	inj.Set("rpc.w2", faultinject.Rule{Prob: 0.3, After: 30, Limit: 40})

	// Workers stall a little so the kill below reliably lands mid-sweep.
	slow := faultinject.New(7)
	slow.Set("worker.slow", faultinject.Rule{Kind: faultinject.Slow, Prob: 0.5, Delay: 30 * time.Millisecond})

	nodes := startWorkers(t, []string{"w1", "w2", "w3"},
		service.SchedulerConfig{Workers: 2, MaxAttempts: 4, RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond, RetrySeed: 42},
		map[string]service.FaultPoints{"w1": slow, "w2": slow, "w3": slow})
	coord, ts := startCoordinator(t, nodes, Config{Faults: inj, DeadAfter: 2, MaxAssigns: 10})

	const jobs = 40
	reqs := tableReqs(jobs)
	ids := make([]string, 0, jobs)
	for _, req := range reqs {
		st, created, err := coord.Submit(req)
		if err != nil {
			t.Fatalf("submit seed %d: %v", req.Seed, err)
		}
		if !created {
			t.Fatalf("seed %d deduped against nothing", req.Seed)
		}
		ids = append(ids, st.ID)
	}

	// Once a third of the sweep is done, pin down every completed result
	// via the coordinator proxy (so nothing lives only on the victim),
	// then kill w3 without ceremony — the kill -9 analog: connections
	// severed, listener gone, no drain.
	killDeadline := time.Now().Add(60 * time.Second)
	for {
		done := 0
		for _, st := range coord.Jobs() {
			if st.State == service.JobDone {
				done++
			}
		}
		if done >= jobs/3 {
			break
		}
		if time.Now().After(killDeadline) {
			t.Fatal("sweep never reached 1/3 done before the kill")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, st := range coord.Jobs() {
		if st.State == service.JobDone && st.ResultKey != "" {
			if code, _ := getBody(t, ts.URL+"/v1/results/"+st.ResultKey); code != 200 {
				t.Fatalf("pre-kill result %s: status %d", st.ResultKey, code)
			}
		}
	}
	nodes["w3"].ts.CloseClientConnections()
	nodes["w3"].ts.Close()
	t.Log("killed w3 mid-sweep")

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	states := make(map[service.JobState]int)
	keys := make([]string, 0, jobs)
	for _, id := range ids {
		fin, err := coord.Wait(ctx, id)
		if err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
		states[fin.State]++
		if fin.State != service.JobDone {
			t.Errorf("job %s finished %s: %s", id, fin.State, fin.Error)
			continue
		}
		keys = append(keys, fin.ResultKey)
	}

	// Exactly-once accounting: terminal states and counters both sum to
	// the submission count — nothing lost, nothing double-counted.
	if total := states[service.JobDone] + states[service.JobFailed] + states[service.JobCancelled]; total != jobs {
		t.Errorf("terminal states %+v sum to %d, want %d (lost or duplicated jobs)", states, total, jobs)
	}
	c := coord.Counters()
	if got := c.Get("submitted"); got != jobs {
		t.Errorf("submitted = %d, want %d", got, jobs)
	}
	if sum := c.Get("completed") + c.Get("failed") + c.Get("cancelled") + c.Get("cache_hits"); sum != jobs {
		t.Errorf("completed+failed+cancelled+cache_hits = %d, want %d (double-counted transitions)", sum, jobs)
	}

	// The storm must actually have stormed. At least the killed w3 must
	// have been declared dead; the partition may also fail DeadAfter
	// consecutive probes to w2, transiently declaring it dead before the
	// heal brings it back — that is correct partition behavior, not a
	// lost worker, so the bound is one-sided.
	if c.Get("worker_dead") < 1 {
		t.Errorf("worker_dead = %d, want >= 1", c.Get("worker_dead"))
	}
	var injected int64
	for _, n := range inj.Counts() {
		injected += n
	}
	if injected == 0 {
		t.Error("partition rule never fired; storm parameters too tame")
	}
	t.Logf("storm: states=%+v injected=%d dead=%d rehashed=%d stolen=%d rpc_errors=%d requeued_lost=%d",
		states, injected, c.Get("worker_dead"), c.Get("rehashed"), c.Get("stolen"),
		c.Get("rpc_errors"), c.Get("requeued_lost"))

	// Transparency: every cluster result byte-identical to a single-node
	// run of the same sweep, served through the coordinator proxy.
	ref := referenceResults(t, reqs)
	for _, key := range keys {
		code, got := getBody(t, ts.URL+"/v1/results/"+key)
		if code != 200 {
			t.Errorf("result %s: status %d", key, code)
			continue
		}
		want, ok := ref[key]
		if !ok {
			t.Errorf("cluster produced key %s the reference run never did", key)
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("key %s: cluster result differs from single-node run", key)
		}
	}
}
