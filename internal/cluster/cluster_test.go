package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"acb/internal/expo"
	"acb/internal/faultinject"
	"acb/internal/service"
)

// testNode is one in-process worker: a real scheduler + store behind a
// real HTTP listener, indistinguishable from a separate acbd daemon.
type testNode struct {
	name  string
	sched *service.Scheduler
	store *service.Store
	fence *Fence
	ts    *httptest.Server
}

func (n *testNode) url() string { return n.ts.URL }

// startWorkers boots a fleet of named workers with the peer result
// cache wired between them, mirroring `acbd serve -role worker -peers`.
// faults configures per-worker scheduler injectors (may be nil / short).
func startWorkers(t *testing.T, names []string, cfg service.SchedulerConfig, faults map[string]service.FaultPoints) map[string]*testNode {
	t.Helper()
	nodes := make(map[string]*testNode, len(names))
	for _, name := range names {
		store, err := service.NewStore(256, t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		wcfg := cfg
		if faults != nil {
			wcfg.Faults = faults[name]
		}
		sched := service.NewScheduler(wcfg, store)
		srv := service.NewServer(sched)
		srv.SetNode(name)
		// Production workers run behind the epoch fence (cmd/acbd wires it
		// for -role worker); the fleet here does too so every cluster test
		// exercises the pass-through path and failover tests can assert on
		// adopted epochs.
		fence := NewFence()
		srv.AddReadyCheck(fence.Ready)
		nodes[name] = &testNode{name: name, sched: sched, store: store, fence: fence,
			ts: httptest.NewServer(fence.Middleware(srv.Handler()))}
	}
	members := make(map[string]string, len(nodes))
	for name, n := range nodes {
		members[name] = n.url()
	}
	for name, n := range nodes {
		n.store.SetPeers(PeerFetcher(name, members, NewClient(2*time.Second, nil)), 0)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		for _, n := range nodes {
			n.ts.Close()
			n.sched.Shutdown(ctx)
		}
	})
	return nodes
}

// startCoordinator boots a coordinator over the given workers and
// serves it over HTTP. Returns once readyz reports ready.
func startCoordinator(t *testing.T, nodes map[string]*testNode, cfg Config) (*Coordinator, *httptest.Server) {
	t.Helper()
	if cfg.Node == "" {
		cfg.Node = "coord"
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 50 * time.Millisecond
	}
	if cfg.PollInterval == 0 {
		cfg.PollInterval = 25 * time.Millisecond
	}
	if cfg.ProbeTimeout == 0 {
		cfg.ProbeTimeout = time.Second
	}
	if cfg.RPCTimeout == 0 {
		cfg.RPCTimeout = 5 * time.Second
	}
	for name, n := range nodes {
		cfg.Workers = append(cfg.Workers, Member{Name: name, URL: n.url()})
	}
	store, err := service.NewStore(256, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	coord, err := New(cfg, store)
	if err != nil {
		t.Fatal(err)
	}
	coord.Start()
	ts := httptest.NewServer(NewServer(coord).Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		coord.Shutdown(ctx)
	})
	deadline := time.Now().Add(10 * time.Second)
	for {
		if ok, _ := coord.Ready(); ok {
			return coord, ts
		}
		if time.Now().After(deadline) {
			t.Fatal("coordinator never became ready")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// tableReqs builds n distinct cheap requests (table1, seeds 1..n).
func tableReqs(n int) []service.Request {
	out := make([]service.Request, 0, n)
	for seed := int64(1); seed <= int64(n); seed++ {
		out = append(out, service.Request{Experiment: "table1", Seed: seed})
	}
	return out
}

// reqsOwnedBy scans seeds for n requests whose keys the given ring
// places on node — the deterministic way to aim load at one shard.
func reqsOwnedBy(t *testing.T, ring *Ring, node string, n int) []service.Request {
	t.Helper()
	var out []service.Request
	for seed := int64(1); len(out) < n && seed < 100000; seed++ {
		req := service.Request{Experiment: "table1", Seed: seed}
		key, err := req.Key()
		if err != nil {
			t.Fatal(err)
		}
		if owner, _ := ring.Owner(key); owner == node {
			out = append(out, req)
		}
	}
	if len(out) < n {
		t.Fatalf("found only %d/%d keys owned by %s", len(out), n, node)
	}
	return out
}

func mustKey(t *testing.T, req service.Request) string {
	t.Helper()
	key, err := req.Key()
	if err != nil {
		t.Fatal(err)
	}
	return key
}

// referenceResults runs the same requests on a pristine single-node
// scheduler and returns each key's result JSON — the byte-identity
// oracle for cluster transparency.
func referenceResults(t *testing.T, reqs []service.Request) map[string][]byte {
	t.Helper()
	store, err := service.NewStore(256, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sched := service.NewScheduler(service.SchedulerConfig{Workers: 2}, store)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	defer sched.Shutdown(ctx)
	out := make(map[string][]byte, len(reqs))
	for _, req := range reqs {
		st, _, err := sched.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		fin, err := sched.Wait(ctx, st.ID)
		if err != nil || fin.State != service.JobDone {
			t.Fatalf("reference run: %+v err=%v", fin, err)
		}
		tab, ok := store.Get(fin.ResultKey)
		if !ok {
			t.Fatalf("reference result %s missing", fin.ResultKey)
		}
		b, err := json.Marshal(tab)
		if err != nil {
			t.Fatal(err)
		}
		out[fin.ResultKey] = b
	}
	return out
}

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestClusterBatchStreamByteIdentical is the cluster transparency
// acceptance path with no faults: a batch lands across three shards,
// the streaming API reports every completion, every result is
// byte-identical to a single-node run, and the aggregated exposition
// carries every node's series.
func TestClusterBatchStreamByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node simulation sweep")
	}
	nodes := startWorkers(t, []string{"w1", "w2", "w3"}, service.SchedulerConfig{Workers: 2}, nil)
	coord, ts := startCoordinator(t, nodes, Config{})

	reqs := tableReqs(9)
	body, _ := json.Marshal(map[string]interface{}{"jobs": reqs})
	resp, err := http.Post(ts.URL+"/v1/jobs:batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var batch struct {
		Jobs []struct {
			JobStatus
			Error string `json:"error"`
		} `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(batch.Jobs) != len(reqs) {
		t.Fatalf("batch: status %d, %d items", resp.StatusCode, len(batch.Jobs))
	}
	var ids []string
	for i, item := range batch.Jobs {
		if item.Error != "" {
			t.Fatalf("batch item %d rejected: %s", i, item.Error)
		}
		ids = append(ids, item.ID)
	}

	// Stream completions as NDJSON: one parseable line per job.
	resp, err = http.Get(ts.URL + "/v1/results:stream?timeout=90s&ids=" + strings.Join(ids, ","))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	doneKeys := make(map[string]string) // job id -> result key
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var st JobStatus
		if err := json.Unmarshal(sc.Bytes(), &st); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if st.State != service.JobDone {
			t.Fatalf("job %s streamed %s: %s", st.ID, st.State, st.Error)
		}
		doneKeys[st.ID] = st.ResultKey
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(doneKeys) != len(reqs) {
		t.Fatalf("stream reported %d jobs, want %d", len(doneKeys), len(reqs))
	}

	// Placement actually sharded: more than one worker ran jobs.
	workersUsed := make(map[string]bool)
	for _, st := range coord.Jobs() {
		workersUsed[st.Worker] = true
	}
	if len(workersUsed) < 2 {
		t.Errorf("9 jobs all landed on %v: ring not sharding", workersUsed)
	}

	// Byte-identity against a never-clustered run, via the coordinator's
	// results proxy.
	ref := referenceResults(t, reqs)
	for id, key := range doneKeys {
		code, got := getBody(t, ts.URL+"/v1/results/"+key)
		if code != http.StatusOK {
			t.Fatalf("result %s (job %s): status %d", key, id, code)
		}
		want, ok := ref[key]
		if !ok {
			t.Fatalf("job %s produced key %s the reference run never did", id, key)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("key %s: cluster result differs from single-node run\ncluster: %s\nsingle:  %s", key, got, want)
		}
	}

	// Aggregated metrics: every node's series present, node-labeled.
	code, metrics := getBody(t, ts.URL+"/v1/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	fams, err := expo.Parse(string(metrics))
	if err != nil {
		t.Fatalf("aggregated exposition does not parse: %v", err)
	}
	nodesSeen := make(map[string]bool)
	for _, f := range fams {
		for _, s := range f.Samples {
			for _, l := range s.Labels {
				if l.Name == "node" {
					nodesSeen[l.Value] = true
				}
			}
		}
	}
	for _, want := range []string{"w1", "w2", "w3", "coord"} {
		if !nodesSeen[want] {
			t.Errorf("aggregated metrics missing node %q (saw %v)", want, nodesSeen)
		}
	}
	for _, want := range []string{
		`acbd_cluster_workers{state="alive",node="coord"} 3`,
		`acbd_cluster_scrape_up{worker="w1",node="coord"} 1`,
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("aggregated metrics missing %s:\n%.2000s", want, metrics)
		}
	}
}

// TestClusterDedupAndCacheHit: duplicate submissions coalesce while in
// flight, re-running a finished sweep dedups on the worker's store, and
// once the coordinator's own cache holds a result a resubmission is an
// instant cache hit.
func TestClusterDedupAndCacheHit(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node simulation sweep")
	}
	nodes := startWorkers(t, []string{"w1"}, service.SchedulerConfig{Workers: 1}, nil)
	coord, ts := startCoordinator(t, nodes, Config{})

	req := service.Request{Experiment: "table1", Seed: 7}
	st1, created, err := coord.Submit(req)
	if err != nil || !created {
		t.Fatalf("first submit: created=%v err=%v", created, err)
	}
	st2, created, err := coord.Submit(req)
	if err != nil || created {
		t.Fatalf("duplicate submit not deduped: created=%v err=%v", created, err)
	}
	if st2.ID != st1.ID {
		t.Fatalf("dedup returned different job %s vs %s", st2.ID, st1.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	fin, err := coord.Wait(ctx, st1.ID)
	if err != nil || fin.State != service.JobDone {
		t.Fatalf("job finished %+v err=%v", fin, err)
	}

	// Terminal now: a resubmission is a new job, served instantly off the
	// worker's store at dispatch time (no second simulation).
	st3, created, err := coord.Submit(req)
	if err != nil || !created {
		t.Fatalf("resubmit: created=%v err=%v", created, err)
	}
	fin3, err := coord.Wait(ctx, st3.ID)
	if err != nil || fin3.State != service.JobDone {
		t.Fatalf("resubmit finished %+v err=%v", fin3, err)
	}

	// The warm replicator pulls the result into the coordinator's own
	// store; once there, submits short-circuit before any dispatch.
	key := mustKey(t, req)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, ok := coord.Store().GetLocal(key); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("coordinator never warmed the completed result")
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(fmt.Sprintf(`{"experiment":"table1","seed":%d}`, req.Seed)))
	if err != nil {
		t.Fatal(err)
	}
	var sr submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !sr.CacheHit || sr.State != service.JobDone {
		t.Fatalf("cached resubmit: status %d, %+v", resp.StatusCode, sr.JobStatus)
	}
}

// TestClusterPeerFetchAcrossShards: a result computed on its owning
// shard is served by a different shard through the store's peer tier,
// byte-identical, and counted as a peer hit.
func TestClusterPeerFetchAcrossShards(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node simulation sweep")
	}
	nodes := startWorkers(t, []string{"w1", "w2"}, service.SchedulerConfig{Workers: 1}, nil)
	_, _ = startCoordinator(t, nodes, Config{})

	fullRing := NewRing(0, "w1", "w2")
	req := reqsOwnedBy(t, fullRing, "w1", 1)[0]
	key := mustKey(t, req)

	// Run it on its owner directly (as the coordinator would place it).
	st, _, err := nodes["w1"].sched.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if fin, err := nodes["w1"].sched.Wait(ctx, st.ID); err != nil || fin.State != service.JobDone {
		t.Fatalf("owner run: %+v err=%v", fin, err)
	}

	codeOwner, fromOwner := getBody(t, nodes["w1"].url()+"/v1/results/"+key)
	codePeer, fromPeer := getBody(t, nodes["w2"].url()+"/v1/results/"+key)
	if codeOwner != http.StatusOK || codePeer != http.StatusOK {
		t.Fatalf("owner/peer status %d/%d", codeOwner, codePeer)
	}
	if !bytes.Equal(fromOwner, fromPeer) {
		t.Errorf("peer-served result differs from owner's:\npeer:  %s\nowner: %s", fromPeer, fromOwner)
	}
	if hits, errs := nodes["w2"].store.PeerStats(); hits != 1 || errs != 0 {
		t.Errorf("w2 peer hits/errs = %d/%d, want 1/0", hits, errs)
	}
}

// TestClusterWorkerDeathRehash: jobs placed on a worker that dies
// mid-run are detected via failed heartbeats, re-hashed onto the
// survivor, and complete — none lost.
func TestClusterWorkerDeathRehash(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node simulation sweep")
	}
	// Every w1 job stalls 1.5s before simulating, so w1 is guaranteed to
	// still hold them when it is killed.
	inj := faultinject.New(1)
	inj.Set("worker.slow", faultinject.Rule{Kind: faultinject.Slow, Nth: 1, Delay: 1500 * time.Millisecond})
	nodes := startWorkers(t, []string{"w1", "w2"}, service.SchedulerConfig{Workers: 1},
		map[string]service.FaultPoints{"w1": inj})
	coord, _ := startCoordinator(t, nodes, Config{DeadAfter: 2})

	reqs := reqsOwnedBy(t, NewRing(0, "w1", "w2"), "w1", 3)
	var ids []string
	for _, req := range reqs {
		st, _, err := coord.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}

	// Wait until at least one job is assigned to w1, then kill it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		assigned := 0
		for _, st := range coord.Jobs() {
			if st.Worker == "w1" {
				assigned++
			}
		}
		if assigned == len(ids) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("jobs never dispatched to w1")
		}
		time.Sleep(5 * time.Millisecond)
	}
	nodes["w1"].ts.CloseClientConnections()
	nodes["w1"].ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	for _, id := range ids {
		fin, err := coord.Wait(ctx, id)
		if err != nil || fin.State != service.JobDone {
			t.Fatalf("job %s after worker death: %+v err=%v", id, fin, err)
		}
		if fin.Worker != "w2" {
			t.Errorf("job %s finished on %q, want survivor w2", id, fin.Worker)
		}
	}
	c := coord.Counters()
	if c.Get("worker_dead") != 1 {
		t.Errorf("worker_dead = %d, want 1", c.Get("worker_dead"))
	}
	if c.Get("rehashed") < int64(len(ids)) {
		t.Errorf("rehashed = %d, want >= %d", c.Get("rehashed"), len(ids))
	}
}

// TestClusterWorkSteal: with every key aimed at one worker whose jobs
// are slow, the idle worker steals from the straggler's queue and the
// sweep finishes with both shards having run work.
func TestClusterWorkSteal(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node simulation sweep")
	}
	// w1 stalls 400ms per job: long enough for its queue to be observed
	// and raided, short enough to keep the test quick.
	inj := faultinject.New(1)
	inj.Set("worker.slow", faultinject.Rule{Kind: faultinject.Slow, Nth: 1, Delay: 400 * time.Millisecond})
	nodes := startWorkers(t, []string{"w1", "w2"}, service.SchedulerConfig{Workers: 1},
		map[string]service.FaultPoints{"w1": inj})
	coord, _ := startCoordinator(t, nodes, Config{StealMargin: 2})

	reqs := reqsOwnedBy(t, NewRing(0, "w1", "w2"), "w1", 6)
	var ids []string
	for _, req := range reqs {
		st, _, err := coord.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	byWorker := make(map[string]int)
	for _, id := range ids {
		fin, err := coord.Wait(ctx, id)
		if err != nil || fin.State != service.JobDone {
			t.Fatalf("job %s: %+v err=%v", id, fin, err)
		}
		byWorker[fin.Worker]++
	}
	if coord.Counters().Get("stolen") == 0 {
		t.Error("idle worker never stole from the straggler")
	}
	if byWorker["w2"] == 0 {
		t.Errorf("thief ran nothing: completions by worker = %v", byWorker)
	}
	t.Logf("completions by worker: %v, stolen=%d", byWorker, coord.Counters().Get("stolen"))
}

// TestClusterBackpressure: past QueueDepth non-terminal jobs the
// coordinator answers 429 with a Retry-After, same as a single node.
func TestClusterBackpressure(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node simulation sweep")
	}
	inj := faultinject.New(1)
	inj.Set("worker.slow", faultinject.Rule{Kind: faultinject.Slow, Nth: 1, Delay: 2 * time.Second})
	nodes := startWorkers(t, []string{"w1"}, service.SchedulerConfig{Workers: 1},
		map[string]service.FaultPoints{"w1": inj})
	_, ts := startCoordinator(t, nodes, Config{QueueDepth: 1})

	post := func(seed int64) *http.Response {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
			strings.NewReader(fmt.Sprintf(`{"experiment":"table1","seed":%d}`, seed)))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	if resp := post(1); resp.StatusCode != http.StatusCreated {
		t.Fatalf("first submit status %d", resp.StatusCode)
	}
	resp := post(2)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-depth submit status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
}
