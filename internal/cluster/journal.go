package cluster

import (
	"encoding/json"
	"sync"
	"time"

	"acb/internal/service"
	"acb/internal/wal"
)

// JournalVersion is the cluster journal's format-version header line.
const JournalVersion = "acbd-cluster-journal/1"

// centry is one cluster-journal record: a placement, dispatch, steal,
// completion or membership transition, appended (fsync'd) before the
// in-memory job table mutates. Op is one of submit | assign | unassign
// | done | failed | cancelled | member.
type centry struct {
	Op      string           `json:"op"`
	ID      string           `json:"id,omitempty"`
	Key     string           `json:"key,omitempty"`
	Request *service.Request `json:"request,omitempty"`
	// Placement payload: assign records the worker, its job ID for the
	// dispatch, and the post-assignment counters (replay takes them
	// verbatim — no re-counting rules to drift).
	Worker   string `json:"worker,omitempty"`
	RemoteID string `json:"remote_id,omitempty"`
	Assigns  int    `json:"assigns,omitempty"`
	Stolen   int    `json:"stolen,omitempty"`
	Steal    bool   `json:"steal,omitempty"`
	// Terminal payload.
	Err     string `json:"err,omitempty"`
	ErrKind string `json:"err_kind,omitempty"`
	// Membership payload ("member" op).
	Alive bool      `json:"alive,omitempty"`
	Time  time.Time `json:"t,omitempty"`
}

// ReplayedJob is one cluster job recovered from a journal. Jobs with no
// terminal record come back with State zero ("" → queued) plus their
// last journaled placement, so a restarted coordinator re-probes the
// assigned worker instead of blindly re-running. Jobs with a terminal
// record come back with that state so clients polling their IDs across
// a coordinator restart or failover still get answers; only
// non-terminal jobs survive compaction on the next open.
type ReplayedJob struct {
	ID       string
	Key      string
	Request  service.Request
	Worker   string
	RemoteID string
	Assigns  int
	Stolen   int
	State    service.JobState // "" = still pending
	Err      string
	ErrKind  string
}

// Journal is the coordinator's write-ahead log over the cluster job
// table, built on the same internal/wal engine as the single-node job
// journal: JSONL with a version header, fsync per record,
// torn-tail-tolerant replay, compaction-on-open.
//
// On top of the file it keeps an in-memory mirror of every record since
// open, which is what GET /v1/journal:stream serves: a warm standby
// tails the mirror and holds a byte-identical replica it can promote
// from. A nil *Journal is a valid no-op (journaling disabled).
type Journal struct {
	log *wal.Log

	mu      sync.Mutex
	records []json.RawMessage
	updated chan struct{} // closed and replaced on every append
}

// OpenJournal opens (creating if needed) the cluster journal at path,
// replays existing records into ReplayedJobs in submission order, and
// compacts the file down to the non-terminal survivors (re-encoded as
// one submit plus, when placed, one assign record each). The returned
// journal is open for appending.
func OpenJournal(path string) (*Journal, []ReplayedJob, error) {
	recs, err := wal.Replay(path, JournalVersion)
	if err != nil {
		return nil, nil, err
	}
	replay := reduceClusterJournal(recs)
	var survivors []interface{}
	var mirror []json.RawMessage
	now := time.Now().UTC()
	for _, rj := range replay {
		if terminalState(rj.State) {
			continue
		}
		req := rj.Request
		es := []centry{{Op: "submit", ID: rj.ID, Key: rj.Key, Request: &req, Time: now}}
		if rj.Worker != "" {
			es = append(es, centry{Op: "assign", ID: rj.ID, Worker: rj.Worker,
				RemoteID: rj.RemoteID, Assigns: rj.Assigns, Stolen: rj.Stolen, Time: now})
		}
		for _, e := range es {
			b, err := json.Marshal(e)
			if err != nil {
				return nil, nil, err
			}
			survivors = append(survivors, json.RawMessage(b))
			mirror = append(mirror, b)
		}
	}
	log, err := wal.Create(path, JournalVersion, survivors)
	if err != nil {
		return nil, nil, err
	}
	return &Journal{log: log, records: mirror, updated: make(chan struct{})}, replay, nil
}

// reduceClusterJournal folds raw records into per-job replay state:
// last placement wins, a terminal record freezes the job.
func reduceClusterJournal(recs []json.RawMessage) []ReplayedJob {
	acc := make(map[string]*ReplayedJob)
	var order []string
	for _, b := range recs {
		var e centry
		if err := json.Unmarshal(b, &e); err != nil {
			break // record from a future vocabulary: stop, like a torn tail
		}
		switch e.Op {
		case "submit":
			if e.Request == nil || e.ID == "" {
				continue
			}
			acc[e.ID] = &ReplayedJob{ID: e.ID, Key: e.Key, Request: *e.Request}
			order = append(order, e.ID)
		case "assign":
			if a := acc[e.ID]; a != nil && !terminalState(a.State) {
				a.Worker, a.RemoteID = e.Worker, e.RemoteID
				a.Assigns, a.Stolen = e.Assigns, e.Stolen
			}
		case "unassign":
			if a := acc[e.ID]; a != nil && !terminalState(a.State) {
				a.Worker, a.RemoteID = "", ""
			}
		case "done", "failed", "cancelled":
			if a := acc[e.ID]; a != nil {
				a.State = service.JobState(e.Op)
				a.Err, a.ErrKind = e.Err, e.ErrKind
			}
		case "member":
			// Membership is re-probed from scratch on restart; the records
			// exist for the stream and the audit trail, not for replay.
		}
	}
	out := make([]ReplayedJob, 0, len(order))
	for _, id := range order {
		out = append(out, *acc[id])
	}
	return out
}

// SetFaults installs the fault-injection hook fired as "cjournal.append"
// before every record; chaos tests only.
func (j *Journal) SetFaults(f wal.FaultPoints) {
	if j == nil {
		return
	}
	j.log.SetFaults(f, "cjournal")
}

// append writes one record to disk and to the in-memory mirror. The
// mirror (and so the standby's stream) is updated even when the disk
// append fails — the coordinator treats journal errors as durability
// loss, not divergence, and the standby must stay consistent with the
// primary's live state.
func (j *Journal) append(e centry) error {
	if j == nil {
		return nil
	}
	b, err := json.Marshal(e)
	if err != nil {
		return err
	}
	werr := j.log.Append(json.RawMessage(b))
	j.mu.Lock()
	j.records = append(j.records, b)
	close(j.updated)
	j.updated = make(chan struct{})
	j.mu.Unlock()
	return werr
}

// Submit records a job's acceptance into the cluster table.
func (j *Journal) Submit(id, key string, req service.Request) error {
	if j == nil {
		return nil
	}
	return j.append(centry{Op: "submit", ID: id, Key: key, Request: &req, Time: time.Now().UTC()})
}

// Assign records a placement: job id dispatched to worker as remoteID,
// with the post-assignment attempt counters. steal marks reassignments
// taken from a straggler.
func (j *Journal) Assign(id, worker, remoteID string, assigns, stolen int, steal bool) error {
	if j == nil {
		return nil
	}
	return j.append(centry{Op: "assign", ID: id, Worker: worker, RemoteID: remoteID,
		Assigns: assigns, Stolen: stolen, Steal: steal})
}

// Unassign records a job returned to the dispatchable pool (death
// rehash, steal, lost worker, unfetchable result).
func (j *Journal) Unassign(id string) error {
	if j == nil {
		return nil
	}
	return j.append(centry{Op: "unassign", ID: id})
}

// Terminal records a job reaching done, failed or cancelled. Replay
// freezes such jobs, so a restart never re-runs the work.
func (j *Journal) Terminal(id string, state service.JobState, errMsg, errKind string) error {
	if j == nil {
		return nil
	}
	return j.append(centry{Op: string(state), ID: id, Err: errMsg, ErrKind: errKind, Time: time.Now().UTC()})
}

// Member records a worker liveness transition.
func (j *Journal) Member(name string, alive bool) error {
	if j == nil {
		return nil
	}
	return j.append(centry{Op: "member", Worker: name, Alive: alive, Time: time.Now().UTC()})
}

// Snapshot returns the records appended at or after offset from, the
// next offset, and a channel closed on the next append — everything a
// stream needs to replay and then tail the journal. A nil journal
// snapshots empty with a never-closing channel.
func (j *Journal) Snapshot(from int) ([]json.RawMessage, int, <-chan struct{}) {
	if j == nil {
		return nil, 0, make(chan struct{})
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if from < 0 {
		from = 0
	}
	if from > len(j.records) {
		from = len(j.records)
	}
	recs := j.records[from:len(j.records):len(j.records)]
	return recs, len(j.records), j.updated
}

// Close stops the journal; later appends fail.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	return j.log.Close()
}

// Path returns the journal's file path.
func (j *Journal) Path() string {
	if j == nil {
		return ""
	}
	return j.log.Path()
}
