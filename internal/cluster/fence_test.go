package cluster

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
)

// TestFenceEpochProtocol walks the worker-side fence through the whole
// epoch lifecycle: headerless pass-through, first adoption, the
// not-ready window until the new coordinator lists jobs, and the 409
// fencing of a stale coordinator with the current epoch echoed back.
func TestFenceEpochProtocol(t *testing.T) {
	f := NewFence()
	var backendHits int
	h := f.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		backendHits++
		w.WriteHeader(http.StatusOK)
	}))

	send := func(path string, epoch uint64) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		if epoch > 0 {
			req.Header.Set(EpochHeader, strconv.FormatUint(epoch, 10))
		}
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		return rr
	}

	// Never clustered: no header, everything passes, readyz unaffected.
	if rr := send("/v1/jobs/abc", 0); rr.Code != http.StatusOK {
		t.Fatalf("headerless request fenced: %d", rr.Code)
	}
	if ok, _ := f.Ready(); !ok {
		t.Fatal("fence not ready before any epoch")
	}

	// A coordinator at epoch 2 appears: adopted, but the worker is
	// re-registering (not ready) until that coordinator lists its jobs.
	if rr := send("/v1/healthz", 2); rr.Code != http.StatusOK {
		t.Fatalf("adopting probe rejected: %d", rr.Code)
	}
	if f.Epoch() != 2 {
		t.Fatalf("epoch %d after adoption, want 2", f.Epoch())
	}
	if ok, reason := f.Ready(); ok || reason == "" {
		t.Fatalf("ready=(%v,%q) before reconciliation, want not-ready with reason", ok, reason)
	}
	if rr := send("/v1/jobs", 2); rr.Code != http.StatusOK {
		t.Fatalf("reconcile listing rejected: %d", rr.Code)
	}
	if ok, _ := f.Ready(); !ok {
		t.Fatal("fence still not ready after the coordinator listed jobs")
	}

	// The old primary (epoch 1) comes back from its partition: fenced
	// with 409 and told the current epoch.
	rr := send("/v1/jobs", 1)
	if rr.Code != http.StatusConflict {
		t.Fatalf("stale epoch passed: %d", rr.Code)
	}
	if got := rr.Header().Get(EpochHeader); got != "2" {
		t.Errorf("409 echoed epoch %q, want 2", got)
	}
	if f.Rejected() != 1 {
		t.Errorf("rejected = %d, want 1", f.Rejected())
	}
	hitsBefore := backendHits
	send("/v1/jobs", 1)
	if backendHits != hitsBefore {
		t.Error("fenced request still reached the backend")
	}

	// Garbage epochs are a client bug, not a fence decision.
	req := httptest.NewRequest(http.MethodGet, "/v1/jobs", nil)
	req.Header.Set(EpochHeader, "zero")
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusBadRequest {
		t.Errorf("bad epoch header: %d, want 400", rr.Code)
	}
}
