package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestClientRetryStalledPeer: a peer that accepts connections but never
// answers must not hang an idempotent RPC — each attempt is cut by the
// client's own per-RPC deadline, the bounded retry schedule runs dry,
// and the call returns a transport error in bounded time.
func TestClientRetryStalledPeer(t *testing.T) {
	var hits int64
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt64(&hits, 1)
		<-release // stall until the test tears down
	}))
	// Unblock the stalled handlers before Close waits on them.
	defer ts.Close()
	defer close(release)

	c := NewClient(100*time.Millisecond, nil) // per-RPC deadline
	c.SetRetry(3, 10*time.Millisecond, 40*time.Millisecond, 1)

	start := time.Now()
	err := c.doIdempotent(context.Background(), "stalled", http.MethodGet, ts.URL+"/v1/healthz", nil, nil)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("RPC against a stalled peer succeeded")
	}
	if code := StatusCode(err); code != 0 {
		t.Errorf("stall surfaced as status %d, want transport error", code)
	}
	if got := atomic.LoadInt64(&hits); got != 3 {
		t.Errorf("peer saw %d attempts, want 3", got)
	}
	// 3 × 100ms deadlines plus two backoffs ≤ 40ms each, with headroom.
	if elapsed > 2*time.Second {
		t.Errorf("bounded retry took %v", elapsed)
	}
}

// TestClientRetry5xxThenSuccess: transient server errors are retried and
// the eventual success is returned; the schedule is invisible to the
// caller.
func TestClientRetry5xxThenSuccess(t *testing.T) {
	var hits int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt64(&hits, 1) < 3 {
			http.Error(w, `{"error":"transient"}`, http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer ts.Close()

	c := NewClient(time.Second, nil)
	c.SetRetry(3, time.Millisecond, 5*time.Millisecond, 1)
	var out struct {
		Status string `json:"status"`
	}
	if err := c.doIdempotent(context.Background(), "flaky", http.MethodGet, ts.URL+"/x", nil, &out); err != nil {
		t.Fatalf("retry never recovered: %v", err)
	}
	if out.Status != "ok" || atomic.LoadInt64(&hits) != 3 {
		t.Errorf("status %q after %d attempts, want ok after 3", out.Status, hits)
	}

	// getBytesIdempotent rides the same schedule.
	atomic.StoreInt64(&hits, 0)
	b, err := c.getBytesIdempotent(context.Background(), "flaky", ts.URL+"/x")
	if err != nil || string(b) != `{"status":"ok"}`+"\n" && string(b) != `{"status":"ok"}` {
		t.Fatalf("getBytesIdempotent = %q, %v", b, err)
	}
	if atomic.LoadInt64(&hits) != 3 {
		t.Errorf("getBytes attempts = %d, want 3", hits)
	}
}

// TestClientNoRetryOnAuthoritative: 404 (miss) and 409 (fenced) answers
// are authoritative — exactly one attempt, no backoff burned.
func TestClientNoRetryOnAuthoritative(t *testing.T) {
	var hits int64
	var code atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt64(&hits, 1)
		http.Error(w, `{"error":"no"}`, int(code.Load()))
	}))
	defer ts.Close()
	c := NewClient(time.Second, nil)
	c.SetRetry(3, time.Millisecond, 5*time.Millisecond, 1)

	code.Store(http.StatusNotFound)
	b, err := c.getBytesIdempotent(context.Background(), "peer", ts.URL+"/v1/store/k")
	if b != nil || err != nil {
		t.Errorf("404 = (%q, %v), want authoritative (nil, nil) miss", b, err)
	}
	if atomic.LoadInt64(&hits) != 1 {
		t.Errorf("404 took %d attempts, want 1", hits)
	}

	atomic.StoreInt64(&hits, 0)
	code.Store(http.StatusConflict)
	err = c.doIdempotent(context.Background(), "peer", http.MethodGet, ts.URL+"/v1/jobs", nil, nil)
	if StatusCode(err) != http.StatusConflict {
		t.Errorf("409 surfaced as %v, want statusError 409", err)
	}
	if atomic.LoadInt64(&hits) != 1 {
		t.Errorf("409 took %d attempts, want 1", hits)
	}
}

// TestClientStampsEpochAndReportsFencing: an epoch-bearing client stamps
// every RPC; a 409 carrying a higher epoch triggers the onStale hook
// exactly once per call, with the fencing epoch.
func TestClientStampsEpochAndReportsFencing(t *testing.T) {
	var sawEpoch atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sawEpoch.Store(r.Header.Get(EpochHeader))
		w.Header().Set(EpochHeader, "7")
		http.Error(w, `{"error":"stale"}`, http.StatusConflict)
	}))
	defer ts.Close()

	var staleWith atomic.Uint64
	c := NewClient(time.Second, nil)
	c.SetRetry(1, time.Millisecond, time.Millisecond, 1)
	c.SetEpoch(3, func(higher uint64) { staleWith.Store(higher) })

	err := c.do(context.Background(), "w1", http.MethodPost, ts.URL+"/v1/jobs", map[string]int{"seed": 1}, nil)
	if StatusCode(err) != http.StatusConflict {
		t.Fatalf("want 409, got %v", err)
	}
	if got := sawEpoch.Load(); got != "3" {
		t.Errorf("request carried epoch %v, want \"3\"", got)
	}
	if staleWith.Load() != 7 {
		t.Errorf("onStale reported %d, want 7", staleWith.Load())
	}
}
