package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"acb/internal/experiments"
	"acb/internal/service"
	"acb/internal/stats"
)

// Member is one worker shard in the static fleet: a stable name (the
// ring and the metrics node label key on it) and a base URL.
type Member struct {
	Name string
	URL  string
}

// Config configures a Coordinator. Zero values take the defaults noted.
type Config struct {
	// Node is the coordinator's own identity for its metrics series.
	Node string
	// Workers is the static fleet. Liveness within it is probed; the set
	// itself does not change at runtime.
	Workers []Member

	// QueueDepth bounds non-terminal cluster jobs; submissions beyond it
	// fail fast with service.ErrQueueFull. Default 4096.
	QueueDepth int
	// RetainJobs bounds terminal job records kept for status queries.
	// Default 1024.
	RetainJobs int

	// ProbeInterval is the heartbeat period (default 500ms);
	// ProbeTimeout bounds one health probe (default 2s); DeadAfter is
	// the consecutive probe failures that declare a worker dead
	// (default 3).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	DeadAfter     int

	// PollInterval is the job-reconcile period (default 250ms).
	PollInterval time.Duration
	// RPCTimeout bounds one job-control RPC (default 10s).
	RPCTimeout time.Duration

	// MaxAssigns bounds how many worker assignments one job may consume
	// (initial dispatch + re-dispatch after worker death + steals)
	// before the coordinator fails it. Default 6.
	MaxAssigns int
	// StealMargin is how many worker-queued jobs a straggler must hold
	// before an idle worker steals one. Default 2.
	StealMargin int
	// VNodes is the ring's virtual-node count per worker (default 64).
	VNodes int

	// Journal is the cluster write-ahead log (nil = not journaled).
	// Every placement, dispatch, steal, completion and membership
	// transition is appended before the in-memory job table mutates.
	Journal *Journal
	// Replay is the job set recovered from the journal at open, restored
	// into the table before the control loop starts: terminal jobs come
	// back queryable, placed jobs are re-probed via reconcile rather than
	// re-run, and unplaced jobs re-enter dispatch.
	Replay []ReplayedJob
	// Epoch is the coordinator's fencing epoch, stamped on every RPC.
	// Workers reject RPCs below the highest epoch they have seen, which
	// is what keeps a stale primary harmless after a failover (0 = not
	// clustered for fencing; nothing is stamped).
	Epoch uint64
	// Promoted marks a coordinator born from a standby takeover (counts
	// acbd_failovers_total).
	Promoted bool

	// Faults wires the rpc / rpc.<node> partition points (nil = none).
	Faults service.FaultPoints
	// Logf receives operational logs (default: discard).
	Logf func(format string, args ...interface{})
}

func (cfg *Config) fillDefaults() {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4096
	}
	if cfg.RetainJobs <= 0 {
		cfg.RetainJobs = 1024
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 500 * time.Millisecond
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	if cfg.DeadAfter <= 0 {
		cfg.DeadAfter = 3
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 250 * time.Millisecond
	}
	if cfg.RPCTimeout <= 0 {
		cfg.RPCTimeout = 10 * time.Second
	}
	if cfg.MaxAssigns <= 0 {
		cfg.MaxAssigns = 6
	}
	if cfg.StealMargin <= 0 {
		cfg.StealMargin = 2
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...interface{}) {}
	}
}

// member is a fleet entry plus its probed liveness.
type member struct {
	name  string
	url   string
	alive bool
	fails int
}

// cjob is one cluster job. All fields are guarded by the coordinator's
// mutex except id/key/req, which are immutable after creation.
type cjob struct {
	id  string
	key string
	req service.Request

	state    service.JobState
	worker   string // current assignment ("" = unassigned)
	remoteID string // job ID on that worker
	assigns  int    // workers this job has been sent to
	stolen   int    // reassignments via work stealing
	cancel   bool   // client requested cancellation
	cacheHit bool
	// remoteDone marks a job the worker reports finished whose result
	// the coordinator has not yet replicated. The job goes terminal only
	// once the replica lands (done ⇒ result durable at the coordinator);
	// if the worker dies first, the job reruns instead of going
	// done-but-unfetchable.
	remoteDone bool
	fetchTries int
	err        string
	errKind    string
	cpi        map[string]experiments.CPITotals

	created  time.Time
	started  time.Time
	finished time.Time
	done     chan struct{}
}

// JobStatus is a cluster job snapshot: the single-node status shape
// (so `acbd submit -wait` and every existing client work unchanged
// against a coordinator) plus placement fields.
type JobStatus struct {
	service.JobStatus
	Worker string `json:"worker,omitempty"`
	Stolen int    `json:"stolen,omitempty"`
}

// Coordinator owns cluster state: fleet liveness, the live-member ring,
// and every cluster job's placement. One background goroutine runs all
// dispatch/reconcile/steal/probe transitions, so those never race each
// other; client-facing methods only read or flag state under the mutex.
type Coordinator struct {
	cfg     Config
	client  *Client
	store   *service.Store
	journal *Journal
	epoch   uint64

	counters *stats.Counters

	mu       sync.Mutex
	fenced   bool // a higher-epoch coordinator exists; stand down
	members  map[string]*member
	ring     *Ring // live members only; rebuilt on liveness change
	jobs     map[string]*cjob
	byKey    map[string]*cjob // non-terminal jobs by result key (dedup)
	order    []string
	terminal int

	// completedOn remembers which worker finished each key, so the
	// results proxy asks the shard that actually has it first — the ring
	// owner is wrong for stolen and death-rehashed jobs. Bounded FIFO.
	completedOn  map[string]string
	completedLog []string

	nextID int64
	closed bool
	probed bool // first probe round done (readyz gate)

	kick   chan struct{}
	stopCh chan struct{}
	wg     sync.WaitGroup
}

const completedOnCap = 8192

// New builds a Coordinator over the given result store (the
// coordinator's own cache tier for the results proxy; it may be
// memory-only). Call Start to begin probing and dispatching.
func New(cfg Config, store *service.Store) (*Coordinator, error) {
	cfg.fillDefaults()
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("cluster: coordinator needs at least one worker")
	}
	c := &Coordinator{
		cfg:         cfg,
		client:      NewClient(cfg.RPCTimeout, cfg.Faults),
		store:       store,
		journal:     cfg.Journal,
		epoch:       cfg.Epoch,
		counters:    stats.NewCounters(),
		members:     make(map[string]*member),
		jobs:        make(map[string]*cjob),
		byKey:       make(map[string]*cjob),
		completedOn: make(map[string]string),
		kick:        make(chan struct{}, 1),
		stopCh:      make(chan struct{}),
	}
	for _, m := range cfg.Workers {
		if m.Name == "" || m.URL == "" {
			return nil, fmt.Errorf("cluster: worker needs name and url, got %+v", m)
		}
		if _, dup := c.members[m.Name]; dup {
			return nil, fmt.Errorf("cluster: duplicate worker name %q", m.Name)
		}
		c.members[m.Name] = &member{name: m.Name, url: m.URL}
	}
	c.ring = NewRing(cfg.VNodes) // empty until the first probe round
	// The coordinator's store fills from whichever worker has a key, so
	// GET /v1/results/{key} works for any completed job, wherever it ran.
	store.SetPeers(c.fetchEnvelope, cfg.RPCTimeout)
	if cfg.Epoch > 0 {
		// Stamp the fencing epoch on every RPC; a 409 carrying a higher
		// epoch means another coordinator has taken over — stand down.
		c.client.SetEpoch(cfg.Epoch, c.onStaleEpoch)
	}
	if cfg.Promoted {
		c.counters.Add("failovers", 1)
	}
	if len(cfg.Replay) > 0 {
		c.counters.Add("journal_replays", 1)
		c.restoreReplay(cfg.Replay)
	}
	return c, nil
}

// onStaleEpoch is the client's fencing hook: some worker has seen a
// higher coordinator epoch, meaning a standby promoted past us. Stop
// touching the fleet — every mutation would bounce with 409 anyway —
// and report not-ready so clients move to the new primary.
func (c *Coordinator) onStaleEpoch(higher uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fenced {
		return
	}
	c.fenced = true
	c.counters.Add("fenced", 1)
	c.cfg.Logf("cluster: fenced: epoch %d superseded by %d; standing down", c.epoch, higher)
}

// restoreReplay rebuilds the job table from journal replay. Terminal
// jobs are restored closed (status queries across a restart keep
// working); non-terminal jobs whose result is already in the local
// store complete on the spot; the rest re-enter the table with their
// journaled placement, where reconcile re-probes the assigned worker
// — observing the result of work that kept running through the
// coordinator outage — instead of blindly re-running it.
func (c *Coordinator) restoreReplay(replay []ReplayedJob) {
	now := time.Now()
	for _, rj := range replay {
		var n int64
		if _, err := fmt.Sscanf(rj.ID, "c%d", &n); err == nil && n > c.nextID {
			c.nextID = n
		}
		job := &cjob{
			id:       rj.ID,
			key:      rj.Key,
			req:      rj.Request,
			worker:   rj.Worker,
			remoteID: rj.RemoteID,
			assigns:  rj.Assigns,
			stolen:   rj.Stolen,
			state:    service.JobQueued,
			created:  now,
			done:     make(chan struct{}),
		}
		c.jobs[job.id] = job
		c.order = append(c.order, job.id)
		c.counters.Add("replayed", 1)
		switch {
		case terminalState(rj.State):
			job.state = rj.State
			job.err, job.errKind = rj.Err, rj.ErrKind
			job.finished = now
			close(job.done)
			c.terminal++
			if rj.State == service.JobDone && rj.Worker != "" {
				c.noteCompletedLocked(rj.Key, rj.Worker)
			}
		default:
			if _, cached := c.store.GetLocal(rj.Key); cached {
				// The result landed before the crash; the journal just
				// missed the terminal record. Close it out, durably.
				job.worker, job.remoteID = "", ""
				c.byKey[job.key] = job
				c.counters.Add("cache_hits", 1)
				c.finishLocked(job, service.JobDone, "", "")
				continue
			}
			c.byKey[job.key] = job
		}
	}
	c.evictLocked()
}

// jlog counts a failed journal append. The append already happened (or
// failed) before the state transition; a failing journal degrades
// durability, not availability, and the metric is the alarm.
func (c *Coordinator) jlog(err error) {
	if err != nil {
		c.counters.Add("journal_errors", 1)
		c.cfg.Logf("cluster: journal append: %v", err)
	}
}

// Epoch returns the coordinator's fencing epoch (0 = unfenced setup).
func (c *Coordinator) Epoch() uint64 { return c.epoch }

// Fenced reports whether a higher-epoch coordinator has taken over.
func (c *Coordinator) Fenced() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fenced
}

// Journal returns the cluster journal (nil when not journaled).
func (c *Coordinator) Journal() *Journal { return c.journal }

// Done is closed when the coordinator shuts down (stream handlers hang
// off it).
func (c *Coordinator) Done() <-chan struct{} { return c.stopCh }

// Start launches the control loop.
func (c *Coordinator) Start() {
	c.wg.Add(1)
	go c.run()
}

// Shutdown stops the control loop. Worker daemons are separate
// processes and keep draining on their own; in-flight cluster job
// records freeze at their last observed state.
func (c *Coordinator) Shutdown(ctx context.Context) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	close(c.stopCh)
	c.mu.Unlock()

	doneCh := make(chan struct{})
	go func() { c.wg.Wait(); close(doneCh) }()
	select {
	case <-doneCh:
		// No terminal records are written here: for the journal, shutdown
		// is a crash, and replay + worker reconciliation is the recovery
		// path either way.
		return c.journal.Close()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Store returns the coordinator's result store.
func (c *Coordinator) Store() *service.Store { return c.store }

// Counters returns the cluster event counters.
func (c *Coordinator) Counters() *stats.Counters { return c.counters }

// Ready reports whether the coordinator can accept work: the first
// probe round has completed and at least one worker is alive.
func (c *Coordinator) Ready() (bool, string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case c.closed:
		return false, "shutting down"
	case c.fenced:
		return false, fmt.Sprintf("fenced: a newer coordinator (epoch > %d) has taken over", c.epoch)
	case !c.probed:
		return false, "first probe round pending"
	case c.aliveLocked() == 0:
		return false, "no live workers"
	}
	return true, ""
}

func (c *Coordinator) aliveLocked() int {
	n := 0
	for _, m := range c.members {
		if m.alive {
			n++
		}
	}
	return n
}

// MemberStatus is one fleet entry's probed state, for GET /v1/cluster.
type MemberStatus struct {
	Name  string `json:"name"`
	URL   string `json:"url"`
	Alive bool   `json:"alive"`
	Jobs  int    `json:"jobs"` // non-terminal cluster jobs assigned here
}

// Members snapshots the fleet, sorted by name.
func (c *Coordinator) Members() []MemberStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	assigned := make(map[string]int)
	for _, job := range c.jobs {
		if !terminalState(job.state) && job.worker != "" {
			assigned[job.worker]++
		}
	}
	out := make([]MemberStatus, 0, len(c.members))
	for _, m := range c.members {
		out = append(out, MemberStatus{Name: m.name, URL: m.url, Alive: m.alive, Jobs: assigned[m.name]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func terminalState(st service.JobState) bool {
	return st == service.JobDone || st == service.JobFailed || st == service.JobCancelled
}

// Submit schedules req on the cluster. Same contract as the single-node
// scheduler: (status, created, error), dedup by content-address against
// in-flight jobs, immediate terminal job on a coordinator-cache hit,
// service.ErrQueueFull past QueueDepth.
//
// The cache probe is local-only (memory + disk): fresh work must not
// pay a fleet-wide round of peer RPCs per submission. A key some worker
// has cached anyway dedups remotely — the worker answers its dispatch
// with an instant done.
func (c *Coordinator) Submit(req service.Request) (JobStatus, bool, error) {
	key, err := req.Key() // validates and canonicalizes
	if err != nil {
		return JobStatus{}, false, err
	}
	_, cached := c.store.GetLocal(key)

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || c.fenced {
		return JobStatus{}, false, service.ErrShuttingDown
	}
	if prior := c.byKey[key]; prior != nil {
		c.counters.Add("deduped", 1)
		return c.statusLocked(prior), false, nil
	}

	job := &cjob{
		id:      fmt.Sprintf("c%06d", c.nextID+1),
		key:     key,
		req:     req,
		created: time.Now(),
		done:    make(chan struct{}),
	}
	if cached {
		c.nextID++
		c.counters.Add("submitted", 1)
		c.counters.Add("cache_hits", 1)
		c.jlog(c.journal.Submit(job.id, key, req))
		c.jlog(c.journal.Terminal(job.id, service.JobDone, "", ""))
		job.state = service.JobDone
		job.cacheHit = true
		job.finished = job.created
		close(job.done)
		c.jobs[job.id] = job
		c.order = append(c.order, job.id)
		c.terminal++
		c.evictLocked()
		return c.statusLocked(job), true, nil
	}
	if len(c.jobs)-c.terminal >= c.cfg.QueueDepth {
		return JobStatus{}, false, service.ErrQueueFull
	}
	c.nextID++
	c.counters.Add("submitted", 1)
	c.jlog(c.journal.Submit(job.id, key, req))
	job.state = service.JobQueued
	c.jobs[job.id] = job
	c.byKey[key] = job
	c.order = append(c.order, job.id)
	c.evictLocked()
	c.kickLocked()
	c.cfg.Logf("cluster: %s queued: %s key=%.12s", job.id, req.Experiment, key)
	return c.statusLocked(job), true, nil
}

// kickLocked nudges the control loop to dispatch soon.
func (c *Coordinator) kickLocked() {
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

// Job returns the identified job's snapshot.
func (c *Coordinator) Job(id string) (JobStatus, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	job, ok := c.jobs[id]
	if !ok {
		return JobStatus{}, service.ErrUnknownJob
	}
	return c.statusLocked(job), nil
}

// Jobs lists every retained job in submission order.
func (c *Coordinator) Jobs() []JobStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]JobStatus, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.statusLocked(c.jobs[id]))
	}
	return out
}

// JobCounts returns jobs per lifecycle state.
func (c *Coordinator) JobCounts() map[service.JobState]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[service.JobState]int, len(service.States))
	for _, st := range service.States {
		out[st] = 0
	}
	for _, job := range c.jobs {
		out[job.state]++
	}
	return out
}

// Wait blocks until the job is terminal or ctx is done.
func (c *Coordinator) Wait(ctx context.Context, id string) (JobStatus, error) {
	c.mu.Lock()
	job, ok := c.jobs[id]
	c.mu.Unlock()
	if !ok {
		return JobStatus{}, service.ErrUnknownJob
	}
	select {
	case <-job.done:
		return c.Job(id)
	case <-ctx.Done():
		return JobStatus{}, ctx.Err()
	}
}

// Cancel requests cancellation: unassigned queued jobs cancel on the
// spot; assigned jobs get a best-effort remote DELETE now and are
// re-DELETEd by the reconcile loop until the worker confirms, so a
// partition during cancel cannot resurrect the job.
func (c *Coordinator) Cancel(id string) (JobStatus, error) {
	c.mu.Lock()
	job, ok := c.jobs[id]
	if !ok {
		c.mu.Unlock()
		return JobStatus{}, service.ErrUnknownJob
	}
	job.cancel = true
	if !terminalState(job.state) && job.worker == "" {
		c.finishLocked(job, service.JobCancelled, "cancelled while queued", "")
	}
	worker, remoteID := job.worker, job.remoteID
	var url string
	if m := c.members[worker]; m != nil {
		url = m.url
	}
	c.mu.Unlock()

	if url != "" && remoteID != "" {
		ctx, cancel := context.WithTimeout(context.Background(), c.cfg.RPCTimeout)
		var rst service.JobStatus
		err := c.client.do(ctx, worker, http.MethodDelete, url+"/v1/jobs/"+remoteID, nil, &rst)
		cancel()
		if err == nil {
			c.mu.Lock()
			if job.worker == worker && job.remoteID == remoteID {
				c.applyRemoteLocked(job, rst)
			}
			c.mu.Unlock()
		} else {
			c.counters.Add("rpc_errors", 1)
		}
	}
	return c.Job(id)
}

// statusLocked snapshots a job.
func (c *Coordinator) statusLocked(job *cjob) JobStatus {
	st := JobStatus{
		JobStatus: service.JobStatus{
			ID:         job.id,
			State:      job.state,
			Experiment: job.req.Experiment,
			Request:    job.req,
			CacheHit:   job.cacheHit,
			Error:      job.err,
			ErrorKind:  job.errKind,
			Attempts:   job.assigns,
			Created:    job.created,
			CPI:        job.cpi,
		},
		Worker: job.worker,
		Stolen: job.stolen,
	}
	if job.state == service.JobDone {
		st.ResultKey = job.key
	}
	if !job.started.IsZero() {
		t := job.started
		st.Started = &t
	}
	if !job.finished.IsZero() {
		t := job.finished
		st.Finished = &t
	}
	return st
}

// finishLocked moves a job to a terminal state exactly once. The
// terminal record hits the journal before the transition takes effect,
// so a crash between the two replays the job as still in flight —
// at-least-once journaling, made exactly-once by content-addressing.
func (c *Coordinator) finishLocked(job *cjob, state service.JobState, errMsg, errKind string) {
	if terminalState(job.state) {
		return
	}
	c.jlog(c.journal.Terminal(job.id, state, errMsg, errKind))
	job.state = state
	job.err = errMsg
	job.errKind = errKind
	job.finished = time.Now()
	delete(c.byKey, job.key) // placement fields stay for post-mortem status

	c.terminal++
	close(job.done)
	switch state {
	case service.JobDone:
		c.counters.Add("completed", 1)
	case service.JobFailed:
		c.counters.Add("failed", 1)
	case service.JobCancelled:
		c.counters.Add("cancelled", 1)
	}
	c.evictLocked()
}

// evictLocked drops the oldest terminal jobs beyond RetainJobs.
func (c *Coordinator) evictLocked() {
	for c.terminal > c.cfg.RetainJobs {
		evicted := false
		for i, id := range c.order {
			job := c.jobs[id]
			if !terminalState(job.state) {
				continue
			}
			delete(c.jobs, id)
			c.order = append(c.order[:i], c.order[i+1:]...)
			c.terminal--
			evicted = true
			break
		}
		if !evicted {
			return
		}
	}
}

// noteCompletedLocked records which worker holds a finished key.
func (c *Coordinator) noteCompletedLocked(key, worker string) {
	if _, seen := c.completedOn[key]; !seen {
		c.completedLog = append(c.completedLog, key)
		if len(c.completedLog) > completedOnCap {
			delete(c.completedOn, c.completedLog[0])
			c.completedLog = c.completedLog[1:]
		}
	}
	c.completedOn[key] = worker
}

// applyRemoteLocked folds one observed remote job status into the
// cluster job. Remote cancellations the client never asked for (an
// out-of-band DELETE straight to the worker) requeue the job rather
// than losing it.
func (c *Coordinator) applyRemoteLocked(job *cjob, rst service.JobStatus) {
	if terminalState(job.state) {
		return
	}
	switch rst.State {
	case service.JobQueued:
		job.state = service.JobQueued
	case service.JobRunning:
		job.state = service.JobRunning
		if job.started.IsZero() {
			if rst.Started != nil {
				job.started = *rst.Started
			} else {
				job.started = time.Now()
			}
		}
	case service.JobDone:
		if job.remoteDone {
			return // already awaiting replication
		}
		job.cpi = rst.CPI
		job.remoteDone = true
		job.fetchTries = 0
		c.noteCompletedLocked(job.key, job.worker)
		// Not terminal yet: warmResults finishes the job once the result
		// is replicated. Running (not queued) so it can't be stolen or
		// re-dispatched meanwhile.
		job.state = service.JobRunning
		if job.started.IsZero() {
			job.started = time.Now()
		}
	case service.JobFailed:
		c.finishLocked(job, service.JobFailed, rst.Error, rst.ErrorKind)
	case service.JobCancelled:
		if job.cancel {
			c.finishLocked(job, service.JobCancelled, "cancelled", "")
			return
		}
		c.unassignLocked(job)
		c.counters.Add("requeued_cancelled", 1)
	}
}

// unassignLocked returns an assigned job to the dispatchable pool.
func (c *Coordinator) unassignLocked(job *cjob) {
	if job.worker != "" {
		c.jlog(c.journal.Unassign(job.id))
	}
	job.worker, job.remoteID = "", ""
	job.state = service.JobQueued
	job.remoteDone = false
	job.fetchTries = 0
	c.kickLocked()
}

// run is the control loop. Every membership and placement transition
// happens on this goroutine, which is what keeps dispatch, reconcile,
// steal and death-rehash from racing one another.
func (c *Coordinator) run() {
	defer c.wg.Done()
	c.probe() // immediate first round: readyz and dispatch need not wait
	c.dispatch()
	probeT := time.NewTicker(c.cfg.ProbeInterval)
	defer probeT.Stop()
	pollT := time.NewTicker(c.cfg.PollInterval)
	defer pollT.Stop()
	for {
		select {
		case <-c.stopCh:
			return
		case <-probeT.C:
			c.probe()
			c.dispatch()
		case <-pollT.C:
			c.reconcile()
			c.steal()
			c.dispatch()
			c.warmResults()
		case <-c.kick:
			c.dispatch()
		}
	}
}

// probe health-checks every member in parallel and applies liveness
// transitions: DeadAfter consecutive failures kill a worker (its jobs
// are re-hashed); one success revives it.
func (c *Coordinator) probe() {
	if c.Fenced() {
		return
	}
	c.mu.Lock()
	targets := make([]*member, 0, len(c.members))
	for _, m := range c.members {
		targets = append(targets, m)
	}
	c.mu.Unlock()

	results := make(map[string]bool, len(targets))
	var (
		rmu sync.Mutex
		wg  sync.WaitGroup
	)
	for _, m := range targets {
		wg.Add(1)
		go func(name, url string) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeTimeout)
			defer cancel()
			// Retries ride inside ProbeTimeout: a blip doesn't count as a
			// failed round, but a dead worker still fails the round on time.
			err := c.client.doIdempotent(ctx, name, http.MethodGet, url+"/v1/healthz", nil, nil)
			rmu.Lock()
			results[name] = err == nil
			rmu.Unlock()
		}(m.name, m.url)
	}
	wg.Wait()

	c.mu.Lock()
	defer c.mu.Unlock()
	changed := false
	for name, ok := range results {
		m := c.members[name]
		if ok {
			m.fails = 0
			if !m.alive {
				m.alive = true
				changed = true
				c.counters.Add("worker_joined", 1)
				c.jlog(c.journal.Member(name, true))
				c.cfg.Logf("cluster: worker %s alive", name)
			}
			continue
		}
		m.fails++
		if m.alive && m.fails >= c.cfg.DeadAfter {
			m.alive = false
			changed = true
			c.counters.Add("worker_dead", 1)
			c.jlog(c.journal.Member(name, false))
			c.cfg.Logf("cluster: worker %s dead after %d failed probes", name, m.fails)
			c.rehashDeadLocked(name)
		}
	}
	if changed {
		live := make([]string, 0, len(c.members))
		for _, m := range c.members {
			if m.alive {
				live = append(live, m.name)
			}
		}
		c.ring = NewRing(c.cfg.VNodes, live...)
	}
	c.probed = true
}

// rehashDeadLocked requeues every non-terminal job assigned to a dead
// worker; the next dispatch places each on the ring rebuilt without it.
func (c *Coordinator) rehashDeadLocked(name string) {
	for _, job := range c.jobs {
		if job.worker == name && !terminalState(job.state) {
			c.unassignLocked(job)
			c.counters.Add("rehashed", 1)
			c.cfg.Logf("cluster: %s rehashed off dead %s", job.id, name)
		}
	}
}

// dispatch places every unassigned queued job on its ring owner.
func (c *Coordinator) dispatch() {
	c.mu.Lock()
	if c.closed || c.fenced {
		c.mu.Unlock()
		return
	}
	ring := c.ring
	urls := c.liveURLsLocked()
	var pending []*cjob
	for _, id := range c.order {
		job := c.jobs[id]
		if job.state == service.JobQueued && job.worker == "" && !job.cancel {
			pending = append(pending, job)
		}
	}
	c.mu.Unlock()
	if ring.Len() == 0 || len(pending) == 0 {
		return
	}

	for _, job := range pending {
		owner, ok := ring.Owner(job.key)
		if !ok {
			return
		}
		url := urls[owner]
		if url == "" {
			continue
		}
		c.mu.Lock()
		if job.assigns >= c.cfg.MaxAssigns {
			c.finishLocked(job, service.JobFailed,
				fmt.Sprintf("exceeded %d worker assignments", c.cfg.MaxAssigns), "cluster")
			c.mu.Unlock()
			continue
		}
		c.mu.Unlock()
		c.assign(job, owner, url, false)
	}
}

// assign submits one job to one worker and records the placement. The
// steal flag marks reassignments taken from a straggler.
func (c *Coordinator) assign(job *cjob, worker, url string, steal bool) {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.RPCTimeout)
	defer cancel()
	var sr struct {
		service.JobStatus
		Deduped bool `json:"deduped"`
	}
	err := c.client.do(ctx, worker, http.MethodPost, url+"/v1/jobs", job.req, &sr)
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		if StatusCode(err) == http.StatusTooManyRequests {
			c.counters.Add("dispatch_backpressure", 1)
		} else {
			c.counters.Add("rpc_errors", 1)
			c.cfg.Logf("cluster: dispatch %s to %s: %v", job.id, worker, err)
		}
		return // stays unassigned; next tick retries
	}
	if terminalState(job.state) || job.cancel || job.worker != "" {
		return // cancelled or re-placed while the RPC was in flight
	}
	stolen := job.stolen
	if steal {
		stolen++
	}
	c.jlog(c.journal.Assign(job.id, worker, sr.ID, job.assigns+1, stolen, steal))
	job.worker = worker
	job.remoteID = sr.ID
	job.assigns++
	if steal {
		job.stolen++
		c.counters.Add("stolen", 1)
	}
	c.counters.Add("dispatched", 1)
	c.cfg.Logf("cluster: %s -> %s as %s", job.id, worker, sr.ID)
	c.applyRemoteLocked(job, sr.JobStatus) // instant done on a worker cache hit
}

// reconcile polls each live worker's job list and folds the observed
// states into cluster jobs; lost jobs (a worker that restarted without
// its journal) requeue, and unconfirmed cancels are re-issued.
func (c *Coordinator) reconcile() {
	if c.Fenced() {
		return
	}
	c.mu.Lock()
	byWorker := make(map[string][]*cjob)
	urls := c.liveURLsLocked()
	for _, job := range c.jobs {
		if !terminalState(job.state) && job.worker != "" && job.remoteID != "" {
			byWorker[job.worker] = append(byWorker[job.worker], job)
		}
	}
	c.mu.Unlock()

	type delTarget struct {
		worker, url, remoteID string
		job                   *cjob
	}
	var dels []delTarget
	// Every live worker is listed, not just those holding assignments:
	// the listing doubles as the epoch-fence re-registration handshake
	// (a worker that adopted a new coordinator epoch reports not-ready
	// until the coordinator has seen its job table), so idle workers
	// must be reconciled too.
	for worker, url := range urls {
		assigned := byWorker[worker]
		ctx, cancel := context.WithTimeout(context.Background(), c.cfg.RPCTimeout)
		var list struct {
			Jobs []service.JobStatus `json:"jobs"`
		}
		err := c.client.doIdempotent(ctx, worker, http.MethodGet, url+"/v1/jobs", nil, &list)
		cancel()
		if err != nil {
			c.counters.Add("rpc_errors", 1)
			continue
		}
		byID := make(map[string]service.JobStatus, len(list.Jobs))
		for _, st := range list.Jobs {
			byID[st.ID] = st
		}
		c.mu.Lock()
		for _, job := range assigned {
			if terminalState(job.state) || job.worker != worker {
				continue
			}
			rst, ok := byID[job.remoteID]
			if !ok {
				// The worker no longer knows the job: it restarted without
				// journal replay or evicted the record. Rerun elsewhere.
				c.unassignLocked(job)
				c.counters.Add("requeued_lost", 1)
				c.cfg.Logf("cluster: %s lost by %s, requeued", job.id, worker)
				continue
			}
			c.applyRemoteLocked(job, rst)
			if job.cancel && !terminalState(job.state) && !job.remoteDone {
				dels = append(dels, delTarget{worker, url, job.remoteID, job})
			}
		}
		c.mu.Unlock()
	}

	for _, d := range dels {
		ctx, cancel := context.WithTimeout(context.Background(), c.cfg.RPCTimeout)
		var rst service.JobStatus
		err := c.client.do(ctx, d.worker, http.MethodDelete, d.url+"/v1/jobs/"+d.remoteID, nil, &rst)
		cancel()
		if err != nil {
			c.counters.Add("rpc_errors", 1)
			continue
		}
		c.mu.Lock()
		if d.job.worker == d.worker && d.job.remoteID == d.remoteID {
			c.applyRemoteLocked(d.job, rst)
		}
		c.mu.Unlock()
	}
}

// steal rebalances: when a worker sits idle while another holds at
// least StealMargin worker-queued cluster jobs, the coordinator cancels
// the straggler's most recently queued job and resubmits it to the idle
// worker. One steal per idle worker per round keeps the churn bounded.
func (c *Coordinator) steal() {
	if c.Fenced() {
		return
	}
	c.mu.Lock()
	urls := c.liveURLsLocked()
	queuedBy := make(map[string][]*cjob)
	busy := make(map[string]int)
	for _, job := range c.jobs {
		if terminalState(job.state) || job.worker == "" {
			continue
		}
		busy[job.worker]++
		if job.state == service.JobQueued && !job.cancel {
			queuedBy[job.worker] = append(queuedBy[job.worker], job)
		}
	}
	var idle []string
	for name := range urls {
		if busy[name] == 0 {
			idle = append(idle, name)
		}
	}
	sort.Strings(idle)
	c.mu.Unlock()
	if len(idle) == 0 {
		return
	}

	for _, thief := range idle {
		// Most-loaded straggler with at least StealMargin queued.
		var victim string
		for name, q := range queuedBy {
			if name == thief || urls[name] == "" || len(q) < c.cfg.StealMargin {
				continue
			}
			if victim == "" || len(q) > len(queuedBy[victim]) ||
				(len(q) == len(queuedBy[victim]) && name < victim) {
				victim = name
			}
		}
		if victim == "" {
			return
		}
		q := queuedBy[victim]
		job := q[len(q)-1] // LIFO: keep the victim's FIFO head in place
		queuedBy[victim] = q[:len(q)-1]

		ctx, cancel := context.WithTimeout(context.Background(), c.cfg.RPCTimeout)
		var rst service.JobStatus
		err := c.client.do(ctx, victim, http.MethodDelete, urls[victim]+"/v1/jobs/"+job.remoteID, nil, &rst)
		cancel()
		if err != nil {
			if StatusCode(err) == http.StatusNotFound {
				c.mu.Lock()
				if !terminalState(job.state) && job.worker == victim {
					c.unassignLocked(job)
					c.counters.Add("requeued_lost", 1)
				}
				c.mu.Unlock()
			} else {
				c.counters.Add("rpc_errors", 1)
			}
			continue
		}
		if rst.State == service.JobDone || rst.State == service.JobFailed {
			// Raced: the job finished between the poll and the DELETE.
			c.mu.Lock()
			if job.worker == victim {
				c.applyRemoteLocked(job, rst)
			}
			c.mu.Unlock()
			continue
		}
		// Cancelled (or cancelling): move it to the thief. Results are
		// content-addressed and deterministic, so even a cancel that lost
		// the race and let the run finish cannot corrupt anything — the
		// two shards would store byte-identical results.
		c.mu.Lock()
		if terminalState(job.state) || job.cancel || job.worker != victim {
			c.mu.Unlock()
			continue
		}
		c.jlog(c.journal.Unassign(job.id))
		job.worker, job.remoteID = "", ""
		c.mu.Unlock()
		c.assign(job, thief, urls[thief], true)
	}
}

// warmResults replicates worker-reported results into the
// coordinator's own store and only then marks those jobs done (a Get
// drives the store's peer tier, which asks the completing worker
// first). This is the durability handshake: a job is never terminal
// while its result lives only on a shard that might die. A result that
// stays unfetchable for 3 rounds — worker died right after finishing —
// sends the job back to dispatch for a rerun; determinism and
// content-addressing make the rerun byte-identical, so nothing is
// double-counted.
func (c *Coordinator) warmResults() {
	if c.Fenced() {
		return
	}
	c.mu.Lock()
	var pend []*cjob
	for _, job := range c.jobs {
		if job.remoteDone && !terminalState(job.state) {
			pend = append(pend, job)
		}
	}
	c.mu.Unlock()
	sort.Slice(pend, func(i, j int) bool { return pend[i].id < pend[j].id })
	var landed []string
	for _, job := range pend {
		_, ok := c.store.Get(job.key)
		c.mu.Lock()
		switch {
		case terminalState(job.state) || !job.remoteDone:
			// raced with a concurrent transition; nothing to do
		case ok:
			c.counters.Add("results_warmed", 1)
			c.finishLocked(job, service.JobDone, "", "")
			landed = append(landed, job.key)
		default:
			job.fetchTries++
			if job.fetchTries >= 3 {
				c.counters.Add("warm_failures", 1)
				c.cfg.Logf("cluster: %s done on %s but result unreachable; rerunning", job.id, job.worker)
				c.unassignLocked(job)
			}
		}
		c.mu.Unlock()
	}
	for _, key := range landed {
		c.replicate(key)
	}
}

// replicate pushes a freshly landed result envelope to the key's ring
// owner and successor (RF=2 across the worker fleet, on top of the
// coordinator's own copy), skipping the shard that completed it — that
// one already has the result on disk. Losing any single node after
// this point loses no result: the peer-fetch path falls back to the
// successor when the owner is gone. Failures are counted, not retried;
// the coordinator's copy already satisfies the done ⇒ durable
// handshake, and the next peer fetch self-heals the replica.
func (c *Coordinator) replicate(key string) {
	env, ok := c.store.Envelope(key)
	if !ok {
		c.counters.Add("replica_errors", 1)
		return
	}
	c.mu.Lock()
	urls := c.liveURLsLocked()
	completer := c.completedOn[key]
	owners := c.ring.Owners(key, 2)
	c.mu.Unlock()
	for _, name := range owners {
		if name == completer || urls[name] == "" {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), c.cfg.RPCTimeout)
		err := c.client.putBytes(ctx, name, urls[name]+"/v1/store/"+key, env)
		cancel()
		if err != nil {
			c.counters.Add("replica_errors", 1)
			c.cfg.Logf("cluster: replicate %.12s to %s: %v", key, name, err)
			continue
		}
		c.counters.Add("replicated", 1)
	}
}

// liveURLsLocked maps live member name → base URL.
func (c *Coordinator) liveURLsLocked() map[string]string {
	out := make(map[string]string, len(c.members))
	for _, m := range c.members {
		if m.alive {
			out[m.name] = m.url
		}
	}
	return out
}

// fetchEnvelope is the coordinator store's peer tier: candidates are
// the worker that completed the key (authoritative for stolen and
// rehashed jobs), then the ring owner and its successor (the RF=2
// replica holder), then the rest of the live fleet. First hit wins;
// all-404 is a clean miss; a miss with transport errors reports the
// first error so the store counts it.
func (c *Coordinator) fetchEnvelope(ctx context.Context, key string) ([]byte, error) {
	c.mu.Lock()
	urls := c.liveURLsLocked()
	var cands []string
	seen := make(map[string]bool)
	add := func(name string) {
		if name != "" && urls[name] != "" && !seen[name] {
			seen[name] = true
			cands = append(cands, name)
		}
	}
	add(c.completedOn[key])
	for _, owner := range c.ring.Owners(key, 2) {
		add(owner)
	}
	rest := make([]string, 0, len(urls))
	for name := range urls {
		rest = append(rest, name)
	}
	sort.Strings(rest)
	for _, name := range rest {
		add(name)
	}
	c.mu.Unlock()

	var firstErr error
	for _, name := range cands {
		b, err := c.client.getBytesIdempotent(ctx, name, urls[name]+"/v1/store/"+key)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if b != nil {
			return b, nil
		}
	}
	return nil, firstErr
}
