package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"acb/internal/service"
	"acb/internal/wal"
)

// StandbyConfig configures a warm standby coordinator.
type StandbyConfig struct {
	// Primary is the primary coordinator's base URL.
	Primary string
	// JournalPath is where the standby mirrors the primary's journal
	// ("" = memory-only mirror; promotion then recovers from the tailed
	// records alone).
	JournalPath string
	// Lease is the standby's own epoch lease; promotion advances it past
	// every epoch the primary was seen at. nil = memory-only lease.
	Lease *Lease
	// Cluster is the coordinator configuration used after promotion (and
	// for the tail cadence before it: ProbeInterval and DeadAfter set how
	// long the primary may go silent before the standby takes over).
	Cluster Config
	// Store backs the promoted coordinator's result cache (nil = a fresh
	// memory-only store; results re-warm from the workers).
	Store *service.Store
}

// Standby is a warm spare coordinator: it tails the primary's journal
// stream into a local fsync'd mirror and, when the primary's heartbeats
// lapse, promotes itself — advance the lease epoch past the primary's,
// replay the mirrored journal into a fresh Coordinator, and start
// serving the coordinator API where it previously answered 503. Workers
// learn of the takeover implicitly: the promoted coordinator's RPCs
// carry a higher epoch, which the worker fence adopts, and the old
// primary's stamps are rejected from then on.
type Standby struct {
	cfg  StandbyConfig
	http *http.Client // no global timeout: the tail is long-lived

	mu           sync.Mutex
	records      []json.RawMessage // mirrored journal since last stream head
	wlog         *wal.Log          // fsync'd mirror (nil = memory-only)
	primaryEpoch uint64            // highest epoch seen on the stream
	lastSeen     time.Time         // last stream byte (meta, record or heartbeat)
	promoted     bool
	coord        *Coordinator
	handler      http.Handler

	stopCh   chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewStandby builds a standby. Call Start to begin tailing.
func NewStandby(cfg StandbyConfig) (*Standby, error) {
	if cfg.Primary == "" {
		return nil, fmt.Errorf("cluster: standby needs a primary URL")
	}
	cfg.Cluster.fillDefaults()
	s := &Standby{
		cfg:    cfg,
		http:   &http.Client{},
		stopCh: make(chan struct{}),
	}
	if cfg.JournalPath != "" {
		// Any records mirrored before a standby restart are the baseline;
		// the next successful tail resets them to the primary's stream
		// head, and they only matter if the standby promotes before it
		// ever reaches the primary.
		recs, err := wal.Replay(cfg.JournalPath, JournalVersion)
		if err != nil {
			return nil, err
		}
		asAny := make([]interface{}, len(recs))
		for i, r := range recs {
			asAny[i] = r
		}
		wlog, err := wal.Create(cfg.JournalPath, JournalVersion, asAny)
		if err != nil {
			return nil, err
		}
		s.records = recs
		s.wlog = wlog
	}
	s.lastSeen = time.Now()
	return s, nil
}

// Start launches the tail and the promotion watchdog.
func (s *Standby) Start() {
	s.wg.Add(2)
	go s.tailLoop()
	go s.watchdog()
}

// Shutdown stops tailing (or, after promotion, shuts the coordinator
// down).
func (s *Standby) Shutdown(ctx context.Context) error {
	s.stopOnce.Do(func() { close(s.stopCh) })
	doneCh := make(chan struct{})
	go func() { s.wg.Wait(); close(doneCh) }()
	select {
	case <-doneCh:
	case <-ctx.Done():
		return ctx.Err()
	}
	s.mu.Lock()
	coord, wlog := s.coord, s.wlog
	s.wlog = nil
	s.mu.Unlock()
	if coord != nil {
		return coord.Shutdown(ctx)
	}
	if wlog != nil {
		return wlog.Close()
	}
	return nil
}

// Promoted reports whether this standby has taken over.
func (s *Standby) Promoted() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.promoted
}

// Coordinator returns the promoted coordinator (nil before promotion).
func (s *Standby) Coordinator() *Coordinator {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.coord
}

// tailLoop keeps one journal stream open against the primary,
// reconnecting with the probe cadence on any failure. Stream failures
// are not themselves promotion triggers — the watchdog's silence
// timer is — so a flapping connection to a live primary just
// re-streams.
func (s *Standby) tailLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stopCh:
			return
		default:
		}
		if s.Promoted() {
			return
		}
		s.tailOnce()
		select {
		case <-s.stopCh:
			return
		case <-time.After(s.cfg.Cluster.ProbeInterval):
		}
	}
}

// tailOnce runs one journal stream to exhaustion. The stream replays
// from the primary's journal head, so the local mirror resets on every
// (re)connect: what the primary has is the truth, and the mirror is a
// byte-for-byte copy of it.
func (s *Standby) tailOnce() {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		select {
		case <-s.stopCh:
			cancel()
		case <-ctx.Done():
		}
	}()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.cfg.Primary+"/v1/journal:stream", nil)
	if err != nil {
		return
	}
	resp, err := s.http.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 4<<20)
	for sc.Scan() {
		line := make([]byte, len(sc.Bytes()))
		copy(line, sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ctl struct {
			Meta  bool   `json:"meta"`
			HB    bool   `json:"hb"`
			Epoch uint64 `json:"epoch"`
		}
		if err := json.Unmarshal(line, &ctl); err != nil {
			continue
		}
		s.mu.Lock()
		if s.promoted {
			s.mu.Unlock()
			return
		}
		s.lastSeen = time.Now()
		switch {
		case ctl.Meta:
			if ctl.Epoch > s.primaryEpoch {
				s.primaryEpoch = ctl.Epoch
			}
			// Stream head: the primary replays its whole journal, so drop
			// the previous mirror and start clean.
			s.records = s.records[:0]
			if s.wlog != nil {
				s.wlog.Close()
				if wlog, err := wal.Create(s.cfg.JournalPath, JournalVersion, nil); err == nil {
					s.wlog = wlog
				} else {
					s.wlog = nil
					s.cfg.Cluster.Logf("cluster: standby mirror reset: %v", err)
				}
			}
		case ctl.HB:
			// heartbeat only refreshes lastSeen
		default:
			s.records = append(s.records, json.RawMessage(line))
			if s.wlog != nil {
				if err := s.wlog.Append(json.RawMessage(line)); err != nil {
					s.cfg.Cluster.Logf("cluster: standby mirror append: %v", err)
				}
			}
		}
		s.mu.Unlock()
	}
}

// watchdog promotes when the primary has been silent — no records, no
// heartbeats, no successful reconnect — for DeadAfter probe intervals:
// the same policy the primary applies to workers, pointed back at it.
func (s *Standby) watchdog() {
	defer s.wg.Done()
	silence := time.Duration(s.cfg.Cluster.DeadAfter) * s.cfg.Cluster.ProbeInterval
	t := time.NewTicker(s.cfg.Cluster.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-t.C:
			s.mu.Lock()
			lapsed := !s.promoted && time.Since(s.lastSeen) > silence
			s.mu.Unlock()
			if lapsed {
				s.promote()
				return
			}
		}
	}
}

// promote turns the standby into the primary: fence the old one out by
// advancing the lease epoch past everything observed, replay the
// mirrored journal into a job table, and start a coordinator that
// reconciles with the workers — in-flight jobs are re-probed where the
// journal placed them, not re-run.
func (s *Standby) promote() {
	s.mu.Lock()
	if s.promoted {
		s.mu.Unlock()
		return
	}
	s.promoted = true
	if s.wlog != nil {
		s.wlog.Close()
		s.wlog = nil
	}
	records := s.records
	epoch := s.primaryEpoch
	s.mu.Unlock()

	if le := s.cfg.Lease.Epoch(); le > epoch {
		epoch = le
	}
	epoch++
	if err := s.cfg.Lease.Advance(epoch); err != nil {
		// Advancing past a corrupt lease can fail; promote anyway — a
		// standby that refuses to take over loses the whole sweep, while
		// an un-fsync'd epoch only risks a fencing gap after yet another
		// crash.
		s.cfg.Cluster.Logf("cluster: standby lease advance: %v", err)
	}

	cfg := s.cfg.Cluster
	cfg.Epoch = epoch
	cfg.Promoted = true
	if s.cfg.JournalPath != "" {
		journal, replay, err := OpenJournal(s.cfg.JournalPath)
		if err != nil {
			s.cfg.Cluster.Logf("cluster: standby journal open: %v; recovering from memory", err)
			cfg.Journal, cfg.Replay = nil, reduceClusterJournal(records)
		} else {
			cfg.Journal, cfg.Replay = journal, replay
		}
	} else {
		cfg.Replay = reduceClusterJournal(records)
	}

	store := s.cfg.Store
	if store == nil {
		store, _ = service.NewStore(256, "") // memory-only never fails
	}
	coord, err := New(cfg, store)
	if err != nil {
		s.cfg.Cluster.Logf("cluster: standby promotion failed: %v", err)
		return
	}
	coord.Start()
	s.mu.Lock()
	s.coord = coord
	s.handler = NewServer(coord).Handler()
	s.mu.Unlock()
	s.cfg.Cluster.Logf("cluster: standby promoted to primary at epoch %d (%d journal records)", epoch, len(records))
}

// Handler serves the standby's HTTP face: health and role endpoints
// while tailing (everything else 503s with Retry-After, so clients and
// load balancers fail over cleanly), and the full coordinator API once
// promoted.
func (s *Standby) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		h := s.handler
		s.mu.Unlock()
		if h != nil {
			h.ServeHTTP(w, r)
			return
		}
		switch {
		case r.Method == http.MethodGet && r.URL.Path == "/v1/healthz":
			writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
		case r.Method == http.MethodGet && r.URL.Path == "/v1/readyz":
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{
				"status": "not ready",
				"reason": "standby: tailing " + s.cfg.Primary,
			})
		case r.Method == http.MethodGet && r.URL.Path == "/v1/cluster":
			s.mu.Lock()
			epoch := s.primaryEpoch
			s.mu.Unlock()
			writeJSON(w, http.StatusOK, map[string]interface{}{
				"node":    s.cfg.Cluster.Node,
				"role":    "standby",
				"primary": s.cfg.Primary,
				"epoch":   epoch,
			})
		default:
			w.Header().Set("Retry-After", "2")
			writeError(w, http.StatusServiceUnavailable,
				fmt.Errorf("cluster: standby for %s; not serving the coordinator API", s.cfg.Primary))
		}
	})
}
