package cluster

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"acb/internal/service"
)

// TestClusterJournalRoundTrip: submit/assign/unassign/terminal records
// survive a close-and-reopen with last-placement-wins semantics, and
// terminal jobs come back frozen so replay never re-runs them.
func TestClusterJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cluster.journal")
	j, replay, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(replay) != 0 {
		t.Fatalf("fresh journal replayed %d jobs", len(replay))
	}
	reqs := tableReqs(3)
	// c1: placed then finished. c2: placed, stolen to another worker.
	// c3: placed then unassigned (its worker died).
	j.Submit("c1", mustKey(t, reqs[0]), reqs[0])
	j.Assign("c1", "w1", "j1", 1, 0, false)
	j.Terminal("c1", service.JobDone, "", "")
	j.Submit("c2", mustKey(t, reqs[1]), reqs[1])
	j.Assign("c2", "w1", "j2", 1, 0, false)
	j.Unassign("c2")
	j.Assign("c2", "w2", "j9", 2, 1, true)
	j.Submit("c3", mustKey(t, reqs[2]), reqs[2])
	j.Assign("c3", "w1", "j3", 1, 0, false)
	j.Unassign("c3")
	j.Member("w1", false)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, replay, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(replay) != 3 {
		t.Fatalf("replayed %d jobs, want 3", len(replay))
	}
	byID := make(map[string]ReplayedJob, len(replay))
	for i, rj := range replay {
		byID[rj.ID] = rj
		if want := []string{"c1", "c2", "c3"}[i]; rj.ID != want {
			t.Errorf("replay order: position %d is %s, want %s", i, rj.ID, want)
		}
	}
	if rj := byID["c1"]; rj.State != service.JobDone {
		t.Errorf("c1 state %q, want done", rj.State)
	}
	rj := byID["c2"]
	if rj.State != "" || rj.Worker != "w2" || rj.RemoteID != "j9" || rj.Assigns != 2 || rj.Stolen != 1 {
		t.Errorf("c2 replay = %+v, want pending on w2/j9 assigns=2 stolen=1", rj)
	}
	if rj := byID["c3"]; rj.State != "" || rj.Worker != "" || rj.RemoteID != "" {
		t.Errorf("c3 replay = %+v, want pending and unplaced", rj)
	}
	if byID["c2"].Request.Seed != reqs[1].Seed {
		t.Errorf("c2 request not preserved: %+v", byID["c2"].Request)
	}
}

// TestClusterJournalCompaction: reopening drops terminal jobs from the
// file (they are returned once for status continuity, then gone) and
// keeps only one submit plus one placement per survivor.
func TestClusterJournalCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cluster.journal")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	reqs := tableReqs(2)
	j.Submit("c1", mustKey(t, reqs[0]), reqs[0])
	j.Assign("c1", "w1", "j1", 1, 0, false)
	j.Terminal("c1", service.JobDone, "", "")
	j.Submit("c2", mustKey(t, reqs[1]), reqs[1])
	for i := 0; i < 5; i++ { // churn that compaction should squash
		j.Assign("c2", "w1", "j2", i+1, i, i > 0)
		j.Unassign("c2")
	}
	j.Assign("c2", "w2", "jF", 7, 5, true)
	j.Close()

	j2, replay, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j2.Close()
	if len(replay) != 2 {
		t.Fatalf("first reopen replayed %d jobs, want 2", len(replay))
	}

	// The compacted file holds exactly submit+assign for c2 and nothing
	// about c1.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	content := string(b)
	if strings.Contains(content, `"c1"`) {
		t.Errorf("terminal job c1 survived compaction:\n%s", content)
	}
	lines := 0
	for _, ln := range strings.Split(strings.TrimSpace(content), "\n") {
		if ln != "" {
			lines++
		}
	}
	if lines != 3 { // version header + submit + assign
		t.Errorf("compacted file has %d lines, want 3:\n%s", lines, content)
	}

	// Second reopen: c1 is gone for good, c2 keeps its last placement.
	j3, replay, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j3.Close()
	if len(replay) != 1 || replay[0].ID != "c2" {
		t.Fatalf("second reopen replay = %+v, want just c2", replay)
	}
	if rj := replay[0]; rj.Worker != "w2" || rj.RemoteID != "jF" || rj.Assigns != 7 || rj.Stolen != 5 {
		t.Errorf("c2 placement lost in compaction: %+v", rj)
	}
}

// TestClusterJournalTornTail: a partial last line — the crash landing
// mid-append — is dropped on replay; every complete record before it
// survives.
func TestClusterJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cluster.journal")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	reqs := tableReqs(2)
	j.Submit("c1", mustKey(t, reqs[0]), reqs[0])
	j.Submit("c2", mustKey(t, reqs[1]), reqs[1])
	j.Close()

	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"done","id":"c2","tr`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, replay, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("torn tail broke replay: %v", err)
	}
	j2.Close()
	if len(replay) != 2 {
		t.Fatalf("replayed %d jobs, want 2", len(replay))
	}
	if replay[1].ID != "c2" || replay[1].State != "" {
		t.Errorf("torn terminal record applied: c2 = %+v, want still pending", replay[1])
	}
}

// TestClusterJournalSnapshot: the in-memory mirror that backs
// /v1/journal:stream replays from any offset and signals appends.
func TestClusterJournalSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cluster.journal")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	req := tableReqs(1)[0]
	j.Submit("c1", mustKey(t, req), req)

	recs, next, updated := j.Snapshot(0)
	if len(recs) != 1 || next != 1 {
		t.Fatalf("snapshot(0) = %d records next=%d, want 1/1", len(recs), next)
	}
	select {
	case <-updated:
		t.Fatal("updated channel closed before any append")
	default:
	}
	go j.Assign("c1", "w1", "j1", 1, 0, false)
	select {
	case <-updated:
	case <-time.After(5 * time.Second):
		t.Fatal("append never signalled the stream")
	}
	recs, next, _ = j.Snapshot(next)
	if len(recs) != 1 || next != 2 {
		t.Fatalf("incremental snapshot = %d records next=%d, want 1/2", len(recs), next)
	}
	if !strings.Contains(string(recs[0]), `"assign"`) {
		t.Errorf("incremental record = %s, want the assign", recs[0])
	}
}
