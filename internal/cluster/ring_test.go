package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"
)

func hexKey(i int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
	return hex.EncodeToString(sum[:])
}

// TestRingDeterministicOwner: ownership is a pure function of the
// member set — two independently built rings agree on every key, and
// node insertion order is irrelevant.
func TestRingDeterministicOwner(t *testing.T) {
	a := NewRing(0, "w1", "w2", "w3")
	b := NewRing(0, "w3", "w1", "w2")
	for i := 0; i < 256; i++ {
		k := hexKey(i)
		oa, ok := a.Owner(k)
		if !ok {
			t.Fatal("ring with members owns nothing")
		}
		ob, _ := b.Owner(k)
		if oa != ob {
			t.Fatalf("key %s: owner %s vs %s across build orders", k, oa, ob)
		}
	}
}

// TestRingBalance: with 64 vnodes each, three shards split 3000 keys
// within a loose band — no shard starves or hogs.
func TestRingBalance(t *testing.T) {
	r := NewRing(0, "w1", "w2", "w3")
	counts := make(map[string]int)
	const keys = 3000
	for i := 0; i < keys; i++ {
		o, _ := r.Owner(hexKey(i))
		counts[o]++
	}
	for node, n := range counts {
		frac := float64(n) / keys
		if frac < 0.15 || frac > 0.55 {
			t.Errorf("node %s owns %.0f%% of keys (counts %v)", node, frac*100, counts)
		}
	}
	if len(counts) != 3 {
		t.Fatalf("only %d of 3 nodes own keys: %v", len(counts), counts)
	}
}

// TestRingStability: removing one node moves only that node's keys —
// every key owned by a surviving node keeps its owner. This is the
// property the peer result cache depends on.
func TestRingStability(t *testing.T) {
	full := NewRing(0, "w1", "w2", "w3")
	reduced := NewRing(0, "w1", "w3")
	moved := 0
	for i := 0; i < 1000; i++ {
		k := hexKey(i)
		before, _ := full.Owner(k)
		after, _ := reduced.Owner(k)
		if before != "w2" {
			if after != before {
				t.Fatalf("key %s moved %s→%s though its owner survived", k, before, after)
			}
			continue
		}
		moved++
		if after == "w2" {
			t.Fatalf("key %s still owned by removed node", k)
		}
	}
	if moved == 0 {
		t.Fatal("w2 owned nothing; balance test should have caught this")
	}
}

// TestRingOwners: the replica chain starts at the owner, never repeats
// a node, clamps to the member count, and is deterministic — the
// properties RF=2 result replication and successor peer-fetch rest on.
func TestRingOwners(t *testing.T) {
	r := NewRing(0, "w1", "w2", "w3")
	for i := 0; i < 512; i++ {
		k := hexKey(i)
		owner, _ := r.Owner(k)
		chain := r.Owners(k, 2)
		if len(chain) != 2 {
			t.Fatalf("key %s: Owners(2) = %v", k, chain)
		}
		if chain[0] != owner {
			t.Fatalf("key %s: chain starts at %s, Owner says %s", k, chain[0], owner)
		}
		if chain[1] == chain[0] {
			t.Fatalf("key %s: replica on the same node %v", k, chain)
		}
		if again := r.Owners(k, 2); again[0] != chain[0] || again[1] != chain[1] {
			t.Fatalf("key %s: Owners not deterministic: %v vs %v", k, chain, again)
		}
	}
	// Successors spread: w1's keys must not all replicate to one node.
	succ := make(map[string]int)
	for i := 0; i < 1000; i++ {
		chain := r.Owners(hexKey(i), 2)
		if chain[0] == "w1" {
			succ[chain[1]]++
		}
	}
	if len(succ) < 2 {
		t.Errorf("all of w1's replicas landed on one node: %v", succ)
	}
	// Clamps: more replicas than members returns them all, once each;
	// n<=0 and the empty ring return nothing.
	all := r.Owners(hexKey(1), 5)
	if len(all) != 3 {
		t.Fatalf("Owners(5) on 3 nodes = %v", all)
	}
	seen := map[string]bool{}
	for _, n := range all {
		if seen[n] {
			t.Fatalf("Owners(5) repeats %s: %v", n, all)
		}
		seen[n] = true
	}
	if got := r.Owners(hexKey(1), 0); got != nil {
		t.Errorf("Owners(0) = %v, want nil", got)
	}
	if got := NewRing(0).Owners(hexKey(1), 2); got != nil {
		t.Errorf("empty ring Owners = %v, want nil", got)
	}
}

// TestRingEdges: empty ring owns nothing; single node owns everything;
// duplicates and empty names collapse; non-hex keys still resolve.
func TestRingEdges(t *testing.T) {
	if _, ok := NewRing(0).Owner(hexKey(1)); ok {
		t.Fatal("empty ring claimed an owner")
	}
	solo := NewRing(0, "only")
	for i := 0; i < 32; i++ {
		if o, ok := solo.Owner(hexKey(i)); !ok || o != "only" {
			t.Fatalf("single-node ring returned (%q, %v)", o, ok)
		}
	}
	r := NewRing(0, "w1", "w1", "", "w2")
	if r.Len() != 2 {
		t.Fatalf("duplicates/empties not collapsed: %v", r.Nodes())
	}
	if o, ok := r.Owner("not-a-hex-key"); !ok || o == "" {
		t.Fatal("non-hex key did not resolve")
	}
}
