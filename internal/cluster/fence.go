package cluster

import (
	"fmt"
	"net/http"
	"strconv"
	"sync"
)

// EpochHeader carries the coordinator's fencing epoch on every
// inter-node RPC (and the worker's current epoch on a 409 rejection, so
// a stale coordinator learns what fenced it).
const EpochHeader = "X-Acbd-Epoch"

// Fence is the worker-side half of the epoch protocol: an HTTP
// middleware wrapped around the worker's service handler. Requests
// without an epoch header (direct clients, peer store fetches) pass
// untouched. Epoch-stamped requests — coordinator RPCs — are compared
// against the highest epoch this worker has accepted: higher adopts,
// equal passes, lower is rejected with 409 Conflict and the current
// epoch echoed back. That rejection is what makes split-brain
// impossible: after a standby promotes, the partitioned old primary's
// every dispatch, steal and cancel bounces off the fleet.
//
// The fence also backs the worker's /v1/readyz: after adopting a new
// epoch the worker reports not-ready until the new coordinator has
// listed its jobs (GET /v1/jobs at the current epoch) — i.e. until its
// state has been reconciled into the new job table. Load balancers
// should not route around a worker the active coordinator hasn't seen.
type Fence struct {
	mu         sync.Mutex
	epoch      uint64
	reconciled bool
	rejected   int64
}

// NewFence returns a fence at epoch 0 (never clustered: everything
// passes, readyz unaffected).
func NewFence() *Fence { return &Fence{} }

// Epoch returns the highest coordinator epoch accepted so far.
func (f *Fence) Epoch() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.epoch
}

// Rejected returns how many stale-epoch RPCs have been fenced off.
func (f *Fence) Rejected() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rejected
}

// Ready is a service.Server readiness hook: not ready between adopting
// a new coordinator epoch and being reconciled by it.
func (f *Fence) Ready() (bool, string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.epoch != 0 && !f.reconciled {
		return false, fmt.Sprintf("re-registering with coordinator epoch %d", f.epoch)
	}
	return true, ""
}

// Middleware wraps next with the epoch gate.
func (f *Fence) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h := r.Header.Get(EpochHeader)
		if h == "" {
			next.ServeHTTP(w, r)
			return
		}
		n, err := strconv.ParseUint(h, 10, 64)
		if err != nil || n == 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("cluster: bad %s %q", EpochHeader, h))
			return
		}
		f.mu.Lock()
		if n < f.epoch {
			cur := f.epoch
			f.rejected++
			f.mu.Unlock()
			w.Header().Set(EpochHeader, strconv.FormatUint(cur, 10))
			writeError(w, http.StatusConflict,
				fmt.Errorf("cluster: stale coordinator epoch %d (current %d)", n, cur))
			return
		}
		if n > f.epoch {
			f.epoch = n
			f.reconciled = false
		}
		// The new coordinator listing our jobs is the reconciliation
		// handshake: our state is now folded into its job table.
		if !f.reconciled && r.Method == http.MethodGet && r.URL.Path == "/v1/jobs" {
			f.reconciled = true
		}
		f.mu.Unlock()
		next.ServeHTTP(w, r)
	})
}
