package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"acb/internal/expo"
	"acb/internal/service"
)

// Server is the coordinator's HTTP front end. It speaks a superset of
// the single-node API — same job and result endpoints, same status
// shapes — so every existing client (acbd submit, curl scripts, the CI
// smoke jobs) points at a coordinator unchanged, plus the cluster-only
// endpoints:
//
//	POST /v1/jobs:batch      submit many requests in one call
//	GET  /v1/results:stream  NDJSON job statuses as they finish
//	GET  /v1/cluster         fleet membership and liveness
//	GET  /v1/metrics         every node's series merged, node-labeled
type Server struct {
	coord *Coordinator
}

// NewServer returns a server over coord.
func NewServer(coord *Coordinator) *Server { return &Server{coord: coord} }

// Handler builds the route table.
func (srv *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", srv.handleHealthz)
	mux.HandleFunc("GET /v1/readyz", srv.handleReadyz)
	mux.HandleFunc("POST /v1/jobs", srv.handleSubmit)
	mux.HandleFunc("POST /v1/jobs:batch", srv.handleSubmitBatch)
	mux.HandleFunc("GET /v1/jobs", srv.handleListJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", srv.handleGetJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", srv.handleCancelJob)
	mux.HandleFunc("GET /v1/results/{key}", srv.handleGetResult)
	mux.HandleFunc("GET /v1/results:stream", srv.handleStream)
	mux.HandleFunc("GET /v1/store/{key}", srv.handleGetEnvelope)
	mux.HandleFunc("GET /v1/cluster", srv.handleCluster)
	mux.HandleFunc("GET /v1/journal:stream", srv.handleJournalStream)
	mux.HandleFunc("GET /v1/metrics", srv.handleMetrics)
	return mux
}

type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, apiError{Error: err.Error()})
}

func (srv *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (srv *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if ok, reason := srv.coord.Ready(); !ok {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "not ready", "reason": reason})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// submitResponse mirrors the single-node reply shape.
type submitResponse struct {
	JobStatus
	Deduped bool `json:"deduped"`
}

func submitCode(st JobStatus, created bool) int {
	if created && !st.CacheHit {
		return http.StatusCreated
	}
	return http.StatusOK
}

func (srv *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req service.Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("cluster: bad request body: %w", err))
		return
	}
	st, created, err := srv.coord.Submit(req)
	switch {
	case errors.Is(err, service.ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, service.ErrShuttingDown):
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, submitCode(st, created), submitResponse{JobStatus: st, Deduped: !created})
}

// batchRequest / batchResponse are the bulk submission shapes: one
// round-trip for a whole sweep. Items are independent — a rejected
// request (bad experiment, queue full) reports its error in place
// without failing the rest.
type batchRequest struct {
	Jobs []service.Request `json:"jobs"`
}

type batchItem struct {
	JobStatus
	Deduped bool   `json:"deduped,omitempty"`
	Error   string `json:"error,omitempty"`
}

type batchResponse struct {
	Jobs []batchItem `json:"jobs"`
}

func (srv *Server) handleSubmitBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("cluster: bad batch body: %w", err))
		return
	}
	if len(req.Jobs) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("cluster: empty batch"))
		return
	}
	const maxBatch = 1024
	if len(req.Jobs) > maxBatch {
		writeError(w, http.StatusBadRequest, fmt.Errorf("cluster: batch of %d exceeds %d", len(req.Jobs), maxBatch))
		return
	}
	resp := batchResponse{Jobs: make([]batchItem, 0, len(req.Jobs))}
	for _, jr := range req.Jobs {
		st, created, err := srv.coord.Submit(jr)
		if errors.Is(err, service.ErrShuttingDown) {
			w.Header().Set("Retry-After", "5")
			writeError(w, http.StatusServiceUnavailable, err)
			return
		}
		item := batchItem{JobStatus: st, Deduped: err == nil && !created}
		if err != nil {
			item.Error = err.Error()
		}
		resp.Jobs = append(resp.Jobs, item)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (srv *Server) handleListJobs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]interface{}{"jobs": srv.coord.Jobs()})
}

func (srv *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	st, err := srv.coord.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (srv *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	st, err := srv.coord.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleGetResult proxies any completed result through the
// coordinator's store: local tiers first, then peer-fetch from the
// worker holding it. Byte-identical to fetching from the worker
// directly — the JSON path serves json.Marshal of the same table.
func (srv *Server) handleGetResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	tab, ok := srv.coord.Store().Get(key)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("cluster: no result for key %q", key))
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		b, err := json.Marshal(tab)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(b)
	case "csv":
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		fmt.Fprint(w, tab.CSV())
	case "ascii":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, tab.String())
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("cluster: unknown format %q (want json, csv or ascii)", format))
	}
}

// handleGetEnvelope serves the coordinator store's local envelope (the
// coordinator can itself act as a peer once its cache has filled).
func (srv *Server) handleGetEnvelope(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	b, ok := srv.coord.Store().Envelope(key)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("cluster: no stored envelope for key %q", key))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

func (srv *Server) handleCluster(w http.ResponseWriter, _ *http.Request) {
	members := srv.coord.Members()
	alive := 0
	for _, m := range members {
		if m.Alive {
			alive++
		}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"node":    srv.coord.cfg.Node,
		"role":    "primary",
		"epoch":   srv.coord.Epoch(),
		"fenced":  srv.coord.Fenced(),
		"alive":   alive,
		"members": members,
	})
}

// handleJournalStream serves the cluster journal as NDJSON: a meta line
// carrying the coordinator's identity and epoch, every journal record
// from the head, then a live tail with heartbeat lines during silence.
// This is the standby's replication feed — by tailing it, a standby
// holds the same record sequence the primary has on disk and can
// promote from its local copy the moment the stream (and the
// heartbeats within it) stops.
func (srv *Server) handleJournalStream(w http.ResponseWriter, r *http.Request) {
	j := srv.coord.Journal()
	if j == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("cluster: coordinator runs without a journal"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	meta := fmt.Sprintf("{\"meta\":true,\"epoch\":%d,\"node\":%q,\"version\":%q}\n",
		srv.coord.Epoch(), srv.coord.cfg.Node, JournalVersion)
	if _, err := fmt.Fprint(w, meta); err != nil {
		return
	}
	if flusher != nil {
		flusher.Flush()
	}

	hb := srv.coord.cfg.ProbeInterval
	from := 0
	for {
		recs, next, updated := j.Snapshot(from)
		from = next
		for _, rec := range recs {
			if _, err := w.Write(append(rec, '\n')); err != nil {
				return
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		hbT := time.NewTimer(hb)
		select {
		case <-r.Context().Done():
			hbT.Stop()
			return
		case <-srv.coord.Done():
			hbT.Stop()
			return
		case <-updated:
			hbT.Stop()
		case <-hbT.C:
			// Liveness signal: a standby distinguishes "idle primary" from
			// "dead primary" by these, not by journal traffic.
			if _, err := fmt.Fprint(w, "{\"hb\":true}\n"); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
}

// handleStream emits NDJSON job statuses in completion order: one
// compact JSON line per job as it reaches a terminal state, flushed
// immediately. ?ids=a,b,c selects jobs (default: all known); ?timeout
// bounds the wait (default 5m). Unknown IDs yield an error line.
func (srv *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	var ids []string
	if q := r.URL.Query().Get("ids"); q != "" {
		for _, id := range strings.Split(q, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
	} else {
		for _, st := range srv.coord.Jobs() {
			ids = append(ids, st.ID)
		}
	}
	timeout := 5 * time.Minute
	if q := r.URL.Query().Get("timeout"); q != "" {
		d, err := time.ParseDuration(q)
		if err != nil || d <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("cluster: bad timeout %q", q))
			return
		}
		timeout = d
	}

	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	type line struct {
		st  JobStatus
		err error
		id  string
	}
	ch := make(chan line, len(ids))
	for _, id := range ids {
		go func(id string) {
			st, err := srv.coord.Wait(ctx, id)
			ch <- line{st: st, err: err, id: id}
		}(id)
	}
	enc := json.NewEncoder(w) // no indent: one object per line
	for range ids {
		l := <-ch
		if l.err != nil {
			_ = enc.Encode(map[string]string{"id": l.id, "error": l.err.Error()})
		} else {
			_ = enc.Encode(l.st)
		}
		if flusher != nil {
			flusher.Flush()
		}
		if ctx.Err() != nil && l.err != nil {
			return // timed out: remaining waiters would all report the same
		}
	}
}

// handleMetrics serves the cluster-wide exposition: every live node's
// /v1/metrics parsed, stamped with node=<membership name> (the
// coordinator's name for the worker is authoritative, whatever the
// worker calls itself), merged family-by-family with the coordinator's
// own series, and re-emitted as one text 0.0.4 document.
func (srv *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	c := srv.coord
	members := c.Members()

	type scrape struct {
		name     string
		families []expo.Family
		err      error
	}
	results := make([]scrape, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		if !m.Alive {
			continue
		}
		wg.Add(1)
		go func(i int, name, url string) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeTimeout)
			defer cancel()
			b, err := c.client.getBytes(ctx, name, url+"/v1/metrics")
			if err == nil && b == nil {
				err = fmt.Errorf("cluster: %s has no /v1/metrics", name)
			}
			var fams []expo.Family
			if err == nil {
				fams, err = expo.Parse(string(b))
			}
			if err == nil {
				expo.SetLabel(fams, "node", name)
			}
			results[i] = scrape{name: name, families: fams, err: err}
		}(i, m.Name, m.URL)
	}
	wg.Wait()

	// The coordinator's own series, including per-worker scrape health so
	// the exposition itself shows which nodes this document covers.
	var b strings.Builder
	fmt.Fprintf(&b, "# HELP acbd_cluster_workers Fleet members by probed liveness.\n# TYPE acbd_cluster_workers gauge\n")
	alive, dead := 0, 0
	for _, m := range members {
		if m.Alive {
			alive++
		} else {
			dead++
		}
	}
	fmt.Fprintf(&b, "acbd_cluster_workers{state=\"alive\"} %d\n", alive)
	fmt.Fprintf(&b, "acbd_cluster_workers{state=\"dead\"} %d\n", dead)
	fmt.Fprintf(&b, "# HELP acbd_cluster_jobs Cluster jobs by lifecycle state.\n# TYPE acbd_cluster_jobs gauge\n")
	counts := c.JobCounts()
	for _, st := range service.States {
		fmt.Fprintf(&b, "acbd_cluster_jobs{state=%q} %d\n", st, counts[st])
	}
	fmt.Fprintf(&b, "# HELP acbd_cluster_events_total Monotonic coordinator events.\n# TYPE acbd_cluster_events_total counter\n")
	for _, name := range c.counters.Names() {
		fmt.Fprintf(&b, "acbd_cluster_events_total{event=%q} %d\n", name, c.counters.Get(name))
	}
	fmt.Fprintf(&b, "# HELP acbd_failovers_total Standby-to-primary promotions this process has performed.\n# TYPE acbd_failovers_total counter\n")
	fmt.Fprintf(&b, "acbd_failovers_total %d\n", c.counters.Get("failovers"))
	fmt.Fprintf(&b, "# HELP acbd_journal_replays_total Journal replays performed at startup (nonzero after a crash-restart or failover recovery).\n# TYPE acbd_journal_replays_total counter\n")
	fmt.Fprintf(&b, "acbd_journal_replays_total %d\n", c.counters.Get("journal_replays"))
	fmt.Fprintf(&b, "# HELP acbd_cluster_scrape_up Whether this exposition includes the worker's series (0 = dead or scrape failed).\n# TYPE acbd_cluster_scrape_up gauge\n")
	for i, m := range members {
		up := 0
		if m.Alive && results[i].err == nil {
			up = 1
		}
		fmt.Fprintf(&b, "acbd_cluster_scrape_up{worker=%q} %d\n", m.Name, up)
	}
	self, err := expo.Parse(b.String())
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("cluster: self metrics: %w", err))
		return
	}
	expo.SetLabel(self, "node", c.cfg.Node)

	inputs := [][]expo.Family{self}
	for _, s := range results {
		if s.name == "" {
			continue // dead member: never scraped
		}
		if s.err != nil {
			c.counters.Add("scrape_errors", 1)
			continue
		}
		inputs = append(inputs, s.families)
	}
	merged := expo.Merge(inputs...)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = expo.Write(w, merged)
}
