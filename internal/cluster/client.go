package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"acb/internal/service"
)

// Client is the inter-node HTTP client every cluster RPC goes through.
// Each request first fires the faultinject points "rpc" (whole fabric)
// and "rpc.<node>" (one link), which is how chaos tests open network
// partitions deterministically: a rule on rpc.w2 severs every call to
// w2 without touching the process, and Clear (or a rule Limit) heals it.
//
// Every RPC carries an explicit context deadline (the caller's, or the
// client's default when the caller set none) — never the transport's or
// the server's idea of a timeout — and idempotent RPCs (health probes,
// job listings, store fetches) retry transient failures a bounded
// number of times with equal-jitter backoff. When the client has an
// epoch, it is stamped on every request; a 409 reply carrying a higher
// epoch means this coordinator has been fenced, reported once through
// the onStale hook.
type Client struct {
	http    *http.Client
	faults  service.FaultPoints
	timeout time.Duration

	mu      sync.Mutex
	epoch   uint64
	onStale func(uint64)
	tries   int
	base    time.Duration
	max     time.Duration
	rng     *rand.Rand
}

// Default retry schedule for idempotent RPCs: up to 3 attempts, backoff
// uniformly drawn from [base/2, base], doubling per attempt, capped.
const (
	defaultRetryTries = 3
	defaultRetryBase  = 100 * time.Millisecond
	defaultRetryMax   = 2 * time.Second
)

// NewClient returns a client with the given default per-RPC deadline
// (0 = 10s) and optional fault injector (nil in production).
func NewClient(timeout time.Duration, faults service.FaultPoints) *Client {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	return &Client{
		// No http.Client.Timeout: deadlines are per-RPC contexts, and a
		// whole-client timeout would sever long-lived streams.
		http:    &http.Client{},
		faults:  faults,
		timeout: timeout,
		tries:   defaultRetryTries,
		base:    defaultRetryBase,
		max:     defaultRetryMax,
		rng:     rand.New(rand.NewSource(1)),
	}
}

// SetRetry overrides the idempotent-RPC retry schedule (tests; tries=1
// disables retries). seed keeps the jitter deterministic.
func (c *Client) SetRetry(tries int, base, max time.Duration, seed int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if tries > 0 {
		c.tries = tries
	}
	if base > 0 {
		c.base = base
	}
	if max > 0 {
		c.max = max
	}
	c.rng = rand.New(rand.NewSource(seed))
}

// SetEpoch installs the fencing epoch stamped on every request and the
// hook invoked (with the higher epoch) when a peer fences this client.
func (c *Client) SetEpoch(epoch uint64, onStale func(uint64)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.epoch = epoch
	c.onStale = onStale
}

// statusError carries a non-2xx response so callers can branch on the
// code (429 backpressure vs 404 unknown vs 5xx).
type statusError struct {
	code int
	body string
}

func (e *statusError) Error() string {
	return fmt.Sprintf("cluster: remote status %d: %s", e.code, e.body)
}

// StatusCode extracts the HTTP status from an inter-node RPC error
// (0 when the error was transport-level, not a response).
func StatusCode(err error) int {
	if se, ok := err.(*statusError); ok {
		return se.code
	}
	return 0
}

func (c *Client) fire(node string) error {
	if c.faults == nil {
		return nil
	}
	if err := c.faults.Fire("rpc"); err != nil {
		return fmt.Errorf("cluster: rpc to %s: %w", node, err)
	}
	if err := c.faults.Fire("rpc." + node); err != nil {
		return fmt.Errorf("cluster: rpc to %s: %w", node, err)
	}
	return nil
}

// withDeadline guarantees an explicit deadline on ctx.
func (c *Client) withDeadline(ctx context.Context) (context.Context, context.CancelFunc) {
	if _, ok := ctx.Deadline(); ok {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, c.timeout)
}

// stamp adds the epoch header when this client has one.
func (c *Client) stamp(req *http.Request) {
	c.mu.Lock()
	epoch := c.epoch
	c.mu.Unlock()
	if epoch > 0 {
		req.Header.Set(EpochHeader, strconv.FormatUint(epoch, 10))
	}
}

// noteFenced inspects a 409 response for a higher epoch and reports it.
func (c *Client) noteFenced(resp *http.Response) {
	if resp.StatusCode != http.StatusConflict {
		return
	}
	h := resp.Header.Get(EpochHeader)
	if h == "" {
		return
	}
	n, err := strconv.ParseUint(h, 10, 64)
	if err != nil {
		return
	}
	c.mu.Lock()
	hook := c.onStale
	stale := c.epoch > 0 && n > c.epoch
	c.mu.Unlock()
	if stale && hook != nil {
		hook(n)
	}
}

// do performs one RPC against a node: method + url, optional JSON body
// in, optional JSON decode into out. Non-2xx responses become
// *statusError with the response body's error message.
func (c *Client) do(ctx context.Context, node, method, url string, in, out interface{}) error {
	if err := c.fire(node); err != nil {
		return err
	}
	ctx, cancel := c.withDeadline(ctx)
	defer cancel()
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	c.stamp(req)
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		c.noteFenced(resp)
		var ae struct {
			Error string `json:"error"`
		}
		msg := string(b)
		if json.Unmarshal(b, &ae) == nil && ae.Error != "" {
			msg = ae.Error
		}
		return &statusError{code: resp.StatusCode, body: msg}
	}
	if out != nil {
		return json.Unmarshal(b, out)
	}
	return nil
}

// retriable reports whether an idempotent RPC should be re-attempted:
// transport failures and 5xx/429 are transient; other response codes
// (404 miss, 409 fenced, 4xx misuse) are authoritative.
func retriable(err error) bool {
	code := StatusCode(err)
	return code == 0 || code >= 500 || code == http.StatusTooManyRequests
}

// backoff sleeps one equal-jitter step (uniform in [d/2, d]) or until
// ctx is done.
func (c *Client) backoff(ctx context.Context, attempt int) error {
	c.mu.Lock()
	d := c.base << uint(attempt)
	if d > c.max || d <= 0 {
		d = c.max
	}
	d = d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
	c.mu.Unlock()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// doIdempotent is do with bounded equal-jitter retries, for RPCs that
// are safe to repeat (GETs: probes, job listings, metrics scrapes).
// The caller's ctx bounds the whole schedule; each attempt still gets
// its own explicit deadline inside do.
func (c *Client) doIdempotent(ctx context.Context, node, method, url string, in, out interface{}) error {
	c.mu.Lock()
	tries := c.tries
	c.mu.Unlock()
	var lastErr error
	for attempt := 0; attempt < tries; attempt++ {
		if attempt > 0 {
			if err := c.backoff(ctx, attempt-1); err != nil {
				return lastErr
			}
		}
		lastErr = c.do(ctx, node, method, url, in, out)
		if lastErr == nil || !retriable(lastErr) {
			return lastErr
		}
	}
	return lastErr
}

// getBytes performs one GET and returns the raw response body. A 404
// returns (nil, nil): the peer authoritatively does not have it.
func (c *Client) getBytes(ctx context.Context, node, url string) ([]byte, error) {
	if err := c.fire(node); err != nil {
		return nil, err
	}
	ctx, cancel := c.withDeadline(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	c.stamp(req)
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body)
		return nil, nil
	}
	if resp.StatusCode != http.StatusOK {
		c.noteFenced(resp)
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, &statusError{code: resp.StatusCode, body: string(b)}
	}
	return io.ReadAll(io.LimitReader(resp.Body, 64<<20))
}

// getBytesIdempotent is getBytes with the idempotent retry schedule
// (store and envelope fetches).
func (c *Client) getBytesIdempotent(ctx context.Context, node, url string) ([]byte, error) {
	c.mu.Lock()
	tries := c.tries
	c.mu.Unlock()
	var lastB []byte
	var lastErr error
	for attempt := 0; attempt < tries; attempt++ {
		if attempt > 0 {
			if err := c.backoff(ctx, attempt-1); err != nil {
				return nil, lastErr
			}
		}
		lastB, lastErr = c.getBytes(ctx, node, url)
		if lastErr == nil || !retriable(lastErr) {
			return lastB, lastErr
		}
	}
	return nil, lastErr
}

// putBytes PUTs a raw body (result-envelope replication). Not retried:
// replication failures are counted and the coordinator's own copy
// already satisfies durability.
func (c *Client) putBytes(ctx context.Context, node, url string, body []byte) error {
	if err := c.fire(node); err != nil {
		return err
	}
	ctx, cancel := c.withDeadline(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	c.stamp(req)
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		c.noteFenced(resp)
		return &statusError{code: resp.StatusCode, body: string(b)}
	}
	return nil
}

// PeerFetcher builds the service.PeerFetchFunc for a worker shard: on a
// local store miss, ask the shards that carry the key — the ring owner
// first, then its successor, which holds the key's replica under the
// coordinator's RF=2 result replication — via GET /v1/store/{key}.
// Shards serve that endpoint from local tiers only (never their own
// peer tier), which is what makes the recursion terminate: two shards
// can never chase each other for a key neither has.
//
// self is skipped in the candidate list (asking yourself is the miss
// you already had). members maps node name → base URL and is the static
// fleet; liveness doesn't matter here — a dead candidate is a transport
// error, and the next candidate is tried. First hit wins; all-404 is an
// authoritative miss; a miss with transport errors reports the first
// error so the store counts it.
func PeerFetcher(self string, members map[string]string, client *Client) service.PeerFetchFunc {
	names := make([]string, 0, len(members))
	for name := range members {
		names = append(names, name)
	}
	ring := NewRing(0, names...)
	return func(ctx context.Context, key string) ([]byte, error) {
		var firstErr error
		for _, name := range ring.Owners(key, 2) {
			if name == self {
				continue
			}
			base, ok := members[name]
			if !ok {
				continue
			}
			b, err := client.getBytesIdempotent(ctx, name, base+"/v1/store/"+key)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			if b != nil {
				return b, nil
			}
		}
		return nil, firstErr
	}
}
