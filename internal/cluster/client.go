package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"acb/internal/service"
)

// Client is the inter-node HTTP client every cluster RPC goes through.
// Each request first fires the faultinject points "rpc" (whole fabric)
// and "rpc.<node>" (one link), which is how chaos tests open network
// partitions deterministically: a rule on rpc.w2 severs every call to
// w2 without touching the process, and Clear (or a rule Limit) heals it.
type Client struct {
	http   *http.Client
	faults service.FaultPoints
}

// NewClient returns a client with the given per-request timeout
// (0 = 10s) and optional fault injector (nil in production).
func NewClient(timeout time.Duration, faults service.FaultPoints) *Client {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	return &Client{
		http:   &http.Client{Timeout: timeout},
		faults: faults,
	}
}

// statusError carries a non-2xx response so callers can branch on the
// code (429 backpressure vs 404 unknown vs 5xx).
type statusError struct {
	code int
	body string
}

func (e *statusError) Error() string {
	return fmt.Sprintf("cluster: remote status %d: %s", e.code, e.body)
}

// StatusCode extracts the HTTP status from an inter-node RPC error
// (0 when the error was transport-level, not a response).
func StatusCode(err error) int {
	if se, ok := err.(*statusError); ok {
		return se.code
	}
	return 0
}

func (c *Client) fire(node string) error {
	if c.faults == nil {
		return nil
	}
	if err := c.faults.Fire("rpc"); err != nil {
		return fmt.Errorf("cluster: rpc to %s: %w", node, err)
	}
	if err := c.faults.Fire("rpc." + node); err != nil {
		return fmt.Errorf("cluster: rpc to %s: %w", node, err)
	}
	return nil
}

// do performs one RPC against a node: method + url, optional JSON body
// in, optional JSON decode into out. Non-2xx responses become
// *statusError with the response body's error message.
func (c *Client) do(ctx context.Context, node, method, url string, in, out interface{}) error {
	if err := c.fire(node); err != nil {
		return err
	}
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var ae struct {
			Error string `json:"error"`
		}
		msg := string(b)
		if json.Unmarshal(b, &ae) == nil && ae.Error != "" {
			msg = ae.Error
		}
		return &statusError{code: resp.StatusCode, body: msg}
	}
	if out != nil {
		return json.Unmarshal(b, out)
	}
	return nil
}

// getBytes performs a GET and returns the raw response body. A 404
// returns (nil, nil): the peer authoritatively does not have it.
func (c *Client) getBytes(ctx context.Context, node, url string) ([]byte, error) {
	if err := c.fire(node); err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body)
		return nil, nil
	}
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, &statusError{code: resp.StatusCode, body: string(b)}
	}
	return io.ReadAll(io.LimitReader(resp.Body, 64<<20))
}

// PeerFetcher builds the service.PeerFetchFunc for a worker shard: on a
// local store miss, ask the shard that owns the key (by the fleet-wide
// ring) for its stored envelope via GET /v1/store/{key}. The owner
// serving from local tiers only (never its own peer tier) is what makes
// the recursion terminate: two shards can never chase each other for a
// key neither owns.
//
// self is excluded — a key this shard owns that isn't in its local
// store simply hasn't been computed yet, and asking anyone else would
// invent a second owner. members maps node name → base URL and is the
// static fleet (liveness doesn't matter here: a dead owner is just a
// peer miss).
func PeerFetcher(self string, members map[string]string, client *Client) service.PeerFetchFunc {
	names := make([]string, 0, len(members))
	for name := range members {
		names = append(names, name)
	}
	ring := NewRing(0, names...)
	return func(ctx context.Context, key string) ([]byte, error) {
		owner, ok := ring.Owner(key)
		if !ok || owner == self {
			return nil, nil
		}
		base, ok := members[owner]
		if !ok {
			return nil, nil
		}
		return client.getBytes(ctx, owner, base+"/v1/store/"+key)
	}
}
