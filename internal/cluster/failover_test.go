package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"acb/internal/faultinject"
	"acb/internal/service"
)

// simulatedTotal sums the fleet's successful simulations — the
// exactly-once oracle: across any number of coordinator crashes and
// takeovers, n distinct jobs must cost exactly n simulations.
func simulatedTotal(nodes map[string]*testNode) int64 {
	var total int64
	for _, n := range nodes {
		total += n.sched.Counters().Get("simulated")
	}
	return total
}

func waitDone(t *testing.T, count func() int, want int, what string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for count() < want {
		if time.Now().After(deadline) {
			t.Fatalf("%s: only %d/%d", what, count(), want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCoordinatorJournalRestart: a journaled coordinator dies mid-sweep
// (shutdown writes no terminal records — for the journal, shutdown is a
// crash); a successor opened from the same journal restores every job
// under its original ID, reconciles completed work off the workers
// instead of re-running it, and finishes the sweep with exactly one
// simulation per job.
func TestCoordinatorJournalRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node simulation sweep")
	}
	slow := func() *faultinject.Injector {
		inj := faultinject.New(1)
		inj.Set("worker.slow", faultinject.Rule{Kind: faultinject.Slow, Nth: 1, Delay: 400 * time.Millisecond})
		return inj
	}
	nodes := startWorkers(t, []string{"w1", "w2"}, service.SchedulerConfig{Workers: 1},
		map[string]service.FaultPoints{"w1": slow(), "w2": slow()})
	path := filepath.Join(t.TempDir(), "cluster.journal")
	journal, replay, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(replay) != 0 {
		t.Fatalf("fresh journal replayed %d jobs", len(replay))
	}
	// StealMargin huge: placements stay put, so the exactly-once count
	// has no benign steal noise.
	coordA, _ := startCoordinator(t, nodes, Config{Node: "ca", Journal: journal, StealMargin: 1000})

	reqs := tableReqs(6)
	ids := make([]string, 0, len(reqs))
	for _, req := range reqs {
		st, _, err := coordA.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	waitDone(t, func() int { return coordA.JobCounts()[service.JobDone] }, 2, "pre-crash completions")

	// Die mid-sweep, with jobs in every state: done, running, queued.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := coordA.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	journal2, replay, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(replay) != len(reqs) {
		t.Fatalf("replayed %d jobs, want %d", len(replay), len(reqs))
	}
	terminal := 0
	for _, rj := range replay {
		if terminalState(rj.State) {
			terminal++
		}
	}
	if terminal < 2 {
		t.Fatalf("replay carries %d terminal jobs, want >= 2", terminal)
	}

	coordB, _ := startCoordinator(t, nodes, Config{Node: "ca", Journal: journal2, Replay: replay, StealMargin: 1000})
	if coordB.Counters().Get("journal_replays") != 1 {
		t.Errorf("journal_replays = %d, want 1", coordB.Counters().Get("journal_replays"))
	}
	wctx, wcancel := context.WithTimeout(context.Background(), time.Minute)
	defer wcancel()
	for _, id := range ids { // original IDs survive the restart
		fin, err := coordB.Wait(wctx, id)
		if err != nil || fin.State != service.JobDone {
			t.Fatalf("job %s after restart: %+v err=%v", id, fin, err)
		}
	}
	if got := simulatedTotal(nodes); got != int64(len(reqs)) {
		t.Errorf("fleet simulated %d jobs for %d requests: restart re-ran work", got, len(reqs))
	}
}

// TestStandbyPromotion is the failover acceptance path: a warm standby
// tails the primary's journal stream; the primary is killed mid-batch;
// the standby promotes at a higher epoch, finishes the sweep without
// re-running completed work, serves byte-identical results, and the old
// primary — still running — is fenced off by the workers.
func TestStandbyPromotion(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node simulation sweep")
	}
	slow := func() *faultinject.Injector {
		inj := faultinject.New(1)
		inj.Set("worker.slow", faultinject.Rule{Kind: faultinject.Slow, Nth: 1, Delay: 200 * time.Millisecond})
		return inj
	}
	nodes := startWorkers(t, []string{"w1", "w2"}, service.SchedulerConfig{Workers: 1},
		map[string]service.FaultPoints{"w1": slow(), "w2": slow()})

	dir := t.TempDir()
	journalA, _, err := OpenJournal(filepath.Join(dir, "primary.journal"))
	if err != nil {
		t.Fatal(err)
	}
	coordA, tsA := startCoordinator(t, nodes, Config{Node: "ca", Epoch: 1, Journal: journalA, StealMargin: 1000})

	// The standby gets its own journal mirror and lease file, and the
	// same fleet view the primary has.
	scfg := Config{Node: "cb", StealMargin: 1000,
		ProbeInterval: 50 * time.Millisecond, PollInterval: 25 * time.Millisecond,
		ProbeTimeout: time.Second, RPCTimeout: 5 * time.Second, DeadAfter: 4}
	for name, n := range nodes {
		scfg.Workers = append(scfg.Workers, Member{Name: name, URL: n.url()})
	}
	lease, err := OpenLease(filepath.Join(dir, "standby.lease"), "cb")
	if err != nil {
		t.Fatal(err)
	}
	mirror := filepath.Join(dir, "standby.journal")
	stb, err := NewStandby(StandbyConfig{Primary: tsA.URL, JournalPath: mirror, Lease: lease, Cluster: scfg})
	if err != nil {
		t.Fatal(err)
	}
	stb.Start()
	tsB := httptest.NewServer(stb.Handler())
	t.Cleanup(func() {
		tsB.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		stb.Shutdown(ctx)
	})

	// While tailing: health yes, ready no, role visible.
	if code, _ := getBody(t, tsB.URL+"/v1/healthz"); code != http.StatusOK {
		t.Fatalf("standby healthz %d", code)
	}
	if code, body := getBody(t, tsB.URL+"/v1/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("standby readyz %d: %s", code, body)
	}
	var role struct {
		Role  string `json:"role"`
		Epoch uint64 `json:"epoch"`
	}
	if _, body := getBody(t, tsB.URL+"/v1/cluster"); json.Unmarshal(body, &role) != nil || role.Role != "standby" {
		t.Fatalf("standby /v1/cluster = %s", body)
	}

	reqs := tableReqs(8)
	ids := make([]string, 0, len(reqs))
	for _, req := range reqs {
		st, _, err := coordA.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	waitDone(t, func() int { return coordA.JobCounts()[service.JobDone] }, 2, "pre-kill completions")

	// Don't kill until the mirror provably holds every submission: the
	// stream is async, and a failover must not race the placements it is
	// supposed to preserve.
	waitDone(t, func() int {
		b, _ := os.ReadFile(mirror)
		return strings.Count(string(b), `"op":"submit"`)
	}, len(reqs), "mirrored submissions")

	// kill -9 the primary's listener. The coordinator goroutines keep
	// running — a partitioned, not stopped, primary — which is exactly
	// the split-brain scenario fencing exists for.
	tsA.CloseClientConnections()
	tsA.Close()

	deadline := time.Now().Add(15 * time.Second)
	for !stb.Promoted() {
		if time.Now().After(deadline) {
			t.Fatal("standby never promoted")
		}
		time.Sleep(10 * time.Millisecond)
	}
	coordB := stb.Coordinator()
	if coordB == nil {
		t.Fatal("promoted standby has no coordinator")
	}
	if coordB.Epoch() <= coordA.Epoch() {
		t.Fatalf("promoted epoch %d not above primary's %d", coordB.Epoch(), coordA.Epoch())
	}
	if lease.Epoch() != coordB.Epoch() {
		t.Errorf("lease epoch %d, coordinator epoch %d: promotion not fsync'd", lease.Epoch(), coordB.Epoch())
	}

	// The same URL that served 503s now serves the coordinator API.
	wctx, wcancel := context.WithTimeout(context.Background(), time.Minute)
	defer wcancel()
	keys := make(map[string]string, len(ids))
	for _, id := range ids {
		fin, err := coordB.Wait(wctx, id)
		if err != nil || fin.State != service.JobDone {
			t.Fatalf("job %s after failover: %+v err=%v", id, fin, err)
		}
		keys[id] = fin.ResultKey
	}
	if got := simulatedTotal(nodes); got != int64(len(reqs)) {
		t.Errorf("fleet simulated %d jobs for %d requests: failover re-ran work", got, len(reqs))
	}

	ref := referenceResults(t, reqs)
	for id, key := range keys {
		code, got := getBody(t, tsB.URL+"/v1/results/"+key)
		if code != http.StatusOK {
			t.Fatalf("result %s (job %s) via promoted standby: status %d", key, id, code)
		}
		if !bytes.Equal(got, ref[key]) {
			t.Errorf("key %s: failover result differs from single-node run\ngot:  %s\nwant: %s", key, got, ref[key])
		}
	}

	// The zombie primary's probes bounce off the fence and it stands
	// down on its own.
	deadline = time.Now().Add(15 * time.Second)
	for !coordA.Fenced() {
		if time.Now().After(deadline) {
			t.Fatal("old primary never noticed it was fenced")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, _, err := coordA.Submit(service.Request{Experiment: "table1", Seed: 999}); !errors.Is(err, service.ErrShuttingDown) {
		t.Errorf("fenced primary accepted a submission (err=%v)", err)
	}
	rejected := int64(0)
	for _, n := range nodes {
		rejected += n.fence.Rejected()
	}
	if rejected == 0 {
		t.Error("no worker ever fenced a stale-epoch RPC")
	}
	if coordB.Counters().Get("failovers") != 1 {
		t.Errorf("failovers = %d, want 1", coordB.Counters().Get("failovers"))
	}

	// The promoted coordinator's scrape carries the dedicated failover
	// and replay families.
	code, metrics := getBody(t, tsB.URL+"/v1/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics via promoted standby: %d", code)
	}
	for _, want := range []string{
		`acbd_failovers_total{node="cb"} 1`,
		`acbd_journal_replays_total{node="cb"} 1`,
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("promoted metrics missing %s", want)
		}
	}
}

// TestLeaseFencing: the worker-side epoch protocol end to end against a
// live fleet — a higher-epoch coordinator appearing makes workers
// re-register (readyz 503 until listed) and turns the old primary into
// a bystander: probes rejected, fenced flag up, submissions refused.
func TestLeaseFencing(t *testing.T) {
	nodes := startWorkers(t, []string{"w1"}, service.SchedulerConfig{Workers: 1}, nil)
	coordA, _ := startCoordinator(t, nodes, Config{Node: "ca", Epoch: 1})
	w := nodes["w1"]

	// The primary's probes push epoch 1 onto the worker, and its first
	// reconcile listing completes the registration.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if ok, _ := w.fence.Ready(); ok && w.fence.Epoch() == 1 {
			break
		}
		if time.Now().After(deadline) {
			ok, reason := w.fence.Ready()
			t.Fatalf("worker never registered at epoch 1: epoch=%d ready=(%v,%q)", w.fence.Epoch(), ok, reason)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Epoch 2 appears (a promoted standby's first probe).
	get := func(path string, epoch string) *http.Response {
		req, _ := http.NewRequest(http.MethodGet, w.url()+path, nil)
		req.Header.Set(EpochHeader, epoch)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	if resp := get("/v1/healthz", "2"); resp.StatusCode != http.StatusOK {
		t.Fatalf("adopting probe status %d", resp.StatusCode)
	}
	// Between adoption and reconciliation the worker refuses traffic.
	if code, body := getBody(t, w.url()+"/v1/readyz"); code != http.StatusServiceUnavailable ||
		!strings.Contains(string(body), "re-registering") {
		t.Fatalf("readyz during re-registration = %d %s", code, body)
	}
	if resp := get("/v1/jobs", "2"); resp.StatusCode != http.StatusOK {
		t.Fatalf("reconcile listing status %d", resp.StatusCode)
	}
	if code, _ := getBody(t, w.url() + "/v1/readyz"); code != http.StatusOK {
		t.Fatalf("readyz after reconciliation = %d", code)
	}

	// The old primary's next probe is fenced; it notices and stands down.
	deadline = time.Now().Add(15 * time.Second)
	for !coordA.Fenced() {
		if time.Now().After(deadline) {
			t.Fatalf("primary never fenced (worker rejected %d)", w.fence.Rejected())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if w.fence.Rejected() == 0 {
		t.Error("fence rejected nothing")
	}
	if ok, reason := coordA.Ready(); ok || !strings.Contains(reason, "fenced") {
		t.Errorf("fenced coordinator ready=(%v,%q)", ok, reason)
	}
	if _, _, err := coordA.Submit(service.Request{Experiment: "table1", Seed: 1}); !errors.Is(err, service.ErrShuttingDown) {
		t.Errorf("fenced coordinator accepted work (err=%v)", err)
	}
}

// TestStealDuringWorkerDeath: the straggler dies while the idle worker
// is actively stealing from it — membership change concurrent with
// in-flight steal RPCs. Nothing may be lost: every job finishes on the
// survivor, exactly once each.
func TestStealDuringWorkerDeath(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node simulation sweep")
	}
	inj := faultinject.New(1)
	inj.Set("worker.slow", faultinject.Rule{Kind: faultinject.Slow, Nth: 1, Delay: 600 * time.Millisecond})
	nodes := startWorkers(t, []string{"w1", "w2"}, service.SchedulerConfig{Workers: 1},
		map[string]service.FaultPoints{"w1": inj})
	coord, _ := startCoordinator(t, nodes, Config{StealMargin: 2, DeadAfter: 2})

	reqs := reqsOwnedBy(t, NewRing(0, "w1", "w2"), "w1", 6)
	ids := make([]string, 0, len(reqs))
	for _, req := range reqs {
		st, _, err := coord.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}

	// The moment the first steal lands, kill the victim: the steal round
	// is still mid-flight against a worker that just vanished.
	deadline := time.Now().Add(20 * time.Second)
	for coord.Counters().Get("stolen") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no steal ever happened")
		}
		time.Sleep(time.Millisecond)
	}
	nodes["w1"].ts.CloseClientConnections()
	nodes["w1"].ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	for _, id := range ids {
		fin, err := coord.Wait(ctx, id)
		if err != nil || fin.State != service.JobDone {
			t.Fatalf("job %s: %+v err=%v", id, fin, err)
		}
		if fin.Worker != "w2" {
			t.Errorf("job %s finished on %q, want survivor w2", id, fin.Worker)
		}
	}
	if dead := coord.Counters().Get("worker_dead"); dead != 1 {
		t.Errorf("worker_dead = %d, want 1", dead)
	}
	t.Logf("stolen=%d rehashed=%d rpc_errors=%d", coord.Counters().Get("stolen"),
		coord.Counters().Get("rehashed"), coord.Counters().Get("rpc_errors"))
}
