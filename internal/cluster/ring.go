// Package cluster scales acbd from one daemon to a fleet: a coordinator
// consistent-hashes jobs by their content-address across worker shards,
// steals queued work back from stragglers for idle workers, detects
// worker death by heartbeat and re-hashes the orphaned jobs, serves
// batched submission and streaming-results APIs for bulk sweep clients,
// and rolls every node's /v1/metrics into one exposition with a node
// label per series. Workers are plain acbd daemons (internal/service);
// the only cluster-aware piece on a worker is the result store's peer
// tier, which fetches missing results by key from the owning shard.
//
// Topology and failure semantics are documented in docs/CLUSTER.md.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"hash/fnv"
	"sort"
	"strconv"
)

// Ring is an immutable consistent-hash ring: node names are placed on a
// uint64 circle at VNodes points each, and a key is owned by the first
// node clockwise of its hash. Immutability keeps reads lock-free — the
// coordinator swaps in a rebuilt ring when membership changes, and the
// worker-side peer fetcher never changes its ring at all (a dead owner
// just means a peer miss, not a wrong answer).
//
// Consistent hashing is what makes the peer result cache work: adding or
// removing one shard moves only ~1/N of the key space, so almost every
// already-cached key keeps resolving to the shard that has it.
type Ring struct {
	points []ringPoint // sorted by hash
	nodes  []string    // sorted member names
}

type ringPoint struct {
	hash uint64
	node string
}

// DefaultVNodes is the virtual-node count per member: enough that a
// 2–16 node fleet shards within a few percent of evenly.
const DefaultVNodes = 64

// NewRing builds a ring over the given node names with vnodes virtual
// nodes each (0 = DefaultVNodes). Duplicate names collapse; an empty
// node set yields a ring that owns nothing.
func NewRing(vnodes int, nodes ...string) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := make(map[string]bool, len(nodes))
	r := &Ring{}
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		r.nodes = append(r.nodes, n)
		for v := 0; v < vnodes; v++ {
			// SHA-256, not FNV: short, similar vnode names ("w1#0", "w2#0",
			// ...) cluster badly under FNV-1a and can starve a shard.
			sum := sha256.Sum256([]byte(n + "#" + strconv.Itoa(v)))
			r.points = append(r.points, ringPoint{hash: binary.BigEndian.Uint64(sum[:8]), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	sort.Strings(r.nodes)
	return r
}

// Owner returns the node owning key, and false when the ring is empty.
// Result keys are already hex SHA-256, so their leading 16 hex digits
// are a uniform uint64 and need no re-hashing; anything else (not
// produced by Request.Key) is hashed with FNV-1a first.
func (r *Ring) Owner(key string) (string, bool) {
	if len(r.points) == 0 {
		return "", false
	}
	h := keyHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: first point clockwise
	}
	return r.points[i].node, true
}

// Owners returns the first n distinct nodes clockwise of key's point:
// Owners(key, 1) is the owner, and Owners(key, 2)[1] — when the ring
// has two members — is the successor shard that carries the key's
// replica under the cluster's RF=2 result replication. Fewer than n
// members returns them all.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := keyHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for j := 0; j < len(r.points) && len(out) < n; j++ {
		p := r.points[(i+j)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// Nodes returns the member names, sorted.
func (r *Ring) Nodes() []string { return r.nodes }

// Len returns the member count.
func (r *Ring) Len() int { return len(r.nodes) }

func keyHash(key string) uint64 {
	if len(key) >= 16 {
		if v, err := strconv.ParseUint(key[:16], 16, 64); err == nil {
			return v
		}
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}
