package critpath

import (
	"acb/internal/bpu"
	"acb/internal/isa"
	"acb/internal/mem"
)

// CaptureOptions controls trace capture.
type CaptureOptions struct {
	Steps             int64
	MispredictPenalty int
	Mem               mem.HierarchyConfig
}

// DefaultCaptureOptions mirrors the Skylake-like baseline.
func DefaultCaptureOptions() CaptureOptions {
	return CaptureOptions{
		Steps:             200_000,
		MispredictPenalty: 20,
		Mem:               mem.SkylakeHierarchy(),
	}
}

// Capture functionally executes the program, recording a retired
// dependency trace: register and memory data dependencies, per-load cache
// latencies from a hierarchy model, and TAGE misprediction flags — the
// input to Analyze.
func Capture(p []isa.Instruction, image *isa.Memory, opts CaptureOptions) []Event {
	st := isa.NewArchState(image.Clone())
	hier := mem.NewHierarchy(opts.Mem)
	pred := bpu.NewTAGE(bpu.DefaultTAGEConfig())

	lastRegWriter := make([]int, isa.NumRegs)
	for i := range lastRegWriter {
		lastRegWriter[i] = -1
	}
	lastMemWriter := make(map[int64]int)

	var trace []Event
	for step := int64(0); step < opts.Steps; step++ {
		pc := st.PC
		in := &p[pc]
		ev := Event{PC: pc, Latency: in.ExecLatency()}

		srcs, n := in.Sources()
		for i := 0; i < n; i++ {
			if w := lastRegWriter[srcs[i]]; w >= 0 {
				ev.Deps = append(ev.Deps, w)
			}
		}

		var pr bpu.Prediction
		if in.Op == isa.Br {
			pr = pred.Predict(uint64(pc), false)
		}

		res := st.Step(p)

		switch in.Op {
		case isa.Load:
			ev.Latency = hier.LoadLatency(res.EffAddr)
			if w, ok := lastMemWriter[res.EffAddr&^7]; ok {
				ev.Deps = append(ev.Deps, w)
			}
		case isa.Store:
			hier.StoreCommit(res.EffAddr)
			lastMemWriter[res.EffAddr&^7] = len(trace)
		case isa.Br:
			ev.Mispredict = pr.Taken != res.Taken
			ev.MispredictPenalty = opts.MispredictPenalty
			pred.Update(uint64(pc), pr, res.Taken)
			pred.PushHistory(uint64(pc), res.Taken)
		}
		if in.HasDest() {
			lastRegWriter[in.Rd] = len(trace)
		}

		trace = append(trace, ev)
		if res.Halted {
			break
		}
	}
	return trace
}

// MispredictsOnPath summarizes, for a trace and its analysis, how many
// retired mispredictions fell on the critical path — the measure behind
// the paper's observation that shadowed mispredictions (soplex) do not pay
// off when removed.
func MispredictsOnPath(trace []Event, res Result) (onPath, total int) {
	for i, ev := range trace {
		if !ev.Mispredict {
			continue
		}
		total++
		// The misprediction edge leaves the branch's E node; the branch
		// mattered if its E node is on the path.
		if res.OnPath[i] {
			onPath++
		}
	}
	return onPath, total
}
