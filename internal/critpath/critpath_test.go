package critpath_test

import (
	"testing"

	"acb/internal/critpath"
	"acb/internal/workload"
)

// TestAnalyzeChain: a pure dependency chain's critical path is the sum of
// its latencies.
func TestAnalyzeChain(t *testing.T) {
	trace := []critpath.Event{
		{Latency: 1},
		{Latency: 5, Deps: []int{0}},
		{Latency: 3, Deps: []int{1}},
	}
	res := critpath.Analyze(trace, critpath.DefaultModel())
	if res.Length != 9 {
		t.Fatalf("length = %d, want 9", res.Length)
	}
	for i, on := range res.OnPath {
		if !on {
			t.Errorf("event %d not on path", i)
		}
	}
}

// TestAnalyzeIndependent: independent instructions are bounded by
// dispatch width, not by latency sums.
func TestAnalyzeIndependent(t *testing.T) {
	var trace []critpath.Event
	for i := 0; i < 64; i++ {
		trace = append(trace, critpath.Event{Latency: 1})
	}
	res := critpath.Analyze(trace, critpath.Model{DispatchWidth: 4, CommitWidth: 4, ROBSize: 224})
	// 64 instructions at width 4 -> ~16 cycles of dispatch + pipe.
	if res.Length > 24 {
		t.Fatalf("length = %d, want near 16", res.Length)
	}
}

// TestMispredictEdgeDominates: a mispredicted branch inserts its penalty
// on the path.
func TestMispredictEdgeDominates(t *testing.T) {
	trace := []critpath.Event{
		{Latency: 1},
		{Latency: 1, Mispredict: true, MispredictPenalty: 20},
		{Latency: 1},
		{Latency: 1},
	}
	res := critpath.Analyze(trace, critpath.DefaultModel())
	if res.Length < 22 {
		t.Fatalf("length = %d, want >= 22 (penalty on path)", res.Length)
	}
	if res.MispredictShare < 0.5 {
		t.Fatalf("mispredict share = %.2f, want >= 0.5", res.MispredictShare)
	}
}

// TestShadowedMispredict: a misprediction running in the shadow of a
// long-latency load chain contributes nothing to the critical path — the
// paper's soplex effect.
func TestShadowedMispredict(t *testing.T) {
	// A 3-load dependent chain (200 cycles each) alongside a mispredicted
	// branch with a 20-cycle penalty: the loads dominate.
	trace := []critpath.Event{
		{Latency: 200},
		{Latency: 200, Deps: []int{0}},
		{Latency: 1, Mispredict: true, MispredictPenalty: 20},
		{Latency: 200, Deps: []int{1}},
		{Latency: 1, Deps: []int{3}},
	}
	res := critpath.Analyze(trace, critpath.DefaultModel())
	if res.MispredictShare != 0 {
		t.Fatalf("mispredict share = %.3f, want 0 (shadowed)", res.MispredictShare)
	}
	if res.MemShare < 0.9 {
		t.Fatalf("mem share = %.3f, want >= 0.9", res.MemShare)
	}
	on, total := critpath.MispredictsOnPath(trace, res)
	if total != 1 || on != 0 {
		t.Fatalf("mispredicts on path = %d/%d, want 0/1", on, total)
	}
}

// TestSoplexVsLammpsCriticality validates the Sec. II-A claim end-to-end
// on the workload suite: the memory-shadowed workload's mispredictions
// are mostly off the critical path, the branch-dominated workload's are
// mostly on it.
func TestSoplexVsLammpsCriticality(t *testing.T) {
	if testing.Short() {
		t.Skip("trace capture is slow")
	}
	frac := func(name string) float64 {
		w, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		p, m := w.Build()
		opts := critpath.DefaultCaptureOptions()
		opts.Steps = 100_000
		trace := critpath.Capture(p, m, opts)
		res := critpath.Analyze(trace, critpath.DefaultModel())
		on, total := critpath.MispredictsOnPath(trace, res)
		if total == 0 {
			t.Fatalf("%s: no mispredictions captured", name)
		}
		f := float64(on) / float64(total)
		t.Logf("%s: %d/%d mispredicts on critical path (%.1f%%), mispredict share %.2f, mem share %.2f",
			name, on, total, f*100, res.MispredictShare, res.MemShare)
		return f
	}
	soplex := frac("soplex")
	lammps := frac("lammps")
	if soplex >= lammps {
		t.Errorf("soplex on-path fraction %.2f should be below lammps %.2f", soplex, lammps)
	}
}
