package critpath_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"acb/internal/critpath"
	"acb/internal/workload"
)

func TestJSONLRoundTrip(t *testing.T) {
	trace := []critpath.Event{
		{PC: 1, Latency: 1},
		{PC: 2, Latency: 5, Deps: []int{0}},
		{PC: 3, Latency: 1, Mispredict: true, MispredictPenalty: 20},
		{PC: 4, Latency: 200, Deps: []int{1, 2}},
	}
	var buf bytes.Buffer
	if err := critpath.WriteJSONL(&buf, trace); err != nil {
		t.Fatal(err)
	}
	got, err := critpath.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, trace) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, trace)
	}
}

func TestJSONLRejectsForwardDeps(t *testing.T) {
	in := `{"pc":1,"lat":1,"deps":[5]}`
	if _, err := critpath.ReadJSONL(strings.NewReader(in)); err == nil {
		t.Fatal("forward dependency accepted")
	}
}

func TestJSONLRejectsGarbage(t *testing.T) {
	if _, err := critpath.ReadJSONL(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestJSONLSkipsBlankLines(t *testing.T) {
	in := "{\"pc\":1,\"lat\":1}\n\n{\"pc\":2,\"lat\":2}\n"
	got, err := critpath.ReadJSONL(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("events = %d, want 2", len(got))
	}
}

// TestJSONLAnalysisStable: a captured workload trace survives
// serialization with identical critical-path results.
func TestJSONLAnalysisStable(t *testing.T) {
	if testing.Short() {
		t.Skip("trace capture is slow")
	}
	w, err := workload.ByName("gobmk")
	if err != nil {
		t.Fatal(err)
	}
	p, m := w.Build()
	opts := critpath.DefaultCaptureOptions()
	opts.Steps = 20_000
	trace := critpath.Capture(p, m, opts)

	var buf bytes.Buffer
	if err := critpath.WriteJSONL(&buf, trace); err != nil {
		t.Fatal(err)
	}
	restored, err := critpath.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a := critpath.Analyze(trace, critpath.DefaultModel())
	b := critpath.Analyze(restored, critpath.DefaultModel())
	if a.Length != b.Length || a.MispredictShare != b.MispredictShare {
		t.Fatalf("analysis differs after round trip: %d/%f vs %d/%f",
			a.Length, a.MispredictShare, b.Length, b.MispredictShare)
	}
}
