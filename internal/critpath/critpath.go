// Package critpath implements the Fields et al. graph-based critical-path
// model the paper's Sec. II-A analysis builds on: program execution is a
// data-dependency graph with three nodes per dynamic instruction —
// dispatch (D), execute (E) and commit (C) — connected by intra-
// instruction edges, machine-width and ROB-capacity edges, data
// dependencies, and branch-misprediction edges from the mispredicting
// branch's execution to the next instruction's dispatch. The critical path
// is the longest path through this graph; an event (e.g. one branch's
// misprediction) matters for performance only in proportion to its
// presence on that path.
//
// The package is used offline, over retired-instruction traces captured
// from the functional emulator, to validate the paper's criticality claims
// (e.g. the soplex effect: mispredictions shadowed by long-latency loads
// contribute nothing to the critical path).
package critpath

import "fmt"

// Event is one retired dynamic instruction of a trace.
type Event struct {
	PC int
	// Latency is the execution latency in cycles (e.g. cache hit/miss
	// latency for loads, ALU latency otherwise).
	Latency int
	// Deps are indices of earlier events this one's execution
	// data-depends on (register or memory).
	Deps []int
	// Mispredict marks a conditional branch that was mispredicted.
	Mispredict bool
	// MispredictPenalty is the refetch penalty charged on the E→D edge to
	// the next instruction.
	MispredictPenalty int
}

// Model holds the machine parameters of the DDG.
type Model struct {
	DispatchWidth int // instructions dispatched per cycle
	CommitWidth   int
	ROBSize       int
}

// DefaultModel mirrors the Skylake-like baseline.
func DefaultModel() Model {
	return Model{DispatchWidth: 4, CommitWidth: 4, ROBSize: 224}
}

// nodeKind indexes the three DDG node types of one instruction.
type nodeKind int

const (
	nodeD nodeKind = iota
	nodeE
	nodeC
)

// Result reports the critical-path analysis.
type Result struct {
	// Length is the critical-path length in cycles.
	Length int64
	// OnPath flags, per event, whether its E node lies on a critical path.
	OnPath []bool
	// PenaltyOnPath flags, per event, a mispredicting branch whose
	// misprediction edge (E -> next D) lies on the chosen critical path.
	PenaltyOnPath []bool
	// MispredictShare is the fraction of critical-path length contributed
	// by branch-misprediction edges.
	MispredictShare float64
	// MemShare is the fraction contributed by E-node latencies of events
	// with Latency >= 30 (long-latency loads).
	MemShare float64
}

// Analyze computes the longest path through the dependency graph of the
// trace. It runs in O(n · deps) time via topological order (events are
// already topologically sorted by retirement).
func Analyze(trace []Event, m Model) Result {
	n := len(trace)
	if n == 0 {
		return Result{}
	}
	if m.DispatchWidth <= 0 || m.CommitWidth <= 0 || m.ROBSize <= 0 {
		panic(fmt.Sprintf("critpath: invalid model %+v", m))
	}

	// dist[k][i]: longest-path distance to node k of event i.
	distD := make([]int64, n)
	distE := make([]int64, n)
	distC := make([]int64, n)
	// Edge provenance for share accounting on the backward walk.
	const (
		fromNone          = iota
		fromDispatchOrder // D(i-1) -> D(i), in-order edge (weight 0)
		fromDispatchPrev  // D(i-w) -> D(i), width edge
		fromROB           // C(i-ROB) -> D(i)
		fromMispredict    // E(i-1 branch) -> D(i)
		fromE             // E(i) -> C(i)
		fromCommitOrder   // C(i-1) -> C(i), in-order edge (weight 0)
		fromCommitPrev    // C(i-w) -> C(i)
	)
	provD := make([]int8, n)
	provE := make([]int64, n) // dep index, or -1 for D->E
	provC := make([]int8, n)

	for i := 0; i < n; i++ {
		ev := &trace[i]

		// D node: in-order dispatch, width-limited; ROB capacity; branch
		// misprediction serialization from the previous branch's E node.
		var d int64
		provD[i] = fromNone
		if i > 0 {
			if v := distD[i-1]; v > d {
				d = v
				provD[i] = fromDispatchOrder
			}
		}
		if j := i - m.DispatchWidth; j >= 0 {
			if v := distD[j] + 1; v > d {
				d = v
				provD[i] = fromDispatchPrev
			}
		}
		if j := i - m.ROBSize; j >= 0 {
			if v := distC[j] + 1; v > d {
				d = v
				provD[i] = fromROB
			}
		}
		if i > 0 && trace[i-1].Mispredict {
			if v := distE[i-1] + int64(trace[i-1].MispredictPenalty); v > d {
				d = v
				provD[i] = fromMispredict
			}
		}
		distD[i] = d

		// E node: after dispatch and after all data dependencies.
		e := distD[i]
		provE[i] = -1
		for _, dep := range ev.Deps {
			if dep < 0 || dep >= i {
				panic(fmt.Sprintf("critpath: event %d has invalid dep %d", i, dep))
			}
			if v := distE[dep]; v > e {
				e = v
				provE[i] = int64(dep)
			}
		}
		lat := int64(ev.Latency)
		if lat < 1 {
			lat = 1
		}
		distE[i] = e + lat

		// C node: in-order commit, width-limited.
		c := distE[i]
		provC[i] = fromE
		if i > 0 {
			if v := distC[i-1]; v > c {
				c = v
				provC[i] = fromCommitOrder
			}
		}
		if j := i - m.CommitWidth; j >= 0 {
			if v := distC[j] + 1; v > c {
				c = v
				provC[i] = fromCommitPrev
			}
		}
		distC[i] = c
	}

	res := Result{Length: distC[n-1], OnPath: make([]bool, n), PenaltyOnPath: make([]bool, n)}

	// Walk one critical path backwards from the last commit, accounting
	// for edge contributions.
	var mispredCycles, memCycles int64
	i := n - 1
	kind := nodeC
	for i >= 0 {
		switch kind {
		case nodeC:
			switch {
			case provC[i] == fromCommitPrev && i-m.CommitWidth >= 0:
				i -= m.CommitWidth
			case provC[i] == fromCommitOrder && i > 0:
				i--
			default:
				kind = nodeE
			}
		case nodeE:
			res.OnPath[i] = true
			lat := int64(trace[i].Latency)
			if lat >= 30 {
				memCycles += lat
			}
			if provE[i] >= 0 {
				i = int(provE[i])
			} else {
				kind = nodeD
			}
		case nodeD:
			switch provD[i] {
			case fromDispatchOrder:
				i--
			case fromDispatchPrev:
				i -= m.DispatchWidth
			case fromROB:
				i -= m.ROBSize
				kind = nodeC
			case fromMispredict:
				mispredCycles += int64(trace[i-1].MispredictPenalty)
				res.PenaltyOnPath[i-1] = true
				i--
				kind = nodeE
			default:
				i = -1 // reached the first instruction
			}
		}
	}
	if res.Length > 0 {
		res.MispredictShare = float64(mispredCycles) / float64(res.Length)
		res.MemShare = float64(memCycles) / float64(res.Length)
	}
	return res
}
