package critpath_test

import (
	"testing"

	"acb/internal/critpath"
	"acb/internal/workload"
)

func TestAttributeMispredictPenalty(t *testing.T) {
	trace := []critpath.Event{
		{PC: 10, Latency: 1},
		{PC: 20, Latency: 1, Mispredict: true, MispredictPenalty: 20},
		{PC: 30, Latency: 1},
		{PC: 40, Latency: 1},
	}
	att := critpath.Attribute(trace, critpath.DefaultModel())
	if att.MispredictCycles[20] != 20 {
		t.Fatalf("pc 20 penalty cycles = %d, want 20", att.MispredictCycles[20])
	}
	top := att.TopMispredictors(5)
	if len(top) != 1 || top[0].PC != 20 {
		t.Fatalf("top mispredictors = %+v", top)
	}
	if top[0].Share <= 0 {
		t.Fatal("share not computed")
	}
}

func TestAttributeShadowedBranchGetsNothing(t *testing.T) {
	trace := []critpath.Event{
		{PC: 1, Latency: 200},
		{PC: 2, Latency: 200, Deps: []int{0}},
		{PC: 3, Latency: 1, Mispredict: true, MispredictPenalty: 20},
		{PC: 4, Latency: 200, Deps: []int{1}},
		{PC: 5, Latency: 1, Deps: []int{3}},
	}
	att := critpath.Attribute(trace, critpath.DefaultModel())
	if att.MispredictCycles[3] != 0 {
		t.Fatalf("shadowed branch attributed %d penalty cycles", att.MispredictCycles[3])
	}
	top := att.TopExecutors(1)
	if len(top) == 0 || (top[0].PC != 1 && top[0].PC != 2 && top[0].PC != 4) {
		t.Fatalf("top executor = %+v, want a load PC", top)
	}
}

func TestAttributeExecCyclesChain(t *testing.T) {
	trace := []critpath.Event{
		{PC: 7, Latency: 5},
		{PC: 7, Latency: 5, Deps: []int{0}},
		{PC: 9, Latency: 3, Deps: []int{1}},
	}
	att := critpath.Attribute(trace, critpath.DefaultModel())
	if att.ExecCycles[7] != 10 {
		t.Fatalf("pc 7 exec cycles = %d, want 10 (two dynamic instances)", att.ExecCycles[7])
	}
	if att.ExecCycles[9] != 3 {
		t.Fatalf("pc 9 exec cycles = %d, want 3", att.ExecCycles[9])
	}
}

// TestAttributionMatchesCriticalFilter: the ACB criticality intuition —
// on a branch-dominated workload, the top misprediction-cycle contributor
// is an H2P hammock branch, and its share is substantial.
func TestAttributionMatchesCriticalFilter(t *testing.T) {
	if testing.Short() {
		t.Skip("trace capture is slow")
	}
	w, err := workload.ByName("lammps")
	if err != nil {
		t.Fatal(err)
	}
	p, m := w.Build()
	opts := critpath.DefaultCaptureOptions()
	opts.Steps = 80_000
	trace := critpath.Capture(p, m, opts)
	att := critpath.Attribute(trace, critpath.DefaultModel())
	top := att.TopMispredictors(3)
	if len(top) == 0 {
		t.Fatal("no misprediction contributors found")
	}
	var total float64
	for _, s := range top {
		total += s.Share
	}
	if total < 0.15 {
		t.Errorf("top-3 misprediction share %.2f, want a substantial fraction on lammps", total)
	}
	for _, s := range top {
		if p[s.PC].Op.String() != "br" {
			t.Errorf("top contributor pc=%d is not a branch", s.PC)
		}
	}
}
