package critpath

import "sort"

// Attribution breaks the critical path down by cause, per static PC — the
// analysis behind the paper's claim that a small set of branch PCs
// accounts for the performance-relevant mispredictions (Sec. II), and the
// validation tool for ACB's criticality filter.
type Attribution struct {
	// TotalCycles is the critical-path length.
	TotalCycles int64
	// MispredictCycles maps a branch PC to the misprediction-edge cycles
	// it contributed to the critical path.
	MispredictCycles map[int]int64
	// ExecCycles maps a PC to the E-node latency cycles it contributed.
	ExecCycles map[int]int64
}

// Attribute walks one critical path of the analyzed trace and attributes
// its cycles to static PCs.
func Attribute(trace []Event, m Model) Attribution {
	res := Analyze(trace, m)
	att := Attribution{
		TotalCycles:      res.Length,
		MispredictCycles: make(map[int]int64),
		ExecCycles:       make(map[int]int64),
	}
	// Every on-path event contributes its E-node latency; a branch whose
	// misprediction edge the chosen path traverses contributes its
	// penalty (Analyze records both during its backward walk).
	for i, ev := range trace {
		if res.PenaltyOnPath[i] {
			att.MispredictCycles[ev.PC] += int64(ev.MispredictPenalty)
		}
		if !res.OnPath[i] {
			continue
		}
		lat := int64(ev.Latency)
		if lat < 1 {
			lat = 1
		}
		att.ExecCycles[ev.PC] += lat
	}
	return att
}

// PCShare is one PC's share of attributed cycles.
type PCShare struct {
	PC     int
	Cycles int64
	Share  float64
}

// TopMispredictors returns the branch PCs contributing the most
// misprediction cycles to the critical path, descending.
func (a *Attribution) TopMispredictors(n int) []PCShare {
	return top(a.MispredictCycles, a.TotalCycles, n)
}

// TopExecutors returns the PCs contributing the most execution-latency
// cycles to the critical path, descending.
func (a *Attribution) TopExecutors(n int) []PCShare {
	return top(a.ExecCycles, a.TotalCycles, n)
}

func top(m map[int]int64, total int64, n int) []PCShare {
	out := make([]PCShare, 0, len(m))
	for pc, cyc := range m {
		s := PCShare{PC: pc, Cycles: cyc}
		if total > 0 {
			s.Share = float64(cyc) / float64(total)
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cycles != out[j].Cycles {
			return out[i].Cycles > out[j].Cycles
		}
		return out[i].PC < out[j].PC
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}
