package critpath

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// jsonlEvent is the serialized form of one trace event. Field names are
// kept short: traces run to millions of lines.
type jsonlEvent struct {
	PC      int   `json:"pc"`
	Lat     int   `json:"lat"`
	Deps    []int `json:"deps,omitempty"`
	Mis     bool  `json:"mis,omitempty"`
	Penalty int   `json:"pen,omitempty"`
}

// WriteJSONL serializes a trace as one JSON object per line, suitable for
// archiving a captured run and re-analyzing it offline (or with external
// tooling).
func WriteJSONL(w io.Writer, trace []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range trace {
		ev := &trace[i]
		je := jsonlEvent{
			PC:      ev.PC,
			Lat:     ev.Latency,
			Deps:    ev.Deps,
			Mis:     ev.Mispredict,
			Penalty: ev.MispredictPenalty,
		}
		if err := enc.Encode(&je); err != nil {
			return fmt.Errorf("critpath: encode event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a trace previously written by WriteJSONL. It validates
// the dependency structure (topological: deps reference earlier events
// only) so Analyze cannot panic on corrupt input.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var trace []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var je jsonlEvent
		if err := json.Unmarshal(sc.Bytes(), &je); err != nil {
			return nil, fmt.Errorf("critpath: line %d: %w", line, err)
		}
		for _, d := range je.Deps {
			if d < 0 || d >= len(trace) {
				return nil, fmt.Errorf("critpath: line %d: dep %d out of range", line, d)
			}
		}
		trace = append(trace, Event{
			PC:                je.PC,
			Latency:           je.Lat,
			Deps:              je.Deps,
			Mispredict:        je.Mis,
			MispredictPenalty: je.Penalty,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("critpath: scan: %w", err)
	}
	return trace, nil
}
