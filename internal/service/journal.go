package service

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// JournalVersion is the first line of every journal file. Bump it when
// entry semantics change: a mismatched journal refuses to replay instead
// of silently resurrecting jobs under different rules.
const JournalVersion = "acbd-journal/1"

// ErrJournalVersion reports a journal written under a different format
// version.
var ErrJournalVersion = errors.New("service: journal version mismatch")

// Journal is the scheduler's write-ahead log: an append-only JSONL file,
// fsync'd per record, holding every job's submit/start/requeue/terminal
// transitions. On open, the existing file is replayed — jobs with no
// terminal record are the crash survivors — and compacted down to just
// those survivors, so the journal never grows across restarts.
//
// Append-path durability is deliberate: Submit is acknowledged to the
// client only after its journal record is on disk, which is what makes
// "a 201 response means the job survives kill -9" true.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// journalEntry is one JSONL record. Op is one of submit | start |
// requeue | done | failed | cancelled (terminal ops mirror JobState).
type journalEntry struct {
	Op string `json:"op"`
	ID string `json:"id"`
	// Submit/requeue payload. Attempt is the number of runs begun so
	// far (0 on first submit; a requeue after run N records N).
	Key     string   `json:"key,omitempty"`
	Request *Request `json:"request,omitempty"`
	Attempt int      `json:"attempt,omitempty"`
	// Terminal payload.
	Err  string    `json:"err,omitempty"`
	Time time.Time `json:"t,omitempty"`
}

// journalHeader is the version line.
type journalHeader struct {
	Version string `json:"version"`
}

// ReplayJob is one crash survivor recovered from a journal: a job that
// was queued (or running: Interrupted) when the previous daemon died.
type ReplayJob struct {
	ID      string
	Key     string
	Request Request
	// Attempt counts runs begun so far, including the interrupted one.
	Attempt int
	// Interrupted marks jobs that had started running: their in-flight
	// run counts as an attempt, and they re-enqueue at the front of the
	// recovered order just as they originally ran.
	Interrupted bool
}

// OpenJournal opens (creating if needed) the journal at path, replays
// any existing records into the list of crash-surviving jobs in original
// submission order, and compacts the file down to those survivors. The
// returned journal is open for appending.
//
// A torn final line — the tail of an append cut off by the crash the
// journal exists to survive — ends replay silently; everything before it
// is intact because each record was fsync'd before the next began.
func OpenJournal(path string) (*Journal, []ReplayJob, error) {
	pending, err := replayJournal(path)
	if err != nil {
		return nil, nil, err
	}
	// Compact: rewrite header + one submit record per survivor, then
	// swap atomically. A crash inside compaction leaves either the old
	// or the new file, both valid.
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return nil, nil, fmt.Errorf("service: journal compact: %w", err)
	}
	defer os.Remove(tmp.Name())
	enc := json.NewEncoder(tmp)
	if err := enc.Encode(journalHeader{Version: JournalVersion}); err != nil {
		tmp.Close()
		return nil, nil, err
	}
	for _, rj := range pending {
		req := rj.Request
		// An interrupted job's in-flight run is already folded into
		// Attempt, so a bare submit record carries it through compaction
		// without re-bumping on the next replay.
		e := journalEntry{Op: "submit", ID: rj.ID, Key: rj.Key, Request: &req,
			Attempt: rj.Attempt, Time: time.Now().UTC()}
		if err := enc.Encode(e); err != nil {
			tmp.Close()
			return nil, nil, err
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return nil, nil, err
	}
	if err := tmp.Close(); err != nil {
		return nil, nil, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return nil, nil, err
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		return nil, nil, err
	}

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("service: journal open: %w", err)
	}
	return &Journal{f: f, path: path}, pending, nil
}

// replayJournal reads the journal at path and reduces it to the jobs
// with no terminal record, in submission order. A missing file is an
// empty journal.
func replayJournal(path string) ([]ReplayJob, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("service: journal replay: %w", err)
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4<<20)
	if !sc.Scan() {
		return nil, sc.Err() // empty file: fresh journal
	}
	var hdr journalHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil || hdr.Version == "" {
		return nil, fmt.Errorf("service: journal %s: malformed header %q", path, sc.Text())
	}
	if hdr.Version != JournalVersion {
		return nil, fmt.Errorf("%w: file %q, this build %q", ErrJournalVersion, hdr.Version, JournalVersion)
	}

	type jobAcc struct {
		rj      ReplayJob
		started bool // a start record newer than the last submit/requeue
		dead    bool
	}
	acc := make(map[string]*jobAcc)
	var order []string
	for sc.Scan() {
		var e journalEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			break // torn tail from the crash: replay what made it to disk
		}
		switch e.Op {
		case "submit":
			if e.Request == nil || e.ID == "" {
				continue
			}
			acc[e.ID] = &jobAcc{rj: ReplayJob{ID: e.ID, Key: e.Key, Request: *e.Request, Attempt: e.Attempt}}
			order = append(order, e.ID)
		case "start":
			if a := acc[e.ID]; a != nil {
				a.started = true
			}
		case "requeue":
			if a := acc[e.ID]; a != nil {
				a.started = false
				a.rj.Attempt = e.Attempt
			}
		case "done", "failed", "cancelled":
			if a := acc[e.ID]; a != nil {
				a.dead = true
			}
		}
	}

	var pending []ReplayJob
	for _, id := range order {
		a := acc[id]
		if a == nil || a.dead {
			continue
		}
		if a.started {
			a.rj.Attempt++
			a.rj.Interrupted = true
		}
		pending = append(pending, a.rj)
	}
	return pending, nil
}

// append writes one record and fsyncs it. The scheduler treats append
// failures as non-fatal (the job still runs; it just loses crash
// durability), so append only reports the error for logging/counting.
func (j *Journal) append(e journalEntry) error {
	if j == nil {
		return nil
	}
	b, err := json.Marshal(e)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("service: journal closed")
	}
	if _, err := j.f.Write(append(b, '\n')); err != nil {
		return err
	}
	return j.f.Sync()
}

// Submit records a job's acceptance. Attempt is the runs-begun count
// (0 for a fresh submission).
func (j *Journal) Submit(id, key string, req Request, attempt int) error {
	return j.append(journalEntry{Op: "submit", ID: id, Key: key, Request: &req,
		Attempt: attempt, Time: time.Now().UTC()})
}

// Start records that a run of the job has begun.
func (j *Journal) Start(id string) error {
	return j.append(journalEntry{Op: "start", ID: id})
}

// Requeue records a transient failure put back on the queue; attempt is
// the runs-begun count at the time of requeue.
func (j *Journal) Requeue(id string, attempt int) error {
	return j.append(journalEntry{Op: "requeue", ID: id, Attempt: attempt})
}

// Terminal records a job reaching state done, failed or cancelled.
// Replay drops such jobs, so a crash after this record never re-runs
// the work.
func (j *Journal) Terminal(id string, state JobState, errMsg string) error {
	return j.append(journalEntry{Op: string(state), ID: id, Err: errMsg, Time: time.Now().UTC()})
}

// Close stops the journal; later appends fail.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// Path returns the journal's file path.
func (j *Journal) Path() string {
	if j == nil {
		return ""
	}
	return j.path
}

// syncDir fsyncs a directory so a just-renamed file inside it survives
// power loss (shared by the journal and the result store's disk tier).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
