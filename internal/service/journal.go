package service

import (
	"encoding/json"
	"time"

	"acb/internal/wal"
)

// JournalVersion is the first line of every journal file. Bump it when
// entry semantics change: a mismatched journal refuses to replay instead
// of silently resurrecting jobs under different rules.
const JournalVersion = "acbd-journal/1"

// ErrJournalVersion reports a journal written under a different format
// version. It is the shared wal engine's version error: the journal is
// a thin client over internal/wal, which owns the file format, fsync
// discipline, torn-tail replay and compaction.
var ErrJournalVersion = wal.ErrVersion

// Journal is the scheduler's write-ahead log: an append-only JSONL file,
// fsync'd per record, holding every job's submit/start/requeue/terminal
// transitions. On open, the existing file is replayed — jobs with no
// terminal record are the crash survivors — and compacted down to just
// those survivors, so the journal never grows across restarts.
//
// Append-path durability is deliberate: Submit is acknowledged to the
// client only after its journal record is on disk, which is what makes
// "a 201 response means the job survives kill -9" true. The mechanics
// live in internal/wal; this type owns only the entry vocabulary and
// the replay reduction.
type Journal struct {
	log *wal.Log
}

// journalEntry is one JSONL record. Op is one of submit | start |
// requeue | done | failed | cancelled (terminal ops mirror JobState).
type journalEntry struct {
	Op string `json:"op"`
	ID string `json:"id"`
	// Submit/requeue payload. Attempt is the number of runs begun so
	// far (0 on first submit; a requeue after run N records N).
	Key     string   `json:"key,omitempty"`
	Request *Request `json:"request,omitempty"`
	Attempt int      `json:"attempt,omitempty"`
	// Terminal payload.
	Err  string    `json:"err,omitempty"`
	Time time.Time `json:"t,omitempty"`
}

// ReplayJob is one crash survivor recovered from a journal: a job that
// was queued (or running: Interrupted) when the previous daemon died.
type ReplayJob struct {
	ID      string
	Key     string
	Request Request
	// Attempt counts runs begun so far, including the interrupted one.
	Attempt int
	// Interrupted marks jobs that had started running: their in-flight
	// run counts as an attempt, and they re-enqueue at the front of the
	// recovered order just as they originally ran.
	Interrupted bool
}

// OpenJournal opens (creating if needed) the journal at path, replays
// any existing records into the list of crash-surviving jobs in original
// submission order, and compacts the file down to those survivors. The
// returned journal is open for appending.
//
// A torn final line — the tail of an append cut off by the crash the
// journal exists to survive — ends replay silently; everything before it
// is intact because each record was fsync'd before the next began.
func OpenJournal(path string) (*Journal, []ReplayJob, error) {
	recs, err := wal.Replay(path, JournalVersion)
	if err != nil {
		return nil, nil, err
	}
	pending := reduceJournal(recs)
	// Compact: header + one submit record per survivor. An interrupted
	// job's in-flight run is already folded into Attempt, so a bare
	// submit record carries it through compaction without re-bumping on
	// the next replay.
	survivors := make([]interface{}, 0, len(pending))
	for _, rj := range pending {
		req := rj.Request
		survivors = append(survivors, journalEntry{Op: "submit", ID: rj.ID, Key: rj.Key,
			Request: &req, Attempt: rj.Attempt, Time: time.Now().UTC()})
	}
	log, err := wal.Create(path, JournalVersion, survivors)
	if err != nil {
		return nil, nil, err
	}
	return &Journal{log: log}, pending, nil
}

// reduceJournal folds raw journal records down to the jobs with no
// terminal record, in submission order.
func reduceJournal(recs []json.RawMessage) []ReplayJob {
	type jobAcc struct {
		rj      ReplayJob
		started bool // a start record newer than the last submit/requeue
		dead    bool
	}
	acc := make(map[string]*jobAcc)
	var order []string
	for _, b := range recs {
		var e journalEntry
		if err := json.Unmarshal(b, &e); err != nil {
			break // record from a future vocabulary: stop, like a torn tail
		}
		switch e.Op {
		case "submit":
			if e.Request == nil || e.ID == "" {
				continue
			}
			acc[e.ID] = &jobAcc{rj: ReplayJob{ID: e.ID, Key: e.Key, Request: *e.Request, Attempt: e.Attempt}}
			order = append(order, e.ID)
		case "start":
			if a := acc[e.ID]; a != nil {
				a.started = true
			}
		case "requeue":
			if a := acc[e.ID]; a != nil {
				a.started = false
				a.rj.Attempt = e.Attempt
			}
		case "done", "failed", "cancelled":
			if a := acc[e.ID]; a != nil {
				a.dead = true
			}
		}
	}

	var pending []ReplayJob
	for _, id := range order {
		a := acc[id]
		if a == nil || a.dead {
			continue
		}
		if a.started {
			a.rj.Attempt++
			a.rj.Interrupted = true
		}
		pending = append(pending, a.rj)
	}
	return pending
}

// SetFaults installs the fault-injection hook fired as "journal.append"
// before every record; chaos tests only.
func (j *Journal) SetFaults(f FaultPoints) {
	if j == nil {
		return
	}
	j.log.SetFaults(f, "journal")
}

// Submit records a job's acceptance. Attempt is the runs-begun count
// (0 for a fresh submission).
func (j *Journal) Submit(id, key string, req Request, attempt int) error {
	if j == nil {
		return nil
	}
	return j.log.Append(journalEntry{Op: "submit", ID: id, Key: key, Request: &req,
		Attempt: attempt, Time: time.Now().UTC()})
}

// Start records that a run of the job has begun.
func (j *Journal) Start(id string) error {
	if j == nil {
		return nil
	}
	return j.log.Append(journalEntry{Op: "start", ID: id})
}

// Requeue records a transient failure put back on the queue; attempt is
// the runs-begun count at the time of requeue.
func (j *Journal) Requeue(id string, attempt int) error {
	if j == nil {
		return nil
	}
	return j.log.Append(journalEntry{Op: "requeue", ID: id, Attempt: attempt})
}

// Terminal records a job reaching state done, failed or cancelled.
// Replay drops such jobs, so a crash after this record never re-runs
// the work.
func (j *Journal) Terminal(id string, state JobState, errMsg string) error {
	if j == nil {
		return nil
	}
	return j.log.Append(journalEntry{Op: string(state), ID: id, Err: errMsg, Time: time.Now().UTC()})
}

// Close stops the journal; later appends fail.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	return j.log.Close()
}

// Path returns the journal's file path.
func (j *Journal) Path() string {
	if j == nil {
		return ""
	}
	return j.log.Path()
}

// syncDir fsyncs a directory so a just-renamed file inside it survives
// power loss (used by the result store's disk tier; the journal's own
// compaction syncs inside internal/wal).
func syncDir(dir string) error { return wal.SyncDir(dir) }
