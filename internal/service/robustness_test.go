package service

import (
	"context"
	"math/rand"
	"net/http"
	"strings"
	"testing"
	"time"

	"acb/internal/faultinject"
)

// newRobustScheduler builds a scheduler over an in-memory (or dir-backed)
// store with fast retry timing, shut down with the test.
func newRobustScheduler(t *testing.T, cfg SchedulerConfig, dir string) *Scheduler {
	t.Helper()
	store, err := NewStore(16, dir)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Faults != nil {
		store.SetFaults(cfg.Faults)
	}
	if cfg.RetryBase == 0 {
		cfg.RetryBase = time.Millisecond
	}
	if cfg.RetryMax == 0 {
		cfg.RetryMax = 5 * time.Millisecond
	}
	if cfg.RetrySeed == 0 {
		cfg.RetrySeed = 1
	}
	sched := NewScheduler(cfg, store)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		sched.Shutdown(ctx)
	})
	return sched
}

func waitTerminal(t *testing.T, sched *Scheduler, id string) JobStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := sched.Wait(ctx, id)
	if err != nil {
		t.Fatalf("wait %s: %v", id, err)
	}
	return st
}

// gateFaults blocks the worker at the "worker" injection point until
// released, letting tests pin a job in the running state with no timing
// races.
type gateFaults struct{ release chan struct{} }

func (g gateFaults) Fire(point string) error {
	if point == "worker" {
		<-g.release
	}
	return nil
}

// TestRetryTransientFailure: injected worker faults on the first two runs
// are retried with backoff and the third run succeeds; attempts and the
// retried counter reflect the schedule.
func TestRetryTransientFailure(t *testing.T) {
	inj := faultinject.New(1)
	inj.Set("worker", faultinject.Rule{Nth: 1, Limit: 2}) // fail run 1 and 2
	sched := newRobustScheduler(t, SchedulerConfig{Faults: inj, MaxAttempts: 3}, "")

	st, created, err := sched.Submit(Request{Experiment: "table1"})
	if err != nil || !created {
		t.Fatalf("submit: created=%v err=%v", created, err)
	}
	final := waitTerminal(t, sched, st.ID)
	if final.State != JobDone {
		t.Fatalf("job %s (%s), want done after retries", final.State, final.Error)
	}
	if final.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", final.Attempts)
	}
	if got := sched.Counters().Get("retried"); got != 2 {
		t.Fatalf("retried counter = %d, want 2", got)
	}
	if got := sched.Counters().Get("done"); got != 1 {
		t.Fatalf("done counter = %d, want 1", got)
	}
}

// TestRetryExhaustion: a job that keeps failing transiently is retried
// exactly MaxAttempts-1 times, then fails with the transient error kind.
func TestRetryExhaustion(t *testing.T) {
	inj := faultinject.New(1)
	inj.Set("worker", faultinject.Rule{Nth: 1}) // always fail
	sched := newRobustScheduler(t, SchedulerConfig{Faults: inj, MaxAttempts: 3}, "")

	st, _, err := sched.Submit(Request{Experiment: "table1"})
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, sched, st.ID)
	if final.State != JobFailed {
		t.Fatalf("job %s, want failed", final.State)
	}
	if final.ErrorKind != ErrKindTransient {
		t.Fatalf("error kind %q, want %q", final.ErrorKind, ErrKindTransient)
	}
	if final.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", final.Attempts)
	}
	if !strings.Contains(final.Error, "attempt 3/3") {
		t.Fatalf("error %q does not surface the attempt count", final.Error)
	}
	if got := sched.Counters().Get("retried"); got != 2 {
		t.Fatalf("retried counter = %d, want 2", got)
	}
	if got := faultinject.IsInjected(nil); got {
		t.Fatal("sanity: nil is not injected")
	}
}

// TestRetryBackoffSchedule: the delays requested from the injected timer
// follow the exponential equal-jitter schedule.
func TestRetryBackoffSchedule(t *testing.T) {
	inj := faultinject.New(1)
	inj.Set("worker", faultinject.Rule{Nth: 1}) // always fail
	delays := make(chan time.Duration, 16)
	base, max := 100*time.Millisecond, 350*time.Millisecond
	cfg := SchedulerConfig{
		Faults:      inj,
		MaxAttempts: 4,
		RetryBase:   base,
		RetryMax:    max,
		RetrySeed:   7,
		After: func(d time.Duration) <-chan time.Time {
			delays <- d
			ch := make(chan time.Time, 1)
			ch <- time.Time{}
			return ch
		},
	}
	sched := newRobustScheduler(t, cfg, "")
	st, _, err := sched.Submit(Request{Experiment: "table1"})
	if err != nil {
		t.Fatal(err)
	}
	if final := waitTerminal(t, sched, st.ID); final.State != JobFailed {
		t.Fatalf("job %s, want failed after exhausting retries", final.State)
	}
	// Three retries: after runs 1, 2 and 3. Expected envelopes (equal
	// jitter in [d/2, d]): d1=base, d2=2*base, d3=min(4*base, max)=max.
	wantMax := []time.Duration{base, 2 * base, max}
	for i, hi := range wantMax {
		select {
		case d := <-delays:
			if d < hi/2 || d > hi {
				t.Fatalf("retry %d delay %s outside [%s, %s]", i+1, d, hi/2, hi)
			}
		default:
			t.Fatalf("timer fired only %d times, want %d", i, len(wantMax))
		}
	}
}

// TestRetryDelayDeterministic: the jitter is reproducible from the seed
// and respects the cap.
func TestRetryDelayDeterministic(t *testing.T) {
	base, max := 250*time.Millisecond, 10*time.Second
	a, b := rand.New(rand.NewSource(42)), rand.New(rand.NewSource(42))
	for attempt := 1; attempt <= 12; attempt++ {
		da, db := retryDelay(attempt, base, max, a), retryDelay(attempt, base, max, b)
		if da != db {
			t.Fatalf("attempt %d: same seed gave %s vs %s", attempt, da, db)
		}
		if da > max {
			t.Fatalf("attempt %d: delay %s above cap %s", attempt, da, max)
		}
		if da < base/2 {
			t.Fatalf("attempt %d: delay %s below base/2", attempt, da)
		}
	}
	// Deep attempts saturate at the cap's jitter band.
	d := retryDelay(40, base, max, rand.New(rand.NewSource(3)))
	if d < max/2 || d > max {
		t.Fatalf("saturated delay %s outside [%s, %s]", d, max/2, max)
	}
}

// TestDeadlineExceeded: a request-level timeout kills the run, classifies
// the failure distinctly, and is never retried.
func TestDeadlineExceeded(t *testing.T) {
	inj := faultinject.New(1)
	// Artificial slowness: 300ms stall per run against a 50ms deadline.
	inj.Set("worker.slow", faultinject.Rule{Kind: faultinject.Slow, Nth: 1, Delay: 300 * time.Millisecond})
	sched := newRobustScheduler(t, SchedulerConfig{Faults: inj}, "")

	st, _, err := sched.Submit(Request{Experiment: "table1", TimeoutMS: 50})
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, sched, st.ID)
	if final.State != JobFailed {
		t.Fatalf("job %s (%s), want failed", final.State, final.Error)
	}
	if final.ErrorKind != ErrKindDeadline {
		t.Fatalf("error kind %q, want %q", final.ErrorKind, ErrKindDeadline)
	}
	if !strings.Contains(final.Error, "deadline exceeded") {
		t.Fatalf("error %q missing deadline classification", final.Error)
	}
	if final.Attempts != 1 {
		t.Fatalf("deadline-exceeded job was retried: attempts = %d", final.Attempts)
	}
	if got := sched.Counters().Get("deadline_exceeded"); got != 1 {
		t.Fatalf("deadline_exceeded counter = %d, want 1", got)
	}
	if got := sched.Counters().Get("retried"); got != 0 {
		t.Fatalf("retried counter = %d, want 0", got)
	}
}

// TestJobTimeoutResolution: request timeouts are capped by MaxTimeout and
// fall back to DefaultTimeout.
func TestJobTimeoutResolution(t *testing.T) {
	sched := newRobustScheduler(t, SchedulerConfig{
		DefaultTimeout: 2 * time.Second,
		MaxTimeout:     10 * time.Second,
	}, "")
	for _, tc := range []struct {
		ms   int64
		want time.Duration
	}{
		{0, 2 * time.Second}, // default
		{500, 500 * time.Millisecond},
		{60_000, 10 * time.Second}, // capped
	} {
		if got := sched.jobTimeout(Request{TimeoutMS: tc.ms}); got != tc.want {
			t.Errorf("jobTimeout(%dms) = %s, want %s", tc.ms, got, tc.want)
		}
	}
	if _, err := (&Request{Experiment: "table1", TimeoutMS: -1}).Key(); err == nil {
		t.Error("negative timeout_ms accepted")
	}
	// The timeout must not perturb the content address: same work under a
	// different deadline is the same work.
	k1, err := (&Request{Experiment: "table1"}).Key()
	if err != nil {
		t.Fatal(err)
	}
	k2, err := (&Request{Experiment: "table1", TimeoutMS: 5000}).Key()
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Error("timeout_ms changed the result key")
	}
}

// TestSubmittedCounterExcludesRejections is the regression test for the
// counter bug: 429-rejected submissions must not inflate "submitted";
// they get their own "rejected" counter.
func TestSubmittedCounterExcludesRejections(t *testing.T) {
	gate := gateFaults{release: make(chan struct{})}
	sched := newRobustScheduler(t, SchedulerConfig{QueueDepth: 1, Workers: 1, Faults: gate}, "")

	// j1 occupies the worker (blocked on the gate), j2 the queue slot.
	st1, _, err := sched.Submit(Request{Experiment: "table1", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, _ := sched.Job(st1.ID)
		if st.State == JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if _, _, err := sched.Submit(Request{Experiment: "table1", Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sched.Submit(Request{Experiment: "table1", Seed: 3}); err != ErrQueueFull {
		t.Fatalf("third submit err = %v, want ErrQueueFull", err)
	}
	if got := sched.Counters().Get("submitted"); got != 2 {
		t.Fatalf("submitted = %d, want 2 (rejections must not count)", got)
	}
	if got := sched.Counters().Get("rejected"); got != 1 {
		t.Fatalf("rejected = %d, want 1", got)
	}
	close(gate.release)
}

// TestTerminalJobRetention is the regression test for the unbounded job
// table: terminal jobs beyond RetainJobs are evicted in submission
// order, active jobs never are, and evicted IDs 404.
func TestTerminalJobRetention(t *testing.T) {
	sched := newRobustScheduler(t, SchedulerConfig{RetainJobs: 2}, "")

	var ids []string
	for seed := int64(1); seed <= 5; seed++ {
		st, _, err := sched.Submit(Request{Experiment: "table1", Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, sched, st.ID)
		ids = append(ids, st.ID)
	}

	jobs := sched.Jobs()
	if len(jobs) != 2 {
		t.Fatalf("retained %d jobs, want 2: %+v", len(jobs), jobs)
	}
	if jobs[0].ID != ids[3] || jobs[1].ID != ids[4] {
		t.Fatalf("retained %s,%s; want the newest %s,%s", jobs[0].ID, jobs[1].ID, ids[3], ids[4])
	}
	for _, id := range ids[:3] {
		if _, err := sched.Job(id); err != ErrUnknownJob {
			t.Errorf("evicted job %s still served (err %v)", id, err)
		}
	}
	counts := sched.JobCounts()
	if counts[JobDone] != 2 {
		t.Errorf("done gauge = %d, want 2 after eviction", counts[JobDone])
	}
	// The monotonic counter keeps the full history.
	if got := sched.Counters().Get("done"); got != 5 {
		t.Errorf("done counter = %d, want 5", got)
	}
}

// TestRetentionNeverEvictsActive: a running job older than every terminal
// job survives eviction pressure.
func TestRetentionNeverEvictsActive(t *testing.T) {
	gate := gateFaults{release: make(chan struct{})}
	sched := newRobustScheduler(t, SchedulerConfig{RetainJobs: 1, Workers: 1, QueueDepth: 8, Faults: gate}, "")

	// Oldest job wedges in running; younger jobs complete... but they
	// complete only after the gate opens (Workers=1), so use cache hits:
	// pre-store results so submissions are born terminal.
	running, _, err := sched.Submit(Request{Experiment: "table1", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, _ := sched.Job(running.ID)
		if st.State == JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	// Born-done cache hits pile terminal jobs behind the running one.
	key2, _ := (&Request{Experiment: "table1", Seed: 2}).Key()
	key3, _ := (&Request{Experiment: "table1", Seed: 3}).Key()
	sched.Store().Put(key2, Request{Experiment: "table1", Seed: 2}, testTable("t2"))
	sched.Store().Put(key3, Request{Experiment: "table1", Seed: 3}, testTable("t3"))
	for seed := int64(2); seed <= 3; seed++ {
		if st, _, err := sched.Submit(Request{Experiment: "table1", Seed: seed}); err != nil || st.State != JobDone {
			t.Fatalf("cache-hit submit: state=%v err=%v", st.State, err)
		}
	}

	if _, err := sched.Job(running.ID); err != nil {
		t.Fatalf("active job evicted: %v", err)
	}
	counts := sched.JobCounts()
	if counts[JobRunning] != 1 || counts[JobDone] != 1 {
		t.Fatalf("counts = %+v, want 1 running + 1 done retained", counts)
	}
	close(gate.release)
}

// TestSchedulerReplayRestore: journal-recovered jobs re-enqueue exactly
// once, keep their IDs, bump attempts for the interrupted one, and new
// submissions allocate IDs past every recovered one.
func TestSchedulerReplayRestore(t *testing.T) {
	replay := []ReplayJob{
		{ID: "j000004", Key: mustKey(t, Request{Experiment: "table1", Seed: 4}), Request: Request{Experiment: "table1", Seed: 4}, Attempt: 1, Interrupted: true},
		{ID: "j000007", Key: mustKey(t, Request{Experiment: "table1", Seed: 7}), Request: Request{Experiment: "table1", Seed: 7}, Attempt: 0},
	}
	sched := newRobustScheduler(t, SchedulerConfig{Replay: replay}, "")

	for _, rj := range replay {
		st := waitTerminal(t, sched, rj.ID)
		if st.State != JobDone {
			t.Fatalf("replayed %s finished %s: %s", rj.ID, st.State, st.Error)
		}
		if !st.Replayed {
			t.Errorf("replayed %s not flagged", rj.ID)
		}
	}
	if st, _ := sched.Job("j000004"); st.Attempts != 2 {
		t.Errorf("interrupted job attempts = %d, want 2 (crash run + rerun)", st.Attempts)
	}
	if st, _ := sched.Job("j000007"); st.Attempts != 1 {
		t.Errorf("queued job attempts = %d, want 1", st.Attempts)
	}
	c := sched.Counters()
	if c.Get("replayed") != 2 || c.Get("interrupted") != 1 {
		t.Errorf("replayed/interrupted = %d/%d, want 2/1", c.Get("replayed"), c.Get("interrupted"))
	}
	if c.Get("done") != 2 || c.Get("simulated") != 2 {
		t.Errorf("done/simulated = %d/%d, want 2/2 (each survivor runs exactly once)", c.Get("done"), c.Get("simulated"))
	}

	// Fresh IDs continue past the recovered ones.
	st, _, err := sched.Submit(Request{Experiment: "table1", Seed: 100})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "j000008" {
		t.Errorf("new job ID %s, want j000008 (past recovered j000007)", st.ID)
	}
}

// TestReplayAttemptsExhausted: a job whose attempts were already burned
// across previous incarnations fails immediately on restore instead of
// crash-looping forever.
func TestReplayAttemptsExhausted(t *testing.T) {
	rj := ReplayJob{ID: "j000001", Key: mustKey(t, Request{Experiment: "table1"}),
		Request: Request{Experiment: "table1"}, Attempt: 3, Interrupted: true}
	sched := newRobustScheduler(t, SchedulerConfig{Replay: []ReplayJob{rj}, MaxAttempts: 3}, "")
	st := waitTerminal(t, sched, rj.ID)
	if st.State != JobFailed || st.ErrorKind != ErrKindTransient {
		t.Fatalf("state=%s kind=%s, want failed/transient", st.State, st.ErrorKind)
	}
	if !strings.Contains(st.Error, "attempts exhausted") {
		t.Fatalf("error %q", st.Error)
	}
	if got := sched.Counters().Get("simulated"); got != 0 {
		t.Fatalf("exhausted job still simulated %d times", got)
	}
}

// TestReplayServedFromStore: a job that persisted its result but crashed
// before the terminal journal record completes from the store on
// restore, without re-running.
func TestReplayServedFromStore(t *testing.T) {
	dir := t.TempDir()
	req := Request{Experiment: "table1", Seed: 9}
	key := mustKey(t, req)
	seed, err := NewStore(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := seed.Put(key, req, testTable("already-persisted")); err != nil {
		t.Fatal(err)
	}

	rj := ReplayJob{ID: "j000002", Key: key, Request: req, Attempt: 1, Interrupted: true}
	sched := newRobustScheduler(t, SchedulerConfig{Replay: []ReplayJob{rj}}, dir)
	st := waitTerminal(t, sched, rj.ID)
	if st.State != JobDone || !st.CacheHit {
		t.Fatalf("state=%s cacheHit=%v, want done cache hit", st.State, st.CacheHit)
	}
	if got := sched.Counters().Get("simulated"); got != 0 {
		t.Fatalf("persisted job re-simulated %d times", got)
	}
}

// TestReadyzLifecycle: readiness is distinct from liveness — 503 with
// Retry-After during drain while healthz stays 200.
func TestReadyzLifecycle(t *testing.T) {
	ts, sched := newTestServer(t, SchedulerConfig{}, "")

	resp, err := http.Get(ts.URL + "/v1/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz = %d, want 200", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := sched.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	resp, err = http.Get(ts.URL + "/v1/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining readyz missing Retry-After")
	}
	if code := getJSON(t, ts.URL+"/v1/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz during drain = %d, want 200 (liveness != readiness)", code)
	}

	// Submissions during drain carry Retry-After too.
	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"experiment":"table1"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("drain submit = %d (Retry-After %q), want 503 with Retry-After",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}
}

// TestPersistFailureRetries: a store.persist fault is a transient job
// failure — retried, then succeeding once the injection budget runs out —
// and the disk-error counter sees every failure.
func TestPersistFailureRetries(t *testing.T) {
	inj := faultinject.New(1)
	inj.Set("store.persist", faultinject.Rule{Nth: 1, Limit: 2})
	sched := newRobustScheduler(t, SchedulerConfig{Faults: inj, MaxAttempts: 3}, t.TempDir())

	st, _, err := sched.Submit(Request{Experiment: "table1"})
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, sched, st.ID)
	if final.State != JobDone {
		t.Fatalf("job %s (%s), want done after persist retries", final.State, final.Error)
	}
	if final.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", final.Attempts)
	}
	if got := sched.Store().DiskErrors(); got != 2 {
		t.Fatalf("disk errors = %d, want 2", got)
	}
	if _, ok := sched.Store().Get(st.ResultKey); !ok {
		t.Fatal("result missing after successful retry")
	}
}

func mustKey(t *testing.T, req Request) string {
	t.Helper()
	k, err := req.Key()
	if err != nil {
		t.Fatal(err)
	}
	return k
}
