package service

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"acb/internal/faultinject"
)

// TestChaosStorm drives the scheduler through a seeded storm of injected
// disk-write failures, worker panics and artificial slowness while jobs
// are submitted and cancelled concurrently, and asserts the accounting
// invariants the fault-tolerance layer promises: every job reaches
// exactly one terminal state, done+failed+cancelled match submissions,
// every done job's result is retrievable, and the write-ahead journal is
// left with nothing to replay. Run it under -race.
func TestChaosStorm(t *testing.T) {
	dir := t.TempDir()
	inj := faultinject.New(42)
	inj.Set("store.persist", faultinject.Rule{Prob: 0.25})
	inj.Set("worker", faultinject.Rule{Kind: faultinject.Panic, Nth: 5})
	inj.Set("worker.slow", faultinject.Rule{Kind: faultinject.Slow, Prob: 0.2, Delay: 200 * time.Microsecond})
	inj.Set("store.load", faultinject.Rule{Prob: 0.1})

	journalFile := filepath.Join(dir, "journal.jsonl")
	journal, replay, err := OpenJournal(journalFile)
	if err != nil {
		t.Fatal(err)
	}
	if len(replay) != 0 {
		t.Fatalf("fresh journal replayed %d jobs", len(replay))
	}
	store, err := NewStore(64, filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	store.SetFaults(inj)
	sched := NewScheduler(SchedulerConfig{
		Workers:     2,
		QueueDepth:  64,
		MaxAttempts: 4,
		RetryBase:   time.Millisecond,
		RetryMax:    5 * time.Millisecond,
		RetrySeed:   42,
		Journal:     journal,
		Faults:      inj,
	}, store)

	const jobs = 40
	ids := make([]string, 0, jobs)
	for seed := int64(1); seed <= jobs; seed++ {
		st, _, err := sched.Submit(Request{Experiment: "table1", Seed: seed})
		if err != nil {
			t.Fatalf("submit seed %d: %v", seed, err)
		}
		ids = append(ids, st.ID)
		// Cancel a scattering of jobs at whatever state they happen to be
		// in — queued, running, or already terminal.
		if seed%7 == 0 {
			sched.Cancel(st.ID)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	states := make(map[JobState]int)
	for _, id := range ids {
		st, err := sched.Wait(ctx, id)
		if err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
		states[st.State]++
		switch st.State {
		case JobDone:
			if _, ok := store.Get(st.ResultKey); !ok {
				t.Errorf("done job %s: result %s missing from store", id, st.ResultKey)
			}
		case JobFailed, JobCancelled:
		default:
			t.Errorf("job %s in non-terminal state %s after Wait", id, st.State)
		}
	}
	if total := states[JobDone] + states[JobFailed] + states[JobCancelled]; total != jobs {
		t.Errorf("terminal states %+v sum to %d, want %d (lost or duplicated jobs)", states, total, jobs)
	}
	c := sched.Counters()
	if got := c.Get("submitted"); got != jobs {
		t.Errorf("submitted = %d, want %d", got, jobs)
	}
	if sum := c.Get("done") + c.Get("failed") + c.Get("cancelled"); sum != jobs {
		t.Errorf("done+failed+cancelled = %d, want %d (double-counted terminal transitions)", sum, jobs)
	}
	// The storm must actually have stormed, or the test is vacuous.
	var injected int64
	for _, n := range inj.Counts() {
		injected += n
	}
	if injected == 0 {
		t.Error("no faults fired; storm parameters too tame")
	}
	if c.Get("retried") == 0 {
		t.Error("no retries happened under fault injection")
	}
	t.Logf("storm: states=%+v retried=%d injected=%d diskErrs=%d",
		states, c.Get("retried"), injected, store.DiskErrors())

	if err := sched.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// Every terminal transition was journaled, so a restart finds nothing
	// to replay: no job lost, none resurrected for a double run.
	j2, replay, err := OpenJournal(journalFile)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(replay) != 0 {
		t.Fatalf("journal replayed %d jobs after clean terminal states: %+v", len(replay), replay)
	}
}

// TestCrashRecoveryByteIdentical is the acceptance test for crash
// recovery: a daemon is "killed" with one job mid-run and one queued,
// a second daemon over the same journal and store directories replays
// and reruns them, and the recovered results are byte-identical to those
// of a daemon that never crashed.
func TestCrashRecoveryByteIdentical(t *testing.T) {
	dir := t.TempDir()
	journalFile := filepath.Join(dir, "journal.jsonl")
	storeDir := filepath.Join(dir, "store")

	reqA := Request{Experiment: "census", Workloads: []string{"compression"}, Budget: 40_000}
	reqB := Request{Experiment: "cpistack", Workloads: []string{"compression"}, Budget: 20_000}

	// --- incarnation 1: wedge reqA mid-run, leave reqB queued, "crash".
	journal1, _, err := OpenJournal(journalFile)
	if err != nil {
		t.Fatal(err)
	}
	store1, err := NewStore(16, storeDir)
	if err != nil {
		t.Fatal(err)
	}
	gate := gateFaults{release: make(chan struct{})}
	sched1 := NewScheduler(SchedulerConfig{Workers: 1, Journal: journal1, Faults: gate}, store1)
	// The "crash": sched1 is abandoned, never drained. Its worker stays
	// wedged at the gate until the test is over; the cleanup below (LIFO,
	// so it runs after all assertions) releases it and tears it down.
	t.Cleanup(func() {
		close(gate.release)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		sched1.Shutdown(ctx)
	})

	stA, _, err := sched1.Submit(reqA)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, _ := sched1.Job(stA.ID)
		if st.State == JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job A never started")
		}
		time.Sleep(time.Millisecond)
	}
	stB, _, err := sched1.Submit(reqB)
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := sched1.Job(stB.ID); st.State != JobQueued {
		t.Fatalf("job B %s, want queued behind the wedged worker", st.State)
	}

	// --- incarnation 2: same journal, same store, no crash this time.
	journal2, replay, err := OpenJournal(journalFile)
	if err != nil {
		t.Fatal(err)
	}
	if len(replay) != 2 {
		t.Fatalf("replayed %d jobs, want 2: %+v", len(replay), replay)
	}
	if replay[0].ID != stA.ID || !replay[0].Interrupted || replay[0].Attempt != 1 {
		t.Fatalf("replay[0] = %+v, want interrupted %s with the crashed run counted", replay[0], stA.ID)
	}
	if replay[1].ID != stB.ID || replay[1].Interrupted || replay[1].Attempt != 0 {
		t.Fatalf("replay[1] = %+v, want queued %s untouched", replay[1], stB.ID)
	}

	store2, err := NewStore(16, storeDir)
	if err != nil {
		t.Fatal(err)
	}
	sched2 := NewScheduler(SchedulerConfig{Workers: 1, Journal: journal2, Replay: replay}, store2)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for _, id := range []string{stA.ID, stB.ID} {
		st, err := sched2.Wait(ctx, id)
		if err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
		if st.State != JobDone {
			t.Fatalf("recovered job %s finished %s: %s", id, st.State, st.Error)
		}
		if !st.Replayed {
			t.Errorf("recovered job %s not marked replayed", id)
		}
	}
	if st, _ := sched2.Job(stA.ID); st.Attempts != 2 {
		t.Errorf("interrupted job attempts = %d, want 2 (crashed run + recovery run)", st.Attempts)
	}
	if err := sched2.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// --- reference: a daemon that never crashed, in a pristine store.
	refDir := filepath.Join(dir, "ref")
	refStore, err := NewStore(16, refDir)
	if err != nil {
		t.Fatal(err)
	}
	refSched := NewScheduler(SchedulerConfig{Workers: 1}, refStore)
	for _, req := range []Request{reqA, reqB} {
		st, _, err := refSched.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		if st, err := refSched.Wait(ctx, st.ID); err != nil || st.State != JobDone {
			t.Fatalf("reference run: %+v err=%v", st, err)
		}
	}
	if err := refSched.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	for _, req := range []Request{reqA, reqB} {
		key := mustKey(t, req)
		recovered, err := os.ReadFile(filepath.Join(storeDir, key+".json"))
		if err != nil {
			t.Fatalf("recovered result %s: %v", key, err)
		}
		reference, err := os.ReadFile(filepath.Join(refDir, key+".json"))
		if err != nil {
			t.Fatalf("reference result %s: %v", key, err)
		}
		if !bytes.Equal(recovered, reference) {
			t.Errorf("%s: recovered result differs from never-crashed run\nrecovered: %s\nreference: %s",
				req.Experiment, recovered, reference)
		}
	}
}
