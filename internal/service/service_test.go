package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"acb/internal/experiments"
	"acb/internal/workload"
)

// newTestServer spins up a scheduler+API over an httptest server and
// tears both down with the test.
func newTestServer(t *testing.T, cfg SchedulerConfig, dir string) (*httptest.Server, *Scheduler) {
	t.Helper()
	store, err := NewStore(16, dir)
	if err != nil {
		t.Fatal(err)
	}
	sched := NewScheduler(cfg, store)
	ts := httptest.NewServer(NewServer(sched).Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		sched.Shutdown(ctx)
	})
	return ts, sched
}

func postJob(t *testing.T, ts *httptest.Server, req Request) (submitResponse, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var sr submitResponse
	if resp.StatusCode/100 == 2 {
		if err := json.Unmarshal(b, &sr); err != nil {
			t.Fatalf("submit response %q: %v", b, err)
		}
	}
	return sr, resp.StatusCode
}

func getJSON(t *testing.T, url string, v interface{}) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil && resp.StatusCode/100 == 2 {
		if err := json.Unmarshal(b, v); err != nil {
			t.Fatalf("decode %q: %v", b, err)
		}
	}
	return resp.StatusCode
}

func pollDone(t *testing.T, ts *httptest.Server, id string, within time.Duration) JobStatus {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		var st JobStatus
		if code := getJSON(t, ts.URL+"/v1/jobs/"+id, &st); code != http.StatusOK {
			t.Fatalf("GET job %s: status %d", id, code)
		}
		switch st.State {
		case JobDone, JobFailed, JobCancelled:
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %s", id, st.State, within)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestServiceEndToEnd drives the full loop over HTTP: submit a fig-style
// job, poll it to completion, fetch the result — which must be
// byte-identical to a direct experiments call — then resubmit the
// identical request and observe a cache hit that runs no new simulation.
func TestServiceEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	ts, sched := newTestServer(t, SchedulerConfig{SimJobs: 4}, t.TempDir())

	req := Request{Experiment: "fig6", Workloads: []string{"lammps", "compression"}, Budget: 40_000}
	sr, code := postJob(t, ts, req)
	if code != http.StatusCreated {
		t.Fatalf("submit status = %d, want 201", code)
	}
	if sr.Deduped || sr.CacheHit {
		t.Fatalf("fresh submit flagged deduped=%v cacheHit=%v", sr.Deduped, sr.CacheHit)
	}

	st := pollDone(t, ts, sr.ID, 2*time.Minute)
	if st.State != JobDone {
		t.Fatalf("job finished %s: %s", st.State, st.Error)
	}

	resp, err := http.Get(ts.URL + "/v1/results/" + st.ResultKey)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET result: %d %s", resp.StatusCode, body)
	}

	// Byte-identical to the direct harness call, at a different job count
	// (the runner guarantees scheduling-independent aggregation).
	opts := experiments.DefaultOptions()
	opts.Budget = req.Budget
	opts.Jobs = 1
	for _, n := range req.Workloads {
		w, err := workload.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		opts.Workloads = append(opts.Workloads, w)
	}
	direct, err := experiments.Run("fig6", opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(direct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want) {
		t.Fatalf("service result differs from direct experiments run:\n%s\nvs\n%s", body, want)
	}

	// Other render formats come from the same table.
	var csv string
	{
		resp, err := http.Get(ts.URL + "/v1/results/" + st.ResultKey + "?format=csv")
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		csv = string(b)
	}
	if csv != direct.CSV() {
		t.Fatalf("csv format differs:\n%q\nvs\n%q", csv, direct.CSV())
	}

	// Identical resubmit: served from the store, no new simulation.
	simsBefore := sched.RunnerStats().Jobs()
	sr2, code := postJob(t, ts, Request{Experiment: "fig6", Workloads: []string{"lammps", "compression"}, Budget: 40_000})
	if code != http.StatusOK {
		t.Fatalf("resubmit status = %d, want 200", code)
	}
	if !sr2.CacheHit || sr2.State != JobDone {
		t.Fatalf("resubmit not a cache hit: %+v", sr2.JobStatus)
	}
	if sr2.ID == sr.ID {
		t.Fatal("cache hit reused the original job ID")
	}
	if sr2.ResultKey != st.ResultKey {
		t.Fatal("identical request produced a different result key")
	}
	if sims := sched.RunnerStats().Jobs(); sims != simsBefore {
		t.Fatalf("cache hit ran %d new simulations", sims-simsBefore)
	}
	if got := sched.Counters().Get("cache_hits"); got != 1 {
		t.Fatalf("cache_hits = %d, want 1", got)
	}

	// Metrics reflect all of it.
	mresp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	metrics := string(mb)
	for _, want := range []string{
		`acbd_events_total{event="cache_hits"} 1`,
		`acbd_events_total{event="simulated"} 1`,
		// 3 hits: the two result fetches above plus the cache-hit resubmit;
		// the single miss is the first submission's store probe.
		`acbd_store_lookups_total{outcome="hit"} 3`,
		`acbd_store_lookups_total{outcome="miss"} 1`,
		"acbd_effective_speedup",
		`acbd_jobs{state="done"} 2`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}

	// Healthz.
	if code := getJSON(t, ts.URL+"/v1/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
}

// TestServiceSingleFlightDedup: an identical request submitted while the
// first is still in flight coalesces onto the same job instead of
// queueing duplicate work.
func TestServiceSingleFlightDedup(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation run")
	}
	ts, sched := newTestServer(t, SchedulerConfig{}, "")

	// Big enough to still be in flight when the duplicate arrives.
	req := Request{Experiment: "census", Workloads: []string{"gobmk"}, Budget: 100_000_000}
	sr1, code := postJob(t, ts, req)
	if code != http.StatusCreated {
		t.Fatalf("submit = %d", code)
	}
	sr2, code := postJob(t, ts, Request{Experiment: "census", Workloads: []string{"gobmk"}, Budget: 100_000_000})
	if code != http.StatusOK {
		t.Fatalf("duplicate submit = %d, want 200", code)
	}
	if !sr2.Deduped || sr2.ID != sr1.ID {
		t.Fatalf("duplicate not coalesced: first=%s second=%+v", sr1.ID, sr2)
	}
	if got := sched.Counters().Get("deduped"); got != 1 {
		t.Fatalf("deduped counter = %d", got)
	}

	// Cancel rather than simulate 100M instructions.
	cancelJob(t, ts, sr1.ID)
	st := pollDone(t, ts, sr1.ID, 30*time.Second)
	if st.State != JobCancelled {
		t.Fatalf("state = %s, want cancelled", st.State)
	}
}

func cancelJob(t *testing.T, ts *httptest.Server, id string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel %s: %d", id, resp.StatusCode)
	}
}

// TestServiceCancelMidSimulation: cancelling a running job halts the
// simulation long before its retired-instruction budget is exhausted.
func TestServiceCancelMidSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation run")
	}
	ts, _ := newTestServer(t, SchedulerConfig{}, "")

	// ~200M retired instructions: many minutes of simulation uncancelled.
	sr, code := postJob(t, ts, Request{Experiment: "census", Workloads: []string{"lammps"}, Budget: 200_000_000})
	if code != http.StatusCreated {
		t.Fatalf("submit = %d", code)
	}
	// Wait for it to actually be running.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var st JobStatus
		getJSON(t, ts.URL+"/v1/jobs/"+sr.ID, &st)
		if st.State == JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started running (state %s)", st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}

	start := time.Now()
	cancelJob(t, ts, sr.ID)
	st := pollDone(t, ts, sr.ID, 30*time.Second)
	if st.State != JobCancelled {
		t.Fatalf("state = %s (err %q), want cancelled", st.State, st.Error)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancellation took %s", elapsed)
	}
	if !strings.Contains(st.Error, "cancel") {
		t.Fatalf("cancelled job error = %q", st.Error)
	}

	// The result of a cancelled job must not have been stored.
	if code := getJSON(t, ts.URL+"/v1/results/"+st.ResultKey, nil); code != http.StatusNotFound {
		t.Fatalf("cancelled job's result served: %d", code)
	}
}

// TestServiceBackpressure: the bounded queue rejects submissions beyond
// capacity with 429 while the worker is busy.
func TestServiceBackpressure(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation run")
	}
	ts, _ := newTestServer(t, SchedulerConfig{QueueDepth: 1, Workers: 1}, "")

	// Occupy the worker, then fill the queue slot; each request must be
	// distinct or dedup would absorb it.
	long := func(seed int64) Request {
		return Request{Experiment: "census", Workloads: []string{"lammps"}, Budget: 100_000_000, Seed: seed}
	}
	first, code := postJob(t, ts, long(1))
	if code != http.StatusCreated {
		t.Fatalf("submit 1 = %d", code)
	}
	// Wait until the first job leaves the queue for the worker.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var st JobStatus
		getJSON(t, ts.URL+"/v1/jobs/"+first.ID, &st)
		if st.State == JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(10 * time.Millisecond)
	}
	queued, code := postJob(t, ts, long(2))
	if code != http.StatusCreated {
		t.Fatalf("submit 2 = %d", code)
	}
	if _, code := postJob(t, ts, long(3)); code != http.StatusTooManyRequests {
		t.Fatalf("submit 3 = %d, want 429 backpressure", code)
	}
	cancelJob(t, ts, first.ID)
	cancelJob(t, ts, queued.ID)
	pollDone(t, ts, first.ID, 30*time.Second)
	if st := pollDone(t, ts, queued.ID, 30*time.Second); st.State != JobCancelled {
		t.Fatalf("queued job = %s, want cancelled without ever running", st.State)
	}
}

// TestSchedulerShutdownDrains: Shutdown completes queued work before
// returning, and the drained results are persisted in the store.
func TestSchedulerShutdownDrains(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation run")
	}
	dir := t.TempDir()
	store, err := NewStore(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	sched := NewScheduler(SchedulerConfig{SimJobs: 4}, store)

	st, created, err := sched.Submit(Request{Experiment: "census", Workloads: []string{"lammps"}, Budget: 40_000})
	if err != nil || !created {
		t.Fatalf("submit: created=%v err=%v", created, err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := sched.Shutdown(ctx); err != nil {
		t.Fatalf("drain failed: %v", err)
	}
	final, err := sched.Job(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != JobDone {
		t.Fatalf("after drain job is %s (%s), want done", final.State, final.Error)
	}
	if _, ok := store.Get(st.ResultKey); !ok {
		t.Fatal("drained result missing from store")
	}

	// Submissions after shutdown are refused.
	if _, _, err := sched.Submit(Request{Experiment: "table1"}); err == nil {
		t.Fatal("submit accepted after shutdown")
	}
}

// TestSchedulerShutdownTimeoutCancels: when the drain budget expires,
// running simulations are cancelled rather than run to completion.
func TestSchedulerShutdownTimeoutCancels(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation run")
	}
	store, err := NewStore(4, "")
	if err != nil {
		t.Fatal(err)
	}
	sched := NewScheduler(SchedulerConfig{}, store)
	st, _, err := sched.Submit(Request{Experiment: "census", Workloads: []string{"lammps"}, Budget: 200_000_000})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = sched.Shutdown(ctx)
	if err == nil {
		t.Fatal("shutdown drained a 200M-instruction job in 200ms?")
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("forced shutdown took %s", elapsed)
	}
	final, err := sched.Job(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != JobCancelled {
		t.Fatalf("after forced shutdown job is %s, want cancelled", final.State)
	}
}

// TestServiceRejectsBadRequests covers the 400/404 surfaces.
func TestServiceRejectsBadRequests(t *testing.T) {
	ts, _ := newTestServer(t, SchedulerConfig{}, "")

	for _, body := range []string{
		`{"experiment":"fig99"}`,
		`{"experiment":"fig6","workloads":["nope"]}`,
		`{"experiment":"fig6","config":"nope"}`,
		`{"experiment":"fig6","unknown_field":1}`,
		`{not json`,
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s = %d, want 400", body, resp.StatusCode)
		}
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/j999999", nil); code != http.StatusNotFound {
		t.Errorf("unknown job = %d, want 404", code)
	}
	if code := getJSON(t, ts.URL+"/v1/results/"+testKey(5), nil); code != http.StatusNotFound {
		t.Errorf("unknown result = %d, want 404", code)
	}
	if code := getJSON(t, ts.URL+"/v1/results/../../etc/passwd", nil); code == http.StatusOK {
		t.Error("path traversal served a result")
	}
}

// TestServiceTableJobsNoBudget: metadata-only experiments (table1) run
// instantly and flow through the same job/result machinery.
func TestServiceTableJobsNoBudget(t *testing.T) {
	ts, _ := newTestServer(t, SchedulerConfig{}, "")
	sr, code := postJob(t, ts, Request{Experiment: "table1"})
	if code != http.StatusCreated {
		t.Fatalf("submit = %d", code)
	}
	st := pollDone(t, ts, sr.ID, 30*time.Second)
	if st.State != JobDone {
		t.Fatalf("table1 job %s: %s", st.State, st.Error)
	}
	var tab struct {
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
	}
	if code := getJSON(t, ts.URL+"/v1/results/"+st.ResultKey, &tab); code != http.StatusOK {
		t.Fatalf("result = %d", code)
	}
	if len(tab.Rows) == 0 || tab.Rows[len(tab.Rows)-1][1] != "386" {
		t.Fatalf("table1 rows = %v", tab.Rows)
	}
}

// TestJobStatusJSONShape pins the API field names clients depend on.
func TestJobStatusJSONShape(t *testing.T) {
	now := time.Now()
	b, err := json.Marshal(JobStatus{ID: "j000001", State: JobRunning, Experiment: "fig6",
		Request: Request{Experiment: "fig6"}, ResultKey: testKey(0), Created: now, Started: &now,
		Attempts: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"id"`, `"state"`, `"experiment"`, `"request"`, `"result_key"`, `"created"`, `"started"`, `"attempts"`} {
		if !bytes.Contains(b, []byte(field)) {
			t.Errorf("JobStatus JSON missing %s: %s", field, b)
		}
	}
	if bytes.Contains(b, []byte(`"finished"`)) {
		t.Errorf("unfinished job serialized a finished time: %s", b)
	}

	// A failed job carries its error classification; a healthy one omits it.
	b, err = json.Marshal(JobStatus{ID: "j000002", State: JobFailed, Error: "boom",
		ErrorKind: ErrKindTransient, Attempts: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"error"`, `"error_kind"`} {
		if !bytes.Contains(b, []byte(field)) {
			t.Errorf("failed JobStatus JSON missing %s: %s", field, b)
		}
	}
	b, _ = json.Marshal(JobStatus{ID: "j000003", State: JobDone})
	if bytes.Contains(b, []byte(`"error_kind"`)) {
		t.Errorf("healthy job serialized an error kind: %s", b)
	}
}
