package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"acb/internal/faultinject"
)

// ownerEnvelope builds a valid stored-result envelope by running a real
// owner store and reading its Envelope bytes, so the peer-fetch tests
// exercise the exact wire format.
func ownerEnvelope(t *testing.T, key string) []byte {
	t.Helper()
	owner, err := NewStore(4, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := owner.Put(key, Request{Experiment: "table1"}, testTable("owned")); err != nil {
		t.Fatal(err)
	}
	b, ok := owner.Envelope(key)
	if !ok {
		t.Fatal("owner has no envelope for its own key")
	}
	return b
}

// TestStorePeerFetchFillsBothTiers: a local double miss falls through to
// the peer tier; the hit is promoted into memory and the envelope is
// written to disk verbatim, byte-identical to the owner's file.
func TestStorePeerFetchFillsBothTiers(t *testing.T) {
	key := testKey(0)
	env := ownerEnvelope(t, key)
	dir := t.TempDir()
	s, err := NewStore(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	s.SetPeers(func(ctx context.Context, k string) ([]byte, error) {
		calls.Add(1)
		if k != key {
			return nil, nil
		}
		return env, nil
	}, 0)

	tab, ok := s.Get(key)
	if !ok {
		t.Fatal("peer-backed Get missed")
	}
	if tab.String() != testTable("owned").String() {
		t.Fatalf("peer fetch returned wrong table:\n%s", tab.String())
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("peer fetched %d times, want 1", got)
	}
	hits, misses := s.Stats()
	if hits != 1 || misses != 0 {
		t.Fatalf("hits/misses = %d/%d, want 1/0 (peer hit is a hit)", hits, misses)
	}
	if ph, pe := s.PeerStats(); ph != 1 || pe != 0 {
		t.Fatalf("peer hits/errs = %d/%d, want 1/0", ph, pe)
	}

	// Second Get: memory tier, no new peer call.
	if _, ok := s.Get(key); !ok || calls.Load() != 1 {
		t.Fatalf("memory fill failed: ok=%v calls=%d", ok, calls.Load())
	}

	// Disk fill is the owner's envelope verbatim.
	onDisk, err := os.ReadFile(filepath.Join(dir, key+".json"))
	if err != nil {
		t.Fatalf("peer fill did not reach disk: %v", err)
	}
	if !bytes.Equal(onDisk, env) {
		t.Errorf("peer-filled file differs from owner envelope:\n%s\nvs\n%s", onDisk, env)
	}

	// A fresh store over the same dir serves the fill without any peer.
	s2, err := NewStore(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get(key); !ok {
		t.Fatal("peer-filled disk entry not served after restart")
	}
}

// TestStorePeerFetchCorruptResponses: garbage bytes, wrong key, wrong
// version and tableless envelopes are all served as misses and counted
// as peer errors; an authoritative (nil, nil) miss is not an error.
func TestStorePeerFetchCorruptResponses(t *testing.T) {
	key := testKey(1)
	mismatched := ownerEnvelope(t, testKey(2)) // valid envelope, wrong key
	staleVersion, _ := json.Marshal(storedResult{Version: "acb-sim/0", Key: key, Table: testTable("old")})
	tableless, _ := json.Marshal(storedResult{Version: SimVersion, Key: key})

	cases := []struct {
		name     string
		body     []byte
		err      error
		wantErrs int64
	}{
		{"transport error", nil, errors.New("boom"), 1},
		{"garbage bytes", []byte("{nope"), nil, 1},
		{"wrong key", mismatched, nil, 1},
		{"stale version", staleVersion, nil, 1},
		{"tableless envelope", tableless, nil, 1},
		{"authoritative miss", nil, nil, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := NewStore(4, t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			s.SetPeers(func(context.Context, string) ([]byte, error) { return tc.body, tc.err }, 0)
			if _, ok := s.Get(key); ok {
				t.Fatal("corrupt peer response served as a result")
			}
			if _, pe := s.PeerStats(); pe != tc.wantErrs {
				t.Fatalf("peer errors = %d, want %d", pe, tc.wantErrs)
			}
			if hits, misses := s.Stats(); hits != 0 || misses != 1 {
				t.Fatalf("hits/misses = %d/%d, want 0/1", hits, misses)
			}
		})
	}
}

// TestStorePeerFetchSlowPeerDeadline: a peer that never answers is cut
// off by the per-fetch deadline and degrades to a local miss instead of
// wedging the reader.
func TestStorePeerFetchSlowPeerDeadline(t *testing.T) {
	s, err := NewStore(4, "")
	if err != nil {
		t.Fatal(err)
	}
	released := make(chan struct{})
	s.SetPeers(func(ctx context.Context, _ string) ([]byte, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-released:
			t.Error("slow peer outlived the fetch deadline")
			return nil, nil
		}
	}, 25*time.Millisecond)
	defer close(released)

	start := time.Now()
	if _, ok := s.Get(testKey(3)); ok {
		t.Fatal("slow peer produced a hit")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Get blocked %s on a slow peer", elapsed)
	}
	if _, pe := s.PeerStats(); pe != 1 {
		t.Fatalf("peer errors = %d, want 1 (deadline counts)", pe)
	}
}

// TestStorePeerFetchSingleFlight: a stampede of concurrent readers for
// one cold key performs exactly one peer fetch, and every reader gets
// the table. Run under -race: this is the cache-fill race test.
func TestStorePeerFetchSingleFlight(t *testing.T) {
	key := testKey(4)
	env := ownerEnvelope(t, key)
	s, err := NewStore(4, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	gate := make(chan struct{})
	s.SetPeers(func(ctx context.Context, _ string) ([]byte, error) {
		calls.Add(1)
		<-gate // hold the fetch open until every reader has piled in
		return env, nil
	}, time.Minute)

	const readers = 32
	var (
		wg      sync.WaitGroup
		started sync.WaitGroup
		misses  atomic.Int64
	)
	wg.Add(readers)
	started.Add(readers)
	for i := 0; i < readers; i++ {
		go func() {
			defer wg.Done()
			started.Done()
			if _, ok := s.Get(key); !ok {
				misses.Add(1)
			}
		}()
	}
	started.Wait()
	// Give the stampede a moment to reach the single-flight wait, then
	// release the one in-flight fetch.
	time.Sleep(10 * time.Millisecond)
	close(gate)
	wg.Wait()

	if got := misses.Load(); got != 0 {
		t.Fatalf("%d readers missed during the fill", got)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("stampede performed %d peer fetches, want 1 (single-flight)", got)
	}
	if ph, pe := s.PeerStats(); ph != 1 || pe != 0 {
		t.Fatalf("peer hits/errs = %d/%d, want 1/0", ph, pe)
	}
}

// TestStorePeerFaultPoint: the store.peer injection point can sever the
// peer tier (partition chaos), and the failure is counted.
func TestStorePeerFaultPoint(t *testing.T) {
	key := testKey(5)
	env := ownerEnvelope(t, key)
	s, err := NewStore(4, "")
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	s.SetPeers(func(context.Context, string) ([]byte, error) {
		calls.Add(1)
		return env, nil
	}, 0)
	inj := faultinject.New(1)
	inj.Set("store.peer", faultinject.Rule{Nth: 1, Limit: 1})
	s.SetFaults(inj)

	if _, ok := s.Get(key); ok {
		t.Fatal("partitioned peer fetch served a result")
	}
	if calls.Load() != 0 {
		t.Fatal("injected partition still reached the peer")
	}
	if _, pe := s.PeerStats(); pe != 1 {
		t.Fatalf("peer errors = %d, want 1", pe)
	}
	// Partition healed (limit=1): the next Get fetches through.
	if _, ok := s.Get(key); !ok {
		t.Fatal("healed peer tier still missing")
	}
}
