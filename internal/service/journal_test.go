package service

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func journalPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "journal.jsonl")
}

// TestJournalRoundTrip: replay re-surfaces exactly the jobs with no
// terminal record — queued jobs as-is, started jobs as interrupted with
// their in-flight run counted — and drops terminal jobs; compaction
// shrinks the file to the survivors; a second replay does not bump
// attempts again.
func TestJournalRoundTrip(t *testing.T) {
	path := journalPath(t)
	j, pending, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 {
		t.Fatalf("fresh journal replayed %d jobs", len(pending))
	}

	req := func(seed int64) Request { return Request{Experiment: "table1", Seed: seed} }
	// j1: running at crash. j2: still queued. j3: finished. j4: failed
	// once, requeued, waiting for its retry. j5: requeued then running
	// again. j6: cancelled while queued.
	for _, step := range []func() error{
		func() error { return j.Submit("j000001", testKey(0), req(1), 0) },
		func() error { return j.Submit("j000002", testKey(1), req(2), 0) },
		func() error { return j.Start("j000001") },
		func() error { return j.Submit("j000003", testKey(2), req(3), 0) },
		func() error { return j.Start("j000003") },
		func() error { return j.Terminal("j000003", JobDone, "") },
		func() error { return j.Submit("j000004", testKey(3), req(4), 0) },
		func() error { return j.Start("j000004") },
		func() error { return j.Requeue("j000004", 1) },
		func() error { return j.Submit("j000005", testKey(4), req(5), 0) },
		func() error { return j.Start("j000005") },
		func() error { return j.Requeue("j000005", 1) },
		func() error { return j.Start("j000005") },
		func() error { return j.Submit("j000006", testKey(5), req(6), 0) },
		func() error { return j.Terminal("j000006", JobCancelled, "cancelled while queued") },
	} {
		if err := step(); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	_, pending, err = OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []ReplayJob{
		{ID: "j000001", Key: testKey(0), Request: req(1), Attempt: 1, Interrupted: true},
		{ID: "j000002", Key: testKey(1), Request: req(2), Attempt: 0},
		{ID: "j000004", Key: testKey(3), Request: req(4), Attempt: 1},
		{ID: "j000005", Key: testKey(4), Request: req(5), Attempt: 2, Interrupted: true},
	}
	if len(pending) != len(want) {
		t.Fatalf("replayed %d jobs %+v, want %d", len(pending), pending, len(want))
	}
	for i, w := range want {
		got := pending[i]
		if got.ID != w.ID || got.Key != w.Key || got.Attempt != w.Attempt ||
			got.Interrupted != w.Interrupted || got.Request.Seed != w.Request.Seed {
			t.Errorf("pending[%d] = %+v, want %+v", i, got, w)
		}
	}

	// Compaction: header + one submit line per survivor.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(b), "\n"); lines != 1+len(want) {
		t.Fatalf("compacted journal has %d lines:\n%s", lines, b)
	}

	// Replaying the compacted journal again must not double-bump
	// attempts of previously interrupted jobs (they carry no start
	// record after compaction).
	_, again, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(want) {
		t.Fatalf("second replay returned %d jobs", len(again))
	}
	if again[0].Attempt != 1 || again[0].Interrupted {
		t.Fatalf("second replay re-bumped j000001: %+v", again[0])
	}
	if again[3].Attempt != 2 {
		t.Fatalf("second replay changed j000005 attempts: %+v", again[3])
	}
}

// TestJournalTornTail: a partial final line — the write a crash cut off —
// ends replay cleanly instead of failing it; every fsync'd record before
// the tear is recovered.
func TestJournalTornTail(t *testing.T) {
	path := journalPath(t)
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Submit("j000001", testKey(0), Request{Experiment: "table1"}, 0); err != nil {
		t.Fatal(err)
	}
	if err := j.Submit("j000002", testKey(1), Request{Experiment: "table1", Seed: 2}, 0); err != nil {
		t.Fatal(err)
	}
	j.Close()

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"done","id":"j0000`); err != nil { // torn mid-record
		t.Fatal(err)
	}
	f.Close()

	_, pending, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 2 {
		t.Fatalf("torn-tail replay recovered %d jobs, want 2: %+v", len(pending), pending)
	}
}

// TestJournalVersionMismatch: a journal from another format version
// refuses to replay rather than resurrecting jobs under different rules.
func TestJournalVersionMismatch(t *testing.T) {
	path := journalPath(t)
	if err := os.WriteFile(path, []byte(`{"version":"acbd-journal/0"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenJournal(path); !errors.Is(err, ErrJournalVersion) {
		t.Fatalf("err = %v, want ErrJournalVersion", err)
	}

	// A malformed header is also refused, not silently emptied.
	if err := os.WriteFile(path, []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenJournal(path); err == nil {
		t.Fatal("malformed header accepted")
	}
}

// TestJournalClosedAppend: appends after Close fail loudly (the
// scheduler counts them) instead of writing to a dead descriptor.
func TestJournalClosedAppend(t *testing.T) {
	j, _, err := OpenJournal(journalPath(t))
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if err := j.Submit("j000001", testKey(0), Request{Experiment: "table1"}, 0); err == nil {
		t.Fatal("append after Close succeeded")
	}
	// A nil journal is a silent no-op everywhere.
	var nj *Journal
	if err := nj.Submit("x", "", Request{}, 0); err != nil {
		t.Fatal(err)
	}
	if err := nj.Close(); err != nil {
		t.Fatal(err)
	}
}
