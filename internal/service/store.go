package service

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"acb/internal/stats"
)

// PeerFetchFunc fetches the raw stored-result envelope for key from
// whichever peer shard owns it. It returns (nil, nil) for an
// authoritative miss (no peer, or the owner does not have the key), the
// envelope bytes on a hit, and an error for transport or peer failures.
// The context carries the store's peer-fetch deadline.
type PeerFetchFunc func(ctx context.Context, key string) ([]byte, error)

// Store is the content-addressed result store: an in-memory LRU tier in
// front of an optional on-disk JSON tier, optionally backed by a peer
// tier — the cluster's other shards, consulted by key when both local
// tiers miss. Keys are Request.Key hashes, so a stored table is valid
// for every equivalent request under the current SimVersion. Writes go
// through to disk immediately (atomic temp-file-and-rename), which makes
// graceful shutdown persistence a no-op and lets a crashed daemon
// restart warm; peer-fetched results are filled back into both local
// tiers, so any node converges toward serving any result it has ever
// been asked for.
type Store struct {
	mu       sync.Mutex
	cap      int
	ll       *list.List // front = most recently used
	byKey    map[string]*list.Element
	dir      string // "" disables the disk tier
	hits     int64  // memory + disk + peer hits
	misses   int64
	diskErrs int64       // failed persists + unreadable/corrupt loads
	faults   FaultPoints // nil outside chaos tests

	// Peer tier. peerCalls single-flights concurrent fetches of one key
	// so a stampede of readers costs one RPC, not one each.
	peerFetch   PeerFetchFunc
	peerTimeout time.Duration
	peerHits    int64
	peerErrs    int64 // transport failures + corrupt/mismatched envelopes
	peerCalls   map[string]*peerCall
}

// peerCall is one in-flight peer fetch; latecomers wait on done and read
// tab/ok.
type peerCall struct {
	done chan struct{}
	tab  *stats.Table
	ok   bool
}

type storeEntry struct {
	key string
	tab *stats.Table
}

// storedResult is the on-disk envelope for one result file
// (<dir>/<key>.json). The version field guards against key-scheme drift:
// files written under another SimVersion are ignored at read time.
type storedResult struct {
	Version string       `json:"version"`
	Key     string       `json:"key"`
	Request Request      `json:"request"`
	Table   *stats.Table `json:"table"`
}

// NewStore returns a store holding at most capacity tables in memory
// (minimum 1), persisting through to dir when dir is non-empty.
func NewStore(capacity int, dir string) (*Store, error) {
	if capacity < 1 {
		capacity = 1
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("service: store dir: %w", err)
		}
	}
	return &Store{
		cap:       capacity,
		ll:        list.New(),
		byKey:     make(map[string]*list.Element),
		dir:       dir,
		peerCalls: make(map[string]*peerCall),
	}, nil
}

// DefaultPeerTimeout bounds one peer fetch when SetPeers is given no
// explicit timeout: a slow shard must degrade to a local miss, not wedge
// every reader behind it.
const DefaultPeerTimeout = 2 * time.Second

// SetPeers installs the peer tier: fetch is consulted, with the given
// per-fetch timeout (0 = DefaultPeerTimeout), when a key misses both
// local tiers. Passing a nil fetch removes the tier.
func (s *Store) SetPeers(fetch PeerFetchFunc, timeout time.Duration) {
	if timeout <= 0 {
		timeout = DefaultPeerTimeout
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.peerFetch = fetch
	s.peerTimeout = timeout
}

// PeerStats returns cumulative peer-tier (hits, errors). Errors count
// transport failures and corrupt or mismatched envelopes; authoritative
// peer misses are neither.
func (s *Store) PeerStats() (hits, errs int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peerHits, s.peerErrs
}

// Get returns the table stored under key. A miss in memory falls through
// to the disk tier and promotes the loaded table; a miss there falls
// through to the peer tier (when configured) and fills both local tiers
// on a hit. Only a miss in every tier counts as a miss. Keys that are
// not 64-hex-char hashes (i.e. not produced by Request.Key) always miss.
func (s *Store) Get(key string) (*stats.Table, bool) {
	if !validKey(key) {
		s.mu.Lock()
		s.misses++
		s.mu.Unlock()
		return nil, false
	}
	s.mu.Lock()
	if el, ok := s.byKey[key]; ok {
		s.ll.MoveToFront(el)
		s.hits++
		tab := el.Value.(*storeEntry).tab
		s.mu.Unlock()
		return tab, true
	}
	s.mu.Unlock()

	if tab := s.load(key); tab != nil {
		s.mu.Lock()
		s.hits++
		s.insertLocked(key, tab)
		s.mu.Unlock()
		return tab, true
	}

	if tab, ok := s.peerGet(key); ok {
		s.mu.Lock()
		s.hits++
		s.mu.Unlock()
		return tab, true
	}

	s.mu.Lock()
	s.misses++
	s.mu.Unlock()
	return nil, false
}

// GetLocal is Get restricted to the memory and disk tiers: it never
// consults peers. The peer-envelope endpoint serves through it, so two
// shards can never chase each other in a fetch loop for a key neither
// owns.
func (s *Store) GetLocal(key string) (*stats.Table, bool) {
	if !validKey(key) {
		s.mu.Lock()
		s.misses++
		s.mu.Unlock()
		return nil, false
	}
	s.mu.Lock()
	if el, ok := s.byKey[key]; ok {
		s.ll.MoveToFront(el)
		s.hits++
		tab := el.Value.(*storeEntry).tab
		s.mu.Unlock()
		return tab, true
	}
	s.mu.Unlock()
	if tab := s.load(key); tab != nil {
		s.mu.Lock()
		s.hits++
		s.insertLocked(key, tab)
		s.mu.Unlock()
		return tab, true
	}
	s.mu.Lock()
	s.misses++
	s.mu.Unlock()
	return nil, false
}

// peerGet consults the peer tier for key, single-flighting concurrent
// fetches: the first reader performs the RPC while latecomers wait for
// its outcome, so a stampede on one key costs one fetch. A hit fills the
// memory tier (and, inside fetchFromPeer, the disk tier).
func (s *Store) peerGet(key string) (*stats.Table, bool) {
	s.mu.Lock()
	fetch, timeout := s.peerFetch, s.peerTimeout
	if fetch == nil {
		s.mu.Unlock()
		return nil, false
	}
	if c, ok := s.peerCalls[key]; ok {
		s.mu.Unlock()
		<-c.done
		return c.tab, c.ok
	}
	c := &peerCall{done: make(chan struct{})}
	s.peerCalls[key] = c
	s.mu.Unlock()

	tab, ok := s.fetchFromPeer(fetch, timeout, key)

	s.mu.Lock()
	c.tab, c.ok = tab, ok
	delete(s.peerCalls, key)
	if ok {
		s.peerHits++
		s.insertLocked(key, tab)
	}
	s.mu.Unlock()
	close(c.done)
	return tab, ok
}

// fetchFromPeer performs one peer fetch under the peer deadline and
// validates the returned envelope: version, key and table must all
// check out, or the response is counted as a peer error and served as a
// miss. A valid envelope is written through to the disk tier verbatim,
// so a peer-filled replica file is byte-identical to the owner's.
func (s *Store) fetchFromPeer(fetch PeerFetchFunc, timeout time.Duration, key string) (*stats.Table, bool) {
	if err := s.fire("store.peer"); err != nil {
		s.countPeerErr()
		return nil, false
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	b, err := fetch(ctx, key)
	if err != nil {
		s.countPeerErr()
		return nil, false
	}
	if b == nil {
		return nil, false // authoritative miss: the owner has no such key
	}
	var sr storedResult
	if err := json.Unmarshal(b, &sr); err != nil ||
		sr.Version != SimVersion || sr.Key != key || sr.Table == nil {
		s.countPeerErr()
		return nil, false
	}
	if s.dir != "" {
		if err := s.writeFileAtomic(key, b); err != nil {
			s.countDiskErr() // fill failure: result still served from memory
		}
	}
	return sr.Table, true
}

// Envelope returns the raw stored-result envelope for key from the
// local tiers only: the on-disk file verbatim when present, otherwise an
// envelope reconstructed around the memory-tier table. It backs the
// peer-fetch endpoint, so it deliberately never consults peers itself.
func (s *Store) Envelope(key string) ([]byte, bool) {
	if !validKey(key) {
		return nil, false
	}
	if s.dir != "" {
		if b, err := os.ReadFile(s.path(key)); err == nil {
			return b, true
		}
	}
	s.mu.Lock()
	el, ok := s.byKey[key]
	var tab *stats.Table
	if ok {
		tab = el.Value.(*storeEntry).tab
	}
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	b, err := json.MarshalIndent(storedResult{Version: SimVersion, Key: key, Table: tab}, "", "  ")
	if err != nil {
		return nil, false
	}
	return append(b, '\n'), true
}

// PutEnvelope stores a raw stored-result envelope under key: validated
// like a peer fetch (version, key and table must check out), written to
// the disk tier verbatim — so a replicated file is byte-identical to
// the one on the node that produced it — and decoded into the memory
// tier. It backs the cluster's result replication (PUT /v1/store/{key});
// content-addressing makes it naturally idempotent.
func (s *Store) PutEnvelope(key string, b []byte) error {
	if !validKey(key) {
		return fmt.Errorf("service: refusing to store malformed key %q", key)
	}
	var sr storedResult
	if err := json.Unmarshal(b, &sr); err != nil {
		return fmt.Errorf("service: bad envelope for %q: %w", key, err)
	}
	if sr.Version != SimVersion || sr.Key != key || sr.Table == nil {
		return fmt.Errorf("service: envelope for %q fails validation (version %q, key %q)", key, sr.Version, sr.Key)
	}
	if s.dir != "" {
		if err := s.writeFileAtomic(key, b); err != nil {
			s.countDiskErr() // fill failure: the replica still serves from memory
		}
	}
	s.mu.Lock()
	s.insertLocked(key, sr.Table)
	s.mu.Unlock()
	return nil
}

// Put stores the table under key in both tiers. Callers must not mutate
// the table afterwards.
func (s *Store) Put(key string, req Request, tab *stats.Table) error {
	if !validKey(key) {
		return fmt.Errorf("service: refusing to store malformed key %q", key)
	}
	var diskErr error
	if s.dir != "" {
		diskErr = s.persist(key, req, tab)
	}
	s.mu.Lock()
	s.insertLocked(key, tab)
	s.mu.Unlock()
	return diskErr
}

// insertLocked adds or refreshes the memory-tier entry and evicts beyond
// capacity. Evicted tables remain readable through the disk tier.
func (s *Store) insertLocked(key string, tab *stats.Table) {
	if el, ok := s.byKey[key]; ok {
		el.Value.(*storeEntry).tab = tab
		s.ll.MoveToFront(el)
		return
	}
	s.byKey[key] = s.ll.PushFront(&storeEntry{key: key, tab: tab})
	for s.ll.Len() > s.cap {
		back := s.ll.Back()
		s.ll.Remove(back)
		delete(s.byKey, back.Value.(*storeEntry).key)
	}
}

// Len returns the number of memory-tier entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}

// Stats returns cumulative (hits, misses).
func (s *Store) Stats() (hits, misses int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses
}

// DiskErrors returns the cumulative count of disk-tier failures: persist
// errors plus load-side read failures and corrupt files (which are
// served as misses but must not be invisible to operators).
func (s *Store) DiskErrors() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.diskErrs
}

// SetFaults installs the fault-injection hook fired inside persist
// ("store.persist") and load ("store.load"); chaos tests only.
func (s *Store) SetFaults(f FaultPoints) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.faults = f
}

func (s *Store) fire(point string) error {
	s.mu.Lock()
	f := s.faults
	s.mu.Unlock()
	if f == nil {
		return nil
	}
	return f.Fire(point)
}

func (s *Store) countDiskErr() {
	s.mu.Lock()
	s.diskErrs++
	s.mu.Unlock()
}

func (s *Store) countPeerErr() {
	s.mu.Lock()
	s.peerErrs++
	s.mu.Unlock()
}

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key+".json")
}

// validKey rejects anything but the hex hashes Request.Key produces, so
// a store key can never traverse outside the store directory.
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	return strings.IndexFunc(key, func(r rune) bool {
		return !(r >= '0' && r <= '9' || r >= 'a' && r <= 'f')
	}) < 0
}

// load reads one result from the disk tier; nil on any miss, version
// mismatch, or decode error (a corrupt file is served as a miss, not a
// failure, but read errors and corruption are counted in DiskErrors —
// a version mismatch is expected after a SimVersion bump and is not).
// Callers have already validated the key.
func (s *Store) load(key string) *stats.Table {
	if s.dir == "" {
		return nil
	}
	if err := s.fire("store.load"); err != nil {
		s.countDiskErr()
		return nil
	}
	b, err := os.ReadFile(s.path(key))
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			s.countDiskErr()
		}
		return nil
	}
	var sr storedResult
	if err := json.Unmarshal(b, &sr); err != nil || (sr.Version == SimVersion && sr.Table == nil) {
		s.countDiskErr()
		return nil
	}
	if sr.Version != SimVersion {
		return nil
	}
	return sr.Table
}

// persist writes one result file atomically and durably: the temp file
// is fsync'd before the rename and the directory after it, so a result
// acknowledged as stored survives power loss. Callers have already
// validated the key; persist failures are counted in DiskErrors.
func (s *Store) persist(key string, req Request, tab *stats.Table) (err error) {
	defer func() {
		if err != nil {
			s.countDiskErr()
		}
	}()
	if err := s.fire("store.persist"); err != nil {
		return err
	}
	b, err := json.MarshalIndent(storedResult{
		Version: SimVersion,
		Key:     key,
		Request: req,
		Table:   tab,
	}, "", "  ")
	if err != nil {
		return err
	}
	return s.writeFileAtomic(key, append(b, '\n'))
}

// writeFileAtomic writes b to the key's result file atomically and
// durably: temp file, fsync, rename, directory fsync.
func (s *Store) writeFileAtomic(key string, b []byte) error {
	tmp, err := os.CreateTemp(s.dir, "."+key+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		return err
	}
	return syncDir(s.dir)
}
