package service

import (
	"container/list"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"acb/internal/stats"
)

// Store is the content-addressed result store: an in-memory LRU tier in
// front of an optional on-disk JSON tier. Keys are Request.Key hashes, so
// a stored table is valid for every equivalent request under the current
// SimVersion. Writes go through to disk immediately (atomic
// temp-file-and-rename), which makes graceful shutdown persistence a
// no-op and lets a crashed daemon restart warm.
type Store struct {
	mu       sync.Mutex
	cap      int
	ll       *list.List // front = most recently used
	byKey    map[string]*list.Element
	dir      string // "" disables the disk tier
	hits     int64  // memory + disk hits
	misses   int64
	diskErrs int64       // failed persists + unreadable/corrupt loads
	faults   FaultPoints // nil outside chaos tests
}

type storeEntry struct {
	key string
	tab *stats.Table
}

// storedResult is the on-disk envelope for one result file
// (<dir>/<key>.json). The version field guards against key-scheme drift:
// files written under another SimVersion are ignored at read time.
type storedResult struct {
	Version string       `json:"version"`
	Key     string       `json:"key"`
	Request Request      `json:"request"`
	Table   *stats.Table `json:"table"`
}

// NewStore returns a store holding at most capacity tables in memory
// (minimum 1), persisting through to dir when dir is non-empty.
func NewStore(capacity int, dir string) (*Store, error) {
	if capacity < 1 {
		capacity = 1
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("service: store dir: %w", err)
		}
	}
	return &Store{
		cap:   capacity,
		ll:    list.New(),
		byKey: make(map[string]*list.Element),
		dir:   dir,
	}, nil
}

// Get returns the table stored under key. A miss in memory falls through
// to the disk tier and promotes the loaded table; only a miss in both
// tiers counts as a miss. Keys that are not 64-hex-char hashes (i.e. not
// produced by Request.Key) always miss.
func (s *Store) Get(key string) (*stats.Table, bool) {
	if !validKey(key) {
		s.mu.Lock()
		s.misses++
		s.mu.Unlock()
		return nil, false
	}
	s.mu.Lock()
	if el, ok := s.byKey[key]; ok {
		s.ll.MoveToFront(el)
		s.hits++
		tab := el.Value.(*storeEntry).tab
		s.mu.Unlock()
		return tab, true
	}
	s.mu.Unlock()

	if tab := s.load(key); tab != nil {
		s.mu.Lock()
		s.hits++
		s.insertLocked(key, tab)
		s.mu.Unlock()
		return tab, true
	}

	s.mu.Lock()
	s.misses++
	s.mu.Unlock()
	return nil, false
}

// Put stores the table under key in both tiers. Callers must not mutate
// the table afterwards.
func (s *Store) Put(key string, req Request, tab *stats.Table) error {
	if !validKey(key) {
		return fmt.Errorf("service: refusing to store malformed key %q", key)
	}
	var diskErr error
	if s.dir != "" {
		diskErr = s.persist(key, req, tab)
	}
	s.mu.Lock()
	s.insertLocked(key, tab)
	s.mu.Unlock()
	return diskErr
}

// insertLocked adds or refreshes the memory-tier entry and evicts beyond
// capacity. Evicted tables remain readable through the disk tier.
func (s *Store) insertLocked(key string, tab *stats.Table) {
	if el, ok := s.byKey[key]; ok {
		el.Value.(*storeEntry).tab = tab
		s.ll.MoveToFront(el)
		return
	}
	s.byKey[key] = s.ll.PushFront(&storeEntry{key: key, tab: tab})
	for s.ll.Len() > s.cap {
		back := s.ll.Back()
		s.ll.Remove(back)
		delete(s.byKey, back.Value.(*storeEntry).key)
	}
}

// Len returns the number of memory-tier entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}

// Stats returns cumulative (hits, misses).
func (s *Store) Stats() (hits, misses int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses
}

// DiskErrors returns the cumulative count of disk-tier failures: persist
// errors plus load-side read failures and corrupt files (which are
// served as misses but must not be invisible to operators).
func (s *Store) DiskErrors() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.diskErrs
}

// SetFaults installs the fault-injection hook fired inside persist
// ("store.persist") and load ("store.load"); chaos tests only.
func (s *Store) SetFaults(f FaultPoints) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.faults = f
}

func (s *Store) fire(point string) error {
	s.mu.Lock()
	f := s.faults
	s.mu.Unlock()
	if f == nil {
		return nil
	}
	return f.Fire(point)
}

func (s *Store) countDiskErr() {
	s.mu.Lock()
	s.diskErrs++
	s.mu.Unlock()
}

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key+".json")
}

// validKey rejects anything but the hex hashes Request.Key produces, so
// a store key can never traverse outside the store directory.
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	return strings.IndexFunc(key, func(r rune) bool {
		return !(r >= '0' && r <= '9' || r >= 'a' && r <= 'f')
	}) < 0
}

// load reads one result from the disk tier; nil on any miss, version
// mismatch, or decode error (a corrupt file is served as a miss, not a
// failure, but read errors and corruption are counted in DiskErrors —
// a version mismatch is expected after a SimVersion bump and is not).
// Callers have already validated the key.
func (s *Store) load(key string) *stats.Table {
	if s.dir == "" {
		return nil
	}
	if err := s.fire("store.load"); err != nil {
		s.countDiskErr()
		return nil
	}
	b, err := os.ReadFile(s.path(key))
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			s.countDiskErr()
		}
		return nil
	}
	var sr storedResult
	if err := json.Unmarshal(b, &sr); err != nil || (sr.Version == SimVersion && sr.Table == nil) {
		s.countDiskErr()
		return nil
	}
	if sr.Version != SimVersion {
		return nil
	}
	return sr.Table
}

// persist writes one result file atomically and durably: the temp file
// is fsync'd before the rename and the directory after it, so a result
// acknowledged as stored survives power loss. Callers have already
// validated the key; persist failures are counted in DiskErrors.
func (s *Store) persist(key string, req Request, tab *stats.Table) (err error) {
	defer func() {
		if err != nil {
			s.countDiskErr()
		}
	}()
	if err := s.fire("store.persist"); err != nil {
		return err
	}
	b, err := json.MarshalIndent(storedResult{
		Version: SimVersion,
		Key:     key,
		Request: req,
		Table:   tab,
	}, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.dir, "."+key+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(append(b, '\n')); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		return err
	}
	return syncDir(s.dir)
}
