package service

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"acb/internal/stats"
)

func testKey(b byte) string {
	return strings.Repeat(string([]byte{'a' + b%6}), 64)
}

func testTable(name string) *stats.Table {
	t := stats.NewTable("k", "v")
	t.AddRow(name, 1.5)
	return t
}

func TestStoreLRUEviction(t *testing.T) {
	s, err := NewStore(2, "")
	if err != nil {
		t.Fatal(err)
	}
	k0, k1, k2 := testKey(0), testKey(1), testKey(2)
	s.Put(k0, Request{}, testTable("t0"))
	s.Put(k1, Request{}, testTable("t1"))
	if _, ok := s.Get(k0); !ok { // touch k0: k1 becomes LRU
		t.Fatal("k0 missing")
	}
	s.Put(k2, Request{}, testTable("t2"))
	if _, ok := s.Get(k1); ok {
		t.Fatal("k1 survived eviction past capacity")
	}
	if _, ok := s.Get(k0); !ok {
		t.Fatal("recently-used k0 was evicted")
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d, want 2", s.Len())
	}
	hits, misses := s.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 2/1", hits, misses)
	}
}

// TestStoreDiskTier: entries evicted from memory — and entries written by
// an earlier store instance — are served from disk; corrupt or
// wrong-version files are misses, not failures.
func TestStoreDiskTier(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(1, dir)
	if err != nil {
		t.Fatal(err)
	}
	k0, k1 := testKey(0), testKey(1)
	tab := testTable("persisted")
	if err := s.Put(k0, Request{Experiment: "fig6"}, tab); err != nil {
		t.Fatal(err)
	}
	s.Put(k1, Request{}, testTable("evictor")) // evicts k0 from memory

	got, ok := s.Get(k0)
	if !ok {
		t.Fatal("disk tier miss after memory eviction")
	}
	if got.String() != tab.String() {
		t.Fatalf("disk round trip changed the table:\n%s\nvs\n%s", got.String(), tab.String())
	}

	// A fresh store over the same directory starts warm.
	s2, err := NewStore(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get(k0); !ok {
		t.Fatal("restart lost the persisted result")
	}

	// Corrupt file: miss, not error.
	bad := testKey(3)
	if err := os.WriteFile(filepath.Join(dir, bad+".json"), []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get(bad); ok {
		t.Fatal("corrupt file served as a result")
	}

	// Version mismatch: miss.
	stale := testKey(4)
	b, _ := json.Marshal(storedResult{Version: "acb-sim/0", Key: stale, Table: testTable("old")})
	if err := os.WriteFile(filepath.Join(dir, stale+".json"), b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get(stale); ok {
		t.Fatal("stale-version file served as a result")
	}
}

// TestStoreRejectsMalformedKeys: only 64-hex-char keys reach the
// filesystem, so API-supplied keys cannot traverse out of the store dir.
func TestStoreRejectsMalformedKeys(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "short", "../../etc/passwd", strings.Repeat("Z", 64)} {
		if _, ok := s.Get(key); ok {
			t.Fatalf("Get(%q) hit", key)
		}
		if err := s.Put(key, Request{}, testTable("x")); err == nil {
			t.Fatalf("Put(%q) persisted", key)
		}
	}
}

// TestRequestKeyCanonical: equivalent requests share a key; different
// work gets different keys.
func TestRequestKeyCanonical(t *testing.T) {
	base := Request{Experiment: "fig6", Workloads: []string{"lammps"}, Budget: 1000, Config: "skylake"}
	k1, err := base.Key()
	if err != nil {
		t.Fatal(err)
	}
	alias := Request{Experiment: "fig6", Workloads: []string{"lammps"}, Budget: 1000, Config: "skylake-1x"}
	k2, err := alias.Key()
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatal("config alias changed the key")
	}
	if !validKey(k1) {
		t.Fatalf("key %q is not a 64-hex-char hash", k1)
	}

	for _, other := range []Request{
		{Experiment: "fig7", Workloads: []string{"lammps"}, Budget: 1000},
		{Experiment: "fig6", Workloads: []string{"gobmk"}, Budget: 1000},
		{Experiment: "fig6", Workloads: []string{"lammps"}, Budget: 2000},
		{Experiment: "fig6", Workloads: []string{"lammps"}, Budget: 1000, Config: "future"},
		{Experiment: "fig6", Workloads: []string{"lammps"}, Budget: 1000, Seed: 7},
	} {
		k, err := other.Key()
		if err != nil {
			t.Fatal(err)
		}
		if k == k1 {
			t.Fatalf("distinct request %+v collided with base key", other)
		}
	}

	// Defaulted budget is canonical with the explicit default.
	d1 := Request{Experiment: "table1"}
	d2 := Request{Experiment: "table1", Budget: DefaultBudget}
	ka, _ := d1.Key()
	kb, _ := d2.Key()
	if ka != kb {
		t.Fatal("default budget is not canonical")
	}
}

func TestRequestKeyRejectsJunk(t *testing.T) {
	for _, req := range []Request{
		{Experiment: "nope"},
		{Experiment: "fig6", Workloads: []string{"nope"}},
		{Experiment: "fig6", Config: "nope"},
		{Experiment: "fig6", Budget: -1},
	} {
		if _, err := req.Key(); err == nil {
			t.Fatalf("Key accepted %+v", req)
		}
	}
}
