package service

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"acb/internal/faultinject"
	"acb/internal/stats"
)

func testKey(b byte) string {
	return strings.Repeat(string([]byte{'a' + b%6}), 64)
}

func testTable(name string) *stats.Table {
	t := stats.NewTable("k", "v")
	t.AddRow(name, 1.5)
	return t
}

func TestStoreLRUEviction(t *testing.T) {
	s, err := NewStore(2, "")
	if err != nil {
		t.Fatal(err)
	}
	k0, k1, k2 := testKey(0), testKey(1), testKey(2)
	s.Put(k0, Request{}, testTable("t0"))
	s.Put(k1, Request{}, testTable("t1"))
	if _, ok := s.Get(k0); !ok { // touch k0: k1 becomes LRU
		t.Fatal("k0 missing")
	}
	s.Put(k2, Request{}, testTable("t2"))
	if _, ok := s.Get(k1); ok {
		t.Fatal("k1 survived eviction past capacity")
	}
	if _, ok := s.Get(k0); !ok {
		t.Fatal("recently-used k0 was evicted")
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d, want 2", s.Len())
	}
	hits, misses := s.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 2/1", hits, misses)
	}
}

// TestStoreDiskTier: entries evicted from memory — and entries written by
// an earlier store instance — are served from disk; corrupt or
// wrong-version files are misses, not failures.
func TestStoreDiskTier(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(1, dir)
	if err != nil {
		t.Fatal(err)
	}
	k0, k1 := testKey(0), testKey(1)
	tab := testTable("persisted")
	if err := s.Put(k0, Request{Experiment: "fig6"}, tab); err != nil {
		t.Fatal(err)
	}
	s.Put(k1, Request{}, testTable("evictor")) // evicts k0 from memory

	got, ok := s.Get(k0)
	if !ok {
		t.Fatal("disk tier miss after memory eviction")
	}
	if got.String() != tab.String() {
		t.Fatalf("disk round trip changed the table:\n%s\nvs\n%s", got.String(), tab.String())
	}

	// A fresh store over the same directory starts warm.
	s2, err := NewStore(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get(k0); !ok {
		t.Fatal("restart lost the persisted result")
	}

	// Corrupt file: miss, not error.
	bad := testKey(3)
	if err := os.WriteFile(filepath.Join(dir, bad+".json"), []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get(bad); ok {
		t.Fatal("corrupt file served as a result")
	}

	// Version mismatch: miss.
	stale := testKey(4)
	b, _ := json.Marshal(storedResult{Version: "acb-sim/0", Key: stale, Table: testTable("old")})
	if err := os.WriteFile(filepath.Join(dir, stale+".json"), b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get(stale); ok {
		t.Fatal("stale-version file served as a result")
	}
}

// TestStoreDiskErrors: corrupt files and injected persist/load failures
// are counted so operators can see a sick disk tier, while an expected
// version mismatch after a SimVersion bump is not.
func TestStoreDiskErrors(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(4, dir)
	if err != nil {
		t.Fatal(err)
	}

	// Corrupt file: served as a miss, counted as a disk error.
	bad := testKey(0)
	if err := os.WriteFile(filepath.Join(dir, bad+".json"), []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(bad); ok {
		t.Fatal("corrupt file served")
	}
	if got := s.DiskErrors(); got != 1 {
		t.Fatalf("disk errors after corrupt load = %d, want 1", got)
	}

	// Version mismatch: an expected miss after a key-scheme bump, NOT an
	// error.
	stale := testKey(1)
	b, _ := json.Marshal(storedResult{Version: "acb-sim/0", Key: stale, Table: testTable("old")})
	if err := os.WriteFile(filepath.Join(dir, stale+".json"), b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(stale); ok {
		t.Fatal("stale-version file served")
	}
	if got := s.DiskErrors(); got != 1 {
		t.Fatalf("disk errors after version-mismatch load = %d, want 1 (mismatch must not count)", got)
	}

	// Current-version envelope with no table: corruption, counted.
	empty := testKey(2)
	b, _ = json.Marshal(storedResult{Version: SimVersion, Key: empty})
	if err := os.WriteFile(filepath.Join(dir, empty+".json"), b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(empty); ok {
		t.Fatal("tableless file served")
	}
	if got := s.DiskErrors(); got != 2 {
		t.Fatalf("disk errors after tableless load = %d, want 2", got)
	}

	// Injected persist failure: Put reports it and it is counted.
	inj := faultinject.New(1)
	inj.Set("store.persist", faultinject.Rule{Nth: 1, Limit: 1})
	s.SetFaults(inj)
	if err := s.Put(testKey(3), Request{Experiment: "table1"}, testTable("doomed")); !faultinject.IsInjected(err) {
		t.Fatalf("Put under injected persist fault returned %v, want injected error", err)
	}
	if got := s.DiskErrors(); got != 3 {
		t.Fatalf("disk errors after injected persist = %d, want 3", got)
	}
	// The injection budget (limit=1) is spent: the same Put now succeeds
	// and the result is durable.
	if err := s.Put(testKey(3), Request{Experiment: "table1"}, testTable("saved")); err != nil {
		t.Fatalf("Put after fault budget spent: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, testKey(3)+".json")); err != nil {
		t.Fatalf("result not persisted after retry: %v", err)
	}

	// Injected load failure: served as a miss, counted.
	inj.Set("store.load", faultinject.Rule{Nth: 1, Limit: 1})
	s2, err := NewStore(4, dir) // cold memory tier, forces a disk load
	if err != nil {
		t.Fatal(err)
	}
	s2.SetFaults(inj)
	if _, ok := s2.Get(testKey(3)); ok {
		t.Fatal("injected load fault did not miss")
	}
	if got := s2.DiskErrors(); got != 1 {
		t.Fatalf("disk errors after injected load = %d, want 1", got)
	}
	if _, ok := s2.Get(testKey(3)); !ok {
		t.Fatal("load failed after fault budget spent")
	}
}

// TestStoreRejectsMalformedKeys: only 64-hex-char keys reach the
// filesystem, so API-supplied keys cannot traverse out of the store dir.
func TestStoreRejectsMalformedKeys(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "short", "../../etc/passwd", strings.Repeat("Z", 64)} {
		if _, ok := s.Get(key); ok {
			t.Fatalf("Get(%q) hit", key)
		}
		if err := s.Put(key, Request{}, testTable("x")); err == nil {
			t.Fatalf("Put(%q) persisted", key)
		}
	}
}

// TestRequestKeyCanonical: equivalent requests share a key; different
// work gets different keys.
func TestRequestKeyCanonical(t *testing.T) {
	base := Request{Experiment: "fig6", Workloads: []string{"lammps"}, Budget: 1000, Config: "skylake"}
	k1, err := base.Key()
	if err != nil {
		t.Fatal(err)
	}
	alias := Request{Experiment: "fig6", Workloads: []string{"lammps"}, Budget: 1000, Config: "skylake-1x"}
	k2, err := alias.Key()
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatal("config alias changed the key")
	}
	if !validKey(k1) {
		t.Fatalf("key %q is not a 64-hex-char hash", k1)
	}

	for _, other := range []Request{
		{Experiment: "fig7", Workloads: []string{"lammps"}, Budget: 1000},
		{Experiment: "fig6", Workloads: []string{"gobmk"}, Budget: 1000},
		{Experiment: "fig6", Workloads: []string{"lammps"}, Budget: 2000},
		{Experiment: "fig6", Workloads: []string{"lammps"}, Budget: 1000, Config: "future"},
		{Experiment: "fig6", Workloads: []string{"lammps"}, Budget: 1000, Seed: 7},
	} {
		k, err := other.Key()
		if err != nil {
			t.Fatal(err)
		}
		if k == k1 {
			t.Fatalf("distinct request %+v collided with base key", other)
		}
	}

	// Defaulted budget is canonical with the explicit default.
	d1 := Request{Experiment: "table1"}
	d2 := Request{Experiment: "table1", Budget: DefaultBudget}
	ka, _ := d1.Key()
	kb, _ := d2.Key()
	if ka != kb {
		t.Fatal("default budget is not canonical")
	}
}

func TestRequestKeyRejectsJunk(t *testing.T) {
	for _, req := range []Request{
		{Experiment: "nope"},
		{Experiment: "fig6", Workloads: []string{"nope"}},
		{Experiment: "fig6", Config: "nope"},
		{Experiment: "fig6", Budget: -1},
	} {
		if _, err := req.Key(); err == nil {
			t.Fatalf("Key accepted %+v", req)
		}
	}
}
