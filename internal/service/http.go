package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"acb/internal/expo"
	"acb/internal/ooo"
)

// Server is the stdlib-only HTTP front end over a Scheduler.
//
// API (see docs/SERVICE.md):
//
//	POST   /v1/jobs          submit a Request; 201 new, 200 dedup/cache hit, 429 queue full
//	GET    /v1/jobs          list jobs in submission order
//	GET    /v1/jobs/{id}     one job's status
//	DELETE /v1/jobs/{id}     cancel a queued or running job
//	GET    /v1/results/{key} stored table (?format=json|csv|ascii, default json)
//	GET    /v1/store/{key}   raw stored-result envelope from the local tiers (peer-fetch wire format)
//	GET    /v1/metrics       Prometheus text metrics
//	GET    /v1/healthz       liveness
//	GET    /v1/readyz        readiness (503 + Retry-After during journal replay and drain)
type Server struct {
	sched       *Scheduler
	node        string
	readyChecks []func() (bool, string)
}

// NewServer returns a server over sched.
func NewServer(sched *Scheduler) *Server { return &Server{sched: sched} }

// AddReadyCheck registers an extra readiness gate consulted by
// /v1/readyz after the scheduler's own (e.g. the cluster epoch fence:
// a worker that adopted a new coordinator epoch is not ready until the
// new coordinator has reconciled it). Call before Handler is serving.
func (srv *Server) AddReadyCheck(check func() (ok bool, reason string)) {
	srv.readyChecks = append(srv.readyChecks, check)
}

// Scheduler returns the underlying scheduler.
func (srv *Server) Scheduler() *Scheduler { return srv.sched }

// SetNode sets this instance's node identity. When set, every series on
// /v1/metrics carries a node label, so two instances' expositions are
// never indistinguishable — the precondition for cluster-wide metric
// aggregation, and just as necessary when two single-node daemons share
// one Prometheus.
func (srv *Server) SetNode(name string) { srv.node = name }

// Node returns the instance identity set by SetNode ("" when unset).
func (srv *Server) Node() string { return srv.node }

// Handler builds the route table.
func (srv *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", srv.handleHealthz)
	mux.HandleFunc("GET /v1/readyz", srv.handleReadyz)
	mux.HandleFunc("POST /v1/jobs", srv.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", srv.handleListJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", srv.handleGetJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", srv.handleCancelJob)
	mux.HandleFunc("GET /v1/results/{key}", srv.handleGetResult)
	mux.HandleFunc("GET /v1/store/{key}", srv.handleGetEnvelope)
	mux.HandleFunc("PUT /v1/store/{key}", srv.handlePutEnvelope)
	mux.HandleFunc("GET /v1/metrics", srv.handleMetrics)
	return mux
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, apiError{Error: err.Error()})
}

func (srv *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is the load-balancer signal, distinct from liveness: the
// process is up (healthz 200) but must not receive traffic while the
// journal is replaying, a drain is in progress, or any registered
// readiness gate (the cluster epoch fence) objects.
func (srv *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	ok, reason := srv.sched.Ready()
	if ok {
		for _, check := range srv.readyChecks {
			if ok, reason = check(); !ok {
				break
			}
		}
	}
	if !ok {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "not ready", "reason": reason})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// submitResponse is the POST /v1/jobs reply: the job snapshot plus
// whether this submission created the job or coalesced onto prior work.
type submitResponse struct {
	JobStatus
	Deduped bool `json:"deduped"`
}

func (srv *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad request body: %w", err))
		return
	}
	st, created, err := srv.sched.Submit(req)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrShuttingDown):
		// Draining: this instance never comes back, but a replacement
		// (or journal-recovered restart) may — tell clients when to retry.
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	code := http.StatusOK // dedup or cache hit: nothing new scheduled
	if created && !st.CacheHit {
		code = http.StatusCreated
	}
	writeJSON(w, code, submitResponse{JobStatus: st, Deduped: !created})
}

func (srv *Server) handleListJobs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]interface{}{"jobs": srv.sched.Jobs()})
}

func (srv *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	st, err := srv.sched.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (srv *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	st, err := srv.sched.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (srv *Server) handleGetResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	tab, ok := srv.sched.Store().Get(key)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("service: no result for key %q", key))
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		// json.Marshal(tab), not the indenting encoder: the bytes must be
		// identical to what any other client of Table.MarshalJSON sees.
		b, err := json.Marshal(tab)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(b)
	case "csv":
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		fmt.Fprint(w, tab.CSV())
	case "ascii":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, tab.String())
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("service: unknown format %q (want json, csv or ascii)", format))
	}
}

// handleGetEnvelope serves the raw stored-result envelope — the bytes
// the disk tier holds (or their in-memory reconstruction) — from the
// local tiers only. This is the peer-fetch wire format: a shard that
// misses locally asks the owning shard here, and because the response is
// the owner's envelope verbatim, a peer-filled replica file is
// byte-identical to the original. Never consults this store's own peer
// tier, so two shards cannot chase each other for a key neither owns.
func (srv *Server) handleGetEnvelope(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	b, ok := srv.sched.Store().Envelope(key)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("service: no stored envelope for key %q", key))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

// handlePutEnvelope accepts a replicated stored-result envelope (the
// cluster coordinator's RF=2 push after a job completes elsewhere). The
// envelope is validated against its key and written through verbatim,
// so the replica file is byte-identical to the original; replaying the
// same PUT is a no-op by content-addressing.
func (srv *Server) handlePutEnvelope(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	b, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("service: reading envelope: %w", err))
		return
	}
	if err := srv.sched.Store().PutEnvelope(key, b); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "stored", "key": key})
}

// handleMetrics emits Prometheus text exposition (version 0.0.4).
// Monotonic series follow the naming convention: every `*_total` name is
// declared `# TYPE ... counter` (tested by TestMetricsExposition).
func (srv *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var b strings.Builder
	gauge := func(name, help string, v interface{}) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	counter := func(name, help string, v interface{}) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %v\n", name, help, name, name, v)
	}

	fmt.Fprintf(&b, "# HELP acbd_jobs Jobs by lifecycle state.\n# TYPE acbd_jobs gauge\n")
	counts := srv.sched.JobCounts()
	for _, st := range States {
		fmt.Fprintf(&b, "acbd_jobs{state=%q} %d\n", st, counts[st])
	}
	gauge("acbd_queue_depth", "Jobs waiting in the bounded queue.", srv.sched.QueueDepth())

	fmt.Fprintf(&b, "# HELP acbd_events_total Monotonic scheduler events.\n# TYPE acbd_events_total counter\n")
	c := srv.sched.Counters()
	for _, name := range c.Names() {
		fmt.Fprintf(&b, "acbd_events_total{event=%q} %d\n", name, c.Get(name))
	}

	// Retries get a dedicated counter (alerting keys on it) in addition
	// to the acbd_events_total{event="retried"} series above.
	counter("acbd_job_retries_total", "Transiently failed runs put back on the queue with backoff.",
		c.Get("retried"))
	// Same for journal replays: nonzero means this node recovered from a
	// crash, which operators alert on. HELP must stay identical to the
	// coordinator's emission of the same family or expo.Merge rejects the
	// cluster-wide scrape.
	counter("acbd_journal_replays_total", "Journal replays performed at startup (nonzero after a crash-restart or failover recovery).",
		c.Get("journal_replays"))

	hits, misses := srv.sched.Store().Stats()
	fmt.Fprintf(&b, "# HELP acbd_store_lookups_total Result-store lookups.\n# TYPE acbd_store_lookups_total counter\n")
	fmt.Fprintf(&b, "acbd_store_lookups_total{outcome=\"hit\"} %d\n", hits)
	fmt.Fprintf(&b, "acbd_store_lookups_total{outcome=\"miss\"} %d\n", misses)
	gauge("acbd_store_entries", "Tables resident in the memory tier.", srv.sched.Store().Len())
	counter("acbd_store_disk_errors_total", "Disk-tier failures: failed persists plus unreadable or corrupt result files.",
		srv.sched.Store().DiskErrors())
	peerHits, peerErrs := srv.sched.Store().PeerStats()
	fmt.Fprintf(&b, "# HELP acbd_store_peer_fetches_total Peer-tier fetches by outcome (errors count transport failures and corrupt envelopes).\n")
	fmt.Fprintf(&b, "# TYPE acbd_store_peer_fetches_total counter\n")
	fmt.Fprintf(&b, "acbd_store_peer_fetches_total{outcome=\"hit\"} %d\n", peerHits)
	fmt.Fprintf(&b, "acbd_store_peer_fetches_total{outcome=\"error\"} %d\n", peerErrs)

	rs := srv.sched.RunnerStats()
	counter("acbd_simulations_total", "Simulations dispatched onto the worker pool.", rs.Jobs())
	counter("acbd_sim_seconds_total", "Cumulative single-threaded simulation seconds.", rs.Sim().Seconds())
	counter("acbd_wall_seconds_total", "Cumulative pool wall-clock seconds.", rs.Wall().Seconds())
	// Emitted only once a measurement exists: "no runs yet" is the
	// metric's absence, not a fake 0x.
	if sp, ok := rs.Speedup(); ok {
		gauge("acbd_effective_speedup", "Cumulative sim/wall ratio of the worker pool.", fmt.Sprintf("%.4f", sp))
	}

	// Per-job wall-duration histogram (Prometheus histogram exposition:
	// cumulative buckets, +Inf, sum, count).
	bounds, cumulative, sum, count := srv.sched.Durations().Snapshot()
	fmt.Fprintf(&b, "# HELP acbd_job_duration_seconds Wall-clock duration of executed jobs.\n")
	fmt.Fprintf(&b, "# TYPE acbd_job_duration_seconds histogram\n")
	for i, bound := range bounds {
		fmt.Fprintf(&b, "acbd_job_duration_seconds_bucket{le=%q} %d\n",
			strconv.FormatFloat(bound, 'g', -1, 64), cumulative[i])
	}
	fmt.Fprintf(&b, "acbd_job_duration_seconds_bucket{le=\"+Inf\"} %d\n", count)
	fmt.Fprintf(&b, "acbd_job_duration_seconds_sum %g\n", sum)
	fmt.Fprintf(&b, "acbd_job_duration_seconds_count %d\n", count)

	// CPI-stack totals across every simulated job, per scheme and bucket.
	cpi := srv.sched.CPIStats()
	snap := cpi.Snapshot()
	fmt.Fprintf(&b, "# HELP acbd_cpi_cycles_total Simulated cycles attributed per CPI-stack bucket.\n")
	fmt.Fprintf(&b, "# TYPE acbd_cpi_cycles_total counter\n")
	for _, scheme := range cpi.Schemes() {
		t := snap[scheme]
		for i, bucket := range ooo.CPIBucketNames {
			fmt.Fprintf(&b, "acbd_cpi_cycles_total{scheme=%q,bucket=%q} %d\n",
				scheme, bucket, t.Buckets[i])
		}
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if srv.node != "" {
		// Stamp the instance identity onto every series, so a scraper (or
		// the cluster coordinator's aggregator) can never merge two nodes'
		// series into one. Emission stays label-free above; the relabel
		// pass guarantees uniform coverage, including histogram samples.
		families, err := expo.Parse(b.String())
		if err == nil {
			expo.SetLabel(families, "node", srv.node)
			_ = expo.Write(w, families)
			return
		}
		// An unparseable exposition is a bug; serve it raw rather than 500
		// so operators can still see the malformed text.
	}
	fmt.Fprint(w, b.String())
}
