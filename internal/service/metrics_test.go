package service

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"acb/internal/expo"
)

// parseExposition splits Prometheus text exposition into declared types
// (metric name → TYPE value) and sample-line metric names, failing the
// test on any malformed line.
func parseExposition(t *testing.T, body string) (types map[string]string, samples []string) {
	t.Helper()
	types = make(map[string]string)
	for _, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) < 4 || (f[1] != "HELP" && f[1] != "TYPE") {
				t.Fatalf("malformed comment line %q", line)
			}
			if f[1] == "TYPE" {
				if prev, dup := types[f[2]]; dup {
					t.Fatalf("metric %s declared TYPE twice (%s, %s)", f[2], prev, f[3])
				}
				types[f[2]] = f[3]
			}
			continue
		}
		// Sample: name[{labels}] value
		name := line
		if i := strings.IndexByte(line, '{'); i >= 0 {
			name = line[:i]
			if !strings.Contains(line, "} ") {
				t.Fatalf("malformed labeled sample %q", line)
			}
		} else if i := strings.IndexByte(line, ' '); i >= 0 {
			name = line[:i]
		} else {
			t.Fatalf("sample line without value: %q", line)
		}
		if name == "" {
			t.Fatalf("sample line with empty name: %q", line)
		}
		samples = append(samples, name)
	}
	return types, samples
}

// histogramBase strips Prometheus histogram-sample suffixes so
// foo_bucket/foo_sum/foo_count resolve to foo's TYPE declaration.
func histogramBase(name string, types map[string]string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name && types[base] == "histogram" {
			return base
		}
	}
	return name
}

// TestMetricsExposition is the regression test for the gauge-typed
// counters bug: every `*_total` series must be declared `# TYPE ...
// counter` — Prometheus derives rate() semantics from the declaration, and
// a gauge-typed counter silently breaks dashboards.
func TestMetricsExposition(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	ts, _ := newTestServer(t, SchedulerConfig{SimJobs: 4}, "")

	// Run one real job so runner, duration and CPI series carry data.
	sr, code := postJob(t, ts, Request{Experiment: "cpistack", Workloads: []string{"compression"}, Budget: 20_000})
	if code != http.StatusCreated {
		t.Fatalf("submit status = %d", code)
	}
	if st := pollDone(t, ts, sr.ID, time.Minute); st.State != JobDone {
		t.Fatalf("job finished %s: %s", st.State, st.Error)
	}

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q is not text exposition 0.0.4", ct)
	}

	types, samples := parseExposition(t, string(body))

	for _, name := range samples {
		base := histogramBase(name, types)
		typ, declared := types[base]
		if !declared {
			t.Errorf("sample %s has no TYPE declaration", name)
			continue
		}
		if strings.HasSuffix(base, "_total") && typ != "counter" {
			t.Errorf("monotonic series %s declared %q, want counter", base, typ)
		}
	}

	for _, want := range []string{
		"acbd_simulations_total", "acbd_sim_seconds_total", "acbd_wall_seconds_total",
		"acbd_cpi_cycles_total", "acbd_job_duration_seconds",
		"acbd_job_retries_total", "acbd_store_disk_errors_total",
	} {
		if _, ok := types[want]; !ok {
			t.Errorf("missing TYPE declaration for %s", want)
		}
	}
	if types["acbd_job_duration_seconds"] != "histogram" {
		t.Errorf("acbd_job_duration_seconds declared %q, want histogram", types["acbd_job_duration_seconds"])
	}

	// The completed cpistack job must have populated both schemes' CPI
	// totals and exactly one duration observation.
	for _, want := range []string{
		`acbd_cpi_cycles_total{scheme="baseline",bucket="base"}`,
		`acbd_cpi_cycles_total{scheme="acb",bucket="base"}`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("missing CPI series %s", want)
		}
	}
	if !strings.Contains(string(body), "acbd_job_duration_seconds_count 1") {
		t.Errorf("duration histogram did not observe the job:\n%s", body)
	}
}

// TestMetricsNodeLabel is the aggregation-safety regression test: with
// an instance identity set, every sample on /v1/metrics — plain,
// pre-labeled and histogram alike — must carry a node label, so no
// scraper or cluster aggregator can ever merge two nodes' series into
// one indistinguishable stream. Parsed with the strict expo parser: a
// relabeled exposition that stopped parsing would be its own bug.
func TestMetricsNodeLabel(t *testing.T) {
	store, err := NewStore(4, "")
	if err != nil {
		t.Fatal(err)
	}
	sched := NewScheduler(SchedulerConfig{}, store)
	srv := NewServer(sched)
	srv.SetNode("w1")
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		sched.Shutdown(ctx)
	})

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}

	families, err := expo.Parse(string(body))
	if err != nil {
		t.Fatalf("relabeled exposition does not parse: %v\n%s", err, body)
	}
	if len(families) == 0 {
		t.Fatal("empty exposition")
	}
	var checked int
	for _, f := range families {
		for _, s := range f.Samples {
			checked++
			var node string
			for _, l := range s.Labels {
				if l.Name == "node" {
					node = l.Value
				}
			}
			if node != "w1" {
				t.Errorf("sample %s{%v} missing node label", s.Name, s.Labels)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no samples checked")
	}
	// Pre-labeled series keep their original labels alongside node.
	if !strings.Contains(string(body), `acbd_jobs{state="queued",node="w1"}`) {
		t.Errorf("labeled series lost its state label:\n%s", body)
	}

	// Sanity: without SetNode the exposition is untouched (no node label).
	bare := httptest.NewServer(NewServer(sched).Handler())
	defer bare.Close()
	resp, err = http.Get(bare.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	bareBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.Contains(string(bareBody), `node="`) {
		t.Error("node label emitted without an instance identity")
	}
}

// TestJobStatusCarriesCPI checks a finished job's status JSON includes its
// per-scheme CPI-stack summary with buckets summing to cycles.
func TestJobStatusCarriesCPI(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	ts, _ := newTestServer(t, SchedulerConfig{SimJobs: 4}, "")
	sr, code := postJob(t, ts, Request{Experiment: "cpistack", Workloads: []string{"compression"}, Budget: 20_000})
	if code != http.StatusCreated {
		t.Fatalf("submit status = %d", code)
	}
	st := pollDone(t, ts, sr.ID, time.Minute)
	if st.State != JobDone {
		t.Fatalf("job finished %s: %s", st.State, st.Error)
	}
	if len(st.CPI) == 0 {
		t.Fatal("done cpistack job carries no CPI summary")
	}
	for scheme, tot := range st.CPI {
		var sum int64
		for _, v := range tot.Buckets {
			sum += v
		}
		if sum != tot.Cycles || tot.Cycles == 0 {
			t.Fatalf("%s: buckets sum %d, cycles %d", scheme, sum, tot.Cycles)
		}
	}
}
