// Package service turns the one-shot experiment harness into a
// long-running simulation daemon: a job scheduler that dispatches
// experiment requests onto the internal/experiments worker pool with
// single-flight deduplication, a content-addressed result store with an
// in-memory LRU tier and an optional on-disk JSON tier, and a
// stdlib-only HTTP API (cmd/acbd) in front of both.
//
// The unit of work is a Request: one named experiment (see
// experiments.Experiments) on a workload subset, budget and core
// configuration. Requests are content-addressed — Key hashes the
// canonical form together with the simulator version — so identical work
// is deduplicated while in flight and served from the store forever
// after, making a re-run of `fig6` after a sweep a cache hit instead of
// thirty simulations.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"acb/internal/config"
	"acb/internal/experiments"
	"acb/internal/workload"
)

// SimVersion is folded into every result key. Bump it whenever simulator
// or workload semantics change in a way that alters results: old store
// entries then miss instead of serving stale tables.
const SimVersion = "acb-sim/1"

// DefaultBudget is the per-simulation retired-instruction budget applied
// to requests that leave Budget zero (matching experiments.Options).
const DefaultBudget = 400_000

// Request describes one experiment job.
type Request struct {
	// Experiment is a registry name, e.g. "fig6" (see acbsweep -h).
	Experiment string `json:"experiment"`
	// Workloads is a workload-name subset; empty means the full suite.
	Workloads []string `json:"workloads,omitempty"`
	// Budget is the retired-instruction budget per simulation
	// (DefaultBudget when zero).
	Budget int64 `json:"budget,omitempty"`
	// Config names the core configuration ("skylake" when empty).
	Config string `json:"config,omitempty"`
	// Seed is reserved for future stochastic workloads; today every
	// workload is seed-deterministic and Seed only perturbs the key.
	Seed int64 `json:"seed,omitempty"`
	// TimeoutMS is the job's deadline in milliseconds, capped by the
	// server's -max-timeout; 0 falls back to the server default. The
	// timeout never affects the result, so it is deliberately excluded
	// from the content-address key: the same work under a different
	// deadline is still the same work.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// normalize applies defaults and canonicalizes the request in place so
// that equivalent requests hash identically.
func (r *Request) normalize() error {
	if _, ok := experiments.Lookup(r.Experiment); !ok {
		return fmt.Errorf("service: unknown experiment %q", r.Experiment)
	}
	if r.Budget < 0 {
		return fmt.Errorf("service: negative budget %d", r.Budget)
	}
	if r.TimeoutMS < 0 {
		return fmt.Errorf("service: negative timeout_ms %d", r.TimeoutMS)
	}
	if r.Budget == 0 {
		r.Budget = DefaultBudget
	}
	// Selectors (trace:<file>, tier=adversarial, adversarial entries) are
	// validated here but expanded at run time, so the request key hashes
	// the selector text the caller wrote.
	if _, err := workload.Expand(r.Workloads); err != nil {
		return fmt.Errorf("service: %v", err)
	}
	cfg, err := config.ByName(r.Config)
	if err != nil {
		return fmt.Errorf("service: %v", err)
	}
	// Canonical name, so "skylake" and "skylake-1x" share a key.
	r.Config = cfg.Name
	return nil
}

// keyEnvelope is the hashed form of a request. Workload order is
// preserved, not sorted: row order of the resulting table depends on it.
type keyEnvelope struct {
	Version    string   `json:"version"`
	Experiment string   `json:"experiment"`
	Workloads  []string `json:"workloads"`
	Budget     int64    `json:"budget"`
	Config     string   `json:"config"`
	Seed       int64    `json:"seed"`
}

// Key validates and canonicalizes the request and returns its
// content-address: hex(SHA-256(canonical JSON || SimVersion)).
func (r *Request) Key() (string, error) {
	if err := r.normalize(); err != nil {
		return "", err
	}
	env := keyEnvelope{
		Version:    SimVersion,
		Experiment: r.Experiment,
		Workloads:  r.Workloads,
		Budget:     r.Budget,
		Config:     r.Config,
		Seed:       r.Seed,
	}
	if env.Workloads == nil {
		env.Workloads = []string{}
	}
	b, err := json.Marshal(env)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// options translates the request into experiment-harness options. jobs
// bounds the per-job simulation parallelism; stats (optional) accumulates
// runner totals for /v1/metrics.
func (r *Request) options(jobs int, stats *experiments.RunnerStats) (experiments.Options, error) {
	opts := experiments.DefaultOptions()
	opts.Budget = r.Budget
	opts.Jobs = jobs
	opts.Stats = stats
	cfg, err := config.ByName(r.Config)
	if err != nil {
		return opts, err
	}
	opts.Config = cfg
	ws, err := workload.Expand(r.Workloads)
	if err != nil {
		return opts, err
	}
	opts.Workloads = append(opts.Workloads, ws...)
	return opts, nil
}
