package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"acb/internal/experiments"
	"acb/internal/stats"
)

// JobState is a job's lifecycle state.
type JobState string

// Job lifecycle: Queued -> Running -> Done | Failed | Cancelled, with a
// direct Queued -> Cancelled edge and a direct -> Done edge for cache
// hits (no simulation runs at all).
const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// States lists every job state (metrics emit a gauge per state).
var States = []JobState{JobQueued, JobRunning, JobDone, JobFailed, JobCancelled}

// Sentinel errors, mapped onto HTTP statuses by the API layer.
var (
	ErrQueueFull    = errors.New("service: job queue full")
	ErrShuttingDown = errors.New("service: scheduler shutting down")
	ErrUnknownJob   = errors.New("service: unknown job")
)

// Job is one scheduled experiment. All mutable fields are guarded by the
// scheduler's mutex; read them through Status.
type Job struct {
	ID      string
	Key     string
	Request Request

	state    JobState
	err      string
	cacheHit bool
	created  time.Time
	started  time.Time
	finished time.Time
	cpi      map[string]experiments.CPITotals

	cancel context.CancelFunc
	// done is closed on entry to any terminal state.
	done chan struct{}
}

// JobStatus is the JSON snapshot of a job served by the API. Started and
// Finished are nil until the job reaches the corresponding state.
type JobStatus struct {
	ID         string     `json:"id"`
	State      JobState   `json:"state"`
	Experiment string     `json:"experiment"`
	Request    Request    `json:"request"`
	ResultKey  string     `json:"result_key"`
	CacheHit   bool       `json:"cache_hit,omitempty"`
	Error      string     `json:"error,omitempty"`
	Created    time.Time  `json:"created"`
	Started    *time.Time `json:"started,omitempty"`
	Finished   *time.Time `json:"finished,omitempty"`
	// CPI is the job's per-scheme CPI-stack summary (bucket order:
	// ooo.CPIBucketNames), populated when the job actually simulated.
	CPI map[string]experiments.CPITotals `json:"cpi,omitempty"`
}

// SchedulerConfig configures a Scheduler.
type SchedulerConfig struct {
	// QueueDepth bounds the number of queued (not yet running) jobs;
	// submissions beyond it fail fast with ErrQueueFull (backpressure
	// instead of unbounded memory). Default 64.
	QueueDepth int
	// Workers is the number of jobs running concurrently. Default 1: a
	// single experiment already fans its simulations out over SimJobs
	// workers, so more job-level concurrency mostly helps mixed tiny/huge
	// queues.
	Workers int
	// SimJobs is the per-job simulation parallelism passed through to
	// experiments.Options.Jobs (0 = GOMAXPROCS).
	SimJobs int
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...interface{})
}

// Scheduler owns the job table, the bounded queue and the worker pool.
type Scheduler struct {
	cfg       SchedulerConfig
	store     *Store
	runStats  *experiments.RunnerStats
	counters  *stats.Counters
	durations *stats.Histogram
	cpiStats  *experiments.CPIAccumulator

	baseCtx    context.Context
	baseCancel context.CancelFunc
	queue      chan *Job
	wg         sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string        // submission order, for listing
	inflight map[string]*Job // result key -> queued/running job (single-flight)
	nextID   int64
	closed   bool
}

// NewScheduler starts a scheduler with cfg's worker pool over the given
// store.
func NewScheduler(cfg SchedulerConfig, store *Store) *Scheduler {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...interface{}) {}
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Scheduler{
		cfg:        cfg,
		store:      store,
		runStats:   &experiments.RunnerStats{},
		counters:   stats.NewCounters(),
		durations:  stats.NewHistogram(JobDurationBounds...),
		cpiStats:   experiments.NewCPIAccumulator(),
		baseCtx:    ctx,
		baseCancel: cancel,
		queue:      make(chan *Job, cfg.QueueDepth),
		jobs:       make(map[string]*Job),
		inflight:   make(map[string]*Job),
	}
	s.wg.Add(cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		go s.worker()
	}
	return s
}

// Store returns the scheduler's result store.
func (s *Scheduler) Store() *Store { return s.store }

// RunnerStats returns the cumulative experiment-runner totals.
func (s *Scheduler) RunnerStats() *experiments.RunnerStats { return s.runStats }

// Counters returns the scheduler's monotonic counters (submitted,
// deduped, cache_hits, simulated, done, failed, cancelled).
func (s *Scheduler) Counters() *stats.Counters { return s.counters }

// JobDurationBounds are the per-job wall-duration histogram bucket upper
// bounds in seconds, spanning tiny smoke budgets to full-suite sweeps.
var JobDurationBounds = []float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300}

// Durations returns the per-job wall-duration histogram (every executed
// job observes one sample on reaching a terminal state; cache hits and
// queue-cancelled jobs never ran and are excluded).
func (s *Scheduler) Durations() *stats.Histogram { return s.durations }

// CPIStats returns the service-lifetime per-scheme CPI-stack totals
// accumulated across every simulated job.
func (s *Scheduler) CPIStats() *experiments.CPIAccumulator { return s.cpiStats }

// Submit schedules req. Returns the job snapshot and whether a new job
// was created: an in-flight identical request coalesces onto the
// existing job (single-flight) and a stored result completes immediately
// as a cache hit without touching the queue. Backpressure: ErrQueueFull
// when the queue is at capacity.
func (s *Scheduler) Submit(req Request) (JobStatus, bool, error) {
	key, err := req.Key() // validates and canonicalizes req
	if err != nil {
		return JobStatus{}, false, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return JobStatus{}, false, ErrShuttingDown
	}
	if prior := s.inflight[key]; prior != nil {
		s.counters.Add("deduped", 1)
		return s.statusLocked(prior), false, nil
	}

	s.counters.Add("submitted", 1)
	job := &Job{
		ID:      fmt.Sprintf("j%06d", s.nextID+1),
		Key:     key,
		Request: req,
		created: time.Now(),
		done:    make(chan struct{}),
	}

	if _, ok := s.store.Get(key); ok {
		// Served entirely from the store: record a terminal job so the
		// client can poll/fetch it like any other.
		s.nextID++
		job.state = JobDone
		job.cacheHit = true
		job.finished = job.created
		close(job.done)
		s.jobs[job.ID] = job
		s.order = append(s.order, job.ID)
		s.counters.Add("cache_hits", 1)
		s.counters.Add("done", 1)
		return s.statusLocked(job), true, nil
	}

	job.state = JobQueued
	select {
	case s.queue <- job:
	default:
		return JobStatus{}, false, ErrQueueFull
	}
	s.nextID++
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.inflight[key] = job
	s.cfg.Logf("acbd: %s queued: %s key=%.12s", job.ID, req.Experiment, key)
	return s.statusLocked(job), true, nil
}

// Job returns the snapshot of the identified job.
func (s *Scheduler) Job(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, ErrUnknownJob
	}
	return s.statusLocked(job), nil
}

// Jobs returns every job snapshot in submission order.
func (s *Scheduler) Jobs() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.statusLocked(s.jobs[id]))
	}
	return out
}

// Cancel requests cancellation of the identified job: a queued job is
// cancelled on the spot (its queue slot is skipped by the worker), a
// running job's simulation context is cancelled and the job reaches the
// cancelled state once the core stops. Terminal jobs are left untouched.
func (s *Scheduler) Cancel(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, ErrUnknownJob
	}
	switch job.state {
	case JobQueued:
		s.finishLocked(job, JobCancelled, "cancelled while queued")
	case JobRunning:
		if job.cancel != nil {
			job.cancel()
		}
	}
	return s.statusLocked(job), nil
}

// Wait blocks until the job reaches a terminal state or ctx is done.
func (s *Scheduler) Wait(ctx context.Context, id string) (JobStatus, error) {
	s.mu.Lock()
	job, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, ErrUnknownJob
	}
	select {
	case <-job.done:
		return s.Job(id)
	case <-ctx.Done():
		return JobStatus{}, ctx.Err()
	}
}

// QueueDepth returns the number of jobs waiting in the queue.
func (s *Scheduler) QueueDepth() int { return len(s.queue) }

// JobCounts returns a gauge of jobs per state.
func (s *Scheduler) JobCounts() map[JobState]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[JobState]int, len(States))
	for _, st := range States {
		out[st] = 0
	}
	for _, job := range s.jobs {
		out[job.state]++
	}
	return out
}

// Shutdown stops accepting submissions and drains: queued and running
// jobs complete normally. If ctx expires first, the remaining jobs'
// simulation contexts are cancelled and Shutdown returns ctx.Err() once
// they have unwound. The write-through store needs no separate persist
// step.
func (s *Scheduler) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.closed
	if !already {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-drained
		return ctx.Err()
	}
}

// worker drains the queue until Shutdown closes it.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		s.runJob(job)
	}
}

func (s *Scheduler) runJob(job *Job) {
	s.mu.Lock()
	if job.state != JobQueued { // cancelled while queued
		s.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	job.state = JobRunning
	job.started = time.Now()
	job.cancel = cancel
	s.mu.Unlock()
	defer cancel()

	opts, err := job.Request.options(s.cfg.SimJobs, s.runStats)
	var tab *stats.Table
	jobCPI := experiments.NewCPIAccumulator()
	if err == nil {
		opts.Context = ctx
		opts.Logf = s.cfg.Logf
		opts.CPIStats = jobCPI
		tab, err = experiments.Run(job.Request.Experiment, opts)
	}
	s.durations.Observe(time.Since(job.started).Seconds())
	s.cpiStats.Merge(jobCPI)
	if err == nil {
		s.counters.Add("simulated", 1)
		if perr := s.store.Put(job.Key, job.Request, tab); perr != nil {
			s.cfg.Logf("acbd: %s: persist: %v", job.ID, perr)
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if snap := jobCPI.Snapshot(); len(snap) > 0 {
		job.cpi = snap
	}
	switch {
	case err == nil:
		s.finishLocked(job, JobDone, "")
	case errors.Is(err, context.Canceled):
		s.finishLocked(job, JobCancelled, err.Error())
	default:
		s.finishLocked(job, JobFailed, err.Error())
	}
}

// finishLocked moves job into a terminal state. Caller holds s.mu.
func (s *Scheduler) finishLocked(job *Job, state JobState, errMsg string) {
	job.state = state
	job.err = errMsg
	job.finished = time.Now()
	if s.inflight[job.Key] == job {
		delete(s.inflight, job.Key)
	}
	close(job.done)
	s.counters.Add(string(state), 1)
	s.cfg.Logf("acbd: %s %s (%s)", job.ID, state, job.Request.Experiment)
}

func (s *Scheduler) statusLocked(job *Job) JobStatus {
	st := JobStatus{
		ID:         job.ID,
		State:      job.state,
		Experiment: job.Request.Experiment,
		Request:    job.Request,
		ResultKey:  job.Key,
		CacheHit:   job.cacheHit,
		Error:      job.err,
		Created:    job.created,
		CPI:        job.cpi,
	}
	if !job.started.IsZero() {
		t := job.started
		st.Started = &t
	}
	if !job.finished.IsZero() {
		t := job.finished
		st.Finished = &t
	}
	return st
}
