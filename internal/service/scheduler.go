package service

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"

	"acb/internal/experiments"
	"acb/internal/stats"
)

// JobState is a job's lifecycle state.
type JobState string

// Job lifecycle: Queued -> Running -> Done | Failed | Cancelled, with a
// direct Queued -> Cancelled edge, a direct -> Done edge for cache hits
// (no simulation runs at all), and a Running -> Queued edge when a
// transient failure is retried with backoff.
const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// States lists every job state (metrics emit a gauge per state).
var States = []JobState{JobQueued, JobRunning, JobDone, JobFailed, JobCancelled}

// Error kinds classify failed jobs (JobStatus.ErrorKind).
const (
	// ErrKindDeadline marks a job killed by its deadline; it is not
	// retried (it would only time out again).
	ErrKindDeadline = "deadline"
	// ErrKindTransient marks a potentially-recoverable failure (persist
	// error, worker panic, injected fault): retried with backoff until
	// MaxAttempts runs have begun.
	ErrKindTransient = "transient"
)

// Sentinel errors, mapped onto HTTP statuses by the API layer.
var (
	ErrQueueFull    = errors.New("service: job queue full")
	ErrShuttingDown = errors.New("service: scheduler shutting down")
	ErrUnknownJob   = errors.New("service: unknown job")
)

// FaultPoints is the hook the scheduler and store fire at their
// injection points ("worker", "worker.slow", "store.persist",
// "store.load"). A faultinject.Injector implements it; production runs
// leave it nil.
type FaultPoints interface {
	// Fire returns a non-nil error to inject a failure; it may also
	// sleep (slowness) or panic (crash injection) before returning.
	Fire(point string) error
}

// Job is one scheduled experiment. All mutable fields are guarded by the
// scheduler's mutex; read them through Status.
type Job struct {
	ID      string
	Key     string
	Request Request

	state    JobState
	err      string
	errKind  string
	attempts int // runs begun (journal semantics: includes interrupted runs)
	cacheHit bool
	replayed bool
	created  time.Time
	started  time.Time
	finished time.Time
	cpi      map[string]experiments.CPITotals

	// journaled records that this job has a submit record in the WAL, so
	// its terminal transition must be journaled too.
	journaled bool

	cancel context.CancelFunc
	// done is closed on entry to any terminal state.
	done chan struct{}
}

// JobStatus is the JSON snapshot of a job served by the API. Started and
// Finished are nil until the job reaches the corresponding state.
type JobStatus struct {
	ID         string   `json:"id"`
	State      JobState `json:"state"`
	Experiment string   `json:"experiment"`
	Request    Request  `json:"request"`
	ResultKey  string   `json:"result_key"`
	CacheHit   bool     `json:"cache_hit,omitempty"`
	Error      string   `json:"error,omitempty"`
	// ErrorKind classifies failures: "deadline" or "transient" (see
	// ErrKind*). Empty for done/cancelled jobs.
	ErrorKind string `json:"error_kind,omitempty"`
	// Attempts is the number of runs begun, counting runs interrupted by
	// a daemon crash; 0 for jobs served straight from the store.
	Attempts int `json:"attempts,omitempty"`
	// Replayed marks jobs recovered from the journal after a restart.
	Replayed bool       `json:"replayed,omitempty"`
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
	// CPI is the job's per-scheme CPI-stack summary (bucket order:
	// ooo.CPIBucketNames), populated when the job actually simulated.
	CPI map[string]experiments.CPITotals `json:"cpi,omitempty"`
}

// SchedulerConfig configures a Scheduler.
type SchedulerConfig struct {
	// QueueDepth bounds the number of queued (not yet running) jobs;
	// submissions beyond it fail fast with ErrQueueFull (backpressure
	// instead of unbounded memory). Default 64.
	QueueDepth int
	// Workers is the number of jobs running concurrently. Default 1: a
	// single experiment already fans its simulations out over SimJobs
	// workers, so more job-level concurrency mostly helps mixed tiny/huge
	// queues.
	Workers int
	// SimJobs is the per-job simulation parallelism passed through to
	// experiments.Options.Jobs (0 = GOMAXPROCS).
	SimJobs int

	// DefaultTimeout is the per-job deadline applied to requests that
	// set no timeout_ms (0 = no deadline).
	DefaultTimeout time.Duration
	// MaxTimeout caps request-supplied timeouts so a client cannot hold
	// a worker hostage with a huge deadline. Default 1h.
	MaxTimeout time.Duration

	// MaxAttempts bounds how many runs of one job may begin (first run +
	// retries + runs interrupted by crashes). Default 3.
	MaxAttempts int
	// RetryBase and RetryMax shape the exponential backoff between
	// retries of transiently failed jobs (defaults 250ms and 10s); the
	// delay before run N+1 is drawn from [b/2, b] with b =
	// min(RetryMax, RetryBase<<(N-1)) (equal jitter).
	RetryBase time.Duration
	RetryMax  time.Duration
	// RetrySeed seeds the jitter generator, making backoff schedules
	// reproducible in tests (0 = seeded from the clock).
	RetrySeed int64

	// RetainJobs caps how many terminal jobs stay in the job table;
	// beyond it the oldest terminal jobs are evicted in submission order
	// (their persisted results remain fetchable by key). Default 1024.
	RetainJobs int

	// Journal, when non-nil, is the write-ahead log: submissions are
	// acknowledged only after their journal record is fsync'd, and a
	// restarted scheduler re-enqueues the crash survivors (Replay).
	Journal *Journal
	// Replay lists journal-recovered jobs to re-enqueue before the
	// workers start (from OpenJournal).
	Replay []ReplayJob

	// Faults, when non-nil, receives injection-point fires (chaos
	// testing; see internal/faultinject).
	Faults FaultPoints

	// After is the timer source for retry backoff waits (nil =
	// time.After); tests inject it to run backoff schedules instantly.
	After func(time.Duration) <-chan time.Time

	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...interface{})
}

// Scheduler owns the job table, the bounded queue and the worker pool.
type Scheduler struct {
	cfg       SchedulerConfig
	store     *Store
	journal   *Journal
	runStats  *experiments.RunnerStats
	counters  *stats.Counters
	durations *stats.Histogram
	cpiStats  *experiments.CPIAccumulator

	baseCtx    context.Context
	baseCancel context.CancelFunc
	queue      chan *Job
	wg         sync.WaitGroup
	retryWG    sync.WaitGroup
	// drainCh is closed when Shutdown begins; backoff waits abort on it.
	drainCh chan struct{}

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string        // submission order, for listing and eviction
	inflight map[string]*Job // result key -> queued/running job (single-flight)
	terminal int             // jobs in a terminal state (retention accounting)
	retryRng *rand.Rand      // jitter source; guarded by mu
	nextID   int64
	closed   bool
	ready    bool
}

// NewScheduler starts a scheduler with cfg's worker pool over the given
// store. Journal-recovered jobs (cfg.Replay) are re-enqueued, in their
// original submission order and ahead of any new submission, before the
// workers start; the scheduler reports Ready once recovery is complete.
func NewScheduler(cfg SchedulerConfig, store *Store) *Scheduler {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = time.Hour
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 250 * time.Millisecond
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = 10 * time.Second
	}
	if cfg.RetainJobs <= 0 {
		cfg.RetainJobs = 1024
	}
	if cfg.RetrySeed == 0 {
		cfg.RetrySeed = time.Now().UnixNano()
	}
	if cfg.After == nil {
		cfg.After = time.After
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...interface{}) {}
	}
	depth := cfg.QueueDepth
	if len(cfg.Replay) > depth {
		// The queue must hold every crash survivor; backpressure applies
		// to new work, not recovery.
		depth = len(cfg.Replay)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Scheduler{
		cfg:        cfg,
		store:      store,
		journal:    cfg.Journal,
		runStats:   &experiments.RunnerStats{},
		counters:   stats.NewCounters(),
		durations:  stats.NewHistogram(JobDurationBounds...),
		cpiStats:   experiments.NewCPIAccumulator(),
		baseCtx:    ctx,
		baseCancel: cancel,
		queue:      make(chan *Job, depth),
		drainCh:    make(chan struct{}),
		jobs:       make(map[string]*Job),
		inflight:   make(map[string]*Job),
		retryRng:   rand.New(rand.NewSource(cfg.RetrySeed)),
	}
	s.journal.SetFaults(cfg.Faults)
	s.restore(cfg.Replay)
	s.mu.Lock()
	s.ready = true
	s.mu.Unlock()
	s.wg.Add(cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		go s.worker()
	}
	return s
}

// restore re-enqueues journal-recovered jobs. Runs before the workers
// start, so recovered work keeps its pre-crash order.
func (s *Scheduler) restore(replay []ReplayJob) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(replay) > 0 {
		// One replay event per recovery, however many jobs it carried
		// (the per-job count is the "replayed" event).
		s.counters.Add("journal_replays", 1)
	}
	for _, rj := range replay {
		job := &Job{
			ID:        rj.ID,
			Key:       rj.Key,
			Request:   rj.Request,
			attempts:  rj.Attempt,
			replayed:  true,
			journaled: true,
			created:   time.Now(),
			state:     JobQueued,
			done:      make(chan struct{}),
		}
		// Keep fresh IDs past every recovered one.
		if n, err := strconv.ParseInt(strings.TrimPrefix(rj.ID, "j"), 10, 64); err == nil && n > s.nextID {
			s.nextID = n
		}
		s.jobs[job.ID] = job
		s.order = append(s.order, job.ID)
		s.counters.Add("replayed", 1)
		if rj.Interrupted {
			s.counters.Add("interrupted", 1)
		}

		// Crash window between persist and the terminal journal record:
		// the result is already durable, so complete without re-running.
		if _, ok := s.store.Get(rj.Key); ok {
			job.cacheHit = true
			s.counters.Add("cache_hits", 1)
			s.finishLocked(job, JobDone, "")
			continue
		}
		if job.attempts >= s.cfg.MaxAttempts {
			job.errKind = ErrKindTransient
			s.finishLocked(job, JobFailed,
				fmt.Sprintf("service: %d attempts exhausted across restarts", job.attempts))
			continue
		}
		s.inflight[job.Key] = job
		s.queue <- job // capacity ≥ len(replay): never blocks
		s.cfg.Logf("acbd: %s replayed (attempt %d, interrupted=%v): %s",
			job.ID, job.attempts, rj.Interrupted, job.Request.Experiment)
	}
}

// Store returns the scheduler's result store.
func (s *Scheduler) Store() *Store { return s.store }

// Journal returns the scheduler's write-ahead log (nil when disabled).
func (s *Scheduler) Journal() *Journal { return s.journal }

// RunnerStats returns the cumulative experiment-runner totals.
func (s *Scheduler) RunnerStats() *experiments.RunnerStats { return s.runStats }

// Counters returns the scheduler's monotonic counters (submitted,
// rejected, deduped, cache_hits, simulated, retried, replayed,
// interrupted, deadline_exceeded, journal_errors, done, failed,
// cancelled).
func (s *Scheduler) Counters() *stats.Counters { return s.counters }

// JobDurationBounds are the per-job wall-duration histogram bucket upper
// bounds in seconds, spanning tiny smoke budgets to full-suite sweeps.
var JobDurationBounds = []float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300}

// Durations returns the per-job wall-duration histogram (every executed
// run observes one sample on completion, including runs that are later
// retried; cache hits and queue-cancelled jobs never ran and are
// excluded).
func (s *Scheduler) Durations() *stats.Histogram { return s.durations }

// CPIStats returns the service-lifetime per-scheme CPI-stack totals
// accumulated across every simulated job.
func (s *Scheduler) CPIStats() *experiments.CPIAccumulator { return s.cpiStats }

// Ready reports whether the scheduler is accepting and executing work:
// false while journal replay is still populating the queue and once
// draining has begun. The reason string explains a false answer.
func (s *Scheduler) Ready() (bool, string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.closed:
		return false, "draining for shutdown"
	case !s.ready:
		return false, "replaying journal"
	}
	return true, ""
}

// Submit schedules req. Returns the job snapshot and whether a new job
// was created: an in-flight identical request coalesces onto the
// existing job (single-flight) and a stored result completes immediately
// as a cache hit without touching the queue. Backpressure: ErrQueueFull
// when the queue is at capacity. With a journal, acceptance is
// acknowledged only after the submit record is fsync'd.
func (s *Scheduler) Submit(req Request) (JobStatus, bool, error) {
	key, err := req.Key() // validates and canonicalizes req
	if err != nil {
		return JobStatus{}, false, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return JobStatus{}, false, ErrShuttingDown
	}
	if prior := s.inflight[key]; prior != nil {
		s.counters.Add("deduped", 1)
		return s.statusLocked(prior), false, nil
	}

	job := &Job{
		ID:      fmt.Sprintf("j%06d", s.nextID+1),
		Key:     key,
		Request: req,
		created: time.Now(),
		done:    make(chan struct{}),
	}

	if _, ok := s.store.Get(key); ok {
		// Served entirely from the store: record a terminal job so the
		// client can poll/fetch it like any other.
		s.nextID++
		s.counters.Add("submitted", 1)
		job.state = JobDone
		job.cacheHit = true
		job.finished = job.created
		close(job.done)
		s.jobs[job.ID] = job
		s.order = append(s.order, job.ID)
		s.terminal++
		s.counters.Add("cache_hits", 1)
		s.counters.Add("done", 1)
		s.evictLocked()
		return s.statusLocked(job), true, nil
	}

	job.state = JobQueued
	select {
	case s.queue <- job:
	default:
		// Rejected submissions are counted separately and never inflate
		// "submitted" (which feeds capacity accounting).
		s.counters.Add("rejected", 1)
		return JobStatus{}, false, ErrQueueFull
	}
	s.nextID++
	s.counters.Add("submitted", 1)
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.inflight[key] = job
	s.evictLocked()
	if s.journal != nil {
		if jerr := s.journal.Submit(job.ID, key, job.Request, 0); jerr != nil {
			// Non-fatal: the job runs, it just loses crash durability.
			s.counters.Add("journal_errors", 1)
			s.cfg.Logf("acbd: %s: journal submit: %v", job.ID, jerr)
		} else {
			job.journaled = true
		}
	}
	s.cfg.Logf("acbd: %s queued: %s key=%.12s", job.ID, req.Experiment, key)
	return s.statusLocked(job), true, nil
}

// Job returns the snapshot of the identified job.
func (s *Scheduler) Job(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, ErrUnknownJob
	}
	return s.statusLocked(job), nil
}

// Jobs returns every retained job snapshot in submission order.
func (s *Scheduler) Jobs() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.statusLocked(s.jobs[id]))
	}
	return out
}

// Cancel requests cancellation of the identified job: a queued job is
// cancelled on the spot (its queue slot is skipped by the worker, and a
// pending retry is abandoned), a running job's simulation context is
// cancelled and the job reaches the cancelled state once the core
// stops. Terminal jobs are left untouched.
func (s *Scheduler) Cancel(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, ErrUnknownJob
	}
	switch job.state {
	case JobQueued:
		s.finishLocked(job, JobCancelled, "cancelled while queued")
	case JobRunning:
		if job.cancel != nil {
			job.cancel()
		}
	}
	return s.statusLocked(job), nil
}

// Wait blocks until the job reaches a terminal state or ctx is done.
func (s *Scheduler) Wait(ctx context.Context, id string) (JobStatus, error) {
	s.mu.Lock()
	job, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, ErrUnknownJob
	}
	select {
	case <-job.done:
		return s.Job(id)
	case <-ctx.Done():
		return JobStatus{}, ctx.Err()
	}
}

// QueueDepth returns the number of jobs waiting in the queue.
func (s *Scheduler) QueueDepth() int { return len(s.queue) }

// JobCounts returns a gauge of retained jobs per state.
func (s *Scheduler) JobCounts() map[JobState]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[JobState]int, len(States))
	for _, st := range States {
		out[st] = 0
	}
	for _, job := range s.jobs {
		out[job.state]++
	}
	return out
}

// Shutdown stops accepting submissions and drains: queued and running
// jobs complete normally, while jobs waiting out a retry backoff fail
// fast (journaled jobs keep their requeue record, so a restart resumes
// the retry). If ctx expires first, the remaining jobs' simulation
// contexts are cancelled and Shutdown returns ctx.Err() once they have
// unwound. The write-through store needs no separate persist step.
func (s *Scheduler) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.closed
	if !already {
		s.closed = true
		close(s.queue)
		close(s.drainCh)
	}
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		s.retryWG.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		s.baseCancel()
		<-drained
		err = ctx.Err()
	}
	if cerr := s.journal.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// worker drains the queue until Shutdown closes it.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		s.runJob(job)
	}
}

// jobTimeout resolves a request's effective deadline: the request's
// timeout_ms capped by MaxTimeout, or DefaultTimeout when the request
// sets none (0 = no deadline).
func (s *Scheduler) jobTimeout(req Request) time.Duration {
	d := time.Duration(req.TimeoutMS) * time.Millisecond
	if d <= 0 {
		return s.cfg.DefaultTimeout
	}
	if d > s.cfg.MaxTimeout {
		return s.cfg.MaxTimeout
	}
	return d
}

// execute runs one attempt of the job's experiment, converting worker
// panics (including injected ones) into errors so a poisoned job cannot
// take the daemon down with it.
func (s *Scheduler) execute(ctx context.Context, job *Job, jobCPI *experiments.CPIAccumulator) (tab *stats.Table, err error) {
	defer func() {
		if r := recover(); r != nil {
			if re, ok := r.(error); ok {
				err = fmt.Errorf("service: worker panic: %w", re)
			} else {
				err = fmt.Errorf("service: worker panic: %v", r)
			}
			tab = nil
		}
	}()
	if f := s.cfg.Faults; f != nil {
		f.Fire("worker.slow") // slowness-only point: error kinds ignored here
		if ferr := f.Fire("worker"); ferr != nil {
			return nil, ferr
		}
	}
	opts, err := job.Request.options(s.cfg.SimJobs, s.runStats)
	if err != nil {
		return nil, err
	}
	opts.Context = ctx
	opts.Logf = s.cfg.Logf
	opts.CPIStats = jobCPI
	return experiments.Run(job.Request.Experiment, opts)
}

func (s *Scheduler) runJob(job *Job) {
	s.mu.Lock()
	if job.state != JobQueued { // cancelled while queued or awaiting retry
		s.mu.Unlock()
		return
	}
	timeout := s.jobTimeout(job.Request)
	ctx, cancel := context.WithCancel(s.baseCtx)
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(s.baseCtx, timeout)
	}
	job.state = JobRunning
	job.started = time.Now()
	job.attempts++
	job.cancel = cancel
	attempt := job.attempts
	s.mu.Unlock()
	defer cancel()
	if job.journaled {
		if jerr := s.journal.Start(job.ID); jerr != nil {
			s.counters.Add("journal_errors", 1)
			s.cfg.Logf("acbd: %s: journal start: %v", job.ID, jerr)
		}
	}

	jobCPI := experiments.NewCPIAccumulator()
	tab, err := s.execute(ctx, job, jobCPI)
	s.durations.Observe(time.Since(job.started).Seconds())
	s.cpiStats.Merge(jobCPI)
	if err == nil {
		s.counters.Add("simulated", 1)
		if perr := s.store.Put(job.Key, job.Request, tab); perr != nil {
			// A result that cannot be persisted is a transient job
			// failure: the attempt is retried rather than silently served
			// without durability.
			err = fmt.Errorf("service: persist: %w", perr)
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if snap := jobCPI.Snapshot(); len(snap) > 0 {
		job.cpi = snap
	}
	switch {
	case err == nil:
		s.finishLocked(job, JobDone, "")
	case errors.Is(err, context.Canceled):
		s.finishLocked(job, JobCancelled, err.Error())
	case errors.Is(err, context.DeadlineExceeded):
		job.errKind = ErrKindDeadline
		s.counters.Add("deadline_exceeded", 1)
		s.finishLocked(job, JobFailed,
			fmt.Sprintf("service: deadline exceeded after %s (timeout %s)",
				time.Since(job.started).Round(time.Millisecond), timeout))
	default:
		job.errKind = ErrKindTransient
		if attempt < s.cfg.MaxAttempts {
			if !s.closed {
				s.requeueLocked(job, err)
				return
			}
			// Draining: keep the WAL's submit/start record un-terminated
			// so a journaled job's remaining retries resume on restart.
			job.journaled = false
			s.finishLocked(job, JobFailed,
				fmt.Sprintf("%v (retry abandoned: shutting down; journaled jobs resume on restart)", err))
			return
		}
		s.finishLocked(job, JobFailed,
			fmt.Sprintf("%v (attempt %d/%d)", err, attempt, s.cfg.MaxAttempts))
	}
}

// requeueLocked schedules a retry of a transiently failed job: the job
// goes back to queued, its requeue is journaled, and after an
// exponential-backoff delay it rejoins the queue. Caller holds s.mu.
func (s *Scheduler) requeueLocked(job *Job, cause error) {
	job.state = JobQueued
	job.err = cause.Error()
	delay := retryDelay(job.attempts, s.cfg.RetryBase, s.cfg.RetryMax, s.retryRng)
	s.counters.Add("retried", 1)
	if job.journaled {
		if jerr := s.journal.Requeue(job.ID, job.attempts); jerr != nil {
			s.counters.Add("journal_errors", 1)
			s.cfg.Logf("acbd: %s: journal requeue: %v", job.ID, jerr)
		}
	}
	s.cfg.Logf("acbd: %s retry %d/%d in %s: %v", job.ID, job.attempts+1, s.cfg.MaxAttempts, delay, cause)
	s.retryWG.Add(1)
	go s.retryAfter(job, delay)
}

// retryAfter waits out the backoff, then puts the job back on the
// queue. Draining aborts the wait and fails the job fast — without a
// terminal journal record, so a journaled job's retry resumes on
// restart. A job cancelled during backoff stays cancelled.
func (s *Scheduler) retryAfter(job *Job, delay time.Duration) {
	defer s.retryWG.Done()
	abandon := func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if job.state != JobQueued {
			return
		}
		job.journaled = false // keep the requeue record: restart resumes the retry
		s.finishLocked(job, JobFailed,
			fmt.Sprintf("%v (retry abandoned: shutting down; journaled jobs resume on restart)", job.err))
	}
	select {
	case <-s.cfg.After(delay):
	case <-s.drainCh:
		abandon()
		return
	}
	for {
		s.mu.Lock()
		if job.state != JobQueued { // cancelled while waiting
			s.mu.Unlock()
			return
		}
		if s.closed {
			s.mu.Unlock()
			abandon()
			return
		}
		select {
		case s.queue <- job:
			s.mu.Unlock()
			return
		default: // queue momentarily full of new work; try again shortly
		}
		s.mu.Unlock()
		select {
		case <-s.cfg.After(10 * time.Millisecond):
		case <-s.drainCh:
			abandon()
			return
		}
	}
}

// retryDelay computes the backoff before the run after attempt runs
// have begun: exponential in the attempt number, capped at max, with
// equal jitter (uniform in [d/2, d]) so a burst of transient failures
// does not retry in lockstep.
func retryDelay(attempt int, base, max time.Duration, rng *rand.Rand) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	half := d / 2
	return half + time.Duration(rng.Int63n(int64(half)+1))
}

// finishLocked moves job into a terminal state. Caller holds s.mu.
func (s *Scheduler) finishLocked(job *Job, state JobState, errMsg string) {
	switch job.state {
	case JobDone, JobFailed, JobCancelled:
		return // already terminal
	}
	job.state = state
	job.err = errMsg
	job.finished = time.Now()
	if s.inflight[job.Key] == job {
		delete(s.inflight, job.Key)
	}
	close(job.done)
	s.terminal++
	s.counters.Add(string(state), 1)
	if job.journaled {
		if jerr := s.journal.Terminal(job.ID, state, errMsg); jerr != nil {
			s.counters.Add("journal_errors", 1)
			s.cfg.Logf("acbd: %s: journal terminal: %v", job.ID, jerr)
		}
	}
	s.evictLocked()
	s.cfg.Logf("acbd: %s %s (%s)", job.ID, state, job.Request.Experiment)
}

// evictLocked enforces the terminal-job retention cap: the oldest
// terminal jobs are dropped from the table, in submission order, until
// at most RetainJobs remain. Active jobs are never evicted, and a
// dropped job's persisted result stays fetchable by key. Caller holds
// s.mu.
func (s *Scheduler) evictLocked() {
	for s.terminal > s.cfg.RetainJobs {
		evicted := false
		for i, id := range s.order {
			job := s.jobs[id]
			switch job.state {
			case JobDone, JobFailed, JobCancelled:
				delete(s.jobs, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				s.terminal--
				evicted = true
			}
			if evicted {
				break
			}
		}
		if !evicted {
			return // nothing terminal to evict (shouldn't happen)
		}
	}
}

func (s *Scheduler) statusLocked(job *Job) JobStatus {
	st := JobStatus{
		ID:         job.ID,
		State:      job.state,
		Experiment: job.Request.Experiment,
		Request:    job.Request,
		ResultKey:  job.Key,
		CacheHit:   job.cacheHit,
		Error:      job.err,
		Attempts:   job.attempts,
		Replayed:   job.replayed,
		Created:    job.created,
		CPI:        job.cpi,
	}
	if job.state == JobFailed {
		st.ErrorKind = job.errKind
	}
	if !job.started.IsZero() {
		t := job.started
		st.Started = &t
	}
	if !job.finished.IsZero() {
		t := job.finished
		st.Finished = &t
	}
	return st
}
