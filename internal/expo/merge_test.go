package expo

import (
	"strings"
	"testing"
)

// Merge edge cases the coordinator hits in production rollups: nodes
// disagreeing on HELP text, histogram families whose _bucket/_sum/_count
// samples must travel with their base family, and label values that only
// survive a merge round-trip if escaping is handled on both sides.

func mustParse(t *testing.T, text string) []Family {
	t.Helper()
	fams, err := Parse(text)
	if err != nil {
		t.Fatalf("parse %q: %v", text, err)
	}
	return fams
}

// TestMergeDuplicateHelpFirstSeenWins: two nodes exposing the same family
// with different HELP text merge under the first-seen text — the merge
// must be deterministic in input order, never a mixture.
func TestMergeDuplicateHelpFirstSeenWins(t *testing.T) {
	a := mustParse(t, "# HELP acbd_jobs jobs queued\n# TYPE acbd_jobs gauge\nacbd_jobs{node=\"w1\"} 3\n")
	b := mustParse(t, "# HELP acbd_jobs jobs currently queued (v2 wording)\n# TYPE acbd_jobs gauge\nacbd_jobs{node=\"w2\"} 5\n")

	m := Merge(a, b)
	if len(m) != 1 {
		t.Fatalf("merged into %d families, want 1", len(m))
	}
	if m[0].Help != "jobs queued" {
		t.Fatalf("help = %q, want first-seen %q", m[0].Help, "jobs queued")
	}
	if len(m[0].Samples) != 2 {
		t.Fatalf("%d samples, want both nodes'", len(m[0].Samples))
	}

	// Swapping input order swaps which HELP wins — order-determined, not
	// content-determined.
	if m := Merge(b, a); m[0].Help != "jobs currently queued (v2 wording)" {
		t.Fatalf("reversed merge help = %q, want second exposition's text", m[0].Help)
	}
}

// TestMergeFillsMissingHelpAndType: a node that omits HELP (or TYPE)
// must not blank the merged declaration when another node carries it.
func TestMergeFillsMissingHelpAndType(t *testing.T) {
	bare := mustParse(t, "# TYPE acbd_up gauge\nacbd_up{node=\"w1\"} 1\n")
	full := mustParse(t, "# HELP acbd_up node liveness\n# TYPE acbd_up gauge\nacbd_up{node=\"w2\"} 1\n")
	m := Merge(bare, full)
	if len(m) != 1 || m[0].Help != "node liveness" || m[0].Type != "gauge" {
		t.Fatalf("merge did not backfill declarations: %+v", m)
	}
}

// TestMergeHistogramAcrossNodes: per-node histogram expositions merge
// into one family that keeps every node's _bucket/_sum/_count samples, in
// node order, under a single declaration.
func TestMergeHistogramAcrossNodes(t *testing.T) {
	node := func(name string, le1, le2, sum, count string) []Family {
		text := "# HELP acbd_latency request latency\n# TYPE acbd_latency histogram\n" +
			"acbd_latency_bucket{node=\"" + name + "\",le=\"0.1\"} " + le1 + "\n" +
			"acbd_latency_bucket{node=\"" + name + "\",le=\"+Inf\"} " + le2 + "\n" +
			"acbd_latency_sum{node=\"" + name + "\"} " + sum + "\n" +
			"acbd_latency_count{node=\"" + name + "\"} " + count + "\n"
		return mustParse(t, text)
	}

	m := Merge(node("w1", "4", "9", "1.25", "9"), node("w2", "7", "11", "2.5", "11"))
	if len(m) != 1 {
		t.Fatalf("histogram split into %d families: %+v", len(m), m)
	}
	f := m[0]
	if f.Type != "histogram" || len(f.Samples) != 8 {
		t.Fatalf("merged family type=%q samples=%d, want histogram with all 8 samples", f.Type, len(f.Samples))
	}
	// Suffix samples stay attached to the base family and keep node order.
	wantNames := []string{
		"acbd_latency_bucket", "acbd_latency_bucket", "acbd_latency_sum", "acbd_latency_count",
		"acbd_latency_bucket", "acbd_latency_bucket", "acbd_latency_sum", "acbd_latency_count",
	}
	for i, s := range f.Samples {
		if s.Name != wantNames[i] {
			t.Fatalf("sample %d name = %q, want %q", i, s.Name, wantNames[i])
		}
	}
	out := String(m)
	if strings.Count(out, "# TYPE acbd_latency histogram") != 1 {
		t.Fatalf("merged exposition declares the histogram more than once:\n%s", out)
	}
	if !strings.Contains(out, `le="+Inf"`) {
		t.Fatalf("merged exposition lost the +Inf bucket:\n%s", out)
	}
}

// TestMergeEscapedLabelValues: label values containing quotes, backslashes
// and newlines must survive parse → merge → write → parse unchanged.
func TestMergeEscapedLabelValues(t *testing.T) {
	in := "# HELP acbd_info build info\n# TYPE acbd_info gauge\n" +
		`acbd_info{path="C:\\sim\\acb",quote="say \"hi\"",multi="line one\nline two"} 1` + "\n"
	fams := mustParse(t, in)
	got := fams[0].Samples[0].Labels
	want := []Label{
		{Name: "path", Value: `C:\sim\acb`},
		{Name: "quote", Value: `say "hi"`},
		{Name: "multi", Value: "line one\nline two"},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d labels, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("label %d = %+v, want %+v", i, got[i], want[i])
		}
	}

	// Round-trip through a merge with a second node: the rendered text
	// must re-parse to the identical label set, and the raw newline must
	// never leak into the output unescaped (it would split the sample
	// line and corrupt the whole exposition).
	other := mustParse(t, "# HELP acbd_info build info\n# TYPE acbd_info gauge\nacbd_info{node=\"w2\"} 1\n")
	out := String(Merge(fams, other))
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if line == "" {
			t.Fatalf("unescaped newline split the exposition:\n%s", out)
		}
	}
	back := mustParse(t, out)
	if len(back) != 1 || len(back[0].Samples) != 2 {
		t.Fatalf("round-trip reparse lost samples: %+v", back)
	}
	for i := range want {
		if back[0].Samples[0].Labels[i] != want[i] {
			t.Fatalf("round-trip label %d = %+v, want %+v", i, back[0].Samples[0].Labels[i], want[i])
		}
	}
}
