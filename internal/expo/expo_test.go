package expo

import (
	"strings"
	"testing"
)

const sampleText = `# HELP acbd_jobs Jobs by lifecycle state.
# TYPE acbd_jobs gauge
acbd_jobs{state="queued"} 0
acbd_jobs{state="running"} 2
# HELP acbd_simulations_total Simulations dispatched onto the worker pool.
# TYPE acbd_simulations_total counter
acbd_simulations_total 7
# HELP acbd_job_duration_seconds Wall-clock duration of executed jobs.
# TYPE acbd_job_duration_seconds histogram
acbd_job_duration_seconds_bucket{le="0.05"} 1
acbd_job_duration_seconds_bucket{le="+Inf"} 3
acbd_job_duration_seconds_sum 1.25
acbd_job_duration_seconds_count 3
`

func TestParseRoundTrip(t *testing.T) {
	families, err := Parse(sampleText)
	if err != nil {
		t.Fatal(err)
	}
	if len(families) != 3 {
		t.Fatalf("parsed %d families, want 3", len(families))
	}
	if families[0].Name != "acbd_jobs" || families[0].Type != "gauge" {
		t.Fatalf("family[0] = %+v", families[0])
	}
	// Histogram suffix samples attach to the base family.
	if got := len(families[2].Samples); got != 4 {
		t.Fatalf("histogram family has %d samples, want 4", got)
	}
	if got := String(families); got != sampleText {
		t.Errorf("round trip drifted:\n got: %q\nwant: %q", got, sampleText)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, text := range []string{
		"# BOGUS foo counter\nfoo 1\n",
		"orphan_sample 1\n",
		"# TYPE foo counter\nfoo{state=queued} 1\n", // unquoted label value
		"# TYPE foo counter\nfoo\n",                 // no value
		"# TYPE foo counter\nfoo{a=\"b} 1\n",        // unterminated value
	} {
		if _, err := Parse(text); err == nil {
			t.Errorf("Parse(%q) accepted malformed input", text)
		}
	}
}

func TestSetLabel(t *testing.T) {
	families, err := Parse(sampleText)
	if err != nil {
		t.Fatal(err)
	}
	SetLabel(families, "node", "w1")
	out := String(families)
	for _, line := range strings.Split(out, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.Contains(line, `node="w1"`) {
			t.Errorf("sample without node label after SetLabel: %q", line)
		}
	}
	// Existing labels survive alongside the new one.
	if !strings.Contains(out, `acbd_jobs{state="queued",node="w1"} 0`) {
		t.Errorf("labeled sample lost its original labels:\n%s", out)
	}
	// Override, not duplicate.
	SetLabel(families, "node", "w2")
	out = String(families)
	if strings.Contains(out, `node="w1"`) || strings.Count(out, `node="w2"`) == 0 {
		t.Errorf("SetLabel did not override prior node label:\n%s", out)
	}
	if strings.Contains(out, `node="w2",node=`) {
		t.Errorf("SetLabel duplicated the node label:\n%s", out)
	}
}

func TestMergeGroupsByFamilyAndSorts(t *testing.T) {
	a, err := Parse("# HELP b_total b.\n# TYPE b_total counter\nb_total 1\n# TYPE a gauge\na 5\n")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse("# TYPE b_total counter\nb_total 2\n")
	if err != nil {
		t.Fatal(err)
	}
	SetLabel(a, "node", "w1")
	SetLabel(b, "node", "w2")
	merged := Merge(a, b)
	if len(merged) != 2 || merged[0].Name != "a" || merged[1].Name != "b_total" {
		t.Fatalf("merged families = %+v", merged)
	}
	if len(merged[1].Samples) != 2 {
		t.Fatalf("b_total has %d samples after merge, want 2", len(merged[1].Samples))
	}
	want := "# TYPE a gauge\na{node=\"w1\"} 5\n# HELP b_total b.\n# TYPE b_total counter\nb_total{node=\"w1\"} 1\nb_total{node=\"w2\"} 2\n"
	if got := String(merged); got != want {
		t.Errorf("merged exposition:\n got: %q\nwant: %q", got, want)
	}
	// A single TYPE declaration per family: the duplicate-scrape case.
	if strings.Count(String(merged), "# TYPE b_total") != 1 {
		t.Error("merge emitted duplicate TYPE declarations")
	}
}

func TestLabelEscaping(t *testing.T) {
	families := []Family{{
		Name: "f", Type: "gauge",
		Samples: []Sample{{Name: "f", Labels: []Label{{Name: "p", Value: `a"b\c`}}, Value: "1"}},
	}}
	out := String(families)
	back, err := Parse(out)
	if err != nil {
		t.Fatalf("reparse %q: %v", out, err)
	}
	if got := back[0].Samples[0].Labels[0].Value; got != `a"b\c` {
		t.Errorf("escaped round trip = %q, want %q", got, `a"b\c`)
	}
}
