// Package expo parses, rewrites and merges Prometheus text exposition
// (version 0.0.4). It exists for exactly two jobs in this codebase:
// stamping a node label onto every series a single daemon emits (so two
// indistinguishable acbd instances can never be merged into one
// meaningless series by a scraper), and rolling the per-node expositions
// of a cluster up into one aggregated exposition on the coordinator.
//
// The parser is deliberately narrow: it round-trips exactly the subset
// of the format the acbd metrics handlers produce — `# HELP` / `# TYPE`
// comments and `name[{labels}] value` samples — and preserves sample
// values as strings, so relabeling never reformats a number.
package expo

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Label is one name="value" pair. Values are stored unescaped.
type Label struct {
	Name  string
	Value string
}

// Sample is one exposition sample line.
type Sample struct {
	Name   string
	Labels []Label
	Value  string // verbatim, never reparsed
}

// Family is one metric family: its HELP/TYPE declaration and samples in
// emission order. Histogram families own their _bucket/_sum/_count
// samples.
type Family struct {
	Name    string
	Help    string
	Type    string
	Samples []Sample
}

// Parse reads a text exposition into families, preserving family and
// sample order. Samples that appear before any TYPE declaration of a
// matching family are rejected, as are malformed comment and sample
// lines: this is a closed system, not a lenient scraper.
func Parse(text string) ([]Family, error) {
	var (
		families []Family
		byName   = make(map[string]int)
	)
	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			rest := strings.TrimPrefix(line, "# ")
			kind, rest, ok := strings.Cut(rest, " ")
			if !ok || (kind != "HELP" && kind != "TYPE") {
				return nil, fmt.Errorf("expo: malformed comment line %q", line)
			}
			name, payload, _ := strings.Cut(rest, " ")
			if name == "" {
				return nil, fmt.Errorf("expo: comment line without metric name: %q", line)
			}
			i, ok := byName[name]
			if !ok {
				i = len(families)
				byName[name] = i
				families = append(families, Family{Name: name})
			}
			if kind == "HELP" {
				families[i].Help = payload
			} else {
				families[i].Type = payload
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, err
		}
		i, ok := byName[familyOf(s.Name, byName)]
		if !ok {
			return nil, fmt.Errorf("expo: sample %q has no TYPE/HELP declaration", s.Name)
		}
		families[i].Samples = append(families[i].Samples, s)
	}
	return families, nil
}

// familyOf resolves a sample name to its family name: itself, or — for
// histogram sample suffixes — the declared base family.
func familyOf(name string, byName map[string]int) string {
	if _, ok := byName[name]; ok {
		return name
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name {
			if _, ok := byName[base]; ok {
				return base
			}
		}
	}
	return name
}

// parseSample splits `name[{labels}] value`.
func parseSample(line string) (Sample, error) {
	var s Sample
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		s.Name = line[:i]
		j := strings.LastIndex(line, "}")
		if j < i {
			return s, fmt.Errorf("expo: malformed labeled sample %q", line)
		}
		labels, err := parseLabels(line[i+1 : j])
		if err != nil {
			return s, fmt.Errorf("expo: sample %q: %w", line, err)
		}
		s.Labels = labels
		rest = strings.TrimSpace(line[j+1:])
	} else {
		var ok bool
		s.Name, rest, ok = strings.Cut(line, " ")
		if !ok {
			return s, fmt.Errorf("expo: sample line without value: %q", line)
		}
	}
	if s.Name == "" || rest == "" {
		return s, fmt.Errorf("expo: malformed sample line %q", line)
	}
	s.Value = rest
	return s, nil
}

// parseLabels splits `a="x",b="y"` handling escaped quotes/backslashes.
func parseLabels(body string) ([]Label, error) {
	var labels []Label
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq < 0 || len(body) < eq+2 || body[eq+1] != '"' {
			return nil, fmt.Errorf("malformed label list at %q", body)
		}
		name := body[:eq]
		rest := body[eq+2:]
		var b strings.Builder
		i := 0
		for ; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				i++
				switch rest[i] {
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteByte(rest[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			b.WriteByte(c)
		}
		if i == len(rest) {
			return nil, fmt.Errorf("unterminated label value at %q", body)
		}
		labels = append(labels, Label{Name: name, Value: b.String()})
		body = rest[i+1:]
		body = strings.TrimPrefix(body, ",")
	}
	return labels, nil
}

// SetLabel sets (or overrides) one label on every sample of every
// family, in place. Existing occurrences are overridden where they
// stand; otherwise the label is appended, so e.g. `{state="queued"}`
// becomes `{state="queued",node="w1"}`.
func SetLabel(families []Family, name, value string) {
	for fi := range families {
		for si := range families[fi].Samples {
			s := &families[fi].Samples[si]
			found := false
			for li := range s.Labels {
				if s.Labels[li].Name == name {
					s.Labels[li].Value = value
					found = true
				}
			}
			if !found {
				s.Labels = append(s.Labels, Label{Name: name, Value: value})
			}
		}
	}
}

// Merge combines several expositions into one: families with the same
// name are unified under the first-seen HELP/TYPE and their samples
// concatenated in input order. It is the aggregation step of the
// coordinator's cluster-wide /v1/metrics — inputs are expected to carry
// a distinguishing node label already (SetLabel), and families are
// emitted sorted by name so aggregated output is deterministic whatever
// order the per-node scrapes landed in.
func Merge(inputs ...[]Family) []Family {
	var (
		out    []Family
		byName = make(map[string]int)
	)
	for _, families := range inputs {
		for _, f := range families {
			i, ok := byName[f.Name]
			if !ok {
				byName[f.Name] = len(out)
				out = append(out, f)
				continue
			}
			out[i].Samples = append(out[i].Samples, f.Samples...)
			if out[i].Help == "" {
				out[i].Help = f.Help
			}
			if out[i].Type == "" {
				out[i].Type = f.Type
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Write renders families back to exposition text.
func Write(w io.Writer, families []Family) error {
	for _, f := range families {
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, f.Help); err != nil {
				return err
			}
		}
		if f.Type != "" {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Type); err != nil {
				return err
			}
		}
		for _, s := range f.Samples {
			if len(s.Labels) == 0 {
				if _, err := fmt.Fprintf(w, "%s %s\n", s.Name, s.Value); err != nil {
					return err
				}
				continue
			}
			var b strings.Builder
			for i, l := range s.Labels {
				if i > 0 {
					b.WriteByte(',')
				}
				// %q escapes exactly what the exposition format requires
				// (backslash, quote, newline) for the values we carry.
				fmt.Fprintf(&b, "%s=%q", l.Name, l.Value)
			}
			if _, err := fmt.Fprintf(w, "%s{%s} %s\n", s.Name, b.String(), s.Value); err != nil {
				return err
			}
		}
	}
	return nil
}

// String renders families to a string (Write over a builder).
func String(families []Family) string {
	var b strings.Builder
	_ = Write(&b, families)
	return b.String()
}
