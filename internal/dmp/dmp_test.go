package dmp_test

import (
	"testing"

	"acb/internal/bpu"
	"acb/internal/config"
	"acb/internal/dmp"
	"acb/internal/isa"
	"acb/internal/ooo"
	"acb/internal/prog"
)

// buildH2P builds a loop with a data-dependent IF-ELSE hammock whose
// condition TAGE cannot learn, plus a store in the taken path so the
// eager/select machinery's memory invalidation is exercised.
func buildH2P(iters, period int64) ([]isa.Instruction, *isa.Memory) {
	b := prog.NewBuilder()
	b.MovI(isa.R1, iters)
	b.MovI(isa.R2, 0x1000)
	b.MovI(isa.R3, 0)
	b.MovI(isa.R7, 0)
	b.MovI(isa.R10, 0x40000) // scratch output area
	b.Label("loop")
	b.AndI(isa.R4, isa.R3, period-1)
	b.MulI(isa.R4, isa.R4, 8)
	b.Add(isa.R5, isa.R2, isa.R4)
	b.Load(isa.R6, isa.R5, 0)
	b.AndI(isa.R6, isa.R6, 1)
	b.Brz(isa.R6, "else")
	b.AddI(isa.R7, isa.R7, 3)
	b.Store(isa.R10, 0, isa.R7)
	b.Jmp("end")
	b.Label("else")
	b.AddI(isa.R7, isa.R7, 7)
	b.Label("end")
	b.Load(isa.R9, isa.R10, 0) // reads last taken-path store
	b.Add(isa.R11, isa.R11, isa.R9)
	b.AddI(isa.R3, isa.R3, 1)
	b.Sub(isa.R8, isa.R3, isa.R1)
	b.Brnz(isa.R8, "loop")
	b.Halt()
	p := b.MustBuild()

	m := isa.NewMemory()
	x := uint64(0xDEADBEEF)
	for i := int64(0); i < period; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		m.Store(0x1000+i*8, int64(x&0xFFFF))
	}
	return p, m
}

func TestProfileFindsH2PHammock(t *testing.T) {
	p, m := buildH2P(20_000, 4096)
	cands := dmp.Profile(p, m, dmp.DefaultProfileConfig())
	if len(cands) == 0 {
		t.Fatal("profiling found no candidates")
	}
	c := cands[0]
	if c.MispredictRate < 0.1 {
		t.Errorf("top candidate mispredict rate %.3f, want >= 0.1", c.MispredictRate)
	}
	if c.ReconPC <= c.PC {
		t.Errorf("reconvergence %d not after branch %d", c.ReconPC, c.PC)
	}
	t.Logf("top candidate: pc=%d recon=%d T=%d NT=%d rate=%.3f simple=%v",
		c.PC, c.ReconPC, c.TakenLen, c.NotTakenLen, c.MispredictRate, c.Simple)
}

// TestDMPEndToEnd: DMP with eager select-µops must stay value-correct
// (including predicated-false stores) and cut flushes on the H2P hammock.
func TestDMPEndToEnd(t *testing.T) {
	p, m := buildH2P(20_000, 4096)

	want := isa.NewArchState(m.Clone())
	if _, halted := want.Run(p, 3_000_000); !halted {
		t.Fatal("functional run did not halt")
	}

	runWith := func(scheme ooo.Scheme) ooo.Result {
		c := ooo.NewWithMemory(config.Skylake(), p, bpu.NewTAGE(bpu.DefaultTAGEConfig()), scheme, m.Clone())
		res, err := c.Run(3_000_000)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		if !res.Halted {
			t.Fatalf("did not halt: retired=%d", res.Retired)
		}
		return res
	}

	base := runWith(nil)

	cands := dmp.Profile(p, m, dmp.DefaultProfileConfig())
	sch := dmp.New(dmp.DefaultConfig(dmp.ModeDMP), cands)
	res := runWith(sch)

	for r := 0; r < isa.NumRegs; r++ {
		if res.FinalRegs[r] != want.Regs[r] {
			t.Errorf("DMP run r%d = %d, want %d", r, res.FinalRegs[r], want.Regs[r])
		}
	}
	if res.Predications == 0 {
		t.Fatal("DMP never predicated")
	}
	if res.SelectUops == 0 {
		t.Fatal("DMP injected no select micro-ops")
	}
	if res.Flushes >= base.Flushes {
		t.Errorf("DMP flushes %d not below baseline %d", res.Flushes, base.Flushes)
	}
	t.Logf("baseline: IPC=%.3f flushes=%d", base.IPC, base.Flushes)
	t.Logf("dmp:      IPC=%.3f flushes=%d predications=%d selects=%d invalidatedMem=%d",
		res.IPC, res.Flushes, res.Predications, res.SelectUops, res.InvalidatedMem)
}
