package dmp_test

import (
	"testing"

	"acb/internal/dmp"
	"acb/internal/isa"
	"acb/internal/prog"
	"acb/internal/workload"
)

// TestProfileCostModel: the enhanced-DMP fetch-cost model must reject a
// big-body hammock whose misprediction rate cannot repay the extra
// allocations (Equation 1, fetch side only).
func TestProfileCostModel(t *testing.T) {
	build := func(body int, mask int64) ([]isa.Instruction, *isa.Memory) {
		b := prog.NewBuilder()
		b.MovI(isa.R1, 1_000_000)
		b.MovI(isa.R2, 0x1000)
		b.MovI(isa.R3, 0)
		b.Label("loop")
		b.AndI(isa.R4, isa.R3, 1023)
		b.MulI(isa.R4, isa.R4, 8)
		b.Add(isa.R5, isa.R2, isa.R4)
		b.Load(isa.R6, isa.R5, 0)
		b.AndI(isa.R6, isa.R6, mask) // mask 0 -> never taken -> ~0% mispredict
		b.Brz(isa.R6, "else")
		for i := 0; i < body; i++ {
			b.AddI(isa.R7, isa.R7, 1)
		}
		b.Jmp("end")
		b.Label("else")
		for i := 0; i < body; i++ {
			b.AddI(isa.R7, isa.R7, 2)
		}
		b.Label("end")
		b.AddI(isa.R3, isa.R3, 1)
		b.Sub(isa.R8, isa.R3, isa.R1)
		b.Brnz(isa.R8, "loop")
		b.Halt()
		p := b.MustBuild()
		m := isa.NewMemory()
		x := uint64(0xBEEF)
		for i := int64(0); i < 1024; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			m.Store(0x1000+i*8, int64(x&0xFF))
		}
		return p, m
	}

	cfg := dmp.DefaultProfileConfig()
	cfg.Steps = 300_000

	// Small body, random condition: selected.
	p, m := build(3, 1)
	if cands := dmp.Profile(p, m, cfg); len(cands) == 0 {
		t.Error("small H2P hammock not selected")
	}

	// Same condition but a body too large for its rate: rejected by the
	// fetch-cost model (extra allocs > rate * penalty).
	// rate ~0.5 here repays a lot; use a mildly-mispredicting mask with a
	// huge body instead.
	p, m = build(50, 1)
	cfgTight := cfg
	cfgTight.MispredictPenalty = 10
	for _, c := range dmp.Profile(p, m, cfgTight) {
		if c.TakenLen+c.NotTakenLen > 90 {
			t.Errorf("oversized hammock selected: %+v", c)
		}
	}

	// Predictable branch: rejected by the H2P threshold.
	p, m = build(3, 0)
	for _, c := range dmp.Profile(p, m, cfg) {
		if c.MispredictRate < cfg.MinMispredictRate {
			t.Errorf("cold branch selected: %+v", c)
		}
	}
}

// TestDHPFiltersComplexAndLong: DHP keeps only short simple hammocks.
func TestDHPFiltersComplexAndLong(t *testing.T) {
	cands := []dmp.Candidate{
		{PC: 1, Simple: true, TakenLen: 2, NotTakenLen: 3},  // kept
		{PC: 2, Simple: false, TakenLen: 2, NotTakenLen: 2}, // complex
		{PC: 3, Simple: true, TakenLen: 9, NotTakenLen: 2},  // too long
		{PC: 4, Simple: true, TakenLen: 4, NotTakenLen: 4},  // kept
	}
	s := dmp.New(dmp.DefaultConfig(dmp.ModeDHP), cands)
	if s.Candidates() != 2 {
		t.Fatalf("DHP kept %d candidates, want 2", s.Candidates())
	}
	d := dmp.New(dmp.DefaultConfig(dmp.ModeDMP), cands)
	if d.Candidates() != 4 {
		t.Fatalf("DMP kept %d candidates, want all 4", d.Candidates())
	}
}

// TestSchemeNames: report labels.
func TestSchemeNames(t *testing.T) {
	if dmp.New(dmp.DefaultConfig(dmp.ModeDMP), nil).Name() != "dmp" {
		t.Error("dmp name")
	}
	if dmp.New(dmp.DefaultConfig(dmp.ModeDHP), nil).Name() != "dhp" {
		t.Error("dhp name")
	}
	cfg := dmp.DefaultConfig(dmp.ModeDMP)
	cfg.PerfectBranchHistory = true
	if dmp.New(cfg, nil).Name() != "dmp-pbh" {
		t.Error("pbh name")
	}
}

// TestTrainingInputMismatch: a TrainDiffers hammock looks predictable to
// the profiler (training input) but is H2P at run time — so DMP's
// compiler pass must miss it (the paper's input-mismatch argument).
func TestTrainingInputMismatch(t *testing.T) {
	spec := workload.Spec{
		Seed: 4242, Iters: 1 << 40, Period: 8192,
		Hammocks: []workload.Hammock{
			{Shape: workload.ShapeIfElse, TLen: 3, NTLen: 3, TakenBias: 0.5,
				Noise: 0.9, TrainDiffers: true, TrainNoise: 0.02},
		},
	}
	cfg := dmp.DefaultProfileConfig()
	cfg.Steps = 400_000

	tp, tm := spec.BuildTrain()
	trainCands := dmp.Profile(tp, tm, cfg)

	rp, rm := spec.Build()
	runCands := dmp.Profile(rp, rm, cfg)

	// The actual input exposes the hammock as H2P...
	found := false
	for _, c := range runCands {
		if c.MispredictRate > 0.2 {
			found = true
		}
	}
	if !found {
		t.Fatal("run input did not expose an H2P hammock")
	}
	// ...but the training input hides it from the compiler.
	for _, c := range trainCands {
		if c.MispredictRate > 0.2 {
			t.Fatalf("training input exposed the hammock: %+v", c)
		}
	}
}
