// Package dmp implements the prior-work baselines the paper compares ACB
// against (Sec. V-C):
//
//   - DMP, the Diverge-Merge Processor (Kim et al. [7], enhanced by
//     profile-assisted compiler support [15]): compiler-identified
//     diverge branches with their control-flow-merge points, predicated
//     at run time on low branch-prediction confidence, executed eagerly
//     with select micro-ops over a forked RAT.
//   - DMP-PBH, the Fig. 9 oracle that inserts the true outcome of every
//     predicated instance into the global branch history.
//   - DHP, Dynamic Hammock Predication (Klauser et al. [11]): the same
//     run-time confidence gating, restricted to short, simple hammocks.
//
// The compiler profiling-and-analysis pass the hardware relies on is
// reproduced by Profile: a functional run with a standalone TAGE predictor
// measures per-branch misprediction rates, and the static CFG
// postdominator analysis (package prog) supplies reconvergence points and
// body sizes.
package dmp

import (
	"sort"

	"acb/internal/bpu"
	"acb/internal/isa"
	"acb/internal/ooo"
	"acb/internal/prog"
)

// Candidate is one profiled diverge-branch candidate.
type Candidate struct {
	PC             int
	ReconPC        int
	TakenLen       int
	NotTakenLen    int
	Simple         bool
	Executions     int64
	Mispredicts    int64
	MispredictRate float64
}

// ProfileConfig parameterizes the compiler stand-in.
type ProfileConfig struct {
	// Steps is the functional profiling budget in retired instructions.
	Steps int64
	// MaxBody bounds each path's instruction count (candidates beyond it
	// are not considered convergent by the compiler pass).
	MaxBody int
	// MinExecutions filters branches too cold to profile reliably.
	MinExecutions int64
	// MinMispredictRate is the H2P selection threshold.
	MinMispredictRate float64
	// AllocWidth feeds the enhanced-DMP fetch-cost model: predication must
	// be expected profitable counting fetch/allocation costs only (the
	// paper notes enhanced DMP cannot account for execution costs).
	AllocWidth int
	// MispredictPenalty is the assumed flush penalty for the cost model.
	MispredictPenalty float64
}

// DefaultProfileConfig returns a profiling setup matching the simulated
// Skylake-like baseline.
func DefaultProfileConfig() ProfileConfig {
	return ProfileConfig{
		Steps:             2_000_000,
		MaxBody:           56,
		MinExecutions:     64,
		MinMispredictRate: 0.02,
		AllocWidth:        4,
		MispredictPenalty: 20,
	}
}

// Profile runs the compiler stand-in: functional execution with a TAGE
// model to find H2P branches, combined with static reconvergence analysis.
// The returned candidates are sorted by descending misprediction count.
func Profile(p []isa.Instruction, image *isa.Memory, cfg ProfileConfig) []Candidate {
	type count struct{ execs, miss int64 }
	counts := make(map[int]*count)

	pred := bpu.NewTAGE(bpu.DefaultTAGEConfig())
	st := isa.NewArchState(image.Clone())
	for step := int64(0); step < cfg.Steps; step++ {
		pc := st.PC
		in := &p[pc]
		if in.Op == isa.Br {
			pr := pred.Predict(uint64(pc), false)
			res := st.Step(p)
			cnt := counts[pc]
			if cnt == nil {
				cnt = &count{}
				counts[pc] = cnt
			}
			cnt.execs++
			if pr.Taken != res.Taken {
				cnt.miss++
			}
			pred.Update(uint64(pc), pr, res.Taken)
			pred.PushHistory(uint64(pc), res.Taken)
			continue
		}
		res := st.Step(p)
		if res.Halted {
			break
		}
	}

	hammocks := prog.AnalyzeHammocks(p, cfg.MaxBody)
	var out []Candidate
	for _, h := range hammocks {
		cnt := counts[h.BranchPC]
		if cnt == nil || cnt.execs < cfg.MinExecutions {
			continue
		}
		rate := float64(cnt.miss) / float64(cnt.execs)
		if rate < cfg.MinMispredictRate {
			continue
		}
		// Enhanced-DMP fetch-cost model: extra allocations per predicated
		// instance must be repaid by saved flush cycles (fetch-side
		// Equation 1; execution-side costs are invisible to the compiler).
		extraAlloc := float64(h.TakenLen+h.NotTakenLen) / 2 / float64(cfg.AllocWidth)
		if extraAlloc > rate*cfg.MispredictPenalty {
			continue
		}
		out = append(out, Candidate{
			PC:             h.BranchPC,
			ReconPC:        h.ReconvPC,
			TakenLen:       h.TakenLen,
			NotTakenLen:    h.NotTakenLen,
			Simple:         h.Simple,
			Executions:     cnt.execs,
			Mispredicts:    cnt.miss,
			MispredictRate: rate,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Mispredicts > out[j].Mispredicts })
	return out
}

// Mode selects the baseline variant.
type Mode int

// Baseline variants.
const (
	ModeDMP Mode = iota // full diverge-merge predication
	ModeDHP             // short simple hammocks only
)

// Config parameterizes the run-time side of the baselines.
type Config struct {
	Mode Mode
	// PerfectBranchHistory enables the DMP-PBH oracle (Fig. 9).
	PerfectBranchHistory bool
	// ConfidenceThreshold is the JRS counter value at and above which the
	// instance is considered confident (and therefore not predicated).
	ConfidenceThreshold int8
	// MaxBody is the per-path fetch budget before divergence.
	MaxBody int
	// DHPMaxLen bounds each path of a DHP hammock.
	DHPMaxLen int
}

// DefaultConfig returns the configuration used in the paper-comparison
// experiments.
func DefaultConfig(mode Mode) Config {
	return Config{
		Mode:                mode,
		ConfidenceThreshold: 8,
		MaxBody:             56,
		DHPMaxLen:           4,
	}
}

// Scheme is the run-time engine; it implements ooo.Scheme.
type Scheme struct {
	cfg        Config
	candidates map[int]Candidate
	conf       *bpu.JRSConfidence

	// Telemetry.
	Predications int64
	ConfSkips    int64
}

// New builds the run-time engine from profiled candidates.
func New(cfg Config, candidates []Candidate) *Scheme {
	s := &Scheme{
		cfg:        cfg,
		candidates: make(map[int]Candidate),
		conf:       bpu.NewJRSConfidence(12, 16, cfg.ConfidenceThreshold),
	}
	for _, c := range candidates {
		if cfg.Mode == ModeDHP {
			if !c.Simple || c.TakenLen > cfg.DHPMaxLen || c.NotTakenLen > cfg.DHPMaxLen {
				continue
			}
		}
		s.candidates[c.PC] = c
	}
	return s
}

// Name implements ooo.Scheme.
func (s *Scheme) Name() string {
	switch {
	case s.cfg.Mode == ModeDHP:
		return "dhp"
	case s.cfg.PerfectBranchHistory:
		return "dmp-pbh"
	default:
		return "dmp"
	}
}

// Candidates returns the number of active diverge-branch candidates.
func (s *Scheme) Candidates() int { return len(s.candidates) }

// ShouldPredicate implements ooo.Scheme: predicate compiler-selected
// branches whose current instance has low prediction confidence.
func (s *Scheme) ShouldPredicate(pc int, _ bool, _ int, hist uint64) (ooo.PredSpec, bool) {
	cand, ok := s.candidates[pc]
	if !ok {
		return ooo.PredSpec{}, false
	}
	if s.conf.Confident(uint64(pc), hist) {
		s.ConfSkips++
		return ooo.PredSpec{}, false
	}
	s.Predications++
	return ooo.PredSpec{
		ReconPC:         cand.ReconPC,
		FirstTaken:      false,
		MaxBody:         s.cfg.MaxBody,
		Eager:           true,
		PushTrueHistory: s.cfg.PerfectBranchHistory,
	}, true
}

// OnFetch implements ooo.Scheme (the baselines learn nothing at fetch;
// convergence comes from the compiler).
func (s *Scheme) OnFetch(ooo.FetchEvent) {}

// OnFlush implements ooo.Scheme.
func (s *Scheme) OnFlush() {}

// OnBranchResolve implements ooo.Scheme: train the confidence estimator
// with resolved, non-predicated instances.
func (s *Scheme) OnBranchResolve(ev ooo.ResolveEvent) {
	if ev.Predicated {
		return
	}
	s.conf.Update(uint64(ev.PC), ev.Hist, !ev.Mispredict)
}

// OnRetireTick implements ooo.Scheme.
func (s *Scheme) OnRetireTick(int64) {}

var _ ooo.Scheme = (*Scheme)(nil)
