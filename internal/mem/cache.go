// Package mem models the data-side memory hierarchy: set-associative
// write-back caches with LRU replacement (L1D, L2, LLC) in front of a
// fixed-latency DRAM. The timing model is intentionally simple — loads
// receive a latency from the hierarchy on dispatch, stores fill on commit —
// but it produces the phenomenon the paper's criticality analysis needs:
// long-latency LLC-missing loads that dominate the critical path and
// shadow branch mispredictions (Sec. II-A, the soplex effect).
package mem

// Cache is one set-associative, LRU, write-allocate cache level.
type Cache struct {
	name     string
	sets     int
	ways     int
	lineBits uint
	latency  int

	tags  []uint64 // sets*ways entries; tag 0 means empty (tags stored +1)
	lru   []uint64 // per-way last-use stamp
	stamp uint64

	hits   int64
	misses int64
}

// NewCache returns a cache with sizeBytes capacity, the given
// associativity, 64-byte lines and hit latency in cycles.
func NewCache(name string, sizeBytes, ways, latency int) *Cache {
	const lineBytes = 64
	sets := sizeBytes / lineBytes / ways
	if sets < 1 {
		sets = 1
	}
	return &Cache{
		name:     name,
		sets:     sets,
		ways:     ways,
		lineBits: 6,
		latency:  latency,
		tags:     make([]uint64, sets*ways),
		lru:      make([]uint64, sets*ways),
	}
}

// Name returns the cache level's name.
func (c *Cache) Name() string { return c.name }

// Latency returns the hit latency of this level.
func (c *Cache) Latency() int { return c.latency }

// Hits returns the number of hits recorded.
func (c *Cache) Hits() int64 { return c.hits }

// Misses returns the number of misses recorded.
func (c *Cache) Misses() int64 { return c.misses }

// Access probes the cache for the line containing addr and fills it on a
// miss; it returns true on hit.
func (c *Cache) Access(addr int64) bool {
	line := uint64(addr) >> c.lineBits
	set := int(line % uint64(c.sets))
	tag := line + 1 // avoid the zero (empty) encoding
	base := set * c.ways
	c.stamp++
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == tag {
			c.hits++
			c.lru[base+w] = c.stamp
			return true
		}
	}
	c.misses++
	// Fill: evict the least-recently-used way.
	victim := base
	for w := 1; w < c.ways; w++ {
		if c.lru[base+w] < c.lru[victim] {
			victim = base + w
		}
	}
	c.tags[victim] = tag
	c.lru[victim] = c.stamp
	return false
}

// Contains probes without updating any state (for tests).
func (c *Cache) Contains(addr int64) bool {
	line := uint64(addr) >> c.lineBits
	set := int(line % uint64(c.sets))
	tag := line + 1
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == tag {
			return true
		}
	}
	return false
}

// Hierarchy is a three-level cache hierarchy over DRAM.
type Hierarchy struct {
	L1D *Cache
	L2  *Cache
	LLC *Cache
	// DRAMLatency is the total load-to-use latency of a memory access
	// that misses all levels.
	DRAMLatency int
}

// HierarchyConfig sizes the hierarchy.
type HierarchyConfig struct {
	L1Size, L1Ways, L1Lat    int
	L2Size, L2Ways, L2Lat    int
	LLCSize, LLCWays, LLCLat int
	DRAMLatency              int
}

// SkylakeHierarchy returns latencies and sizes similar to the paper's
// Skylake-like baseline (Table II): 32K/8w L1D (5 cyc), 256K/8w L2
// (15 cyc), 8M/16w LLC (40 cyc), ~200-cycle DRAM.
func SkylakeHierarchy() HierarchyConfig {
	return HierarchyConfig{
		L1Size: 32 << 10, L1Ways: 8, L1Lat: 5,
		L2Size: 256 << 10, L2Ways: 8, L2Lat: 15,
		LLCSize: 8 << 20, LLCWays: 16, LLCLat: 40,
		DRAMLatency: 200,
	}
}

// NewHierarchy builds the hierarchy from a config.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	return &Hierarchy{
		L1D:         NewCache("L1D", cfg.L1Size, cfg.L1Ways, cfg.L1Lat),
		L2:          NewCache("L2", cfg.L2Size, cfg.L2Ways, cfg.L2Lat),
		LLC:         NewCache("LLC", cfg.LLCSize, cfg.LLCWays, cfg.LLCLat),
		DRAMLatency: cfg.DRAMLatency,
	}
}

// LoadLatency performs a load access and returns its latency in cycles.
func (h *Hierarchy) LoadLatency(addr int64) int {
	if h.L1D.Access(addr) {
		return h.L1D.Latency()
	}
	if h.L2.Access(addr) {
		return h.L2.Latency()
	}
	if h.LLC.Access(addr) {
		return h.LLC.Latency()
	}
	return h.DRAMLatency
}

// StoreCommit installs the line written by a committing store; stores do
// not stall the pipeline in this model.
func (h *Hierarchy) StoreCommit(addr int64) {
	if h.L1D.Access(addr) {
		return
	}
	if h.L2.Access(addr) {
		return
	}
	h.LLC.Access(addr)
}

// Clone returns an independent deep copy of the cache — tag state, LRU
// stamps and counters. Sampled simulation warms one hierarchy continuously
// during functional fast-forward and hands each parallel window a clone of
// the state at its start.
func (c *Cache) Clone() *Cache {
	cp := *c
	cp.tags = append([]uint64(nil), c.tags...)
	cp.lru = append([]uint64(nil), c.lru...)
	return &cp
}

// Clone returns an independent deep copy of the hierarchy.
func (h *Hierarchy) Clone() *Hierarchy {
	return &Hierarchy{
		L1D:         h.L1D.Clone(),
		L2:          h.L2.Clone(),
		LLC:         h.LLC.Clone(),
		DRAMLatency: h.DRAMLatency,
	}
}
