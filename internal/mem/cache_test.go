package mem

import (
	"testing"
	"testing/quick"
)

func TestCacheHitAfterFill(t *testing.T) {
	c := NewCache("L1", 32<<10, 8, 5)
	if c.Access(0x1000) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Fatal("second access missed")
	}
	if !c.Access(0x103F) { // same 64B line
		t.Fatal("same-line access missed")
	}
	if c.Access(0x1040) { // next line
		t.Fatal("next-line access hit")
	}
	if c.Hits() != 2 || c.Misses() != 2 {
		t.Fatalf("hits=%d misses=%d, want 2/2", c.Hits(), c.Misses())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2-way, 2-set tiny cache: 4 lines of 64B = 256B.
	c := NewCache("tiny", 256, 2, 1)
	// Three distinct lines mapping to the same set (stride = sets*64 = 128).
	a, b, d := int64(0), int64(128), int64(256)
	c.Access(a)
	c.Access(b)
	c.Access(a) // touch a so b is LRU
	c.Access(d) // evicts b
	if !c.Contains(a) {
		t.Fatal("a evicted despite being MRU")
	}
	if c.Contains(b) {
		t.Fatal("b not evicted")
	}
	if !c.Contains(d) {
		t.Fatal("d not filled")
	}
}

func TestCacheContainsDoesNotMutate(t *testing.T) {
	c := NewCache("x", 256, 2, 1)
	if c.Contains(0) {
		t.Fatal("empty cache contains line")
	}
	if c.Hits()+c.Misses() != 0 {
		t.Fatal("Contains counted stats")
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := NewHierarchy(SkylakeHierarchy())
	addr := int64(0x123440)
	if lat := h.LoadLatency(addr); lat != h.DRAMLatency {
		t.Fatalf("cold load latency = %d, want DRAM %d", lat, h.DRAMLatency)
	}
	if lat := h.LoadLatency(addr); lat != h.L1D.Latency() {
		t.Fatalf("warm load latency = %d, want L1 %d", lat, h.L1D.Latency())
	}
}

func TestHierarchyInclusiveFillPath(t *testing.T) {
	h := NewHierarchy(SkylakeHierarchy())
	addr := int64(0x40000)
	h.LoadLatency(addr) // fills all levels
	if !h.L1D.Contains(addr) || !h.L2.Contains(addr) || !h.LLC.Contains(addr) {
		t.Fatal("miss did not fill the hierarchy")
	}
}

// TestL1CapacityEviction: streaming a footprint beyond L1 capacity evicts
// early lines from L1 but leaves them in L2.
func TestL1CapacityEviction(t *testing.T) {
	cfg := SkylakeHierarchy()
	h := NewHierarchy(cfg)
	lines := int64(cfg.L1Size/64) * 2
	for i := int64(0); i < lines; i++ {
		h.LoadLatency(i * 64)
	}
	if lat := h.LoadLatency(0); lat != cfg.L2Lat {
		t.Fatalf("latency after L1 overflow = %d, want L2 %d", lat, cfg.L2Lat)
	}
}

func TestStoreCommitFills(t *testing.T) {
	h := NewHierarchy(SkylakeHierarchy())
	addr := int64(0x9000)
	h.StoreCommit(addr)
	if lat := h.LoadLatency(addr); lat != h.L1D.Latency() {
		t.Fatalf("load after store latency = %d, want L1", lat)
	}
}

// TestCacheDeterministic: the same access sequence produces the same
// hit/miss counts (property-based).
func TestCacheDeterministic(t *testing.T) {
	f := func(addrs []int64) bool {
		c1 := NewCache("a", 4<<10, 4, 1)
		c2 := NewCache("b", 4<<10, 4, 1)
		for _, a := range addrs {
			if a < 0 {
				a = -a
			}
			c1.Access(a)
			c2.Access(a)
		}
		return c1.Hits() == c2.Hits() && c1.Misses() == c2.Misses()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTinyCacheClamp(t *testing.T) {
	c := NewCache("sub-line", 32, 1, 1) // smaller than one line per way
	c.Access(0)
	if !c.Contains(0) {
		t.Fatal("single-set fallback broken")
	}
}
