package experiments

import (
	"fmt"
	"strings"
	"testing"

	"acb/internal/workload"
)

// smallOpts keeps experiment smoke tests fast: a representative workload
// subset and a small budget.
func smallOpts(t *testing.T, names ...string) Options {
	t.Helper()
	opts := DefaultOptions()
	opts.Budget = 120_000
	for _, n := range names {
		w, err := workload.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		opts.Workloads = append(opts.Workloads, w)
	}
	return opts
}

func TestTableIReports386Bytes(t *testing.T) {
	tab := TableI()
	last := tab.Rows[len(tab.Rows)-1]
	if last[0] != "Total" || last[1] != "386" {
		t.Fatalf("Table I total = %v, want 386 bytes", last)
	}
}

func TestTableIIIListsFullSuite(t *testing.T) {
	tab := TableIII()
	if len(tab.Rows) != len(workload.All()) {
		t.Fatalf("rows = %d, want %d", len(tab.Rows), len(workload.All()))
	}
}

func TestFigure6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	opts := smallOpts(t, "lammps", "compression", "hmmer")
	tab := Figure6(opts)
	var all []string
	for _, row := range tab.Rows {
		if row[0] == "ALL" {
			all = row
		}
	}
	if all == nil {
		t.Fatal("no ALL row")
	}
	var speedup float64
	if _, err := sscan(all[1], &speedup); err != nil {
		t.Fatal(err)
	}
	if speedup <= 1.0 {
		t.Errorf("overall ACB speedup %.3f, want > 1 on H2P-dominated subset", speedup)
	}
}

func TestFigure9RunsOnOutlierClasses(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	opts := DefaultOptions()
	opts.Budget = 120_000
	tab := Figure9(opts)
	if len(tab.Rows) != len(OutlierD)+len(OutlierE) {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[1] != "D" && row[1] != "E" {
			t.Errorf("row class = %q", row[1])
		}
	}
}

func TestMispredictCensusCoversPCs(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	opts := smallOpts(t, "gobmk")
	tab := MispredictCensus(opts)
	if len(tab.Rows) != 1 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	row := tab.Rows[0]
	var pcs int
	if _, err := sscan(row[1], &pcs); err != nil {
		t.Fatal(err)
	}
	if pcs < 1 || pcs > 64 {
		t.Errorf("pcs for 95%% = %d, want within the 64-entry critical-table reach", pcs)
	}
}

func TestCoreScalingGrowsHeadroom(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	opts := smallOpts(t, "gobmk", "leela")
	tab := Figure1(opts)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	var first, last float64
	if _, err := sscan(tab.Rows[0][1], &first); err != nil {
		t.Fatal(err)
	}
	if _, err := sscan(tab.Rows[2][1], &last); err != nil {
		t.Fatal(err)
	}
	if last <= first {
		t.Errorf("perfect-BP headroom must grow with scaling: 1x=%.3f 3x=%.3f", first, last)
	}
}

// sscan parses one float/int from a table cell.
func sscan(cell string, out interface{}) (int, error) {
	return fmt.Fscan(strings.NewReader(cell), out)
}
