package experiments

import (
	"sort"
	"sync"

	"acb/internal/ooo"
	"acb/internal/stats"
)

// CPITotals is a snapshot of accumulated CPI-stack bucket totals for one
// scheme. Buckets follows ooo.CPIBucketNames order.
type CPITotals struct {
	Cycles  int64   `json:"cycles"`
	Buckets []int64 `json:"buckets"`
}

// CPIAccumulator aggregates CPI stacks across simulations, keyed by
// scheme name. It is safe for concurrent use: the parallel runner's jobs
// add into it as they finish, and the acbd service scrapes it from the
// metrics handler while jobs run.
type CPIAccumulator struct {
	mu      sync.Mutex
	schemes map[string]*CPITotals
}

// NewCPIAccumulator returns an empty accumulator.
func NewCPIAccumulator() *CPIAccumulator {
	return &CPIAccumulator{schemes: make(map[string]*CPITotals)}
}

// Add folds one simulation's CPI stack into the scheme's totals.
func (a *CPIAccumulator) Add(scheme string, s *ooo.CPIStack) {
	a.mu.Lock()
	defer a.mu.Unlock()
	t := a.schemes[scheme]
	if t == nil {
		t = &CPITotals{Buckets: make([]int64, len(ooo.CPIBucketNames))}
		a.schemes[scheme] = t
	}
	t.Cycles += s.Cycles
	for i, v := range s.Buckets() {
		t.Buckets[i] += v
	}
}

// Merge folds another accumulator's totals into this one.
func (a *CPIAccumulator) Merge(other *CPIAccumulator) {
	for scheme, t := range other.Snapshot() {
		a.mu.Lock()
		dst := a.schemes[scheme]
		if dst == nil {
			dst = &CPITotals{Buckets: make([]int64, len(ooo.CPIBucketNames))}
			a.schemes[scheme] = dst
		}
		dst.Cycles += t.Cycles
		for i, v := range t.Buckets {
			dst.Buckets[i] += v
		}
		a.mu.Unlock()
	}
}

// Snapshot returns a deep copy of the per-scheme totals.
func (a *CPIAccumulator) Snapshot() map[string]CPITotals {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]CPITotals, len(a.schemes))
	for scheme, t := range a.schemes {
		cp := CPITotals{Cycles: t.Cycles, Buckets: make([]int64, len(t.Buckets))}
		copy(cp.Buckets, t.Buckets)
		out[scheme] = cp
	}
	return out
}

// Schemes returns the accumulated scheme names in sorted order.
func (a *CPIAccumulator) Schemes() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, 0, len(a.schemes))
	for s := range a.schemes {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// CPIStackExperiment attributes every cycle of a baseline and an ACB run
// to a cause bucket, per workload — the "where do ACB's gains come from"
// story behind the paper's Sec. VI analysis: ACB converts
// bad-speculation-flush cycles into (fewer) body-stall and divergence
// cycles. Bucket columns are exact cycle counts and always sum to the
// cycles column; `acbsweep -experiment cpistack -plot` renders them as
// per-run stacked bars.
func CPIStackExperiment(opts Options) *stats.Table {
	opts.fill()
	opts.CollectCPI = true
	kinds := []SchemeKind{SchemeBaseline, SchemeACB}
	res := sweep(opts, kinds...)

	header := append([]string{"workload", "scheme", "cycles"}, ooo.CPIBucketNames...)
	t := stats.NewTable(header...)
	for _, w := range opts.Workloads {
		for _, k := range kinds {
			r := res[w.Name][k]
			cells := []interface{}{w.Name, string(k), r.Cycles}
			for _, v := range r.CPI.Buckets() {
				cells = append(cells, v)
			}
			t.AddRow(cells...)
		}
	}
	return t
}
