package experiments

import (
	"reflect"
	"sync"
	"testing"

	"acb/internal/workload"
)

// TestParallelSweepMatchesSerial: a parallel sweep (Jobs: 8) must produce
// results — and rendered tables, sorting included — identical to the
// serial run. The schemes include DMP so the single-flight profile cache
// is on the hot path.
func TestParallelSweepMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	opts := smallOpts(t, "lammps", "omnetpp", "soplex")
	opts.Budget = 60_000

	serial := opts
	serial.Jobs = 1
	parallel := opts
	parallel.Jobs = 8

	rs := sweep(serial, SchemeBaseline, SchemeACB, SchemeDMP)
	rp := sweep(parallel, SchemeBaseline, SchemeACB, SchemeDMP)
	if !reflect.DeepEqual(rs, rp) {
		t.Fatalf("parallel sweep diverged from serial:\nserial:   %+v\nparallel: %+v", rs, rp)
	}

	// Byte-identical figure output (Figure7 also exercises SortByColumn).
	ts := Figure7(serial).String()
	tp := Figure7(parallel).String()
	if ts != tp {
		t.Fatalf("Figure7 output differs between -jobs 1 and -jobs 8:\nserial:\n%s\nparallel:\n%s", ts, tp)
	}
}

// TestProfileCacheSingleFlight hammers the cache from many goroutines
// (run under -race in CI): each workload must be profiled exactly once,
// and every caller must observe the same candidate set.
func TestProfileCacheSingleFlight(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling runs")
	}
	names := []string{"omnetpp", "xalancbmk"}
	ws := make([]workload.Workload, len(names))
	for i, n := range names {
		w, err := workload.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		ws[i] = w
	}

	cache := newProfileCache()
	var wg sync.WaitGroup
	got := make([][]int, len(ws)) // candidate counts observed per workload
	var mu sync.Mutex
	for g := 0; g < 8; g++ {
		for i := range ws {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				c := cache.get(&ws[i], nil, nil)
				mu.Lock()
				got[i] = append(got[i], len(c))
				mu.Unlock()
			}(i)
		}
	}
	wg.Wait()

	if runs := cache.runs.Load(); runs != int64(len(ws)) {
		t.Fatalf("dmp.Profile ran %d times for %d workloads, want exactly one per workload", runs, len(ws))
	}
	for i, counts := range got {
		for _, n := range counts {
			if n != counts[0] {
				t.Fatalf("workload %s: callers observed different candidate sets: %v", ws[i].Name, counts)
			}
		}
	}
}
