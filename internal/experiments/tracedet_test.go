package experiments

import (
	"bytes"
	"testing"

	"acb/internal/trace"
	"acb/internal/workload"
)

// TestTraceRecordingDeterministicAcrossJobs records the same workloads
// under different pool widths and demands byte-identical trace files: the
// format carries no timestamps or scheduling artifacts, so a trace
// recorded on a laptop with -jobs 1 equals one recorded on a 64-way
// sweep box, and corpus entries re-recorded anywhere diff clean.
func TestTraceRecordingDeterministicAcrossJobs(t *testing.T) {
	names := []string{"gcc", "mcf", "soplex", "astar"}
	const maxSteps = 50_000

	recordAll := func(jobs int) [][]byte {
		out := make([][]byte, len(names))
		err := Pool(Options{Jobs: jobs}, len(names), func(i int) {
			w, err := workload.Resolve(names[i])
			if err != nil {
				t.Errorf("%s: %v", names[i], err)
				return
			}
			p, m := w.Build()
			var buf bytes.Buffer
			if _, _, err := trace.Record(&buf, p, m, maxSteps,
				trace.Header{Source: w.Name, Kind: "workload"}); err != nil {
				t.Errorf("%s: record: %v", names[i], err)
				return
			}
			out[i] = buf.Bytes()
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	serial := recordAll(1)
	wide := recordAll(4)
	for i, name := range names {
		if serial[i] == nil || wide[i] == nil {
			t.Fatalf("%s: recording failed", name)
		}
		if !bytes.Equal(serial[i], wide[i]) {
			t.Errorf("%s: trace bytes differ between -jobs 1 and -jobs 4", name)
		}
	}
}
