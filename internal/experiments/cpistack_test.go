package experiments

import (
	"strconv"
	"testing"

	"acb/internal/ooo"
	"acb/internal/workload"
)

func cpiOpts(t *testing.T, jobs int) Options {
	t.Helper()
	opts := DefaultOptions()
	opts.Budget = 30_000
	opts.Jobs = jobs
	var err error
	for _, n := range []string{"gcc", "compression"} {
		w, werr := workload.ByName(n)
		if werr != nil {
			err = werr
			break
		}
		opts.Workloads = append(opts.Workloads, w)
	}
	if err != nil {
		t.Fatal(err)
	}
	return opts
}

// TestCPIStackTableSums checks every emitted row upholds the attributor's
// invariant end to end: the bucket columns sum exactly to the cycles
// column, for the baseline and the ACB scheme alike.
func TestCPIStackTableSums(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	tab := CPIStackExperiment(cpiOpts(t, 2))
	if len(tab.Rows) != 4 { // 2 workloads x {baseline, acb}
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
	if want := 3 + len(ooo.CPIBucketNames); len(tab.Header) != want {
		t.Fatalf("header width = %d, want %d", len(tab.Header), want)
	}
	for _, row := range tab.Rows {
		cycles, err := strconv.ParseInt(row[2], 10, 64)
		if err != nil {
			t.Fatalf("row %v: bad cycles cell: %v", row, err)
		}
		var sum int64
		for _, cell := range row[3:] {
			v, err := strconv.ParseInt(cell, 10, 64)
			if err != nil {
				t.Fatalf("row %v: bad bucket cell: %v", row, err)
			}
			if v < 0 {
				t.Fatalf("row %v: negative bucket %d", row, v)
			}
			sum += v
		}
		if sum != cycles {
			t.Fatalf("%s/%s: buckets sum to %d, want %d", row[0], row[1], sum, cycles)
		}
	}
}

// TestCPIStackDeterministicAcrossJobs checks the emitted table is
// byte-identical whatever the worker-pool width, like every other
// experiment (aggregation is by job index, not completion order).
func TestCPIStackDeterministicAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	serial := CPIStackExperiment(cpiOpts(t, 1)).CSV()
	parallel := CPIStackExperiment(cpiOpts(t, 8)).CSV()
	if serial != parallel {
		t.Fatalf("cpistack table differs across job counts:\n-- jobs=1 --\n%s\n-- jobs=8 --\n%s",
			serial, parallel)
	}
}

// TestCPIAccumulator checks Add/Merge/Snapshot bookkeeping.
func TestCPIAccumulator(t *testing.T) {
	a := NewCPIAccumulator()
	a.Add("acb", &ooo.CPIStack{Cycles: 10, Base: 6, BackendStall: 4})
	a.Add("acb", &ooo.CPIStack{Cycles: 5, Base: 5})

	b := NewCPIAccumulator()
	b.Add("baseline", &ooo.CPIStack{Cycles: 3, FrontendStarve: 3})
	b.Merge(a)

	if got := b.Schemes(); len(got) != 2 || got[0] != "acb" || got[1] != "baseline" {
		t.Fatalf("schemes = %v", got)
	}
	snap := b.Snapshot()
	acb := snap["acb"]
	if acb.Cycles != 15 || acb.Buckets[0] != 11 || acb.Buckets[3] != 4 {
		t.Fatalf("acb totals = %+v", acb)
	}
	// Snapshot is a deep copy: mutating it must not leak back.
	acb.Buckets[0] = 999
	if b.Snapshot()["acb"].Buckets[0] != 11 {
		t.Fatal("snapshot aliases accumulator storage")
	}
}
