package experiments

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestRegistryLookup(t *testing.T) {
	for _, name := range []string{"table1", "fig6", "census", "sens-n"} {
		if _, ok := Lookup(name); !ok {
			t.Errorf("Lookup(%q) missed", name)
		}
	}
	if _, ok := Lookup("fig99"); ok {
		t.Error("Lookup accepted an unknown experiment")
	}
	if len(Experiments()) != len(Names()) {
		t.Error("Experiments and Names disagree on registry size")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run("fig99", DefaultOptions()); err == nil {
		t.Fatal("Run accepted an unknown experiment")
	}
}

// TestRunMatchesDirectCall: Run must return exactly the table the
// experiment function produces.
func TestRunMatchesDirectCall(t *testing.T) {
	tab, err := Run("table1", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := tab.String(), TableI().String(); got != want {
		t.Fatalf("Run(table1) diverged from TableI():\n%s\nvs\n%s", got, want)
	}
}

// TestRunCancelledContext: a cancelled context surfaces as an
// errors.Is-able error, never as a panic or a partially-filled table.
func TestRunCancelledContext(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	opts := smallOpts(t, "lammps", "compression")
	opts.Budget = 100_000_000 // would run for minutes uncancelled
	ctx, cancel := context.WithCancel(context.Background())
	opts.Context = ctx
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	tab, err := Run("fig6", opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if tab != nil {
		t.Fatal("cancelled Run returned a table")
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancellation took %s; simulations did not stop mid-run", elapsed)
	}
}
