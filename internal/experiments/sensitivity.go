package experiments

import (
	"acb/internal/bpu"
	"acb/internal/core"
	"acb/internal/ooo"
	"acb/internal/stats"
	"acb/internal/workload"
)

// sensitivityWorkloads is the representative subset the paper-style
// parameter sweeps run on: a dominant winner, a history-pollution
// outlier, a predication-hostile workload, a memory-shadowed workload and
// a broad H2P mix.
var sensitivityWorkloads = []string{"lammps", "omnetpp", "eembc", "soplex", "gobmk", "leela"}

// acbGeomean runs baseline vs the given ACB configuration over the subset
// on the worker pool and returns the geomean speedup. Each job owns one
// workload (its baseline and ACB simulations run back to back), and
// speedups land in per-job slots so the geomean accumulates in a fixed
// order regardless of scheduling.
func acbGeomean(opts *Options, cfg core.Config, names []string) float64 {
	sp := make([]float64, len(names))
	runPool(opts, len(names), func(i int) {
		w, err := workload.ByName(names[i])
		if err != nil {
			panic(err)
		}
		p, m := w.Build()
		base := ooo.NewWithMemory(opts.Config, p, bpu.NewTAGE(bpu.DefaultTAGEConfig()), nil, m.Clone())
		bres, err := base.Run(opts.Budget)
		if err != nil {
			panic(err)
		}
		c := ooo.NewWithMemory(opts.Config, p, bpu.NewTAGE(bpu.DefaultTAGEConfig()), core.New(cfg), m.Clone())
		res, err := c.Run(opts.Budget)
		if err != nil {
			panic(err)
		}
		sp[i] = stats.Ratio(res.IPC, bres.IPC)
	})
	return stats.Geomean(sp)
}

// ACBGeomean is the exported form of the baseline-vs-configuration sweep:
// the bench harness's ablation benchmarks run their variants through it
// so they share the worker pool and its runner stats.
func ACBGeomean(opts Options, cfg core.Config, names []string) float64 {
	opts.fill()
	return acbGeomean(&opts, cfg, names)
}

// SensitivityN reproduces the paper's sweep of the convergence-learning
// window ("we found N = 40 to be optimal", Sec. III-B): too small misses
// large-body convergences, too large admits unprofitable ones.
func SensitivityN(opts Options) *stats.Table {
	opts.fill()
	t := stats.NewTable("N", "acb-geomean-speedup")
	for _, n := range []int{8, 16, 24, 40, 64, 96} {
		cfg := core.DefaultConfig()
		cfg.N = n
		t.AddRow(n, acbGeomean(&opts, cfg, sensitivityWorkloads))
	}
	return t
}

// SensitivityEpoch reproduces the Dynamo epoch-length sweep ("epoch-length
// of 8K to 32K instructions as optimal (16K chosen)", Sec. III-C): short
// epochs are noisy, long ones blur phase changes.
func SensitivityEpoch(opts Options) *stats.Table {
	opts.fill()
	t := stats.NewTable("epoch-instr", "acb-geomean-speedup")
	for _, e := range []int64{2048, 8192, 16384, 32768, 131072} {
		cfg := core.DefaultConfig()
		cfg.Dynamo.EpochLen = e
		t.AddRow(e, acbGeomean(&opts, cfg, sensitivityWorkloads))
	}
	return t
}

// SensitivityACBTable reproduces the ACB Table size sweep ("increasing
// its size from 32 to 256 had negligible effect", Sec. III-B).
func SensitivityACBTable(opts Options) *stats.Table {
	opts.fill()
	t := stats.NewTable("acb-table-entries", "acb-geomean-speedup")
	for _, n := range []int{8, 16, 32, 64, 256} {
		cfg := core.DefaultConfig()
		cfg.ACBEntries = n
		t.AddRow(n, acbGeomean(&opts, cfg, sensitivityWorkloads))
	}
	return t
}

// SensitivityCriticalTable reproduces the Critical Table size sweep ("a
// small 64-entry table provides sufficient coverage", Sec. III-A).
func SensitivityCriticalTable(opts Options) *stats.Table {
	opts.fill()
	t := stats.NewTable("critical-table-entries", "acb-geomean-speedup")
	for _, n := range []int{16, 32, 64, 128} {
		cfg := core.DefaultConfig()
		cfg.CriticalEntries = n
		t.AddRow(n, acbGeomean(&opts, cfg, sensitivityWorkloads))
	}
	return t
}

// SensitivityPredictor compares ACB's gain across baseline predictors:
// the weaker the predictor, the larger ACB's headroom (ACB is "applicable
// on top of any baseline branch predictor", Sec. VI).
func SensitivityPredictor(opts Options) *stats.Table {
	opts.fill()
	t := stats.NewTable("predictor", "baseline-geomean-IPC", "acb-geomean-speedup")
	mk := map[string]func() bpu.Predictor{
		"bimodal":    func() bpu.Predictor { return bpu.NewBimodal(14) },
		"gshare":     func() bpu.Predictor { return bpu.NewGShare(14, 16) },
		"perceptron": func() bpu.Predictor { return bpu.NewPerceptron(10, 32) },
		"tage":       func() bpu.Predictor { return bpu.NewTAGE(bpu.DefaultTAGEConfig()) },
	}
	for _, name := range []string{"bimodal", "gshare", "perceptron", "tage"} {
		newPred := mk[name]
		ipcs := make([]float64, len(sensitivityWorkloads))
		sp := make([]float64, len(sensitivityWorkloads))
		runPool(&opts, len(sensitivityWorkloads), func(i int) {
			w, err := workload.ByName(sensitivityWorkloads[i])
			if err != nil {
				panic(err)
			}
			p, m := w.Build()
			base := ooo.NewWithMemory(opts.Config, p, newPred(), nil, m.Clone())
			bres, err := base.Run(opts.Budget)
			if err != nil {
				panic(err)
			}
			c := ooo.NewWithMemory(opts.Config, p, newPred(), core.New(core.DefaultConfig()), m.Clone())
			res, err := c.Run(opts.Budget)
			if err != nil {
				panic(err)
			}
			ipcs[i] = bres.IPC
			sp[i] = stats.Ratio(res.IPC, bres.IPC)
		})
		t.AddRow(name, stats.Geomean(ipcs), stats.Geomean(sp))
	}
	return t
}
