package experiments

import (
	"acb/internal/bpu"
	"acb/internal/core"
	"acb/internal/ooo"
	"acb/internal/stats"
	"acb/internal/workload"
)

// b1Workload builds the category-B1 kernel: a hard-to-predict IF-ELSE
// hammock whose not-taken path usually re-joins at a near merge but, when
// a secondary condition fires, only re-joins at a farther one — the
// multiple-reconvergence-point pattern that compiler-assisted DMP covers
// and single-point ACB diverges on (Sec. V-C).
func b1Workload() workload.Spec {
	return workload.Spec{
		Name: "b1-dualmerge", Seed: 777, Period: 8192, Iters: 10_000_000, ALU: 2,
		Hammocks: []workload.Hammock{
			{Shape: workload.ShapeIfElse, TLen: 3, NTLen: 3, TakenBias: 0.5, Noise: 0.9, DualRecon: true},
		},
	}
}

// MultiRecon compares baseline, single-reconvergence ACB and the
// multiple-reconvergence extension (core.Config.MultiRecon) on the
// category-B1 kernel. Expected shape: plain ACB suffers divergence
// flushes on far-merging instances; ACB-MR promotes the far merge from
// divergence feedback, removing them and recovering the gain.
func MultiRecon(opts Options) *stats.Table {
	opts.fill()
	spec := b1Workload()
	p, m := spec.Build()

	plain := core.New(core.DefaultConfig())
	mrCfg := core.DefaultConfig()
	mrCfg.MultiRecon = true
	mr := core.New(mrCfg)

	// The three variants are independent simulations over clones of the
	// same image, so they fan out on the pool like any other jobs.
	schemes := []ooo.Scheme{nil, plain, mr}
	results := make([]ooo.Result, len(schemes))
	runPool(&opts, len(schemes), func(i int) {
		c := ooo.NewWithMemory(opts.Config, p, bpu.NewTAGE(bpu.DefaultTAGEConfig()), schemes[i], m.Clone())
		res, err := c.Run(opts.Budget)
		if err != nil {
			panic(err)
		}
		results[i] = res
	})
	base, resPlain, resMR := results[0], results[1], results[2]

	t := stats.NewTable("scheme", "speedup", "div-flushes/k", "predications", "recon-promotions")
	t.AddRow("baseline", 1.0, perKilo(base.DivFlushes, base.Retired), base.Predications, 0)
	t.AddRow("acb", speedup(base, resPlain), perKilo(resPlain.DivFlushes, resPlain.Retired), resPlain.Predications, 0)
	t.AddRow("acb-mr", speedup(base, resMR), perKilo(resMR.DivFlushes, resMR.Retired), resMR.Predications, mr.ReconPromotions)
	return t
}

func perKilo(v, retired int64) float64 {
	return stats.Ratio(float64(v)*1000, float64(retired))
}
