package experiments

import (
	"fmt"
	"sort"

	"acb/internal/config"
	"acb/internal/core"
	"acb/internal/ooo"
	"acb/internal/prog"
	"acb/internal/stats"
	"acb/internal/workload"
)

// OutlierD and OutlierE are the workloads reproducing the paper's
// category-D (DMP history pollution, recovered by perfect branch history)
// and category-E (select-µop allocation stalls, not recovered by PBH)
// behaviour for Figs. 9 and 10.
var (
	OutlierD = []string{"omnetpp", "xalancbmk"}
	OutlierE = []string{"h264ref", "eembc"}
)

func workloadsNamed(names []string) []workload.Workload {
	var out []workload.Workload
	for _, n := range names {
		w, err := workload.ByName(n)
		if err != nil {
			panic(err)
		}
		out = append(out, w)
	}
	return out
}

// Figure1 reproduces the paper's Fig. 1: speedup of a perfect branch
// predictor over the TAGE baseline on a continuum of scaled cores
// (1x/2x/3x width and depth). The paper's shape: the potential grows with
// scaling (≈2x more speculation-bound at 3x).
func Figure1(opts Options) *stats.Table {
	opts.fill()
	t := stats.NewTable("config", "geomean-speedup-perfectBP")
	for _, factor := range []int{1, 2, 3} {
		o := opts
		o.Config = config.Scaled(factor)
		res := sweep(o, SchemeBaseline, SchemePerfectBP)
		t.AddRow(o.Config.Name, geomeanSpeedup(res, SchemeBaseline, SchemePerfectBP))
	}
	return t
}

// TableI reproduces the paper's Table I: ACB's storage budget (386 bytes).
func TableI() *stats.Table {
	a := core.New(core.DefaultConfig())
	t := stats.NewTable("structure", "bytes")
	ct := (a.CriticalTable().StorageBits() + 7) / 8
	t.AddRow("Critical Table (64 x 17b)", ct)
	t.AddRow("Learning Table (1 entry)", 20)
	tb := (a.Table().StorageBits() + 7) / 8
	t.AddRow("ACB Table (32 x 2-way)", tb)
	t.AddRow("Tracking Table (1 entry)", 5)
	t.AddRow("Dynamo + fetch-context counters", 9)
	t.AddRow("Total", a.StorageBytes())
	return t
}

// TableII reports the simulated core parameters (the paper's Table II,
// "similar to Intel Skylake").
func TableII() *stats.Table {
	c := config.Skylake()
	m := c.Mem
	t := stats.NewTable("parameter", "value")
	t.AddRow("fetch width", c.FetchWidth)
	t.AddRow("allocation (OOO) width", c.AllocWidth)
	t.AddRow("issue width", c.IssueWidth)
	t.AddRow("retire width", c.RetireWidth)
	t.AddRow("ROB entries", c.ROBSize)
	t.AddRow("scheduler (IQ) entries", c.IQSize)
	t.AddRow("load queue entries", c.LQSize)
	t.AddRow("store queue entries", c.SQSize)
	t.AddRow("physical registers", c.PRFSize)
	t.AddRow("front-end depth / redirect (cycles)", c.FrontEndLatency)
	t.AddRow("L1D", fmt.Sprintf("%dKB %d-way, %d cycles", m.L1Size>>10, m.L1Ways, m.L1Lat))
	t.AddRow("L2", fmt.Sprintf("%dKB %d-way, %d cycles", m.L2Size>>10, m.L2Ways, m.L2Lat))
	t.AddRow("LLC", fmt.Sprintf("%dMB %d-way, %d cycles", m.LLCSize>>20, m.LLCWays, m.LLCLat))
	t.AddRow("DRAM latency (cycles)", m.DRAMLatency)
	t.AddRow("branch predictor", "TAGE: 8K-entry base + 5 x 512-entry tagged, hist 4..64")
	return t
}

// TableIII lists the workload suite with categories and the paper
// behaviour each mirrors.
func TableIII() *stats.Table {
	t := stats.NewTable("workload", "category", "mirrors")
	for _, w := range workload.All() {
		t.AddRow(w.Name, w.Category, w.Mirrors)
	}
	return t
}

// Figure6 reproduces Fig. 6: ACB's per-category and overall speedup and
// mis-speculation reduction over the baseline. Paper shape: +8% geomean,
// -22% pipeline flushes.
func Figure6(opts Options) *stats.Table {
	opts.fill()
	res := sweep(opts, SchemeBaseline, SchemeACB)
	t := stats.NewTable("group", "geomean-speedup", "flush-reduction-%")

	byCat := map[string][]string{}
	for _, w := range opts.Workloads {
		byCat[w.Category] = append(byCat[w.Category], w.Name)
	}
	var cats []string
	for c := range byCat {
		cats = append(cats, c)
	}
	sort.Strings(cats)

	agg := func(names []string) (float64, float64) {
		var sp []float64
		var fBase, fACB int64
		for _, n := range names {
			r := res[n]
			sp = append(sp, speedup(r[SchemeBaseline], r[SchemeACB]))
			fBase += r[SchemeBaseline].Flushes
			fACB += r[SchemeACB].Flushes
		}
		red := 0.0
		if fBase > 0 {
			red = (1 - float64(fACB)/float64(fBase)) * 100
		}
		return stats.Geomean(sp), red
	}

	var all []string
	for _, c := range cats {
		g, red := agg(byCat[c])
		t.AddRow(c, g, red)
		all = append(all, byCat[c]...)
	}
	g, red := agg(all)
	t.AddRow("ALL", g, red)
	return t
}

// Figure7 reproduces Fig. 7: per-workload mis-speculation ratio and
// performance ratio over baseline, sorted by performance ratio. Paper
// shape: flush reduction correlates with speedup; the largest positive
// outlier exceeds 2x; losses are contained within ~-5% by Dynamo;
// soplex-like workloads cut flushes without gaining.
func Figure7(opts Options) *stats.Table {
	opts.fill()
	res := sweep(opts, SchemeBaseline, SchemeACB)
	t := stats.NewTable("workload", "perf-ratio", "flush-ratio", "mispred-ratio")
	for _, w := range opts.Workloads {
		r := res[w.Name]
		base, acb := r[SchemeBaseline], r[SchemeACB]
		t.AddRow(w.Name,
			speedup(base, acb),
			ratio64(acb.Flushes, base.Flushes),
			ratio64(acb.Mispredicts, base.Mispredicts))
	}
	t.SortByColumn(1)
	return t
}

func ratio64(a, b int64) float64 { return stats.Ratio(float64(a), float64(b)) }

// Figure8 reproduces Fig. 8: ACB vs ACB-without-Dynamo vs DMP, per
// workload plus geomeans. Paper shape: Dynamo lifts ACB from ~6.7% to
// ~8.0% and contains the worst no-Dynamo outliers (≈-20%); DMP wins B1/B2
// classes but inverts on C/D/E.
func Figure8(opts Options) *stats.Table {
	opts.fill()
	res := sweep(opts, SchemeBaseline, SchemeACB, SchemeACBNoDynamo, SchemeDMP)
	t := stats.NewTable("workload", "acb", "acb-nodynamo", "dmp")
	for _, w := range opts.Workloads {
		r := res[w.Name]
		t.AddRow(w.Name,
			speedup(r[SchemeBaseline], r[SchemeACB]),
			speedup(r[SchemeBaseline], r[SchemeACBNoDynamo]),
			speedup(r[SchemeBaseline], r[SchemeDMP]))
	}
	t.AddRow("GEOMEAN",
		geomeanSpeedup(res, SchemeBaseline, SchemeACB),
		geomeanSpeedup(res, SchemeBaseline, SchemeACBNoDynamo),
		geomeanSpeedup(res, SchemeBaseline, SchemeDMP))
	return t
}

// Figure9 reproduces Fig. 9: on the D and E outlier classes, DMP vs the
// DMP-PBH oracle vs ACB — performance and mis-speculation ratio. Paper
// shape: DMP raises mispredictions via unstable branch history; PBH
// recovers category D but not E.
func Figure9(opts Options) *stats.Table {
	opts.fill()
	opts.Workloads = workloadsNamed(append(append([]string{}, OutlierD...), OutlierE...))
	res := sweep(opts, SchemeBaseline, SchemeDMP, SchemeDMPPBH, SchemeACB)
	t := stats.NewTable("workload", "class", "dmp-perf", "dmp-pbh-perf", "acb-perf", "dmp-mispred-ratio", "dmp-pbh-mispred-ratio")
	class := func(n string) string {
		for _, d := range OutlierD {
			if d == n {
				return "D"
			}
		}
		return "E"
	}
	for _, w := range opts.Workloads {
		r := res[w.Name]
		base := r[SchemeBaseline]
		t.AddRow(w.Name, class(w.Name),
			speedup(base, r[SchemeDMP]),
			speedup(base, r[SchemeDMPPBH]),
			speedup(base, r[SchemeACB]),
			ratio64(r[SchemeDMP].Mispredicts, base.Mispredicts),
			ratio64(r[SchemeDMPPBH].Mispredicts, base.Mispredicts))
	}
	return t
}

// Figure10 reproduces Fig. 10: allocation stalls on category-E workloads
// under DMP-PBH vs baseline. Paper shape: even with perfect history, the
// select-µop data dependencies inflate allocation stalls.
func Figure10(opts Options) *stats.Table {
	opts.fill()
	opts.Workloads = workloadsNamed(OutlierE)
	res := sweep(opts, SchemeBaseline, SchemeDMPPBH, SchemeACB)
	t := stats.NewTable("workload", "base-stalls/k", "dmp-pbh-stalls/k", "acb-stalls/k", "dmp-pbh-selects/k")
	for _, w := range opts.Workloads {
		r := res[w.Name]
		perK := func(res ooo.Result, v int64) float64 {
			return stats.Ratio(float64(v)*1000, float64(res.Retired))
		}
		t.AddRow(w.Name,
			perK(r[SchemeBaseline], r[SchemeBaseline].AllocStallSlots),
			perK(r[SchemeDMPPBH], r[SchemeDMPPBH].AllocStallSlots),
			perK(r[SchemeACB], r[SchemeACB].AllocStallSlots),
			perK(r[SchemeDMPPBH], r[SchemeDMPPBH].SelectUops))
	}
	return t
}

// Figure11 reproduces Fig. 11: ACB vs DHP per workload. Paper shape: DHP
// is coverage-limited (simple short hammocks only) and lands near half of
// ACB's gain; many workloads show no DHP sensitivity at all.
func Figure11(opts Options) *stats.Table {
	opts.fill()
	res := sweep(opts, SchemeBaseline, SchemeACB, SchemeDHP)
	t := stats.NewTable("workload", "acb", "dhp")
	for _, w := range opts.Workloads {
		r := res[w.Name]
		t.AddRow(w.Name,
			speedup(r[SchemeBaseline], r[SchemeACB]),
			speedup(r[SchemeBaseline], r[SchemeDHP]))
	}
	t.AddRow("GEOMEAN",
		geomeanSpeedup(res, SchemeBaseline, SchemeACB),
		geomeanSpeedup(res, SchemeBaseline, SchemeDHP))
	return t
}

// CoreScaling reproduces Sec. V-D: ACB's geomean gain on the baseline core
// vs an 8-wide core with doubled resources. Paper shape: the gain grows
// (8.0% -> 8.6%).
func CoreScaling(opts Options) *stats.Table {
	opts.fill()
	t := stats.NewTable("config", "acb-geomean-speedup")
	for _, cfg := range []config.Core{config.Skylake(), config.Future()} {
		o := opts
		o.Config = cfg
		res := sweep(o, SchemeBaseline, SchemeACB)
		t.AddRow(cfg.Name, geomeanSpeedup(res, SchemeBaseline, SchemeACB))
	}
	return t
}

// PowerProxy reproduces Sec. V-E's qualitative power analysis: total OOO
// allocations and pipeline flushes under ACB relative to baseline. Paper
// shape: ~5% fewer total allocations, ~22% fewer flushes.
func PowerProxy(opts Options) *stats.Table {
	opts.fill()
	res := sweep(opts, SchemeBaseline, SchemeACB)
	var aBase, aACB, fBase, fACB int64
	for _, r := range res {
		aBase += r[SchemeBaseline].Allocations
		aACB += r[SchemeACB].Allocations
		fBase += r[SchemeBaseline].Flushes
		fACB += r[SchemeACB].Flushes
	}
	t := stats.NewTable("metric", "reduction-%")
	t.AddRow("total OOO allocations", (1-ratio64(aACB, aBase))*100)
	t.AddRow("pipeline flushes", (1-ratio64(fACB, fBase))*100)
	return t
}

// MispredictCensus reproduces the Sec. II motivation study: how many
// static branch PCs cover 95% of dynamic mispredictions, and the
// convergent / loop / non-convergent split of misprediction sources.
// Paper shape: ~64 PCs cover >95%; ~72% convergent conditionals,
// ~13% loops, ~13% non-convergent.
func MispredictCensus(opts Options) *stats.Table {
	opts.fill()
	t := stats.NewTable("workload", "pcs-for-95%", "convergent-%", "loop-%", "nonconv-%")
	cache := newProfileCache()
	type censusRow struct {
		pcs95               int
		conv, loop, nonconv float64
	}
	rows := make([]censusRow, len(opts.Workloads))
	runPool(&opts, len(opts.Workloads), func(i int) {
		w := &opts.Workloads[i]
		res := runOne(&opts, cache, w, SchemeBaseline)

		type pcMiss struct {
			pc   int
			miss int64
		}
		var list []pcMiss
		var total int64
		for pc, st := range res.PerBranch {
			if st.Mispredict > 0 {
				list = append(list, pcMiss{pc, st.Mispredict})
				total += st.Mispredict
			}
		}
		// Tie-break equal miss counts by PC so the 95%-coverage count does
		// not depend on map iteration order.
		sort.Slice(list, func(i, j int) bool {
			if list[i].miss != list[j].miss {
				return list[i].miss > list[j].miss
			}
			return list[i].pc < list[j].pc
		})
		var cum int64
		pcs95 := 0
		for _, pm := range list {
			cum += pm.miss
			pcs95++
			if float64(cum) >= 0.95*float64(total) {
				break
			}
		}

		// Classify misprediction sources via the static CFG, using the
		// DMP criterion: convergent iff *both* paths re-join within the
		// learning window (N = 40).
		p, _ := w.Build()
		bounded := map[int]bool{}
		for _, hm := range prog.AnalyzeHammocks(p, 40) {
			bounded[hm.BranchPC] = true
		}
		var conv, loop, nonconv int64
		for _, pm := range list {
			in := p[pm.pc]
			switch {
			case in.Target <= pm.pc:
				loop += pm.miss
			case bounded[pm.pc]:
				conv += pm.miss
			default:
				nonconv += pm.miss
			}
		}
		pct := func(x int64) float64 { return stats.Ratio(float64(x)*100, float64(total)) }
		rows[i] = censusRow{pcs95, pct(conv), pct(loop), pct(nonconv)}
	})
	for i := range opts.Workloads {
		r := rows[i]
		t.AddRow(opts.Workloads[i].Name, r.pcs95, r.conv, r.loop, r.nonconv)
	}
	return t
}
