package experiments

import (
	"fmt"

	"acb/internal/sample"
	"acb/internal/stats"
)

// SampledWorstErrorPct and SampledMeanErrorPct are the documented CPI
// error bounds for sampled simulation under PlanForBudget (see
// docs/SAMPLING.md): CI enforces the worst-case bound on every fig6
// workload and the mean bound across the suite. Empirically the suite mean
// sits near 2% with two chase-heavy outliers around 10% (wrong-path memory
// traffic is invisible to functional warming); the bounds leave headroom
// for workload drift without letting a real regression through.
const (
	SampledWorstErrorPct = 12.0
	SampledMeanErrorPct  = 3.0
)

// SampledFig6 is the tracked-metric experiment for sampled simulation: for
// every fig6 workload it runs the baseline core both ways — full detailed
// simulation and SMARTS-style sampled simulation with window-boundary
// verification — and reports the sampled CPI estimate, its confidence
// interval, the signed error against the full run, and the number of
// boundary divergences (always 0 on a healthy tree).
//
// The baseline scheme is used because predication schemes learn over the
// whole run and would start each window cold (docs/SAMPLING.md
// "Limitations"); the forced schemes are covered by the difftest sampled
// matrix instead. The table is deterministic — no wall-clock columns — so
// acbd's content-addressed result cache stays byte-identical across
// workers; speedup is asserted by the CI smoke job via acbsim timing.
func SampledFig6(opts Options) *stats.Table {
	opts.fill()
	plan := sample.PlanForBudget(opts.Budget)

	type row struct {
		fullCPI float64
		est     *sample.Estimate
	}
	rows := make([]row, len(opts.Workloads))
	runPool(&opts, len(opts.Workloads), func(i int) {
		w := opts.Workloads[i]
		p, m := w.Build()

		full := runOne(&opts, nil, &w, SchemeBaseline)
		est, err := sample.Run(p, m, plan, sample.Options{
			Budget:  opts.Budget,
			Config:  opts.Config,
			Verify:  true,
			Context: opts.Context,
		})
		if err != nil {
			panic(fmt.Errorf("experiments: sampled %s: %w", w.Name, err))
		}
		rows[i] = row{fullCPI: float64(full.Cycles) / float64(full.Retired), est: est}
	})

	t := stats.NewTable("workload", "full-cpi", "sampled-cpi", "err-pct", "ci95", "windows", "boundary-diffs")
	for i, w := range opts.Workloads {
		r := rows[i]
		if r.est == nil { // cancelled before this slot ran
			continue
		}
		t.AddRow(w.Name,
			fmt.Sprintf("%.4f", r.fullCPI),
			fmt.Sprintf("%.4f", r.est.CPI),
			fmt.Sprintf("%.2f", r.est.CPIErrorPct(r.fullCPI)),
			fmt.Sprintf("%.4f", r.est.CI95),
			len(r.est.Windows),
			r.est.BoundaryFailures)
	}
	return t
}
