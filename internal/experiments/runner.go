// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. V) on the synthetic workload suite: one exported
// function per experiment, each returning a stats.Table whose rows are the
// data series the corresponding paper figure plots. EXPERIMENTS.md records
// the paper-vs-measured comparison for each.
//
// Every (workload, scheme) simulation is independent and
// seed-deterministic, so the harness fans them out over a bounded worker
// pool (Options.Jobs); results are aggregated by job index, which makes
// the emitted tables byte-identical whatever the job count.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"acb/internal/bpu"
	"acb/internal/config"
	"acb/internal/core"
	"acb/internal/dmp"
	"acb/internal/isa"
	"acb/internal/ooo"
	"acb/internal/stats"
	"acb/internal/workload"
)

// Options controls an experiment run.
type Options struct {
	// Budget is the retired-instruction budget per simulation.
	Budget int64
	// Workloads defaults to the full suite.
	Workloads []workload.Workload
	// Config defaults to the Skylake-like baseline.
	Config config.Core
	// Jobs bounds how many simulations run concurrently. 0 means
	// runtime.GOMAXPROCS(0); 1 reproduces the serial runner exactly.
	Jobs int
	// Verbose emits per-run progress and a per-pool runner summary
	// through Logf.
	Verbose bool
	Logf    func(format string, args ...interface{})
	// Stats, when non-nil, accumulates runner totals across every pool
	// executed with these Options (acbsweep prints it after an -all run).
	Stats *RunnerStats
	// CollectCPI enables per-cycle CPI-stack attribution on every
	// simulation (see ooo.CPIStack); results carry it in ooo.Result.CPI.
	// Off by default: attribution costs a few branches per simulated
	// cycle.
	CollectCPI bool
	// CPIStats, when non-nil, accumulates per-scheme CPI bucket totals
	// across every simulation run with these Options (implies
	// CollectCPI); the acbd service exposes the totals on /v1/metrics.
	CPIStats *CPIAccumulator
	// Context, when non-nil, cancels the run cooperatively: queued
	// simulations are skipped and in-flight ones stop mid-run (see
	// ooo.Core.RunContext). Callers must go through Run to observe the
	// cancellation as an error; direct experiment calls panic instead.
	Context context.Context
}

// DefaultOptions returns the budget and configuration used by the bench
// harness.
func DefaultOptions() Options {
	return Options{
		Budget: 400_000,
		Config: config.Skylake(),
	}
}

func (o *Options) fill() {
	if o.Budget == 0 {
		o.Budget = 400_000
	}
	if len(o.Workloads) == 0 {
		o.Workloads = workload.All()
	}
	if o.Config.Name == "" {
		o.Config = config.Skylake()
	}
	if o.Jobs <= 0 {
		o.Jobs = runtime.GOMAXPROCS(0)
	}
	if o.Logf == nil {
		o.Logf = func(string, ...interface{}) {}
	}
	if o.Context == nil {
		o.Context = context.Background()
	}
	// Serialise the sink: parallel jobs emit whole lines, never
	// interleaved mid-line.
	logf := o.Logf
	var mu sync.Mutex
	o.Logf = func(format string, args ...interface{}) {
		mu.Lock()
		defer mu.Unlock()
		logf(format, args...)
	}
}

// RunnerStats accumulates pool totals: jobs run, wall-clock time, the
// cumulative single-threaded simulation time (whose ratio to wall time is
// the effective parallel speedup), and total simulated cycles — the
// numerator of the harness's own cycles-per-second throughput metric.
type RunnerStats struct {
	mu     sync.Mutex
	jobs   int64
	wall   time.Duration
	sim    time.Duration
	cycles int64
}

func (s *RunnerStats) add(jobs int, wall, sim time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs += int64(jobs)
	s.wall += wall
	s.sim += sim
}

// AddCycles credits simulated cycles to the pool totals (called once per
// completed simulation).
func (s *RunnerStats) AddCycles(n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cycles += n
}

// Cycles returns the total simulated cycles across pools.
func (s *RunnerStats) Cycles() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cycles
}

// Jobs returns the total number of simulations dispatched.
func (s *RunnerStats) Jobs() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs
}

// Wall returns the cumulative wall-clock time across pools.
func (s *RunnerStats) Wall() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wall
}

// Sim returns the cumulative single-threaded simulation time.
func (s *RunnerStats) Sim() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sim
}

// Speedup returns cumulative simulation time / wall time (1.0 for a
// serial run, approaching the worker count under ideal scaling). The
// second return is false when no wall time has accumulated yet — i.e.
// there is no measurement, as opposed to a measured 0x.
func (s *RunnerStats) Speedup() (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wall <= 0 {
		return 0, false
	}
	return float64(s.sim) / float64(s.wall), true
}

func (s *RunnerStats) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	sp := "n/a (no runs)"
	if s.wall > 0 {
		sp = fmt.Sprintf("%.2fx", float64(s.sim)/float64(s.wall))
	}
	return fmt.Sprintf("%d jobs, wall %s, sim %s, effective speedup %s",
		s.jobs, s.wall.Round(time.Millisecond), s.sim.Round(time.Millisecond), sp)
}

// poolError carries the first job failure out of a pool. It wraps the
// underlying error (rather than flattening it to a string) so callers —
// experiments.Run in particular — can errors.Is it against
// context.Canceled / DeadlineExceeded after recovering the re-panic.
type poolError struct {
	job int
	err error
}

func (e *poolError) Error() string { return fmt.Sprintf("experiments: job %d: %v", e.job, e.err) }
func (e *poolError) Unwrap() error { return e.err }

// runPool executes jobs 0..n-1 with at most opts.Jobs running at once.
// Each job writes into its own pre-allocated result slot, so aggregation
// order — and therefore every emitted table — is independent of
// scheduling. A panic in any job is re-raised on the caller's goroutine
// after the pool drains (as a *poolError when the job panicked with an
// error). When opts.Context is cancelled, not-yet-started jobs are
// skipped, leaving their result slots zero — callers must treat a
// cancelled context as poisoning the whole pool's output.
func runPool(opts *Options, n int, run func(i int)) {
	if n == 0 {
		return
	}
	workers := opts.Jobs
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}

	start := time.Now()
	var sim atomic.Int64
	var panicked atomic.Pointer[poolError]
	timed := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				err, ok := r.(error)
				if !ok {
					err = fmt.Errorf("%v", r)
				}
				panicked.CompareAndSwap(nil, &poolError{job: i, err: err})
			}
		}()
		t0 := time.Now()
		run(i)
		sim.Add(int64(time.Since(t0)))
	}

	if workers == 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				break
			}
			timed(i)
		}
	} else {
		var wg sync.WaitGroup
		var next atomic.Int64
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n || ctx.Err() != nil {
						return
					}
					timed(i)
				}
			}()
		}
		wg.Wait()
	}

	wall := time.Since(start)
	simTotal := time.Duration(sim.Load())
	if opts.Stats != nil {
		opts.Stats.add(n, wall, simTotal)
	}
	if opts.Verbose {
		sp := 0.0
		if wall > 0 {
			sp = float64(simTotal) / float64(wall)
		}
		opts.Logf("runner: %d jobs on %d workers: wall %s, sim %s, %.2fx effective speedup",
			n, workers, wall.Round(time.Millisecond), simTotal.Round(time.Millisecond), sp)
	}
	if p := panicked.Load(); p != nil {
		panic(error(p))
	}
}

// Pool executes jobs 0..n-1 on the bounded worker pool described by opts
// (Options.Jobs workers, Options.Context cancellation) and returns the
// first job failure, if any, instead of panicking. It exists for callers
// outside this package — cmd/acbfuzz's differential campaigns in
// particular — that want the same race-safe, deterministic fan-out the
// experiment sweeps use: each job writes only its own state, so results
// are independent of scheduling. A cancelled context is reported as an
// error wrapping ctx.Err() even when no job observed it, since skipped
// jobs leave their outputs unfilled.
func Pool(opts Options, n int, run func(i int)) (err error) {
	opts.fill()
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok {
				err = e
				return
			}
			err = fmt.Errorf("experiments: pool job panicked: %v", r)
		}
	}()
	runPool(&opts, n, run)
	if cerr := opts.Context.Err(); cerr != nil {
		return fmt.Errorf("experiments: pool cancelled: %w", cerr)
	}
	return nil
}

// SchemeKind names the simulation variants.
type SchemeKind string

// Variants.
const (
	SchemeBaseline    SchemeKind = "baseline"
	SchemePerfectBP   SchemeKind = "perfect-bp"
	SchemeACB         SchemeKind = "acb"
	SchemeACBNoDynamo SchemeKind = "acb-nodynamo"
	SchemeACBEager    SchemeKind = "acb-eager"
	SchemeDMP         SchemeKind = "dmp"
	SchemeDMPPBH      SchemeKind = "dmp-pbh"
	SchemeDHP         SchemeKind = "dhp"
)

// profileCache caches DMP profiling results per workload (the compiler
// pass runs once per binary, not once per simulation). It is
// concurrency-safe with per-workload single-flight semantics: when
// several schemes of the same workload are in flight at once, exactly one
// runs dmp.Profile and the rest block on its entry.
type profileCache struct {
	mu   sync.Mutex
	m    map[string]*profileEntry
	runs atomic.Int64 // dmp.Profile executions, observable by tests
}

type profileEntry struct {
	once sync.Once
	c    []dmp.Candidate
}

func newProfileCache() *profileCache { return &profileCache{m: make(map[string]*profileEntry)} }

func (pc *profileCache) get(w *workload.Workload, _ []isa.Instruction, _ *isa.Memory) []dmp.Candidate {
	pc.mu.Lock()
	e, ok := pc.m[w.Name]
	if !ok {
		e = &profileEntry{}
		pc.m[w.Name] = e
	}
	pc.mu.Unlock()
	e.once.Do(func() {
		pc.runs.Add(1)
		// The compiler pass profiles the *training* input (the paper's
		// Sec. II-B/V-C point about input mismatch); the simulation then
		// runs the actual input.
		tp, tm := w.BuildTrain()
		e.c = dmp.Profile(tp, tm, dmp.DefaultProfileConfig())
	})
	return e.c
}

// runOne simulates one workload under one scheme variant.
func runOne(opts *Options, cache *profileCache, w *workload.Workload, kind SchemeKind) ooo.Result {
	p, m := w.Build()

	var predictor bpu.Predictor = bpu.NewTAGE(bpu.DefaultTAGEConfig())
	var scheme ooo.Scheme
	switch kind {
	case SchemeBaseline:
	case SchemePerfectBP:
		predictor = bpu.NewOracle()
	case SchemeACB:
		scheme = core.New(core.DefaultConfig())
	case SchemeACBNoDynamo:
		cfg := core.DefaultConfig()
		cfg.UseDynamo = false
		scheme = core.New(cfg)
	case SchemeACBEager:
		cfg := core.DefaultConfig()
		cfg.Eager = true
		scheme = core.New(cfg)
	case SchemeDMP:
		scheme = dmp.New(dmp.DefaultConfig(dmp.ModeDMP), cache.get(w, p, m))
	case SchemeDMPPBH:
		cfg := dmp.DefaultConfig(dmp.ModeDMP)
		cfg.PerfectBranchHistory = true
		scheme = dmp.New(cfg, cache.get(w, p, m))
	case SchemeDHP:
		scheme = dmp.New(dmp.DefaultConfig(dmp.ModeDHP), cache.get(w, p, m))
	default:
		panic(fmt.Sprintf("experiments: unknown scheme %q", kind))
	}

	c := ooo.NewWithMemory(opts.Config, p, predictor, scheme, m)
	if opts.CollectCPI || opts.CPIStats != nil {
		c.EnableCPIStack()
	}
	res, err := c.RunContext(opts.Context, opts.Budget)
	if err != nil {
		// Panic with the wrapped error (not a flattened string): runPool
		// re-raises it and experiments.Run recovers it, so a context
		// cancellation stays errors.Is-able all the way up.
		panic(fmt.Errorf("experiments: %s/%s: %w", w.Name, kind, err))
	}
	if opts.CPIStats != nil && res.CPI != nil {
		opts.CPIStats.Add(res.Scheme, res.CPI)
	}
	if opts.Stats != nil {
		opts.Stats.AddCycles(res.Cycles)
	}
	opts.Logf("%-12s %-12s IPC=%.3f flushes/k=%.2f", w.Name, kind, res.IPC, res.FlushPerKilo())
	return res
}

// sweep runs every workload under each scheme variant on the worker pool
// and returns per-workload results keyed by scheme.
func sweep(opts Options, kinds ...SchemeKind) map[string]map[SchemeKind]ooo.Result {
	opts.fill()
	cache := newProfileCache()
	nk := len(kinds)
	results := make([]ooo.Result, len(opts.Workloads)*nk)
	runPool(&opts, len(results), func(i int) {
		results[i] = runOne(&opts, cache, &opts.Workloads[i/nk], kinds[i%nk])
	})
	out := make(map[string]map[SchemeKind]ooo.Result, len(opts.Workloads))
	for wi := range opts.Workloads {
		res := make(map[SchemeKind]ooo.Result, nk)
		for ki, k := range kinds {
			res[k] = results[wi*nk+ki]
		}
		out[opts.Workloads[wi].Name] = res
	}
	return out
}

// speedup returns b.IPC / a.IPC.
func speedup(a, b ooo.Result) float64 { return stats.Ratio(b.IPC, a.IPC) }

// geomeanSpeedup aggregates over workloads. It iterates in sorted name
// order so the floating-point accumulation — and with it the printed
// geomean — is deterministic across runs and job counts.
func geomeanSpeedup(results map[string]map[SchemeKind]ooo.Result, base, other SchemeKind) float64 {
	names := make([]string, 0, len(results))
	for n := range results {
		names = append(names, n)
	}
	sort.Strings(names)
	xs := make([]float64, 0, len(names))
	for _, n := range names {
		r := results[n]
		xs = append(xs, speedup(r[base], r[other]))
	}
	return stats.Geomean(xs)
}
