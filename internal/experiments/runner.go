// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. V) on the synthetic workload suite: one exported
// function per experiment, each returning a stats.Table whose rows are the
// data series the corresponding paper figure plots. EXPERIMENTS.md records
// the paper-vs-measured comparison for each.
package experiments

import (
	"fmt"

	"acb/internal/bpu"
	"acb/internal/config"
	"acb/internal/core"
	"acb/internal/dmp"
	"acb/internal/isa"
	"acb/internal/ooo"
	"acb/internal/stats"
	"acb/internal/workload"
)

// Options controls an experiment run.
type Options struct {
	// Budget is the retired-instruction budget per simulation.
	Budget int64
	// Workloads defaults to the full suite.
	Workloads []workload.Workload
	// Config defaults to the Skylake-like baseline.
	Config config.Core
	// Verbose emits per-run progress through Logf.
	Verbose bool
	Logf    func(format string, args ...interface{})
}

// DefaultOptions returns the budget and configuration used by the bench
// harness.
func DefaultOptions() Options {
	return Options{
		Budget: 400_000,
		Config: config.Skylake(),
	}
}

func (o *Options) fill() {
	if o.Budget == 0 {
		o.Budget = 400_000
	}
	if len(o.Workloads) == 0 {
		o.Workloads = workload.All()
	}
	if o.Config.Name == "" {
		o.Config = config.Skylake()
	}
	if o.Logf == nil {
		o.Logf = func(string, ...interface{}) {}
	}
}

// SchemeKind names the simulation variants.
type SchemeKind string

// Variants.
const (
	SchemeBaseline    SchemeKind = "baseline"
	SchemePerfectBP   SchemeKind = "perfect-bp"
	SchemeACB         SchemeKind = "acb"
	SchemeACBNoDynamo SchemeKind = "acb-nodynamo"
	SchemeACBEager    SchemeKind = "acb-eager"
	SchemeDMP         SchemeKind = "dmp"
	SchemeDMPPBH      SchemeKind = "dmp-pbh"
	SchemeDHP         SchemeKind = "dhp"
)

// profiles caches DMP profiling results per workload (the compiler pass
// runs once per binary, not once per simulation).
type profileCache struct {
	m map[string][]dmp.Candidate
}

func newProfileCache() *profileCache { return &profileCache{m: make(map[string][]dmp.Candidate)} }

func (pc *profileCache) get(w *workload.Workload, _ []isa.Instruction, _ *isa.Memory) []dmp.Candidate {
	if c, ok := pc.m[w.Name]; ok {
		return c
	}
	// The compiler pass profiles the *training* input (the paper's
	// Sec. II-B/V-C point about input mismatch); the simulation then runs
	// the actual input.
	tp, tm := w.BuildTrain()
	c := dmp.Profile(tp, tm, dmp.DefaultProfileConfig())
	pc.m[w.Name] = c
	return c
}

// runOne simulates one workload under one scheme variant.
func runOne(opts *Options, cache *profileCache, w *workload.Workload, kind SchemeKind) ooo.Result {
	p, m := w.Build()

	var predictor bpu.Predictor = bpu.NewTAGE(bpu.DefaultTAGEConfig())
	var scheme ooo.Scheme
	switch kind {
	case SchemeBaseline:
	case SchemePerfectBP:
		predictor = bpu.NewOracle()
	case SchemeACB:
		scheme = core.New(core.DefaultConfig())
	case SchemeACBNoDynamo:
		cfg := core.DefaultConfig()
		cfg.UseDynamo = false
		scheme = core.New(cfg)
	case SchemeACBEager:
		cfg := core.DefaultConfig()
		cfg.Eager = true
		scheme = core.New(cfg)
	case SchemeDMP:
		scheme = dmp.New(dmp.DefaultConfig(dmp.ModeDMP), cache.get(w, p, m))
	case SchemeDMPPBH:
		cfg := dmp.DefaultConfig(dmp.ModeDMP)
		cfg.PerfectBranchHistory = true
		scheme = dmp.New(cfg, cache.get(w, p, m))
	case SchemeDHP:
		scheme = dmp.New(dmp.DefaultConfig(dmp.ModeDHP), cache.get(w, p, m))
	default:
		panic(fmt.Sprintf("experiments: unknown scheme %q", kind))
	}

	c := ooo.NewWithMemory(opts.Config, p, predictor, scheme, m)
	res, err := c.Run(opts.Budget)
	if err != nil {
		panic(fmt.Sprintf("experiments: %s/%s: %v", w.Name, kind, err))
	}
	opts.Logf("%-12s %-12s IPC=%.3f flushes/k=%.2f", w.Name, kind, res.IPC, res.FlushPerKilo())
	return res
}

// sweep runs every workload under each scheme variant and returns
// per-workload results keyed by scheme.
func sweep(opts Options, kinds ...SchemeKind) map[string]map[SchemeKind]ooo.Result {
	opts.fill()
	cache := newProfileCache()
	out := make(map[string]map[SchemeKind]ooo.Result, len(opts.Workloads))
	for i := range opts.Workloads {
		w := &opts.Workloads[i]
		res := make(map[SchemeKind]ooo.Result, len(kinds))
		for _, k := range kinds {
			res[k] = runOne(&opts, cache, w, k)
		}
		out[w.Name] = res
	}
	return out
}

// speedup returns b.IPC / a.IPC.
func speedup(a, b ooo.Result) float64 { return stats.Ratio(b.IPC, a.IPC) }

// geomeanSpeedup aggregates over workloads.
func geomeanSpeedup(results map[string]map[SchemeKind]ooo.Result, base, other SchemeKind) float64 {
	var xs []float64
	for _, r := range results {
		xs = append(xs, speedup(r[base], r[other]))
	}
	return stats.Geomean(xs)
}
