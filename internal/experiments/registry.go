package experiments

import (
	"fmt"
	"sort"

	"acb/internal/stats"
)

// Experiment is one named entry of the registry: a paper table/figure (or
// sensitivity study) reproducible via Run. The registry is the single
// name→experiment mapping shared by acbsweep, the acbd service and tests.
type Experiment struct {
	Name string
	// Extra marks sensitivity studies and other experiments excluded from
	// an "all" run.
	Extra bool
	Func  func(Options) *stats.Table
}

// registry lists the experiments in presentation order (tables first,
// then figures, then the extras).
var registry = []Experiment{
	{"table1", false, func(Options) *stats.Table { return TableI() }},
	{"table2", false, func(Options) *stats.Table { return TableII() }},
	{"table3", false, func(Options) *stats.Table { return TableIII() }},
	{"fig1", false, Figure1},
	{"fig6", false, Figure6},
	{"fig7", false, Figure7},
	{"fig8", false, Figure8},
	{"fig9", false, Figure9},
	{"fig10", false, Figure10},
	{"fig11", false, Figure11},
	{"scaling", false, CoreScaling},
	{"power", false, PowerProxy},
	{"census", false, MispredictCensus},
	{"cpistack", false, CPIStackExperiment},
	{"sampled-fig6", true, SampledFig6},
	{"sens-n", true, SensitivityN},
	{"sens-epoch", true, SensitivityEpoch},
	{"sens-acbtable", true, SensitivityACBTable},
	{"sens-critical", true, SensitivityCriticalTable},
	{"sens-predictor", true, SensitivityPredictor},
	{"multirecon", true, MultiRecon},
}

// Experiments returns the registry in presentation order.
func Experiments() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// Lookup returns the named experiment.
func Lookup(name string) (Experiment, bool) {
	for _, e := range registry {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// Names returns the experiment names in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for _, e := range registry {
		out = append(out, e.Name)
	}
	sort.Strings(out)
	return out
}

// Run executes the named experiment and returns its table. Unlike calling
// the experiment function directly — which panics on a simulation failure,
// matching the CLI's crash-on-bug posture — Run converts harness panics
// into errors and reports a cancelled opts.Context as its ctx.Err(), so
// long-lived callers (the acbd service) survive a failed or cancelled job.
func Run(name string, opts Options) (tab *stats.Table, err error) {
	e, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q", name)
	}
	defer func() {
		if r := recover(); r != nil {
			if re, isErr := r.(error); isErr {
				err = re
			} else {
				err = fmt.Errorf("experiments: %s: %v", name, r)
			}
			tab = nil
		}
	}()
	tab = e.Func(opts)
	// A context cancelled between simulations leaves skipped jobs'
	// result slots zeroed without any job erroring; never return such a
	// partially-populated table as success.
	if opts.Context != nil {
		if cerr := opts.Context.Err(); cerr != nil {
			return nil, cerr
		}
	}
	return tab, nil
}
