package stats

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestCounters(t *testing.T) {
	c := NewCounters()
	c.Add("a", 1)
	c.Add("b", 2)
	c.Add("a", 3)
	if c.Get("a") != 4 || c.Get("b") != 2 || c.Get("zzz") != 0 {
		t.Fatalf("unexpected values: a=%d b=%d", c.Get("a"), c.Get("b"))
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
	s := c.String()
	if !strings.Contains(s, "a") || !strings.Contains(s, "4") {
		t.Fatalf("string output: %q", s)
	}
}

// TestCountersConcurrent hammers one bag from many goroutines (run under
// -race in CI): every mutator and reader must be safe to interleave, and
// the totals must come out exact.
func TestCountersConcurrent(t *testing.T) {
	c := NewCounters()
	const goroutines, perG = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Add("shared", 1)
				c.Add(fmt.Sprintf("g%d", g), 2)
				_ = c.Get("shared")
				_ = c.Names()
				_ = c.String()
			}
		}(g)
	}
	wg.Wait()
	if got := c.Get("shared"); got != goroutines*perG {
		t.Fatalf("shared = %d, want %d", got, goroutines*perG)
	}
	for g := 0; g < goroutines; g++ {
		if got := c.Get(fmt.Sprintf("g%d", g)); got != 2*perG {
			t.Fatalf("g%d = %d, want %d", g, got, 2*perG)
		}
	}
	if len(c.Names()) != goroutines+1 {
		t.Fatalf("names = %v", c.Names())
	}
}

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Errorf("geomean(2,8) = %f", g)
	}
	if g := Geomean(nil); g != 1 {
		t.Errorf("geomean(nil) = %f, want 1", g)
	}
	// Non-positive entries ignored.
	if g := Geomean([]float64{4, 0, -1}); math.Abs(g-4) > 1e-9 {
		t.Errorf("geomean with junk = %f", g)
	}
}

// TestGeomeanBounds: the geometric mean lies between min and max
// (property-based).
func TestGeomeanBounds(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, x := range raw {
			x = math.Abs(x)
			if x == 0 || math.IsInf(x, 0) || math.IsNaN(x) {
				continue
			}
			// Keep the product comfortably inside the float range; the
			// log-domain implementation is exact enough there.
			x = math.Mod(x, 1e6) + 0.5
			xs = append(xs, x)
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		if len(xs) == 0 {
			return Geomean(xs) == 1
		}
		g := Geomean(xs)
		return g >= lo*(1-1e-9) && g <= hi*(1+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRatioAndDelta(t *testing.T) {
	if Ratio(6, 3) != 2 {
		t.Error("ratio")
	}
	if Ratio(6, 0) != 0 {
		t.Error("ratio by zero")
	}
	if d := PercentDelta(110, 100); math.Abs(d-10) > 1e-9 {
		t.Errorf("delta = %f", d)
	}
	if PercentDelta(1, 0) != 0 {
		t.Error("delta by zero")
	}
}

func TestTableFormatting(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("x", 1.5)
	tb.AddRow("longer-name", 42)
	s := tb.String()
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 { // header, separator, two rows
		t.Fatalf("lines = %d: %q", len(lines), s)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Errorf("header: %q", lines[0])
	}
	if !strings.Contains(s, "1.500") {
		t.Error("float not formatted with 3 decimals")
	}
}

// TestTableRaggedRows: rows with more cells than the header used to
// panic String() with an index-out-of-range (widths was sized to the
// header).
func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow("x", "y", "extra-cell")
	tb.AddRow("longer-than-header", "v")
	s := tb.String()
	if !strings.Contains(s, "extra-cell") {
		t.Fatalf("extra cell dropped: %q", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d: %q", len(lines), s)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow(1, 2)
	want := "a,b\n1,2\n"
	if got := tb.CSV(); got != want {
		t.Fatalf("csv = %q, want %q", got, want)
	}
}

// TestTableCSVQuoting: cells containing commas, quotes or line breaks
// must be RFC-4180 quoted (workload "Mirrors" strings contain commas).
func TestTableCSVQuoting(t *testing.T) {
	tb := NewTable("workload", "mirrors")
	tb.AddRow("omnetpp", "history pollution, recovered by PBH")
	tb.AddRow("quoted", `says "hi"`)
	tb.AddRow("multiline", "a\nb")
	want := "workload,mirrors\n" +
		"omnetpp,\"history pollution, recovered by PBH\"\n" +
		"quoted,\"says \"\"hi\"\"\"\n" +
		"multiline,\"a\nb\"\n"
	if got := tb.CSV(); got != want {
		t.Fatalf("csv = %q, want %q", got, want)
	}
}

// TestTableJSONRoundTrip: marshalling preserves header and row order
// exactly, and unmarshal(marshal(t)) reproduces the table — including its
// String/CSV renderings — byte for byte.
func TestTableJSONRoundTrip(t *testing.T) {
	tb := NewTable("workload", "speedup", "note")
	tb.AddRow("zeta", 1.25, "last name first")
	tb.AddRow("alpha", 0.975, `commas, "quotes", and
newlines`)
	tb.AddRow("mid", 42)

	b, err := json.Marshal(tb)
	if err != nil {
		t.Fatal(err)
	}
	var got Table
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Header, tb.Header) || !reflect.DeepEqual(got.Rows, tb.Rows) {
		t.Fatalf("round trip changed the table:\n got %+v\nwant %+v", got, *tb)
	}
	if got.String() != tb.String() || got.CSV() != tb.CSV() {
		t.Fatal("round trip changed the rendered output")
	}
	b2, err := json.Marshal(&got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Fatalf("re-marshal not byte-identical:\n%s\n%s", b, b2)
	}
}

// TestTableJSONEmpty: empty tables encode with empty arrays, not null,
// and survive the round trip.
func TestTableJSONEmpty(t *testing.T) {
	b, err := json.Marshal(&Table{})
	if err != nil {
		t.Fatal(err)
	}
	if want := `{"header":[],"rows":[]}`; string(b) != want {
		t.Fatalf("empty table = %s, want %s", b, want)
	}
	var got Table
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Header) != 0 || len(got.Rows) != 0 {
		t.Fatalf("round trip of empty table: %+v", got)
	}
}

func TestTableSortByColumn(t *testing.T) {
	tb := NewTable("k", "v")
	tb.AddRow("b", 3.0)
	tb.AddRow("a", 1.0)
	tb.AddRow("c", 2.0)
	tb.SortByColumn(1)
	if tb.Rows[0][0] != "a" || tb.Rows[1][0] != "c" || tb.Rows[2][0] != "b" {
		t.Fatalf("sorted rows: %v", tb.Rows)
	}
}

// TestTableSortByColumnGarbage: garbage-suffixed cells like "1.2x" are
// not numbers (Sscanf "%g" used to read them as 1.2); they sort after the
// numeric rows, in string order.
func TestTableSortByColumnGarbage(t *testing.T) {
	tb := NewTable("k", "v")
	tb.AddRow("garbage-hi", "9.9x")
	tb.AddRow("big", "10.0")
	tb.AddRow("garbage-lo", "0.1x")
	tb.AddRow("small", "2.0")
	tb.SortByColumn(1)
	got := []string{tb.Rows[0][0], tb.Rows[1][0], tb.Rows[2][0], tb.Rows[3][0]}
	want := []string{"small", "big", "garbage-lo", "garbage-hi"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sorted rows: %v, want %v", got, want)
		}
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0.1, 1, 10)
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	bounds, cumulative, sum, count := h.Snapshot()
	if len(bounds) != 3 || bounds[0] != 0.1 || bounds[2] != 10 {
		t.Fatalf("bounds = %v", bounds)
	}
	// Prometheus le semantics: a sample equal to a bound lands in it.
	want := []int64{2, 3, 4}
	for i := range cumulative {
		if cumulative[i] != want[i] {
			t.Fatalf("cumulative = %v, want %v", cumulative, want)
		}
	}
	if count != 5 {
		t.Fatalf("count = %d", count)
	}
	if sum != 102.65 {
		t.Fatalf("sum = %v", sum)
	}
}

func TestHistogramRejectsUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted bounds did not panic")
		}
	}()
	NewHistogram(1, 1)
}
