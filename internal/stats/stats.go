// Package stats provides the counters and report formatting shared by the
// simulator, the experiment harness and the benchmarks.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Counters is a named-counter bag with stable ordering for reports. It is
// safe for concurrent use: results flow through the concurrent service
// and the parallel experiment runner.
type Counters struct {
	mu     sync.Mutex
	names  []string
	values map[string]int64
}

// NewCounters returns an empty counter bag.
func NewCounters() *Counters {
	return &Counters{values: make(map[string]int64)}
}

// Add increments the named counter by delta, creating it at zero first.
func (c *Counters) Add(name string, delta int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.values[name]; !ok {
		c.names = append(c.names, name)
	}
	c.values[name] += delta
}

// Get returns the value of the named counter (zero if absent).
func (c *Counters) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.values[name]
}

// Names returns the counter names in insertion order.
func (c *Counters) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.names))
	copy(out, c.names)
	return out
}

// String formats all counters, one per line.
func (c *Counters) String() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var b strings.Builder
	for _, n := range c.names {
		fmt.Fprintf(&b, "%-32s %12d\n", n, c.values[n])
	}
	return b.String()
}

// Geomean returns the geometric mean of xs. It returns 1 for an empty
// slice and ignores non-positive entries (which would otherwise poison the
// log domain).
func Geomean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x <= 0 {
			continue
		}
		sum += math.Log(x)
		n++
	}
	if n == 0 {
		return 1
	}
	return math.Exp(sum / float64(n))
}

// Ratio returns a/b, or 0 when b is zero.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// PercentDelta returns (after/before - 1) * 100, or 0 when before is zero.
func PercentDelta(after, before float64) float64 {
	if before == 0 {
		return 0
	}
	return (after/before - 1) * 100
}

// Table accumulates rows and renders them with aligned columns; the
// experiment harness uses it to print figure/table data series.
type Table struct {
	Header []string
	Rows   [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{Header: header} }

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// cellFloat parses a cell as a float. Unlike Sscanf("%g") it rejects
// garbage-suffixed cells like "1.2x" instead of silently reading 1.2.
func cellFloat(cell string) (float64, bool) {
	v, err := strconv.ParseFloat(strings.TrimSpace(cell), 64)
	return v, err == nil
}

// SortByColumn sorts rows by the numeric value of the given column;
// numeric rows come first in ascending order, non-numeric rows (and rows
// too short to have the column) follow in string order.
func (t *Table) SortByColumn(col int) {
	cell := func(row []string) string {
		if col < 0 || col >= len(row) {
			return ""
		}
		return row[col]
	}
	sort.SliceStable(t.Rows, func(i, j int) bool {
		ci, cj := cell(t.Rows[i]), cell(t.Rows[j])
		a, okA := cellFloat(ci)
		b, okB := cellFloat(cj)
		switch {
		case okA && okB:
			return a < b
		case okA != okB:
			return okA
		default:
			return ci < cj
		}
	})
}

// String renders the table with aligned columns. Rows may have more cells
// than the header; extra columns get their own widths.
func (t *Table) String() string {
	ncols := len(t.Header)
	for _, row := range t.Rows {
		if len(row) > ncols {
			ncols = len(row)
		}
	}
	widths := make([]int, ncols)
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// tableJSON is the wire form of a Table. Header and rows are JSON arrays,
// so marshalling preserves column and row order exactly — the acbd
// service's content-addressed store round-trips tables through this and
// must reproduce them byte-identically.
type tableJSON struct {
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

// MarshalJSON encodes the table as {"header":[...],"rows":[[...]]} with
// order preserved; nil slices encode as empty arrays, never null, so the
// encoding of a table is canonical.
func (t *Table) MarshalJSON() ([]byte, error) {
	w := tableJSON{Header: t.Header, Rows: t.Rows}
	if w.Header == nil {
		w.Header = []string{}
	}
	if w.Rows == nil {
		w.Rows = [][]string{}
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes a table marshalled by MarshalJSON, preserving
// header and row order.
func (t *Table) UnmarshalJSON(b []byte) error {
	var w tableJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	t.Header = w.Header
	t.Rows = w.Rows
	return nil
}

// CSV renders the table as RFC 4180 comma-separated values: cells
// containing a comma, quote or line break are quoted, with embedded
// quotes doubled.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRec := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(csvCell(c))
		}
		b.WriteByte('\n')
	}
	writeRec(t.Header)
	for _, row := range t.Rows {
		writeRec(row)
	}
	return b.String()
}

func csvCell(c string) string {
	if !strings.ContainsAny(c, ",\"\n\r") {
		return c
	}
	return `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
}

// Histogram is a fixed-bound latency histogram with Prometheus
// exposition semantics: Observe assigns each sample to the first bucket
// whose upper bound is >= the value, and Snapshot returns *cumulative*
// counts per bound plus the implicit +Inf bucket. Safe for concurrent
// use (jobs observe while the metrics handler scrapes).
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64 // per-bucket (not cumulative); len(bounds)+1, last = +Inf
	sum    float64
	count  int64
}

// NewHistogram returns a histogram over the given ascending upper bounds.
// It panics on unsorted bounds — a malformed exposition would silently
// corrupt every scrape.
func NewHistogram(bounds ...float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("stats: histogram bounds not ascending at %d: %v", i, bounds))
		}
	}
	return &Histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.count++
}

// Snapshot returns the bucket upper bounds, the cumulative count at each
// bound (excluding +Inf — the total is Count), the sum of samples and the
// sample count.
func (h *Histogram) Snapshot() (bounds []float64, cumulative []int64, sum float64, count int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	bounds = make([]float64, len(h.bounds))
	copy(bounds, h.bounds)
	cumulative = make([]int64, len(h.bounds))
	var c int64
	for i := range h.bounds {
		c += h.counts[i]
		cumulative[i] = c
	}
	return bounds, cumulative, h.sum, h.count
}
