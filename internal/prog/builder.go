// Package prog provides a label-based assembler for building programs in
// the simulated ISA, along with static control-flow analyses (used by the
// DMP baseline, whose compiler pass the paper relies on, and by tests).
package prog

import (
	"fmt"

	"acb/internal/isa"
)

// Builder assembles a program from instructions and symbolic labels.
// Branch and jump targets may reference labels that are defined later;
// they are resolved by Build.
type Builder struct {
	insts  []isa.Instruction
	labels map[string]int
	fixups []fixup
	err    error
}

type fixup struct {
	pc    int
	label string
}

// NewBuilder returns an empty program builder.
func NewBuilder() *Builder {
	return &Builder{labels: make(map[string]int)}
}

// PC returns the index the next emitted instruction will occupy.
func (b *Builder) PC() int { return len(b.insts) }

// Label defines a label at the current PC. Defining the same label twice
// records an error reported by Build.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.fail(fmt.Errorf("prog: duplicate label %q", name))
		return
	}
	b.labels[name] = len(b.insts)
}

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

func (b *Builder) emit(in isa.Instruction) {
	b.insts = append(b.insts, in)
}

// Nop emits a no-op.
func (b *Builder) Nop() { b.emit(isa.Instruction{Op: isa.Nop}) }

// Halt emits a halt.
func (b *Builder) Halt() { b.emit(isa.Instruction{Op: isa.Halt}) }

// Op3 emits a three-register ALU operation rd = rs1 <op> rs2.
func (b *Builder) Op3(op isa.Op, rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Instruction{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// OpI emits a register-immediate ALU operation rd = rs1 <op> imm.
func (b *Builder) OpI(op isa.Op, rd, rs1 isa.Reg, imm int64) {
	b.emit(isa.Instruction{Op: op, Rd: rd, Rs1: rs1, Imm: imm})
}

// Add emits rd = rs1 + rs2.
func (b *Builder) Add(rd, rs1, rs2 isa.Reg) { b.Op3(isa.Add, rd, rs1, rs2) }

// Sub emits rd = rs1 - rs2.
func (b *Builder) Sub(rd, rs1, rs2 isa.Reg) { b.Op3(isa.Sub, rd, rs1, rs2) }

// And emits rd = rs1 & rs2.
func (b *Builder) And(rd, rs1, rs2 isa.Reg) { b.Op3(isa.And, rd, rs1, rs2) }

// Or emits rd = rs1 | rs2.
func (b *Builder) Or(rd, rs1, rs2 isa.Reg) { b.Op3(isa.Or, rd, rs1, rs2) }

// Xor emits rd = rs1 ^ rs2.
func (b *Builder) Xor(rd, rs1, rs2 isa.Reg) { b.Op3(isa.Xor, rd, rs1, rs2) }

// Mul emits rd = rs1 * rs2.
func (b *Builder) Mul(rd, rs1, rs2 isa.Reg) { b.Op3(isa.Mul, rd, rs1, rs2) }

// Div emits rd = rs1 / rs2 (0 when rs2 == 0).
func (b *Builder) Div(rd, rs1, rs2 isa.Reg) { b.Op3(isa.Div, rd, rs1, rs2) }

// AddI emits rd = rs1 + imm.
func (b *Builder) AddI(rd, rs1 isa.Reg, imm int64) { b.OpI(isa.AddI, rd, rs1, imm) }

// AndI emits rd = rs1 & imm.
func (b *Builder) AndI(rd, rs1 isa.Reg, imm int64) { b.OpI(isa.AndI, rd, rs1, imm) }

// XorI emits rd = rs1 ^ imm.
func (b *Builder) XorI(rd, rs1 isa.Reg, imm int64) { b.OpI(isa.XorI, rd, rs1, imm) }

// ShrI emits rd = rs1 >> imm (logical).
func (b *Builder) ShrI(rd, rs1 isa.Reg, imm int64) { b.OpI(isa.ShrI, rd, rs1, imm) }

// MulI emits rd = rs1 * imm.
func (b *Builder) MulI(rd, rs1 isa.Reg, imm int64) { b.OpI(isa.MulI, rd, rs1, imm) }

// Mov emits rd = rs1.
func (b *Builder) Mov(rd, rs1 isa.Reg) {
	b.emit(isa.Instruction{Op: isa.Mov, Rd: rd, Rs1: rs1})
}

// MovI emits rd = imm.
func (b *Builder) MovI(rd isa.Reg, imm int64) {
	b.emit(isa.Instruction{Op: isa.MovI, Rd: rd, Imm: imm})
}

// Load emits rd = mem[rs1+imm].
func (b *Builder) Load(rd, rs1 isa.Reg, imm int64) {
	b.emit(isa.Instruction{Op: isa.Load, Rd: rd, Rs1: rs1, Imm: imm})
}

// Store emits mem[rs1+imm] = rs2.
func (b *Builder) Store(rs1 isa.Reg, imm int64, rs2 isa.Reg) {
	b.emit(isa.Instruction{Op: isa.Store, Rs1: rs1, Rs2: rs2, Imm: imm})
}

// Br emits a conditional branch to the given label.
func (b *Builder) Br(cond isa.Cond, rs1, rs2 isa.Reg, label string) {
	b.fixups = append(b.fixups, fixup{pc: len(b.insts), label: label})
	b.emit(isa.Instruction{Op: isa.Br, Cond: cond, Rs1: rs1, Rs2: rs2})
}

// Brz emits br.eqz rs1, label.
func (b *Builder) Brz(rs1 isa.Reg, label string) { b.Br(isa.EQZ, rs1, 0, label) }

// Brnz emits br.nez rs1, label.
func (b *Builder) Brnz(rs1 isa.Reg, label string) { b.Br(isa.NEZ, rs1, 0, label) }

// Jmp emits an unconditional jump to the given label.
func (b *Builder) Jmp(label string) {
	b.fixups = append(b.fixups, fixup{pc: len(b.insts), label: label})
	b.emit(isa.Instruction{Op: isa.Jmp})
}

// Build resolves all label references and returns the finished program.
func (b *Builder) Build() ([]isa.Instruction, error) {
	if b.err != nil {
		return nil, b.err
	}
	for _, f := range b.fixups {
		target, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("prog: undefined label %q at pc %d", f.label, f.pc)
		}
		b.insts[f.pc].Target = target
	}
	out := make([]isa.Instruction, len(b.insts))
	copy(out, b.insts)
	return out, nil
}

// MustBuild is Build but panics on error; intended for static workload
// definitions where a failure is a programming bug.
func (b *Builder) MustBuild() []isa.Instruction {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// Disassemble renders the program as newline-separated assembly with PC
// prefixes.
func Disassemble(p []isa.Instruction) string {
	var out []byte
	for pc := range p {
		out = append(out, fmt.Sprintf("%4d: %s\n", pc, p[pc].String())...)
	}
	return string(out)
}
