package prog

import (
	"strings"
	"testing"

	"acb/internal/isa"
)

func TestBuilderForwardAndBackwardLabels(t *testing.T) {
	b := NewBuilder()
	b.Label("start")
	b.MovI(isa.R1, 1)
	b.Brz(isa.R1, "end") // forward reference
	b.Jmp("start")       // backward reference
	b.Label("end")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p[1].Target != 3 {
		t.Errorf("forward target = %d, want 3", p[1].Target)
	}
	if p[2].Target != 0 {
		t.Errorf("backward target = %d, want 0", p[2].Target)
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder()
	b.Jmp("nowhere")
	if _, err := b.Build(); err == nil {
		t.Fatal("expected undefined-label error")
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	b := NewBuilder()
	b.Label("x")
	b.Nop()
	b.Label("x")
	if _, err := b.Build(); err == nil {
		t.Fatal("expected duplicate-label error")
	}
}

func TestBuilderErrorPaths(t *testing.T) {
	cases := []struct {
		name    string
		build   func(b *Builder)
		wantErr string
	}{
		{
			name: "undefined label via Jmp",
			build: func(b *Builder) {
				b.Jmp("nowhere")
				b.Halt()
			},
			wantErr: `undefined label "nowhere"`,
		},
		{
			name: "undefined label via conditional branch",
			build: func(b *Builder) {
				b.Brnz(isa.R1, "missing")
				b.Halt()
			},
			wantErr: `undefined label "missing"`,
		},
		{
			name: "duplicate label",
			build: func(b *Builder) {
				b.Label("x")
				b.Nop()
				b.Label("x")
				b.Halt()
			},
			wantErr: `duplicate label "x"`,
		},
		{
			name: "first error wins over later ones",
			build: func(b *Builder) {
				b.Label("a")
				b.Label("a") // first failure: duplicate "a"
				b.Label("b")
				b.Label("b") // second failure, must not mask the first
			},
			wantErr: `duplicate label "a"`,
		},
		{
			name: "emit after fail keeps the error",
			build: func(b *Builder) {
				b.Label("dup")
				b.Label("dup")
				// A long healthy tail must not launder the sticky error.
				b.MovI(isa.R1, 7)
				b.Add(isa.R2, isa.R1, isa.R1)
				b.Store(isa.R2, 0, isa.R1)
				b.Brz(isa.R1, "dup")
				b.Halt()
			},
			wantErr: `duplicate label "dup"`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBuilder()
			tc.build(b)
			p, err := b.Build()
			if err == nil {
				t.Fatalf("Build succeeded (%d insts), want error containing %q", len(p), tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error = %q, want it to contain %q", err, tc.wantErr)
			}
			if p != nil {
				t.Fatalf("failed Build returned a program of %d insts", len(p))
			}
		})
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b := NewBuilder()
	b.Jmp("missing")
	b.MustBuild()
}

func TestBuilderEmitters(t *testing.T) {
	b := NewBuilder()
	b.Add(isa.R1, isa.R2, isa.R3)
	b.Sub(isa.R1, isa.R2, isa.R3)
	b.And(isa.R1, isa.R2, isa.R3)
	b.Or(isa.R1, isa.R2, isa.R3)
	b.Xor(isa.R1, isa.R2, isa.R3)
	b.Mul(isa.R1, isa.R2, isa.R3)
	b.Div(isa.R1, isa.R2, isa.R3)
	b.AddI(isa.R1, isa.R2, 4)
	b.AndI(isa.R1, isa.R2, 4)
	b.XorI(isa.R1, isa.R2, 4)
	b.ShrI(isa.R1, isa.R2, 4)
	b.MulI(isa.R1, isa.R2, 4)
	b.Mov(isa.R1, isa.R2)
	b.MovI(isa.R1, 4)
	b.Load(isa.R1, isa.R2, 8)
	b.Store(isa.R2, 8, isa.R1)
	b.Nop()
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	wantOps := []isa.Op{
		isa.Add, isa.Sub, isa.And, isa.Or, isa.Xor, isa.Mul, isa.Div,
		isa.AddI, isa.AndI, isa.XorI, isa.ShrI, isa.MulI,
		isa.Mov, isa.MovI, isa.Load, isa.Store, isa.Nop, isa.Halt,
	}
	if len(p) != len(wantOps) {
		t.Fatalf("len = %d, want %d", len(p), len(wantOps))
	}
	for i, op := range wantOps {
		if p[i].Op != op {
			t.Errorf("inst %d op = %v, want %v", i, p[i].Op, op)
		}
	}
}

func TestBuilderPC(t *testing.T) {
	b := NewBuilder()
	if b.PC() != 0 {
		t.Fatal("fresh PC != 0")
	}
	b.Nop()
	b.Nop()
	if b.PC() != 2 {
		t.Fatalf("PC = %d, want 2", b.PC())
	}
}

func TestDisassemble(t *testing.T) {
	b := NewBuilder()
	b.MovI(isa.R1, 7)
	b.Halt()
	out := Disassemble(b.MustBuild())
	if !strings.Contains(out, "0: movi r1, 7") || !strings.Contains(out, "1: halt") {
		t.Fatalf("unexpected disassembly:\n%s", out)
	}
}

// TestBuildIsolation: Build returns an independent copy.
func TestBuildIsolation(t *testing.T) {
	b := NewBuilder()
	b.Nop()
	p1 := b.MustBuild()
	b.Halt()
	p2 := b.MustBuild()
	if len(p1) != 1 || len(p2) != 2 {
		t.Fatalf("lens = %d,%d", len(p1), len(p2))
	}
	p1[0].Op = isa.Halt
	if p2[0].Op != isa.Nop {
		t.Fatal("programs share backing storage")
	}
}
