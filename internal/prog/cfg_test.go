package prog

import (
	"testing"

	"acb/internal/isa"
)

// ifOnly builds: br -> [body] -> recon -> halt (Type-1 shape).
func ifOnly(bodyLen int) []isa.Instruction {
	b := NewBuilder()
	b.Brz(isa.R1, "recon")
	for i := 0; i < bodyLen; i++ {
		b.AddI(isa.R2, isa.R2, 1)
	}
	b.Label("recon")
	b.Halt()
	return b.MustBuild()
}

// ifElse builds a classic diamond.
func ifElse(tLen, ntLen int) []isa.Instruction {
	b := NewBuilder()
	b.Brz(isa.R1, "else")
	for i := 0; i < ntLen; i++ {
		b.AddI(isa.R2, isa.R2, 1)
	}
	b.Jmp("end")
	b.Label("else")
	for i := 0; i < tLen; i++ {
		b.AddI(isa.R2, isa.R2, 2)
	}
	b.Label("end")
	b.Halt()
	return b.MustBuild()
}

func TestCFGSuccs(t *testing.T) {
	p := ifElse(2, 3)
	g := NewCFG(p)
	// Branch at 0: successors 1 (fall-through) and else-target.
	s := g.Succs(0)
	if len(s) != 2 || s[0] != 1 || s[1] != p[0].Target {
		t.Fatalf("branch succs = %v", s)
	}
	// Halt: none.
	if len(g.Succs(len(p)-1)) != 0 {
		t.Fatal("halt has successors")
	}
	// Preds of reconvergence: the skip jump and the last else inst.
	recon := len(p) - 1 - 0 // halt is recon here? end label == halt index
	_ = recon
}

func TestReconvergenceIfOnly(t *testing.T) {
	p := ifOnly(3)
	g := NewCFG(p)
	r := g.Reconvergence(0)
	if r != p[0].Target {
		t.Fatalf("recon = %d, want branch target %d", r, p[0].Target)
	}
}

func TestReconvergenceIfElse(t *testing.T) {
	p := ifElse(2, 3)
	g := NewCFG(p)
	r := g.Reconvergence(0)
	// Reconvergence is the "end" label: the instruction after the else
	// block, which is the final Halt.
	want := len(p) - 1
	if r != want {
		t.Fatalf("recon = %d, want %d", r, want)
	}
}

func TestReconvergenceNonBranch(t *testing.T) {
	p := ifOnly(1)
	g := NewCFG(p)
	if g.Reconvergence(1) != -1 {
		t.Fatal("non-branch must have no reconvergence")
	}
}

func TestAllReconvergences(t *testing.T) {
	b := NewBuilder()
	b.Brz(isa.R1, "skip1")
	b.Nop()
	b.Label("skip1")
	b.Brz(isa.R2, "skip2")
	b.Nop()
	b.Nop()
	b.Label("skip2")
	b.Halt()
	p := b.MustBuild()
	rec := NewCFG(p).AllReconvergences()
	if rec[0] != 2 {
		t.Errorf("branch 0 recon = %d, want 2", rec[0])
	}
	if rec[2] != 5 {
		t.Errorf("branch 2 recon = %d, want 5", rec[2])
	}
}

func TestPathLength(t *testing.T) {
	p := ifElse(2, 3)
	g := NewCFG(p)
	recon := g.Reconvergence(0)
	// PathLength reports the shortest static path from the branch: the
	// taken (else) side with 2 body instructions.
	if d := g.PathLength(0, recon, 32); d != 2 {
		t.Errorf("shortest path len = %d, want 2", d)
	}
	// Unreachable within limit.
	if d := g.PathLength(0, recon, 1); d != -1 {
		t.Error("limit not honoured")
	}
}

func TestAnalyzeHammocks(t *testing.T) {
	p := ifElse(2, 3)
	hs := AnalyzeHammocks(p, 32)
	if len(hs) != 1 {
		t.Fatalf("hammocks = %d, want 1", len(hs))
	}
	h := hs[0]
	if h.BranchPC != 0 {
		t.Errorf("branch pc = %d", h.BranchPC)
	}
	if h.TakenLen != 2 {
		t.Errorf("taken len = %d, want 2", h.TakenLen)
	}
	if h.NotTakenLen != 4 { // 3 body + skip jump
		t.Errorf("not-taken len = %d, want 4", h.NotTakenLen)
	}
	if !h.Simple {
		t.Error("diamond should be simple")
	}
}

func TestAnalyzeHammocksType1Empty(t *testing.T) {
	p := ifOnly(2)
	hs := AnalyzeHammocks(p, 32)
	if len(hs) != 1 {
		t.Fatalf("hammocks = %d, want 1", len(hs))
	}
	if hs[0].TakenLen != 0 {
		t.Errorf("taken len = %d, want 0 (empty path)", hs[0].TakenLen)
	}
	if hs[0].NotTakenLen != 2 {
		t.Errorf("not-taken len = %d, want 2", hs[0].NotTakenLen)
	}
}

func TestAnalyzeHammocksRejectsBigBodies(t *testing.T) {
	p := ifOnly(50)
	if hs := AnalyzeHammocks(p, 16); len(hs) != 0 {
		t.Fatalf("oversized hammock not rejected: %+v", hs)
	}
}

func TestHammockNotSimpleWithInnerControl(t *testing.T) {
	b := NewBuilder()
	b.Brz(isa.R1, "end")
	b.Brz(isa.R2, "inner") // inner control flow
	b.Nop()
	b.Label("inner")
	b.Nop()
	b.Label("end")
	b.Halt()
	p := b.MustBuild()
	hs := AnalyzeHammocks(p, 32)
	for _, h := range hs {
		if h.BranchPC == 0 && h.Simple {
			t.Fatal("hammock with inner branch flagged simple")
		}
	}
}

// TestLoopPostdominators: a loop branch's reconvergence is the loop exit.
func TestLoopPostdominators(t *testing.T) {
	b := NewBuilder()
	b.MovI(isa.R1, 10)
	b.Label("loop")
	b.AddI(isa.R1, isa.R1, -1)
	b.Brnz(isa.R1, "loop")
	b.Halt()
	p := b.MustBuild()
	g := NewCFG(p)
	r := g.Reconvergence(2)
	// Both directions of the back-branch eventually reach the Halt at 3.
	if r != 3 && r != 1 {
		t.Fatalf("loop branch recon = %d, want 3 (exit) or 1 (header)", r)
	}
}
