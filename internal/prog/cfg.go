package prog

import (
	"acb/internal/isa"
)

// CFG is a static control-flow graph over a program, one node per
// instruction. It supports the postdominator-based reconvergence analysis
// that the DMP baseline's compiler pass performs (Kim et al., MICRO'06 /
// CGO'07), and which ACB replaces with pure-hardware learning.
type CFG struct {
	prog  []isa.Instruction
	succs [][]int
	preds [][]int
}

// NewCFG builds the control-flow graph of the program.
func NewCFG(p []isa.Instruction) *CFG {
	g := &CFG{
		prog:  p,
		succs: make([][]int, len(p)),
		preds: make([][]int, len(p)),
	}
	for pc := range p {
		in := &p[pc]
		switch in.Op {
		case isa.Halt:
			// no successors
		case isa.Jmp:
			g.addEdge(pc, in.Target)
		case isa.Br:
			if pc+1 < len(p) {
				g.addEdge(pc, pc+1)
			}
			g.addEdge(pc, in.Target)
		default:
			if pc+1 < len(p) {
				g.addEdge(pc, pc+1)
			}
		}
	}
	return g
}

func (g *CFG) addEdge(from, to int) {
	if to < 0 || to >= len(g.prog) {
		return
	}
	g.succs[from] = append(g.succs[from], to)
	g.preds[to] = append(g.preds[to], from)
}

// Succs returns the static successors of pc.
func (g *CFG) Succs(pc int) []int { return g.succs[pc] }

// Preds returns the static predecessors of pc.
func (g *CFG) Preds(pc int) []int { return g.preds[pc] }

// PostDominators computes the immediate postdominator of every
// instruction, with a virtual exit node reached from every Halt. The
// returned slice maps pc to its immediate postdominator pc, or -1 when the
// instruction has none (it postdominates itself only, or cannot reach
// exit).
//
// The algorithm is the iterative dataflow formulation run on the reverse
// CFG in reverse post-order.
func (g *CFG) PostDominators() []int {
	n := len(g.prog)
	const exit = -2 // virtual exit sentinel inside the lattice
	// ipdom[pc] holds the current immediate postdominator estimate;
	// -1 = uninitialized (TOP), exit = the virtual exit node.
	ipdom := make([]int, n)
	for i := range ipdom {
		ipdom[i] = -1
	}

	// Reverse post-order of the *reverse* CFG = post-order of forward CFG.
	order := g.reverseCFGRPO()

	// Depth in the postdominator tree for the intersect walk; recomputed
	// lazily via parent chains. We use the standard Cooper-Harvey-Kennedy
	// intersect with node ordering by position in `order`.
	pos := make([]int, n)
	for i := range pos {
		pos[i] = -1
	}
	for i, pc := range order {
		pos[pc] = i
	}

	intersect := func(a, b int) int {
		for a != b {
			if a == exit {
				return exit
			}
			if b == exit {
				return exit
			}
			for a != b && a != exit && b != exit && pos[a] > pos[b] {
				a = ipdom[a]
				if a == -1 {
					return -1
				}
			}
			for a != b && a != exit && b != exit && pos[b] > pos[a] {
				b = ipdom[b]
				if b == -1 {
					return -1
				}
			}
		}
		return a
	}

	changed := true
	for changed {
		changed = false
		for _, pc := range order {
			var newIdom = -1
			if g.prog[pc].Op == isa.Halt {
				newIdom = exit
			} else {
				first := true
				for _, s := range g.succs[pc] {
					if ipdom[s] == -1 && g.prog[s].Op != isa.Halt {
						continue // unprocessed
					}
					cand := s
					if first {
						newIdom = cand
						first = false
					} else {
						newIdom = intersect(newIdom, cand)
						if newIdom == -1 {
							break
						}
					}
				}
			}
			if newIdom != ipdom[pc] && newIdom != -1 {
				ipdom[pc] = newIdom
				changed = true
			}
		}
	}

	out := make([]int, n)
	for i, v := range ipdom {
		if v == exit {
			out[i] = -1
		} else {
			out[i] = v
		}
	}
	return out
}

// reverseCFGRPO returns an ordering of nodes such that, walking the reverse
// CFG from the exits, a node appears after the nodes that postdominate it
// whenever possible (reverse post-order of the reverse CFG).
func (g *CFG) reverseCFGRPO() []int {
	n := len(g.prog)
	visited := make([]bool, n)
	var post []int
	var dfs func(pc int)
	dfs = func(pc int) {
		visited[pc] = true
		for _, p := range g.preds[pc] {
			if !visited[p] {
				dfs(p)
			}
		}
		post = append(post, pc)
	}
	for pc := range g.prog {
		if g.prog[pc].Op == isa.Halt && !visited[pc] {
			dfs(pc)
		}
	}
	// Any nodes not reaching a Halt (e.g. infinite loops): append in
	// arbitrary order so they still participate.
	for pc := n - 1; pc >= 0; pc-- {
		if !visited[pc] {
			dfs(pc)
		}
	}
	// post is post-order of reverse CFG; reverse it.
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Reconvergence returns the reconvergence PC of the conditional branch at
// pc, defined as the nearest common postdominator of its two successors,
// or -1 if none exists. This mirrors DMP's compiler-provided CFM point.
func (g *CFG) Reconvergence(pc int) int {
	if g.prog[pc].Op != isa.Br {
		return -1
	}
	ipdom := g.PostDominators()
	return g.reconvergenceWith(pc, ipdom)
}

func (g *CFG) reconvergenceWith(pc int, ipdom []int) int {
	// Walk the ipdom chain from the branch itself: the branch's immediate
	// postdominator is exactly where both outgoing paths must meet.
	r := ipdom[pc]
	if r == pc {
		return -1
	}
	return r
}

// AllReconvergences computes the reconvergence point of every conditional
// branch in one postdominator pass. The map omits branches without one.
func (g *CFG) AllReconvergences() map[int]int {
	ipdom := g.PostDominators()
	out := make(map[int]int)
	for pc := range g.prog {
		if g.prog[pc].Op != isa.Br {
			continue
		}
		if r := g.reconvergenceWith(pc, ipdom); r >= 0 {
			out[pc] = r
		}
	}
	return out
}

// PathLength returns the length in instructions of the shortest static path
// from `from` (exclusive) to `to` (exclusive), or -1 if unreachable within
// limit steps. Used to size hammock bodies.
func (g *CFG) PathLength(from, to, limit int) int {
	if from == to {
		return 0
	}
	type node struct{ pc, d int }
	seen := map[int]bool{from: true}
	queue := []node{{from, 0}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.d >= limit {
			continue
		}
		for _, s := range g.succs[cur.pc] {
			if s == to {
				return cur.d // instructions strictly between from and to
			}
			if !seen[s] {
				seen[s] = true
				queue = append(queue, node{s, cur.d + 1})
			}
		}
	}
	return -1
}

// Hammock describes a conditional branch with a static reconvergence point
// and measured path lengths; produced by AnalyzeHammocks for the DMP/DHP
// profiling passes.
type Hammock struct {
	BranchPC    int
	ReconvPC    int
	TakenLen    int // instructions on the taken path (may be -1)
	NotTakenLen int
	Simple      bool // both paths straight-line (no internal control flow)
}

// AnalyzeHammocks returns the hammock structure of every conditional branch
// that statically reconverges within maxBody instructions on both paths.
func AnalyzeHammocks(p []isa.Instruction, maxBody int) []Hammock {
	g := NewCFG(p)
	recon := g.AllReconvergences()
	var out []Hammock
	for pc := range p {
		r, ok := recon[pc]
		if !ok {
			continue
		}
		in := &p[pc]
		ntStart := pc + 1
		tStart := in.Target
		ntLen := pathLenFrom(g, ntStart, r, maxBody)
		tLen := pathLenFrom(g, tStart, r, maxBody)
		if ntLen < 0 || tLen < 0 {
			continue
		}
		out = append(out, Hammock{
			BranchPC:    pc,
			ReconvPC:    r,
			TakenLen:    tLen,
			NotTakenLen: ntLen,
			Simple:      straightLine(p, ntStart, r) && straightLine(p, tStart, r),
		})
	}
	return out
}

// pathLenFrom measures instructions from start (inclusive) to to
// (exclusive) along the shortest static path.
func pathLenFrom(g *CFG, start, to, limit int) int {
	if start == to {
		return 0
	}
	d := g.PathLength(start, to, limit)
	if d < 0 {
		return -1
	}
	return d + 1 // include start itself
}

// straightLine reports whether the instructions in [start,to) fall through
// linearly with no internal control flow (the DHP "simple hammock"
// criterion). start==to is trivially straight-line. A single terminal Jmp
// directly to `to` is allowed (the IF-ELSE skip jump).
func straightLine(p []isa.Instruction, start, to int) bool {
	if start == to {
		return true
	}
	if start > to {
		return false
	}
	for pc := start; pc < to; pc++ {
		in := &p[pc]
		if in.Op == isa.Jmp && in.Target == to {
			continue
		}
		if in.IsControl() || in.Op == isa.Halt {
			return false
		}
	}
	return true
}
