package sample

import (
	"context"
	"strings"
	"sync"
	"testing"

	"acb/internal/bpu"
	"acb/internal/config"
	"acb/internal/core"
	"acb/internal/isa"
	"acb/internal/ooo"
	"acb/internal/prog"
	"acb/internal/workload"
)

func buildWorkload(t *testing.T, name string) ([]isa.Instruction, *isa.Memory) {
	t.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatalf("workload %s: %v", name, err)
	}
	return w.Build()
}

func fullCPI(t *testing.T, prog []isa.Instruction, image *isa.Memory, budget int64) float64 {
	t.Helper()
	pred := bpu.NewTAGE(bpu.DefaultTAGEConfig())
	c := ooo.NewWithMemory(config.Skylake(), prog, pred, nil, image.Clone())
	res, err := c.Run(budget)
	if err != nil {
		t.Fatalf("full run: %v", err)
	}
	return float64(res.Cycles) / float64(res.Retired)
}

func TestSampledCPIWithinBound(t *testing.T) {
	for _, name := range []string{"perlbench", "gcc", "mcf"} {
		t.Run(name, func(t *testing.T) {
			prog, image := buildWorkload(t, name)
			budget := int64(300_000)
			full := fullCPI(t, prog, image, budget)

			plan := Plan{Interval: 30_000, Warmup: 2_000, Measure: 5_000}
			est, err := Run(prog, image, plan, Options{Budget: budget, Verify: true})
			if err != nil {
				t.Fatalf("sampled run: %v", err)
			}
			if est.BoundaryFailures != 0 {
				for _, w := range est.Windows {
					if w.BoundaryDiff != "" {
						t.Errorf("window %d (start %d): %s", w.Index, w.Start, w.BoundaryDiff)
					}
				}
				t.Fatalf("%d window-boundary architectural diffs", est.BoundaryFailures)
			}
			if est.TotalInstrs != budget && !est.Halted {
				t.Fatalf("TotalInstrs = %d, want %d (or halt)", est.TotalInstrs, budget)
			}
			errPct := est.CPIErrorPct(full)
			if errPct < 0 {
				errPct = -errPct
			}
			t.Logf("%s: full CPI %.4f, sampled %.4f ± %.4f (%d windows), err %.2f%%",
				name, full, est.CPI, est.CI95, len(est.Windows), errPct)
			if errPct > 10 {
				t.Errorf("CPI error %.2f%% exceeds 10%% sanity bound", errPct)
			}
		})
	}
}

// buildHaltingLoop assembles a branchy loop that halts after roughly
// iters*8 instructions, for tests that need a program with a real end.
func buildHaltingLoop(iters int64) ([]isa.Instruction, *isa.Memory) {
	b := prog.NewBuilder()
	b.MovI(isa.R1, iters)
	b.MovI(isa.R3, 0)
	b.MovI(isa.R7, 0)
	b.Label("loop")
	b.AndI(isa.R4, isa.R3, 7)
	b.Brz(isa.R4, "skip")
	b.AddI(isa.R7, isa.R7, 3)
	b.Label("skip")
	b.AddI(isa.R3, isa.R3, 1)
	b.Sub(isa.R8, isa.R3, isa.R1)
	b.Brnz(isa.R8, "loop")
	b.Halt()
	return b.MustBuild(), isa.NewMemory()
}

func TestWindowsClipAtHalt(t *testing.T) {
	prog, image := buildHaltingLoop(8_000) // halts around 50k instructions
	// Budget far beyond the program so the run halts; windows past the
	// halt must be dropped, the straddling one clipped.
	plan := Plan{Interval: 10_000, Warmup: 500, Measure: 2_000}
	est, err := Run(prog, image, plan, Options{Budget: 100_000_000, Verify: true})
	if err != nil {
		t.Fatalf("sampled run: %v", err)
	}
	if !est.Halted {
		t.Fatalf("expected halt within budget")
	}
	if est.BoundaryFailures != 0 {
		t.Fatalf("%d boundary failures on halting run", est.BoundaryFailures)
	}
	for _, w := range est.Windows {
		if w.Start+w.Warmup+w.Measure > est.TotalInstrs {
			t.Errorf("window %d spans [%d,%d) past program end %d",
				w.Index, w.Start, w.Start+w.Warmup+w.Measure, est.TotalInstrs)
		}
	}
}

func TestParallelPoolMatchesSerial(t *testing.T) {
	prog, image := buildWorkload(t, "gcc")
	plan := Plan{Interval: 20_000, Warmup: 1_000, Measure: 3_000}
	opts := Options{Budget: 200_000}

	serial, err := Run(prog, image, plan, opts)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}

	opts.Pool = func(n int, run func(i int)) error {
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) { defer wg.Done(); run(i) }(i)
		}
		wg.Wait()
		return nil
	}
	par, err := Run(prog, image, plan, opts)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}

	if serial.CPI != par.CPI || serial.MeasuredCycles != par.MeasuredCycles ||
		serial.MeasuredInstrs != par.MeasuredInstrs || len(serial.Windows) != len(par.Windows) {
		t.Fatalf("parallel pool changed results: serial CPI %.6f/%d cycles, parallel %.6f/%d",
			serial.CPI, serial.MeasuredCycles, par.CPI, par.MeasuredCycles)
	}
	for i := range serial.Windows {
		a, b := serial.Windows[i].Result, par.Windows[i].Result
		if a.Cycles != b.Cycles || a.Retired != b.Retired || a.Flushes != b.Flushes ||
			a.Mispredicts != b.Mispredicts || a.FinalRegs != b.FinalRegs {
			t.Errorf("window %d differs between serial and parallel pools", i)
		}
	}
}

func TestPlanValidation(t *testing.T) {
	prog, image := buildWorkload(t, "perlbench")
	_, err := Run(prog, image, Plan{Interval: 1_000, Warmup: 800, Measure: 500}, Options{})
	if err == nil || !strings.Contains(err.Error(), "exceed interval") {
		t.Fatalf("expected interval-validation error, got %v", err)
	}
}

func TestContextCancellation(t *testing.T) {
	prog, image := buildWorkload(t, "gcc")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(prog, image, DefaultPlan(), Options{Budget: 300_000, Context: ctx})
	if err == nil {
		t.Fatalf("expected cancellation error")
	}
}

func TestSampledWithScheme(t *testing.T) {
	// Predication schemes run per-window with cold state; the run must
	// still be architecturally transparent at every boundary.
	prog, image := buildWorkload(t, "perlbench")
	plan := Plan{Interval: 25_000, Warmup: 1_000, Measure: 4_000}
	est, err := Run(prog, image, plan, Options{
		Budget:    200_000,
		NewScheme: func() ooo.Scheme { return core.New(core.DefaultConfig()) },
		Verify:    true,
	})
	if err != nil {
		t.Fatalf("sampled ACB run: %v", err)
	}
	if est.BoundaryFailures != 0 {
		for _, w := range est.Windows {
			if w.BoundaryDiff != "" {
				t.Errorf("window %d: %s", w.Index, w.BoundaryDiff)
			}
		}
		t.Fatalf("%d boundary failures under ACB scheme", est.BoundaryFailures)
	}
}
