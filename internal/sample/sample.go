// Package sample implements SMARTS-style sampled simulation: instead of
// running every instruction through the cycle-accurate core, a run is
// partitioned into fast-forward / warm-up / measure intervals. The
// fast-forward phase executes on the trusted internal/isa functional
// emulator (the difftest oracle), which checkpoints architectural state at
// each window start, functionally warms the branch predictor with every
// resolved branch outcome, and continuously warms a cache hierarchy with
// every load/store address (each window receives a clone of the warmed tag
// state). Each window is then an independent job — a detailed core
// restored from its checkpoint (ooo.NewFromCheckpoint), a
// detailed-but-unmeasured warm-up to hide the remaining cold start, and a
// measured span — so windows fan out over the experiments worker pool (and
// through it the acbd cluster). Per-window CPIs aggregate into a point
// estimate with normal-approximation confidence intervals.
//
// Approximations (see docs/SAMPLING.md): wrong-path history and cache
// pollution are not modeled during warming, and predication schemes start
// each window with cold learning state — sampled CPI is therefore
// validated against full runs for the baseline core, with scheme warming
// an open item.
package sample

import (
	"context"
	"fmt"
	"math"
	"strings"

	"acb/internal/bpu"
	"acb/internal/config"
	"acb/internal/isa"
	"acb/internal/mem"
	"acb/internal/ooo"
)

// Plan describes the interval structure of a sampled run, in retired
// instructions. Every Interval instructions a window opens: the detailed
// core warms (unmeasured) for Warmup instructions and then measures
// Measure instructions; everything else is fast-forwarded functionally.
type Plan struct {
	// Interval is the sampling period: window k starts at
	// Offset + k*Interval.
	Interval int64
	// Offset positions the first window inside the first interval. The
	// zero value means Interval/2 — centering windows keeps the program's
	// cold-start transient out of window 0, which would otherwise carry
	// 1/n of the sample weight for a phase the full run amortizes over
	// the whole budget. Negative means start at instruction 0.
	Offset int64
	// Warmup is the detailed-but-unmeasured span at the head of each
	// window (hides the cold pipeline/cache transient of a checkpointed
	// start).
	Warmup int64
	// Measure is the measured span per window.
	Measure int64
	// MaxWindows caps the number of windows (0 = no cap).
	MaxWindows int
	// NoCacheWarming disables continuous cache warming: window cores then
	// start with cold caches (warm-up must absorb the whole transient).
	// For measurement of the warming contribution, not production use.
	NoCacheWarming bool
}

// DefaultPlan returns the interval scheme used by the sampled experiments:
// a 7% detailed fraction (2k warm-up + 5k measured every 100k) that keeps
// CPI error within the documented bound on the workload suite.
func DefaultPlan() Plan {
	return Plan{Interval: 100_000, Warmup: 2_000, Measure: 5_000}
}

// PlanForBudget scales the interval scheme to the run length: the interval
// is budget/20 (so a run always yields ~20 windows — enough for the CI95
// machinery to mean something) clamped to [15k, 500k]. The warm-up stays
// at DefaultPlan's 2k regardless of interval — shorter warm-ups leave a
// measurable cold-start bias, and longer ones buy nothing once caches and
// pipeline have converged — and the measured span is interval/20 clamped
// to [3k, 5k]: below 3k per-window noise dominates, and past 5k extra
// width buys little because the estimate's variance is driven by the
// window count (see the calibration sweep in docs/SAMPLING.md). Short
// budgets therefore trade speedup for accuracy (detailed fraction 33% at
// the 15k floor, 7% at 100k, 1.4% at the 500k cap).
func PlanForBudget(budget int64) Plan {
	interval := budget / 20
	if interval < 15_000 {
		interval = 15_000
	}
	if interval > 500_000 {
		interval = 500_000
	}
	measure := interval / 20
	if measure < 3_000 {
		measure = 3_000
	}
	if measure > 5_000 {
		measure = 5_000
	}
	return Plan{Interval: interval, Warmup: 2_000, Measure: measure}
}

func (p *Plan) fill() error {
	if p.Interval <= 0 {
		p.Interval = DefaultPlan().Interval
	}
	if p.Measure <= 0 {
		p.Measure = DefaultPlan().Measure
	}
	if p.Warmup < 0 {
		p.Warmup = 0
	}
	if p.Offset == 0 {
		p.Offset = p.Interval / 2
	} else if p.Offset < 0 {
		p.Offset = 0
	}
	if p.Warmup+p.Measure > p.Interval {
		return fmt.Errorf("sample: warmup %d + measure %d exceed interval %d", p.Warmup, p.Measure, p.Interval)
	}
	return nil
}

// FirstStart returns the instruction index where the plan's first window
// begins (after defaulting), so callers can tell whether a program is long
// enough to yield any window at all.
func (p Plan) FirstStart() int64 {
	if err := p.fill(); err != nil {
		return 0
	}
	return p.Offset
}

// PoolFunc fans jobs 0..n-1 out to workers; each job writes only its own
// slot, so any implementation that runs every index exactly once is safe.
// The experiments package's Pool matches this shape — wire it in to reuse
// the bounded worker pool (and its runner accounting); the default is a
// serial loop, which callers already inside a pool job should keep.
type PoolFunc func(n int, run func(i int)) error

// Options configures a sampled run.
type Options struct {
	// Budget is the retired-instruction budget (like ooo.Core.Run's); the
	// run covers min(Budget, instructions-to-halt) instructions.
	Budget int64
	// Config is the core configuration (zero = config.Skylake()).
	Config config.Core
	// NewPredictor builds the predictor warmed during fast-forward and
	// cloned per window; it must return a bpu.Cloner (all built-in
	// predictors are). Default: TAGE.
	NewPredictor func() bpu.Predictor
	// NewScheme builds a fresh predication scheme per window (nil = plain
	// speculation baseline). Windows do not share scheme state.
	NewScheme func() ooo.Scheme
	// Verify diffs each window's end-of-window architectural state (regs +
	// committed memory) against a functional reference advanced to the
	// same retired count, recording any divergence in Window.BoundaryDiff.
	Verify bool
	// Pool runs the window jobs (see PoolFunc). Nil = serial.
	Pool PoolFunc
	// Context cancels the run cooperatively.
	Context context.Context
}

func (o *Options) fill() {
	if o.Budget <= 0 {
		o.Budget = 400_000
	}
	if o.Config.ROBSize == 0 {
		o.Config = config.Skylake()
	}
	if o.NewPredictor == nil {
		o.NewPredictor = func() bpu.Predictor { return bpu.NewTAGE(bpu.DefaultTAGEConfig()) }
	}
	if o.Pool == nil {
		o.Pool = func(n int, run func(i int)) error {
			for i := 0; i < n; i++ {
				run(i)
			}
			return nil
		}
	}
	if o.Context == nil {
		o.Context = context.Background()
	}
}

// Window is one measured interval of a sampled run.
type Window struct {
	Index int
	// Start is the retired-instruction index where the detailed warm-up
	// begins (k*Interval).
	Start int64
	// Warmup and Measure are the planned spans, clipped at program end.
	Warmup  int64
	Measure int64
	// Result holds the measured span's statistics (deltas; see
	// ooo.Core.RunWindow).
	Result ooo.Result
	// CPI is Result.Cycles / Result.Retired.
	CPI float64
	// BoundaryDiff is non-empty when Options.Verify found the window's
	// end-of-window architectural state diverging from the functional
	// reference.
	BoundaryDiff string
}

// Estimate is the outcome of a sampled run.
type Estimate struct {
	Windows []Window
	// TotalInstrs is the functional instruction count the run covers
	// (min(budget, instructions-to-halt)).
	TotalInstrs int64
	Halted      bool
	// MeasuredInstrs / MeasuredCycles sum the measured spans.
	MeasuredInstrs int64
	MeasuredCycles int64
	// CPI is the instruction-weighted point estimate over windows.
	CPI float64
	// CPIStdErr is the standard error of the per-window CPI mean, and CI95
	// its 1.96σ half-width — the normal-approximation 95% confidence
	// interval on CPI (0 when fewer than 2 windows).
	CPIStdErr float64
	CI95      float64
	// EstCycles extrapolates total cycles: CPI * TotalInstrs.
	EstCycles int64
	// BoundaryFailures counts windows whose BoundaryDiff is non-empty.
	BoundaryFailures int
}

// window carries the per-window fast-forward products to its job.
type window struct {
	start   int64
	ckpt    *isa.Checkpoint
	pred    bpu.Predictor
	hier    *mem.Hierarchy
	warmup  int64
	measure int64
}

// Run performs a sampled simulation of the program and returns the CPI
// estimate. The image is cloned, never mutated.
func Run(prog []isa.Instruction, image *isa.Memory, plan Plan, opts Options) (*Estimate, error) {
	if err := plan.fill(); err != nil {
		return nil, err
	}
	opts.fill()
	if image == nil {
		image = isa.NewMemory()
	}

	// Phase 1 — functional fast-forward: one sequential pass that warms
	// the predictor with every resolved branch and the cache hierarchy
	// with every load/store address, checkpointing both (plus the
	// architectural state) at each window start.
	warm := opts.NewPredictor()
	cloner, ok := warm.(bpu.Cloner)
	if !ok {
		return nil, fmt.Errorf("sample: predictor %s does not support cloning (bpu.Cloner)", warm.Name())
	}
	arch := isa.NewArchState(image.CloneCOW())
	onBranch := func(pc int, taken bool) { bpu.Warm(warm, uint64(pc), taken) }
	var onMem func(addr int64, store bool)
	var warmHier *mem.Hierarchy
	if !plan.NoCacheWarming {
		warmHier = mem.NewHierarchy(opts.Config.Mem)
		onMem = func(addr int64, store bool) {
			if store {
				warmHier.StoreCommit(addr)
			} else {
				warmHier.LoadLatency(addr)
			}
		}
	}

	var wins []*window
	pos := int64(0)
	halted := false
	for k := 0; ; k++ {
		if plan.MaxWindows > 0 && k >= plan.MaxWindows {
			break
		}
		start := plan.Offset + int64(k)*plan.Interval
		if start >= opts.Budget {
			break
		}
		if start > pos {
			steps, h := arch.RunFeed(prog, start-pos, onBranch, onMem)
			pos += steps
			if h {
				halted = true
				break
			}
		}
		w := &window{
			start: start,
			ckpt:  arch.Checkpoint(pos),
			pred:  cloner.Clone(),
		}
		if warmHier != nil {
			w.hier = warmHier.Clone()
		}
		wins = append(wins, w)
	}
	// Finish the functional pass to learn the run's true extent.
	if !halted && pos < opts.Budget {
		steps, h := arch.RunFeed(prog, opts.Budget-pos, nil, nil)
		pos += steps
		halted = h
	}
	total := pos

	// Clip windows at the run's end and drop those with nothing to
	// measure.
	live := wins[:0]
	for _, w := range wins {
		w.warmup = plan.Warmup
		w.measure = plan.Measure
		if w.start+w.warmup >= total {
			continue
		}
		if w.start+w.warmup+w.measure > total {
			w.measure = total - w.start - w.warmup
		}
		live = append(live, w)
	}
	wins = live
	if len(wins) == 0 {
		return nil, fmt.Errorf("sample: no measurable window in %d instructions (interval %d, warmup %d)",
			total, plan.Interval, plan.Warmup)
	}

	// Phase 2 — detailed windows, each an independent job. Each job writes
	// only its own result/error slot, so any pool that runs every index
	// exactly once is race-free.
	results := make([]Window, len(wins))
	errs := make([]error, len(wins))
	poolErr := opts.Pool(len(wins), func(i int) {
		w := wins[i]
		var scheme ooo.Scheme
		if opts.NewScheme != nil {
			scheme = opts.NewScheme()
		}
		c := ooo.NewFromCheckpoint(opts.Config, prog, w.pred, scheme, w.ckpt)
		if w.hier != nil {
			c.SetHierarchy(w.hier)
		}
		res, err := c.RunWindow(opts.Context, w.warmup, w.measure)
		if err != nil {
			errs[i] = fmt.Errorf("sample: window %d (start %d): %w", i, w.start, err)
			return
		}
		out := Window{Index: i, Start: w.start, Warmup: w.warmup, Measure: w.measure, Result: res}
		if res.Retired > 0 {
			out.CPI = float64(res.Cycles) / float64(res.Retired)
		}
		if opts.Verify {
			out.BoundaryDiff = boundaryDiff(prog, w.ckpt, c, &res)
		}
		results[i] = out
	})
	if poolErr != nil {
		return nil, poolErr
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	return aggregate(results, total, halted), nil
}

// boundaryDiff replays the functional reference from the window's
// checkpoint to the core's exact retired count and reports any
// architectural divergence (registers, then committed memory). Retirement
// counts architecturally-useful instructions only, so the functional
// reference lands on the same instruction even under predication schemes.
func boundaryDiff(prog []isa.Instruction, ckpt *isa.Checkpoint, c *ooo.Core, res *ooo.Result) string {
	ref := ckpt.Restore()
	ref.Run(prog, c.Retired())
	for r := 0; r < isa.NumRegs; r++ {
		if res.FinalRegs[r] != ref.Regs[r] {
			return fmt.Sprintf("r%d = %#x, functional reference has %#x (boundary %d)",
				r, res.FinalRegs[r], ref.Regs[r], ckpt.Retired+c.Retired())
		}
	}
	refMem := ref.Mem.(*isa.Memory)
	if diffs := c.CommitMemory().DiffWords(refMem, 3); len(diffs) > 0 {
		var d []string
		for _, w := range diffs {
			d = append(d, fmt.Sprintf("[%#x]=%#x want %#x", w.Addr, w.A, w.B))
		}
		return fmt.Sprintf("memory diverges at boundary %d: %s", ckpt.Retired+c.Retired(), strings.Join(d, ", "))
	}
	return ""
}

// aggregate folds window results into the point estimate.
func aggregate(windows []Window, total int64, halted bool) *Estimate {
	est := &Estimate{Windows: windows, TotalInstrs: total, Halted: halted}
	cpis := make([]float64, 0, len(windows))
	for i := range windows {
		w := &windows[i]
		est.MeasuredInstrs += w.Result.Retired
		est.MeasuredCycles += w.Result.Cycles
		if w.Result.Retired > 0 {
			cpis = append(cpis, w.CPI)
		}
		if w.BoundaryDiff != "" {
			est.BoundaryFailures++
		}
	}
	if est.MeasuredInstrs > 0 {
		est.CPI = float64(est.MeasuredCycles) / float64(est.MeasuredInstrs)
	}
	if n := len(cpis); n >= 2 {
		mean := 0.0
		for _, x := range cpis {
			mean += x
		}
		mean /= float64(n)
		varSum := 0.0
		for _, x := range cpis {
			varSum += (x - mean) * (x - mean)
		}
		sd := math.Sqrt(varSum / float64(n-1))
		est.CPIStdErr = sd / math.Sqrt(float64(n))
		est.CI95 = 1.96 * est.CPIStdErr
	}
	est.EstCycles = int64(est.CPI * float64(total))
	return est
}

// CPIErrorPct returns the signed relative error of the sampled CPI against
// a full-run CPI, in percent.
func (e *Estimate) CPIErrorPct(fullCPI float64) float64 {
	if fullCPI == 0 {
		return 0
	}
	return (e.CPI - fullCPI) / fullCPI * 100
}
