package workload

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"acb/internal/trace"
)

// recordWorkloadTrace records a suite workload's functional trace into a
// temp file and returns the path.
func recordWorkloadTrace(t *testing.T, name string, maxSteps int64) string {
	t.Helper()
	w, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	p, m := w.Build()
	path := filepath.Join(t.TempDir(), name+".trace")
	if _, _, err := trace.RecordFile(path, p, m, maxSteps,
		trace.Header{Source: name, Kind: "workload"}); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestFromTraceRebuildsRecordedInputs: a trace: workload hands out the
// exact program and initial memory that were recorded, and fresh memory
// per Build so concurrent experiments stay independent.
func TestFromTraceRebuildsRecordedInputs(t *testing.T) {
	path := recordWorkloadTrace(t, "gcc", 20_000)
	w, err := FromTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if w.Category != CatTrace || w.Tier != TierTrace {
		t.Fatalf("category/tier = %q/%q, want %q/%q", w.Category, w.Tier, CatTrace, TierTrace)
	}

	orig, _ := ByName("gcc")
	op, om := orig.Build()
	p1, m1 := w.Build()
	if !reflect.DeepEqual(p1, op) {
		t.Fatal("replayed program differs from the recorded workload's")
	}
	if !m1.Equal(om) {
		t.Fatal("replayed initial memory differs from the recorded workload's")
	}
	_, m2 := w.Build()
	m2.Store(0x40, 0xDEAD)
	if m1.Equal(m2) {
		t.Fatal("Build shares memory between calls")
	}
}

// TestFromTraceRejectsCorruption: a trace: workload must fail at load
// time when the file is damaged, not mid-experiment.
func TestFromTraceRejectsCorruption(t *testing.T) {
	path := recordWorkloadTrace(t, "mcf", 20_000)
	if _, err := FromTrace(path); err != nil {
		t.Fatalf("pristine trace rejected: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x10
	bad := filepath.Join(t.TempDir(), "bad.trace")
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := FromTrace(bad); err == nil {
		// A flipped bit may land in CRC-covered payload (decode error) or
		// nowhere harmful only if decode AND verify both still pass — which
		// the framing makes impossible for a mid-file flip.
		t.Fatal("bitflipped trace loaded without error")
	}
}

// TestResolveSelectors covers the three selector forms and the error.
func TestResolveSelectors(t *testing.T) {
	if w, err := Resolve("gcc"); err != nil || w.Name != "gcc" {
		t.Fatalf("plain name: %v %q", err, w.Name)
	}

	path := recordWorkloadTrace(t, "astar", 20_000)
	if w, err := Resolve(TracePrefix + path); err != nil || !strings.HasPrefix(w.Name, TracePrefix) {
		t.Fatalf("trace selector: %v %q", err, w.Name)
	}

	advs, err := Adversarial()
	if err != nil {
		t.Fatal(err)
	}
	if len(advs) < 3 {
		t.Fatalf("adversarial corpus has %d workloads, want >= 3", len(advs))
	}
	full := advs[0].Name
	bare := strings.TrimPrefix(full, AdvPrefix)
	for _, sel := range []string{full, bare} {
		if w, err := Resolve(sel); err != nil || w.Name != full {
			t.Fatalf("adversarial selector %q: %v %q", sel, err, w.Name)
		}
	}

	if _, err := Resolve("no-such-workload"); err == nil {
		t.Fatal("unknown selector resolved")
	}
}

// TestExpandAdversarialTier: the tier selector expands to the whole
// corpus, duplicates are rejected (experiment caches key on name), and
// blank selectors are skipped.
func TestExpandAdversarialTier(t *testing.T) {
	advs, err := Adversarial()
	if err != nil {
		t.Fatal(err)
	}
	ws, err := Expand([]string{"gcc", "", AdversarialSelector})
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 1+len(advs) {
		t.Fatalf("expanded to %d workloads, want gcc + %d adversarial", len(ws), len(advs))
	}
	for _, w := range ws[1:] {
		if w.Category != CatAdversarial || w.Tier != TierAdversarial {
			t.Fatalf("adversarial workload %q has category/tier %q/%q", w.Name, w.Category, w.Tier)
		}
		p, m := w.Build()
		if len(p) == 0 || m == nil {
			t.Fatalf("adversarial workload %q builds empty inputs", w.Name)
		}
	}

	if _, err := Expand([]string{"gcc", "gcc"}); err == nil {
		t.Fatal("duplicate names accepted")
	}
	if _, err := Expand([]string{AdversarialSelector, strings.TrimPrefix(advs[0].Name, AdvPrefix)}); err == nil {
		t.Fatal("tier expansion plus an explicit member accepted")
	}
}

// TestAdversarialEntriesCommitted pins the corpus floor the CI
// trace-conformance job relies on: at least 3 promoted entries, each with
// a manifest naming its trace, a promotion reason, and the shrunk
// difftest program for engine-site recovery.
func TestAdversarialEntriesCommitted(t *testing.T) {
	entries, err := AdversarialEntries()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 3 {
		t.Fatalf("%d committed adversarial entries, want >= 3", len(entries))
	}
	for _, e := range entries {
		if e.Manifest.Name == "" || e.Manifest.Trace == "" || e.Manifest.Promoted == "" {
			t.Fatalf("manifest incomplete: %+v", e.Manifest)
		}
		if len(e.Manifest.Prog) == 0 {
			t.Fatalf("%s: manifest has no embedded difftest program", e.Manifest.Name)
		}
		if len(e.Trace) == 0 {
			t.Fatalf("%s: empty trace", e.Manifest.Name)
		}
		if e.Manifest.Matrix.Engines == 0 || e.Manifest.Matrix.Predications == 0 {
			t.Fatalf("%s: promotion matrix summary vacuous: %+v", e.Manifest.Name, e.Manifest.Matrix)
		}
	}
}
