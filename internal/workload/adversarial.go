package workload

import (
	"bytes"
	"embed"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"acb/internal/trace"
)

// The adversarial tier: difftest-fuzzer discoveries promoted into
// permanent benchmarks. Each entry is a manifest (what it is, why it was
// promoted, the generator AST for site-aware engines) plus the recorded
// branch trace of the shrunk program. The corpus is embedded into the
// binary so adversarial workloads are available everywhere the suite is —
// acbd workers, CI, remote fleets — without a checkout-relative path.
//
//go:embed testdata/adversarial
var adversarialFS embed.FS

const adversarialDir = "testdata/adversarial"

// AdvPrefix namespaces adversarial workload names ("adv:<entry>").
const AdvPrefix = "adv:"

// MatrixSummary records how the promoted program exercised the difftest
// engine matrix at promotion time.
type MatrixSummary struct {
	Engines        int   `json:"engines"`
	Steps          int64 `json:"steps"`
	Predications   int64 `json:"predications"`
	DivFlushes     int64 `json:"div_flushes"`
	TransparentOps int64 `json:"transparent_ops"`
	SelectUops     int64 `json:"select_uops"`
	InvalidatedMem int64 `json:"invalidated_mem"`
}

// Manifest is the committed description of one promoted corpus entry.
type Manifest struct {
	Name     string        `json:"name"`
	Desc     string        `json:"desc,omitempty"`
	Seed     uint64        `json:"seed"`
	Promoted string        `json:"promoted"` // why this program earned a slot
	Matrix   MatrixSummary `json:"matrix"`
	Trace    string        `json:"trace"` // trace filename, relative to the manifest
	// Prog is the difftest program AST (difftest.Prog JSON). Stored as raw
	// JSON so this package stays difftest-agnostic; the difftest golden
	// tests re-assemble it to recover the forced engines' predication sites.
	Prog json.RawMessage `json:"prog"`
}

// AdversarialEntry pairs a manifest with its embedded trace bytes.
type AdversarialEntry struct {
	Manifest Manifest
	Trace    []byte
}

// AdversarialEntries returns the embedded corpus, sorted by manifest
// filename. An empty corpus is valid (no entries, nil error).
func AdversarialEntries() ([]AdversarialEntry, error) {
	files, err := adversarialFS.ReadDir(adversarialDir)
	if err != nil {
		return nil, nil // directory absent from the build: empty corpus
	}
	var names []string
	for _, f := range files {
		if !f.IsDir() && strings.HasSuffix(f.Name(), ".json") {
			names = append(names, f.Name())
		}
	}
	sort.Strings(names)
	out := make([]AdversarialEntry, 0, len(names))
	for _, name := range names {
		data, err := adversarialFS.ReadFile(adversarialDir + "/" + name)
		if err != nil {
			return nil, err
		}
		var m Manifest
		if err := json.Unmarshal(data, &m); err != nil {
			return nil, fmt.Errorf("workload: adversarial manifest %s: %w", name, err)
		}
		if m.Name == "" {
			m.Name = strings.TrimSuffix(name, ".json")
		}
		if m.Trace == "" {
			return nil, fmt.Errorf("workload: adversarial manifest %s names no trace file", name)
		}
		tb, err := adversarialFS.ReadFile(adversarialDir + "/" + m.Trace)
		if err != nil {
			return nil, fmt.Errorf("workload: adversarial entry %s: %w", m.Name, err)
		}
		out = append(out, AdversarialEntry{Manifest: m, Trace: tb})
	}
	return out, nil
}

// Adversarial returns the promoted corpus as replayable workloads, named
// "adv:<entry>". Each trace is decoded and verified against a functional
// re-run, so a corpus entry that drifted from the current ISA or emulator
// fails loudly here.
func Adversarial() ([]Workload, error) {
	entries, err := AdversarialEntries()
	if err != nil {
		return nil, err
	}
	out := make([]Workload, 0, len(entries))
	for _, e := range entries {
		t, err := trace.Decode(bytes.NewReader(e.Trace))
		if err != nil {
			return nil, fmt.Errorf("workload: adversarial entry %s: %w", e.Manifest.Name, err)
		}
		if err := t.Verify(); err != nil {
			return nil, fmt.Errorf("workload: adversarial entry %s: %w", e.Manifest.Name, err)
		}
		mirrors := e.Manifest.Desc
		if mirrors == "" {
			mirrors = e.Manifest.Promoted
		}
		out = append(out, traceWorkload(AdvPrefix+e.Manifest.Name, CatAdversarial, TierAdversarial, mirrors, t))
	}
	return out, nil
}
