package workload

import (
	"fmt"
	"sort"

	"acb/internal/isa"
)

// Category labels mirror the paper's Table III.
const (
	CatISPEC   = "ISPEC"
	CatFSPEC   = "FSPEC"
	CatSPEC17  = "SPEC17"
	CatSYSmark = "SYSmark"
	CatClient  = "Client"
	CatServer  = "Server"
)

// Workload is one named benchmark of the suite.
type Workload struct {
	Name     string
	Category string
	// Mirrors documents which paper workload/outlier class this synthetic
	// kernel reproduces.
	Mirrors string
	Spec    Spec
	// Tier labels non-synthetic workload classes ("adversarial", "trace");
	// empty for the registered synthetic suite.
	Tier string
	// build, when set, overrides Spec-based construction — the hook the
	// trace-replay and adversarial backends use. train selects the
	// profiling-input variant; trace-backed workloads have no separate
	// training input, so they ignore it.
	build func(train bool) ([]isa.Instruction, *isa.Memory)
}

// Build generates the workload's program and memory image. Every call
// returns an independent memory image, so concurrent runs can mutate
// theirs freely.
func (w *Workload) Build() ([]isa.Instruction, *isa.Memory) {
	if w.build != nil {
		return w.build(false)
	}
	return w.Spec.Build()
}

// BuildTrain generates the profiling-input variant of the workload (used
// by the DMP baseline's compiler pass; see Spec.BuildTrain).
func (w *Workload) BuildTrain() ([]isa.Instruction, *isa.Memory) {
	if w.build != nil {
		return w.build(true)
	}
	return w.Spec.BuildTrain()
}

// suite is the registry, populated at init.
var suite []Workload

func register(name, category, mirrors string, spec Spec) {
	spec.Name = name
	spec.Iters = 10_000_000 // run length is bounded by the simulation budget
	suite = append(suite, Workload{Name: name, Category: category, Mirrors: mirrors, Spec: spec})
}

// All returns the full suite in registration order.
func All() []Workload {
	out := make([]Workload, len(suite))
	copy(out, suite)
	return out
}

// ByName returns the named workload.
func ByName(name string) (Workload, error) {
	for _, w := range suite {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workload: unknown workload %q", name)
}

// ByCategory returns the workloads of one category.
func ByCategory(cat string) []Workload {
	var out []Workload
	for _, w := range suite {
		if w.Category == cat {
			out = append(out, w)
		}
	}
	return out
}

// Categories returns the category names in a stable order.
func Categories() []string {
	seen := map[string]bool{}
	var out []string
	for _, w := range suite {
		if !seen[w.Category] {
			seen[w.Category] = true
			out = append(out, w.Category)
		}
	}
	sort.Strings(out)
	return out
}

// h is shorthand for building hammock lists.
func h(hs ...Hammock) []Hammock { return hs }

func init() {
	// ---- ISPEC (SPEC CPU2006 integer) ----------------------------------
	register("perlbench", CatISPEC, "mixed branchy integer code", Spec{
		Seed: 101, Period: 4096, ALU: 4,
		Hammocks: h(
			Hammock{Shape: ShapeIfElse, TLen: 3, NTLen: 4, TakenBias: 0.5, Noise: 0.6, TrainDiffers: true, TrainNoise: 0.1},
			Hammock{Shape: ShapeIfOnly, NTLen: 5, TakenBias: 0.8, Noise: 0.1},
		),
	})
	register("bzip2", CatISPEC, "biased data-dependent compression branches", Spec{
		Seed: 102, Period: 8192, ALU: 3,
		Hammocks: h(
			Hammock{Shape: ShapeIfOnly, NTLen: 4, TakenBias: 0.7, Noise: 0.9, TrainDiffers: true, TrainNoise: 0.1},
			Hammock{Shape: ShapeIfElse, TLen: 2, NTLen: 2, TakenBias: 0.5, Noise: 0.3},
		),
	})
	register("gcc", CatISPEC, "many static branches, moderate predictability", Spec{
		Seed: 103, Period: 2048, ALU: 6, PredictableLoops: 3,
		Hammocks: h(
			Hammock{Shape: ShapeIfElse, TLen: 8, NTLen: 10, TakenBias: 0.5, Noise: 0.28},
			Hammock{Shape: ShapeType3, TLen: 5, NTLen: 3, TakenBias: 0.4, Noise: 0.5},
			Hammock{Shape: ShapeIfOnly, NTLen: 3, TakenBias: 0.9, Noise: 0.05},
		),
	})
	register("mcf", CatISPEC, "pointer-chase bound with data-dependent branches", Spec{
		Seed: 104, Period: 8192, ChaseDepth: 1, ChaseSpan: 8 << 20, ALU: 4,
		Hammocks: h(
			Hammock{Shape: ShapeIfElse, TLen: 3, NTLen: 3, TakenBias: 0.5, Noise: 0.8},
		),
	})
	register("gobmk", CatISPEC, "hard-to-predict game-tree branches", Spec{
		Seed: 105, Period: 16384, ALU: 3,
		Hammocks: h(
			Hammock{Shape: ShapeIfElse, TLen: 10, NTLen: 9, TakenBias: 0.5, Noise: 0.9, TrainDiffers: true, TrainNoise: 0.08},
			Hammock{Shape: ShapeIfElse, TLen: 2, NTLen: 3, TakenBias: 0.5, Noise: 0.7},
		),
	})
	register("hmmer", CatISPEC, "predictable inner loops", Spec{
		Seed: 106, Period: 1024, ALU: 8, PredictableLoops: 6,
		Hammocks: h(
			Hammock{Shape: ShapeIfOnly, NTLen: 3, TakenBias: 0.95, Noise: 0.02},
		),
	})
	register("sjeng", CatISPEC, "H2P search branches, medium hammocks", Spec{
		Seed: 107, Period: 8192, ALU: 4,
		Hammocks: h(
			Hammock{Shape: ShapeIfElse, TLen: 12, NTLen: 14, TakenBias: 0.5, Noise: 0.8, TrainDiffers: true, TrainNoise: 0.1},
			Hammock{Shape: ShapeIfOnly, NTLen: 10, TakenBias: 0.6, Noise: 0.5},
		),
	})
	register("libquantum", CatISPEC, "streaming with biased branch", Spec{
		Seed: 108, Period: 512, ALU: 5,
		Hammocks: h(
			Hammock{Shape: ShapeIfOnly, NTLen: 2, TakenBias: 0.75, Noise: 0.15},
		),
	})
	register("h264ref", CatISPEC, "predication-hostile: slow-resolving branch feeds critical loads (category C/E)", Spec{
		Seed: 109, Period: 8192, ALU: 2, ChaseDepth: 1, ChaseSpan: 16 << 20,
		Hammocks: h(
			Hammock{Shape: ShapeIfElse, TLen: 4, NTLen: 4, TakenBias: 0.5, SlowCond: true, FeedsChase: true},
			Hammock{Shape: ShapeIfElse, TLen: 3, NTLen: 2, TakenBias: 0.5, Noise: 0.6},
		),
	})
	register("omnetpp", CatISPEC, "correlated pair + history-position-sensitive branches (Sec. II-C2/V-C negative outlier, category D)", Spec{
		Seed: 110, Period: 8192, ALU: 3,
		Hammocks: h(
			Hammock{Shape: ShapeIfElse, TLen: 2, NTLen: 2, TakenBias: 0.8, Noise: 0.3, CorrelatedTail: true, PatternTails: 2},
			Hammock{Shape: ShapeIfOnly, NTLen: 3, TakenBias: 0.7, Noise: 0.25, CorrelatedTail: true, PatternTails: 2},
		),
	})
	register("astar", CatISPEC, "path-finding H2P branch over loaded data", Spec{
		Seed: 111, Period: 16384, ChaseDepth: 1, ChaseSpan: 2 << 20, ALU: 4,
		Hammocks: h(
			Hammock{Shape: ShapeIfElse, TLen: 4, NTLen: 3, TakenBias: 0.45, Noise: 0.85},
		),
	})
	register("xalancbmk", CatISPEC, "branchy traversal with history-sensitive dispatch (category D)", Spec{
		Seed: 112, Period: 4096, ALU: 4, PredictableLoops: 2,
		Hammocks: h(
			Hammock{Shape: ShapeIfElse, TLen: 3, NTLen: 5, TakenBias: 0.75, Noise: 0.35, PatternTails: 2},
			Hammock{Shape: ShapeType3, TLen: 4, NTLen: 4, TakenBias: 0.5, Noise: 0.4, CorrelatedTail: true},
		),
	})

	// ---- FSPEC (SPEC CPU2006 floating point; integer-kernel analogues) --
	register("bwaves", CatFSPEC, "regular loops, nearly branch-free", Spec{
		Seed: 201, Period: 256, ALU: 12, PredictableLoops: 8,
		Hammocks: h(
			Hammock{Shape: ShapeIfOnly, NTLen: 2, TakenBias: 0.98, Noise: 0.01},
		),
	})
	register("milc", CatFSPEC, "memory-streaming with occasional H2P", Spec{
		Seed: 202, Period: 2048, ChaseDepth: 1, ChaseSpan: 4 << 20, ALU: 6,
		Hammocks: h(
			Hammock{Shape: ShapeIfOnly, NTLen: 4, TakenBias: 0.5, Noise: 0.4},
		),
	})
	register("soplex", CatFSPEC, "mispredicts shadowed by LLC misses (flat outlier)", Spec{
		Seed: 203, Period: 8192, ChaseDepth: 2, ChaseSpan: 8 << 20, ALU: 3,
		Hammocks: h(
			Hammock{Shape: ShapeIfElse, TLen: 2, NTLen: 2, TakenBias: 0.5, Noise: 0.9},
		),
	})
	register("povray", CatFSPEC, "compute with moderately predictable hammocks", Spec{
		Seed: 204, Period: 1024, ALU: 8,
		Hammocks: h(
			Hammock{Shape: ShapeIfElse, TLen: 5, NTLen: 4, TakenBias: 0.6, Noise: 0.16},
		),
	})
	register("lbm", CatFSPEC, "streaming stores, biased branch", Spec{
		Seed: 205, Period: 512, ALU: 7,
		Hammocks: h(
			Hammock{Shape: ShapeIfOnly, NTLen: 3, TakenBias: 0.9, Noise: 0.05, StoreInBody: true},
		),
	})
	register("sphinx3", CatFSPEC, "H2P scoring branch, small body", Spec{
		Seed: 206, Period: 8192, ALU: 4,
		Hammocks: h(
			Hammock{Shape: ShapeIfElse, TLen: 8, NTLen: 7, TakenBias: 0.5, Noise: 0.75},
		),
	})

	// ---- SPEC17 ---------------------------------------------------------
	register("x264", CatSPEC17, "motion-search H2P with store traffic", Spec{
		Seed: 301, Period: 8192, ALU: 3,
		Hammocks: h(
			Hammock{Shape: ShapeIfElse, TLen: 4, NTLen: 4, TakenBias: 0.5, Noise: 0.7, StoreInBody: true},
			Hammock{Shape: ShapeIfOnly, NTLen: 6, TakenBias: 0.7, Noise: 0.3},
		),
	})
	register("deepsjeng", CatSPEC17, "deep H2P search branches", Spec{
		Seed: 302, Period: 16384, ALU: 4,
		Hammocks: h(
			Hammock{Shape: ShapeIfElse, TLen: 14, NTLen: 12, TakenBias: 0.5, Noise: 0.85, TrainDiffers: true, TrainNoise: 0.06},
			Hammock{Shape: ShapeIfElse, TLen: 3, NTLen: 3, TakenBias: 0.5, Noise: 0.6},
		),
	})
	register("leela", CatSPEC17, "monte-carlo playout branches (H2P, small bodies)", Spec{
		Seed: 303, Period: 16384, ALU: 2,
		Hammocks: h(
			Hammock{Shape: ShapeIfElse, TLen: 2, NTLen: 3, TakenBias: 0.5, Noise: 0.9, TrainDiffers: true, TrainNoise: 0.12},
			Hammock{Shape: ShapeIfOnly, NTLen: 2, TakenBias: 0.5, Noise: 0.8},
		),
	})
	register("exchange", CatSPEC17, "predictable integer kernels", Spec{
		Seed: 304, Period: 256, ALU: 10, PredictableLoops: 5,
		Hammocks: h(
			Hammock{Shape: ShapeIfOnly, NTLen: 3, TakenBias: 0.9, Noise: 0.03},
		),
	})
	register("xz", CatSPEC17, "match-length branches, mixed predictability", Spec{
		Seed: 305, Period: 4096, ALU: 4,
		Hammocks: h(
			Hammock{Shape: ShapeIfElse, TLen: 3, NTLen: 4, TakenBias: 0.6, Noise: 0.55, TrainDiffers: true, TrainNoise: 0.1},
			Hammock{Shape: ShapeNonConvergent, NTLen: 4, TakenBias: 0.5, Noise: 0.5},
		),
	})

	// ---- SYSmark --------------------------------------------------------
	register("winzip", CatSYSmark, "archive coding: biased match branches, store traffic", Spec{
		Seed: 601, Period: 8192, ALU: 3,
		Hammocks: h(
			Hammock{Shape: ShapeIfElse, TLen: 2, NTLen: 3, TakenBias: 0.6, Noise: 0.8, StoreInBody: true},
			Hammock{Shape: ShapeIfOnly, NTLen: 2, TakenBias: 0.85, Noise: 0.1},
		),
	})
	register("photoshop", CatSYSmark, "filter kernels: predictable inner loops + occasional H2P", Spec{
		Seed: 602, Period: 4096, ALU: 7, PredictableLoops: 4,
		Hammocks: h(
			Hammock{Shape: ShapeIfElse, TLen: 4, NTLen: 4, TakenBias: 0.5, Noise: 0.45},
		),
	})
	register("sketchup", CatSYSmark, "geometry traversal: Type-3 control flow over loaded data", Spec{
		Seed: 603, Period: 8192, ChaseDepth: 1, ChaseSpan: 1 << 20, ALU: 4,
		Hammocks: h(
			Hammock{Shape: ShapeType3, TLen: 3, NTLen: 4, TakenBias: 0.5, Noise: 0.6},
		),
	})
	register("premiere", CatSYSmark, "media pipeline: mixed predictability, input-dependent branches", Spec{
		Seed: 604, Period: 8192, ALU: 5,
		Hammocks: h(
			Hammock{Shape: ShapeIfElse, TLen: 3, NTLen: 3, TakenBias: 0.5, Noise: 0.65, TrainDiffers: true, TrainNoise: 0.15},
			Hammock{Shape: ShapeIfOnly, NTLen: 5, TakenBias: 0.75, Noise: 0.2},
		),
	})

	// ---- Client ---------------------------------------------------------
	register("eembc", CatClient, "predication-hostile control (category C/E: Dynamo must throttle)", Spec{
		Seed: 401, Period: 8192, ALU: 1, ChaseDepth: 1, ChaseSpan: 16 << 20,
		Hammocks: h(
			Hammock{Shape: ShapeIfElse, TLen: 5, NTLen: 5, TakenBias: 0.5, SlowCond: true, FeedsChase: true},
			Hammock{Shape: ShapeIfOnly, NTLen: 6, TakenBias: 0.5, Noise: 0.6},
		),
	})
	register("geekbench", CatClient, "mixed compute and branchy segments", Spec{
		Seed: 402, Period: 4096, ALU: 6,
		Hammocks: h(
			Hammock{Shape: ShapeIfElse, TLen: 3, NTLen: 3, TakenBias: 0.5, Noise: 0.5, TrainDiffers: true, TrainNoise: 0.05},
			Hammock{Shape: ShapeIfOnly, NTLen: 4, TakenBias: 0.8, Noise: 0.15},
		),
	})
	register("chrome", CatClient, "dispatch-heavy with Type-3 control flow", Spec{
		Seed: 403, Period: 8192, ALU: 3,
		Hammocks: h(
			Hammock{Shape: ShapeType3, TLen: 9, NTLen: 8, TakenBias: 0.5, Noise: 0.65, TrainDiffers: true, TrainNoise: 0.1},
			Hammock{Shape: ShapeIfElse, TLen: 2, NTLen: 2, TakenBias: 0.5, Noise: 0.45},
		),
	})
	register("compression", CatClient, "biased literal/match branch, big wins for predication", Spec{
		Seed: 404, Period: 16384, ALU: 2,
		Hammocks: h(
			Hammock{Shape: ShapeType3, TLen: 2, NTLen: 2, TakenBias: 0.5, Noise: 0.95, TrainDiffers: true, TrainNoise: 0.1},
		),
	})

	// ---- Server ---------------------------------------------------------
	register("lammps", CatServer, "dominant small H2P hammock (largest positive outlier)", Spec{
		Seed: 501, Period: 32768, ALU: 1,
		Hammocks: h(
			Hammock{Shape: ShapeType3, TLen: 2, NTLen: 2, TakenBias: 0.5, Noise: 1.0},
			Hammock{Shape: ShapeType3, TLen: 1, NTLen: 1, TakenBias: 0.5, Noise: 1.0},
		),
	})
	register("parsec", CatServer, "mixed server kernels, moderate H2P with memory traffic", Spec{
		Seed: 502, Period: 8192, ChaseDepth: 1, ChaseSpan: 2 << 20, ALU: 4,
		Hammocks: h(
			Hammock{Shape: ShapeIfElse, TLen: 4, NTLen: 4, TakenBias: 0.5, Noise: 0.6},
		),
	})
}
