package workload

import (
	"testing"

	"acb/internal/isa"
	"acb/internal/prog"
)

// TestBuildDeterministic: the same spec always generates the same program
// and memory image.
func TestBuildDeterministic(t *testing.T) {
	spec := Spec{
		Seed: 7, Period: 512, Iters: 1000, ALU: 3, ChaseDepth: 1, ChaseSpan: 1 << 16,
		Hammocks: []Hammock{
			{Shape: ShapeIfElse, TLen: 3, NTLen: 2, TakenBias: 0.5, Noise: 0.5},
		},
	}
	p1, m1 := spec.Build()
	p2, m2 := spec.Build()
	if len(p1) != len(p2) {
		t.Fatal("program length differs")
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("instruction %d differs", i)
		}
	}
	for addr := int64(0); addr < 1<<16; addr += 8 {
		if m1.Load(condTableBase+addr) != m2.Load(condTableBase+addr) {
			t.Fatalf("memory differs at %#x", condTableBase+addr)
		}
	}
}

// TestTrainVariantSameCodeDifferentData: BuildTrain must produce an
// identical program (same PCs for the compiler pass) with different
// condition data for TrainDiffers hammocks.
func TestTrainVariantSameCodeDifferentData(t *testing.T) {
	spec := Spec{
		Seed: 7, Period: 512, Iters: 1000,
		Hammocks: []Hammock{
			{Shape: ShapeIfElse, TLen: 3, NTLen: 2, TakenBias: 0.5,
				Noise: 0.9, TrainDiffers: true, TrainNoise: 0.0},
		},
	}
	p, m := spec.Build()
	tp, tm := spec.BuildTrain()
	if len(p) != len(tp) {
		t.Fatal("training program structure differs")
	}
	for i := range p {
		if p[i] != tp[i] {
			t.Fatalf("instruction %d differs between inputs", i)
		}
	}
	diff := 0
	for i := int64(0); i < 512; i++ {
		if m.Load(condTableBase+i*8)&1 != tm.Load(condTableBase+i*8)&1 {
			diff++
		}
	}
	if diff < 64 {
		t.Fatalf("only %d/512 condition bits differ between inputs", diff)
	}
}

// TestShapesHaveExpectedCFG: each generated shape produces the static
// hammock structure its name promises.
func TestShapesHaveExpectedCFG(t *testing.T) {
	build := func(h Hammock) []isa.Instruction {
		spec := Spec{Seed: 3, Period: 64, Iters: 10, Hammocks: []Hammock{h}}
		p, _ := spec.Build()
		return p
	}

	findBranch := func(p []isa.Instruction) int {
		for pc, in := range p {
			// The hammock branch is the first forward conditional branch.
			if in.Op == isa.Br && in.Target > pc {
				return pc
			}
		}
		return -1
	}

	t.Run("IfOnly", func(t *testing.T) {
		p := build(Hammock{Shape: ShapeIfOnly, NTLen: 4})
		pc := findBranch(p)
		g := prog.NewCFG(p)
		if r := g.Reconvergence(pc); r != p[pc].Target {
			t.Errorf("Type-1 recon = %d, want target %d", r, p[pc].Target)
		}
	})

	t.Run("IfElse", func(t *testing.T) {
		p := build(Hammock{Shape: ShapeIfElse, TLen: 3, NTLen: 4})
		pc := findBranch(p)
		g := prog.NewCFG(p)
		r := g.Reconvergence(pc)
		if r <= p[pc].Target {
			t.Errorf("Type-2 recon = %d, want beyond target %d", r, p[pc].Target)
		}
	})

	t.Run("Type3", func(t *testing.T) {
		p := build(Hammock{Shape: ShapeType3, TLen: 3, NTLen: 4})
		pc := findBranch(p)
		g := prog.NewCFG(p)
		r := g.Reconvergence(pc)
		if !(r > pc && r < p[pc].Target) {
			t.Errorf("Type-3 recon = %d, want between branch %d and target %d", r, pc, p[pc].Target)
		}
	})

	t.Run("NonConvergent", func(t *testing.T) {
		p := build(Hammock{Shape: ShapeNonConvergent, NTLen: 4})
		pc := findBranch(p)
		// The postdominator exists (the loop tail) but far beyond the
		// learning window on at least one path.
		for _, h := range prog.AnalyzeHammocks(p, 40) {
			if h.BranchPC == pc {
				t.Errorf("non-convergent hammock reconverges within 40: %+v", h)
			}
		}
	})
}

// TestNoiseControlsMispredictability: Noise is the probability the
// outcome deviates from the short repeating pattern, so agreement with
// the pattern must fall from 100% toward ~50% as Noise rises.
func TestNoiseControlsMispredictability(t *testing.T) {
	agreement := func(noise float64) int {
		spec := Spec{Seed: 11, Period: 2048, Iters: 10,
			Hammocks: []Hammock{{Shape: ShapeIfOnly, NTLen: 2, TakenBias: 0.5, Noise: noise}}}
		_, m := spec.Build()
		match := 0
		for i := int64(0); i < 2048; i++ {
			bit := m.Load(condTableBase+i*8) & 1
			if bit == i&1 { // the h=0 pattern is bit 0 of the index
				match++
			}
		}
		return match
	}
	clean, noisy := agreement(0.0), agreement(1.0)
	if clean != 2048 {
		t.Fatalf("noise 0.0 agreement = %d/2048, want exact pattern", clean)
	}
	if noisy > 1500 || noisy < 600 {
		t.Fatalf("noise 1.0 agreement = %d/2048, want near-random", noisy)
	}
}

// TestChaseTableIsPermutationCycle: every chase slot points at another
// in-table slot, forming valid pointers for unbounded chasing.
func TestChaseTableIsPermutationCycle(t *testing.T) {
	spec := Spec{Seed: 5, Iters: 10, ChaseDepth: 1, ChaseSpan: 1 << 12}
	_, m := spec.Build()
	slots := int64(1<<12) / 8
	seen := map[int64]bool{}
	addr := int64(chaseTableBase)
	for i := int64(0); i < slots; i++ {
		next := m.Load(addr)
		if next < chaseTableBase || next >= chaseTableBase+slots*8 {
			t.Fatalf("chase pointer %#x escapes the table", next)
		}
		if seen[addr] {
			break
		}
		seen[addr] = true
		addr = next
	}
	if len(seen) < int(slots)/2 {
		t.Fatalf("chase cycle covers only %d/%d slots", len(seen), slots)
	}
}

// TestFeedsChaseKeepsPointersValid: the body-selected offset still lands
// on a valid chase slot (offset 8 within an 8-byte-slot table wraps to a
// neighbouring slot).
func TestFeedsChaseKeepsPointersValid(t *testing.T) {
	spec := Spec{Seed: 5, Iters: 200, ChaseDepth: 1, ChaseSpan: 1 << 12,
		Hammocks: []Hammock{{Shape: ShapeIfElse, TLen: 2, NTLen: 2, TakenBias: 0.5, SlowCond: true, FeedsChase: true}}}
	p, m := spec.Build()
	st := isa.NewArchState(m)
	for i := 0; i < 20_000; i++ {
		res := st.Step(p)
		if res.Halted {
			break
		}
		if res.Inst.Op == isa.Load && res.EffAddr >= chaseTableBase &&
			res.EffAddr < chaseTableBase+(1<<12) {
			v := res.Value
			if v < chaseTableBase || v >= chaseTableBase+(1<<12) {
				t.Fatalf("chase load at %#x returned out-of-table pointer %#x", res.EffAddr, v)
			}
		}
	}
}

// TestSuiteIsBroad: the registered suite must cover every shape and the
// special behaviour classes the paper's evaluation depends on.
func TestSuiteIsBroad(t *testing.T) {
	var type3, nonconv, tails, slow, chase, train int
	for _, w := range All() {
		for _, h := range w.Spec.Hammocks {
			switch h.Shape {
			case ShapeType3:
				type3++
			case ShapeNonConvergent:
				nonconv++
			}
			if h.CorrelatedTail {
				tails++
			}
			if h.SlowCond {
				slow++
			}
			if h.FeedsChase {
				chase++
			}
			if h.TrainDiffers {
				train++
			}
		}
	}
	if type3 == 0 || nonconv == 0 || tails == 0 || slow == 0 || chase == 0 || train == 0 {
		t.Fatalf("suite misses behaviour classes: type3=%d nonconv=%d tails=%d slow=%d chase=%d train=%d",
			type3, nonconv, tails, slow, chase, train)
	}
}
