// Package workload provides the synthetic workload suite standing in for
// the paper's 70 traces (Table III). Each workload is a self-contained
// program + memory image targeting one class of branch behaviour the
// paper's evaluation depends on: dominant hard-to-predict convergent
// hammocks (lammps-like big winners), correlated branch pairs whose
// history predication destroys (omnetpp-like negative outliers),
// mispredictions shadowed by LLC misses (soplex-like flat outliers),
// predication-hostile bodies feeding long-latency loads (eembc/h264-like
// Dynamo targets), Type-1/2/3 convergence shapes, backward branches,
// non-convergent control flow, and predictable compute.
package workload

import (
	"fmt"

	"acb/internal/isa"
	"acb/internal/prog"
)

// HammockShape selects the static control-flow shape of a generated
// hammock (the paper's Fig. 3 types).
type HammockShape int

// Shapes.
const (
	ShapeIfOnly        HammockShape = iota // Type-1: IF without ELSE
	ShapeIfElse                            // Type-2: IF-ELSE with a skip jump
	ShapeType3                             // Type-3: taken path jumps back before the target
	ShapeNonConvergent                     // paths that do not reconverge within N
)

// Hammock describes one generated conditional hammock inside the loop.
type Hammock struct {
	Shape HammockShape
	// TLen and NTLen are the taken/not-taken body lengths in ALU
	// instructions (before shape-required jumps).
	TLen, NTLen int
	// TakenBias is the probability (0..1) that the branch is taken;
	// 0.5 with full-entropy data is maximally hard to predict.
	TakenBias float64
	// Noise is the probability that the outcome deviates from a short
	// repeating pattern: 0 makes the branch fully predictable, 1 makes it
	// purely biased-random.
	Noise float64
	// StoreInBody adds a store to the taken path.
	StoreInBody bool
	// FeedsLoad makes the hammock body compute the index of a load
	// consumed after reconvergence (the Sec. II-C3 critical-path
	// elongation pattern).
	FeedsLoad bool
	// CorrelatedTail emits a later branch perfectly correlated with this
	// hammock's condition, guarding a large non-predicable region
	// (the Sec. II-C2 pattern: predicating the hammock destroys the tail
	// branch's history correlation).
	CorrelatedTail bool
	// PatternTails emits this many later branches with deterministic
	// iteration patterns. With a stable global history their outcomes sit
	// at fixed history positions and TAGE predicts them; *mixed*
	// predication of the hammock (DMP's confidence-driven selection)
	// randomly removes history bits, shifting those positions and
	// thrashing the tables — the paper's Sec. V-C history-pollution
	// mechanism. ACB's consistent removal keeps positions fixed.
	PatternTails int
	// SlowCond derives the condition from the pointer-chase cursor (the
	// workload needs ChaseDepth >= 1): the branch both resolves late
	// (behind a likely LLC miss) and is unpredictable. Predicating it
	// serializes the body and everything after behind the slow load —
	// the paper's Sec. II-C3 critical-path-elongation pattern.
	SlowCond bool
	// FeedsChase makes the hammock body select the offset of the *next*
	// pointer-chase load (the loop-carried critical chain). Under
	// speculation the chase launches immediately down the predicted path;
	// under predication it waits for branch resolution every iteration —
	// the strongest form of the Sec. II-C3 inversion, hurting both ACB
	// (stall) and DMP (select-µop) until Dynamo throttles.
	FeedsChase bool
	// DualRecon gives the hammock two dynamic reconvergence points: most
	// not-taken instances skip to the near merge, but when a secondary
	// condition fires the control flow only re-joins at a farther merge.
	// Single-reconvergence ACB diverges on the far instances; the paper's
	// category-B1 discussion proposes learning multiple reconvergence
	// points (Sec. V-C), implemented here as core.Config.MultiRecon.
	DualRecon bool
	// TrainDiffers marks the branch data-dependent across inputs: the
	// profiling (compiler training) input uses TrainNoise instead of
	// Noise. The paper's recurring argument against compiler-assisted
	// predication: "training data-sets used by the compiler can be very
	// different from actual testing data" (Sec. II-B, V-C) — a branch
	// that looks predictable when profiled is never selected by DMP,
	// while ACB's run-time learning catches it.
	TrainDiffers bool
	TrainNoise   float64
}

// Spec composes a workload program.
type Spec struct {
	Name     string
	Iters    int64 // loop iterations
	Period   int64 // condition-table period (power of two)
	Seed     uint64
	Hammocks []Hammock
	// ChaseDepth adds a pointer-chase of this many dependent loads per
	// iteration over a working set of ChaseSpan bytes (drives LLC misses
	// and long-latency shadows).
	ChaseDepth int
	ChaseSpan  int64
	// ALU adds filler dependent ALU work per iteration.
	ALU int
	// PredictableLoops nests an inner predictable loop of this trip count
	// (naturally-converging loop branches).
	PredictableLoops int
}

const (
	condTableBase  = 0x10_0000 // per-hammock condition tables
	chaseTableBase = 0x80_0000
	scratchBase    = 0x4_0000
	dataTableBase  = 0x20_0000
)

// rng is a deterministic xorshift64 generator.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// Build generates the program and its initial memory image (the "actual
// execution" input).
func (s *Spec) Build() ([]isa.Instruction, *isa.Memory) {
	return s.build(false)
}

// BuildTrain generates the program with the profiling (compiler training)
// input: identical code, but hammocks marked TrainDiffers use their
// TrainNoise data distribution and the data seed differs.
func (s *Spec) BuildTrain() ([]isa.Instruction, *isa.Memory) {
	return s.build(true)
}

func (sp *Spec) build(train bool) ([]isa.Instruction, *isa.Memory) {
	// Work on a copy: Build must not write defaults back into the shared
	// Spec, since the parallel experiment runner builds the same workload
	// from several goroutines at once.
	s := *sp
	if s.Period == 0 {
		s.Period = 4096
	}
	if s.Iters == 0 {
		s.Iters = 100_000
	}
	seed := s.Seed
	if train {
		seed ^= 0x5DEECE66D
	}
	r := newRNG(seed)
	m := isa.NewMemory()
	b := prog.NewBuilder()

	// Register conventions:
	//   r0  loop counter          r1  iteration limit
	//   r2  condition value       r3  chase cursor
	//   r4-r6 scratch             r7  accumulator
	//   r8  loop-compare scratch  r9  table index scratch
	//   r10-r13 hammock scratch   r14 inner-loop counter
	//   r15 data value
	b.MovI(isa.R0, 0)
	b.MovI(isa.R1, s.Iters)
	b.MovI(isa.R7, 0)
	b.MovI(isa.R3, chaseTableBase)

	// Condition tables: one word per hammock per period slot, bit 0 = the
	// outcome. Pattern-based with noise so predictability is tunable.
	for h := range s.Hammocks {
		hm := &s.Hammocks[h]
		base := int64(condTableBase) + int64(h)*s.Period*8
		noise := hm.Noise
		if train && hm.TrainDiffers {
			noise = hm.TrainNoise
		}
		for i := int64(0); i < s.Period; i++ {
			patternBit := (i >> uint(h%3)) & 1 // short repeating pattern
			bit := patternBit
			if r.float() < noise {
				if r.float() < hm.TakenBias {
					bit = 1
				} else {
					bit = 0
				}
			}
			filler := int64(r.next() & 0xFFFF)
			m.Store(base+i*8, bit|filler<<1)
		}
	}

	// Pointer-chase table: a random cycle over ChaseSpan bytes.
	if s.ChaseDepth > 0 {
		span := s.ChaseSpan
		if span == 0 {
			span = 1 << 20
		}
		slots := span / 8
		perm := make([]int64, slots)
		for i := range perm {
			perm[i] = int64(i)
		}
		for i := int64(len(perm)) - 1; i > 0; i-- {
			j := int64(r.next() % uint64(i+1))
			perm[i], perm[j] = perm[j], perm[i]
		}
		for i := int64(0); i < slots; i++ {
			m.Store(chaseTableBase+perm[i]*8, chaseTableBase+perm[(i+1)%slots]*8)
		}
	}

	// Data table for FeedsLoad hammocks.
	for i := int64(0); i < 4096; i++ {
		m.Store(dataTableBase+i*8, int64(r.next()&0xFFFF))
	}

	b.Label("loop")

	// Pointer chase: dependent loads, each a potential LLC miss.
	for d := 0; d < s.ChaseDepth; d++ {
		b.Load(isa.R3, isa.R3, 0)
	}

	// Inner predictable loop.
	if s.PredictableLoops > 0 {
		b.MovI(isa.R14, int64(s.PredictableLoops))
		b.Label("inner")
		b.AddI(isa.R7, isa.R7, 1)
		b.AddI(isa.R14, isa.R14, -1)
		b.Brnz(isa.R14, "inner")
	}

	for h := range s.Hammocks {
		s.emitHammock(b, h, &s.Hammocks[h])
	}

	// Filler ALU work: short dependent chains round-robined over three
	// registers, so wider cores can extract parallelism across them.
	fillerRegs := []isa.Reg{isa.R7, isa.R12, isa.R15}
	for i := 0; i < s.ALU; i++ {
		r := fillerRegs[i%len(fillerRegs)]
		b.AddI(r, r, int64(i&7)+1)
	}

	b.AddI(isa.R0, isa.R0, 1)
	b.Sub(isa.R8, isa.R0, isa.R1)
	b.Brnz(isa.R8, "loop")
	b.Halt()
	return b.MustBuild(), m
}

// emitHammock emits one hammock: load its condition, branch, bodies per
// shape, reconvergence, and optional correlated tail.
func (s *Spec) emitHammock(b *prog.Builder, h int, hm *Hammock) {
	base := int64(condTableBase) + int64(h)*s.Period*8
	lbl := func(kind string) string { return fmt.Sprintf("h%d_%s", h, kind) }

	if hm.SlowCond {
		// Condition from the pointer-chase cursor: available only after
		// the chase load resolves (likely deep in the hierarchy), and
		// effectively random (bit 3 of a permuted address).
		b.ShrI(isa.R2, isa.R3, 3)
		b.AndI(isa.R10, isa.R2, 1)
		b.MovI(isa.R4, base) // scratch address for StoreInBody
	} else {
		// r2 = condition word; bit 0 decides.
		b.AndI(isa.R9, isa.R0, s.Period-1)
		b.MulI(isa.R9, isa.R9, 8)
		b.MovI(isa.R4, base)
		b.Add(isa.R4, isa.R4, isa.R9)
		b.Load(isa.R2, isa.R4, 0)
		b.AndI(isa.R10, isa.R2, 1)
	}

	emitBody := func(n int, reg isa.Reg, stride int64) {
		for i := 0; i < n; i++ {
			b.AddI(reg, reg, stride+int64(i))
		}
		if hm.FeedsChase {
			// Path-specific next-pointer field offset (both land on valid
			// chase slots: every word of the table holds a pointer).
			b.MovI(isa.R11, int64((stride&4)*2)) // taken(3)->0, not-taken(7)->8
		}
	}

	switch hm.Shape {
	case ShapeIfOnly:
		// brz taken -> skip body (target == reconvergence: Type-1).
		b.Brz(isa.R10, lbl("end"))
		emitBody(hm.NTLen, isa.R7, 3)
		if hm.StoreInBody {
			b.Store(isa.R4, 8*int64(s.Period), isa.R7)
		}
		if hm.FeedsLoad {
			b.AndI(isa.R11, isa.R7, 4095)
			b.MulI(isa.R11, isa.R11, 8)
		}
		b.Label(lbl("end"))

	case ShapeIfElse:
		b.Brz(isa.R10, lbl("else"))
		emitBody(hm.TLen, isa.R7, 3)
		if hm.StoreInBody {
			b.Store(isa.R4, 8*int64(s.Period), isa.R7)
		}
		if hm.FeedsLoad {
			b.AndI(isa.R11, isa.R7, 4095)
			b.MulI(isa.R11, isa.R11, 8)
		}
		b.Jmp(lbl("end"))
		b.Label(lbl("else"))
		emitBody(hm.NTLen, isa.R7, 7)
		if hm.FeedsLoad {
			b.AndI(isa.R11, isa.R2, 4095)
			b.MulI(isa.R11, isa.R11, 8)
		}
		if hm.DualRecon {
			// Secondary condition (bit 1 of the condition word): when it
			// fires, the not-taken path re-joins only at the far merge.
			b.ShrI(isa.R10, isa.R2, 1)
			b.AndI(isa.R10, isa.R10, 1)
			b.Brnz(isa.R10, lbl("far"))
		}
		b.Label(lbl("end"))
		if hm.DualRecon {
			// Near-merge tail shared by most instances.
			b.AddI(isa.R7, isa.R7, 1)
			b.AddI(isa.R7, isa.R7, 2)
			b.Label(lbl("far"))
			b.AddI(isa.R7, isa.R7, 4)
		}

	case ShapeType3:
		// Taken path lives after the not-taken path's fall-through region
		// and jumps back to the reconvergence point between branch and
		// target (Fig. 3, Type-3).
		b.Brnz(isa.R10, lbl("tpath"))
		emitBody(hm.NTLen, isa.R7, 7)
		b.Label(lbl("recon"))
		b.AddI(isa.R7, isa.R7, 1)
		b.Jmp(lbl("end"))
		b.Label(lbl("tpath"))
		emitBody(hm.TLen, isa.R7, 3)
		if hm.FeedsLoad {
			b.AndI(isa.R11, isa.R7, 4095)
			b.MulI(isa.R11, isa.R11, 8)
		}
		b.Jmp(lbl("recon"))
		b.Label(lbl("end"))

	case ShapeNonConvergent:
		// The taken path flows into a different loop tail; no common
		// reconvergence within the observation window.
		b.Brz(isa.R10, lbl("other"))
		emitBody(hm.NTLen, isa.R7, 3)
		b.Jmp(lbl("end"))
		b.Label(lbl("other"))
		emitBody(hm.NTLen/2+1, isa.R12, 5)
		for i := 0; i < 48; i++ { // long divergent region
			b.AddI(isa.R12, isa.R12, 1)
		}
		b.Label(lbl("end"))
	}

	if hm.FeedsLoad {
		// A long-latency load whose address depends on the hammock body,
		// consumed immediately: predication chains it behind the branch.
		b.MovI(isa.R13, dataTableBase)
		b.Add(isa.R13, isa.R13, isa.R11)
		b.Load(isa.R15, isa.R13, 0)
		b.Add(isa.R7, isa.R7, isa.R15)
	}

	if hm.FeedsChase {
		// The next chase step reads through the body-selected field: the
		// loop-carried chain now passes through the hammock's outcome.
		b.Add(isa.R13, isa.R3, isa.R11)
		b.Load(isa.R3, isa.R13, 0)
	}

	if hm.CorrelatedTail {
		// A branch perfectly correlated with the hammock condition,
		// placed beyond the reconvergence point, guarding a region too
		// large for predication (beyond the N=40 learning window). With
		// speculative-history update the predictor learns the
		// correlation; predicating the hammock removes it from history,
		// so this branch starts mispredicting instead (Sec. II-C2 — the
		// paper's B1/B2 example and the omnetpp negative outlier).
		b.AndI(isa.R10, isa.R2, 1)
		b.Brz(isa.R10, lbl("tail_skip"))
		for i := 0; i < 44; i++ {
			b.AddI(isa.R7, isa.R7, 2)
		}
		b.Label(lbl("tail_skip"))
	}

	for k := 0; k < hm.PatternTails; k++ {
		// Deterministic pattern of the iteration counter: bit k+1 of
		// (r0 ^ r0>>1). Predictable via the branch's own outcomes at
		// fixed global-history positions — and only then.
		b.ShrI(isa.R12, isa.R0, 1)
		b.Xor(isa.R12, isa.R12, isa.R0)
		b.ShrI(isa.R12, isa.R12, int64(k+1))
		b.AndI(isa.R12, isa.R12, 1)
		b.Brz(isa.R12, lbl(fmt.Sprintf("pt%d", k)))
		b.AddI(isa.R7, isa.R7, 5)
		b.AddI(isa.R7, isa.R7, 2)
		b.Label(lbl(fmt.Sprintf("pt%d", k)))
	}
}
