package workload_test

import (
	"testing"

	"acb/internal/isa"
	"acb/internal/workload"
)

// TestAllWorkloadsBuildAndRun builds every workload and runs it
// functionally for a slice, checking it makes progress and never escapes
// its program.
func TestAllWorkloadsBuildAndRun(t *testing.T) {
	all := workload.All()
	if len(all) < 25 {
		t.Fatalf("suite has only %d workloads", len(all))
	}
	for _, w := range all {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			p, m := w.Build()
			if len(p) == 0 {
				t.Fatal("empty program")
			}
			st := isa.NewArchState(m)
			steps, halted := st.Run(p, 50_000)
			if halted {
				t.Fatalf("halted after only %d steps (iteration budget too small)", steps)
			}
			if steps != 50_000 {
				t.Fatalf("ran %d steps, want full 50000", steps)
			}
		})
	}
}

func TestCategories(t *testing.T) {
	cats := workload.Categories()
	want := []string{workload.CatClient, workload.CatFSPEC, workload.CatISPEC, workload.CatSPEC17, workload.CatSYSmark, workload.CatServer}
	if len(cats) != len(want) {
		t.Fatalf("categories = %v, want %v", cats, want)
	}
	for i := range want {
		if cats[i] != want[i] {
			t.Fatalf("categories = %v, want %v", cats, want)
		}
	}
	for _, c := range cats {
		if len(workload.ByCategory(c)) == 0 {
			t.Errorf("category %s empty", c)
		}
	}
}

func TestByName(t *testing.T) {
	w, err := workload.ByName("lammps")
	if err != nil {
		t.Fatal(err)
	}
	if w.Category != workload.CatServer {
		t.Errorf("lammps category = %s", w.Category)
	}
	if _, err := workload.ByName("nope"); err == nil {
		t.Error("expected error for unknown workload")
	}
}
