package workload

import (
	"fmt"
	"strings"

	"acb/internal/isa"
	"acb/internal/trace"
)

// Tier and category labels for non-synthetic workloads.
const (
	CatTrace        = "Trace"
	CatAdversarial  = "Adversarial"
	TierTrace       = "trace"
	TierAdversarial = "adversarial"
)

// TracePrefix selects a trace-replay workload: "trace:<path>".
const TracePrefix = "trace:"

// AdversarialSelector expands to the whole promoted adversarial corpus.
const AdversarialSelector = "tier=adversarial"

// FromTrace loads a recorded branch trace as a replayable workload. The
// trace must be self-contained (embedded program and memory image) and
// carry this build's ISA fingerprint; the recorded branch stream is
// re-verified against a functional run before the workload is handed out,
// so a stale or corrupt trace fails at load time, not mid-experiment.
func FromTrace(path string) (Workload, error) {
	t, err := trace.DecodeFile(path)
	if err != nil {
		return Workload{}, err
	}
	if err := t.Verify(); err != nil {
		return Workload{}, fmt.Errorf("%s: %w", path, err)
	}
	mirrors := fmt.Sprintf("recorded %s trace of %q (seed %d, %d branch records)",
		t.Header.Kind, t.Header.Source, t.Header.Seed, len(t.Branches))
	return traceWorkload(TracePrefix+path, CatTrace, TierTrace, mirrors, t), nil
}

// traceWorkload wraps a decoded trace as a Workload. The program slice is
// shared (engines never mutate it); the memory image is rebuilt fresh on
// every Build so concurrent runs stay independent.
func traceWorkload(name, cat, tier, mirrors string, t *trace.Trace) Workload {
	w := Workload{Name: name, Category: cat, Tier: tier, Mirrors: mirrors}
	w.build = func(bool) ([]isa.Instruction, *isa.Memory) {
		return t.Prog, t.Memory()
	}
	return w
}

// Resolve maps one workload selector to a Workload: a registered synthetic
// name, "trace:<path>" for a recorded trace file, or the name of a
// promoted adversarial corpus entry (with or without its "adv:" prefix).
func Resolve(name string) (Workload, error) {
	if strings.HasPrefix(name, TracePrefix) {
		return FromTrace(strings.TrimPrefix(name, TracePrefix))
	}
	if w, err := ByName(name); err == nil {
		return w, nil
	}
	advs, err := Adversarial()
	if err != nil {
		return Workload{}, err
	}
	for _, w := range advs {
		if w.Name == name || strings.TrimPrefix(w.Name, AdvPrefix) == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workload: unknown workload %q (synthetic suite, %q, %q or an adversarial entry)",
		name, TracePrefix+"<file>", AdversarialSelector)
}

// Expand resolves a list of selectors, expanding the class selector
// "tier=adversarial" to the whole promoted corpus. Duplicate names are
// rejected: experiment caches key on workload name.
func Expand(names []string) ([]Workload, error) {
	var out []Workload
	seen := make(map[string]bool)
	add := func(w Workload) error {
		if seen[w.Name] {
			return fmt.Errorf("workload: duplicate workload %q in selection", w.Name)
		}
		seen[w.Name] = true
		out = append(out, w)
		return nil
	}
	for _, n := range names {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		if n == AdversarialSelector {
			advs, err := Adversarial()
			if err != nil {
				return nil, err
			}
			for _, w := range advs {
				if err := add(w); err != nil {
					return nil, err
				}
			}
			continue
		}
		w, err := Resolve(n)
		if err != nil {
			return nil, err
		}
		if err := add(w); err != nil {
			return nil, err
		}
	}
	return out, nil
}
