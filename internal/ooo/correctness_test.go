package ooo_test

import (
	"testing"

	"acb/internal/bpu"
	"acb/internal/config"
	"acb/internal/core"
	"acb/internal/difftest"
	"acb/internal/dmp"
	"acb/internal/isa"
	"acb/internal/ooo"
	"acb/internal/workload"
)

// TestSchemesAreValueCorrect is the central correctness property of the
// whole model: for randomized programs, the final architectural registers
// of the timing simulation — under plain speculation, ACB (stall +
// register transparency), eager ACB, DMP (forked-RAT select-µops) and DHP
// — must equal a pure functional run's at the same retired-instruction
// count. This exercises wrong-path execution, flush recovery, dual-path
// fetch, transparency moves, select merges, divergence flushes and LSQ
// invalidation together.
func TestSchemesAreValueCorrect(t *testing.T) {
	seeds := []uint64{1, 2, 3, 5, 8, 13, 21, 34}
	if testing.Short() {
		seeds = seeds[:3]
	}
	const budget = 60_000

	for _, seed := range seeds {
		spec := difftest.RandomSpec(seed)
		p, m := spec.Build()

		schemes := map[string]func() ooo.Scheme{
			"baseline":     func() ooo.Scheme { return nil },
			"acb":          func() ooo.Scheme { return core.New(core.DefaultConfig()) },
			"acb-nodynamo": func() ooo.Scheme { cfg := core.DefaultConfig(); cfg.UseDynamo = false; return core.New(cfg) },
			"acb-eager":    func() ooo.Scheme { cfg := core.DefaultConfig(); cfg.Eager = true; return core.New(cfg) },
			"dmp": func() ooo.Scheme {
				return dmp.New(dmp.DefaultConfig(dmp.ModeDMP), dmp.Profile(p, m, profCfg()))
			},
			"dhp": func() ooo.Scheme {
				return dmp.New(dmp.DefaultConfig(dmp.ModeDHP), dmp.Profile(p, m, profCfg()))
			},
		}

		for name, mk := range schemes {
			c := ooo.NewWithMemory(config.Skylake(), p, bpu.NewTAGE(bpu.DefaultTAGEConfig()), mk(), m.Clone())
			res, err := c.Run(budget)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, name, err)
			}

			// Replay functionally for exactly res.Retired instructions.
			ref := isa.NewArchState(m.Clone())
			ref.Run(p, res.Retired)

			for r := 0; r < isa.NumRegs; r++ {
				if res.FinalRegs[r] != ref.Regs[r] {
					t.Errorf("seed %d %s: r%d = %d, want %d (retired %d)",
						seed, name, r, res.FinalRegs[r], ref.Regs[r], res.Retired)
				}
			}
			if t.Failed() {
				t.FailNow()
			}
		}
	}
}

func profCfg() dmp.ProfileConfig {
	cfg := dmp.DefaultProfileConfig()
	cfg.Steps = 100_000
	return cfg
}

// TestCommittedMemoryMatches verifies committed store data: a workload
// with stores runs under ACB and the final committed memory words equal
// the functional run's.
func TestCommittedMemoryMatches(t *testing.T) {
	spec := workload.Spec{
		Seed: 99, Iters: 1 << 40, Period: 512,
		Hammocks: []workload.Hammock{
			{Shape: workload.ShapeIfElse, TLen: 3, NTLen: 4, TakenBias: 0.5, Noise: 0.9, StoreInBody: true},
			{Shape: workload.ShapeIfOnly, NTLen: 5, TakenBias: 0.5, Noise: 0.7, StoreInBody: true},
		},
	}
	p, m := spec.Build()

	c := ooo.NewWithMemory(config.Skylake(), p, bpu.NewTAGE(bpu.DefaultTAGEConfig()),
		core.New(core.DefaultConfig()), m.Clone())
	res, err := c.Run(80_000)
	if err != nil {
		t.Fatal(err)
	}

	ref := isa.NewArchState(m.Clone())
	ref.Run(p, res.Retired)

	for r := 0; r < isa.NumRegs; r++ {
		if res.FinalRegs[r] != ref.Regs[r] {
			t.Errorf("r%d = %d, want %d", r, res.FinalRegs[r], ref.Regs[r])
		}
	}
}
