// Checkpointed starts and windowed measurement: the detailed-core half of
// SMARTS-style sampled simulation (internal/sample). A window worker
// restores an architectural checkpoint produced by the functional
// emulator, optionally replays a cache-warming trace, runs a detailed but
// unmeasured warm-up stretch, and then measures a bounded span whose
// statistics are reported in isolation.

package ooo

import (
	"context"

	"acb/internal/bpu"
	"acb/internal/config"
	"acb/internal/isa"
	"acb/internal/mem"
)

// NewFromCheckpoint builds a core whose architectural state — registers,
// memory, PC — starts at ckpt instead of the program's entry. The
// functional oracle and the committed image are copy-on-write snapshots of
// the checkpoint's memory, so the caller may reuse ckpt freely (including
// for concurrent window jobs). Microarchitectural
// state (pipeline, caches, scheme tables) starts cold; callers warm the
// predictor by passing one already trained on the fast-forwarded region
// (bpu.Warm/Cloner) and the caches via WarmHierarchy, then hide the rest
// of the cold-start transient behind RunWindow's warm-up span.
func NewFromCheckpoint(cfg config.Core, program []isa.Instruction, predictor bpu.Predictor, scheme Scheme, ckpt *isa.Checkpoint) *Core {
	c := New(cfg, program, predictor, scheme)
	c.oracleMem = isa.NewOverlay(ckpt.Mem.CloneCOW())
	c.oracle = isa.NewArchState(c.oracleMem)
	c.oracle.PC = ckpt.PC
	c.oracle.Regs = ckpt.Regs
	c.commitMem = ckpt.Mem.CloneCOW()
	c.fetchPC = ckpt.PC
	// The initial RAT maps logical register r to physical register r
	// (New); seeding those physical registers makes the checkpointed
	// values both readable by renamed consumers and visible as the
	// committed state.
	for r := 0; r < isa.NumRegs; r++ {
		c.prf[r].val = ckpt.Regs[r]
	}
	return c
}

// MemRef is one architectural memory reference of the fast-forwarded
// region, used to functionally warm the cache hierarchy before a sampled
// window runs.
type MemRef struct {
	Addr  int64
	Store bool
}

// SetHierarchy replaces the core's data-cache hierarchy with h — the
// continuous-warming path of sampled simulation, where one hierarchy is
// fed every architectural reference of the fast-forwarded region and each
// window receives a clone of its state (mem.Hierarchy.Clone). Must be
// called before the core first runs; swapping the hierarchy mid-run would
// desynchronize in-flight load latencies from the tag state.
func (c *Core) SetHierarchy(h *mem.Hierarchy) {
	if c.cycle != 0 {
		panic("ooo: SetHierarchy after the core has run")
	}
	c.hier = h
}

// WarmHierarchy replays an architectural access trace into the data-cache
// hierarchy, installing tag state as if the references had executed — the
// bounded-trace alternative to SetHierarchy when only a recent address
// window is available. Hit/miss counters advance during the replay;
// RunWindow's measured span reports deltas, so warming never leaks into
// window statistics as long as it happens before the measured span begins.
func (c *Core) WarmHierarchy(refs []MemRef) {
	for _, r := range refs {
		if r.Store {
			c.hier.StoreCommit(r.Addr)
		} else {
			c.hier.LoadLatency(r.Addr)
		}
	}
}

// Retired returns the total architecturally-useful instructions retired so
// far (across every Run/RunContext/RunWindow call on this core).
func (c *Core) Retired() int64 { return c.retired }

// CommitMemory returns the retired (architectural) memory image, or nil if
// the core has not run yet. Sampled-simulation verification diffs it
// against a functional reference at window boundaries; callers must not
// mutate it.
func (c *Core) CommitMemory() *isa.Memory { return c.commitMem }

// measureMark snapshots every cumulative counter a Result reports, so a
// measured span can be reported as deltas.
type measureMark struct {
	cycle   int64
	retired int64
	s       runStats
	l1h     int64
	l1m     int64
	llch    int64
	llcm    int64
}

func (c *Core) mark() measureMark {
	return measureMark{
		cycle:   c.cycle,
		retired: c.retired,
		s:       c.s,
		l1h:     c.hier.L1D.Hits(),
		l1m:     c.hier.L1D.Misses(),
		llch:    c.hier.LLC.Hits(),
		llcm:    c.hier.LLC.Misses(),
	}
}

// RunWindow advances the core by warmup retired instructions — detailed
// but unmeasured, so the cold-start transient of a checkpointed start is
// excluded — and then by measure more, returning statistics for the
// measured span only. Cycle and event counters are deltas from the end of
// the warm-up; FinalRegs and Halted describe the core's state when the
// window ends (retirement is architectural, so FinalRegs at a retired
// count always equals the functional emulator at the same count).
// Retirement is checked at cycle granularity, so the span may overshoot
// its target by up to RetireWidth-1 instructions; Result.Retired reports
// the actual measured width. PerBranch and CPI are not reported for
// windows. A program that halts during warm-up yields a zero-width
// measured span with Halted set.
func (c *Core) RunWindow(ctx context.Context, warmup, measure int64) (Result, error) {
	warmRes, err := c.RunContext(ctx, c.retired+warmup)
	if err != nil {
		return warmRes, err
	}
	m := c.mark()
	if warmRes.Halted {
		return c.windowResult(m, true), nil
	}
	res, err := c.RunContext(ctx, c.retired+measure)
	if err != nil {
		return res, err
	}
	return c.windowResult(m, res.Halted), nil
}

// windowResult builds a Result covering everything since the mark.
func (c *Core) windowResult(m measureMark, halted bool) Result {
	res := Result{
		Scheme:          c.schemeName(),
		Config:          c.cfg.Name,
		Cycles:          c.cycle - m.cycle,
		Retired:         c.retired - m.retired,
		CondBranches:    c.s.condBranches - m.s.condBranches,
		Branches:        c.s.branches - m.s.branches,
		Mispredicts:     c.s.mispredRetired - m.s.mispredRetired,
		Flushes:         c.s.flushes - m.s.flushes,
		DivFlushes:      c.s.divFlushes - m.s.divFlushes,
		Predications:    c.s.predications - m.s.predications,
		Allocations:     c.s.allocations - m.s.allocations,
		WrongPathAllocs: c.s.wrongPathAllocs - m.s.wrongPathAllocs,
		SelectUops:      c.s.selectUops - m.s.selectUops,
		AllocStallSlots: c.s.allocStallSlots - m.s.allocStallSlots,
		TransparentOps:  c.s.transparentOps - m.s.transparentOps,
		InvalidatedMem:  c.s.invalidatedMem - m.s.invalidatedMem,
		LoadForwards:    c.s.loadForwards - m.s.loadForwards,
		L1Hits:          c.hier.L1D.Hits() - m.l1h,
		L1Misses:        c.hier.L1D.Misses() - m.l1m,
		LLCHits:         c.hier.LLC.Hits() - m.llch,
		LLCMisses:       c.hier.LLC.Misses() - m.llcm,
		Halted:          halted,
	}
	if res.Cycles > 0 {
		res.IPC = float64(res.Retired) / float64(res.Cycles)
	}
	for r := 0; r < isa.NumRegs; r++ {
		res.FinalRegs[r] = c.prf[c.commitRat[r]].val
	}
	return res
}
