package ooo

import (
	"fmt"

	"acb/internal/isa"
)

// fetchStage fetches up to FetchWidth instructions into the decoupled
// fetch queue, following branch predictions, or — while a predication
// context is open — walking both directions of the predicated branch up to
// its reconvergence point.
func (c *Core) fetchStage() {
	for i := 0; i < c.cfg.FetchWidth; i++ {
		if c.fqLen >= c.fetchQCap || c.fetchParked {
			return
		}
		var consumed, stop bool
		if c.ctxPhase > 0 {
			consumed, stop = c.fetchCtxSlot()
		} else {
			consumed, stop = c.fetchNormalSlot()
		}
		// Reaching a slot function always mutates front-end state (a fetch,
		// a phase transition, parking, ...), so the cycle made progress.
		c.progress = true
		if stop {
			return
		}
		if !consumed {
			i-- // phase transition consumed no fetch slot
		}
	}
}

// newFetched reserves the next fetch-queue ring slot and initialises its
// common fields in place. Every call is paired with exactly one pushFetch,
// which commits the slot. The reset is field-wise (not a composite-literal
// assignment) to avoid copying the 184-byte struct through a stack
// temporary; pred is deliberately left stale — readers are guarded by
// hasPred.
func (c *Core) newFetched(pc int, inst *isa.Instruction) *fetchedInst {
	fi := c.fqReserve()
	fi.pc = pc
	fi.inst = inst
	fi.readyCycle = c.cycle + int64(c.cfg.FrontEndLatency)
	fi.wrongPath = c.onWrongPath
	fi.role = RoleNone
	fi.ctx = nil
	fi.pathTaken = false
	fi.ctxSwitch = false
	fi.ctxClose = nil
	fi.hasPred = false
	fi.predTaken = false
	fi.trueKnown = false
	fi.trueTaken = false
	fi.histAtFetch = c.pred.History()
	fi.wrongTok = 0
	if c.pendingClose != nil {
		fi.ctxClose = c.pendingClose
		c.pendingClose = nil
	}
	return fi
}

// fetchNormalSlot fetches one instruction outside any predication context.
func (c *Core) fetchNormalSlot() (consumed, stop bool) {
	pc := c.fetchPC
	if pc < 0 || pc >= len(c.prog) {
		// Wrong-path fetch ran off the program; park until a flush.
		c.fetchParked = true
		return false, true
	}
	inst := &c.prog[pc]
	fi := c.newFetched(pc, inst)
	trueKnown := !c.onWrongPath && !c.oracleHalted
	if c.dbgRing != nil {
		c.dbgLog("fetch pc=%d wrong=%v oracle=%d", pc, c.onWrongPath, c.oracle.PC)
	}
	if trueKnown && c.oracle.PC != pc {
		extra := fmt.Sprintf(" liveCtxs=%d snaps=%d pendingClose=%v lastWrong=%s@pc%d cyc%d",
			len(c.liveCtxs), len(c.snapshots), c.pendingClose != nil, c.dbgWrongWhy, c.dbgWrongPC, c.dbgWrongCyc)
		for _, lc := range c.liveCtxs {
			extra += fmt.Sprintf(" [ctx%d pc=%d recon=%d closed=%v div=%v wrong=%v scanFail=%v done=%v]",
				lc.id, lc.branchPC, lc.spec.ReconPC, lc.closed, lc.diverged, lc.wrongPath, lc.scanFailed, lc.branchDone)
		}
		panic(fmt.Sprintf("ooo: oracle desync at fetch: oracle pc=%d fetch pc=%d cycle=%d%s",
			c.oracle.PC, pc, c.cycle, extra))
	}

	switch inst.Op {
	case isa.Halt:
		c.fetchParked = true
		if trueKnown {
			c.oracleHalted = true
		}
		c.pushFetch(fi)
		c.emitFetchEvent(fi, false, 0)
		return true, true

	case isa.Jmp:
		c.fetchPC = inst.Target
		if trueKnown {
			c.oracle.Step(c.prog)
		}
		c.pushFetch(fi)
		c.emitFetchEvent(fi, true, inst.Target)
		return true, false

	case isa.Br:
		return c.fetchBranch(pc, inst, fi, trueKnown)

	default:
		c.fetchPC = pc + 1
		if trueKnown {
			c.oracle.Step(c.prog)
		}
		c.pushFetch(fi)
		c.emitFetchEvent(fi, false, 0)
		return true, false
	}
}

// fetchBranch handles a conditional branch in normal fetch: predict it,
// consult the predication scheme, and either speculate or open a context.
func (c *Core) fetchBranch(pc int, inst *isa.Instruction, fi *fetchedInst, trueKnown bool) (consumed, stop bool) {
	trueTaken := false
	if trueKnown {
		trueTaken = evalBranchOn(inst, &c.oracle.Regs)
	}
	pred := c.pred.Predict(uint64(pc), trueTaken)
	fi.hasPred = true
	fi.pred = pred
	fi.trueKnown = trueKnown
	fi.trueTaken = trueTaken

	if c.scheme != nil {
		if spec, ok := c.scheme.ShouldPredicate(pc, pred.Taken, pred.Conf, c.pred.History()); ok {
			c.openCtx(pc, spec, trueKnown, trueTaken, fi)
			c.pushFetch(fi)
			c.emitFetchEvent(fi, spec.FirstTaken, inst.Target)
			return true, false
		}
	}

	// Normal speculation.
	fi.predTaken = pred.Taken
	c.pred.PushHistory(uint64(pc), pred.Taken)
	if pred.Taken {
		c.fetchPC = inst.Target
	} else {
		c.fetchPC = pc + 1
	}
	if trueKnown {
		c.oracle.Step(c.prog)
		if pred.Taken != trueTaken {
			tok := c.newTok()
			fi.wrongTok = tok
			c.wrongTok = tok
			c.onWrongPath = true
			c.dbgWrongPC, c.dbgWrongCyc, c.dbgWrongWhy = pc, c.cycle, "mispredict"
		}
	}
	c.pushFetch(fi)
	c.emitFetchEvent(fi, pred.Taken, inst.Target)
	return true, false
}

// openCtx opens a predication context at the conditional branch at pc. For
// correct-path contexts it snapshots the oracle and scans the
// architecturally-correct path to the reconvergence point.
func (c *Core) openCtx(pc int, spec PredSpec, trueKnown, trueTaken bool, fi *fetchedInst) {
	c.ctxIDGen++
	ctx := &ctxState{
		id:        c.ctxIDGen,
		spec:      spec,
		branchPC:  pc,
		branchSeq: -1,
		wrongPath: c.onWrongPath,
		tok:       c.newTok(),
	}
	fi.role = RolePredBranch
	fi.ctx = ctx
	c.liveCtxs = append(c.liveCtxs, ctx)
	c.s.fetchCtxOpens++
	if c.dbgRing != nil {
		c.dbgLog("openCtx ctx%d pc=%d recon=%d firstTaken=%v wrong=%v trueKnown=%v", ctx.id, pc, spec.ReconPC, spec.FirstTaken, ctx.wrongPath, trueKnown)
	}
	if c.trace != nil {
		c.trace.Emit(EvDualFetchOpen, pc, ctx.id, int64(spec.ReconPC))
	}

	if trueKnown {
		c.snapshots = append(c.snapshots, oracleSnap{
			ctx:  ctx,
			regs: c.oracle.Regs,
			pc:   c.oracle.PC,
			mem:  c.oracleMem.SnapshotWrites(),
		})
		ctx.trueKnown = true
		ctx.trueTaken = trueTaken
		c.oracle.Step(c.prog) // the branch itself
		steps := 0
		for c.oracle.PC != spec.ReconPC {
			if steps >= spec.MaxBody || c.prog[c.oracle.PC].Op == isa.Halt {
				ctx.scanFailed = true
				break
			}
			ctx.truePath = append(ctx.truePath, c.oracle.PC)
			c.oracle.Step(c.prog)
			steps++
		}
	}

	if spec.PushTrueHistory {
		t := trueTaken
		if !trueKnown {
			t = fi.pred.Taken
		}
		c.pred.PushHistory(uint64(pc), t)
	}

	// Initialize the dual-path walk.
	c.ctx = ctx
	c.ctxPhase = 1
	c.pendingSwtch = false
	c.ctxTrueIdx = 0
	inst := &c.prog[pc]
	if spec.FirstTaken {
		c.ctxNext = inst.Target
		c.ctxD2Start = pc + 1
		c.ctxWalkTaken = true
	} else {
		c.ctxNext = pc + 1
		c.ctxD2Start = inst.Target
		c.ctxWalkTaken = false
	}
}

// fetchCtxSlot advances the dual-path walk by one instruction (or one
// phase transition, which consumes no fetch slot).
func (c *Core) fetchCtxSlot() (consumed, stop bool) {
	ctx := c.ctx
	recon := ctx.spec.ReconPC

	// Phase transitions happen before fetching.
	if c.ctxNext == recon {
		if c.ctxPhase == 1 {
			c.ctxPhase = 2
			c.ctxNext = c.ctxD2Start
			c.ctxWalkTaken = !c.ctxWalkTaken
			c.ctxTrueIdx = 0
			ctx.body = 0
			c.pendingSwtch = true
			if c.trace != nil {
				c.trace.Emit(EvDualFetchSwitch, ctx.branchPC, ctx.id, int64(c.ctxNext))
			}
			if c.ctxNext == recon { // empty second path (Type-1)
				c.closeCtx(ctx)
			}
			return false, false
		}
		c.closeCtx(ctx)
		return false, false
	}

	pc := c.ctxNext
	if c.dbgRing != nil {
		c.dbgLog("ctxfetch ctx%d pc=%d phase=%d walkTaken=%v", ctx.id, pc, c.ctxPhase, c.ctxWalkTaken)
	}
	if pc < 0 || pc >= len(c.prog) || c.prog[pc].Op == isa.Halt {
		c.divergeCtx(ctx, pc)
		return false, false
	}
	inst := &c.prog[pc]
	fi := c.newFetched(pc, inst)
	fi.role = RoleBody
	fi.ctx = ctx
	fi.pathTaken = c.ctxWalkTaken
	fi.ctxSwitch = c.pendingSwtch
	c.pendingSwtch = false

	// Compute the next PC of the walk.
	var next int
	takenDir := false
	onTrue := ctx.trueKnown && !ctx.scanFailed && c.ctxWalkTaken == ctx.trueTaken
	if onTrue {
		// Follow the recorded architecturally-correct path.
		c.ctxTrueIdx++
		if c.ctxTrueIdx < len(ctx.truePath) {
			next = ctx.truePath[c.ctxTrueIdx]
		} else {
			next = recon
		}
		takenDir = inst.IsControl() && next == inst.Target
	} else {
		switch inst.Op {
		case isa.Jmp:
			next = inst.Target
			takenDir = true
		case isa.Br:
			// Internal branch on a non-executing (or unknown) path:
			// follow the predictor without perturbing global history.
			p := c.pred.Predict(uint64(pc), false)
			if p.Taken {
				next = inst.Target
				takenDir = true
			} else {
				next = pc + 1
			}
		default:
			next = pc + 1
		}
	}

	ctx.body++
	c.pushFetch(fi)
	c.emitFetchEvent(fi, takenDir, inst.Target)

	if ctx.body > ctx.spec.MaxBody {
		c.divergeCtx(ctx, next)
		return true, false
	}
	c.ctxNext = next
	return true, false
}

// closeCtx ends a context's dual fetch at its reconvergence point. A
// context whose architecturally-correct path failed to reconverge is
// divergent even if the walk closed.
func (c *Core) closeCtx(ctx *ctxState) {
	if ctx.scanFailed {
		c.divergeCtx(ctx, ctx.spec.ReconPC)
		return
	}
	ctx.closed = true
	c.pendingClose = ctx
	c.ctx = nil
	c.ctxPhase = 0
	c.fetchPC = ctx.spec.ReconPC
	if c.dbgRing != nil {
		c.dbgLog("closeCtx ctx%d fetchPC=%d oracle=%d", ctx.id, c.fetchPC, c.oracle.PC)
	}
	if c.trace != nil {
		c.trace.Emit(EvReconverge, ctx.branchPC, ctx.id, int64(ctx.spec.ReconPC))
	}
}

// divergeCtx marks a context divergent: the front end gives up on
// reconvergence, subsequent fetch is wrong-path until the forced flush at
// the predicated branch's resolution (Sec. III-C).
func (c *Core) divergeCtx(ctx *ctxState, resumePC int) {
	ctx.diverged = true
	ctx.closed = true // the stalled branch may now schedule (divergence identifier)
	if c.dbgRing != nil {
		c.dbgLog("divergeCtx ctx%d resume=%d", ctx.id, resumePC)
	}
	if c.trace != nil {
		c.trace.Emit(EvDiverge, ctx.branchPC, ctx.id, int64(resumePC))
	}
	c.ctx = nil
	c.ctxPhase = 0
	c.fetchPC = resumePC
	if resumePC < 0 || resumePC >= len(c.prog) {
		c.fetchParked = true
	}
	if !ctx.wrongPath {
		if c.dbgRing != nil {
			c.dbgLog("divergeCtx ctx%d sets wrongTok", ctx.id)
		}
		c.onWrongPath = true
		c.wrongTok = ctx.tok
		c.dbgWrongPC, c.dbgWrongCyc, c.dbgWrongWhy = ctx.branchPC, c.cycle, "divergence"
	}
}

// pushFetch commits the ring slot reserved by newFetched.
func (c *Core) pushFetch(fi *fetchedInst) {
	if c.pipe != nil {
		c.pipe.fetchSlots++
	}
	c.fqCommit()
}

// emitFetchEvent feeds the believed-correct-path fetch stream to the
// predication scheme's learning structures.
func (c *Core) emitFetchEvent(fi *fetchedInst, taken bool, target int) {
	if c.scheme == nil || fi.wrongPath {
		return
	}
	c.scheme.OnFetch(FetchEvent{
		PC:        fi.pc,
		IsBranch:  fi.inst.Op == isa.Br,
		IsControl: fi.inst.IsControl(),
		Taken:     taken,
		Target:    target,
		InContext: fi.ctx != nil,
	})
}

// evalBranchOn evaluates a conditional branch's condition against a
// register file.
func evalBranchOn(in *isa.Instruction, regs *[isa.NumRegs]int64) bool {
	a := regs[in.Rs1]
	var b int64
	if in.Cond.UsesRs2() {
		b = regs[in.Rs2]
	}
	return in.Cond.Eval(a, b)
}
