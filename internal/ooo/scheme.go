package ooo

import "acb/internal/isa"

// PredSpec tells the front end how to dual-fetch a predicated branch
// instance: where the paths reconverge, which direction to fetch first,
// how many body instructions may be fetched before the instance is
// declared divergent, and whether the OOO should execute the body eagerly
// with select micro-ops (DMP-style) or stall it until branch resolution
// with register transparency (ACB-style).
type PredSpec struct {
	ReconPC    int
	FirstTaken bool // fetch the taken path first (ACB Type-3); else not-taken first
	MaxBody    int  // divergence threshold in fetched body instructions
	Eager      bool // DMP select-µop mode; false = ACB stall/transparency mode
	// PushTrueHistory inserts the architecturally-correct outcome of the
	// predicated branch into global history (the DMP-PBH oracle of Fig. 9).
	// Plain ACB and DMP omit predicated instances from history entirely.
	PushTrueHistory bool
}

// FetchEvent describes one instruction passing through fetch on the
// believed-correct path; predication schemes use the stream to drive their
// learning structures (ACB's Learning and Tracking tables observe fetched
// PCs, Sec. III-B).
type FetchEvent struct {
	PC        int
	IsBranch  bool // conditional branch
	IsControl bool // any control-flow instruction
	Taken     bool // direction fetch followed (branches) / true (jumps)
	Target    int  // control target when Taken
	InContext bool // fetched inside an open predication context
}

// ResolveEvent describes a retired conditional branch (always correct-path
// by construction). Schemes train criticality and confidence state from it.
type ResolveEvent struct {
	PC         int
	Target     int // decode-time branch target
	Taken      bool
	Mispredict bool // triggered a pipeline flush
	Predicated bool // this instance was dual-fetched (no prediction made)
	Diverged   bool // predicated instance that failed to reconverge
	// ReconHint, for diverged instances, is the first architecturally-
	// correct-path PC beyond the learned reconvergence point (-1 when
	// unknown) — the feedback a multiple-reconvergence-point extension
	// learns from (the paper's category-B1 enhancement, Sec. V-C).
	ReconHint int
	// BodyStallCycles, for predicated instances, counts issue-queue
	// wakeup attempts the instance's body spent gated on the unresolved
	// branch — the signal behind the paper's rejected pre-Dynamo
	// stall-counting throttle (Sec. V-B).
	BodyStallCycles int64
	ROBFrac         float64 // at mispredict detection: distance from ROB head / ROB size
	Hist            uint64  // global history at fetch (for confidence estimators)
	PredTaken       bool    // the direction prediction (valid when !Predicated)
}

// Scheme is a dynamic-predication policy plugged into the core: ACB
// (internal/core) and DMP/DHP (internal/dmp) implement it. A nil Scheme
// runs the plain speculation baseline.
type Scheme interface {
	// Name identifies the scheme in reports.
	Name() string
	// ShouldPredicate is consulted at fetch for every conditional branch
	// on the believed-correct path while no context is open. conf is the
	// predictor's confidence proxy for this instance; hist the global
	// history. Returning ok=false speculates normally.
	ShouldPredicate(pc int, predTaken bool, conf int, hist uint64) (PredSpec, bool)
	// OnFetch observes the believed-correct-path fetch stream.
	OnFetch(ev FetchEvent)
	// OnFlush signals a pipeline flush (learning observations reset).
	OnFlush()
	// OnBranchResolve observes every retired conditional branch.
	OnBranchResolve(ev ResolveEvent)
	// OnRetireTick is called once per retired instruction with the current
	// cycle; epoch-based monitors (Dynamo) are driven from it.
	OnRetireTick(cycle int64)
}

// Role classifies an instruction's part in a predication context.
type Role uint8

// Roles.
const (
	RoleNone       Role = iota
	RolePredBranch      // the predicated branch itself
	RoleBody            // instruction in the predicated region
	RoleSelect          // injected select micro-op (eager mode)
)

// ctxState is the shared state of one predication context, referenced by
// the fetched instructions, the ROB entries and the fetch engine.
type ctxState struct {
	id        int64
	spec      PredSpec
	branchPC  int
	branchSeq int64 // ROB seq of the predicated branch (-1 until renamed)

	wrongPath bool       // context opened on the wrong path (no oracle backing)
	tok       flushToken // identifies this context as a wrong-fetch cause

	// Fetch-side progress.
	closed   bool // reconvergence reached at fetch
	diverged bool // reconvergence not found within MaxBody
	body     int  // body instructions fetched in the current phase

	// Resolution.
	branchDone  bool
	branchTaken bool
	flushedDiv  bool // divergence flush already performed

	// Oracle bookkeeping: the true outcome and the recorded true path
	// (PCs strictly between branch and reconvergence), available only for
	// correct-path contexts. scanFailed means the architecturally-correct
	// path did not reach the reconvergence point within MaxBody steps.
	trueKnown  bool
	trueTaken  bool
	truePath   []int
	scanFailed bool
	reconHint  int   // divergence feedback (see ResolveEvent.ReconHint)
	bodyStalls int64 // gated-wakeup count (see ResolveEvent.BodyStallCycles)

	// Eager (select-µop) rename fork state.
	rat0, rat1   [isa.NumRegs]int
	haveRAT1     bool
	selectsBuilt bool
}
