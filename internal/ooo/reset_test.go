package ooo

import (
	"reflect"
	"testing"
	"unsafe"
)

// settable makes an (addressable) unexported struct field writable via
// reflection. Test-only; the production code never does this.
func settable(f reflect.Value) reflect.Value {
	return reflect.NewAt(f.Type(), unsafe.Pointer(f.UnsafeAddr())).Elem()
}

// fillGarbage writes a non-zero value of the appropriate kind into v,
// recursing through arrays and structs. Pointers are set non-nil (zero
// pointee); slices get one garbage element.
func fillGarbage(v reflect.Value) {
	switch v.Kind() {
	case reflect.Bool:
		v.SetBool(true)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(0x55)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		v.SetUint(0x55)
	case reflect.Float32, reflect.Float64:
		v.SetFloat(1.5)
	case reflect.String:
		v.SetString("garbage")
	case reflect.Ptr:
		v.Set(reflect.New(v.Type().Elem()))
	case reflect.Slice:
		s := reflect.MakeSlice(v.Type(), 1, 1)
		fillGarbage(settable(s.Index(0)))
		v.Set(s)
	case reflect.Map:
		v.Set(reflect.MakeMap(v.Type()))
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			fillGarbage(settable(v.Index(i)))
		}
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			fillGarbage(settable(v.Field(i)))
		}
	default:
		panic("fillGarbage: unhandled kind " + v.Kind().String())
	}
}

// TestROBResetClearsAllFields enforces the exhaustiveness of the
// field-wise robEntry.reset: every field of a garbage-filled entry must
// match a freshly reset zero entry afterwards. Two fields are
// stale-by-design and exempt — pred (guarded by hasPred) and ratCkpt
// (guarded by hasCkpt); their guards ARE checked. Adding a robEntry field
// without extending reset (or the exemption list, with a guard) fails
// here rather than leaking state across ring-slot reuse.
func TestROBResetClearsAllFields(t *testing.T) {
	staleByDesign := map[string]bool{"pred": true, "ratCkpt": true}

	var dirty robEntry
	fillGarbage(settable(reflect.ValueOf(&dirty).Elem()))
	dirty.reset(5, 7)

	var clean robEntry
	clean.reset(5, 7)
	// The exempt fields keep whatever the slot held; mirror them so the
	// comparison below checks everything else.
	clean.pred = dirty.pred
	clean.ratCkpt = dirty.ratCkpt

	if dirty.hasPred || dirty.hasCkpt {
		t.Fatalf("reset left a stale-field guard set: hasPred=%v hasCkpt=%v",
			dirty.hasPred, dirty.hasCkpt)
	}

	dv := reflect.ValueOf(&dirty).Elem()
	cv := reflect.ValueOf(&clean).Elem()
	typ := dv.Type()
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		got := settable(dv.Field(i)).Interface()
		want := settable(cv.Field(i)).Interface()
		if !reflect.DeepEqual(got, want) {
			if staleByDesign[name] {
				t.Errorf("stale-by-design field %q diverged from its mirror — test bug", name)
				continue
			}
			t.Errorf("robEntry.reset does not clear field %q: got %#v, want %#v "+
				"(add it to reset, or to the stale-by-design exemptions with a guard)",
				name, got, want)
		}
	}
}
