package ooo_test

import (
	"testing"

	"acb/internal/bpu"
	"acb/internal/config"
	"acb/internal/core"
	"acb/internal/ooo"
	"acb/internal/workload"
)

// TestSimulationDeterministic: two identical runs produce bit-identical
// results — the whole stack (generator, predictor, caches, pipeline, ACB
// tables, Dynamo) must be free of map-iteration or time dependence, which
// is what makes the experiment harness reproducible.
func TestSimulationDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	for _, name := range []string{"lammps", "omnetpp", "soplex"} {
		w, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		run := func() ooo.Result {
			p, m := w.Build()
			c := ooo.NewWithMemory(config.Skylake(), p,
				bpu.NewTAGE(bpu.DefaultTAGEConfig()), core.New(core.DefaultConfig()), m)
			res, err := c.Run(150_000)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		a, b := run(), run()
		if a.Cycles != b.Cycles || a.Retired != b.Retired ||
			a.Flushes != b.Flushes || a.Mispredicts != b.Mispredicts ||
			a.Predications != b.Predications || a.Allocations != b.Allocations ||
			a.FinalRegs != b.FinalRegs {
			t.Errorf("%s: runs differ: cycles %d/%d flushes %d/%d pred %d/%d",
				name, a.Cycles, b.Cycles, a.Flushes, b.Flushes, a.Predications, b.Predications)
		}
	}
}
