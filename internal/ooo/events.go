package ooo

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// EventKind classifies one structured pipeline event.
type EventKind uint8

// Event kinds. Dual-fetch open/switch/close events carry the predication
// context id in Ctx; flush events carry the flushed branch's PC; gate
// events carry the denied branch's PC and the gate identity in Arg.
const (
	EvDualFetchOpen   EventKind = iota // predication context opened (fetch override)
	EvDualFetchSwitch                  // walk switched to the second path
	EvReconverge                       // both paths reached the reconvergence point
	EvDiverge                          // front end gave up on reconvergence
	EvFlushMispredict                  // branch-mispredict pipeline flush
	EvFlushDivergence                  // divergence pipeline flush
	EvGateDeny                         // scheme gate (Dynamo/StallThrottle) denied predication
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EvDualFetchOpen:
		return "dual-fetch-open"
	case EvDualFetchSwitch:
		return "dual-fetch-switch"
	case EvReconverge:
		return "reconverge"
	case EvDiverge:
		return "diverge"
	case EvFlushMispredict:
		return "flush-mispredict"
	case EvFlushDivergence:
		return "flush-divergence"
	case EvGateDeny:
		return "gate-deny"
	}
	return fmt.Sprintf("event(%d)", k)
}

// Gate identities carried in EvGateDeny's Arg.
const (
	GateDynamo        int64 = 1
	GateStallThrottle int64 = 2
)

// TraceEvent is one structured pipeline event: what happened, when (in
// simulated cycles), to which branch PC, and in which predication context
// (0 when none). Arg is kind-specific: the reconvergence PC for dual-fetch
// opens, the gate identity for gate denials, the redirect PC for flushes.
type TraceEvent struct {
	Cycle int64
	Kind  EventKind
	PC    int
	Ctx   int64
	Arg   int64
}

// TraceRing is a bounded ring of structured pipeline events shared by the
// core (fetch/flush events) and the predication scheme (gate decisions).
// When full, the oldest events are dropped and counted, so a long run
// keeps its most recent window — the part a post-mortem wants.
type TraceRing struct {
	buf     []TraceEvent
	start   int
	n       int
	dropped int64
	clock   func() int64
}

// DefaultTraceCap is the ring capacity EnableTrace uses.
const DefaultTraceCap = 1 << 16

// NewTraceRing returns a ring holding at most cap events (DefaultTraceCap
// when cap <= 0). Events emitted before a clock is attached are stamped
// with cycle 0.
func NewTraceRing(capacity int) *TraceRing {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &TraceRing{buf: make([]TraceEvent, 0, capacity)}
}

// Emit appends an event stamped with the attached clock's current cycle.
func (r *TraceRing) Emit(kind EventKind, pc int, ctx, arg int64) {
	var cyc int64
	if r.clock != nil {
		cyc = r.clock()
	}
	ev := TraceEvent{Cycle: cyc, Kind: kind, PC: pc, Ctx: ctx, Arg: arg}
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
		r.n++
		return
	}
	r.buf[r.start] = ev
	r.start = (r.start + 1) % len(r.buf)
	r.dropped++
}

// Events returns the retained events in emission order.
func (r *TraceRing) Events() []TraceEvent {
	out := make([]TraceEvent, 0, len(r.buf))
	for i := 0; i < len(r.buf); i++ {
		out = append(out, r.buf[(r.start+i)%len(r.buf)])
	}
	return out
}

// Dropped returns how many events the bounded ring discarded.
func (r *TraceRing) Dropped() int64 { return r.dropped }

// EnableTrace attaches a bounded event ring (capacity DefaultTraceCap when
// cap <= 0) to the core and returns it. The ring's clock is the core's
// cycle counter, so schemes sharing the ring stamp events consistently.
func (c *Core) EnableTrace(capacity int) *TraceRing {
	if c.trace == nil {
		c.trace = NewTraceRing(capacity)
	}
	c.trace.clock = func() int64 { return c.cycle }
	return c.trace
}

// Trace returns the attached event ring (nil unless enabled).
func (c *Core) Trace() *TraceRing { return c.trace }

// chromeEvent is one Chrome trace-event JSON object (the subset Perfetto
// and chrome://tracing consume).
type chromeEvent struct {
	Name string                 `json:"name"`
	Ph   string                 `json:"ph"`
	Ts   int64                  `json:"ts"`
	Dur  int64                  `json:"dur,omitempty"`
	Pid  int                    `json:"pid"`
	Tid  int                    `json:"tid"`
	S    string                 `json:"s,omitempty"`
	Args map[string]interface{} `json:"args,omitempty"`
}

// chromeTrace is the JSON-object container format ({"traceEvents": [...]}),
// which both Perfetto and chrome://tracing load.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Chrome-trace track (tid) assignment: predication contexts as duration
// events on one track, flushes and gate decisions as instants on others.
const (
	chromeTidDualFetch = 1
	chromeTidFlush     = 2
	chromeTidGate      = 3
)

// WriteChromeTrace renders events as Chrome trace-event JSON: dual-fetch
// contexts become complete ("X") duration events spanning open to
// reconvergence/divergence, flushes and gate denials become instant ("i")
// events. One simulated cycle maps to one microsecond of trace time.
func WriteChromeTrace(w io.Writer, events []TraceEvent) error {
	out := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ns"}

	// Pair dual-fetch opens with their closing event by context id.
	type openCtx struct {
		ev TraceEvent
	}
	open := make(map[int64]openCtx)
	closeCtx := func(ctx int64, end TraceEvent, outcome string) {
		oc, ok := open[ctx]
		if !ok {
			return
		}
		delete(open, ctx)
		dur := end.Cycle - oc.ev.Cycle
		if dur < 1 {
			dur = 1
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: fmt.Sprintf("dual-fetch pc=%d", oc.ev.PC),
			Ph:   "X", Ts: oc.ev.Cycle, Dur: dur,
			Pid: 1, Tid: chromeTidDualFetch,
			Args: map[string]interface{}{
				"branch_pc": oc.ev.PC,
				"recon_pc":  oc.ev.Arg,
				"ctx":       ctx,
				"outcome":   outcome,
			},
		})
	}

	lastCycle := int64(0)
	for _, ev := range events {
		if ev.Cycle > lastCycle {
			lastCycle = ev.Cycle
		}
		switch ev.Kind {
		case EvDualFetchOpen:
			open[ev.Ctx] = openCtx{ev: ev}
		case EvDualFetchSwitch:
			// Folded into the enclosing X event; no separate mark.
		case EvReconverge:
			closeCtx(ev.Ctx, ev, "reconverged")
		case EvDiverge:
			closeCtx(ev.Ctx, ev, "diverged")
		case EvFlushMispredict, EvFlushDivergence:
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: ev.Kind.String(),
				Ph:   "i", Ts: ev.Cycle, Pid: 1, Tid: chromeTidFlush, S: "t",
				Args: map[string]interface{}{"branch_pc": ev.PC, "redirect_pc": ev.Arg},
			})
		case EvGateDeny:
			gate := "dynamo"
			if ev.Arg == GateStallThrottle {
				gate = "stall-throttle"
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "gate-deny:" + gate,
				Ph:   "i", Ts: ev.Cycle, Pid: 1, Tid: chromeTidGate, S: "t",
				Args: map[string]interface{}{"branch_pc": ev.PC, "gate": gate},
			})
		}
	}
	// Contexts still open when the trace ended (or whose open was dropped
	// from the ring) close at the last seen cycle; sorted so the emitted
	// JSON is deterministic.
	leftover := make([]int64, 0, len(open))
	for ctx := range open {
		leftover = append(leftover, ctx)
	}
	sort.Slice(leftover, func(i, j int) bool { return leftover[i] < leftover[j] })
	for _, ctx := range leftover {
		closeCtx(ctx, TraceEvent{Cycle: lastCycle + 1}, "open-at-end")
	}

	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
