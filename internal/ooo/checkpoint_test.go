package ooo

import (
	"context"
	"testing"

	"acb/internal/bpu"
	"acb/internal/config"
	"acb/internal/isa"
)

// TestNewFromCheckpointResumesToSameState fast-forwards functionally to the
// middle of a program, resumes a detailed core from the checkpoint, and
// checks the resumed core's final architectural state (registers and
// committed memory) matches an uninterrupted detailed run's.
func TestNewFromCheckpointResumesToSameState(t *testing.T) {
	prog, image := buildLoopHammock(800)
	cfg := config.Skylake()

	full := NewWithMemory(cfg, prog, bpu.NewTAGE(bpu.DefaultTAGEConfig()), nil, image.Clone())
	fullRes, err := full.Run(1 << 30)
	if err != nil {
		t.Fatalf("full run: %v", err)
	}
	if !fullRes.Halted {
		t.Fatalf("full run did not halt")
	}

	st := isa.NewArchState(image.Clone())
	mid := fullRes.Retired / 2
	steps, halted := st.Run(prog, mid)
	if halted || steps != mid {
		t.Fatalf("functional fast-forward = (%d,%v)", steps, halted)
	}
	ck := st.Checkpoint(mid)

	resumed := NewFromCheckpoint(cfg, prog, bpu.NewTAGE(bpu.DefaultTAGEConfig()), nil, ck)
	res, err := resumed.Run(1 << 30)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if !res.Halted {
		t.Fatalf("resumed run did not halt")
	}
	if got, want := ck.Retired+res.Retired, fullRes.Retired; got != want {
		t.Fatalf("resumed retired %d (+%d checkpoint) != full %d", res.Retired, ck.Retired, want)
	}
	if res.FinalRegs != fullRes.FinalRegs {
		t.Fatalf("final regs diverge:\nresumed %v\nfull    %v", res.FinalRegs, fullRes.FinalRegs)
	}
	if diffs := resumed.CommitMemory().DiffWords(full.CommitMemory(), 3); len(diffs) > 0 {
		t.Fatalf("final memory diverges: %+v", diffs)
	}
}

// TestRunWindowDeltas checks measured-span accounting: the measured width
// lands on the target (modulo retire-width overshoot) and counters are
// deltas, not cumulative totals.
func TestRunWindowDeltas(t *testing.T) {
	prog, image := buildLoopHammock(2000)
	cfg := config.Skylake()
	st := isa.NewArchState(image.Clone())
	st.Run(prog, 3000)
	ck := st.Checkpoint(3000)

	c := NewFromCheckpoint(cfg, prog, bpu.NewTAGE(bpu.DefaultTAGEConfig()), nil, ck)
	const warmup, measure = 500, 1000
	res, err := c.RunWindow(context.Background(), warmup, measure)
	if err != nil {
		t.Fatalf("RunWindow: %v", err)
	}
	if res.Halted {
		t.Fatalf("window unexpectedly hit program end")
	}
	over := int64(cfg.RetireWidth - 1)
	if res.Retired < measure || res.Retired > measure+2*over {
		t.Fatalf("measured width %d, want ~%d (≤%d overshoot per span)", res.Retired, measure, over)
	}
	if res.Cycles <= 0 || res.Cycles >= c.cycle {
		t.Fatalf("window cycles %d not a delta of total %d", res.Cycles, c.cycle)
	}
	// The window ends at checkpoint+warm+measure retired instructions; the
	// committed state there must match the functional emulator.
	ref := ck.Restore()
	ref.Run(prog, c.Retired())
	for r := 0; r < isa.NumRegs; r++ {
		if res.FinalRegs[r] != ref.Regs[r] {
			t.Fatalf("r%d = %d, functional reference %d", r, res.FinalRegs[r], ref.Regs[r])
		}
	}
}

// TestRunWindowHaltDuringWarmup: a program ending inside the warm-up span
// must yield a zero-width halted window, not a deadlock.
func TestRunWindowHaltDuringWarmup(t *testing.T) {
	prog, image := buildLoopHammock(50)
	c := NewWithMemory(config.Skylake(), prog, bpu.NewTAGE(bpu.DefaultTAGEConfig()), nil, image.Clone())
	res, err := c.RunWindow(context.Background(), 1<<20, 1000)
	if err != nil {
		t.Fatalf("RunWindow: %v", err)
	}
	if !res.Halted || res.Retired != 0 {
		t.Fatalf("halt-in-warmup window = {Halted:%v Retired:%d}, want zero-width halted", res.Halted, res.Retired)
	}
}

// TestWarmHierarchyPrimesCaches: replaying an address trace before a window
// must turn the window's first touches of those lines into hits.
func TestWarmHierarchyPrimesCaches(t *testing.T) {
	prog, image := buildLoopHammock(200)
	st := isa.NewArchState(image.Clone())
	st.Run(prog, 100)
	ck := st.Checkpoint(100)

	cold := NewFromCheckpoint(config.Skylake(), prog, bpu.NewTAGE(bpu.DefaultTAGEConfig()), nil, ck)
	coldRes, err := cold.RunWindow(context.Background(), 0, 800)
	if err != nil {
		t.Fatalf("cold window: %v", err)
	}

	warmCore := NewFromCheckpoint(config.Skylake(), prog, bpu.NewTAGE(bpu.DefaultTAGEConfig()), nil, ck)
	var refs []MemRef
	for a := int64(0x1000); a < 0x1000+256*8; a += 8 {
		refs = append(refs, MemRef{Addr: a})
	}
	warmCore.WarmHierarchy(refs)
	warmRes, err := warmCore.RunWindow(context.Background(), 0, 800)
	if err != nil {
		t.Fatalf("warm window: %v", err)
	}
	if warmRes.L1Misses >= coldRes.L1Misses {
		t.Fatalf("warming did not reduce L1 misses: warm %d, cold %d", warmRes.L1Misses, coldRes.L1Misses)
	}
}
