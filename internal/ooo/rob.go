package ooo

import (
	"acb/internal/bpu"
	"acb/internal/isa"
)

// maxFreeOnRetire bounds the path-final physical registers a select
// micro-op can release: dedupPhys over {ratT[r], ratN[r], rat0[r]}.
const maxFreeOnRetire = 3

// robEntry is one in-flight instruction (or injected select micro-op).
type robEntry struct {
	valid bool
	seq   int64
	// gen is the ROB-wide allocation generation: unlike seq it never
	// rewinds at a flush, so a completion event tagged with it can detect
	// lazily that its seq was squashed and reallocated (see compRec).
	gen  uint64
	pc   int
	inst *isa.Instruction // nil for injected select micro-ops

	role      Role
	ctx       *ctxState
	pathTaken bool // body: belongs to the taken-direction path
	wrongPath bool

	// Rename state.
	dest     int // destination physical register, -1 if none
	prevPhys int // previous mapping of the destination logical register
	src      [2]int
	nsrc     int
	ratCkpt  [isa.NumRegs]int // RAT checkpoint (control instructions)
	hasCkpt  bool

	// Branch prediction state.
	pred        bpu.Prediction
	hasPred     bool
	predTaken   bool // direction fetch followed
	trueTaken   bool
	trueKnown   bool
	histAtFetch uint64

	// Select micro-op state: the chosen source is selT when the context
	// branch resolves taken, selN otherwise. freeOnRetire[:nFree] lists
	// path-final physical registers that die at the select (a fixed array:
	// allocating a slice per select showed up in the cycle-loop profile).
	selT, selN   int
	selLog       isa.Reg
	freeOnRetire [maxFreeOnRetire]int32
	nFree        uint8

	// Execution state.
	// waitPhys is a scoreboard hint: when a plain-role entry fails issue
	// because a source physical register is not ready, the register is
	// recorded here and the issue scan skips the entry with a single
	// ready-bit load until the producer completes. Valid only for
	// RoleNone entries — every other role has per-cycle side effects or
	// non-register stall conditions. -1 means no hint.
	waitPhys  int32
	inIQ      bool
	issued    bool
	done      bool
	doneCycle int64
	result    int64
	hasResult bool

	// Memory state.
	isLoad      bool
	isStore     bool
	addrReady   bool
	effAddr     int64
	storeVal    int64
	invalidated bool // predicated-false-path memory op

	// Branch resolution.
	resolvedTaken bool
	mispredict    bool
	flushed       bool    // this entry already triggered its flush
	robFrac       float64 // ROB-head distance fraction at mispredict detection

	// wrongTok is non-zero when fetch knew this branch was mispredicted
	// (the wrong path begins after it); its flush clears the wrong-path
	// state.
	wrongTok flushToken

	// skipPrevFree suppresses freeing prevPhys at retire (eager-mode path
	// first-writers; the select micro-op frees the forked base register).
	skipPrevFree bool
}

// reset prepares a recycled slot for a fresh allocation. It clears every
// field individually instead of writing a whole zero robEntry: the
// full-struct write memclrs ~300 bytes and runs the GC write barrier over
// every pointer word each allocation, which the cycle-loop profile showed
// as a top cost. Two large fields are deliberately left stale — ratCkpt
// (guarded by hasCkpt) and pred (guarded by hasPred) — their consumers
// never read them unless the guard was set after this reset. The
// exhaustiveness of this list is enforced by a reflection test
// (TestROBResetClearsAllFields).
func (e *robEntry) reset(seq int64, gen uint64) {
	e.valid = true
	e.seq = seq
	e.gen = gen
	e.pc = 0
	e.inst = nil
	e.role = RoleNone
	e.ctx = nil
	e.pathTaken = false
	e.wrongPath = false
	e.dest = -1
	e.prevPhys = -1
	e.src[0] = 0
	e.src[1] = 0
	e.nsrc = 0
	e.hasCkpt = false
	e.hasPred = false
	e.predTaken = false
	e.trueTaken = false
	e.trueKnown = false
	e.histAtFetch = 0
	e.selT = 0
	e.selN = 0
	e.selLog = 0
	e.freeOnRetire = [maxFreeOnRetire]int32{}
	e.nFree = 0
	e.waitPhys = -1
	e.inIQ = false
	e.issued = false
	e.done = false
	e.doneCycle = 0
	e.result = 0
	e.hasResult = false
	e.isLoad = false
	e.isStore = false
	e.addrReady = false
	e.effAddr = 0
	e.storeVal = 0
	e.invalidated = false
	e.resolvedTaken = false
	e.mispredict = false
	e.flushed = false
	e.robFrac = 0
	e.wrongTok = 0
	e.skipPrevFree = false
}

// rob is a ring buffer of in-flight instructions addressed by sequence
// number (slot = seq mod storage size). Storage is rounded up to a power
// of two so the slot computation is a mask, not an int64 division — at()
// runs once per IQ entry per cycle and dominates the issue loop otherwise.
// Occupancy is still bounded by the configured architectural size.
type rob struct {
	entries []robEntry
	mask    int64 // len(entries)-1; len is a power of two
	cap     int   // architectural ROB size (occupancy bound)
	headSeq int64 // oldest live seq
	nextSeq int64 // next seq to allocate
	gen     uint64 // allocation generation; never rewinds (unlike nextSeq)
}

func newROB(size int) *rob {
	n := 1
	for n < size {
		n <<= 1
	}
	return &rob{entries: make([]robEntry, n), mask: int64(n - 1), cap: size}
}

func (r *rob) size() int      { return r.cap }
func (r *rob) occupancy() int { return int(r.nextSeq - r.headSeq) }
func (r *rob) full() bool     { return r.occupancy() >= r.cap }
func (r *rob) empty() bool    { return r.nextSeq == r.headSeq }

// alloc reserves the next entry and returns it, reset.
func (r *rob) alloc() *robEntry {
	e := &r.entries[r.nextSeq&r.mask]
	r.gen++
	e.reset(r.nextSeq, r.gen)
	r.nextSeq++
	return e
}

// at returns the live entry with the given seq, or nil.
func (r *rob) at(seq int64) *robEntry {
	if seq < r.headSeq || seq >= r.nextSeq {
		return nil
	}
	e := &r.entries[seq&r.mask]
	if !e.valid || e.seq != seq {
		return nil
	}
	return e
}

// head returns the oldest live entry, or nil when empty.
func (r *rob) head() *robEntry {
	if r.empty() {
		return nil
	}
	return r.at(r.headSeq)
}

// pop retires the head entry.
func (r *rob) pop() {
	e := r.head()
	e.valid = false
	r.headSeq++
}

// squashAfter invalidates every entry younger than seq and rewinds the
// allocation pointer. It calls fn for each squashed entry, youngest first.
func (r *rob) squashAfter(seq int64, fn func(*robEntry)) {
	for s := r.nextSeq - 1; s > seq; s-- {
		e := &r.entries[s&r.mask]
		if e.valid && e.seq == s {
			fn(e)
			e.valid = false
		}
	}
	r.nextSeq = seq + 1
}
