package ooo

import (
	"acb/internal/bpu"
	"acb/internal/isa"
)

// robEntry is one in-flight instruction (or injected select micro-op).
type robEntry struct {
	valid bool
	seq   int64
	pc    int
	inst  *isa.Instruction // nil for injected select micro-ops

	role      Role
	ctx       *ctxState
	pathTaken bool // body: belongs to the taken-direction path
	wrongPath bool

	// Rename state.
	dest     int // destination physical register, -1 if none
	prevPhys int // previous mapping of the destination logical register
	src      [2]int
	nsrc     int
	ratCkpt  [isa.NumRegs]int // RAT checkpoint (control instructions)
	hasCkpt  bool

	// Branch prediction state.
	pred        bpu.Prediction
	hasPred     bool
	predTaken   bool // direction fetch followed
	trueTaken   bool
	trueKnown   bool
	histAtFetch uint64

	// Select micro-op state: the chosen source is selT when the context
	// branch resolves taken, selN otherwise. freeOnRetire lists path-final
	// physical registers that die at the select.
	selT, selN   int
	selLog       isa.Reg
	freeOnRetire []int

	// Execution state.
	inIQ      bool
	issued    bool
	done      bool
	doneCycle int64
	result    int64
	hasResult bool

	// Memory state.
	isLoad      bool
	isStore     bool
	addrReady   bool
	effAddr     int64
	storeVal    int64
	invalidated bool // predicated-false-path memory op

	// Branch resolution.
	resolvedTaken bool
	mispredict    bool
	flushed       bool    // this entry already triggered its flush
	robFrac       float64 // ROB-head distance fraction at mispredict detection

	// wrongTok is non-nil when fetch knew this branch was mispredicted
	// (the wrong path begins after it); its flush clears the wrong-path
	// state.
	wrongTok *flushToken

	// skipPrevFree suppresses freeing prevPhys at retire (eager-mode path
	// first-writers; the select micro-op frees the forked base register).
	skipPrevFree bool
}

// rob is a ring buffer of in-flight instructions addressed by sequence
// number (slot = seq mod size).
type rob struct {
	entries []robEntry
	headSeq int64 // oldest live seq
	nextSeq int64 // next seq to allocate
}

func newROB(size int) *rob {
	return &rob{entries: make([]robEntry, size)}
}

func (r *rob) size() int      { return len(r.entries) }
func (r *rob) occupancy() int { return int(r.nextSeq - r.headSeq) }
func (r *rob) full() bool     { return r.occupancy() >= len(r.entries) }
func (r *rob) empty() bool    { return r.nextSeq == r.headSeq }

// alloc reserves the next entry and returns it, reset.
func (r *rob) alloc() *robEntry {
	e := &r.entries[r.nextSeq%int64(len(r.entries))]
	*e = robEntry{valid: true, seq: r.nextSeq, dest: -1, prevPhys: -1}
	r.nextSeq++
	return e
}

// at returns the live entry with the given seq, or nil.
func (r *rob) at(seq int64) *robEntry {
	if seq < r.headSeq || seq >= r.nextSeq {
		return nil
	}
	e := &r.entries[seq%int64(len(r.entries))]
	if !e.valid || e.seq != seq {
		return nil
	}
	return e
}

// head returns the oldest live entry, or nil when empty.
func (r *rob) head() *robEntry {
	if r.empty() {
		return nil
	}
	return r.at(r.headSeq)
}

// pop retires the head entry.
func (r *rob) pop() {
	e := r.head()
	e.valid = false
	r.headSeq++
}

// squashAfter invalidates every entry younger than seq and rewinds the
// allocation pointer. It calls fn for each squashed entry, youngest first.
func (r *rob) squashAfter(seq int64, fn func(*robEntry)) {
	for s := r.nextSeq - 1; s > seq; s-- {
		e := &r.entries[s%int64(len(r.entries))]
		if e.valid && e.seq == s {
			fn(e)
			e.valid = false
		}
	}
	r.nextSeq = seq + 1
}
