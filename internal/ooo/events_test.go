package ooo

import (
	"bytes"
	"encoding/json"
	"testing"

	"acb/internal/bpu"
	"acb/internal/config"
	"acb/internal/isa"
	"acb/internal/prog"
)

// hammockPCs finds the loop hammock's branch and reconvergence PCs via the
// static analyzer, so the test tracks buildLoopHammock's exact layout.
func hammockPCs(t *testing.T, p []isa.Instruction) (branchPC, reconPC int) {
	t.Helper()
	for _, hm := range prog.AnalyzeHammocks(p, 64) {
		if hm.Simple {
			return hm.BranchPC, hm.ReconvPC
		}
	}
	t.Fatal("no simple hammock in loop-hammock program")
	return 0, 0
}

// TestTraceRingBounded checks drop-oldest semantics: a full ring keeps the
// most recent capacity events, in emission order, and counts what it shed.
func TestTraceRingBounded(t *testing.T) {
	r := NewTraceRing(4)
	for i := 0; i < 6; i++ {
		r.Emit(EvGateDeny, i, 0, int64(i))
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("len(Events) = %d, want 4", len(evs))
	}
	if r.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", r.Dropped())
	}
	for i, ev := range evs {
		if want := int64(i + 2); ev.Arg != want {
			t.Fatalf("event %d arg = %d, want %d (oldest two should have dropped)", i, ev.Arg, want)
		}
	}
}

// TestTraceRingClock checks events are stamped with the core's cycle
// counter once EnableTrace attaches the ring.
func TestTraceRingClock(t *testing.T) {
	p, m := buildLoopHammock(4)
	c := NewWithMemory(config.Skylake(), p, bpu.NewTAGE(bpu.DefaultTAGEConfig()), nil, m)
	if c.Trace() != nil {
		t.Fatal("trace ring non-nil before EnableTrace")
	}
	r := c.EnableTrace(16)
	c.cycle = 42
	r.Emit(EvReconverge, 7, 1, 0)
	evs := r.Events()
	if len(evs) != 1 || evs[0].Cycle != 42 {
		t.Fatalf("events = %+v, want one event at cycle 42", evs)
	}
}

// tracePredScheme predicates exactly one branch PC with a fixed spec (the
// in-package twin of predication_test's fixedScheme).
type tracePredScheme struct {
	pc   int
	spec PredSpec
}

func (f *tracePredScheme) Name() string { return "trace-fixed" }
func (f *tracePredScheme) ShouldPredicate(pc int, _ bool, _ int, _ uint64) (PredSpec, bool) {
	if pc == f.pc {
		return f.spec, true
	}
	return PredSpec{}, false
}
func (f *tracePredScheme) OnFetch(FetchEvent)           {}
func (f *tracePredScheme) OnFlush()                     {}
func (f *tracePredScheme) OnBranchResolve(ResolveEvent) {}
func (f *tracePredScheme) OnRetireTick(int64)           {}

// TestTraceEventsFromRun checks a predicating run emits paired dual-fetch
// events: every reconverge/diverge closes a previously opened context.
func TestTraceEventsFromRun(t *testing.T) {
	p, m := buildLoopHammock(2000)
	branchPC, reconPC := hammockPCs(t, p)
	c := NewWithMemory(config.Skylake(), p, bpu.NewTAGE(bpu.DefaultTAGEConfig()),
		&tracePredScheme{pc: branchPC, spec: PredSpec{ReconPC: reconPC, MaxBody: 56}}, m)
	r := c.EnableTrace(0)
	if _, err := c.Run(200_000); err != nil {
		t.Fatal(err)
	}
	open := make(map[int64]bool)
	var opens, closes int
	for _, ev := range r.Events() {
		switch ev.Kind {
		case EvDualFetchOpen:
			open[ev.Ctx] = true
			opens++
		case EvReconverge, EvDiverge:
			if !open[ev.Ctx] {
				t.Fatalf("close of never-opened ctx %d", ev.Ctx)
			}
			delete(open, ev.Ctx)
			closes++
		}
	}
	if opens == 0 {
		t.Fatal("predicating run emitted no dual-fetch opens")
	}
	if closes == 0 {
		t.Fatal("predicating run emitted no context closes")
	}
	t.Logf("%d events: %d opens, %d closes, %d still open at halt",
		len(r.Events()), opens, closes, len(open))
}

// TestWriteChromeTrace checks the exporter emits loadable trace-event
// JSON: duration events for contexts, instants for flushes and gate
// denials, and deterministic closure of contexts left open at the end.
func TestWriteChromeTrace(t *testing.T) {
	events := []TraceEvent{
		{Cycle: 10, Kind: EvDualFetchOpen, PC: 100, Ctx: 1, Arg: 120},
		{Cycle: 14, Kind: EvDualFetchSwitch, PC: 100, Ctx: 1},
		{Cycle: 20, Kind: EvReconverge, PC: 100, Ctx: 1, Arg: 120},
		{Cycle: 25, Kind: EvFlushMispredict, PC: 30, Arg: 4},
		{Cycle: 26, Kind: EvGateDeny, PC: 100, Arg: GateStallThrottle},
		{Cycle: 30, Kind: EvDualFetchOpen, PC: 200, Ctx: 2, Arg: 240}, // never closed
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string                 `json:"name"`
			Ph   string                 `json:"ph"`
			Ts   int64                  `json:"ts"`
			Dur  int64                  `json:"dur"`
			Args map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("exporter emitted invalid JSON: %v\n%s", err, buf.String())
	}
	var xs, is int
	var sawOpenAtEnd, sawReconverged, sawFlush, sawGate bool
	for _, ev := range out.TraceEvents {
		switch ev.Ph {
		case "X":
			xs++
			if ev.Dur < 1 {
				t.Fatalf("X event %q has dur %d", ev.Name, ev.Dur)
			}
			switch ev.Args["outcome"] {
			case "reconverged":
				sawReconverged = true
				if ev.Ts != 10 || ev.Dur != 10 {
					t.Fatalf("reconverged span ts=%d dur=%d, want 10/10", ev.Ts, ev.Dur)
				}
			case "open-at-end":
				sawOpenAtEnd = true
			}
		case "i":
			is++
			if ev.Name == "flush-mispredict" {
				sawFlush = true
			}
			if ev.Name == "gate-deny:stall-throttle" {
				sawGate = true
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if xs != 2 || is != 2 {
		t.Fatalf("got %d X and %d i events, want 2 and 2", xs, is)
	}
	if !sawReconverged || !sawOpenAtEnd || !sawFlush || !sawGate {
		t.Fatalf("missing events: reconverged=%v openAtEnd=%v flush=%v gate=%v",
			sawReconverged, sawOpenAtEnd, sawFlush, sawGate)
	}
}
