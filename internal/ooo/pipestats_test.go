package ooo

import (
	"strings"
	"testing"

	"acb/internal/bpu"
	"acb/internal/config"
)

// TestPipeStats: utilization collection is consistent with the run's
// aggregate counters and bounded by machine widths.
func TestPipeStats(t *testing.T) {
	p, m := hammockWithStores(2000)
	c := NewWithMemory(config.Skylake(), p, bpu.NewTAGE(bpu.DefaultTAGEConfig()), nil, m)
	c.EnablePipeStats()
	res, err := c.Run(1_000_000)
	if err != nil || !res.Halted {
		t.Fatalf("run: %v halted=%v", err, res.Halted)
	}
	ps := c.PipeStats()
	if ps == nil {
		t.Fatal("stats not collected")
	}
	fe, rn, is, rt := ps.Utilization()
	if rn <= 0 || is <= 0 || rt <= 0 || fe <= 0 {
		t.Fatalf("zero utilization: %f %f %f %f", fe, rn, is, rt)
	}
	if rn > float64(c.cfg.AllocWidth) || rt > float64(c.cfg.RetireWidth) {
		t.Fatalf("utilization exceeds machine width: rename %f retire %f", rn, rt)
	}
	if ps.renameSlots != res.Allocations {
		t.Fatalf("rename slots %d != allocations %d", ps.renameSlots, res.Allocations)
	}
	robHigh, iqHigh := ps.OccupancyShare()
	if robHigh < 0 || robHigh > 1 || iqHigh < 0 || iqHigh > 1 {
		t.Fatal("occupancy shares out of range")
	}
	out := ps.String()
	if !strings.Contains(out, "pipeline utilization") || !strings.Contains(out, "ROB") {
		t.Fatalf("report: %s", out)
	}
}

func TestPipeStatsDisabledByDefault(t *testing.T) {
	p, m := hammockWithStores(100)
	c := NewWithMemory(config.Skylake(), p, bpu.NewBimodal(8), nil, m)
	if _, err := c.Run(100_000); err != nil {
		t.Fatal(err)
	}
	if c.PipeStats() != nil {
		t.Fatal("stats collected without enabling")
	}
}

func TestBucket(t *testing.T) {
	if bucket(0, 8) != 0 || bucket(8, 8) != 8 || bucket(4, 8) != 4 {
		t.Fatal("bucket math")
	}
	if bucket(100, 8) != 8 {
		t.Fatal("bucket clamp")
	}
	if bucket(1, 0) != 0 {
		t.Fatal("zero capacity")
	}
}
