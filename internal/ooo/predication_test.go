package ooo_test

import (
	"testing"

	"acb/internal/bpu"
	"acb/internal/config"
	"acb/internal/core"
	"acb/internal/isa"
	"acb/internal/ooo"
	"acb/internal/prog"
	"acb/internal/workload"
)

// fixedScheme predicates exactly one branch PC with a fixed spec — it
// isolates the OOO-side predication machinery from ACB's learning.
type fixedScheme struct {
	pc   int
	spec ooo.PredSpec
}

func (f *fixedScheme) Name() string { return "fixed" }
func (f *fixedScheme) ShouldPredicate(pc int, _ bool, _ int, _ uint64) (ooo.PredSpec, bool) {
	if pc == f.pc {
		return f.spec, true
	}
	return ooo.PredSpec{}, false
}
func (f *fixedScheme) OnFetch(ooo.FetchEvent)           {}
func (f *fixedScheme) OnFlush()                         {}
func (f *fixedScheme) OnBranchResolve(ooo.ResolveEvent) {}
func (f *fixedScheme) OnRetireTick(int64)               {}

// runFixed simulates prog with the fixed predication spec and checks the
// final registers against a functional run.
func runFixed(t *testing.T, p []isa.Instruction, m *isa.Memory, sch ooo.Scheme, budget int64) ooo.Result {
	t.Helper()
	c := ooo.NewWithMemory(config.Skylake(), p, bpu.NewTAGE(bpu.DefaultTAGEConfig()), sch, m.Clone())
	res, err := c.Run(budget)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	ref := isa.NewArchState(m.Clone())
	ref.Run(p, res.Retired)
	for r := 0; r < isa.NumRegs; r++ {
		if res.FinalRegs[r] != ref.Regs[r] {
			t.Fatalf("r%d = %d, want %d (retired %d)", r, res.FinalRegs[r], ref.Regs[r], res.Retired)
		}
	}
	return res
}

// hammockProgram returns a loop with one IF-ELSE hammock on a
// pseudo-random condition; branchPC and reconPC identify the hammock.
func hammockProgram(iters int64) (p []isa.Instruction, m *isa.Memory, branchPC, reconPC int) {
	b := prog.NewBuilder()
	b.MovI(isa.R1, iters)
	b.MovI(isa.R2, 0x1000)
	b.MovI(isa.R3, 0)
	b.Label("loop")
	b.AndI(isa.R4, isa.R3, 1023)
	b.MulI(isa.R4, isa.R4, 8)
	b.Add(isa.R5, isa.R2, isa.R4)
	b.Load(isa.R6, isa.R5, 0)
	b.AndI(isa.R6, isa.R6, 1)
	branchPC = b.PC()
	b.Brz(isa.R6, "else")
	b.AddI(isa.R7, isa.R7, 3)
	b.Jmp("end")
	b.Label("else")
	b.AddI(isa.R7, isa.R7, 7)
	b.Label("end")
	reconPC = b.PC()
	b.AddI(isa.R3, isa.R3, 1)
	b.Sub(isa.R8, isa.R3, isa.R1)
	b.Brnz(isa.R8, "loop")
	b.Halt()
	p = b.MustBuild()
	m = isa.NewMemory()
	x := uint64(0xFEED)
	for i := int64(0); i < 1024; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		m.Store(0x1000+i*8, int64(x&0xFF))
	}
	return p, m, branchPC, reconPC
}

// TestStallPredicationRemovesFlushes: predicating every instance of the
// H2P branch removes its mispredict flushes while staying correct.
func TestStallPredicationRemovesFlushes(t *testing.T) {
	p, m, branchPC, reconPC := hammockProgram(5000)

	base := runFixed(t, p, m, nil, 1_000_000)
	sch := &fixedScheme{pc: branchPC, spec: ooo.PredSpec{ReconPC: reconPC, MaxBody: 56}}
	pred := runFixed(t, p, m, sch, 1_000_000)

	if pred.Predications < 4500 {
		t.Fatalf("predications = %d, want ~5000", pred.Predications)
	}
	if pred.Flushes*4 > base.Flushes {
		t.Fatalf("flushes %d not well below baseline %d", pred.Flushes, base.Flushes)
	}
	if pred.TransparentOps == 0 {
		t.Fatal("no transparency moves recorded")
	}
	if pred.DivFlushes != 0 {
		t.Fatalf("unexpected divergences: %d", pred.DivFlushes)
	}
}

// TestEagerPredicationInjectsSelects: the eager (DMP-style) discipline
// injects select micro-ops at reconvergence and stays correct.
func TestEagerPredicationInjectsSelects(t *testing.T) {
	p, m, branchPC, reconPC := hammockProgram(5000)
	sch := &fixedScheme{pc: branchPC, spec: ooo.PredSpec{ReconPC: reconPC, MaxBody: 56, Eager: true}}
	res := runFixed(t, p, m, sch, 1_000_000)
	if res.SelectUops == 0 {
		t.Fatal("no select micro-ops injected")
	}
	if res.SelectUops < res.Predications {
		t.Fatalf("selects %d < predications %d (r7 is written on both paths)",
			res.SelectUops, res.Predications)
	}
}

// TestWrongReconvergenceDiverges: a spec pointing at an unreachable
// reconvergence PC forces divergence flushes and still recovers
// architecturally.
func TestWrongReconvergenceDiverges(t *testing.T) {
	p, m, branchPC, _ := hammockProgram(2000)
	sch := &fixedScheme{pc: branchPC, spec: ooo.PredSpec{ReconPC: len(p) - 1, MaxBody: 24}}
	res := runFixed(t, p, m, sch, 1_000_000)
	if res.DivFlushes == 0 {
		t.Fatal("expected divergence flushes for bogus reconvergence")
	}
}

// TestType3Predication: a Type-3 shape (taken path beyond the
// fall-through region, jumping back) predicated taken-path-first.
func TestType3Predication(t *testing.T) {
	b := prog.NewBuilder()
	b.MovI(isa.R1, 4000)
	b.MovI(isa.R3, 0)
	b.Label("loop")
	b.AndI(isa.R6, isa.R3, 7)
	b.XorI(isa.R6, isa.R6, 3)
	b.AndI(isa.R6, isa.R6, 1)
	branchPC := b.PC()
	b.Brnz(isa.R6, "tpath")
	b.AddI(isa.R7, isa.R7, 7)
	reconPC := b.PC()
	b.Label("recon")
	b.AddI(isa.R3, isa.R3, 1)
	b.Sub(isa.R8, isa.R3, isa.R1)
	b.Brnz(isa.R8, "loop")
	b.Halt()
	b.Label("tpath")
	b.AddI(isa.R7, isa.R7, 3)
	b.Jmp("recon")
	p := b.MustBuild()

	sch := &fixedScheme{pc: branchPC, spec: ooo.PredSpec{ReconPC: reconPC, FirstTaken: true, MaxBody: 32}}
	res := runFixed(t, p, isa.NewMemory(), sch, 200_000)
	if res.Predications == 0 {
		t.Fatal("never predicated")
	}
	if res.DivFlushes != 0 {
		t.Fatalf("divergences on a well-formed Type-3: %d", res.DivFlushes)
	}
}

// TestDMPPBHPushesHistory: with PushTrueHistory the predicated branch's
// outcome stays in global history, so a perfectly correlated later branch
// keeps predicting well (the Fig. 9 oracle); without it the correlation
// is destroyed.
func TestDMPPBHPushesHistory(t *testing.T) {
	// Hammock + correlated tail branch reading the same condition bit.
	b := prog.NewBuilder()
	b.MovI(isa.R1, 20000)
	b.MovI(isa.R2, 0x1000)
	b.MovI(isa.R3, 0)
	b.Label("loop")
	b.AndI(isa.R4, isa.R3, 2047)
	b.MulI(isa.R4, isa.R4, 8)
	b.Add(isa.R5, isa.R2, isa.R4)
	b.Load(isa.R6, isa.R5, 0)
	b.AndI(isa.R6, isa.R6, 1)
	branchPC := b.PC()
	b.Brz(isa.R6, "else")
	b.AddI(isa.R7, isa.R7, 3)
	b.Jmp("end")
	b.Label("else")
	b.AddI(isa.R7, isa.R7, 7)
	b.Label("end")
	reconPC := b.PC()
	b.Nop()
	tailPC := b.PC()
	b.Brz(isa.R6, "tail_skip") // perfectly correlated with the hammock
	b.AddI(isa.R9, isa.R9, 1)
	b.Label("tail_skip")
	b.AddI(isa.R3, isa.R3, 1)
	b.Sub(isa.R8, isa.R3, isa.R1)
	b.Brnz(isa.R8, "loop")
	b.Halt()
	p := b.MustBuild()
	m := isa.NewMemory()
	x := uint64(0xACE1)
	for i := int64(0); i < 2048; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		m.Store(0x1000+i*8, int64(x&0xFF))
	}

	tailMispredicts := func(push bool) int64 {
		sch := &fixedScheme{pc: branchPC, spec: ooo.PredSpec{
			ReconPC: reconPC, MaxBody: 56, Eager: true, PushTrueHistory: push,
		}}
		res := runFixed(t, p, m, sch, 2_000_000)
		st := res.PerBranch[tailPC]
		if st == nil {
			t.Fatal("tail branch never retired")
		}
		return st.Mispredict
	}

	without := tailMispredicts(false)
	with := tailMispredicts(true)
	if with*2 > without {
		t.Fatalf("PBH tail mispredicts %d not well below plain predication's %d", with, without)
	}
}

// TestScaledConfigsRun: the 2x/3x/future cores execute a real workload
// correctly (resource scaling does not break the pipeline invariants).
func TestScaledConfigsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	w, err := workload.ByName("gobmk")
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []config.Core{config.Scaled(2), config.Scaled(3), config.Future()} {
		p, m := w.Build()
		c := ooo.NewWithMemory(cfg, p, bpu.NewTAGE(bpu.DefaultTAGEConfig()), core.New(core.DefaultConfig()), m.Clone())
		res, err := c.Run(150_000)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		ref := isa.NewArchState(m.Clone())
		ref.Run(p, res.Retired)
		for r := 0; r < isa.NumRegs; r++ {
			if res.FinalRegs[r] != ref.Regs[r] {
				t.Fatalf("%s: r%d = %d, want %d", cfg.Name, r, res.FinalRegs[r], ref.Regs[r])
			}
		}
	}
}

// TestWiderCoreIsFaster: a compute-bound workload gains IPC from a wider,
// deeper core.
func TestWiderCoreIsFaster(t *testing.T) {
	w, err := workload.ByName("hmmer")
	if err != nil {
		t.Fatal(err)
	}
	ipc := func(cfg config.Core) float64 {
		p, m := w.Build()
		c := ooo.NewWithMemory(cfg, p, bpu.NewTAGE(bpu.DefaultTAGEConfig()), nil, m)
		res, err := c.Run(150_000)
		if err != nil {
			t.Fatal(err)
		}
		return res.IPC
	}
	one := ipc(config.Scaled(1))
	three := ipc(config.Scaled(3))
	if three <= one*1.1 {
		t.Fatalf("3x core IPC %.3f not meaningfully above 1x %.3f", three, one)
	}
}
