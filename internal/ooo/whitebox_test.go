package ooo

import (
	"testing"

	"acb/internal/bpu"
	"acb/internal/config"
	"acb/internal/isa"
	"acb/internal/prog"
)

// ---- ROB ring ------------------------------------------------------------

func TestROBAllocPopWraps(t *testing.T) {
	r := newROB(4)
	var seqs []int64
	for i := 0; i < 10; i++ {
		if r.full() {
			r.pop()
		}
		e := r.alloc()
		seqs = append(seqs, e.seq)
	}
	for i, s := range seqs {
		if s != int64(i) {
			t.Fatalf("seq %d = %d", i, s)
		}
	}
	if r.occupancy() != 4 {
		t.Fatalf("occupancy = %d", r.occupancy())
	}
}

func TestROBAtValidatesSeq(t *testing.T) {
	r := newROB(4)
	e := r.alloc()
	if r.at(e.seq) != e {
		t.Fatal("at() missed live entry")
	}
	if r.at(e.seq+1) != nil {
		t.Fatal("at() returned unallocated seq")
	}
	r.pop()
	if r.at(e.seq) != nil {
		t.Fatal("at() returned retired seq")
	}
}

func TestROBSquashAfter(t *testing.T) {
	r := newROB(8)
	for i := 0; i < 6; i++ {
		r.alloc()
	}
	var squashed []int64
	r.squashAfter(2, func(e *robEntry) { squashed = append(squashed, e.seq) })
	// Youngest first: 5,4,3.
	if len(squashed) != 3 || squashed[0] != 5 || squashed[2] != 3 {
		t.Fatalf("squashed = %v", squashed)
	}
	if r.occupancy() != 3 {
		t.Fatalf("occupancy = %d", r.occupancy())
	}
	// Reallocation reuses the squashed sequence numbers.
	if e := r.alloc(); e.seq != 3 {
		t.Fatalf("post-squash seq = %d, want 3", e.seq)
	}
}

// ---- Register accounting ---------------------------------------------------

// prfAccounting verifies that after a drained (halted) run, the physical
// register file partitions exactly into the free list plus the
// architectural map — i.e. no register leaked and none was double-freed.
func prfAccounting(t *testing.T, c *Core) {
	t.Helper()
	if c.rob.occupancy() != 0 {
		t.Fatalf("ROB not drained: %d", c.rob.occupancy())
	}
	seen := make(map[int]string, c.cfg.PRFSize)
	for r := 0; r < isa.NumRegs; r++ {
		p := c.rat[r]
		if prev, dup := seen[p]; dup {
			t.Fatalf("phys %d mapped twice (%s and rat[r%d])", p, prev, r)
		}
		seen[p] = "rat"
	}
	for _, p := range c.freeList {
		if prev, dup := seen[p]; dup {
			t.Fatalf("phys %d double-owned (%s and freelist)", p, prev)
		}
		seen[p] = "free"
	}
	if len(seen) != c.cfg.PRFSize {
		t.Fatalf("accounted %d physical registers, want %d (leak of %d)",
			len(seen), c.cfg.PRFSize, c.cfg.PRFSize-len(seen))
	}
}

// hammockWithStores builds a small halting program exercising flushes,
// predication and stores.
func hammockWithStores(iters int64) ([]isa.Instruction, *isa.Memory) {
	b := prog.NewBuilder()
	b.MovI(isa.R1, iters)
	b.MovI(isa.R2, 0x1000)
	b.MovI(isa.R3, 0)
	b.Label("loop")
	b.AndI(isa.R4, isa.R3, 511)
	b.MulI(isa.R4, isa.R4, 8)
	b.Add(isa.R5, isa.R2, isa.R4)
	b.Load(isa.R6, isa.R5, 0)
	b.AndI(isa.R6, isa.R6, 1)
	b.Brz(isa.R6, "else")
	b.AddI(isa.R7, isa.R7, 3)
	b.Store(isa.R5, 0x8000, isa.R7)
	b.Jmp("end")
	b.Label("else")
	b.AddI(isa.R7, isa.R7, 7)
	b.Label("end")
	b.AddI(isa.R3, isa.R3, 1)
	b.Sub(isa.R8, isa.R3, isa.R1)
	b.Brnz(isa.R8, "loop")
	b.Halt()
	m := isa.NewMemory()
	x := uint64(0xC0FFEE)
	for i := int64(0); i < 512; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		m.Store(0x1000+i*8, int64(x&0xFF))
	}
	return b.MustBuild(), m
}

func TestPRFConservationBaseline(t *testing.T) {
	p, m := hammockWithStores(3000)
	c := NewWithMemory(config.Skylake(), p, bpu.NewTAGE(bpu.DefaultTAGEConfig()), nil, m)
	res, err := c.Run(1_000_000)
	if err != nil || !res.Halted {
		t.Fatalf("run: halted=%v err=%v", res.Halted, err)
	}
	prfAccounting(t, c)
}

func TestPRFConservationStallPredication(t *testing.T) {
	p, m := hammockWithStores(3000)
	sch := &everyBranchScheme{spec: PredSpec{MaxBody: 48}}
	sch.recon = func(pc int) (int, bool) {
		// Predicate the hammock branch only (pc of Brz): identified by the
		// forward target.
		if p[pc].Op == isa.Br && p[pc].Target > pc {
			g := prog.NewCFG(p)
			if r := g.Reconvergence(pc); r >= 0 {
				return r, true
			}
		}
		return 0, false
	}
	c := NewWithMemory(config.Skylake(), p, bpu.NewTAGE(bpu.DefaultTAGEConfig()), sch, m)
	res, err := c.Run(1_000_000)
	if err != nil || !res.Halted {
		t.Fatalf("run: halted=%v err=%v", res.Halted, err)
	}
	if res.Predications == 0 {
		t.Fatal("scheme never predicated")
	}
	prfAccounting(t, c)
}

func TestPRFConservationEagerPredication(t *testing.T) {
	p, m := hammockWithStores(3000)
	sch := &everyBranchScheme{spec: PredSpec{MaxBody: 48, Eager: true}}
	sch.recon = func(pc int) (int, bool) {
		if p[pc].Op == isa.Br && p[pc].Target > pc {
			g := prog.NewCFG(p)
			if r := g.Reconvergence(pc); r >= 0 {
				return r, true
			}
		}
		return 0, false
	}
	c := NewWithMemory(config.Skylake(), p, bpu.NewTAGE(bpu.DefaultTAGEConfig()), sch, m)
	res, err := c.Run(1_000_000)
	if err != nil || !res.Halted {
		t.Fatalf("run: halted=%v err=%v", res.Halted, err)
	}
	if res.SelectUops == 0 {
		t.Fatal("no selects injected")
	}
	prfAccounting(t, c)
}

// everyBranchScheme predicates any forward branch its recon callback
// accepts.
type everyBranchScheme struct {
	spec  PredSpec
	recon func(pc int) (int, bool)
}

func (s *everyBranchScheme) Name() string { return "every" }
func (s *everyBranchScheme) ShouldPredicate(pc int, _ bool, _ int, _ uint64) (PredSpec, bool) {
	r, ok := s.recon(pc)
	if !ok {
		return PredSpec{}, false
	}
	sp := s.spec
	sp.ReconPC = r
	return sp, true
}
func (s *everyBranchScheme) OnFetch(FetchEvent)           {}
func (s *everyBranchScheme) OnFlush()                     {}
func (s *everyBranchScheme) OnBranchResolve(ResolveEvent) {}
func (s *everyBranchScheme) OnRetireTick(int64)           {}

// TestFetchQueueBounded: the decoupled fetch queue never exceeds its
// capacity even across flushes and contexts.
func TestFetchQueueBounded(t *testing.T) {
	p, m := hammockWithStores(500)
	c := NewWithMemory(config.Skylake(), p, bpu.NewTAGE(bpu.DefaultTAGEConfig()), nil, m)
	for i := 0; i < 20000; i++ {
		c.cycle++
		if c.stepCycle() {
			break
		}
		if c.fqLen > c.fetchQCap {
			t.Fatalf("fetch queue %d exceeds cap %d at cycle %d", c.fqLen, c.fetchQCap, c.cycle)
		}
		if c.rob.occupancy() > c.cfg.ROBSize {
			t.Fatalf("ROB over capacity")
		}
		if len(c.iq) > c.cfg.IQSize {
			t.Fatalf("IQ over capacity: %d", len(c.iq))
		}
	}
}

// TestResultRates: derived metrics behave at zero.
func TestResultRates(t *testing.T) {
	var r Result
	if r.MispredPerKilo() != 0 || r.FlushPerKilo() != 0 {
		t.Fatal("zero-retired rates must be 0")
	}
	r.Retired = 1000
	r.Mispredicts = 5
	r.Flushes = 7
	if r.MispredPerKilo() != 5 || r.FlushPerKilo() != 7 {
		t.Fatalf("rates = %f/%f", r.MispredPerKilo(), r.FlushPerKilo())
	}
}
