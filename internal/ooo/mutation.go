package ooo

// Mutation identifies a deliberate correctness break injected into the
// core. The differential-fuzzing harness (internal/difftest) uses these in
// its self-test: a harness that cannot detect a core with a known-broken
// transparency discipline proves nothing, so the suite breaks the core on
// purpose and asserts the functional-emulator oracle reports a mismatch.
// Mutations are test-only plumbing; production paths never set one.
type Mutation uint8

// Mutations.
const (
	// MutNone leaves the core unmodified.
	MutNone Mutation = iota
	// MutSkipTransparencyMove breaks ACB register transparency: a
	// predicated-false-path producer skips the move from the previous
	// physical register of its logical destination and completes with the
	// freshly allocated register's zero value instead (Sec. III-C2's
	// mechanism, disabled).
	MutSkipTransparencyMove
	// MutSkipMemInvalidate breaks false-path memory nullification: loads
	// and stores on the predicated-false path execute and commit as if
	// they were on the taken path instead of being invalidated in the LSQ
	// (Sec. III-C3's mechanism, disabled).
	MutSkipMemInvalidate
)

// String names the mutation.
func (m Mutation) String() string {
	switch m {
	case MutNone:
		return "none"
	case MutSkipTransparencyMove:
		return "skip-transparency-move"
	case MutSkipMemInvalidate:
		return "skip-mem-invalidate"
	}
	return "mutation(?)"
}

// InjectMutation arms a deliberate correctness break (difftest self-test
// only). Must be called before Run.
func (c *Core) InjectMutation(m Mutation) { c.mutation = m }
