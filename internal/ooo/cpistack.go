package ooo

import (
	"fmt"
	"strings"
)

// CPIStack attributes every simulated cycle to exactly one cause bucket,
// reproducing the per-cause cycle accounting the paper's Sec. VI analysis
// implies ("saved pipeline flushes net of added stalls"). Collection is
// off by default (EnableCPIStack) — like PipeStats, the hot path pays
// nothing when disabled.
//
// Exactly one bucket is charged per cycle, so the bucket totals always sum
// to the run's elapsed cycles (tested by internal/ooo's whitebox suite):
//
//   - Base: at least one ROB entry committed this cycle (includes commit
//     slots spent on select micro-ops and nullified false-path bodies).
//   - FrontendStarve: nothing committed and the ROB is empty with no flush
//     being repaired — the front end has not delivered work (fetch
//     latency, fetch parked off the program end).
//   - BadSpecFlush: nothing committed and the ROB is empty while the
//     pipeline refills after a branch-mispredict flush.
//   - ACBDivergence: as BadSpecFlush, but the flush being repaired was a
//     predication-divergence flush (Sec. III-C) — the cost side of ACB.
//   - ACBBodyStall: nothing committed and the ROB head is gated by ACB's
//     stall discipline: a predicated branch awaiting its reconvergence /
//     divergence identifier, or a body instruction awaiting the
//     predicated branch's resolution (Sec. III-C2).
//   - BackendStall: nothing committed and the ROB head is incomplete for
//     any other reason (execution latency, cache misses, dependency
//     chains, transparency moves awaiting their source).
//
// A flush's refill window is attributed to its cause from the flush until
// the first commit of an instruction allocated after the flush point;
// non-empty-ROB cycles inside that window are still classified by the ROB
// head, which charges execution of the refilled path to the backend
// rather than to speculation.
type CPIStack struct {
	Cycles int64 // total attributed cycles (== sum of the buckets)

	Base           int64
	FrontendStarve int64
	BadSpecFlush   int64
	BackendStall   int64
	ACBBodyStall   int64
	ACBDivergence  int64

	// Per-cycle scratch, reset by account.
	commits int

	// Flush-repair window state (see noteFlush / noteCommit).
	flushCause flushCause
	flushSeq   int64
}

// flushCause tags the most recent unrepaired pipeline flush.
type flushCause uint8

const (
	flushNone flushCause = iota
	flushMispredict
	flushDivergence
)

// CPIBucketNames lists the bucket labels in canonical presentation order;
// Buckets returns values in the same order.
var CPIBucketNames = []string{
	"base", "frontend", "badspec", "backend", "acb-body", "acb-divergence",
}

// EnableCPIStack turns on per-cycle CPI attribution.
func (c *Core) EnableCPIStack() {
	if c.cpi == nil {
		c.cpi = &CPIStack{flushSeq: -1}
	}
}

// CPIStack returns the collected attribution (nil unless enabled).
func (c *Core) CPIStack() *CPIStack { return c.cpi }

// Buckets returns the bucket totals in CPIBucketNames order.
func (p *CPIStack) Buckets() []int64 {
	return []int64{p.Base, p.FrontendStarve, p.BadSpecFlush,
		p.BackendStall, p.ACBBodyStall, p.ACBDivergence}
}

// Sum returns the total of all buckets; it equals Cycles by construction.
func (p *CPIStack) Sum() int64 {
	var s int64
	for _, v := range p.Buckets() {
		s += v
	}
	return s
}

// noteCommit records one ROB commit; a commit of an instruction allocated
// after the last flush point closes that flush's repair window.
func (p *CPIStack) noteCommit(seq int64) {
	p.commits++
	if p.flushCause != flushNone && seq > p.flushSeq {
		p.flushCause = flushNone
	}
}

// noteFlush opens a flush-repair window: empty-ROB cycles until the first
// post-flush commit are charged to the flush cause.
func (p *CPIStack) noteFlush(cause flushCause, seq int64) {
	p.flushCause = cause
	p.flushSeq = seq
}

// account classifies the cycle that just completed. Called once per
// stepCycle, after the retire stage has drained this cycle's commits.
func (c *Core) cpiAccount() {
	p := c.cpi
	p.Cycles++
	if p.commits > 0 {
		p.commits = 0
		p.Base++
		return
	}
	head := c.rob.head()
	if head == nil {
		switch p.flushCause {
		case flushMispredict:
			p.BadSpecFlush++
		case flushDivergence:
			p.ACBDivergence++
		default:
			p.FrontendStarve++
		}
		return
	}
	// The head exists and did not commit this cycle. Charge ACB's stall
	// discipline when it is what gates the head; everything else is a
	// generic backend stall.
	if ctx := head.ctx; ctx != nil && !ctx.spec.Eager {
		switch head.role {
		case RolePredBranch:
			if !ctx.closed {
				p.ACBBodyStall++
				return
			}
		case RoleBody:
			if !ctx.branchDone {
				p.ACBBodyStall++
				return
			}
		}
	}
	p.BackendStall++
}

// String renders the stack as per-bucket cycle counts and shares.
func (p *CPIStack) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycle attribution over %d cycles:\n", p.Cycles)
	vals := p.Buckets()
	for i, name := range CPIBucketNames {
		share := 0.0
		if p.Cycles > 0 {
			share = float64(vals[i]) * 100 / float64(p.Cycles)
		}
		fmt.Fprintf(&b, "  %-14s %12d  %5.1f%%\n", name, vals[i], share)
	}
	return b.String()
}
