package ooo

import (
	"fmt"

	"acb/internal/isa"
)

// completeStage finishes instructions whose latency expires this cycle:
// writes results to the physical register file (waking dependents) and
// resolves branches, triggering mispredict or divergence flushes.
func (c *Core) completeStage() {
	// Deferred divergence flushes: an eager-mode branch can resolve before
	// the front end discovers the instance diverges.
	for _, ctx := range c.liveCtxs {
		if ctx.diverged && ctx.branchDone && !ctx.flushedDiv {
			if be := c.rob.at(ctx.branchSeq); be != nil {
				c.divergenceFlush(be)
				c.progress = true
			}
		}
	}

	slot := c.cycle & c.compMask
	bucket := c.compRing[slot]
	if len(bucket) == 0 {
		return
	}
	// Records are insertion-sorted by seq, so the oldest mispredict
	// flushes before younger ones without a per-cycle sort.
	for _, rec := range bucket {
		e := c.rob.at(rec.seq)
		if e == nil || e.gen != rec.gen || e.done || !e.issued {
			continue // squashed, or a stale record against a reused seq
		}
		c.progress = true
		e.done = true
		if e.dest >= 0 {
			c.prf[e.dest] = prfEntry{val: e.result, ready: true}
		}
		if e.role == RoleSelect {
			continue
		}
		if e.inst.Op == isa.Br {
			c.resolveBranch(e)
		}
	}
	c.compPending -= len(bucket)
	c.compRing[slot] = bucket[:0]
}

// resolveBranch handles a conditional branch's resolution.
func (c *Core) resolveBranch(e *robEntry) {
	switch e.role {
	case RolePredBranch:
		ctx := e.ctx
		ctx.branchDone = true
		ctx.branchTaken = e.resolvedTaken
		c.invalidateFalseMemOps(ctx)
		if ctx.diverged && !ctx.flushedDiv {
			c.divergenceFlush(e)
		}
	case RoleBody:
		// Internal branches inside a predicated region never redirect:
		// the true-direction walk followed the architecturally-correct
		// path and the false direction is transparent.
	default:
		if e.trueKnown && !e.wrongPath && e.resolvedTaken != e.trueTaken {
			panic(fmt.Sprintf("ooo: correct-path branch pc=%d seq=%d computed %v but oracle said %v (cycle %d)",
				e.pc, e.seq, e.resolvedTaken, e.trueTaken, c.cycle))
		}
		if e.resolvedTaken != e.predTaken && !e.flushed {
			e.flushed = true
			e.mispredict = true
			e.robFrac = float64(e.seq-c.rob.headSeq) / float64(c.rob.size())
			target := e.pc + 1
			if e.resolvedTaken {
				target = e.inst.Target
			}
			c.flushAfter(e, target)
			if c.cpi != nil {
				c.cpi.noteFlush(flushMispredict, e.seq)
			}
			if c.trace != nil {
				c.trace.Emit(EvFlushMispredict, e.pc, 0, int64(target))
			}
			// Repair speculative global history: rewind to this branch's
			// fetch-time history and insert the actual outcome.
			c.pred.SetHistory(e.pred.Hist)
			c.pred.PushHistory(uint64(e.pc), e.resolvedTaken)
			if e.wrongTok != 0 && e.wrongTok == c.wrongTok {
				if c.dbgRing != nil {
					c.dbgLog("mispredict flush clears wrongTok (pc=%d seq=%d)", e.pc, e.seq)
				}
				c.onWrongPath = false
				c.wrongTok = 0
				if !c.oracleHalted && c.oracle.PC != c.fetchPC {
					panic(fmt.Sprintf("ooo: oracle desync after flush: oracle=%d fetch=%d", c.oracle.PC, c.fetchPC))
				}
			}
		}
	}
}

// invalidateFalseMemOps marks the loads and stores on the
// predicated-false path invalid in the LSQ so they are excluded from
// address matching and never dispatch to memory (Sec. III-C3).
func (c *Core) invalidateFalseMemOps(ctx *ctxState) {
	if c.mutation == MutSkipMemInvalidate {
		return // deliberate break (difftest self-test)
	}
	mark := func(seqs []int64) {
		for _, seq := range seqs {
			se := c.rob.at(seq)
			if se == nil || se.ctx != ctx || se.role != RoleBody {
				continue
			}
			if se.pathTaken != ctx.branchTaken && !se.invalidated {
				se.invalidated = true
				c.s.invalidatedMem++
			}
		}
	}
	mark(c.loads.live())
	mark(c.stores.live())
}

// divergenceFlush forces a pipeline flush at a predicated branch whose
// instance failed to reconverge: everything younger is squashed and fetch
// redirects to the branch's resolved target.
func (c *Core) divergenceFlush(e *robEntry) {
	ctx := e.ctx
	ctx.flushedDiv = true
	ctx.reconHint = -1
	// Multiple-reconvergence feedback: the first correct-path PC beyond
	// the learned reconvergence point is where this instance actually
	// re-joined (program order), available from the oracle scan.
	for _, pc := range ctx.truePath {
		if pc > ctx.spec.ReconPC {
			ctx.reconHint = pc
			break
		}
	}
	c.s.divFlushes++
	target := e.pc + 1
	if e.resolvedTaken {
		target = e.inst.Target
	}
	c.flushAfter(e, target)
	if c.cpi != nil {
		c.cpi.noteFlush(flushDivergence, e.seq)
	}
	if c.trace != nil {
		c.trace.Emit(EvFlushDivergence, e.pc, ctx.id, int64(target))
	}

	// History: predicated instances are absent from history (ACB); the
	// DMP-PBH oracle inserts the true outcome.
	c.pred.SetHistory(e.histAtFetch)
	if ctx.spec.PushTrueHistory {
		c.pred.PushHistory(uint64(e.pc), e.resolvedTaken)
	}

	// Oracle rewind for correct-path contexts: restore the snapshot taken
	// at context open and step just the branch.
	if ctx.trueKnown {
		idx := -1
		for i, sn := range c.snapshots {
			if sn.ctx == ctx {
				idx = i
				break
			}
		}
		if idx < 0 {
			panic("ooo: missing oracle snapshot for divergent context")
		}
		sn := c.snapshots[idx]
		c.snapshots = c.snapshots[:idx]
		c.oracle.Regs = sn.regs
		c.oracle.PC = sn.pc
		c.oracleMem.RestoreWrites(sn.mem)
		c.oracle.Step(c.prog) // the branch itself
		c.oracleHalted = false
		if c.oracle.PC != target {
			panic(fmt.Sprintf("ooo: divergence redirect mismatch: oracle=%d target=%d", c.oracle.PC, target))
		}
	}
	if c.wrongTok == ctx.tok && ctx.tok != 0 {
		if c.dbgRing != nil {
			c.dbgLog("divflush clears wrongTok (ctx%d)", ctx.id)
		}
		c.onWrongPath = false
		c.wrongTok = 0
	}
}

// flushAfter squashes everything younger than e, restores the RAT from
// e's checkpoint, clears the front end and redirects fetch.
func (c *Core) flushAfter(e *robEntry, redirectPC int) {
	if c.dbgRing != nil {
		c.dbgLog("flush at seq=%d pc=%d role=%d redirect=%d oracle=%d wrong=%v", e.seq, e.pc, e.role, redirectPC, c.oracle.PC, c.onWrongPath)
	}
	c.s.flushes++
	if !e.hasCkpt {
		panic("ooo: flush at instruction without RAT checkpoint")
	}
	c.rob.squashAfter(e.seq, func(se *robEntry) {
		if se.dest >= 0 {
			c.freeList = append(c.freeList, se.dest)
		}
	})
	c.rat = e.ratCkpt

	c.iq = filterEntries(c.iq, e.seq)
	c.loads.filter(e.seq)
	c.stores.filter(e.seq)
	// The completion calendar is untouched: squashed sequence numbers are
	// reused after the flush, but every record carries its allocation
	// generation, so stale events are rejected lazily when their bucket's
	// cycle arrives (completeStage). Flush cost no longer scales with the
	// number of in-flight completions.

	// Front-end reset.
	c.fqReset()
	c.pendingSelects = c.pendingSelects[:0]
	c.selHead = 0
	c.ctx = nil
	c.ctxPhase = 0
	c.pendingClose = nil
	c.pendingSwtch = false
	c.fetchParked = false
	c.fetchPC = redirectPC
	if redirectPC < 0 || redirectPC >= len(c.prog) {
		c.fetchParked = true
	}

	// Prune contexts and oracle snapshots younger than the flush point.
	live := c.liveCtxs[:0]
	for _, ctx := range c.liveCtxs {
		if ctx != e.ctx && (ctx.branchSeq < 0 || ctx.branchSeq > e.seq) {
			continue // squashed
		}
		live = append(live, ctx)
	}
	c.liveCtxs = live
	snaps := c.snapshots[:0]
	for _, sn := range c.snapshots {
		if sn.ctx != e.ctx && (sn.ctx.branchSeq < 0 || sn.ctx.branchSeq > e.seq) {
			continue
		}
		snaps = append(snaps, sn)
	}
	c.snapshots = snaps

	if c.scheme != nil {
		c.scheme.OnFlush()
	}
}

// filterEntries keeps entries with seq ≤ limit, preserving order.
func filterEntries(es []*robEntry, limit int64) []*robEntry {
	out := es[:0]
	for _, e := range es {
		if e.seq <= limit {
			out = append(out, e)
		}
	}
	// Clear the dropped tail so squashed entries don't linger reachable.
	for i := len(out); i < len(es); i++ {
		es[i] = nil
	}
	return out
}
