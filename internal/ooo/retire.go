package ooo

import (
	"fmt"

	"acb/internal/isa"
)

// retireStage commits up to RetireWidth completed instructions in order:
// stores write the committed memory and cache, branch predictors train,
// physical registers free, and the predication scheme observes resolved
// branches and retirement ticks (Dynamo's epoch clock). It returns true
// when the program's Halt retires.
func (c *Core) retireStage() bool {
	for n := 0; n < c.cfg.RetireWidth; n++ {
		e := c.rob.head()
		if e == nil || !e.done {
			return false
		}
		if e.wrongPath {
			// A wrong-path instruction can never become the oldest: the
			// mispredicted branch ahead of it flushes first.
			panic(fmt.Sprintf("ooo: wrong-path instruction reached retirement: pc=%d role=%d seq=%d cycle=%d inst=%v",
				e.pc, e.role, e.seq, c.cycle, e.inst) +
				fmt.Sprintf(" cause=%s@pc%d cyc%d stillWrong=%v", c.dbgWrongWhy, c.dbgWrongPC, c.dbgWrongCyc, c.onWrongPath))
		}

		if e.isStore && !e.invalidated {
			c.commitMem.Store(e.effAddr, e.storeVal)
			c.hier.StoreCommit(e.effAddr)
		}
		if e.isLoad {
			c.loads.popFrontIf(e.seq)
		}
		if e.isStore {
			c.stores.popFrontIf(e.seq)
		}

		if e.inst != nil {
			switch e.inst.Op {
			case isa.Br:
				c.retireBranch(e)
			case isa.Jmp:
				c.s.branches++
			}
		}

		// Architectural register map and reclamation. An eager-mode body
		// producer on the discarded path must not update the committed
		// map: its result is dead at the merge, and the select micro-op
		// that follows performs the architectural write (in stall mode
		// the transparency move already carries the previous mapping's
		// value, so the update is harmless there).
		discarded := e.role == RoleBody && e.ctx != nil && e.ctx.spec.Eager &&
			e.ctx.branchDone && e.pathTaken != e.ctx.branchTaken
		if e.dest >= 0 && !discarded {
			if e.role == RoleSelect {
				c.commitRat[e.selLog] = e.dest
			} else if e.inst != nil && e.inst.HasDest() {
				c.commitRat[e.inst.Rd] = e.dest
			}
		}
		if e.dest >= 0 && e.prevPhys >= 0 && !e.skipPrevFree {
			c.freeList = append(c.freeList, e.prevPhys)
		}
		for i := 0; i < int(e.nFree); i++ {
			c.freeList = append(c.freeList, int(e.freeOnRetire[i]))
		}

		halt := e.inst != nil && e.inst.Op == isa.Halt
		c.rob.pop()
		c.progress = true
		if c.pipe != nil {
			c.pipe.retireSlots++
		}
		if c.cpi != nil {
			c.cpi.noteCommit(e.seq)
		}
		// Only architecturally-useful instructions count as retired:
		// predicated-false-path bodies are transparent nullifications and
		// select micro-ops are machine-internal, so neither contributes
		// to IPC (they still consume commit bandwidth above).
		useful := e.role != RoleSelect &&
			!(e.role == RoleBody && e.ctx != nil && e.pathTaken != e.ctx.branchTaken)
		if useful {
			c.retired++
			if c.scheme != nil {
				c.scheme.OnRetireTick(c.cycle)
			}
		}
		if halt {
			return true
		}
	}
	return false
}

// retireBranch handles a retiring conditional branch: statistics,
// predictor training and scheme events.
func (c *Core) retireBranch(e *robEntry) {
	c.s.branches++
	c.s.condBranches++
	st := c.branchStat(e.pc)
	st.Count++
	if e.resolvedTaken {
		st.Taken++
	}

	switch e.role {
	case RolePredBranch:
		ctx := e.ctx
		c.s.predications++
		st.Predicated++
		if ctx.flushedDiv {
			st.Diverged++
		}
		// Drop this context's oracle snapshot (divergence already removed
		// it) and commit the oracle overlay when no contexts remain open.
		if len(c.snapshots) > 0 && c.snapshots[0].ctx == ctx {
			// Shift down rather than reslicing the base forward: snapshots[1:]
			// would strand capacity behind the new base and force the next
			// append to reallocate once per predicated instance.
			n := copy(c.snapshots, c.snapshots[1:])
			c.snapshots[n] = oracleSnap{}
			c.snapshots = c.snapshots[:n]
			if len(c.snapshots) == 0 {
				c.oracleMem.Commit()
			}
		}
		c.pruneLiveCtx(ctx)
		if c.scheme != nil {
			hint := -1
			if ctx.flushedDiv {
				hint = ctx.reconHint
			}
			c.scheme.OnBranchResolve(ResolveEvent{
				PC:              e.pc,
				Target:          e.inst.Target,
				Taken:           e.resolvedTaken,
				Predicated:      true,
				Diverged:        ctx.flushedDiv,
				ReconHint:       hint,
				BodyStallCycles: ctx.bodyStalls,
				Hist:            e.histAtFetch,
			})
		}
		// No predictor update: no prediction was made for this instance
		// and it is absent from the global history (Sec. V-C).

	case RoleBody:
		// Internal branch of a predicated region: excluded from history
		// at fetch, so excluded from training too.

	default:
		if e.mispredict {
			c.s.mispredRetired++
			st.Mispredict++
		}
		if c.scheme != nil {
			c.scheme.OnBranchResolve(ResolveEvent{
				PC:         e.pc,
				Target:     e.inst.Target,
				Taken:      e.resolvedTaken,
				Mispredict: e.mispredict,
				ROBFrac:    e.robFrac,
				Hist:       e.histAtFetch,
				PredTaken:  e.predTaken,
			})
		}
		if e.hasPred {
			c.pred.Update(uint64(e.pc), e.pred, e.resolvedTaken)
		}
	}
}

func (c *Core) pruneLiveCtx(ctx *ctxState) {
	for i, lc := range c.liveCtxs {
		if lc == ctx {
			c.liveCtxs = append(c.liveCtxs[:i], c.liveCtxs[i+1:]...)
			return
		}
	}
}
