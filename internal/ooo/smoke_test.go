package ooo

import (
	"testing"

	"acb/internal/bpu"
	"acb/internal/config"
	"acb/internal/isa"
	"acb/internal/prog"
)

// buildLoopHammock builds a loop that, per iteration, loads a
// pseudo-random word and runs a data-dependent IF/ELSE hammock over it,
// accumulating into r7. Returns the program and an initialized memory
// image.
func buildLoopHammock(iters int64) ([]isa.Instruction, *isa.Memory) {
	b := prog.NewBuilder()
	// r1 = loop counter, r2 = array base, r3 = index, r7 = accumulator
	b.MovI(isa.R1, iters)
	b.MovI(isa.R2, 0x1000)
	b.MovI(isa.R3, 0)
	b.MovI(isa.R7, 0)
	b.Label("loop")
	b.AndI(isa.R4, isa.R3, 255) // idx mod 256
	b.MulI(isa.R4, isa.R4, 8)   // byte offset
	b.Add(isa.R5, isa.R2, isa.R4)
	b.Load(isa.R6, isa.R5, 0) // data-dependent value
	b.AndI(isa.R6, isa.R6, 1) // low bit decides
	b.Brz(isa.R6, "else")
	b.AddI(isa.R7, isa.R7, 3) // then-path
	b.AddI(isa.R7, isa.R7, 1)
	b.Jmp("end")
	b.Label("else")
	b.AddI(isa.R7, isa.R7, 7) // else-path
	b.Label("end")
	b.AddI(isa.R3, isa.R3, 1)
	b.Sub(isa.R8, isa.R3, isa.R1)
	b.Brnz(isa.R8, "loop")
	b.Halt()
	p := b.MustBuild()

	m := isa.NewMemory()
	x := uint64(0x12345)
	for i := int64(0); i < 256; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		m.Store(0x1000+i*8, int64(x&0xFFFF))
	}
	return p, m
}

func runFunctional(t *testing.T, p []isa.Instruction, m *isa.Memory, max int64) *isa.ArchState {
	t.Helper()
	st := isa.NewArchState(m.Clone())
	if _, halted := st.Run(p, max); !halted {
		t.Fatalf("functional run did not halt within %d steps", max)
	}
	return st
}

// TestBaselineMatchesFunctional checks that the timing model's final
// architectural registers equal a pure functional run's, under a real
// (imperfect) predictor — i.e. wrong-path execution and flush recovery are
// value-correct.
func TestBaselineMatchesFunctional(t *testing.T) {
	p, m := buildLoopHammock(2000)
	want := runFunctional(t, p, m, 1_000_000)

	core := NewWithMemory(config.Skylake(), p, bpu.NewTAGE(bpu.DefaultTAGEConfig()), nil, m.Clone())
	res, err := core.Run(1_000_000)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !res.Halted {
		t.Fatalf("timing run did not halt (retired=%d)", res.Retired)
	}
	for r := 0; r < isa.NumRegs; r++ {
		if res.FinalRegs[r] != want.Regs[r] {
			t.Errorf("r%d = %d, want %d", r, res.FinalRegs[r], want.Regs[r])
		}
	}
	if res.IPC <= 0 {
		t.Fatalf("nonsensical IPC %f", res.IPC)
	}
	t.Logf("IPC=%.3f retired=%d cycles=%d mispredicts=%d flushes=%d",
		res.IPC, res.Retired, res.Cycles, res.Mispredicts, res.Flushes)
}

// TestOraclePredictorNoFlushes checks perfect prediction yields zero
// flushes and higher IPC than TAGE on an unpredictable branch.
func TestOraclePredictorNoFlushes(t *testing.T) {
	p, m := buildLoopHammock(2000)

	oracleCore := NewWithMemory(config.Skylake(), p, bpu.NewOracle(), nil, m.Clone())
	oracleRes, err := oracleCore.Run(1_000_000)
	if err != nil {
		t.Fatalf("oracle run: %v", err)
	}
	if oracleRes.Flushes != 0 {
		t.Fatalf("oracle predictor produced %d flushes", oracleRes.Flushes)
	}

	tageCore := NewWithMemory(config.Skylake(), p, bpu.NewTAGE(bpu.DefaultTAGEConfig()), nil, m.Clone())
	tageRes, err := tageCore.Run(1_000_000)
	if err != nil {
		t.Fatalf("tage run: %v", err)
	}
	if tageRes.Mispredicts == 0 {
		t.Fatalf("expected mispredicts on data-dependent branch")
	}
	if oracleRes.IPC <= tageRes.IPC {
		t.Errorf("oracle IPC %.3f should exceed TAGE IPC %.3f", oracleRes.IPC, tageRes.IPC)
	}
	t.Logf("oracle IPC=%.3f  tage IPC=%.3f  tage mispredicts=%d", oracleRes.IPC, tageRes.IPC, tageRes.Mispredicts)
}
