package ooo

import (
	"fmt"
	"strings"
)

// PipeStats collects per-cycle pipeline utilization: how many slots each
// stage filled, and occupancy histograms for the ROB and issue queue.
// Collection is off by default (EnablePipeStats) — it adds a few counters
// per cycle.
type PipeStats struct {
	cycles int64

	fetchSlots  int64 // instructions fetched
	renameSlots int64 // instructions + selects allocated
	issueSlots  int64 // instructions issued
	retireSlots int64 // ROB entries committed

	// robOcc and iqOcc bucket occupancy samples into eighths of capacity
	// (index 8 = completely full).
	robOcc [9]int64
	iqOcc  [9]int64

	// maxRob/maxIQ are the largest raw occupancies ever sampled; the
	// differential-fuzz invariant pack checks them against the configured
	// capacities.
	maxRob int
	maxIQ  int
}

// EnablePipeStats turns on pipeline utilization collection.
func (c *Core) EnablePipeStats() {
	if c.pipe == nil {
		c.pipe = &PipeStats{}
	}
}

// PipeStats returns the collected utilization (nil unless enabled).
func (c *Core) PipeStats() *PipeStats { return c.pipe }

// sample records one cycle's occupancy.
func (p *PipeStats) sample(robOcc, robCap, iqOcc, iqCap int) {
	p.cycles++
	p.robOcc[bucket(robOcc, robCap)]++
	p.iqOcc[bucket(iqOcc, iqCap)]++
	if robOcc > p.maxRob {
		p.maxRob = robOcc
	}
	if iqOcc > p.maxIQ {
		p.maxIQ = iqOcc
	}
}

// MaxOccupancy returns the largest ROB and issue-queue occupancies sampled
// over the run.
func (p *PipeStats) MaxOccupancy() (rob, iq int) { return p.maxRob, p.maxIQ }

func bucket(occ, capacity int) int {
	if capacity <= 0 {
		return 0
	}
	b := occ * 8 / capacity
	if b > 8 {
		b = 8
	}
	return b
}

// Utilization returns average slots-per-cycle for each stage.
func (p *PipeStats) Utilization() (fetch, rename, issue, retire float64) {
	if p.cycles == 0 {
		return
	}
	f := float64(p.cycles)
	return float64(p.fetchSlots) / f, float64(p.renameSlots) / f,
		float64(p.issueSlots) / f, float64(p.retireSlots) / f
}

// OccupancyShare returns the fraction of cycles each structure spent at
// or above 7/8 of its capacity (back-pressure indicator).
func (p *PipeStats) OccupancyShare() (robHigh, iqHigh float64) {
	if p.cycles == 0 {
		return
	}
	f := float64(p.cycles)
	return float64(p.robOcc[7]+p.robOcc[8]) / f, float64(p.iqOcc[7]+p.iqOcc[8]) / f
}

// String renders a compact report.
func (p *PipeStats) String() string {
	var b strings.Builder
	fe, rn, is, rt := p.Utilization()
	fmt.Fprintf(&b, "pipeline utilization over %d cycles (slots/cycle):\n", p.cycles)
	fmt.Fprintf(&b, "  fetch %.2f   rename %.2f   issue %.2f   retire %.2f\n", fe, rn, is, rt)
	robHigh, iqHigh := p.OccupancyShare()
	fmt.Fprintf(&b, "  ROB ≥7/8 full: %.1f%% of cycles   IQ ≥7/8 full: %.1f%%\n",
		robHigh*100, iqHigh*100)
	hist := func(name string, h [9]int64) {
		fmt.Fprintf(&b, "  %-4s occupancy/8:", name)
		for i, v := range h {
			fmt.Fprintf(&b, " %d:%.0f%%", i, float64(v)*100/float64(p.cycles))
		}
		b.WriteByte('\n')
	}
	if p.cycles > 0 {
		hist("ROB", p.robOcc)
		hist("IQ", p.iqOcc)
	}
	return b.String()
}
