package ooo

import (
	"context"
	"errors"
	"testing"
	"time"

	"acb/internal/bpu"
	"acb/internal/config"
)

// TestRunContextCancelledBeforeStart: a pre-cancelled context stops the
// run before any instruction retires.
func TestRunContextCancelledBeforeStart(t *testing.T) {
	p, m := buildLoopHammock(1_000_000)
	c := NewWithMemory(config.Skylake(), p, bpu.NewTAGE(bpu.DefaultTAGEConfig()), nil, m)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := c.RunContext(ctx, 1_000_000)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Retired != 0 {
		t.Fatalf("retired %d instructions under a cancelled context", res.Retired)
	}
}

// TestRunContextCancelMidRun: cancelling mid-simulation halts the core
// well before its retired-instruction budget is exhausted, and the
// returned statistics reflect the partial run.
func TestRunContextCancelMidRun(t *testing.T) {
	const budget = 200_000_000 // far beyond what milliseconds can retire
	p, m := buildLoopHammock(budget)
	c := NewWithMemory(config.Skylake(), p, bpu.NewTAGE(bpu.DefaultTAGEConfig()), nil, m)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	res, err := c.RunContext(ctx, budget)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Retired == 0 || res.Retired >= budget {
		t.Fatalf("retired = %d, want a partial run (0 < retired < %d)", res.Retired, budget)
	}
	if res.Halted {
		t.Fatal("cancelled run reported Halted")
	}
}

// TestRunContextNilAndBackground: nil and background contexts must not
// change Run's behaviour.
func TestRunContextNilAndBackground(t *testing.T) {
	for _, ctx := range []context.Context{nil, context.Background()} {
		p, m := buildLoopHammock(200)
		c := NewWithMemory(config.Skylake(), p, bpu.NewTAGE(bpu.DefaultTAGEConfig()), nil, m)
		res, err := c.RunContext(ctx, 50_000)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Halted {
			t.Fatalf("ctx=%v: short program did not halt", ctx)
		}
	}
}
