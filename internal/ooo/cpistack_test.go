package ooo

import (
	"testing"

	"acb/internal/bpu"
	"acb/internal/config"
)

// TestCPIStackDisabledByDefault checks the attributor stays off — and the
// result carries no stack — unless explicitly enabled.
func TestCPIStackDisabledByDefault(t *testing.T) {
	p, m := buildLoopHammock(50)
	c := NewWithMemory(config.Skylake(), p, bpu.NewTAGE(bpu.DefaultTAGEConfig()), nil, m)
	if c.CPIStack() != nil {
		t.Fatal("CPIStack non-nil before EnableCPIStack")
	}
	res, err := c.Run(100_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.CPI != nil {
		t.Fatal("Result.CPI non-nil without EnableCPIStack")
	}
}

// TestCPIStackSumsToCycles is the invariant the whole design hangs on:
// exactly one bucket is charged per cycle, so the bucket totals sum to the
// run's elapsed cycles — exactly, not approximately.
func TestCPIStackSumsToCycles(t *testing.T) {
	p, m := buildLoopHammock(2000)
	c := NewWithMemory(config.Skylake(), p, bpu.NewTAGE(bpu.DefaultTAGEConfig()), nil, m)
	c.EnableCPIStack()
	res, err := c.Run(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.CPI == nil {
		t.Fatal("Result.CPI nil after EnableCPIStack")
	}
	if res.CPI.Cycles != res.Cycles {
		t.Fatalf("CPI.Cycles = %d, want run cycles %d", res.CPI.Cycles, res.Cycles)
	}
	if got := res.CPI.Sum(); got != res.Cycles {
		t.Fatalf("bucket sum = %d, want %d\n%s", got, res.Cycles, res.CPI)
	}
	if res.CPI.Base == 0 {
		t.Fatal("no cycles attributed to base on a committing run")
	}
	if res.CPI.BadSpecFlush == 0 {
		t.Fatal("no bad-speculation cycles despite TAGE mispredicts on a data-dependent branch")
	}
	for i, v := range res.CPI.Buckets() {
		if v < 0 {
			t.Fatalf("bucket %s negative: %d", CPIBucketNames[i], v)
		}
	}
}

// TestCPIStackSumsToCyclesPredicated repeats the exact-sum invariant on a
// predicating run, where the ACB-specific buckets are live too.
func TestCPIStackSumsToCyclesPredicated(t *testing.T) {
	p, m := buildLoopHammock(2000)
	branchPC, reconPC := hammockPCs(t, p)
	c := NewWithMemory(config.Skylake(), p, bpu.NewTAGE(bpu.DefaultTAGEConfig()),
		&tracePredScheme{pc: branchPC, spec: PredSpec{ReconPC: reconPC, MaxBody: 56}}, m)
	c.EnableCPIStack()
	res, err := c.Run(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.CPI.Sum(); got != res.Cycles {
		t.Fatalf("bucket sum = %d, want %d\n%s", got, res.Cycles, res.CPI)
	}
	t.Logf("predicated run:\n%s", res.CPI)
}

// TestCPIBucketNamesMatchBuckets pins the presentation-order contract every
// consumer (experiments table, metrics labels, stacked-bar legend) relies on.
func TestCPIBucketNamesMatchBuckets(t *testing.T) {
	p := &CPIStack{Base: 1, FrontendStarve: 2, BadSpecFlush: 3,
		BackendStall: 4, ACBBodyStall: 5, ACBDivergence: 6}
	b := p.Buckets()
	if len(b) != len(CPIBucketNames) {
		t.Fatalf("Buckets() len %d != CPIBucketNames len %d", len(b), len(CPIBucketNames))
	}
	want := []int64{1, 2, 3, 4, 5, 6}
	for i := range b {
		if b[i] != want[i] {
			t.Fatalf("Buckets()[%d] (%s) = %d, want %d", i, CPIBucketNames[i], b[i], want[i])
		}
	}
	if p.Sum() != 21 {
		t.Fatalf("Sum = %d, want 21", p.Sum())
	}
}

// TestCPIFlushWindow checks the flush-repair window semantics: empty-ROB
// cycles charge the flush cause until the first commit of an instruction
// allocated after the flush point; pre-flush survivors retiring do not
// close the window.
func TestCPIFlushWindow(t *testing.T) {
	p := &CPIStack{flushSeq: -1}
	p.noteFlush(flushMispredict, 10)
	p.noteCommit(5) // pre-flush survivor: window stays open
	if p.flushCause != flushMispredict {
		t.Fatal("pre-flush commit closed the repair window")
	}
	p.commits = 0 // simulate cycle boundary
	p.noteCommit(11)
	if p.flushCause != flushNone {
		t.Fatal("post-flush commit did not close the repair window")
	}

	p = &CPIStack{flushSeq: -1}
	p.noteFlush(flushDivergence, 3)
	if p.flushCause != flushDivergence {
		t.Fatal("divergence cause not recorded")
	}
}

// TestCPIAccountClassification drives cpiAccount directly against
// hand-built core states, one per bucket.
func TestCPIAccountClassification(t *testing.T) {
	newCore := func() *Core {
		p, m := buildLoopHammock(4)
		c := NewWithMemory(config.Skylake(), p, bpu.NewTAGE(bpu.DefaultTAGEConfig()), nil, m)
		c.EnableCPIStack()
		return c
	}

	// Commit cycle → base.
	c := newCore()
	c.cpi.commits = 2
	c.cpiAccount()
	if c.cpi.Base != 1 || c.cpi.commits != 0 {
		t.Fatalf("commit cycle: base=%d commits=%d", c.cpi.Base, c.cpi.commits)
	}

	// Empty ROB, no flush pending → frontend starve.
	c = newCore()
	c.cpiAccount()
	if c.cpi.FrontendStarve != 1 {
		t.Fatalf("empty-ROB cycle: frontend=%d", c.cpi.FrontendStarve)
	}

	// Empty ROB inside a mispredict-repair window → bad speculation.
	c = newCore()
	c.cpi.noteFlush(flushMispredict, 0)
	c.cpiAccount()
	if c.cpi.BadSpecFlush != 1 {
		t.Fatalf("mispredict-repair cycle: badspec=%d", c.cpi.BadSpecFlush)
	}

	// Empty ROB inside a divergence-repair window → ACB divergence.
	c = newCore()
	c.cpi.noteFlush(flushDivergence, 0)
	c.cpiAccount()
	if c.cpi.ACBDivergence != 1 {
		t.Fatalf("divergence-repair cycle: acb-divergence=%d", c.cpi.ACBDivergence)
	}

	// Predicated branch at head, context still open → ACB body stall.
	c = newCore()
	e := c.rob.alloc()
	e.role = RolePredBranch
	e.ctx = &ctxState{}
	c.cpiAccount()
	if c.cpi.ACBBodyStall != 1 {
		t.Fatalf("open-context head cycle: acb-body=%d", c.cpi.ACBBodyStall)
	}

	// Body instruction at head awaiting its branch → ACB body stall.
	c = newCore()
	e = c.rob.alloc()
	e.role = RoleBody
	e.ctx = &ctxState{}
	c.cpiAccount()
	if c.cpi.ACBBodyStall != 1 {
		t.Fatalf("gated-body head cycle: acb-body=%d", c.cpi.ACBBodyStall)
	}

	// Same head with the context closed and branch done → generic backend.
	c = newCore()
	e = c.rob.alloc()
	e.role = RolePredBranch
	e.ctx = &ctxState{closed: true, branchDone: true}
	c.cpiAccount()
	if c.cpi.BackendStall != 1 {
		t.Fatalf("closed-context head cycle: backend=%d", c.cpi.BackendStall)
	}

	// Eager-mode contexts never stall the head on ACB's account.
	c = newCore()
	e = c.rob.alloc()
	e.role = RolePredBranch
	e.ctx = &ctxState{spec: PredSpec{Eager: true}}
	c.cpiAccount()
	if c.cpi.BackendStall != 1 || c.cpi.ACBBodyStall != 0 {
		t.Fatalf("eager head cycle: backend=%d acb-body=%d", c.cpi.BackendStall, c.cpi.ACBBodyStall)
	}
}
