// Package ooo implements a cycle-level out-of-order core simulator with
// value-correct speculative execution: instructions are renamed onto a
// physical register file holding real values, wrong-path instructions are
// fetched and executed with whatever values they see, and pipeline flushes
// restore register-alias-table checkpoints — the substrate the paper's
// evaluation runs on (Sec. IV: "a cycle-accurate simulator that accurately
// models the wrong path on branch mispredictions").
//
// Dynamic-predication schemes (ACB in internal/core, DMP/DHP in
// internal/dmp) plug in through the Scheme interface; the front end then
// dual-fetches selected branch instances up to their reconvergence point
// and the backend applies either ACB's stall-and-register-transparency
// discipline or DMP's eager select-µop discipline.
package ooo

import (
	"context"
	"errors"
	"fmt"

	"acb/internal/bpu"
	"acb/internal/config"
	"acb/internal/isa"
	"acb/internal/mem"
)

// prfEntry is one physical register.
type prfEntry struct {
	val   int64
	ready bool
}

// fetchedInst is one slot in the decoupled fetch queue between the fetch
// engine and rename.
type fetchedInst struct {
	pc         int
	inst       *isa.Instruction
	readyCycle int64
	wrongPath  bool

	role      Role
	ctx       *ctxState
	pathTaken bool
	ctxSwitch bool      // first instruction of the second fetched path
	ctxClose  *ctxState // set on the first instruction after a context closes

	hasPred     bool
	pred        bpu.Prediction
	predTaken   bool
	trueKnown   bool
	trueTaken   bool
	histAtFetch uint64
	wrongTok    *flushToken
}

// flushToken identifies the fetch-divergence cause so the flush that
// repairs it can clear the wrong-path state. It must not be zero-sized:
// tokens are compared by pointer identity, and Go gives every zero-size
// allocation the same address.
type flushToken struct{ _ byte }

// oracleSnap snapshots the functional oracle at a predication-context
// open, so a divergent context can rewind it.
type oracleSnap struct {
	ctx  *ctxState
	regs [isa.NumRegs]int64
	pc   int
	mem  map[int64]int64
}

// selectSpec is a pending select micro-op awaiting an allocation slot.
type selectSpec struct {
	ctx   *ctxState
	log   isa.Reg
	selT  int
	selN  int
	frees []int
}

// Core is one simulated out-of-order core bound to a program.
type Core struct {
	cfg    config.Core
	prog   []isa.Instruction
	pred   bpu.Predictor
	hier   *mem.Hierarchy
	scheme Scheme

	rob      *rob
	rat      [isa.NumRegs]int
	prf      []prfEntry
	freeList []int

	// commitRat is the retirement (architectural) register map: updated
	// only when instructions retire, so Result.FinalRegs reflects
	// committed state even when the run stops with work in flight.
	commitRat [isa.NumRegs]int

	iq     []int64
	loads  []int64
	stores []int64

	fetchQ    []fetchedInst
	fetchQCap int

	// Fetch engine.
	fetchPC     int
	fetchParked bool
	onWrongPath bool
	wrongTok    *flushToken
	dbgWrongPC  int
	dbgWrongCyc int64
	dbgWrongWhy string
	dbgRing     []string

	// Open predication context walk state.
	ctx          *ctxState
	ctxPhase     int // 1 or 2
	ctxNext      int // next PC to fetch inside the context
	ctxWalkTaken bool
	ctxTrueIdx   int
	ctxD2Start   int
	pendingClose *ctxState
	pendingSwtch bool
	ctxIDGen     int64

	liveCtxs []*ctxState

	// Functional oracle (architecturally-correct execution running ahead
	// of timing at fetch).
	oracle       *isa.ArchState
	oracleMem    *isa.Overlay
	oracleHalted bool
	snapshots    []oracleSnap

	// commitMem is the retired (architectural) memory: stores write it at
	// commit, loads read it beneath store-queue forwarding.
	commitMem *isa.Memory

	pendingSelects []selectSpec

	completing map[int64][]int64

	cycle    int64
	retired  int64
	haltSeq  int64
	mutation Mutation

	s     runStats
	perPC map[int]*BranchStat
	pipe  *PipeStats
	cpi   *CPIStack
	trace *TraceRing

	epochRetireBase int64
}

// BranchStat aggregates retired-branch behaviour per static branch PC.
type BranchStat struct {
	Count      int64
	Mispredict int64
	Predicated int64
	Diverged   int64
	Taken      int64
}

type runStats struct {
	flushes         int64
	divFlushes      int64
	mispredRetired  int64
	condBranches    int64
	branches        int64
	predications    int64
	allocations     int64
	wrongPathAllocs int64
	selectUops      int64
	allocStallSlots int64
	fetchCtxOpens   int64
	transparentOps  int64
	invalidatedMem  int64
	loadForwards    int64
}

// Result reports one simulation run.
type Result struct {
	Scheme  string
	Config  string
	Cycles  int64
	Retired int64
	IPC     float64

	CondBranches int64
	Branches     int64
	Mispredicts  int64 // retired mispredicted conditional branches
	Flushes      int64 // all pipeline flushes (mispredict + divergence)
	DivFlushes   int64
	Predications int64 // dual-fetched branch instances

	Allocations     int64 // total OOO allocations (incl. wrong path, selects)
	WrongPathAllocs int64
	SelectUops      int64
	AllocStallSlots int64
	TransparentOps  int64
	InvalidatedMem  int64
	LoadForwards    int64

	L1Hits, L1Misses   int64
	LLCHits, LLCMisses int64

	PerBranch map[int]*BranchStat
	FinalRegs [isa.NumRegs]int64
	Halted    bool

	// CPI is the per-cycle attribution stack (nil unless EnableCPIStack
	// was called before the run).
	CPI *CPIStack
}

// MispredPerKilo returns retired mispredictions per 1000 retired
// instructions.
func (r *Result) MispredPerKilo() float64 {
	if r.Retired == 0 {
		return 0
	}
	return float64(r.Mispredicts) * 1000 / float64(r.Retired)
}

// FlushPerKilo returns pipeline flushes per 1000 retired instructions.
func (r *Result) FlushPerKilo() float64 {
	if r.Retired == 0 {
		return 0
	}
	return float64(r.Flushes) * 1000 / float64(r.Retired)
}

// New builds a core for the program with the given configuration,
// predictor and optional predication scheme (nil = plain speculation).
func New(cfg config.Core, program []isa.Instruction, predictor bpu.Predictor, scheme Scheme) *Core {
	c := &Core{
		cfg:        cfg,
		prog:       program,
		pred:       predictor,
		hier:       mem.NewHierarchy(cfg.Mem),
		scheme:     scheme,
		rob:        newROB(cfg.ROBSize),
		prf:        make([]prfEntry, cfg.PRFSize),
		fetchQCap:  cfg.FetchWidth * cfg.FrontEndLatency,
		completing: make(map[int64][]int64),
		perPC:      make(map[int]*BranchStat),
		haltSeq:    -1,
	}
	for r := 0; r < isa.NumRegs; r++ {
		c.rat[r] = r
		c.commitRat[r] = r
		c.prf[r].ready = true
	}
	for p := isa.NumRegs; p < cfg.PRFSize; p++ {
		c.freeList = append(c.freeList, p)
	}
	base := isa.NewMemory()
	c.oracleMem = isa.NewOverlay(base)
	c.oracle = isa.NewArchState(c.oracleMem)
	return c
}

// NewWithMemory is New with an initial memory image. The oracle receives a
// private clone (it runs ahead of retirement); the committed memory keeps
// the original. Callers must not reuse the image afterwards.
func NewWithMemory(cfg config.Core, program []isa.Instruction, predictor bpu.Predictor, scheme Scheme, image *isa.Memory) *Core {
	c := New(cfg, program, predictor, scheme)
	c.oracleMem = isa.NewOverlay(image.Clone())
	c.oracle = isa.NewArchState(c.oracleMem)
	c.commitMem = image
	return c
}

// ErrDeadlock is returned when the pipeline makes no forward progress.
var ErrDeadlock = errors.New("ooo: pipeline deadlock")

// ctxCheckInterval is how many cycles elapse between context-cancellation
// polls in RunContext. ctx.Err() takes a mutex on derived contexts, so the
// retire loop amortizes it; at typical simulated IPCs this bounds the
// cancellation latency to well under a millisecond of wall time.
const ctxCheckInterval = 1 << 12

// Run simulates until the program halts or maxRetired instructions have
// retired, and returns the run's statistics.
func (c *Core) Run(maxRetired int64) (Result, error) {
	return c.RunContext(context.Background(), maxRetired)
}

// RunContext is Run with cooperative cancellation: when ctx is cancelled
// (or times out) mid-simulation the run stops within ctxCheckInterval
// cycles and returns the statistics accumulated so far together with an
// error wrapping ctx.Err(). A nil ctx means context.Background().
func (c *Core) RunContext(ctx context.Context, maxRetired int64) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if c.commitMem == nil {
		c.commitMem = isa.NewMemory()
	}
	var lastRetired int64
	var stuck int64
	halted := false
	for c.retired < maxRetired {
		if c.cycle%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return c.result(halted), fmt.Errorf("ooo: run cancelled at cycle %d (retired=%d): %w",
					c.cycle, c.retired, err)
			}
		}
		c.cycle++
		h := c.stepCycle()
		if h {
			halted = true
			break
		}
		if c.retired == lastRetired {
			stuck++
			if stuck > 2_000_000 {
				return c.result(halted), fmt.Errorf("%w at cycle %d (pc=%d retired=%d rob=%d)",
					ErrDeadlock, c.cycle, c.fetchPC, c.retired, c.rob.occupancy())
			}
		} else {
			stuck = 0
			lastRetired = c.retired
		}
	}
	return c.result(halted), nil
}

// stepCycle advances one cycle; it returns true when the program's Halt
// retired.
func (c *Core) stepCycle() bool {
	halted := c.retireStage()
	c.completeStage()
	c.issueStage()
	c.renameStage()
	c.fetchStage()
	if c.pipe != nil {
		c.pipe.sample(c.rob.occupancy(), c.cfg.ROBSize, len(c.iq), c.cfg.IQSize)
	}
	if c.cpi != nil {
		c.cpiAccount()
	}
	return halted
}

func (c *Core) result(halted bool) Result {
	res := Result{
		Scheme:          c.schemeName(),
		Config:          c.cfg.Name,
		Cycles:          c.cycle,
		Retired:         c.retired,
		CondBranches:    c.s.condBranches,
		Branches:        c.s.branches,
		Mispredicts:     c.s.mispredRetired,
		Flushes:         c.s.flushes,
		DivFlushes:      c.s.divFlushes,
		Predications:    c.s.predications,
		Allocations:     c.s.allocations,
		WrongPathAllocs: c.s.wrongPathAllocs,
		SelectUops:      c.s.selectUops,
		AllocStallSlots: c.s.allocStallSlots,
		TransparentOps:  c.s.transparentOps,
		InvalidatedMem:  c.s.invalidatedMem,
		LoadForwards:    c.s.loadForwards,
		L1Hits:          c.hier.L1D.Hits(),
		L1Misses:        c.hier.L1D.Misses(),
		LLCHits:         c.hier.LLC.Hits(),
		LLCMisses:       c.hier.LLC.Misses(),
		PerBranch:       c.perPC,
		Halted:          halted,
		CPI:             c.cpi,
	}
	if c.cycle > 0 {
		res.IPC = float64(c.retired) / float64(c.cycle)
	}
	for r := 0; r < isa.NumRegs; r++ {
		res.FinalRegs[r] = c.prf[c.commitRat[r]].val
	}
	return res
}

// dbgLog records a fetch/flush event in a small ring for panic dumps;
// enabled when dbgRing is non-nil.
func (c *Core) dbgLog(format string, args ...interface{}) {
	if c.dbgRing == nil {
		return
	}
	c.dbgRing = append(c.dbgRing, fmt.Sprintf("c%d: ", c.cycle)+fmt.Sprintf(format, args...))
	if len(c.dbgRing) > 400 {
		c.dbgRing = c.dbgRing[len(c.dbgRing)-400:]
	}
}

// EnableDebugRing turns on the event ring (tests only).
func (c *Core) EnableDebugRing() { c.dbgRing = make([]string, 0, 512) }

// DebugRing returns the recorded events.
func (c *Core) DebugRing() []string { return c.dbgRing }

func (c *Core) schemeName() string {
	if c.scheme == nil {
		return "baseline"
	}
	return c.scheme.Name()
}

func (c *Core) branchStat(pc int) *BranchStat {
	st, ok := c.perPC[pc]
	if !ok {
		st = &BranchStat{}
		c.perPC[pc] = st
	}
	return st
}
