// Package ooo implements a cycle-level out-of-order core simulator with
// value-correct speculative execution: instructions are renamed onto a
// physical register file holding real values, wrong-path instructions are
// fetched and executed with whatever values they see, and pipeline flushes
// restore register-alias-table checkpoints — the substrate the paper's
// evaluation runs on (Sec. IV: "a cycle-accurate simulator that accurately
// models the wrong path on branch mispredictions").
//
// Dynamic-predication schemes (ACB in internal/core, DMP/DHP in
// internal/dmp) plug in through the Scheme interface; the front end then
// dual-fetches selected branch instances up to their reconvergence point
// and the backend applies either ACB's stall-and-register-transparency
// discipline or DMP's eager select-µop discipline.
package ooo

import (
	"context"
	"errors"
	"fmt"

	"acb/internal/bpu"
	"acb/internal/config"
	"acb/internal/isa"
	"acb/internal/mem"
)

// prfEntry is one physical register.
type prfEntry struct {
	val   int64
	ready bool
}

// fetchedInst is one slot in the decoupled fetch queue between the fetch
// engine and rename.
type fetchedInst struct {
	pc         int
	inst       *isa.Instruction
	readyCycle int64
	wrongPath  bool

	role      Role
	ctx       *ctxState
	pathTaken bool
	ctxSwitch bool      // first instruction of the second fetched path
	ctxClose  *ctxState // set on the first instruction after a context closes

	hasPred     bool
	pred        bpu.Prediction
	predTaken   bool
	trueKnown   bool
	trueTaken   bool
	histAtFetch uint64
	wrongTok    flushToken
}

// flushToken identifies the fetch-divergence cause so the flush that
// repairs it can clear the wrong-path state. Tokens are drawn from a
// per-core monotonic counter (newTok); zero means "no token". An integer
// identity avoids a heap allocation per mispredicted fetch.
type flushToken uint64

// oracleSnap snapshots the functional oracle at a predication-context
// open, so a divergent context can rewind it.
type oracleSnap struct {
	ctx  *ctxState
	regs [isa.NumRegs]int64
	pc   int
	mem  map[int64]int64
}

// selectSpec is a pending select micro-op awaiting an allocation slot.
type selectSpec struct {
	ctx   *ctxState
	log   isa.Reg
	selT  int
	selN  int
	frees [maxFreeOnRetire]int32
	nFree uint8
}

// compRec is one scheduled completion event: the sequence number plus the
// allocation generation it was issued under. Squashed sequence numbers are
// reused after a flush, so a record whose generation no longer matches the
// live entry is stale and is dropped lazily at its bucket's cycle — which
// is what makes flushAfter O(squashed) instead of O(in-flight completions)
// (it used to rebuild the whole completing map).
type compRec struct {
	seq int64
	gen uint64
}

// seqList is an in-order list of in-flight sequence numbers (the LQ/SQ
// program-order lists) with an amortized O(1) front pop that never
// reallocates: popping advances head, and the buffer compacts in place
// once the dead prefix grows. The old `list = list[1:]` idiom leaked the
// front capacity, so every LQSize retires forced a fresh allocation.
type seqList struct {
	buf  []int64
	head int
}

func (l *seqList) len() int      { return len(l.buf) - l.head }
func (l *seqList) live() []int64 { return l.buf[l.head:] }

func (l *seqList) push(s int64) { l.buf = append(l.buf, s) }

// popFrontIf removes s when it is the oldest live element.
func (l *seqList) popFrontIf(s int64) {
	if l.head < len(l.buf) && l.buf[l.head] == s {
		l.head++
		if l.head == len(l.buf) {
			l.buf = l.buf[:0]
			l.head = 0
		} else if l.head >= 32 && l.head*2 >= len(l.buf) {
			n := copy(l.buf, l.buf[l.head:])
			l.buf = l.buf[:n]
			l.head = 0
		}
	}
}

// filter keeps live seqs ≤ limit, preserving order, and re-compacts.
func (l *seqList) filter(limit int64) {
	out := l.buf[:0]
	for _, s := range l.buf[l.head:] {
		if s <= limit {
			out = append(out, s)
		}
	}
	l.buf = out
	l.head = 0
}

// Core is one simulated out-of-order core bound to a program.
type Core struct {
	cfg    config.Core
	prog   []isa.Instruction
	pred   bpu.Predictor
	hier   *mem.Hierarchy
	scheme Scheme

	rob      *rob
	rat      [isa.NumRegs]int
	prf      []prfEntry
	freeList []int

	// commitRat is the retirement (architectural) register map: updated
	// only when instructions retire, so Result.FinalRegs reflects
	// committed state even when the run stops with work in flight.
	commitRat [isa.NumRegs]int

	// iq holds direct entry pointers (ring slots are stable); flushAfter
	// filters it by seq before any squashed slot can be reallocated, so no
	// stale pointer survives into the issue scan.
	iq []*robEntry
	loads  seqList
	stores seqList

	// fetchQ is a fixed-capacity ring (head fqHead, length fqLen) of the
	// decoupled fetch queue. The old append/[1:] slice churned an
	// allocation every fetchQCap instructions and copied each 184-byte
	// fetchedInst twice; slots are now written in place.
	fetchQ    []fetchedInst
	fqHead    int
	fqLen     int
	fetchQCap int // architectural capacity (occupancy bound)
	fqMask    int // len(fetchQ)-1; storage is a power of two

	// Fetch engine.
	fetchPC     int
	fetchParked bool
	onWrongPath bool
	wrongTok    flushToken
	tokGen      flushToken
	dbgWrongPC  int
	dbgWrongCyc int64
	dbgWrongWhy string
	dbgRing     []string

	// Open predication context walk state.
	ctx          *ctxState
	ctxPhase     int // 1 or 2
	ctxNext      int // next PC to fetch inside the context
	ctxWalkTaken bool
	ctxTrueIdx   int
	ctxD2Start   int
	pendingClose *ctxState
	pendingSwtch bool
	ctxIDGen     int64

	liveCtxs []*ctxState

	// Functional oracle (architecturally-correct execution running ahead
	// of timing at fetch).
	oracle       *isa.ArchState
	oracleMem    *isa.Overlay
	oracleHalted bool
	snapshots    []oracleSnap

	// commitMem is the retired (architectural) memory: stores write it at
	// commit, loads read it beneath store-queue forwarding.
	commitMem *isa.Memory

	// pendingSelects is drained from selHead; the backing array is reused
	// once empty instead of sliding with `[1:]`.
	pendingSelects []selectSpec
	selHead        int

	// compRing is a latency calendar: bucket (doneCycle mod len) holds the
	// completion records for that cycle, insertion-sorted by seq so the
	// oldest mispredict still flushes first without a per-cycle sort. Its
	// length exceeds the maximum schedulable latency, so a bucket can
	// never mix two distinct doneCycles. compPending counts records across
	// all buckets (stale ones included) so quiescent-cycle skipping knows
	// whether a completion wake-up exists at all.
	compRing    [][]compRec
	compMask    int64 // len(compRing)-1; storage is a power of two
	compMaxLat  int   // largest schedulable latency (calendar bound)
	compPending int

	// progress is reset each cycle and set by any stage that changes
	// machine state; a cycle that ends with it clear is quiescent and the
	// run loop may jump to the next completion/fetch-ready watermark (see
	// nextEventCycle). stallSlotsThisCycle and stallCtxScratch record the
	// per-cycle stat increments a stalled-but-quiescent cycle repeats, so
	// skipping replays them exactly.
	progress            bool
	stallSlotsThisCycle int64
	stallCtxScratch     []*ctxState

	cycle    int64
	retired  int64
	haltSeq  int64
	mutation Mutation

	s     runStats
	perPC map[int]*BranchStat
	pipe  *PipeStats
	cpi   *CPIStack
	trace *TraceRing

	epochRetireBase int64
}

// BranchStat aggregates retired-branch behaviour per static branch PC.
type BranchStat struct {
	Count      int64
	Mispredict int64
	Predicated int64
	Diverged   int64
	Taken      int64
}

type runStats struct {
	flushes         int64
	divFlushes      int64
	mispredRetired  int64
	condBranches    int64
	branches        int64
	predications    int64
	allocations     int64
	wrongPathAllocs int64
	selectUops      int64
	allocStallSlots int64
	fetchCtxOpens   int64
	transparentOps  int64
	invalidatedMem  int64
	loadForwards    int64
}

// Result reports one simulation run.
type Result struct {
	Scheme  string
	Config  string
	Cycles  int64
	Retired int64
	IPC     float64

	CondBranches int64
	Branches     int64
	Mispredicts  int64 // retired mispredicted conditional branches
	Flushes      int64 // all pipeline flushes (mispredict + divergence)
	DivFlushes   int64
	Predications int64 // dual-fetched branch instances

	Allocations     int64 // total OOO allocations (incl. wrong path, selects)
	WrongPathAllocs int64
	SelectUops      int64
	AllocStallSlots int64
	TransparentOps  int64
	InvalidatedMem  int64
	LoadForwards    int64

	L1Hits, L1Misses   int64
	LLCHits, LLCMisses int64

	PerBranch map[int]*BranchStat
	FinalRegs [isa.NumRegs]int64
	Halted    bool

	// CPI is the per-cycle attribution stack (nil unless EnableCPIStack
	// was called before the run).
	CPI *CPIStack
}

// MispredPerKilo returns retired mispredictions per 1000 retired
// instructions.
func (r *Result) MispredPerKilo() float64 {
	if r.Retired == 0 {
		return 0
	}
	return float64(r.Mispredicts) * 1000 / float64(r.Retired)
}

// FlushPerKilo returns pipeline flushes per 1000 retired instructions.
func (r *Result) FlushPerKilo() float64 {
	if r.Retired == 0 {
		return 0
	}
	return float64(r.Flushes) * 1000 / float64(r.Retired)
}

// New builds a core for the program with the given configuration,
// predictor and optional predication scheme (nil = plain speculation).
func New(cfg config.Core, program []isa.Instruction, predictor bpu.Predictor, scheme Scheme) *Core {
	fqCap := cfg.FetchWidth * cfg.FrontEndLatency
	if fqCap < 1 {
		fqCap = 1
	}
	// Ring storage is rounded up to powers of two so slot computations are
	// masks rather than divisions (they run several times per cycle).
	fqStore := ceilPow2(fqCap)
	maxLat := maxSchedLatency(cfg)
	compStore := ceilPow2(maxLat + 1)
	c := &Core{
		cfg:        cfg,
		prog:       program,
		pred:       predictor,
		hier:       mem.NewHierarchy(cfg.Mem),
		scheme:     scheme,
		rob:        newROB(cfg.ROBSize),
		prf:        make([]prfEntry, cfg.PRFSize),
		fetchQ:     make([]fetchedInst, fqStore),
		fetchQCap:  fqCap,
		fqMask:     fqStore - 1,
		compRing:   make([][]compRec, compStore),
		compMask:   int64(compStore - 1),
		compMaxLat: maxLat,
		perPC:      make(map[int]*BranchStat),
		haltSeq:    -1,
	}
	for r := 0; r < isa.NumRegs; r++ {
		c.rat[r] = r
		c.commitRat[r] = r
		c.prf[r].ready = true
	}
	for p := isa.NumRegs; p < cfg.PRFSize; p++ {
		c.freeList = append(c.freeList, p)
	}
	base := isa.NewMemory()
	c.oracleMem = isa.NewOverlay(base)
	c.oracle = isa.NewArchState(c.oracleMem)
	return c
}

// NewWithMemory is New with an initial memory image. The oracle receives a
// private clone (it runs ahead of retirement); the committed memory keeps
// the original. Callers must not reuse the image afterwards.
func NewWithMemory(cfg config.Core, program []isa.Instruction, predictor bpu.Predictor, scheme Scheme, image *isa.Memory) *Core {
	c := New(cfg, program, predictor, scheme)
	c.oracleMem = isa.NewOverlay(image.Clone())
	c.oracle = isa.NewArchState(c.oracleMem)
	c.commitMem = image
	return c
}

// maxSchedLatency returns the largest completion latency issueStage can
// ever schedule under cfg: the full-miss DRAM path, any individual cache
// hit, or the longest execution latency. It sizes the completion calendar
// so bucket (doneCycle mod len) is collision-free.
func maxSchedLatency(cfg config.Core) int {
	m := isa.MaxExecLatency
	for _, l := range [...]int{cfg.Mem.DRAMLatency, cfg.Mem.LLCLat, cfg.Mem.L2Lat, cfg.Mem.L1Lat} {
		if l > m {
			m = l
		}
	}
	if m < 1 {
		m = 1
	}
	return m
}

// ceilPow2 rounds n up to the next power of two.
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// ErrDeadlock is returned when the pipeline makes no forward progress.
var ErrDeadlock = errors.New("ooo: pipeline deadlock")

// ctxCheckInterval is how many cycles elapse between context-cancellation
// polls in RunContext. ctx.Err() takes a mutex on derived contexts, so the
// retire loop amortizes it; at typical simulated IPCs this bounds the
// cancellation latency to well under a millisecond of wall time.
const ctxCheckInterval = 1 << 12

// Run simulates until the program halts or maxRetired instructions have
// retired, and returns the run's statistics.
func (c *Core) Run(maxRetired int64) (Result, error) {
	return c.RunContext(context.Background(), maxRetired)
}

// RunContext is Run with cooperative cancellation: when ctx is cancelled
// (or times out) mid-simulation the run stops within ctxCheckInterval
// loop iterations and returns the statistics accumulated so far together
// with an error wrapping ctx.Err(). A nil ctx means context.Background().
func (c *Core) RunContext(ctx context.Context, maxRetired int64) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if c.commitMem == nil {
		c.commitMem = isa.NewMemory()
	}
	// Per-cycle observers see every cycle individually, so event-driven
	// skipping is enabled only on bare runs (the throughput path).
	skippable := c.pipe == nil && c.cpi == nil && c.trace == nil && c.dbgRing == nil
	var lastRetired int64
	var stuck int64
	var iter int64
	halted := false
	for c.retired < maxRetired {
		if iter&(ctxCheckInterval-1) == 0 {
			if err := ctx.Err(); err != nil {
				return c.result(halted), fmt.Errorf("ooo: run cancelled at cycle %d (retired=%d): %w",
					c.cycle, c.retired, err)
			}
		}
		iter++
		c.cycle++
		c.progress = false
		c.stallSlotsThisCycle = 0
		c.stallCtxScratch = c.stallCtxScratch[:0]
		h := c.stepCycle()
		if h {
			halted = true
			break
		}
		if skippable && !c.progress {
			c.skipToNextEvent()
		}
		if c.retired == lastRetired {
			stuck++
			if stuck > 2_000_000 {
				return c.result(halted), fmt.Errorf("%w at cycle %d (pc=%d retired=%d rob=%d)",
					ErrDeadlock, c.cycle, c.fetchPC, c.retired, c.rob.occupancy())
			}
		} else {
			stuck = 0
			lastRetired = c.retired
		}
	}
	return c.result(halted), nil
}

// skipToNextEvent advances the clock over a quiescent stretch: when no
// stage changed state this cycle, the machine provably repeats the same
// (idempotent) work every cycle until the next scheduled completion or the
// fetch queue's head becomes ready. Jumping there directly is
// cycle-accurate as long as the per-cycle stat increments a stalled cycle
// performs — rename allocation-stall slots and gated body-wakeup counts —
// are replayed once per skipped cycle, which is exactly what the
// stallSlotsThisCycle / stallCtxScratch records are for.
func (c *Core) skipToNextEvent() {
	next, ok := c.nextEventCycle()
	if !ok || next <= c.cycle+1 {
		return
	}
	skipped := next - 1 - c.cycle
	if c.stallSlotsThisCycle > 0 {
		c.s.allocStallSlots += skipped * c.stallSlotsThisCycle
	}
	for _, sc := range c.stallCtxScratch {
		sc.bodyStalls += skipped
	}
	c.cycle = next - 1
}

// nextEventCycle returns the earliest future cycle at which machine state
// can change: the nearest non-empty completion bucket, or the cycle the
// fetch queue's head leaves the front-end pipe. A quiescent machine with
// neither watermark is deadlocked; returning false leaves it to the
// cycle-by-cycle stuck detector so ErrDeadlock semantics are unchanged.
func (c *Core) nextEventCycle() (int64, bool) {
	next := int64(-1)
	if c.fqLen > 0 {
		if rc := c.fetchQ[c.fqHead].readyCycle; rc > c.cycle {
			next = rc
		}
	}
	if c.compPending > 0 {
		n := int64(len(c.compRing))
		for d := int64(1); d < n; d++ {
			if len(c.compRing[(c.cycle+d)&c.compMask]) > 0 {
				if cand := c.cycle + d; next < 0 || cand < next {
					next = cand
				}
				break
			}
		}
	}
	return next, next > 0
}

// fqReserve returns the next free fetch-queue slot for in-place
// initialization; the caller must fqCommit exactly once afterwards.
// Callers guarantee fqLen < fetchQCap before reserving.
func (c *Core) fqReserve() *fetchedInst {
	return &c.fetchQ[(c.fqHead+c.fqLen)&c.fqMask]
}

// fqCommit publishes the most recently reserved slot.
func (c *Core) fqCommit() { c.fqLen++ }

// fqFront returns the oldest fetched instruction (caller checks fqLen).
func (c *Core) fqFront() *fetchedInst { return &c.fetchQ[c.fqHead] }

// fqPopFront consumes the oldest fetched instruction.
func (c *Core) fqPopFront() {
	c.fqHead = (c.fqHead + 1) & c.fqMask
	c.fqLen--
}

// fqReset empties the fetch queue (pipeline flush).
func (c *Core) fqReset() {
	c.fqHead = 0
	c.fqLen = 0
}

// scheduleCompletion books e's completion into the latency calendar,
// insertion-sorted by seq so the per-cycle drain needs no sort to process
// oldest-first.
func (c *Core) scheduleCompletion(e *robEntry, lat int) {
	if lat > c.compMaxLat || lat < 1 {
		panic(fmt.Sprintf("ooo: completion latency %d outside calendar [1,%d]", lat, c.compMaxLat))
	}
	e.doneCycle = c.cycle + int64(lat)
	slot := e.doneCycle & c.compMask
	b := c.compRing[slot]
	i := len(b)
	b = append(b, compRec{})
	for i > 0 && b[i-1].seq > e.seq {
		b[i] = b[i-1]
		i--
	}
	b[i] = compRec{seq: e.seq, gen: e.gen}
	c.compRing[slot] = b
	c.compPending++
}

// stepCycle advances one cycle; it returns true when the program's Halt
// retired.
func (c *Core) stepCycle() bool {
	halted := c.retireStage()
	c.completeStage()
	c.issueStage()
	c.renameStage()
	c.fetchStage()
	if c.pipe != nil {
		c.pipe.sample(c.rob.occupancy(), c.cfg.ROBSize, len(c.iq), c.cfg.IQSize)
	}
	if c.cpi != nil {
		c.cpiAccount()
	}
	return halted
}

func (c *Core) result(halted bool) Result {
	res := Result{
		Scheme:          c.schemeName(),
		Config:          c.cfg.Name,
		Cycles:          c.cycle,
		Retired:         c.retired,
		CondBranches:    c.s.condBranches,
		Branches:        c.s.branches,
		Mispredicts:     c.s.mispredRetired,
		Flushes:         c.s.flushes,
		DivFlushes:      c.s.divFlushes,
		Predications:    c.s.predications,
		Allocations:     c.s.allocations,
		WrongPathAllocs: c.s.wrongPathAllocs,
		SelectUops:      c.s.selectUops,
		AllocStallSlots: c.s.allocStallSlots,
		TransparentOps:  c.s.transparentOps,
		InvalidatedMem:  c.s.invalidatedMem,
		LoadForwards:    c.s.loadForwards,
		L1Hits:          c.hier.L1D.Hits(),
		L1Misses:        c.hier.L1D.Misses(),
		LLCHits:         c.hier.LLC.Hits(),
		LLCMisses:       c.hier.LLC.Misses(),
		PerBranch:       c.perPC,
		Halted:          halted,
		CPI:             c.cpi,
	}
	if c.cycle > 0 {
		res.IPC = float64(c.retired) / float64(c.cycle)
	}
	for r := 0; r < isa.NumRegs; r++ {
		res.FinalRegs[r] = c.prf[c.commitRat[r]].val
	}
	return res
}

// dbgLog records a fetch/flush event in a small ring for panic dumps;
// enabled when dbgRing is non-nil.
// newTok mints a fresh, never-zero flush token.
func (c *Core) newTok() flushToken {
	c.tokGen++
	return c.tokGen
}

func (c *Core) dbgLog(format string, args ...interface{}) {
	if c.dbgRing == nil {
		return
	}
	c.dbgRing = append(c.dbgRing, fmt.Sprintf("c%d: ", c.cycle)+fmt.Sprintf(format, args...))
	if len(c.dbgRing) > 400 {
		c.dbgRing = c.dbgRing[len(c.dbgRing)-400:]
	}
}

// EnableDebugRing turns on the event ring (tests only).
func (c *Core) EnableDebugRing() { c.dbgRing = make([]string, 0, 512) }

// DebugRing returns the recorded events.
func (c *Core) DebugRing() []string { return c.dbgRing }

func (c *Core) schemeName() string {
	if c.scheme == nil {
		return "baseline"
	}
	return c.scheme.Name()
}

func (c *Core) branchStat(pc int) *BranchStat {
	st, ok := c.perPC[pc]
	if !ok {
		st = &BranchStat{}
		c.perPC[pc] = st
	}
	return st
}
