package ooo

// The ACB end-to-end smoke tests live in package ooo's black-box suite in
// internal/core; this file only holds shared helpers used by both.
