package ooo_test

import (
	"runtime"
	"testing"

	"acb/internal/bpu"
	"acb/internal/config"
	"acb/internal/core"
	"acb/internal/ooo"
	"acb/internal/workload"
)

// TestSteadyStateAllocationFree asserts the cycle loop's central perf
// invariant: after warmup, the per-cycle machinery allocates nothing.
// Every scratch structure (fetch ring, completion calendar, IQ, LSQ seq
// lists, select queue, stall scratch) must reach steady-state capacity
// during the warmup budget and be reused thereafter.
//
// Method: run each Fig. 6 workload for a warmup budget (all growth
// happens here — ring/slice capacity, per-PC stat entries, TAGE tables),
// then continue the same engine for a second budget and count mallocs
// across it.
//
// Two tiers:
//   - baseline engines exercise the pure cycle loop and must stay under
//     1 alloc per kilocycle (runtime background noise sets the floor);
//   - ACB engines additionally pay per-predication-instance bookkeeping
//     (a ctxState, an oracle snapshot + writes map, true-path scratch) —
//     event allocations attributable to instructions, not cycles — so
//     they are bounded per opened instance instead.
func TestSteadyStateAllocationFree(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement; skipped in -short")
	}
	const (
		warmup      = 60_000  // retired instructions before measuring
		measured    = 120_000 // total budget; the second half is measured
		maxPerKCyc  = 1.0     // allocs per 1000 simulated cycles (cycle loop)
		maxPerInst  = 30.0    // allocs per predication instance (ACB bookkeeping)
		maxAbsolute = 200     // absolute slack for runtime background noise
	)
	for _, w := range workload.All() {
		for _, sch := range []string{"baseline", "acb"} {
			w, sch := w, sch
			t.Run(w.Name+"/"+sch, func(t *testing.T) {
				p, m := w.Build()
				var scheme ooo.Scheme
				if sch == "acb" {
					scheme = core.New(core.DefaultConfig())
				}
				c := ooo.NewWithMemory(config.Skylake(), p,
					bpu.NewTAGE(bpu.DefaultTAGEConfig()), scheme, m)

				warm, err := c.Run(warmup)
				if err != nil {
					t.Fatalf("warmup: %v", err)
				}
				if warm.Retired < warmup {
					t.Skipf("workload halted during warmup (retired=%d)", warm.Retired)
				}

				runtime.GC()
				var before, after runtime.MemStats
				runtime.ReadMemStats(&before)
				res, err := c.Run(measured)
				runtime.ReadMemStats(&after)
				if err != nil {
					t.Fatalf("measured run: %v", err)
				}

				mallocs := after.Mallocs - before.Mallocs
				cycles := res.Cycles - warm.Cycles
				if cycles <= 0 {
					t.Fatalf("no cycles simulated in measurement window")
				}
				perKCyc := float64(mallocs) / float64(cycles) * 1000
				instances := res.Predications - warm.Predications
				t.Logf("%d mallocs over %d cycles (%.3f/kcycle), %d predication instances",
					mallocs, cycles, perKCyc, instances)
				// Budget: the cycle-loop allowance plus (for ACB) the
				// per-instance bookkeeping allowance.
				budget := maxPerKCyc * float64(cycles) / 1000
				budget += maxPerInst * float64(instances)
				if float64(mallocs) > budget && mallocs > maxAbsolute {
					t.Errorf("steady state allocates: %d mallocs over %d cycles / %d instances (budget %.0f)",
						mallocs, cycles, instances, budget)
				}
			})
		}
	}
}
