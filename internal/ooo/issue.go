package ooo

import "acb/internal/isa"

// issueStage selects ready instructions from the issue queue, reads their
// operands, computes results (value-correct execution) and schedules their
// completion. It enforces the predication disciplines:
//
//   - An ACB-predicated branch stalls until fetch has delivered the
//     reconvergence (or divergence) identifier (Sec. III-C2).
//   - ACB body instructions add the predicated branch as a source; once it
//     resolves, predicated-false producers execute as moves from the last
//     physical register of their logical destination (register
//     transparency), and predicated-false memory ops are invalidated.
//   - Eager (DMP) bodies execute freely; select micro-ops wait for the
//     branch plus the chosen source.
//   - Loads wait until all older stores have computed addresses, and stall
//     behind address-matching stores of unresolved predicated regions.
func (c *Core) issueStage() {
	issued := 0
	loadsIssued, storesIssued := 0, 0
	maxLoads := c.cfg.IssueWidth / 4
	if maxLoads < 2 {
		maxLoads = 2
	}
	maxStores := c.cfg.IssueWidth / 8
	if maxStores < 1 {
		maxStores = 1
	}

	keep := c.iq[:0]
	for _, e := range c.iq {
		// Scoreboard fast path: still waiting on the same unready source.
		if w := e.waitPhys; w >= 0 {
			if !c.prf[w].ready {
				keep = append(keep, e)
				continue
			}
			e.waitPhys = -1
		}
		if issued >= c.cfg.IssueWidth ||
			(e.isLoad && loadsIssued >= maxLoads) ||
			(e.isStore && storesIssued >= maxStores) {
			keep = append(keep, e)
			continue
		}
		lat, ok := c.tryIssue(e)
		if !ok {
			keep = append(keep, e)
			continue
		}
		e.issued = true
		e.inIQ = false
		c.scheduleCompletion(e, lat)
		c.progress = true
		issued++
		if c.pipe != nil {
			c.pipe.issueSlots++
		}
		if e.isLoad {
			loadsIssued++
		}
		if e.isStore {
			storesIssued++
		}
	}
	c.iq = keep
}

// tryIssue checks readiness and, if ready, performs the instruction's
// value computation, returning its completion latency.
func (c *Core) tryIssue(e *robEntry) (lat int, ok bool) {
	switch e.role {
	case RoleSelect:
		return c.tryIssueSelect(e)
	case RolePredBranch:
		if !e.ctx.spec.Eager && !e.ctx.closed {
			return 0, false // stalled awaiting reconvergence/divergence id
		}
		return c.tryIssueNormal(e)
	case RoleBody:
		if !e.ctx.spec.Eager {
			return c.tryIssueStallBody(e)
		}
		// invalidateFalseMemOps runs once, at branch resolution; an eager
		// body memory op still in the fetch queue at that moment allocates
		// afterwards and would slip past it, so re-check here (the stall
		// path does the same inside tryIssueStallBody).
		if e.ctx.branchDone && e.pathTaken != e.ctx.branchTaken &&
			(e.isLoad || e.isStore) && !e.invalidated &&
			c.mutation != MutSkipMemInvalidate {
			e.invalidated = true
			c.s.invalidatedMem++
		}
		return c.tryIssueNormal(e)
	default:
		lat, ok = c.tryIssueNormal(e)
		if !ok {
			// Cache the first unready source so the issue scan can skip
			// this entry cheaply until its producer completes. A ready-srcs
			// failure (load blocked on an older store) leaves no hint and
			// is re-attempted every cycle, as before.
			for i := 0; i < e.nsrc; i++ {
				if !c.prf[e.src[i]].ready {
					e.waitPhys = int32(e.src[i])
					break
				}
			}
		}
		return lat, ok
	}
}

func (c *Core) srcsReady(e *robEntry) bool {
	for i := 0; i < e.nsrc; i++ {
		if !c.prf[e.src[i]].ready {
			return false
		}
	}
	return true
}

func (c *Core) srcVals(e *robEntry) (a, b int64) {
	if e.nsrc > 0 {
		a = c.prf[e.src[0]].val
	}
	if e.nsrc > 1 {
		b = c.prf[e.src[1]].val
	}
	return a, b
}

// tryIssueNormal handles ordinary ALU/branch/memory execution.
func (c *Core) tryIssueNormal(e *robEntry) (int, bool) {
	if !c.srcsReady(e) {
		return 0, false
	}
	switch e.inst.Op {
	case isa.Load:
		return c.tryIssueLoad(e)
	case isa.Store:
		a, b := c.srcVals(e)
		e.effAddr = a + e.inst.Imm
		e.storeVal = b
		e.addrReady = true
		return 1, true
	case isa.Br:
		a, b := c.srcVals(e)
		e.resolvedTaken = e.inst.Cond.Eval(a, b)
		return 1, true
	default:
		a, b := c.srcVals(e)
		e.result = e.inst.ALUResult(a, b)
		e.hasResult = true
		return e.inst.ExecLatency(), true
	}
}

// tryIssueStallBody handles ACB body instructions: they wait for the
// predicated branch, then execute normally (true path) or as transparency
// moves (false path).
func (c *Core) tryIssueStallBody(e *robEntry) (int, bool) {
	ctx := e.ctx
	if !ctx.branchDone {
		ctx.bodyStalls++
		// Record the increment so a quiescent-cycle skip can replay it
		// once per skipped cycle (see skipToNextEvent).
		c.stallCtxScratch = append(c.stallCtxScratch, ctx)
		return 0, false
	}
	onFalse := e.pathTaken != ctx.branchTaken
	if !onFalse {
		return c.tryIssueNormal(e)
	}
	if c.mutation == MutSkipMemInvalidate && (e.isLoad || e.isStore) {
		// Deliberate break (difftest self-test): the false-path memory op
		// executes as if it were on the taken path.
		return c.tryIssueNormal(e)
	}
	// Predicated-false path: producers copy the last correctly produced
	// value of their logical destination; everything else releases.
	if e.dest >= 0 {
		if c.mutation == MutSkipTransparencyMove {
			// Deliberate break (difftest self-test): skip the move; the
			// freshly allocated physical register's zero value commits.
			e.hasResult = true
		} else {
			if !c.prf[e.prevPhys].ready {
				return 0, false
			}
			e.result = c.prf[e.prevPhys].val
			e.hasResult = true
		}
	}
	if (e.isLoad || e.isStore) && !e.invalidated {
		// Normally already marked by invalidateFalseMemOps at resolution.
		e.invalidated = true
		c.s.invalidatedMem++
	}
	c.s.transparentOps++
	return 1, true
}

// tryIssueSelect handles injected select micro-ops: once the context
// branch resolves, forward the chosen path's value.
func (c *Core) tryIssueSelect(e *robEntry) (int, bool) {
	ctx := e.ctx
	if !ctx.branchDone {
		return 0, false
	}
	chosen := e.selN
	if ctx.branchTaken {
		chosen = e.selT
	}
	if !c.prf[chosen].ready {
		return 0, false
	}
	e.result = c.prf[chosen].val
	e.hasResult = true
	return 1, true
}

// tryIssueLoad applies memory disambiguation: wait for all older store
// addresses, stall behind matching stores of unresolved predicated
// regions, forward from the youngest older matching store, otherwise
// access the cache hierarchy.
func (c *Core) tryIssueLoad(e *robEntry) (int, bool) {
	a, _ := c.srcVals(e)
	addr := a + e.inst.Imm
	var match *robEntry
	for _, sseq := range c.stores.live() {
		if sseq >= e.seq {
			break
		}
		se := c.rob.at(sseq)
		if se == nil || se.invalidated {
			continue
		}
		if !se.addrReady {
			// An ACB body store that is still gated on its branch also
			// lands here: its address is unknown, so the load waits
			// (the paper's "memory disambiguation logic stalls").
			return 0, false
		}
		if sameWord(se.effAddr, addr) {
			if se.ctx != nil && se.role == RoleBody && !se.ctx.branchDone {
				// Eager-mode store on an unresolved predicated path.
				return 0, false
			}
			match = se
		}
	}
	e.effAddr = addr
	e.addrReady = true
	if match != nil {
		if !match.issued {
			return 0, false
		}
		e.result = match.storeVal
		e.hasResult = true
		c.s.loadForwards++
		return c.hier.L1D.Latency(), true
	}
	e.result = c.commitMem.Load(addr)
	e.hasResult = true
	return c.hier.LoadLatency(addr), true
}

func sameWord(a, b int64) bool { return a&^7 == b&^7 }
