package ooo

import (
	"fmt"

	"acb/internal/isa"
)

// renameStage renames and allocates up to AllocWidth instructions from the
// fetch queue into the ROB/IQ/LSQ, injecting select micro-ops at eager
// (DMP-style) reconvergence points.
func (c *Core) renameStage() {
	budget := c.cfg.AllocWidth
	for budget > 0 {
		if c.selHead < len(c.pendingSelects) {
			if !c.allocSelect(&c.pendingSelects[c.selHead]) {
				c.s.allocStallSlots += int64(budget)
				c.stallSlotsThisCycle += int64(budget)
				return
			}
			c.selHead++
			if c.selHead == len(c.pendingSelects) {
				c.pendingSelects = c.pendingSelects[:0]
				c.selHead = 0
			}
			c.progress = true
			budget--
			continue
		}
		if c.fqLen == 0 {
			return
		}
		fi := c.fqFront()
		if fi.readyCycle > c.cycle {
			return
		}
		// Build select micro-ops at an eager context's reconvergence point
		// before the first post-region instruction renames.
		if cl := fi.ctxClose; cl != nil && cl.spec.Eager && !cl.selectsBuilt && !cl.diverged {
			cl.selectsBuilt = true
			c.buildSelects(cl)
			c.progress = true
			continue
		}
		if !c.resourcesAvailable(fi) {
			c.s.allocStallSlots += int64(budget)
			c.stallSlotsThisCycle += int64(budget)
			return
		}
		c.renameOne(fi)
		c.fqPopFront()
		c.progress = true
		budget--
	}
}

// resourcesAvailable reports whether one more instruction fits in the
// backend structures.
func (c *Core) resourcesAvailable(fi *fetchedInst) bool {
	if c.rob.full() {
		return false
	}
	op := fi.inst.Op
	needsIQ := op != isa.Nop && op != isa.Halt && op != isa.Jmp
	if needsIQ && len(c.iq) >= c.cfg.IQSize {
		return false
	}
	if op == isa.Load && c.loads.len() >= c.cfg.LQSize {
		return false
	}
	if op == isa.Store && c.stores.len() >= c.cfg.SQSize {
		return false
	}
	if fi.inst.HasDest() && len(c.freeList) == 0 {
		return false
	}
	return true
}

// renameOne renames one fetched instruction into the backend.
func (c *Core) renameOne(fi *fetchedInst) {
	// Eager fork: the second fetched path renames against the RAT as it
	// was at the predicated branch (DMP's forked RAT).
	if fi.ctxSwitch && fi.ctx != nil && fi.ctx.spec.Eager {
		fi.ctx.rat1 = c.rat
		fi.ctx.haveRAT1 = true
		c.rat = fi.ctx.rat0
	}

	e := c.rob.alloc()
	e.pc = fi.pc
	e.inst = fi.inst
	e.role = fi.role
	e.ctx = fi.ctx
	e.pathTaken = fi.pathTaken
	e.wrongPath = fi.wrongPath
	if fi.hasPred {
		e.pred = fi.pred
	}
	e.hasPred = fi.hasPred
	e.predTaken = fi.predTaken
	e.trueKnown = fi.trueKnown
	e.trueTaken = fi.trueTaken
	e.histAtFetch = fi.histAtFetch
	e.wrongTok = fi.wrongTok

	c.s.allocations++
	if c.pipe != nil {
		c.pipe.renameSlots++
	}
	if fi.wrongPath {
		c.s.wrongPathAllocs++
	}

	if fi.inst.IsControl() {
		e.ratCkpt = c.rat
		e.hasCkpt = true
	}
	if fi.role == RolePredBranch && fi.ctx != nil {
		fi.ctx.branchSeq = e.seq
		if fi.ctx.spec.Eager {
			fi.ctx.rat0 = c.rat
		}
	}

	srcs, n := fi.inst.Sources()
	for i := 0; i < n; i++ {
		e.src[i] = c.rat[srcs[i]]
	}
	e.nsrc = n

	if fi.inst.HasDest() {
		d := fi.inst.Rd
		e.prevPhys = c.rat[d]
		p := c.popFree()
		e.dest = p
		c.prf[p] = prfEntry{}
		c.rat[d] = p
		if e.role == RoleBody && e.ctx != nil && e.ctx.spec.Eager && e.prevPhys == e.ctx.rat0[d] {
			e.skipPrevFree = true
		}
	}

	switch fi.inst.Op {
	case isa.Load:
		e.isLoad = true
		c.loads.push(e.seq)
	case isa.Store:
		e.isStore = true
		c.stores.push(e.seq)
	}

	switch fi.inst.Op {
	case isa.Nop, isa.Halt, isa.Jmp:
		e.done = true
	default:
		c.iq = append(c.iq, e)
		e.inIQ = true
	}
}

// buildSelects computes the select micro-ops an eager context needs: one
// per logical register written on either fetched path, choosing between
// the two paths' final physical registers once the branch resolves
// (DMP's select-µop merge; these consume allocation bandwidth, which is
// the cost the paper's Fig. 10 measures).
func (c *Core) buildSelects(ctx *ctxState) {
	var pA, pB [isa.NumRegs]int
	if ctx.haveRAT1 {
		pA = ctx.rat1 // end of first fetched path
		pB = c.rat    // end of second fetched path
	} else {
		pA = c.rat // only path fetched
		pB = ctx.rat0
	}
	var ratT, ratN [isa.NumRegs]int
	if ctx.spec.FirstTaken {
		ratT, ratN = pA, pB
	} else {
		ratT, ratN = pB, pA
	}
	for r := 0; r < isa.NumRegs; r++ {
		if ratT[r] == ctx.rat0[r] && ratN[r] == ctx.rat0[r] {
			continue
		}
		ss := selectSpec{
			ctx:  ctx,
			log:  isa.Reg(r),
			selT: ratT[r],
			selN: ratN[r],
		}
		for _, p := range [maxFreeOnRetire]int{ratT[r], ratN[r], ctx.rat0[r]} {
			dup := false
			for i := 0; i < int(ss.nFree); i++ {
				if int(ss.frees[i]) == p {
					dup = true
					break
				}
			}
			if !dup {
				ss.frees[ss.nFree] = int32(p)
				ss.nFree++
			}
		}
		c.pendingSelects = append(c.pendingSelects, ss)
	}
}

// allocSelect allocates one pending select micro-op; it returns false when
// backend resources are exhausted this cycle.
func (c *Core) allocSelect(ss *selectSpec) bool {
	if c.rob.full() || len(c.iq) >= c.cfg.IQSize || len(c.freeList) == 0 {
		return false
	}
	e := c.rob.alloc()
	e.pc = ss.ctx.branchPC
	e.role = RoleSelect
	e.ctx = ss.ctx
	e.wrongPath = ss.ctx.wrongPath
	e.selT = ss.selT
	e.selN = ss.selN
	e.selLog = ss.log
	e.freeOnRetire = ss.frees
	e.nFree = ss.nFree
	p := c.popFree()
	e.dest = p
	c.prf[p] = prfEntry{}
	c.rat[ss.log] = p
	c.iq = append(c.iq, e)
	e.inIQ = true
	c.s.allocations++
	c.s.selectUops++
	if c.pipe != nil {
		c.pipe.renameSlots++
	}
	return true
}

func (c *Core) popFree() int {
	if len(c.freeList) == 0 {
		panic(fmt.Sprintf("ooo: physical register file exhausted at cycle %d", c.cycle))
	}
	p := c.freeList[len(c.freeList)-1]
	c.freeList = c.freeList[:len(c.freeList)-1]
	return p
}
