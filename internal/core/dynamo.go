package core

// DynState is the Dynamo finite-state machine state of an ACB Table entry
// (Fig. 5). NEUTRAL entries follow the epoch parity (disabled in odd
// "baseline" epochs, enabled in even "ACB" epochs); GOOD entries always
// apply; BAD entries never apply; the LIKELY states are the intermediate
// steps that require two consecutive consistent observations.
type DynState uint8

// Dynamo FSM states.
const (
	DynNeutral DynState = iota
	DynLikelyGood
	DynGood
	DynLikelyBad
	DynBad
)

// String names the state.
func (s DynState) String() string {
	switch s {
	case DynNeutral:
		return "NEUTRAL"
	case DynLikelyGood:
		return "LIKELY-GOOD"
	case DynGood:
		return "GOOD"
	case DynLikelyBad:
		return "LIKELY-BAD"
	case DynBad:
		return "BAD"
	}
	return "?"
}

// DynamoConfig parameterizes the monitor.
type DynamoConfig struct {
	EpochLen      int64 // retired instructions per epoch (paper: 16K)
	CycleFactor   int64 // threshold divisor for the cycle delta (paper: 8)
	ResetInterval int64 // full state reset period in retired instr (paper: ~10M)
	CounterBits   uint  // epoch cycle counter width (paper: 18)
}

// DefaultDynamoConfig returns the paper's parameters.
func DefaultDynamoConfig() DynamoConfig {
	return DynamoConfig{EpochLen: 16 * 1024, CycleFactor: 8, ResetInterval: 10_000_000, CounterBits: 18}
}

// Dynamo is the run-time performance monitor: it alternates
// baseline-observation (odd) and ACB-observation (even) epochs of
// EpochLen retired instructions, compares the saturating cycle counts of
// each odd/even pair, and walks the involved entries' FSM toward GOOD or
// BAD when the delta exceeds 1/CycleFactor (Sec. III-C, "Dynamo").
type Dynamo struct {
	cfg DynamoConfig

	table *ACBTable

	epochIndex      int64 // 0-based; even index = "disable" epoch, odd = "enable"
	epochStartCycle int64
	epochRetired    int64
	baselineCycles  int64 // cycles of the last completed disable-epoch
	haveBaseline    bool

	retiredTotal int64
	lastReset    int64

	// Telemetry.
	EpochPairs int64
	GoodMoves  int64
	BadMoves   int64
	Resets     int64
}

// NewDynamo returns a monitor over the given ACB table.
func NewDynamo(cfg DynamoConfig, table *ACBTable) *Dynamo {
	return &Dynamo{cfg: cfg, table: table}
}

// EnableEpoch reports whether ACB application is globally enabled in the
// current epoch; per-entry state refines it via Allows.
func (d *Dynamo) enableEpoch() bool { return d.epochIndex%2 == 1 }

// Allows reports whether the entry may predicate this cycle under the
// epoch discipline: in disable epochs only GOOD entries run; in enable
// epochs everything but BAD runs.
func (d *Dynamo) Allows(e *ACBEntry) bool {
	switch e.State {
	case DynGood:
		return true
	case DynBad:
		return false
	default:
		return d.enableEpoch()
	}
}

// Involve records one predicated dynamic instance of the entry.
func (d *Dynamo) Involve(e *ACBEntry) {
	if e.Involvement < 15 {
		e.Involvement++
	}
}

// Tick advances the monitor by one retired instruction at the given
// cycle, closing epochs and applying FSM transitions at pair boundaries.
func (d *Dynamo) Tick(cycle int64) {
	d.retiredTotal++
	d.epochRetired++
	if d.epochStartCycle == 0 {
		d.epochStartCycle = cycle
	}
	if d.epochRetired < d.cfg.EpochLen {
		return
	}

	// Epoch boundary.
	cycles := saturate(cycle-d.epochStartCycle, d.cfg.CounterBits)
	if d.enableEpoch() {
		if d.haveBaseline {
			d.judge(cycles)
		}
		d.haveBaseline = false
	} else {
		d.baselineCycles = cycles
		d.haveBaseline = true
	}
	d.epochIndex++
	d.epochRetired = 0
	d.epochStartCycle = cycle

	if d.retiredTotal-d.lastReset >= d.cfg.ResetInterval {
		d.lastReset = d.retiredTotal
		d.Resets++
		d.table.ForEach(func(e *ACBEntry) {
			e.State = DynNeutral
			e.Involvement = 0
		})
	}
}

// judge compares an enable-epoch cycle count against the preceding
// disable-epoch baseline and transitions involved entries.
func (d *Dynamo) judge(enableCycles int64) {
	d.EpochPairs++
	threshold := d.baselineCycles / d.cfg.CycleFactor
	var dir int // +1 good, -1 bad, 0 inconclusive
	switch {
	case enableCycles > d.baselineCycles+threshold:
		dir = -1
	case enableCycles < d.baselineCycles-threshold:
		dir = +1
	}
	d.table.ForEach(func(e *ACBEntry) {
		involved := e.Involvement >= 15
		e.Involvement = 0
		if dir == 0 || !involved {
			return
		}
		switch {
		case dir > 0:
			d.GoodMoves++
			switch e.State {
			case DynNeutral:
				e.State = DynLikelyGood
			case DynLikelyGood:
				e.State = DynGood
			case DynLikelyBad:
				e.State = DynNeutral
			}
		case dir < 0:
			d.BadMoves++
			switch e.State {
			case DynNeutral:
				e.State = DynLikelyBad
			case DynLikelyBad:
				e.State = DynBad
			case DynLikelyGood:
				e.State = DynNeutral
			}
		}
	})
}

func saturate(v int64, bits uint) int64 {
	max := int64(1)<<bits - 1
	if v > max {
		return max
	}
	if v < 0 {
		return 0
	}
	return v
}

// StorageBits returns Dynamo's own hardware cost outside the ACB Table —
// the 18-bit epoch cycle counter, the 18-bit baseline-cycles register, a
// 14-bit epoch instruction counter, a 10-bit reset epoch counter and the
// epoch-parity bit — plus the fetch-side ACB Context registers (an 8-bit
// divergence-wait counter and the 3-bit region identifier of Sec. III-C).
func (d *Dynamo) StorageBits() int {
	const monitor = 18 + 18 + 14 + 10 + 1
	const fetchContext = 8 + 3
	return monitor + fetchContext
}
