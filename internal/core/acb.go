package core

import (
	"fmt"

	"acb/internal/ooo"
)

// Config parameterizes ACB. Zero values are replaced by the paper's
// defaults via DefaultConfig.
type Config struct {
	// N is the convergence observation window in fetched instructions
	// (paper: 40).
	N int
	// BodySlack is the extra fetched instructions allowed beyond N before
	// a dual-fetch instance is declared divergent.
	BodySlack int
	// CriticalEntries sizes the Critical Table (paper: 64).
	CriticalEntries int
	// ACBEntries sizes the ACB Table (paper: 32, 2-way).
	ACBEntries int
	// WindowInstrs is the criticality-filter window (paper: 200K retired).
	WindowInstrs int64
	// ApplyThreshold is the confidence needed to apply ACB (paper: >32,
	// half of the 6-bit counter's range).
	ApplyThreshold uint8
	// ROBFracLimit counts a misprediction as critical only when detected
	// within this fraction of the ROB from its head (paper: one fourth);
	// <= 0 disables the heuristic.
	ROBFracLimit float64
	// UseDynamo enables the run-time performance monitor.
	UseDynamo bool
	// Dynamo parameterizes the monitor.
	Dynamo DynamoConfig
	// Eager applies ACB with DMP-style select micro-ops instead of
	// stall-and-transparency — the paper's Sec. V-C sensitivity study that
	// bought only ~0.2%.
	Eager bool
	// ThrottleStalls replaces Dynamo with the paper's rejected
	// stall-counting throttle (Sec. V-B) for the ablation study; see
	// StallThrottle. Ignored unless UseDynamo is false.
	ThrottleStalls bool
	// StallLimit is the per-instance stall budget for ThrottleStalls.
	StallLimit float64
	// MultiRecon enables the paper's category-B1 future-work extension
	// (Sec. V-C): learning a second reconvergence point per entry from
	// divergence feedback, instead of resetting and retraining. Costs 18
	// extra bits per ACB Table entry.
	MultiRecon bool
}

// DefaultConfig returns the paper's ACB configuration.
func DefaultConfig() Config {
	return Config{
		N:               40,
		BodySlack:       16,
		CriticalEntries: 64,
		ACBEntries:      32,
		WindowInstrs:    200_000,
		ApplyThreshold:  32,
		// The ROB-quartile refinement (Sec. III-A) is an ablation knob
		// (BenchmarkAblationROBFrac); the frequency filter alone is the
		// default, which also lets shadowed mispredictions train (the
		// paper's soplex outlier shows ACB predicating them).
		ROBFracLimit: 0,
		UseDynamo:    true,
		Dynamo:       DefaultDynamoConfig(),
	}
}

// ACB is the Auto-Predication of Critical Branches engine; it implements
// ooo.Scheme.
type ACB struct {
	cfg Config

	critical *CriticalTable
	learning *LearningTable
	table    *ACBTable
	tracking *TrackingTable
	dynamo   *Dynamo
	stalls   *StallThrottle
	trace    *ooo.TraceRing

	retired    int64
	windowBase int64
	rng        uint64

	// Telemetry.
	Learnings       int64 // confirmed convergences installed in the ACB table
	TrackFails      int64 // tracking-table convergence failures
	Divergences     int64 // divergent predicated instances observed at retire
	ReconPromotions int64 // second-reconvergence adoptions (MultiRecon)
}

// New returns an ACB engine with the given configuration.
func New(cfg Config) *ACB {
	if cfg.N == 0 {
		cfg = DefaultConfig()
	}
	a := &ACB{
		cfg:      cfg,
		critical: NewCriticalTable(cfg.CriticalEntries),
		learning: NewLearningTable(cfg.N),
		table:    NewACBTable(cfg.ACBEntries),
		tracking: NewTrackingTable(cfg.N),
		rng:      0x2545F4914F6CDD1D,
	}
	a.dynamo = NewDynamo(cfg.Dynamo, a.table)
	if cfg.ThrottleStalls {
		limit := cfg.StallLimit
		if limit <= 0 {
			limit = 40
		}
		a.stalls = NewStallThrottle(limit, 64)
	}
	return a
}

// Name implements ooo.Scheme.
func (a *ACB) Name() string {
	switch {
	case a.cfg.MultiRecon:
		return "acb-mr"
	case a.cfg.ThrottleStalls:
		return "acb-stallthrottle"
	case !a.cfg.UseDynamo:
		return "acb-nodynamo"
	default:
		return "acb"
	}
}

// Table exposes the ACB Table for tests and reports.
func (a *ACB) Table() *ACBTable { return a.table }

// CriticalTable exposes the criticality filter for tests.
func (a *ACB) CriticalTable() *CriticalTable { return a.critical }

// Dynamo exposes the monitor for tests and reports.
func (a *ACB) Dynamo() *Dynamo { return a.dynamo }

// SetTrace attaches an event ring (normally the core's, via
// ooo.Core.EnableTrace) so gate decisions appear on the same timeline as
// the pipeline's dual-fetch and flush events.
func (a *ACB) SetTrace(r *ooo.TraceRing) { a.trace = r }

func (a *ACB) nextRand() uint64 {
	a.rng ^= a.rng << 13
	a.rng ^= a.rng >> 7
	a.rng ^= a.rng << 17
	return a.rng
}

// ShouldPredicate implements ooo.Scheme: a branch instance is dual-fetched
// when its ACB Table entry has built confidence and Dynamo's epoch/state
// discipline allows it.
func (a *ACB) ShouldPredicate(pc int, _ bool, _ int, _ uint64) (ooo.PredSpec, bool) {
	e := a.table.Lookup(pc)
	if e == nil || e.Confidence <= a.cfg.ApplyThreshold {
		return ooo.PredSpec{}, false
	}
	if a.cfg.UseDynamo && !a.dynamo.Allows(e) {
		if a.trace != nil {
			a.trace.Emit(ooo.EvGateDeny, pc, 0, ooo.GateDynamo)
		}
		return ooo.PredSpec{}, false
	}
	if a.stalls != nil && !a.stalls.Allows(pc) {
		if a.trace != nil {
			a.trace.Emit(ooo.EvGateDeny, pc, 0, ooo.GateStallThrottle)
		}
		return ooo.PredSpec{}, false
	}
	recon := e.ReconPC
	if a.cfg.MultiRecon && e.UseRecon2 && e.ReconPC2 != 0 {
		recon = e.ReconPC2
	}
	return ooo.PredSpec{
		ReconPC:    recon,
		FirstTaken: e.FirstTaken,
		MaxBody:    a.cfg.N + a.cfg.BodySlack,
		Eager:      a.cfg.Eager,
	}, true
}

// OnFetch implements ooo.Scheme: the fetched-PC stream drives the
// Learning Table's convergence detection and the Tracking Table's
// convergence-confidence validation.
func (a *ACB) OnFetch(ev ooo.FetchEvent) {
	if failPC, failed := a.tracking.Observe(ev.PC); failed {
		a.TrackFails++
		if e := a.table.Lookup(failPC); e != nil {
			e.Confidence = 0
		}
	}
	if l := a.learning.Observe(ev.PC, ev.IsBranch, ev.IsControl, ev.Taken, ev.Target, ev.InContext); l != nil {
		a.install(l)
	}
	// Arm the tracker on a fetched instance of a still-unconfident entry.
	if ev.IsBranch && !ev.InContext && !a.tracking.Active() {
		if e := a.table.Lookup(ev.PC); e != nil && e.Confidence <= a.cfg.ApplyThreshold {
			a.tracking.Arm(ev.PC, e.ReconPC)
		}
	}
}

func (a *ACB) install(l *Learned) {
	a.table.Install(l)
	a.critical.Release(l.PC)
	a.Learnings++
}

// OnFlush implements ooo.Scheme: in-flight fetch observations are stale
// after a pipeline flush.
func (a *ACB) OnFlush() {
	a.learning.AbortObservation()
	a.tracking.Abort()
}

// OnBranchResolve implements ooo.Scheme: criticality training, confidence
// building and Dynamo involvement.
func (a *ACB) OnBranchResolve(ev ooo.ResolveEvent) {
	if ev.Predicated {
		if a.stalls != nil {
			a.stalls.Observe(ev.PC, ev.BodyStallCycles)
		}
		if e := a.table.Lookup(ev.PC); e != nil {
			a.dynamo.Involve(e)
			if ev.Diverged {
				a.Divergences++
				switch {
				case a.cfg.MultiRecon && e.ReconPC2 == 0 && ev.ReconHint > e.ReconPC:
					// Category-B1 extension: adopt the point where the
					// diverged instance actually re-joined as a second
					// reconvergence point and switch to it, keeping the
					// built-up confidence.
					e.ReconPC2 = ev.ReconHint
					e.UseRecon2 = true
					a.ReconPromotions++
				case a.cfg.MultiRecon && e.ReconPC2 != 0 && ev.ReconHint > e.ReconPC2:
					// Still diverging: promote further out.
					e.ReconPC2 = ev.ReconHint
					a.ReconPromotions++
				default:
					// Divergence: reset confidence and utility to retrain
					// (Sec. III-C1).
					e.Confidence = 0
					e.Utility = 0
					e.ReconPC2 = 0
					e.UseRecon2 = false
				}
			}
		}
		return
	}

	// Blocked stall-throttle entries only ever see non-predicated retires;
	// these drive the decay that re-enables them after a phase change.
	if a.stalls != nil {
		a.stalls.ObserveRetired(ev.PC)
	}

	// Confidence counters of learned entries (Sec. III-B, "Criticality
	// Confidence").
	if e := a.table.Lookup(ev.PC); e != nil {
		if ev.Mispredict {
			if e.Confidence < 63 {
				e.Confidence++
			}
			if e.Utility < 3 {
				e.Utility++
			}
		} else {
			m := decProbM(e.BodySize)
			if a.nextRand()%uint64(m+1) == 0 && e.Confidence > 0 {
				e.Confidence--
			}
		}
	}

	// Criticality filter (Sec. III-A).
	if !ev.Mispredict {
		return
	}
	if a.cfg.ROBFracLimit > 0 && ev.ROBFrac > a.cfg.ROBFracLimit {
		return // in the shadow of older work; likely not critical
	}
	if a.critical.RecordMispredict(ev.PC) {
		if a.table.Lookup(ev.PC) == nil {
			a.learning.Arm(ev.PC, ev.Target)
		}
	}
}

// OnRetireTick implements ooo.Scheme: window resets and Dynamo epochs.
func (a *ACB) OnRetireTick(cycle int64) {
	a.retired++
	if a.retired-a.windowBase >= a.cfg.WindowInstrs {
		a.windowBase = a.retired
		a.critical.ResetWindow()
	}
	if a.cfg.UseDynamo {
		a.dynamo.Tick(cycle)
	}
}

// StorageBytes returns ACB's total hardware budget in bytes; the paper's
// Table I reports 386 bytes for the default configuration.
func (a *ACB) StorageBytes() int {
	bits := a.critical.StorageBits() +
		a.learning.StorageBits() +
		a.table.StorageBits() +
		a.tracking.StorageBits() +
		a.dynamo.StorageBits()
	return (bits + 7) / 8
}

// StorageReport itemizes the hardware budget (Table I).
func (a *ACB) StorageReport() string {
	return fmt.Sprintf(
		"Critical Table (%d entries): %d bytes\n"+
			"Learning Table (1 entry): %d bytes\n"+
			"ACB Table (%d entries, 2-way): %d bytes\n"+
			"Tracking Table (1 entry): %d bytes\n"+
			"Dynamo counters: %d bytes\n"+
			"Total: %d bytes\n",
		a.cfg.CriticalEntries, (a.critical.StorageBits()+7)/8,
		(a.learning.StorageBits()+7)/8,
		a.cfg.ACBEntries, (a.table.StorageBits()+7)/8,
		(a.tracking.StorageBits()+7)/8,
		(a.dynamo.StorageBits()+7)/8,
		a.StorageBytes())
}

var _ ooo.Scheme = (*ACB)(nil)
