package core

import "testing"

// tickEpoch advances the monitor through one epoch of cfg.EpochLen
// retirements spanning `cycles` cycles.
func tickEpoch(d *Dynamo, cfg DynamoConfig, startCycle, cycles int64) int64 {
	perInst := float64(cycles) / float64(cfg.EpochLen)
	for i := int64(0); i < cfg.EpochLen; i++ {
		d.Tick(startCycle + int64(float64(i+1)*perInst))
	}
	return startCycle + cycles
}

func smallDynamo() (DynamoConfig, *ACBTable, *Dynamo) {
	cfg := DynamoConfig{EpochLen: 1000, CycleFactor: 8, ResetInterval: 1 << 40, CounterBits: 18}
	tab := NewACBTable(32)
	return cfg, tab, NewDynamo(cfg, tab)
}

func involved(d *Dynamo, e *ACBEntry) {
	for i := 0; i < 16; i++ {
		d.Involve(e)
	}
}

// TestDynamoGoodPromotion: two consecutive epoch pairs where enabling ACB
// is clearly faster promote an involved entry NEUTRAL -> LIKELY-GOOD ->
// GOOD.
func TestDynamoGoodPromotion(t *testing.T) {
	cfg, tab, d := smallDynamo()
	e := tab.Install(&Learned{PC: 100})
	cyc := int64(1)
	for pair := 0; pair < 2; pair++ {
		cyc = tickEpoch(d, cfg, cyc, 4000) // disable epoch: slow
		involved(d, e)
		cyc = tickEpoch(d, cfg, cyc, 2000) // enable epoch: fast
	}
	if e.State != DynGood {
		t.Fatalf("state = %v, want GOOD", e.State)
	}
	if !d.Allows(e) {
		t.Fatal("GOOD entry must always be allowed")
	}
	if d.GoodMoves < 2 {
		t.Fatalf("good moves = %d", d.GoodMoves)
	}
}

// TestDynamoBadDemotion: consistently slower enable epochs demote to BAD,
// which permanently disables the entry.
func TestDynamoBadDemotion(t *testing.T) {
	cfg, tab, d := smallDynamo()
	e := tab.Install(&Learned{PC: 100})
	cyc := int64(1)
	for pair := 0; pair < 2; pair++ {
		cyc = tickEpoch(d, cfg, cyc, 2000) // disable: fast
		involved(d, e)
		cyc = tickEpoch(d, cfg, cyc, 4000) // enable: slow
	}
	if e.State != DynBad {
		t.Fatalf("state = %v, want BAD", e.State)
	}
	if d.Allows(e) {
		t.Fatal("BAD entry must never be allowed")
	}
}

// TestDynamoThresholdDeadband: cycle deltas within 1/8 cause no
// transitions.
func TestDynamoThresholdDeadband(t *testing.T) {
	cfg, tab, d := smallDynamo()
	e := tab.Install(&Learned{PC: 100})
	cyc := int64(1)
	for pair := 0; pair < 4; pair++ {
		cyc = tickEpoch(d, cfg, cyc, 4000)
		involved(d, e)
		cyc = tickEpoch(d, cfg, cyc, 4100) // ~2.5% slower: inside deadband
	}
	if e.State != DynNeutral {
		t.Fatalf("state = %v, want NEUTRAL (deadband)", e.State)
	}
}

// TestDynamoRequiresInvolvement: entries not active in the epoch pair do
// not transition — preventing unrelated IPC noise from being attributed.
func TestDynamoRequiresInvolvement(t *testing.T) {
	cfg, tab, d := smallDynamo()
	e := tab.Install(&Learned{PC: 100})
	cyc := int64(1)
	cyc = tickEpoch(d, cfg, cyc, 4000)
	// No Involve calls: entry was inactive.
	cyc = tickEpoch(d, cfg, cyc, 1000)
	if e.State != DynNeutral {
		t.Fatalf("uninvolved entry transitioned to %v", e.State)
	}
}

// TestDynamoInconsistentObservations: a good pair followed by a bad pair
// returns the entry to NEUTRAL (consecutive consistency required).
func TestDynamoInconsistentObservations(t *testing.T) {
	cfg, tab, d := smallDynamo()
	e := tab.Install(&Learned{PC: 100})
	cyc := int64(1)
	cyc = tickEpoch(d, cfg, cyc, 4000)
	involved(d, e)
	cyc = tickEpoch(d, cfg, cyc, 2000) // good pair
	if e.State != DynLikelyGood {
		t.Fatalf("state = %v, want LIKELY-GOOD", e.State)
	}
	cyc = tickEpoch(d, cfg, cyc, 2000)
	involved(d, e)
	cyc = tickEpoch(d, cfg, cyc, 4000) // bad pair
	if e.State != DynNeutral {
		t.Fatalf("state = %v, want NEUTRAL after contradiction", e.State)
	}
}

// TestDynamoEpochParity: NEUTRAL entries follow the epoch discipline —
// disabled in even-indexed (baseline) epochs, enabled in odd (ACB) epochs.
func TestDynamoEpochParity(t *testing.T) {
	cfg, tab, d := smallDynamo()
	e := tab.Install(&Learned{PC: 100})
	if d.Allows(e) {
		t.Fatal("NEUTRAL entry allowed in the first (baseline) epoch")
	}
	tickEpoch(d, cfg, 1, 1000)
	if !d.Allows(e) {
		t.Fatal("NEUTRAL entry blocked in the enable epoch")
	}
}

// TestDynamoPeriodicReset: states and involvement clear every
// ResetInterval retired instructions, giving blocked candidates a fresh
// chance (Sec. III-C).
func TestDynamoPeriodicReset(t *testing.T) {
	cfg := DynamoConfig{EpochLen: 100, CycleFactor: 8, ResetInterval: 1000, CounterBits: 18}
	tab := NewACBTable(32)
	d := NewDynamo(cfg, tab)
	e := tab.Install(&Learned{PC: 100})
	e.State = DynBad
	cyc := int64(1)
	for i := 0; i < 12; i++ {
		cyc = tickEpoch(d, cfg, cyc, 200)
	}
	if e.State != DynNeutral {
		t.Fatalf("state = %v after reset interval, want NEUTRAL", e.State)
	}
	if d.Resets == 0 {
		t.Fatal("no reset recorded")
	}
}

// TestDynamoCounterSaturation: epoch cycle counts saturate at the 18-bit
// hardware width.
func TestDynamoCounterSaturation(t *testing.T) {
	if saturate(1<<20, 18) != (1<<18)-1 {
		t.Fatal("saturation bound wrong")
	}
	if saturate(5, 18) != 5 {
		t.Fatal("small values must pass through")
	}
	if saturate(-3, 18) != 0 {
		t.Fatal("negative clamps to zero")
	}
}

func TestDynStateString(t *testing.T) {
	want := map[DynState]string{
		DynNeutral: "NEUTRAL", DynLikelyGood: "LIKELY-GOOD", DynGood: "GOOD",
		DynLikelyBad: "LIKELY-BAD", DynBad: "BAD",
	}
	for s, str := range want {
		if s.String() != str {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}
