package core

// ACBEntry is one learned, application-ready branch in the ACB Table:
// convergence metadata from the Learning Table plus the confidence and
// Dynamo state that gate run-time application (Sec. III-B, Table I).
type ACBEntry struct {
	Valid      bool
	PC         int
	Type       ConvType
	ReconPC    int
	FirstTaken bool
	BodySize   int
	Backward   bool

	// Confidence is the 6-bit saturating probabilistic counter: +1 per
	// flush-causing misprediction, -1 with probability 1/M per correct
	// prediction, where M is derived from the body-size-to-misprediction-
	// rate mapping. Application begins above half scale (> 32).
	Confidence uint8
	Utility    uint8 // 2 bits

	// Dynamo per-entry state.
	State       DynState
	Involvement uint8 // 4-bit saturating activity counter

	// Multiple-reconvergence extension (core.Config.MultiRecon; the
	// paper's category-B1 future work): a second reconvergence point
	// learned from divergence feedback, and the selector that activates
	// it. Zero means unset.
	ReconPC2  int
	UseRecon2 bool
}

// decProbM returns M such that the confidence counter decays by 1/M per
// correct prediction: the body-size→required-misprediction-rate mapping
// (larger bodies demand higher misprediction rates before predication
// pays, per Equation 1). The body size is encoded in 2 bits (4 classes).
func decProbM(bodySize int) int {
	switch {
	case bodySize <= 4:
		return 31 // m = 1/32
	case bodySize <= 8:
		return 15 // m = 1/16
	case bodySize <= 16:
		return 7 // m = 1/8
	default:
		return 3 // m = 1/4
	}
}

// ACBTable is the 32-entry, 2-way set-associative table of learned
// branches.
type ACBTable struct {
	sets    int
	entries []ACBEntry // sets*2
}

// NewACBTable returns a table with the given total entries (even; the
// paper uses 32, 2-way).
func NewACBTable(entries int) *ACBTable {
	if entries < 2 || entries%2 != 0 {
		panic("core: ACB table needs an even entry count")
	}
	return &ACBTable{sets: entries / 2, entries: make([]ACBEntry, entries)}
}

func (t *ACBTable) set(pc int) []ACBEntry {
	s := (pc ^ (pc >> 7)) % t.sets
	if s < 0 {
		s += t.sets
	}
	return t.entries[s*2 : s*2+2]
}

// Lookup returns the entry for pc, or nil.
func (t *ACBTable) Lookup(pc int) *ACBEntry {
	set := t.set(pc)
	for i := range set {
		if set[i].Valid && set[i].PC == pc {
			return &set[i]
		}
	}
	return nil
}

// Install inserts a learned convergence, evicting the way with the lower
// utility (then lower confidence).
func (t *ACBTable) Install(l *Learned) *ACBEntry {
	set := t.set(l.PC)
	victim := 0
	for i := range set {
		if !set[i].Valid {
			victim = i
			break
		}
		if set[i].PC == l.PC {
			victim = i
			break
		}
		if set[i].Utility < set[victim].Utility ||
			(set[i].Utility == set[victim].Utility && set[i].Confidence < set[victim].Confidence) {
			victim = i
		}
	}
	set[victim] = ACBEntry{
		Valid:      true,
		PC:         l.PC,
		Type:       l.Type,
		ReconPC:    l.ReconPC,
		FirstTaken: l.FirstTaken,
		BodySize:   l.BodySize,
		Backward:   l.Backward,
		Utility:    1,
	}
	return &set[victim]
}

// ForEach visits every valid entry.
func (t *ACBTable) ForEach(fn func(*ACBEntry)) {
	for i := range t.entries {
		if t.entries[i].Valid {
			fn(&t.entries[i])
		}
	}
}

// Len returns the number of valid entries.
func (t *ACBTable) Len() int {
	n := 0
	for i := range t.entries {
		if t.entries[i].Valid {
			n++
		}
	}
	return n
}

// StorageBits returns the hardware cost: per entry an address tag plus an
// 18-bit reconvergence offset, type, first-direction bit, 2-bit body-size
// class, 6-bit confidence, 2-bit utility, 3-bit Dynamo state and 4-bit
// involvement counter — 54 bits, 216 bytes for the 32-entry table.
func (t *ACBTable) StorageBits() int {
	const perEntry = 16 /*tag*/ + 18 /*recon offset*/ + 2 /*type*/ + 1 /*dir*/ +
		2 /*body class*/ + 6 /*confidence*/ + 2 /*utility*/ + 3 /*state*/ + 4 /*involvement*/
	return len(t.entries) * perEntry
}

// TrackingTable is the paper's single-entry convergence monitor: while an
// ACB entry's confidence is still building, each fetched (non-predicated)
// instance of the branch is checked for the learned reconvergence point
// appearing within the observation window; a miss resets the entry's
// confidence, excluding divergence-prone branches (Sec. III-B,
// "Convergence Confidence").
type TrackingTable struct {
	n       int
	active  bool
	pc      int
	reconPC int
	count   int
}

// NewTrackingTable returns a tracker with observation window n.
func NewTrackingTable(n int) *TrackingTable {
	return &TrackingTable{n: n}
}

// Arm begins monitoring one fetched instance of pc for recon.
func (t *TrackingTable) Arm(pc, recon int) {
	t.active = true
	t.pc = pc
	t.reconPC = recon
	t.count = 0
}

// Active reports whether a monitor is in flight.
func (t *TrackingTable) Active() bool { return t.active }

// Abort cancels the in-flight monitor (pipeline flush).
func (t *TrackingTable) Abort() { t.active = false }

// Observe feeds one fetched PC; it returns (pc, true) when the monitored
// instance failed to reach its reconvergence point in time.
func (t *TrackingTable) Observe(pc int) (int, bool) {
	if !t.active {
		return 0, false
	}
	if pc == t.reconPC {
		t.active = false
		return 0, false
	}
	t.count++
	if t.count > 2*t.n {
		t.active = false
		return t.pc, true
	}
	return 0, false
}

// StorageBits returns the hardware cost of the single entry.
func (t *TrackingTable) StorageBits() int { return 16 + 16 + 8 }
