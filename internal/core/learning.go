package core

import "fmt"

// ConvType classifies how a branch's paths reconverge (Fig. 3).
type ConvType uint8

// Convergence types. Type-1: the reconvergence point is the branch target
// itself (IF without ELSE). Type-2: the not-taken path contains a Jumper
// whose target lies beyond the branch target (IF-ELSE). Type-3: the taken
// path contains a Jumper whose target lies between the branch and its
// target, so the not-taken path falls through to it.
const (
	TypeNone ConvType = iota
	Type1
	Type2
	Type3
)

// String returns the paper's name for the convergence type.
func (t ConvType) String() string {
	switch t {
	case Type1:
		return "Type-1"
	case Type2:
		return "Type-2"
	case Type3:
		return "Type-3"
	}
	return "unclassified"
}

// Learned is a confirmed convergence classification.
type Learned struct {
	PC         int
	Type       ConvType
	ReconPC    int
	FirstTaken bool // which direction the front end fetches first
	BodySize   int  // combined observed instructions on both paths
	Backward   bool // learned through the backward-branch transform (Fig. 4)
}

// learnPhase enumerates the Learning Table's internal progress.
type learnPhase uint8

const (
	learnIdle       learnPhase = iota
	learnObserveNT             // observe the NT-role path (Type-1 / Type-2 probe)
	learnValidateT             // validate a Type-2 candidate on the T-role path
	learnObserveT              // observe the T-role path (Type-3 probe)
	learnValidateNT            // validate a Type-3 candidate on the NT-role path
)

// LearningTable is the paper's single-entry (20-byte) convergence
// detector: it watches the fetched-PC stream one candidate branch at a
// time, classifying it as Type-1/2/3 or non-convergent. Backward branches
// are handled by the perspective-swap transform of Fig. 4: the roles of
// the taken and not-taken paths are exchanged and the effective target
// becomes the instruction after the branch.
type LearningTable struct {
	n int // observation window (paper: N = 40)

	occupied bool
	pc       int
	target   int
	backward bool

	phase     learnPhase
	watching  bool
	count     int
	candidate int
	firstLen  int // body length observed on the first classified path

	// age releases a stuck candidate (the paper's table is simply
	// occupied until confirmation; a bound keeps simulation robust when a
	// candidate branch stops recurring).
	age    int
	maxAge int
}

// NewLearningTable returns a learning table with observation window n.
func NewLearningTable(n int) *LearningTable {
	return &LearningTable{n: n, maxAge: 200_000}
}

// Occupied reports whether a candidate is being learned.
func (l *LearningTable) Occupied() bool { return l.occupied }

// CandidatePC returns the branch being learned (undefined when not
// occupied).
func (l *LearningTable) CandidatePC() int { return l.pc }

// Arm installs a new candidate branch; target is its decode-time branch
// target. It returns false if the table is occupied.
func (l *LearningTable) Arm(pc, target int) bool {
	if l.occupied {
		return false
	}
	*l = LearningTable{
		n: l.n, maxAge: l.maxAge,
		occupied: true,
		pc:       pc,
		target:   target,
		backward: target <= pc,
		phase:    learnObserveNT,
	}
	return true
}

// Reset abandons the current candidate.
func (l *LearningTable) Reset() {
	l.occupied = false
	l.phase = learnIdle
	l.watching = false
}

// AbortObservation cancels an in-progress observation (pipeline flush)
// without abandoning the candidate.
func (l *LearningTable) AbortObservation() {
	l.watching = false
	l.count = 0
}

// ntRole maps an observed branch direction onto the transformed
// "not-taken" role: for forward branches it is the literal not-taken
// direction, for backward branches the roles swap (Fig. 4).
func (l *LearningTable) ntRole(taken bool) bool {
	if l.backward {
		return taken
	}
	return !taken
}

// effTarget is the transformed branch target: the literal target for
// forward branches, the fall-through PC for backward ones.
func (l *LearningTable) effTarget() int {
	if l.backward {
		return l.pc + 1
	}
	return l.target
}

// effPC is the transformed branch PC.
func (l *LearningTable) effPC() int {
	if l.backward {
		return l.target
	}
	return l.pc
}

// Observe feeds one fetched instruction to the detector. When
// classification completes it returns a non-nil Learned. ev fields:
// pc of the fetched instruction; branch=true when it is the candidate's
// conditional-branch PC class; taken/target describe the control transfer
// the fetch followed; inContext marks instructions inside an open
// predication context (ignored for arming).
func (l *LearningTable) Observe(pc int, isBranch, isControl, taken bool, target int, inContext bool) *Learned {
	if !l.occupied {
		return nil
	}
	l.age++
	if l.age > l.maxAge {
		l.Reset()
		return nil
	}

	if !l.watching {
		// Waiting for an instance of the candidate in the wanted role.
		if pc != l.pc || !isBranch || inContext {
			return nil
		}
		wantNT := l.phase == learnObserveNT || l.phase == learnValidateNT
		if l.ntRole(taken) != wantNT {
			return nil
		}
		l.watching = true
		l.count = 0
		return nil
	}

	// Watching the stream after an armed instance.
	l.count++
	if l.count > l.n {
		l.advanceOnExhaust()
		return nil
	}

	switch l.phase {
	case learnObserveNT:
		if pc == l.effTarget() {
			// Type-1: reached the (effective) branch target by
			// fall-through — the taken-role path is empty.
			return l.confirm(Type1, l.effTarget(), l.count-1, 0)
		}
		if isControl && taken && target > l.effTarget() {
			// Type-2 candidate: Jumper beyond the branch target.
			l.candidate = target
			l.firstLen = l.count
			l.phase = learnValidateT
			l.watching = false
			return nil
		}
	case learnValidateT:
		if pc == l.candidate {
			return l.confirm(Type2, l.candidate, l.firstLen, l.count-1)
		}
	case learnObserveT:
		if isControl && taken && target < l.effTarget() && target > l.effPC() {
			// Type-3 candidate: Jumper back between branch and target.
			l.candidate = target
			l.firstLen = l.count
			l.phase = learnValidateNT
			l.watching = false
			return nil
		}
	case learnValidateNT:
		if pc == l.candidate {
			return l.confirm(Type3, l.candidate, l.count-1, l.firstLen)
		}
	default:
		panic(fmt.Sprintf("core: learning in invalid phase %d", l.phase))
	}
	return nil
}

// advanceOnExhaust moves to the next probe when an observation window
// expires without a classification, per the paper's staged algorithm:
// Type-1/2 probes fall back to the Type-3 probe; a failed Type-3 probe
// resets the entry as non-convergent.
func (l *LearningTable) advanceOnExhaust() {
	switch l.phase {
	case learnObserveNT, learnValidateT:
		l.phase = learnObserveT
		l.watching = false
		l.count = 0
	default:
		l.Reset()
	}
}

func (l *LearningTable) confirm(t ConvType, recon, ntLen, tLen int) *Learned {
	// FirstTaken: Type-1/2 fetch the not-taken role first, Type-3 the
	// taken role first; the backward transform swaps literal directions.
	firstNTRole := t != Type3
	firstTaken := !firstNTRole
	if l.backward {
		firstTaken = !firstTaken
	}
	res := &Learned{
		PC:         l.pc,
		Type:       t,
		ReconPC:    recon,
		FirstTaken: firstTaken,
		BodySize:   ntLen + tLen,
		Backward:   l.backward,
	}
	l.Reset()
	return res
}

// StorageBits returns the hardware cost of the single entry; the paper
// budgets 20 bytes.
func (l *LearningTable) StorageBits() int { return 20 * 8 }
