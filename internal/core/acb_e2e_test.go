package core_test

import (
	"testing"

	"acb/internal/bpu"
	"acb/internal/config"
	"acb/internal/core"
	"acb/internal/isa"
	"acb/internal/ooo"
	"acb/internal/prog"
)

// buildH2PHammock builds a loop with a hard-to-predict IF-ELSE hammock:
// the branch condition comes from a long-period xorshift stream stored in
// memory, which TAGE cannot learn.
func buildH2PHammock(iters, period int64) ([]isa.Instruction, *isa.Memory) {
	b := prog.NewBuilder()
	b.MovI(isa.R1, iters)
	b.MovI(isa.R2, 0x1000)
	b.MovI(isa.R3, 0)
	b.MovI(isa.R7, 0)
	b.Label("loop")
	b.AndI(isa.R4, isa.R3, period-1)
	b.MulI(isa.R4, isa.R4, 8)
	b.Add(isa.R5, isa.R2, isa.R4)
	b.Load(isa.R6, isa.R5, 0)
	b.AndI(isa.R6, isa.R6, 1)
	b.Brz(isa.R6, "else")
	b.AddI(isa.R7, isa.R7, 3)
	b.Xor(isa.R9, isa.R7, isa.R3)
	b.Jmp("end")
	b.Label("else")
	b.AddI(isa.R7, isa.R7, 7)
	b.Label("end")
	b.AddI(isa.R3, isa.R3, 1)
	b.Sub(isa.R8, isa.R3, isa.R1)
	b.Brnz(isa.R8, "loop")
	b.Halt()
	p := b.MustBuild()

	m := isa.NewMemory()
	x := uint64(0x9E3779B9)
	for i := int64(0); i < period; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		m.Store(0x1000+i*8, int64(x&0xFFFF))
	}
	return p, m
}

func run(t *testing.T, p []isa.Instruction, m *isa.Memory, scheme ooo.Scheme, max int64) ooo.Result {
	t.Helper()
	c := ooo.NewWithMemory(config.Skylake(), p, bpu.NewTAGE(bpu.DefaultTAGEConfig()), scheme, m.Clone())
	res, err := c.Run(max)
	if err != nil {
		t.Fatalf("run (%s): %v", res.Scheme, err)
	}
	if !res.Halted {
		t.Fatalf("run (%s) did not halt: retired=%d", res.Scheme, res.Retired)
	}
	return res
}

// TestACBEndToEnd: ACB must learn the H2P hammock, predicate it, remove
// most flushes, improve IPC, and stay architecturally correct.
func TestACBEndToEnd(t *testing.T) {
	// A large unpredictable period so TAGE keeps mispredicting.
	p, m := buildH2PHammock(30_000, 8192)

	want := isa.NewArchState(m.Clone())
	if _, halted := want.Run(p, 3_000_000); !halted {
		t.Fatal("functional run did not halt")
	}

	base := run(t, p, m, nil, 3_000_000)

	cfg := core.DefaultConfig()
	acb := core.New(cfg)
	withACB := run(t, p, m, acb, 3_000_000)

	for r := 0; r < isa.NumRegs; r++ {
		if withACB.FinalRegs[r] != want.Regs[r] {
			t.Errorf("ACB run r%d = %d, want %d", r, withACB.FinalRegs[r], want.Regs[r])
		}
	}

	if base.Mispredicts < 1000 {
		t.Fatalf("baseline not H2P enough: %d mispredicts", base.Mispredicts)
	}
	if acb.Learnings == 0 {
		t.Fatalf("ACB learned no convergences")
	}
	if withACB.Predications == 0 {
		t.Fatalf("ACB never predicated")
	}
	if withACB.Flushes >= base.Flushes {
		t.Errorf("ACB flushes %d not below baseline %d", withACB.Flushes, base.Flushes)
	}
	if withACB.IPC <= base.IPC {
		t.Errorf("ACB IPC %.3f not above baseline %.3f", withACB.IPC, base.IPC)
	}
	t.Logf("baseline: IPC=%.3f flushes=%d mispredicts=%d", base.IPC, base.Flushes, base.Mispredicts)
	t.Logf("acb:      IPC=%.3f flushes=%d mispredicts=%d predications=%d divergences=%d learned=%d",
		withACB.IPC, withACB.Flushes, withACB.Mispredicts, withACB.Predications, acb.Divergences, acb.Learnings)
	t.Logf("storage: %d bytes", acb.StorageBytes())
}
