package core

// StallThrottle is the paper's *rejected* pre-Dynamo throttling design
// (Sec. V-B): instead of measuring delivered performance, count the
// execution stalls predication creates ("waiting for dispatch at issue
// queue") and disable entries whose instances stall too much. The paper
// found it mis-throttles — "despite high stall counts, performing
// predication was favorable as saved pipeline flushes outweighed the
// additional stalls" — and it is kept here as the ablation baseline that
// motivates Dynamo (core.Config.Throttle = ThrottleStalls,
// BenchmarkAblationThrottle).
type StallThrottle struct {
	// StallLimit is the per-instance average body-stall budget (in gated
	// wakeup attempts) above which an entry is disabled.
	StallLimit float64
	// Window is the number of predicated instances averaged per decision.
	Window int64
	// DecayWindow is the number of *non-predicated* retired instances of a
	// blocked branch after which the block lifts and the entry gets a
	// fresh measurement window. Once an entry is blocked it stops
	// predicating, so no further Observe calls arrive for it — without
	// this decay path a block would be permanent, contradicting the
	// sliding-restart intent (and hiding phase changes). Defaults to
	// Window when zero.
	DecayWindow int64

	stats map[int]*stallStat
}

type stallStat struct {
	instances int64
	stalls    int64
	blocked   bool
	// retiredBlocked counts non-predicated retired instances seen while
	// blocked; reaching DecayWindow unblocks the entry.
	retiredBlocked int64
}

// NewStallThrottle returns a throttle with the given per-instance stall
// budget.
func NewStallThrottle(limit float64, window int64) *StallThrottle {
	if window <= 0 {
		window = 64
	}
	return &StallThrottle{StallLimit: limit, Window: window, DecayWindow: window,
		stats: make(map[int]*stallStat)}
}

// Allows reports whether the entry may still predicate.
func (s *StallThrottle) Allows(pc int) bool {
	st := s.stats[pc]
	return st == nil || !st.blocked
}

// Observe records one predicated instance's stall count and updates the
// block decision at each window boundary.
func (s *StallThrottle) Observe(pc int, stalls int64) {
	st := s.stats[pc]
	if st == nil {
		st = &stallStat{}
		s.stats[pc] = st
	}
	st.instances++
	st.stalls += stalls
	if st.instances%s.Window == 0 {
		avg := float64(st.stalls) / float64(st.instances)
		st.blocked = avg > s.StallLimit
		// Sliding restart so phase changes can unblock.
		st.instances = 0
		st.stalls = 0
		st.retiredBlocked = 0
	}
}

// ObserveRetired records one retired *non-predicated* instance of the
// branch. Blocked entries see only these (Allows suppresses predication,
// so Observe never fires for them); after DecayWindow of them the block
// lifts and the entry re-measures, which is what lets a phase change
// unblock an entry.
func (s *StallThrottle) ObserveRetired(pc int) {
	st := s.stats[pc]
	if st == nil || !st.blocked {
		return
	}
	st.retiredBlocked++
	window := s.DecayWindow
	if window <= 0 {
		window = s.Window
	}
	if st.retiredBlocked >= window {
		st.blocked = false
		st.retiredBlocked = 0
		st.instances = 0
		st.stalls = 0
	}
}

// Blocked returns the number of currently blocked entries (telemetry).
func (s *StallThrottle) Blocked() int {
	n := 0
	for _, st := range s.stats {
		if st.blocked {
			n++
		}
	}
	return n
}
