package core

import "testing"

// stream is a scripted fetch stream for driving the Learning Table.
type streamEvent struct {
	pc       int
	isBranch bool
	isCtl    bool
	taken    bool
	target   int
}

func inst(pc int) streamEvent { return streamEvent{pc: pc} }
func brEv(pc int, taken bool, target int) streamEvent {
	return streamEvent{pc: pc, isBranch: true, isCtl: true, taken: taken, target: target}
}
func jmpEv(pc, target int) streamEvent {
	return streamEvent{pc: pc, isCtl: true, taken: true, target: target}
}

func drive(t *testing.T, lt *LearningTable, evs []streamEvent) *Learned {
	t.Helper()
	for _, ev := range evs {
		if l := lt.Observe(ev.pc, ev.isBranch, ev.isCtl, ev.taken, ev.target, false); l != nil {
			return l
		}
	}
	return nil
}

// TestLearnType1: a not-taken instance whose stream reaches the branch
// target classifies Type-1 in one observation.
func TestLearnType1(t *testing.T) {
	lt := NewLearningTable(40)
	if !lt.Arm(10, 14) {
		t.Fatal("arm failed")
	}
	l := drive(t, lt, []streamEvent{
		brEv(10, false, 14), // NT instance arms the watch
		inst(11), inst(12), inst(13),
		inst(14), // branch target reached by fall-through
	})
	if l == nil {
		t.Fatal("no classification")
	}
	if l.Type != Type1 || l.ReconPC != 14 || l.FirstTaken || l.Backward {
		t.Fatalf("learned %+v", l)
	}
	if l.BodySize != 3 {
		t.Fatalf("body = %d, want 3", l.BodySize)
	}
	if lt.Occupied() {
		t.Fatal("table still occupied after confirmation")
	}
}

// TestLearnType2: a forward Jumper beyond the branch target on the NT
// path, validated on the next taken instance.
func TestLearnType2(t *testing.T) {
	lt := NewLearningTable(40)
	lt.Arm(10, 20) // IF-ELSE: else block at 20
	l := drive(t, lt, []streamEvent{
		brEv(10, false, 20), // NT instance
		inst(11), inst(12),
		jmpEv(13, 30), // Jumper: target 30 > 20 -> Type-2 candidate
		inst(30), inst(31),
		brEv(10, true, 20), // taken instance: validation watch
		inst(20), inst(21), inst(22),
		inst(30), // reconvergence confirmed on taken path
	})
	if l == nil {
		t.Fatal("no classification")
	}
	if l.Type != Type2 || l.ReconPC != 30 || l.FirstTaken {
		t.Fatalf("learned %+v", l)
	}
}

// TestLearnType3: probes the taken path after the Type-1/2 windows
// expire, finding a backward Jumper between branch and target.
func TestLearnType3(t *testing.T) {
	lt := NewLearningTable(8) // small window so the NT probe exhausts fast
	lt.Arm(10, 40)
	evs := []streamEvent{brEv(10, false, 40)} // NT probe instance
	for pc := 11; pc < 25; pc++ {             // exhaust the window: no target, no forward jumper
		evs = append(evs, inst(pc))
	}
	// Now in the Type-3 probe: wait for a taken instance.
	evs = append(evs, brEv(10, true, 40))
	evs = append(evs, inst(40), inst(41))
	evs = append(evs, jmpEv(42, 20)) // Jumper back: 10 < 20 < 40
	evs = append(evs, inst(20))
	// Validation on a not-taken instance: NT path falls through to 20.
	evs = append(evs, brEv(10, false, 40))
	evs = append(evs, inst(11), inst(12), inst(20))
	l := drive(t, lt, evs)
	if l == nil {
		t.Fatal("no classification")
	}
	if l.Type != Type3 || l.ReconPC != 20 || !l.FirstTaken {
		t.Fatalf("learned %+v", l)
	}
}

// TestLearnBackwardType1: the Fig. 4 transform — a backward branch whose
// taken path (the loop body) falls through to pc+1.
func TestLearnBackwardType1(t *testing.T) {
	lt := NewLearningTable(40)
	lt.Arm(10, 5) // backward: target 5 < pc 10
	l := drive(t, lt, []streamEvent{
		brEv(10, true, 5), // taken instance (NT role under the transform)
		inst(5), inst(6), inst(7), inst(8), inst(9),
		brEv(10, false, 5), // loop exits
		inst(11),           // pc+1 = effective target -> Type-1
	})
	if l == nil {
		t.Fatal("no classification")
	}
	if l.Type != Type1 || l.ReconPC != 11 || !l.FirstTaken || !l.Backward {
		t.Fatalf("learned %+v", l)
	}
}

// TestLearnNonConvergent: all probes exhaust -> the table resets.
func TestLearnNonConvergent(t *testing.T) {
	lt := NewLearningTable(4)
	lt.Arm(10, 100)
	evs := []streamEvent{brEv(10, false, 100)}
	for pc := 11; pc < 20; pc++ {
		evs = append(evs, inst(pc)) // NT probe exhausts
	}
	evs = append(evs, brEv(10, true, 100)) // Type-3 probe instance
	for pc := 100; pc < 110; pc++ {
		evs = append(evs, inst(pc)) // Type-3 probe exhausts
	}
	if l := drive(t, lt, evs); l != nil {
		t.Fatalf("classified a non-convergent branch: %+v", l)
	}
	if lt.Occupied() {
		t.Fatal("table not released after failed probes")
	}
}

// TestLearnAbortObservation: a flush aborts the in-flight watch but keeps
// the candidate; the next instance re-arms.
func TestLearnAbortObservation(t *testing.T) {
	lt := NewLearningTable(40)
	lt.Arm(10, 14)
	drive(t, nil2(t), nil) // no-op to keep helper usage consistent
	if l := lt.Observe(10, true, true, false, 14, false); l != nil {
		t.Fatal("premature classification")
	}
	lt.AbortObservation()
	l := drive(t, lt, []streamEvent{
		brEv(10, false, 14),
		inst(11), inst(14),
	})
	if l == nil || l.Type != Type1 {
		t.Fatalf("did not relearn after abort: %+v", l)
	}
}

func nil2(t *testing.T) *LearningTable { return NewLearningTable(4) }

// TestLearnIgnoresInContextInstances: predicated instances must not arm
// the watch.
func TestLearnIgnoresInContextInstances(t *testing.T) {
	lt := NewLearningTable(40)
	lt.Arm(10, 14)
	if l := lt.Observe(10, true, true, false, 14, true); l != nil {
		t.Fatal("classified from in-context instance")
	}
	if lt.watching {
		t.Fatal("in-context instance armed the watch")
	}
}

// TestLearnOneAtATime: the single-entry table rejects a second candidate.
func TestLearnOneAtATime(t *testing.T) {
	lt := NewLearningTable(40)
	if !lt.Arm(10, 14) {
		t.Fatal("first arm failed")
	}
	if lt.Arm(20, 24) {
		t.Fatal("second arm succeeded on occupied table")
	}
	if lt.CandidatePC() != 10 {
		t.Fatal("candidate clobbered")
	}
}

// TestLearnAgeRelease: a candidate that stops recurring is eventually
// released.
func TestLearnAgeRelease(t *testing.T) {
	lt := NewLearningTable(4)
	lt.maxAge = 100
	lt.Arm(10, 14)
	for i := 0; i < 200; i++ {
		lt.Observe(1000+i, false, false, false, 0, false)
	}
	if lt.Occupied() {
		t.Fatal("stale candidate not released")
	}
}

// TestLearnedStorageBudget: the learning table fits the paper's 20 bytes.
func TestLearnedStorageBudget(t *testing.T) {
	if NewLearningTable(40).StorageBits() != 160 {
		t.Fatal("learning table storage must be 20 bytes (Table I)")
	}
}
