package core

import (
	"testing"

	"acb/internal/ooo"
)

func TestStallThrottleBlocksHeavyStallers(t *testing.T) {
	st := NewStallThrottle(10, 4)
	for i := 0; i < 4; i++ {
		st.Observe(100, 50) // avg 50 > limit 10
	}
	if st.Allows(100) {
		t.Fatal("heavy staller not blocked")
	}
	if st.Blocked() != 1 {
		t.Fatalf("blocked = %d", st.Blocked())
	}
	// A later window of light stalls unblocks (phase change).
	for i := 0; i < 4; i++ {
		st.Observe(100, 1)
	}
	if !st.Allows(100) {
		t.Fatal("light window did not unblock")
	}
}

func TestStallThrottleAllowsLightStallers(t *testing.T) {
	st := NewStallThrottle(10, 4)
	for i := 0; i < 16; i++ {
		st.Observe(200, 2)
	}
	if !st.Allows(200) {
		t.Fatal("light staller blocked")
	}
	if !st.Allows(999) {
		t.Fatal("unknown pc blocked")
	}
}

// TestStallThrottleDecayUnblocks is the regression test for the
// stuck-throttle bug: once an entry blocks, Allows suppresses predication,
// so Observe never fires for it again and — before the decay path — the
// block was permanent. Non-predicated retires must lift it.
func TestStallThrottleDecayUnblocks(t *testing.T) {
	st := NewStallThrottle(10, 4)
	for i := 0; i < 4; i++ {
		st.Observe(100, 50)
	}
	if st.Allows(100) {
		t.Fatal("heavy staller not blocked")
	}
	// ObserveRetired on unknown or unblocked PCs is a no-op.
	st.ObserveRetired(999)
	for i := int64(0); i < st.DecayWindow-1; i++ {
		st.ObserveRetired(100)
	}
	if st.Allows(100) {
		t.Fatal("unblocked one retire early")
	}
	st.ObserveRetired(100)
	if !st.Allows(100) {
		t.Fatalf("still blocked after %d non-predicated retires", st.DecayWindow)
	}
	if st.Blocked() != 0 {
		t.Fatalf("blocked count = %d after decay", st.Blocked())
	}
	// The entry re-measures from a fresh window: a light phase stays
	// allowed, a heavy one re-blocks.
	for i := 0; i < 4; i++ {
		st.Observe(100, 1)
	}
	if !st.Allows(100) {
		t.Fatal("light re-measurement window re-blocked")
	}
}

// TestACBStallThrottleRecoversAfterPhaseChange drives the same recovery
// through the ACB scheme interface: a blocked entry sees only
// non-predicated resolves (ShouldPredicate is denied), and after a decay
// window of them predication is allowed again.
func TestACBStallThrottleRecoversAfterPhaseChange(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UseDynamo = false
	cfg.ThrottleStalls = true
	cfg.StallLimit = 5
	a := New(cfg)
	ring := ooo.NewTraceRing(1 << 10)
	a.SetTrace(ring)
	installConfident(a, 100, DynNeutral)

	// Heavy-stall phase: the throttle blocks the entry.
	for i := 0; i < 64; i++ {
		a.OnBranchResolve(ooo.ResolveEvent{PC: 100, Predicated: true, BodyStallCycles: 100})
	}
	if _, ok := a.ShouldPredicate(100, false, 0, 0); ok {
		t.Fatal("stall throttle did not block the entry")
	}
	denies := 0
	for _, ev := range ring.Events() {
		if ev.Kind == ooo.EvGateDeny && ev.Arg == ooo.GateStallThrottle {
			denies++
		}
	}
	if denies == 0 {
		t.Fatal("denied ShouldPredicate emitted no stall-throttle gate event")
	}

	// Phase change: the branch keeps retiring non-predicated (mispredicts
	// keep its confidence up). After the decay window the block lifts.
	for i := int64(0); i < a.stalls.DecayWindow; i++ {
		if _, ok := a.ShouldPredicate(100, false, 0, 0); ok {
			t.Fatalf("entry unblocked after only %d retires", i)
		}
		a.OnBranchResolve(ooo.ResolveEvent{PC: 100, Predicated: false, Mispredict: true})
	}
	if _, ok := a.ShouldPredicate(100, false, 0, 0); !ok {
		t.Fatal("blocked entry did not recover after a decay window of non-predicated retires")
	}
}

func TestACBWithStallThrottle(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UseDynamo = false
	cfg.ThrottleStalls = true
	cfg.StallLimit = 5
	a := New(cfg)
	if a.Name() != "acb-stallthrottle" {
		t.Fatalf("name = %q", a.Name())
	}
	e := installConfident(a, 100, DynNeutral)
	_ = e
	if _, ok := a.ShouldPredicate(100, false, 0, 0); !ok {
		t.Fatal("fresh entry blocked")
	}
	// Heavy-stall instances disable the entry through the throttle.
	for i := 0; i < 64; i++ {
		a.OnBranchResolve(ooo.ResolveEvent{PC: 100, Predicated: true, BodyStallCycles: 100})
	}
	if _, ok := a.ShouldPredicate(100, false, 0, 0); ok {
		t.Fatal("stall throttle did not disable the entry")
	}
}
