package core

import (
	"testing"

	"acb/internal/ooo"
)

func TestStallThrottleBlocksHeavyStallers(t *testing.T) {
	st := NewStallThrottle(10, 4)
	for i := 0; i < 4; i++ {
		st.Observe(100, 50) // avg 50 > limit 10
	}
	if st.Allows(100) {
		t.Fatal("heavy staller not blocked")
	}
	if st.Blocked() != 1 {
		t.Fatalf("blocked = %d", st.Blocked())
	}
	// A later window of light stalls unblocks (phase change).
	for i := 0; i < 4; i++ {
		st.Observe(100, 1)
	}
	if !st.Allows(100) {
		t.Fatal("light window did not unblock")
	}
}

func TestStallThrottleAllowsLightStallers(t *testing.T) {
	st := NewStallThrottle(10, 4)
	for i := 0; i < 16; i++ {
		st.Observe(200, 2)
	}
	if !st.Allows(200) {
		t.Fatal("light staller blocked")
	}
	if !st.Allows(999) {
		t.Fatal("unknown pc blocked")
	}
}

func TestACBWithStallThrottle(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UseDynamo = false
	cfg.ThrottleStalls = true
	cfg.StallLimit = 5
	a := New(cfg)
	if a.Name() != "acb-stallthrottle" {
		t.Fatalf("name = %q", a.Name())
	}
	e := installConfident(a, 100, DynNeutral)
	_ = e
	if _, ok := a.ShouldPredicate(100, false, 0, 0); !ok {
		t.Fatal("fresh entry blocked")
	}
	// Heavy-stall instances disable the entry through the throttle.
	for i := 0; i < 64; i++ {
		a.OnBranchResolve(ooo.ResolveEvent{PC: 100, Predicated: true, BodyStallCycles: 100})
	}
	if _, ok := a.ShouldPredicate(100, false, 0, 0); ok {
		t.Fatal("stall throttle did not disable the entry")
	}
}
