package core

import (
	"testing"
	"testing/quick"
)

// ---- Critical Table ----------------------------------------------------

func TestCriticalTableSaturation(t *testing.T) {
	ct := NewCriticalTable(64)
	pc := 0x123
	for i := 0; i < 14; i++ {
		if ct.RecordMispredict(pc) {
			t.Fatalf("saturated after only %d events", i+1)
		}
	}
	if !ct.RecordMispredict(pc) {
		t.Fatal("did not saturate at the 15th event")
	}
	if ct.Critical(pc) != 15 {
		t.Fatalf("critical = %d, want 15", ct.Critical(pc))
	}
	// Further events do not re-report saturation.
	if ct.RecordMispredict(pc) {
		t.Fatal("re-reported saturation")
	}
}

func TestCriticalTableWindowReset(t *testing.T) {
	ct := NewCriticalTable(64)
	pc := 0x40
	for i := 0; i < 10; i++ {
		ct.RecordMispredict(pc)
	}
	ct.ResetWindow()
	if ct.Critical(pc) != 0 {
		t.Fatal("window reset did not clear the counter")
	}
	// The entry itself (tag) survives — frequency is measured per window.
	for i := 0; i < 15; i++ {
		if got := ct.RecordMispredict(pc); got != (i == 14) {
			t.Fatalf("event %d: saturated=%v", i, got)
		}
	}
}

func TestCriticalTableUtilityConflicts(t *testing.T) {
	ct := NewCriticalTable(64)
	a := 0x10
	b := a + 64*3 // same index (pc & 63), different 11-bit tag
	if ct.index(a) != ct.index(b) || ct.tag(a) == ct.tag(b) {
		t.Fatalf("test addresses do not conflict as intended (idx %d/%d tag %d/%d)",
			ct.index(a), ct.index(b), ct.tag(a), ct.tag(b))
	}
	ct.RecordMispredict(a) // utility -> 1
	// One conflicting event decays utility to 0 but does not replace.
	ct.RecordMispredict(b)
	if ct.Critical(a) != 1 {
		t.Fatal("entry replaced while utility > 0")
	}
	// Next conflict replaces.
	ct.RecordMispredict(b)
	if ct.Critical(b) != 1 {
		t.Fatal("entry not replaced at utility 0")
	}
	if ct.Critical(a) != -1 {
		t.Fatal("old entry still present")
	}
}

func TestCriticalTableRelease(t *testing.T) {
	ct := NewCriticalTable(64)
	ct.RecordMispredict(7)
	ct.Release(7)
	if ct.Critical(7) != -1 {
		t.Fatal("release did not evict")
	}
}

func TestCriticalTableSizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two size")
		}
	}()
	NewCriticalTable(63)
}

func TestCriticalTableStorage(t *testing.T) {
	ct := NewCriticalTable(64)
	if got := ct.StorageBits(); got != 64*17 {
		t.Fatalf("storage = %d bits, want %d (paper: 11b tag + 2b utility + 4b counter)", got, 64*17)
	}
}

// ---- ACB Table ----------------------------------------------------------

func TestACBTableInstallLookup(t *testing.T) {
	tab := NewACBTable(32)
	l := &Learned{PC: 100, Type: Type2, ReconPC: 120, FirstTaken: false, BodySize: 10}
	e := tab.Install(l)
	if e.PC != 100 || e.Type != Type2 || e.ReconPC != 120 {
		t.Fatalf("installed entry %+v", e)
	}
	if got := tab.Lookup(100); got != e {
		t.Fatal("lookup returned different entry")
	}
	if tab.Lookup(101) != nil {
		t.Fatal("lookup hit for missing pc")
	}
	if tab.Len() != 1 {
		t.Fatalf("len = %d", tab.Len())
	}
}

func TestACBTableReinstallSamePC(t *testing.T) {
	tab := NewACBTable(32)
	tab.Install(&Learned{PC: 100, Type: Type1, ReconPC: 110})
	tab.Install(&Learned{PC: 100, Type: Type3, ReconPC: 105})
	if tab.Len() != 1 {
		t.Fatalf("len = %d, want 1 (reinstall must reuse the way)", tab.Len())
	}
	if e := tab.Lookup(100); e.Type != Type3 || e.ReconPC != 105 {
		t.Fatalf("entry not updated: %+v", e)
	}
}

func TestACBTableEvictsLowUtility(t *testing.T) {
	tab := NewACBTable(2) // one set, two ways
	a := tab.Install(&Learned{PC: 1})
	a.Utility = 3
	b := tab.Install(&Learned{PC: 2})
	b.Utility = 0
	tab.Install(&Learned{PC: 3}) // must evict b (lower utility)
	if tab.Lookup(1) == nil {
		t.Fatal("high-utility entry evicted")
	}
	if tab.Lookup(2) != nil {
		t.Fatal("low-utility entry survived")
	}
	if tab.Lookup(3) == nil {
		t.Fatal("new entry missing")
	}
}

func TestDecProbM(t *testing.T) {
	// Larger bodies must demand higher misprediction rates (lower M), per
	// Equation 1's trade-off.
	cases := []struct{ body, m int }{{4, 31}, {8, 15}, {12, 7}, {24, 3}}
	for _, c := range cases {
		if got := decProbM(c.body); got != c.m {
			t.Errorf("decProbM(%d) = %d, want %d", c.body, got, c.m)
		}
	}
	// Monotone non-increasing in body size.
	if err := quick.Check(func(a, b uint8) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return decProbM(x) >= decProbM(y)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// ---- Tracking Table ------------------------------------------------------

func TestTrackingConvergenceSeen(t *testing.T) {
	tr := NewTrackingTable(40)
	tr.Arm(100, 120)
	for pc := 101; pc < 120; pc++ {
		if _, failed := tr.Observe(pc); failed {
			t.Fatal("failed before window expired")
		}
	}
	if _, failed := tr.Observe(120); failed {
		t.Fatal("reconvergence observation reported failure")
	}
	if tr.Active() {
		t.Fatal("tracker still active after reconvergence")
	}
}

func TestTrackingConvergenceMissed(t *testing.T) {
	tr := NewTrackingTable(10)
	tr.Arm(100, 999)
	var failed bool
	var failPC int
	for pc := 0; pc < 50 && !failed; pc++ {
		failPC, failed = tr.Observe(200 + pc)
	}
	if !failed {
		t.Fatal("tracker never reported failure")
	}
	if failPC != 100 {
		t.Fatalf("failure pc = %d, want 100", failPC)
	}
}

func TestTrackingAbort(t *testing.T) {
	tr := NewTrackingTable(10)
	tr.Arm(1, 2)
	tr.Abort()
	if tr.Active() {
		t.Fatal("abort did not deactivate")
	}
	if _, failed := tr.Observe(77); failed {
		t.Fatal("inactive tracker reported failure")
	}
}
