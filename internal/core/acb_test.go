package core

import (
	"strings"
	"testing"

	"acb/internal/ooo"
)

// installConfident puts a learned entry into the engine's table with
// confidence above the application threshold and a Dynamo state.
func installConfident(a *ACB, pc int, state DynState) *ACBEntry {
	e := a.table.Install(&Learned{PC: pc, Type: Type2, ReconPC: pc + 10, BodySize: 4})
	e.Confidence = 40
	e.State = state
	return e
}

func TestShouldPredicateRequiresConfidence(t *testing.T) {
	a := New(DefaultConfig())
	e := a.table.Install(&Learned{PC: 100, Type: Type1, ReconPC: 105, BodySize: 4})
	if _, ok := a.ShouldPredicate(100, false, 0, 0); ok {
		t.Fatal("predicated without confidence")
	}
	e.Confidence = 40
	e.State = DynGood
	spec, ok := a.ShouldPredicate(100, false, 0, 0)
	if !ok {
		t.Fatal("confident GOOD entry not predicated")
	}
	if spec.ReconPC != 105 || spec.Eager {
		t.Fatalf("spec = %+v", spec)
	}
	if _, ok := a.ShouldPredicate(101, false, 0, 0); ok {
		t.Fatal("unknown pc predicated")
	}
}

func TestShouldPredicateHonoursDynamo(t *testing.T) {
	a := New(DefaultConfig())
	bad := installConfident(a, 100, DynBad)
	good := installConfident(a, 101, DynGood)
	neutral := installConfident(a, 102, DynNeutral)
	_ = bad
	_ = good
	_ = neutral

	if _, ok := a.ShouldPredicate(100, false, 0, 0); ok {
		t.Fatal("BAD entry predicated")
	}
	if _, ok := a.ShouldPredicate(101, false, 0, 0); !ok {
		t.Fatal("GOOD entry blocked")
	}
	// Epoch 0 is a baseline (disable) epoch: NEUTRAL entries are blocked.
	if _, ok := a.ShouldPredicate(102, false, 0, 0); ok {
		t.Fatal("NEUTRAL entry predicated in a disable epoch")
	}
}

func TestShouldPredicateWithoutDynamo(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UseDynamo = false
	a := New(cfg)
	installConfident(a, 100, DynNeutral)
	if _, ok := a.ShouldPredicate(100, false, 0, 0); !ok {
		t.Fatal("confident entry blocked with Dynamo disabled")
	}
	if a.Name() != "acb-nodynamo" {
		t.Fatalf("name = %q", a.Name())
	}
}

func TestConfidenceBuildsOnMispredicts(t *testing.T) {
	a := New(DefaultConfig())
	e := a.table.Install(&Learned{PC: 100, Type: Type1, ReconPC: 105, BodySize: 4})
	for i := 0; i < 40; i++ {
		a.OnBranchResolve(ooo.ResolveEvent{PC: 100, Mispredict: true})
	}
	if e.Confidence <= a.cfg.ApplyThreshold {
		t.Fatalf("confidence = %d after 40 mispredicts", e.Confidence)
	}
	// Saturation at 63.
	for i := 0; i < 100; i++ {
		a.OnBranchResolve(ooo.ResolveEvent{PC: 100, Mispredict: true})
	}
	if e.Confidence != 63 {
		t.Fatalf("confidence = %d, want saturation at 63", e.Confidence)
	}
}

func TestConfidenceDecaysOnCorrects(t *testing.T) {
	a := New(DefaultConfig())
	e := a.table.Install(&Learned{PC: 100, Type: Type1, ReconPC: 105, BodySize: 64})
	e.Confidence = 63
	// Big body -> M = 3 -> ~1/4 decay probability per correct prediction.
	for i := 0; i < 2000; i++ {
		a.OnBranchResolve(ooo.ResolveEvent{PC: 100, Mispredict: false})
	}
	if e.Confidence != 0 {
		t.Fatalf("confidence = %d after 2000 corrects, want 0", e.Confidence)
	}
}

// TestConfidenceEquilibrium: the probabilistic counter implements the
// body-size→required-rate mapping — a branch mispredicting well above the
// class rate saturates, one well below drains.
func TestConfidenceEquilibrium(t *testing.T) {
	run := func(body int, rate float64) uint8 {
		a := New(DefaultConfig())
		e := a.table.Install(&Learned{PC: 100, Type: Type1, ReconPC: 105, BodySize: body})
		e.Confidence = 32
		x := uint64(12345)
		for i := 0; i < 20000; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			mis := float64(x%1000) < rate*1000
			a.OnBranchResolve(ooo.ResolveEvent{PC: 100, Mispredict: mis})
		}
		return e.Confidence
	}
	// Small body (m = 1/32): 10% misprediction is plenty.
	if c := run(4, 0.10); c < 50 {
		t.Errorf("small body at 10%%: confidence %d, want saturated-ish", c)
	}
	// Big body (m = 1/4): 10% misprediction cannot sustain confidence.
	if c := run(64, 0.10); c > 20 {
		t.Errorf("big body at 10%%: confidence %d, want drained", c)
	}
}

func TestDivergenceResetsConfidence(t *testing.T) {
	a := New(DefaultConfig())
	e := installConfident(a, 100, DynNeutral)
	a.OnBranchResolve(ooo.ResolveEvent{PC: 100, Predicated: true, Diverged: true})
	if e.Confidence != 0 || e.Utility != 0 {
		t.Fatalf("confidence/utility = %d/%d after divergence, want 0/0", e.Confidence, e.Utility)
	}
	if a.Divergences != 1 {
		t.Fatalf("divergence count = %d", a.Divergences)
	}
}

func TestCriticalFilterArmsLearning(t *testing.T) {
	a := New(DefaultConfig())
	for i := 0; i < 15; i++ {
		a.OnBranchResolve(ooo.ResolveEvent{PC: 100, Target: 110, Mispredict: true})
	}
	if !a.learning.Occupied() || a.learning.CandidatePC() != 100 {
		t.Fatal("learning table not armed after critical saturation")
	}
	// A second saturating branch must wait (single-entry learning).
	for i := 0; i < 15; i++ {
		a.OnBranchResolve(ooo.ResolveEvent{PC: 200, Target: 210, Mispredict: true})
	}
	if a.learning.CandidatePC() != 100 {
		t.Fatal("learning table candidate clobbered")
	}
}

func TestROBFracHeuristicFiltersShadowedMispredicts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ROBFracLimit = 0.25
	a := New(cfg)
	// Mispredicts detected far from the ROB head (shadowed) do not train.
	for i := 0; i < 30; i++ {
		a.OnBranchResolve(ooo.ResolveEvent{PC: 100, Target: 110, Mispredict: true, ROBFrac: 0.9})
	}
	if a.learning.Occupied() {
		t.Fatal("shadowed mispredicts trained the critical filter")
	}
	for i := 0; i < 15; i++ {
		a.OnBranchResolve(ooo.ResolveEvent{PC: 100, Target: 110, Mispredict: true, ROBFrac: 0.1})
	}
	if !a.learning.Occupied() {
		t.Fatal("near-head mispredicts did not train")
	}
}

func TestLearningInstallsIntoACBTable(t *testing.T) {
	a := New(DefaultConfig())
	a.learning.Arm(100, 104)
	// Feed a not-taken instance reaching the target: Type-1.
	a.OnFetch(ooo.FetchEvent{PC: 100, IsBranch: true, IsControl: true, Taken: false, Target: 104})
	a.OnFetch(ooo.FetchEvent{PC: 101})
	a.OnFetch(ooo.FetchEvent{PC: 102})
	a.OnFetch(ooo.FetchEvent{PC: 103})
	a.OnFetch(ooo.FetchEvent{PC: 104})
	e := a.table.Lookup(100)
	if e == nil {
		t.Fatal("learned convergence not installed")
	}
	if e.Type != Type1 || e.ReconPC != 104 {
		t.Fatalf("entry %+v", e)
	}
	if a.Learnings != 1 {
		t.Fatalf("learnings = %d", a.Learnings)
	}
}

func TestTrackingFailureResetsEntryConfidence(t *testing.T) {
	a := New(DefaultConfig())
	e := a.table.Install(&Learned{PC: 100, Type: Type1, ReconPC: 200, BodySize: 4})
	e.Confidence = 20 // below threshold: the tracker monitors it
	// A fetched instance arms the tracker...
	a.OnFetch(ooo.FetchEvent{PC: 100, IsBranch: true, IsControl: true, Taken: false, Target: 200})
	// ...and the reconvergence point never shows up.
	for pc := 300; pc < 300+200; pc++ {
		a.OnFetch(ooo.FetchEvent{PC: pc})
	}
	if e.Confidence != 0 {
		t.Fatalf("confidence = %d after tracking failure, want 0", e.Confidence)
	}
	if a.TrackFails != 1 {
		t.Fatalf("track fails = %d", a.TrackFails)
	}
}

func TestWindowResetClearsCriticalCounts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WindowInstrs = 100
	a := New(cfg)
	for i := 0; i < 10; i++ {
		a.OnBranchResolve(ooo.ResolveEvent{PC: 100, Target: 110, Mispredict: true})
	}
	if a.critical.Critical(100) != 10 {
		t.Fatalf("critical = %d", a.critical.Critical(100))
	}
	for i := 0; i < 100; i++ {
		a.OnRetireTick(int64(i))
	}
	if a.critical.Critical(100) != 0 {
		t.Fatal("window did not reset the counter")
	}
}

func TestStorageReportMentionsAllTables(t *testing.T) {
	a := New(DefaultConfig())
	rep := a.StorageReport()
	for _, want := range []string{"Critical Table", "Learning Table", "ACB Table", "Tracking Table", "Dynamo", "386"} {
		if !strings.Contains(rep, want) {
			t.Errorf("storage report missing %q:\n%s", want, rep)
		}
	}
	if a.StorageBytes() != 386 {
		t.Fatalf("storage = %d bytes, want the paper's 386", a.StorageBytes())
	}
}

func TestOnFlushAbortsObservations(t *testing.T) {
	a := New(DefaultConfig())
	a.learning.Arm(100, 104)
	a.OnFetch(ooo.FetchEvent{PC: 100, IsBranch: true, IsControl: true, Taken: false, Target: 104})
	if !a.learning.watching {
		t.Fatal("setup: learning not watching")
	}
	a.tracking.Arm(50, 60)
	a.OnFlush()
	if a.learning.watching {
		t.Fatal("flush did not abort the learning observation")
	}
	if a.tracking.Active() {
		t.Fatal("flush did not abort the tracker")
	}
	if !a.learning.Occupied() {
		t.Fatal("flush must keep the learning candidate")
	}
}

func TestMultiReconPromotion(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MultiRecon = true
	a := New(cfg)
	e := installConfident(a, 100, DynGood)
	e.ReconPC = 110

	// A diverged instance whose true path re-joined at 130 promotes a
	// second reconvergence point without losing confidence.
	a.OnBranchResolve(ooo.ResolveEvent{PC: 100, Predicated: true, Diverged: true, ReconHint: 130})
	if e.ReconPC2 != 130 || !e.UseRecon2 {
		t.Fatalf("entry after promotion: recon2=%d use=%v", e.ReconPC2, e.UseRecon2)
	}
	if e.Confidence == 0 {
		t.Fatal("promotion must keep confidence")
	}
	if a.ReconPromotions != 1 {
		t.Fatalf("promotions = %d", a.ReconPromotions)
	}
	spec, ok := a.ShouldPredicate(100, false, 0, 0)
	if !ok || spec.ReconPC != 130 {
		t.Fatalf("spec uses recon %d, want promoted 130", spec.ReconPC)
	}

	// Further divergence beyond the promoted point promotes again.
	a.OnBranchResolve(ooo.ResolveEvent{PC: 100, Predicated: true, Diverged: true, ReconHint: 140})
	if e.ReconPC2 != 140 {
		t.Fatalf("recon2 = %d, want 140", e.ReconPC2)
	}

	// Divergence without a usable hint falls back to the paper's reset.
	a.OnBranchResolve(ooo.ResolveEvent{PC: 100, Predicated: true, Diverged: true, ReconHint: -1})
	if e.Confidence != 0 || e.ReconPC2 != 0 || e.UseRecon2 {
		t.Fatalf("entry not reset: conf=%d recon2=%d use=%v", e.Confidence, e.ReconPC2, e.UseRecon2)
	}
}

func TestMultiReconDisabledKeepsPaperBehaviour(t *testing.T) {
	a := New(DefaultConfig())
	e := installConfident(a, 100, DynGood)
	a.OnBranchResolve(ooo.ResolveEvent{PC: 100, Predicated: true, Diverged: true, ReconHint: 130})
	if e.Confidence != 0 || e.ReconPC2 != 0 {
		t.Fatal("default config must reset on divergence (Sec. III-C1)")
	}
	if a.Name() != "acb" {
		t.Fatalf("name = %q", a.Name())
	}
	cfg := DefaultConfig()
	cfg.MultiRecon = true
	if New(cfg).Name() != "acb-mr" {
		t.Fatal("acb-mr name")
	}
}
