// Package core implements Auto-Predication of Critical Branches (ACB),
// the paper's primary contribution: a pure-hardware mechanism that learns
// frequently mispredicting conditional branches (Critical Table), learns
// their reconvergence point with a generic three-type convergence detector
// (Learning Table), builds application confidence proportional to body
// size (ACB Table + Tracking Table), dual-fetches confident instances with
// register-transparent predication in the OOO, and throttles itself with a
// run-time performance monitor (Dynamo).
//
// The package plugs into the out-of-order model through ooo.Scheme.
package core

// CriticalTable is the direct-mapped filter that learns critical branch
// PCs: 64 entries, each an 11-bit tag, a 2-bit utility counter for
// conflict management and a 4-bit saturating critical counter
// (Sec. III-A). A branch whose critical counter saturates within one
// 200K-instruction window is a candidate for convergence learning.
type CriticalTable struct {
	entries []criticalEntry
	mask    uint32
}

type criticalEntry struct {
	valid    bool
	tag      uint16 // 11 bits
	utility  uint8  // 2 bits
	critical uint8  // 4 bits
	pc       int    // full PC kept beside the tag for simulation bookkeeping
}

// NewCriticalTable returns a table with the given number of entries
// (power of two; the paper uses 64).
func NewCriticalTable(entries int) *CriticalTable {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("core: critical table size must be a positive power of two")
	}
	return &CriticalTable{entries: make([]criticalEntry, entries), mask: uint32(entries - 1)}
}

func (t *CriticalTable) index(pc int) uint32 { return uint32(pc) & t.mask }

func (t *CriticalTable) tag(pc int) uint16 {
	return uint16((uint32(pc) >> uint(popcount32(t.mask))) & 0x7FF)
}

func popcount32(x uint32) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// RecordMispredict records one critical misprediction event for pc. It
// returns true when the entry's critical counter just saturated, i.e. the
// branch should move to convergence learning.
func (t *CriticalTable) RecordMispredict(pc int) bool {
	e := &t.entries[t.index(pc)]
	tag := t.tag(pc)
	if !e.valid {
		*e = criticalEntry{valid: true, tag: tag, pc: pc, utility: 1, critical: 1}
		return false
	}
	if e.tag != tag {
		// Conflict: decay utility; replace only when it reaches zero.
		if e.utility > 0 {
			e.utility--
			return false
		}
		*e = criticalEntry{valid: true, tag: tag, pc: pc, utility: 1, critical: 1}
		return false
	}
	if e.utility < 3 {
		e.utility++
	}
	if e.critical < 15 {
		e.critical++
		return e.critical == 15
	}
	return false
}

// Release removes pc from the table (after it has been promoted to the
// ACB Table).
func (t *CriticalTable) Release(pc int) {
	e := &t.entries[t.index(pc)]
	if e.valid && e.tag == t.tag(pc) {
		e.valid = false
	}
}

// ResetWindow clears all critical counters; called every 200K retired
// instructions so the filter measures misprediction *frequency*.
func (t *CriticalTable) ResetWindow() {
	for i := range t.entries {
		t.entries[i].critical = 0
	}
}

// Critical returns the current critical count for pc (testing/diagnostics).
func (t *CriticalTable) Critical(pc int) int {
	e := &t.entries[t.index(pc)]
	if !e.valid || e.tag != t.tag(pc) {
		return -1
	}
	return int(e.critical)
}

// StorageBits returns the hardware cost of the table in bits
// (tag + utility + critical per entry).
func (t *CriticalTable) StorageBits() int {
	return len(t.entries) * (11 + 2 + 4)
}
